(* End-to-end tests of the core HyperModel machinery against the
   in-memory backend: generation, layout arithmetic, structural
   verification, all 20 operations' semantics, transactions, and the
   timing protocol's restore guarantees. *)

open Hyper_core
module B = Hyper_memdb.Memdb
module Gen = Generator.Make (B)
module O = Ops.Make (B)
module V = Verify.Make (B)
module P = Protocol.Make (B)

let check = Alcotest.check

let generate ?(leaf_level = 4) ?(seed = 42L) ?(cluster = true) () =
  let b = B.create () in
  B.begin_txn b;
  B.commit b;
  let layout, timings =
    Gen.generate ~cluster b ~doc:1 ~leaf_level ~seed
  in
  (b, layout, timings)

(* --- Schema arithmetic --- *)

let test_schema_arithmetic () =
  check Alcotest.int "level 4 total" 781 (Schema.total_nodes ~leaf_level:4);
  check Alcotest.int "level 5 total" 3906 (Schema.total_nodes ~leaf_level:5);
  check Alcotest.int "level 6 total" 19531 (Schema.total_nodes ~leaf_level:6);
  check Alcotest.int "level 7 total" 97656 (Schema.total_nodes ~leaf_level:7);
  check Alcotest.int "closure level 4" 6 (Schema.closure_size ~leaf_level:4);
  check Alcotest.int "closure level 5" 31 (Schema.closure_size ~leaf_level:5);
  check Alcotest.int "closure level 6" 156 (Schema.closure_size ~leaf_level:6);
  (* Paper §5.2: "around 8 MB" at level 6; the arithmetic model must land
     in that ballpark. *)
  let mb = float_of_int (Schema.model_db_bytes ~leaf_level:6) /. 1e6 in
  if mb < 6.0 || mb > 10.0 then Alcotest.failf "size model says %.1f MB" mb

let test_layout_arithmetic () =
  let l = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:4 () in
  check Alcotest.int "root" 1 (Layout.root l);
  check Alcotest.int "root level" 0 (Layout.level_of_oid l 1);
  check Alcotest.int "level 1 first" 2 (Layout.level_first_oid l 1);
  check Alcotest.int "level 4 first" 157 (Layout.level_first_oid l 4);
  check Alcotest.int "level of 157" 4 (Layout.level_of_oid l 157);
  check Alcotest.int "level of 156" 3 (Layout.level_of_oid l 156);
  check (Alcotest.option Alcotest.int) "root has no parent" None
    (Layout.parent_of l 1);
  check (Alcotest.array Alcotest.int) "root children" [| 2; 3; 4; 5; 6 |]
    (Layout.children_of l 1);
  check (Alcotest.option Alcotest.int) "parent of 2" (Some 1)
    (Layout.parent_of l 2);
  check (Alcotest.option Alcotest.int) "parent of 7" (Some 2)
    (Layout.parent_of l 7);
  (* parent/children inverse across the whole structure *)
  Layout.iter_oids l (fun oid ->
      Array.iter
        (fun c ->
          check (Alcotest.option Alcotest.int)
            (Printf.sprintf "inverse at %d" c)
            (Some oid) (Layout.parent_of l c))
        (Layout.children_of l oid));
  check Alcotest.bool "leaf is leaf" true (Layout.is_leaf l 157);
  check Alcotest.bool "form every 125th" true (Layout.is_form l 157);
  check Alcotest.bool "not form" false (Layout.is_form l 158);
  check Alcotest.int "form count level 4" 5 (Layout.form_count l);
  check Alcotest.int "text count level 4" 620 (Layout.text_count l);
  check Alcotest.int "uid of root" 1 (Layout.uid_of_oid l 1);
  check Alcotest.int "oid of uid" 781 (Layout.oid_of_uid l 781)

let test_layout_oid_base () =
  let l = Layout.make ~doc:2 ~oid_base:1000 ~leaf_level:4 () in
  check Alcotest.int "root shifted" 1001 (Layout.root l);
  check Alcotest.int "uid unshifted" 1 (Layout.uid_of_oid l 1001);
  check (Alcotest.array Alcotest.int) "children shifted"
    [| 1002; 1003; 1004; 1005; 1006 |]
    (Layout.children_of l 1001)

(* --- Generation + verification --- *)

let test_generate_and_verify () =
  let b, layout, timings = generate () in
  check Alcotest.int "node count" 781 (B.node_count b ~doc:1);
  let checks = V.run b layout in
  List.iter
    (fun c ->
      if not c.Verify.ok then
        Alcotest.failf "verify failed: %s — %s" c.Verify.name c.Verify.detail)
    checks;
  check Alcotest.int "five phases" 5
    (List.length timings.Generator.phases);
  List.iter
    (fun p ->
      if p.Generator.items = 0 then
        Alcotest.failf "phase %s created nothing" p.Generator.label)
    timings.Generator.phases;
  (* Phase item counts per the paper's arithmetic. *)
  let items label =
    let p =
      List.find (fun p -> p.Generator.label = label) timings.Generator.phases
    in
    p.Generator.items
  in
  check Alcotest.int "internal nodes" 156 (items "create internal nodes");
  check Alcotest.int "leaf nodes" 625 (items "create leaf nodes");
  check Alcotest.int "1-N edges" 780 (items "create 1-N relationships");
  check Alcotest.int "M-N edges" 780 (items "create M-N relationships");
  check Alcotest.int "refs" 781 (items "create M-N attribute references")

let test_generate_unclustered_verifies () =
  let b, layout, _ = generate ~cluster:false () in
  let checks = V.run b layout in
  List.iter
    (fun c ->
      if not c.Verify.ok then
        Alcotest.failf "unclustered verify failed: %s — %s" c.Verify.name
          c.Verify.detail)
    checks

let test_generate_deterministic () =
  let b1, layout, _ = generate ~seed:7L () in
  let b2, _, _ = generate ~seed:7L () in
  Layout.iter_oids layout (fun oid ->
      if B.hundred b1 oid <> B.hundred b2 oid then
        Alcotest.failf "hundred differs at %d" oid;
      if B.million b1 oid <> B.million b2 oid then
        Alcotest.failf "million differs at %d" oid;
      if B.parts b1 oid <> B.parts b2 oid then
        Alcotest.failf "parts differ at %d" oid;
      if B.refs_to b1 oid <> B.refs_to b2 oid then
        Alcotest.failf "refs differ at %d" oid)

let test_cluster_mode_same_contents () =
  (* Clustering must change physical placement only, never contents. *)
  let b1, layout, _ = generate ~cluster:true ~seed:3L () in
  let b2, _, _ = generate ~cluster:false ~seed:3L () in
  Layout.iter_oids layout (fun oid ->
      if B.hundred b1 oid <> B.hundred b2 oid then
        Alcotest.failf "hundred differs at %d" oid;
      if B.parts b1 oid <> B.parts b2 oid then
        Alcotest.failf "parts differ at %d" oid;
      if
        Layout.is_leaf layout oid
        && (not (Layout.is_form layout oid))
        && B.text b1 oid <> B.text b2 oid
      then Alcotest.failf "text differs at %d" oid)

(* --- Operations --- *)

let test_name_lookups () =
  let b, layout, _ = generate () in
  (match O.name_lookup b ~doc:1 ~uid:400 with
  | Some h -> check Alcotest.int "same as direct" (B.hundred b 400) h
  | None -> Alcotest.fail "uid 400 not found");
  check (Alcotest.option Alcotest.int) "absent uid" None
    (O.name_lookup b ~doc:1 ~uid:5000);
  let oid = Layout.random_node layout (Hyper_util.Prng.create 1L) in
  check Alcotest.int "oid lookup" (B.hundred b oid) (O.name_oid_lookup b ~oid)

let test_range_lookups () =
  let b, layout, _ = generate () in
  let result = O.range_lookup_hundred b ~doc:1 ~x:30 in
  (* 10% selectivity: expect around 78 of 781 nodes. *)
  let n = List.length result in
  if n < 40 || n > 130 then Alcotest.failf "hundred range returned %d" n;
  List.iter
    (fun oid ->
      let h = B.hundred b oid in
      if h < 30 || h > 39 then Alcotest.failf "oid %d hundred %d" oid h)
    result;
  (* Exhaustive agreement with a scan. *)
  let expected = ref [] in
  Layout.iter_oids layout (fun oid ->
      let m = B.million b oid in
      if m >= 100_000 && m <= 109_999 then expected := oid :: !expected);
  let got =
    List.sort compare (O.range_lookup_million b ~doc:1 ~x:100_000)
  in
  check
    (Alcotest.list Alcotest.int)
    "million range = scan" (List.sort compare !expected) got

let test_group_and_ref_lookups () =
  let b, layout, _ = generate () in
  let rng = Hyper_util.Prng.create 9L in
  for _ = 1 to 50 do
    let internal = Layout.random_internal layout rng in
    check (Alcotest.array Alcotest.int) "children ordered"
      (Layout.children_of layout internal)
      (O.group_lookup_1n b ~oid:internal);
    check Alcotest.int "five parts" 5
      (Array.length (O.group_lookup_mn b ~oid:internal));
    let node = Layout.random_node layout rng in
    check Alcotest.int "one ref" 1
      (Array.length (O.group_lookup_mnatt b ~oid:node));
    let non_root = Layout.random_non_root layout rng in
    check (Alcotest.option Alcotest.int) "parent"
      (Layout.parent_of layout non_root)
      (O.ref_lookup_1n b ~oid:non_root)
  done;
  (* refsFrom inverse: the target of every node's ref lists it back. *)
  Layout.iter_oids layout (fun oid ->
      Array.iter
        (fun target ->
          let back = O.ref_lookup_mnatt b ~oid:target in
          if not (Array.exists (fun s -> s = oid) back) then
            Alcotest.failf "ref inverse broken at %d -> %d" oid target)
        (O.group_lookup_mnatt b ~oid))

let test_seq_scan () =
  let b, _, _ = generate () in
  check Alcotest.int "visits all nodes" 781 (O.seq_scan b ~doc:1);
  (* A second structure must not leak into the scan. *)
  B.begin_txn b;
  B.create_node b
    { Schema.oid = 100_000; doc = 2; unique_id = 1; ten = 1; hundred = 1;
      million = 1; payload = Schema.P_internal };
  B.commit b;
  check Alcotest.int "scoped to doc" 781 (O.seq_scan b ~doc:1);
  check Alcotest.int "other doc visible separately" 1 (O.seq_scan b ~doc:2)

let test_closure_1n () =
  let b, layout, _ = generate () in
  B.begin_txn b;
  let result = O.closure_1n b ~start:(Layout.root layout) in
  B.commit b;
  check Alcotest.int "full tree closure" 781 (List.length result);
  (* Pre-order: parent before children, children in sequence order. *)
  (match result with
  | r :: c1 :: _ ->
    check Alcotest.int "starts at root" (Layout.root layout) r;
    check Alcotest.int "first child next" 2 c1
  | _ -> Alcotest.fail "closure too short");
  (* Level-3 start: exactly 6 nodes at leaf level 4. *)
  let start = Layout.level_first_oid layout 3 in
  B.begin_txn b;
  let small = O.closure_1n b ~start in
  B.commit b;
  check Alcotest.int "level-3 closure size" 6 (List.length small);
  (* Result list was stored in the database (storable requirement). *)
  check Alcotest.int "results stored" 2 (B.stored_result_count b);
  check (Alcotest.list Alcotest.int) "stored copy matches" small
    (B.stored_result b 1)

let test_closure_1n_preorder_exact () =
  let b, _, _ = generate ~leaf_level:2 () in
  (* 31-node db: root 1, level1 2..6, level2 7..31.  Pre-order from the
     root: 1, 2, 7..11, 3, 12..16, 4, ... *)
  B.begin_txn b;
  let result = O.closure_1n b ~start:1 in
  B.commit b;
  let expected =
    [ 1; 2; 7; 8; 9; 10; 11; 3; 12; 13; 14; 15; 16; 4; 17; 18; 19; 20; 21;
      5; 22; 23; 24; 25; 26; 6; 27; 28; 29; 30; 31 ]
  in
  check (Alcotest.list Alcotest.int) "exact pre-order" expected result

let test_closure_mn () =
  let b, layout, _ = generate () in
  let start = Layout.level_first_oid layout 3 in
  B.begin_txn b;
  let result = O.closure_mn b ~start in
  B.commit b;
  (* Every reached node is reachable via parts; no duplicates. *)
  check Alcotest.int "no duplicates"
    (List.length (List.sort_uniq compare result))
    (List.length result);
  check Alcotest.int "starts at start" start (List.hd result);
  (* From level 3 with fanout 5 the M-N closure reaches at most
     1 + 5 = 6 nodes (level-4 is the leaf level). *)
  let n = List.length result in
  if n < 2 || n > 6 then Alcotest.failf "M-N closure size %d" n

let test_closure_mnatt_depth () =
  let b, layout, _ = generate () in
  let start = Layout.level_first_oid layout 3 in
  B.begin_txn b;
  let d0 = O.closure_mnatt b ~start ~depth:0 in
  let d1 = O.closure_mnatt b ~start ~depth:1 in
  let d25 = O.closure_mnatt b ~start ~depth:25 in
  B.commit b;
  check (Alcotest.list Alcotest.int) "depth 0 is just the start" [ start ] d0;
  check Alcotest.int "depth 1 adds the single ref" 2 (List.length d1);
  let n = List.length d25 in
  (* One outgoing ref per node: a path of at most 26 distinct nodes. *)
  if n < 1 || n > 26 then Alcotest.failf "depth-25 closure size %d" n

let test_closure_att_sum_and_set () =
  let b, layout, _ = generate () in
  let start = Layout.level_first_oid layout 3 in
  let sum0 = O.closure_1n_att_sum b ~start in
  (* Manual: the 6 nodes of the subtree. *)
  let expected =
    List.fold_left
      (fun acc oid -> acc + B.hundred b oid)
      (B.hundred b start)
      (Array.to_list (Layout.children_of layout start))
  in
  check Alcotest.int "sum matches manual" expected sum0;
  B.begin_txn b;
  check Alcotest.int "6 updated" 6 (O.closure_1n_att_set b ~start);
  B.commit b;
  let sum1 = O.closure_1n_att_sum b ~start in
  check Alcotest.int "sum after set" ((99 * 6) - sum0) sum1;
  (* Self-inverse: doing it twice restores the values (paper). *)
  B.begin_txn b;
  ignore (O.closure_1n_att_set b ~start : int);
  B.commit b;
  check Alcotest.int "restored" sum0 (O.closure_1n_att_sum b ~start)

let test_closure_pred () =
  let b, layout, _ = generate () in
  let start = Layout.level_first_oid layout 3 in
  (* x such that nothing is in range -> full closure. *)
  let all = O.closure_1n_pred b ~start ~x:990_001 in
  (* million <= 1,000,000 < 990001+9999?  990001..1000000 might catch some;
     use the fact that closure without predicate is 6 nodes and compare
     against a manual filter instead. *)
  let subtree = start :: Array.to_list (Layout.children_of layout start) in
  let expected_all =
    List.filter
      (fun oid ->
        let m = B.million b oid in
        m < 990_001 || m > 1_000_000)
      subtree
  in
  check (Alcotest.list Alcotest.int) "manual filter agrees" expected_all all;
  (* A predicate hitting the start node prunes everything. *)
  let m = B.million b start in
  check (Alcotest.list Alcotest.int) "start pruned" []
    (O.closure_1n_pred b ~start ~x:m)

let test_link_sum () =
  let b, layout, _ = generate () in
  let start = Layout.level_first_oid layout 3 in
  let pairs = O.closure_mnatt_link_sum b ~start ~depth:25 in
  (match pairs with
  | (first, d) :: _ ->
    check Alcotest.int "starts at start" start first;
    check Alcotest.int "distance 0 at start" 0 d
  | [] -> Alcotest.fail "empty link sum");
  (* Distances are cumulative sums of offset_to along the unique path. *)
  let rec check_path = function
    | (a, da) :: ((bnode, db) :: _ as rest) ->
      (match B.refs_to b a with
      | [| link |] ->
        check Alcotest.int
          (Printf.sprintf "distance at %d" bnode)
          (da + link.Schema.offset_to) db;
        check Alcotest.int "path follows refs" link.Schema.target bnode
      | _ -> Alcotest.fail "expected one ref");
      check_path rest
    | _ -> ()
  in
  check_path pairs

let test_text_edit () =
  let b, layout, _ = generate () in
  let oid = Layout.random_text layout (Hyper_util.Prng.create 4L) in
  let original = B.text b oid in
  B.begin_txn b;
  O.text_node_edit b ~oid;
  B.commit b;
  let edited = B.text b oid in
  check Alcotest.int "one char longer"
    (String.length original + 1)
    (String.length edited);
  check Alcotest.int "has version-2" 1
    (Hyper_util.Text_gen.count_occurrences edited ~sub:"version-2");
  B.begin_txn b;
  O.text_node_edit b ~oid;
  B.commit b;
  check Alcotest.string "second edit restores" original (B.text b oid)

let test_form_edit () =
  let b, layout, _ = generate () in
  let oid = Layout.random_form layout (Hyper_util.Prng.create 5L) in
  B.begin_txn b;
  O.form_node_edit b ~oid ~x:10 ~y:10 ~w:30 ~h:40;
  B.commit b;
  check Alcotest.int "inverted bits" (30 * 40)
    (Hyper_util.Bitmap.count_set (B.form b oid));
  B.begin_txn b;
  O.form_node_edit b ~oid ~x:10 ~y:10 ~w:30 ~h:40;
  B.commit b;
  check Alcotest.int "self-inverse" 0
    (Hyper_util.Bitmap.count_set (B.form b oid))

(* --- Transactions --- *)

let test_abort_restores () =
  let b, layout, _ = generate () in
  let start = Layout.level_first_oid layout 3 in
  let sum0 = O.closure_1n_att_sum b ~start in
  let text_oid = Layout.random_text layout (Hyper_util.Prng.create 6L) in
  let text0 = B.text b text_oid in
  B.begin_txn b;
  ignore (O.closure_1n_att_set b ~start : int);
  O.text_node_edit b ~oid:text_oid;
  B.abort b;
  check Alcotest.int "attribute rolled back" sum0
    (O.closure_1n_att_sum b ~start);
  check Alcotest.string "text rolled back" text0 (B.text b text_oid);
  (* Index consistency after rollback. *)
  List.iter
    (fun oid ->
      let h = B.hundred b oid in
      if h < 30 || h > 39 then Alcotest.failf "index stale at %d" oid)
    (B.range_hundred b ~doc:1 ~lo:30 ~hi:39)

let test_abort_node_creation () =
  let b, _, _ = generate () in
  B.begin_txn b;
  B.create_node b
    { Schema.oid = 99_999; doc = 1; unique_id = 999; ten = 1; hundred = 50;
      million = 5; payload = Schema.P_internal };
  B.abort b;
  check Alcotest.int "count restored" 781 (B.node_count b ~doc:1);
  check (Alcotest.option Alcotest.int) "uid gone" None
    (B.lookup_unique b ~doc:1 999)

let test_dyn_attr () =
  let b, _, _ = generate () in
  B.begin_txn b;
  B.set_dyn_attr b 10 "color" 3;
  B.commit b;
  check (Alcotest.option Alcotest.int) "dyn attr" (Some 3)
    (B.dyn_attr b 10 "color");
  check (Alcotest.option Alcotest.int) "unset elsewhere" None
    (B.dyn_attr b 11 "color");
  B.begin_txn b;
  B.set_dyn_attr b 10 "color" 7;
  B.abort b;
  check (Alcotest.option Alcotest.int) "abort restores dyn" (Some 3)
    (B.dyn_attr b 10 "color")

(* --- Protocol --- *)

let test_protocol_runs_all () =
  let b, layout, _ = generate () in
  let config = { Protocol.default_config with reps = 5 } in
  let ms = P.run_all ~config b layout in
  check Alcotest.int "20 operations" 20 (List.length ms);
  List.iter
    (fun m ->
      if m.Protocol.nodes_cold = 0 && m.Protocol.op <> "08 refLookupMNATT"
      then Alcotest.failf "op %s returned no nodes" m.Protocol.op;
      if m.Protocol.cold_ms < 0.0 || m.Protocol.warm_ms < 0.0 then
        Alcotest.failf "op %s negative time" m.Protocol.op)
    ms;
  (* The protocol must leave the database structurally intact (update ops
     are self-inverse under an even rep count... reps=5 is odd, so op 12
     flipped attributes an odd number of times — but ranges remain
     valid). *)
  let checks = V.run b layout in
  let structural =
    List.filter
      (fun c ->
        (* hundred values may legitimately be 99-x now; skip the
           range-vs-scan check's dependence is fine, but attribute range
           check expects 1..100 — 99-x of 1..100 is -1..98... so op12 can
           produce 0 or -1.  The paper accepts this (values restore on
           the next run).  Skip the attribute-range check here. *)
        c.Verify.name <> "attribute ranges (ten, hundred, million)")
      checks
  in
  List.iter
    (fun c ->
      if not c.Verify.ok then
        Alcotest.failf "post-protocol verify: %s — %s" c.Verify.name
          c.Verify.detail)
    structural

let test_protocol_single_op () =
  let b, layout, _ = generate () in
  let config = { Protocol.default_config with reps = 10 } in
  let m = P.run_op ~config b layout "10" in
  check Alcotest.string "label" "10 closure1N" m.Protocol.op;
  check Alcotest.int "closure nodes cold" (6 * 10) m.Protocol.nodes_cold;
  check Alcotest.int "cold = warm node count" m.Protocol.nodes_cold
    m.Protocol.nodes_warm;
  Alcotest.check_raises "unknown op"
    (Invalid_argument "Protocol: unknown op id \"99\"") (fun () ->
      ignore (P.run_op b layout "99"))

let () =
  Alcotest.run "hyper_core+memdb"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "schema sizes" `Quick test_schema_arithmetic;
          Alcotest.test_case "layout tree" `Quick test_layout_arithmetic;
          Alcotest.test_case "layout oid base" `Quick test_layout_oid_base;
        ] );
      ( "generation",
        [
          Alcotest.test_case "generate + full verify" `Quick
            test_generate_and_verify;
          Alcotest.test_case "unclustered verifies" `Quick
            test_generate_unclustered_verifies;
          Alcotest.test_case "deterministic per seed" `Quick
            test_generate_deterministic;
          Alcotest.test_case "cluster mode: same contents" `Quick
            test_cluster_mode_same_contents;
        ] );
      ( "operations",
        [
          Alcotest.test_case "01/02 name lookups" `Quick test_name_lookups;
          Alcotest.test_case "03/04 range lookups" `Quick test_range_lookups;
          Alcotest.test_case "05-08 group/ref lookups" `Quick
            test_group_and_ref_lookups;
          Alcotest.test_case "09 seq scan scoping" `Quick test_seq_scan;
          Alcotest.test_case "10 closure1N" `Quick test_closure_1n;
          Alcotest.test_case "10 exact pre-order" `Quick
            test_closure_1n_preorder_exact;
          Alcotest.test_case "14 closureMN" `Quick test_closure_mn;
          Alcotest.test_case "15 closureMNATT depth" `Quick
            test_closure_mnatt_depth;
          Alcotest.test_case "11/12 att sum/set" `Quick
            test_closure_att_sum_and_set;
          Alcotest.test_case "13 predicate closure" `Quick test_closure_pred;
          Alcotest.test_case "18 link sum" `Quick test_link_sum;
          Alcotest.test_case "16 text edit" `Quick test_text_edit;
          Alcotest.test_case "17 form edit" `Quick test_form_edit;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "abort restores values+indexes" `Quick
            test_abort_restores;
          Alcotest.test_case "abort undoes creation" `Quick
            test_abort_node_creation;
          Alcotest.test_case "dynamic attributes (R4)" `Quick test_dyn_attr;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "all 20 ops run" `Quick test_protocol_runs_all;
          Alcotest.test_case "single op" `Quick test_protocol_single_op;
        ] );
    ]

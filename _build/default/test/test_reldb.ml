(* Relational backend tests: generation + verification, cross-backend
   equivalence against memdb, ordered children through the CHILD table's
   position column, persistence, abort, and the protocol smoke test. *)

open Hyper_core
module B = Hyper_reldb.Reldb
module Gen = Generator.Make (B)
module O = Ops.Make (B)
module V = Verify.Make (B)
module P = Protocol.Make (B)

let check = Alcotest.check

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_reldb_%d_%s_%d" (Unix.getpid ()) name !counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".wal" ]

let with_db ?(pool_pages = 512) name k =
  let path = temp_path name in
  let config = { (B.default_config ~path) with pool_pages } in
  let b = B.open_db config in
  Fun.protect
    ~finally:(fun () ->
      (try B.close b with _ -> ());
      cleanup path)
    (fun () -> k b path)

let generate ?(leaf_level = 4) ?(seed = 42L) b =
  Gen.generate b ~doc:1 ~leaf_level ~seed

let assert_verifies b layout =
  List.iter
    (fun c ->
      if not c.Verify.ok then
        Alcotest.failf "verify: %s — %s" c.Verify.name c.Verify.detail)
    (V.run b layout)

let test_generate_and_verify () =
  with_db "gen" (fun b _ ->
      let layout, _ = generate b in
      check Alcotest.int "node count" 781 (B.node_count b ~doc:1);
      assert_verifies b layout)

let test_children_order_via_pos () =
  with_db "order" (fun b _ ->
      B.begin_txn b;
      List.iter
        (fun oid ->
          B.create_node b
            { Schema.oid; doc = 1; unique_id = oid; ten = 1; hundred = 1;
              million = 1; payload = Schema.P_internal })
        [ 1; 2; 3; 4 ];
      (* Insert children out of OID order: sequence must follow insertion
         order, not key order. *)
      B.add_child b ~parent:1 ~child:3;
      B.add_child b ~parent:1 ~child:2;
      B.add_child b ~parent:1 ~child:4;
      B.commit b;
      check (Alcotest.array Alcotest.int) "insertion order" [| 3; 2; 4 |]
        (B.children b 1))

let test_ops_match_memdb () =
  let bm = Hyper_memdb.Memdb.create () in
  let module GenM = Generator.Make (Hyper_memdb.Memdb) in
  let module OM = Ops.Make (Hyper_memdb.Memdb) in
  let _layout_m, _ = GenM.generate bm ~doc:1 ~leaf_level:4 ~seed:11L in
  with_db "match" (fun b _ ->
      let layout, _ = generate ~seed:11L b in
      Layout.iter_oids layout (fun oid ->
          if B.million b oid <> Hyper_memdb.Memdb.million bm oid then
            Alcotest.failf "million differs at %d" oid;
          if B.part_of b oid <> Hyper_memdb.Memdb.part_of bm oid then
            Alcotest.failf "part_of differs at %d" oid;
          if B.refs_from b oid <> Hyper_memdb.Memdb.refs_from bm oid then
            Alcotest.failf "refs_from differs at %d" oid);
      let start = Layout.level_first_oid layout 3 in
      B.begin_txn b;
      let c1 = O.closure_mn b ~start in
      B.commit b;
      Hyper_memdb.Memdb.begin_txn bm;
      let c2 = OM.closure_mn bm ~start in
      Hyper_memdb.Memdb.commit bm;
      check (Alcotest.list Alcotest.int) "identical M-N closures" c2 c1;
      let s1 = O.closure_1n_att_sum b ~start in
      let s2 = OM.closure_1n_att_sum bm ~start in
      check Alcotest.int "identical attribute sums" s2 s1)

let test_persistence () =
  let path = temp_path "persist" in
  let config = B.default_config ~path in
  let b = B.open_db config in
  let layout, _ = generate b in
  B.close b;
  let b2 = B.open_db config in
  check Alcotest.bool "no recovery" true (B.last_recovery b2 = None);
  assert_verifies b2 layout;
  B.close b2;
  cleanup path

let test_abort () =
  with_db "abort" (fun b _ ->
      let layout, _ = generate b in
      let start = Layout.level_first_oid layout 3 in
      let sum0 = O.closure_1n_att_sum b ~start in
      B.begin_txn b;
      ignore (O.closure_1n_att_set b ~start : int);
      B.abort b;
      check Alcotest.int "rolled back" sum0 (O.closure_1n_att_sum b ~start);
      assert_verifies b layout)

let test_text_and_form_edits () =
  with_db "edits" (fun b _ ->
      let layout, _ = generate b in
      let rng = Hyper_util.Prng.create 2L in
      let text_oid = Layout.random_text layout rng in
      let original = B.text b text_oid in
      B.begin_txn b;
      O.text_node_edit b ~oid:text_oid;
      O.text_node_edit b ~oid:text_oid;
      B.commit b;
      check Alcotest.string "text restored" original (B.text b text_oid);
      let form_oid = Layout.random_form layout rng in
      B.begin_txn b;
      O.form_node_edit b ~oid:form_oid ~x:5 ~y:5 ~w:25 ~h:25;
      B.commit b;
      check Alcotest.int "form edit persisted" (25 * 25)
        (Hyper_util.Bitmap.count_set (B.form b form_oid));
      Alcotest.check_raises "text of internal node"
        (Invalid_argument "Reldb: node 1 is not a text node") (fun () ->
          ignore (B.text b 1)))

let test_protocol_smoke () =
  with_db "protocol" (fun b _ ->
      let layout, _ = generate b in
      let config = { Protocol.default_config with reps = 3 } in
      let ms = P.run_all ~config b layout in
      check Alcotest.int "20 ops" 20 (List.length ms))

let test_traversal_costs_more_page_accesses () =
  (* The relational story: every 1-N hop is an index probe plus row
     fetches (a join), so a closure performs more logical page accesses
     (buffer hits + misses) than the object backend's direct
     object-table dereference.  Physical misses depend on table sizes;
     logical accesses expose the per-hop join cost directly. *)
  let accesses_rel =
    with_db "relio" (fun b _ ->
        let layout, _ = generate b in
        B.clear_caches b;
        B.reset_io b;
        let rng = Hyper_util.Prng.create 5L in
        B.begin_txn b;
        for _ = 1 to 20 do
          ignore (O.closure_1n b ~start:(Layout.random_level layout rng 3))
        done;
        B.commit b;
        let c = B.io_counters b in
        c.B.pool_hits + c.B.pool_misses)
  in
  let module D = Hyper_diskdb.Diskdb in
  let module GenD = Generator.Make (D) in
  let module OD = Ops.Make (D) in
  let path = temp_path "diskio" in
  let d = D.open_db (D.default_config ~path) in
  let layout, _ = GenD.generate d ~doc:1 ~leaf_level:4 ~seed:42L in
  D.clear_caches d;
  D.reset_io d;
  let rng = Hyper_util.Prng.create 5L in
  D.begin_txn d;
  for _ = 1 to 20 do
    ignore (OD.closure_1n d ~start:(Layout.random_level layout rng 3))
  done;
  D.commit d;
  let c = D.io_counters d in
  let accesses_disk = c.D.pool_hits + c.D.pool_misses in
  D.close d;
  cleanup path;
  if accesses_rel <= accesses_disk then
    Alcotest.failf "expected relational joins to touch more pages: %d vs %d"
      accesses_rel accesses_disk

let () =
  Alcotest.run "hyper_reldb"
    [
      ( "reldb",
        [
          Alcotest.test_case "generate + verify" `Quick test_generate_and_verify;
          Alcotest.test_case "children ordered by pos" `Quick
            test_children_order_via_pos;
          Alcotest.test_case "ops match memdb" `Quick test_ops_match_memdb;
          Alcotest.test_case "persistence" `Quick test_persistence;
          Alcotest.test_case "abort" `Quick test_abort;
          Alcotest.test_case "text/form edits" `Quick test_text_and_form_edits;
          Alcotest.test_case "protocol smoke" `Quick test_protocol_smoke;
          Alcotest.test_case "traversals touch more pages than diskdb" `Quick
            test_traversal_costs_more_page_accesses;
        ] );
    ]

(* Unit and property tests for Hyper_util: PRNG determinism and
   distribution, text generation against the paper's §5.1 rules, bitmap
   editing (op 17 semantics), statistics, tables and the virtual clock. *)

open Hyper_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let diff = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then diff := true
  done;
  check Alcotest.bool "streams differ" true !diff

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let child = Prng.split a in
  let c1 = Prng.next_int64 child in
  (* Recreate: the split child must be a pure function of the parent state. *)
  let b = Prng.create 7L in
  let child' = Prng.split b in
  check Alcotest.int64 "split deterministic" c1 (Prng.next_int64 child')

let test_prng_bounds () =
  let rng = Prng.create 3L in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Prng.int out of range: %d" v;
    let w = Prng.int_in rng 5 9 in
    if w < 5 || w > 9 then Alcotest.failf "Prng.int_in out of range: %d" w
  done

let test_prng_uniformity () =
  (* Paper: "random numbers should be drawn from a Uniform distribution".
     Chi-square-ish sanity check over 10 buckets. *)
  let rng = Prng.create 99L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_prng_invalid () =
  let rng = Prng.create 0L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Prng.int_in: hi < lo")
    (fun () -> ignore (Prng.int_in rng 5 4))

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair int64 (list small_int))
    (fun (seed, xs) ->
      let rng = Prng.create seed in
      let a = Array.of_list xs in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* --- Text_gen --- *)

let test_text_structure () =
  let rng = Prng.create 11L in
  for _ = 1 to 200 do
    let s = Text_gen.generate rng in
    let words = String.split_on_char ' ' s in
    let n = List.length words in
    if n < 10 || n > 100 then Alcotest.failf "word count %d out of 10..100" n;
    check Alcotest.string "first word" Text_gen.marker (List.nth words 0);
    check Alcotest.string "middle word" Text_gen.marker
      (List.nth words ((n - 1) / 2));
    check Alcotest.string "last word" Text_gen.marker (List.nth words (n - 1));
    List.iter
      (fun w ->
        let len = String.length w in
        if len < 1 || len > 10 then Alcotest.failf "word length %d" len;
        String.iter
          (fun c ->
            if not ((c >= 'a' && c <= 'z') || c = '1') then
              Alcotest.failf "bad char %c" c)
          w)
      words
  done

let test_text_average_size () =
  (* §5.2: text nodes average roughly 380 bytes. *)
  let rng = Prng.create 5L in
  let total = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    total := !total + String.length (Text_gen.generate rng)
  done;
  let avg = !total / n in
  if avg < 280 || avg > 440 then Alcotest.failf "average text size %d" avg

let test_replace_roundtrip () =
  let rng = Prng.create 21L in
  for _ = 1 to 100 do
    let s = Text_gen.generate rng in
    match Text_gen.replace_first s ~old_sub:"version1" ~new_sub:"version-2" with
    | None -> Alcotest.fail "marker not found"
    | Some s2 -> (
      check Alcotest.int "one char longer" (String.length s + 1) (String.length s2);
      match Text_gen.replace_first s2 ~old_sub:"version-2" ~new_sub:"version1" with
      | None -> Alcotest.fail "reverse marker not found"
      | Some s3 -> check Alcotest.string "round trip restores" s s3)
  done

let test_replace_absent () =
  check
    (Alcotest.option Alcotest.string)
    "absent" None
    (Text_gen.replace_first "hello world" ~old_sub:"xyz" ~new_sub:"q")

let test_count_occurrences () =
  check Alcotest.int "3 markers" 3
    (Text_gen.count_occurrences "version1 a version1 b version1"
       ~sub:"version1");
  check Alcotest.int "overlap handled" 2
    (Text_gen.count_occurrences "aaaa" ~sub:"aa")

(* --- Bitmap --- *)

let test_bitmap_basic () =
  let b = Bitmap.create ~width:10 ~height:7 in
  check Alcotest.int "initially white" 0 (Bitmap.count_set b);
  Bitmap.set b ~x:3 ~y:4 true;
  check Alcotest.bool "set bit reads back" true (Bitmap.get b ~x:3 ~y:4);
  check Alcotest.bool "neighbour untouched" false (Bitmap.get b ~x:4 ~y:4);
  check Alcotest.int "one bit set" 1 (Bitmap.count_set b);
  Bitmap.set b ~x:3 ~y:4 false;
  check Alcotest.int "cleared" 0 (Bitmap.count_set b)

let test_bitmap_invert_rect () =
  let b = Bitmap.create ~width:100 ~height:100 in
  Bitmap.invert_rect b ~x:10 ~y:20 ~w:25 ~h:25;
  check Alcotest.int "25x25 set" (25 * 25) (Bitmap.count_set b);
  check Alcotest.bool "inside" true (Bitmap.get b ~x:10 ~y:20);
  check Alcotest.bool "outside" false (Bitmap.get b ~x:9 ~y:20);
  (* Op 17 is self-inverse: repeating the edit restores the node. *)
  Bitmap.invert_rect b ~x:10 ~y:20 ~w:25 ~h:25;
  check Alcotest.int "restored" 0 (Bitmap.count_set b)

let test_bitmap_invert_overlapping () =
  let b = Bitmap.create ~width:50 ~height:50 in
  Bitmap.invert_rect b ~x:0 ~y:0 ~w:30 ~h:30;
  Bitmap.invert_rect b ~x:20 ~y:20 ~w:30 ~h:30;
  (* Overlap 10x10 flipped twice. *)
  check Alcotest.int "xor overlap" ((30 * 30 * 2) - (2 * 10 * 10))
    (Bitmap.count_set b)

let test_bitmap_bounds () =
  let b = Bitmap.create ~width:10 ~height:10 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Bitmap: coordinates out of bounds") (fun () ->
      ignore (Bitmap.get b ~x:10 ~y:0));
  Alcotest.check_raises "rect exceeds"
    (Invalid_argument "Bitmap.invert_rect: rectangle exceeds bitmap")
    (fun () -> Bitmap.invert_rect b ~x:5 ~y:5 ~w:6 ~h:1)

let prop_bitmap_serialization =
  QCheck.Test.make ~name:"bitmap to_bytes/of_bytes round trip" ~count:100
    QCheck.(triple (int_range 1 64) (int_range 1 64) (small_list (pair small_nat small_nat)))
    (fun (w, h, points) ->
      let b = Bitmap.create ~width:w ~height:h in
      List.iter
        (fun (x, y) -> Bitmap.set b ~x:(x mod w) ~y:(y mod h) true)
        points;
      Bitmap.equal b (Bitmap.of_bytes (Bitmap.to_bytes b)))

let prop_invert_rect_count =
  QCheck.Test.make ~name:"invert_rect on white sets w*h bits" ~count:100
    QCheck.(quad (int_range 1 80) (int_range 1 80) small_nat small_nat)
    (fun (w, h, x, y) ->
      let bw = 100 and bh = 100 in
      let x = x mod (bw - w) and y = y mod (bh - h) in
      let b = Bitmap.create ~width:bw ~height:bh in
      Bitmap.invert_rect b ~x ~y ~w ~h;
      Bitmap.count_set b = w * h)

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check Alcotest.int "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "total" 15.0 (Stats.total s);
  check (Alcotest.float 1e-6) "stddev" (sqrt 2.5) (Stats.stddev s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.max s);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.median s);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile s 100.0)

let test_stats_growth () =
  let s = Stats.create () in
  for i = 1 to 1000 do
    Stats.add s (float_of_int i)
  done;
  check Alcotest.int "count 1000" 1000 (Stats.count s);
  check (Alcotest.float 1e-6) "mean 500.5" 500.5 (Stats.mean s)

let prop_percentile_monotonic =
  QCheck.Test.make ~name:"percentile is monotonic and bounded" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 40) (float_bound_exclusive 1000.0))
              (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let v1 = Stats.percentile s lo and v2 = Stats.percentile s hi in
      v1 <= v2 +. 1e-9
      && v1 >= Stats.min s -. 1e-9
      && v2 <= Stats.max s +. 1e-9)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "empty mean" 0.0 (Stats.mean s);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty series") (fun () ->
      ignore (Stats.percentile s 50.0))

(* --- Vclock --- *)

let test_vclock_advance () =
  Vclock.reset_virtual ();
  let (), span = Vclock.time (fun () -> Vclock.advance_ns 5000.0) in
  check (Alcotest.float 1e-9) "virtual part" 5000.0 span.Vclock.virtual_ns;
  if Vclock.total_ns span < 5000.0 then Alcotest.fail "total includes virtual";
  Vclock.reset_virtual ();
  check (Alcotest.float 0.0) "reset" 0.0 (Vclock.virtual_ns ())

let test_vclock_monotonic () =
  let t0 = Vclock.now_ns () in
  let t1 = Vclock.now_ns () in
  if t1 < t0 then Alcotest.fail "clock went backwards"

let test_vclock_negative () =
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Vclock.advance_ns: negative") (fun () ->
      Vclock.advance_ns (-1.0))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~title:"T" [ ("op", Table.Left); ("ms", Table.Right) ] in
  Table.add_row t [ "nameLookup"; "0.12" ];
  Table.add_separator t;
  Table.add_row t [ "seqScan"; "3.4" ];
  let s = Table.render t in
  check Alcotest.bool "has title" true (String.length s > 0 && s.[0] = 'T');
  check Alcotest.bool "contains op" true
    (Text_gen.count_occurrences s ~sub:"nameLookup" = 1);
  (* Right-aligned numbers: "0.12" is preceded by a space run. *)
  check Alcotest.bool "contains value" true
    (Text_gen.count_occurrences s ~sub:"0.12" = 1)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_fms () =
  check Alcotest.string "small" "0.034" (Table.fms 0.0341);
  check Alcotest.string "unit" "1.50" (Table.fms 1.5);
  check Alcotest.string "hundreds" "150.0" (Table.fms 149.96);
  check Alcotest.string "thousands" "1510" (Table.fms 1510.2)

let () =
  Alcotest.run "hyper_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split deterministic" `Quick test_prng_split_independent;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "invalid args" `Quick test_prng_invalid;
          qtest prop_shuffle_permutation;
        ] );
      ( "text_gen",
        [
          Alcotest.test_case "structure per spec" `Quick test_text_structure;
          Alcotest.test_case "average size ~380B" `Quick test_text_average_size;
          Alcotest.test_case "edit round trip" `Quick test_replace_roundtrip;
          Alcotest.test_case "replace absent" `Quick test_replace_absent;
          Alcotest.test_case "count occurrences" `Quick test_count_occurrences;
        ] );
      ( "bitmap",
        [
          Alcotest.test_case "get/set" `Quick test_bitmap_basic;
          Alcotest.test_case "invert rect (op 17)" `Quick test_bitmap_invert_rect;
          Alcotest.test_case "overlapping inverts" `Quick test_bitmap_invert_overlapping;
          Alcotest.test_case "bounds checking" `Quick test_bitmap_bounds;
          qtest prop_bitmap_serialization;
          qtest prop_invert_rect_count;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "growth" `Quick test_stats_growth;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          qtest prop_percentile_monotonic;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "advance" `Quick test_vclock_advance;
          Alcotest.test_case "monotonic" `Quick test_vclock_monotonic;
          Alcotest.test_case "negative rejected" `Quick test_vclock_negative;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "fms formatting" `Quick test_table_fms;
        ] );
    ]

(* Crash-recovery fuzzing.

   A workload of K committed transactions (each inserting a batch of 100
   nodes) runs against the disk backend with a tiny buffer pool (so
   dirty-page steals and WAL activity are constant).  At random points we
   "crash": snapshot the data file and WAL, truncate a random suffix of
   the WAL copy (a torn tail), then open the copy.

   Required property: recovery always lands on a *committed prefix* —
   the recovered database contains exactly the batches of the first j
   transactions for some j, with the uniqueId index, the object table and
   the heap mutually consistent.  No partial batches, no phantom nodes,
   no broken lookups. *)

open Hyper_core
module B = Hyper_diskdb.Diskdb

let check = Alcotest.check

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_fuzz_%d_%s_%d" (Unix.getpid ()) name !counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".wal" ]

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc

let truncate_file path bytes =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (max 0 (size - bytes));
  Unix.close fd

let batch_size = 100

let insert_batch b ~batch =
  B.begin_txn b;
  for i = 0 to batch_size - 1 do
    let oid = (batch * batch_size) + i + 1 in
    B.create_node b
      { Schema.oid; doc = 1; unique_id = oid; ten = (batch mod 10) + 1;
        hundred = (oid mod 100) + 1; million = oid;
        payload =
          (if i mod 10 = 0 then Schema.P_text (String.make 500 'f')
           else Schema.P_internal) }
  done;
  B.commit b

(* Check the committed-prefix property on a recovered store. *)
let assert_committed_prefix b ~max_batches =
  let count = B.node_count b ~doc:1 in
  if count mod batch_size <> 0 then
    Alcotest.failf "partial batch visible: %d nodes" count;
  let batches = count / batch_size in
  if batches > max_batches then
    Alcotest.failf "phantom batches: %d > %d" batches max_batches;
  (* Every node of the prefix is fully reachable... *)
  for oid = 1 to count do
    (match B.lookup_unique b ~doc:1 oid with
    | Some o when o = oid -> ()
    | Some o -> Alcotest.failf "uid %d resolves to %d" oid o
    | None -> Alcotest.failf "uid %d lost from index" oid);
    let h = B.hundred b oid in
    if h <> (oid mod 100) + 1 then
      Alcotest.failf "oid %d: hundred corrupted (%d)" oid h;
    if oid mod (10 * batch_size) mod 10 = 0 then ()
  done;
  (* ... and nothing beyond it exists. *)
  for oid = count + 1 to max_batches * batch_size do
    match B.lookup_unique b ~doc:1 oid with
    | None -> ()
    | Some _ -> Alcotest.failf "uid %d should not exist" oid
  done;
  (* The attribute index agrees with a scan. *)
  let indexed = List.length (B.range_hundred b ~doc:1 ~lo:1 ~hi:100) in
  check Alcotest.int "index covers exactly the prefix" count indexed;
  batches

let test_truncation_points () =
  let rng = Hyper_util.Prng.create 0xF00DL in
  let scenarios = 12 in
  let total_batches = 6 in
  for scenario = 1 to scenarios do
    let path = temp_path "base" in
    cleanup path;
    let b = B.open_db { (B.default_config ~path) with B.pool_pages = 8 } in
    (* Commit a random number of batches, then optionally leave a
       transaction in flight at the crash point. *)
    let committed = 1 + Hyper_util.Prng.int rng total_batches in
    for batch = 0 to committed - 1 do
      insert_batch b ~batch
    done;
    let in_flight = Hyper_util.Prng.bool rng in
    if in_flight then begin
      B.begin_txn b;
      for i = 0 to 49 do
        let oid = 900_000 + (scenario * 100) + i in
        B.create_node b
          { Schema.oid; doc = 1; unique_id = oid; ten = 1; hundred = 1;
            million = 1; payload = Schema.P_internal }
      done
      (* neither committed nor aborted: crash takes it down *)
    end;
    (* Crash: snapshot, then tear a random amount off the WAL tail. *)
    let snapshot = temp_path "crash" in
    cleanup snapshot;
    copy_file path snapshot;
    copy_file (path ^ ".wal") (snapshot ^ ".wal");
    let tear = Hyper_util.Prng.int rng 4096 in
    truncate_file (snapshot ^ ".wal") tear;
    (if in_flight then B.abort b);
    B.close b;
    cleanup path;
    (* Recover and verify the committed-prefix property. *)
    let b2 =
      B.open_db { (B.default_config ~path:snapshot) with B.pool_pages = 64 }
    in
    let recovered = assert_committed_prefix b2 ~max_batches:committed in
    (* An in-flight transaction must never surface. *)
    (match B.lookup_unique b2 ~doc:1 (900_000 + (scenario * 100)) with
    | None -> ()
    | Some _ -> Alcotest.fail "in-flight transaction surfaced");
    (* The store stays writable after recovery. *)
    insert_batch b2 ~batch:recovered;
    check Alcotest.int "writable after recovery"
      ((recovered + 1) * batch_size)
      (B.node_count b2 ~doc:1);
    B.close b2;
    cleanup snapshot
  done

let test_wal_fully_lost () =
  (* Losing the whole WAL after a clean flush must still leave the
     committed data intact (commit forces pages to the data file). *)
  let path = temp_path "nowal" in
  cleanup path;
  let b = B.open_db { (B.default_config ~path) with B.pool_pages = 8 } in
  insert_batch b ~batch:0;
  insert_batch b ~batch:1;
  B.close b;
  Sys.remove (path ^ ".wal");
  let b2 = B.open_db (B.default_config ~path) in
  check Alcotest.int "data survives without wal" (2 * batch_size)
    (B.node_count b2 ~doc:1);
  ignore (assert_committed_prefix b2 ~max_batches:2);
  B.close b2;
  cleanup path

let () =
  Alcotest.run "hyper_recovery_fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "random torn-tail crashes" `Quick
            test_truncation_points;
          Alcotest.test_case "wal lost entirely" `Quick test_wal_fully_lost;
        ] );
    ]

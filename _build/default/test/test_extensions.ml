(* Extension-operation tests (paper §6.8): E1 schema modification (R4),
   E2 versions and variants (R5), E3 access control (R11) — run against
   the in-memory backend, plus the cross-structure link demo. *)

open Hyper_core
module B = Hyper_memdb.Memdb
module Gen = Generator.Make (B)
module E = Extensions.Make (B)

let check = Alcotest.check

let generate ?(doc = 1) ?(oid_base = 0) ?(seed = 42L) b =
  Gen.generate ~oid_base b ~doc ~leaf_level:4 ~seed

(* --- E1 --- *)

let test_add_draw_node () =
  let b = B.create () in
  let layout, _ = generate b in
  B.begin_txn b;
  E.add_draw_node b ~layout ~oid:90_000 ~unique_id:90_000;
  B.commit b;
  check Alcotest.bool "kind is draw" true (B.kind b 90_000 = Schema.Draw);
  (* It joined the root's children sequence. *)
  let kids = B.children b (Layout.root layout) in
  check Alcotest.int "root now has 6 children" 6 (Array.length kids);
  check Alcotest.int "appended last" 90_000 (kids.(5))

let test_add_attribute_everywhere () =
  let b = B.create () in
  let layout, _ = generate b in
  B.begin_txn b;
  let touched =
    E.add_attribute_everywhere b ~layout ~name:"layer" ~value:(fun oid ->
        oid mod 7)
  in
  B.commit b;
  check Alcotest.int "all nodes touched" 781 touched;
  Layout.iter_oids layout (fun oid ->
      match B.dyn_attr b oid "layer" with
      | Some v -> if v <> oid mod 7 then Alcotest.failf "bad value at %d" oid
      | None -> Alcotest.failf "missing attribute at %d" oid)

(* --- E2 --- *)

let test_versioned_edits () =
  let b = B.create () in
  let layout, _ = generate b in
  let vs = E.create_versions () in
  let oid = Layout.random_text layout (Hyper_util.Prng.create 1L) in
  let original = B.text b oid in
  B.begin_txn b;
  let t1 = E.edit_with_version vs b oid in
  B.commit b;
  let after_first = B.text b oid in
  check Alcotest.bool "edit changed the text" true (original <> after_first);
  check (Alcotest.option Alcotest.string) "previous version = original"
    (Some original)
    (E.previous_version vs oid);
  B.begin_txn b;
  let _t2 = E.edit_with_version vs b oid in
  B.commit b;
  check (Alcotest.option Alcotest.string) "previous = intermediate"
    (Some after_first) (E.previous_version vs oid);
  (* The chain records content as of each time: at t1 the first edit had
     just been applied; just before it, the text was the original. *)
  check (Alcotest.option Alcotest.string) "as_of t1 = first edit"
    (Some after_first)
    (E.version_as_of vs oid ~time:t1);
  check (Alcotest.option Alcotest.string) "as_of t1-1 = original"
    (Some original)
    (E.version_as_of vs oid ~time:(t1 - 1));
  check Alcotest.int "original + two edits recorded" 3
    (E.version_count vs oid);
  check Alcotest.string "current restored (self-inverse edits)" original
    (E.current_text vs b oid)

let test_structure_as_of () =
  (* R5: reconstruct a node structure as it was at a time-point. *)
  let b = B.create () in
  let layout, _ = generate b in
  let vs = E.create_versions () in
  let start = Layout.level_first_oid layout 3 in
  let texts_before =
    List.filter_map
      (fun oid -> if B.kind b oid = Schema.Text then Some (oid, B.text b oid) else None)
      (start :: Array.to_list (Layout.children_of layout start))
  in
  check Alcotest.bool "subtree has text nodes" true (texts_before <> []);
  (* Edit every text node in the subtree, remembering the time before. *)
  let snapshot_time = ref 0 in
  List.iteri
    (fun i (oid, _) ->
      B.begin_txn b;
      let ts = E.edit_with_version vs b oid in
      B.commit b;
      if i = 0 then snapshot_time := ts - 2 (* before the first edit *))
    texts_before;
  (* Reconstruction at the pre-edit time yields the original contents. *)
  let reconstructed =
    E.structure_as_of vs b ~start ~time:!snapshot_time
  in
  check Alcotest.int "all text nodes reconstructed"
    (List.length texts_before)
    (List.length reconstructed);
  List.iter2
    (fun (oid, original) (oid', content) ->
      check Alcotest.int "pre-order positions match" oid oid';
      check Alcotest.string
        (Printf.sprintf "node %d content at snapshot" oid)
        original content)
    texts_before reconstructed;
  (* Reconstruction "now" equals the current (edited) contents. *)
  let now = E.structure_as_of vs b ~start ~time:max_int in
  List.iter
    (fun (oid, content) ->
      check Alcotest.string
        (Printf.sprintf "node %d current" oid)
        (B.text b oid) content)
    now

let test_variants () =
  let b = B.create () in
  let layout, _ = generate b in
  let vs = E.create_versions () in
  let oid = Layout.random_text layout (Hyper_util.Prng.create 2L) in
  let original = B.text b oid in
  ignore (E.create_variant vs b oid ~variant:"experiment" : int);
  B.begin_txn b;
  ignore (E.edit_with_version vs b oid : int);
  B.commit b;
  check (Alcotest.option Alcotest.string) "variant keeps checkout state"
    (Some original)
    (E.variant_text vs oid ~variant:"experiment");
  check (Alcotest.option Alcotest.string) "unknown variant" None
    (E.variant_text vs oid ~variant:"nope")

(* --- E3 --- *)

let test_access_policies () =
  let acl = Access.create () in
  Access.register acl ~doc:1 ~owner:"alice";
  check Alcotest.bool "owner writes" true
    (Access.allowed acl ~user:"alice" ~doc:1 Access.Write);
  check Alcotest.bool "stranger blocked" false
    (Access.allowed acl ~user:"bob" ~doc:1 Access.Read);
  Access.set_public acl ~doc:1 ~read:true ~write:false;
  check Alcotest.bool "public read" true
    (Access.allowed acl ~user:"bob" ~doc:1 Access.Read);
  check Alcotest.bool "write still blocked" false
    (Access.allowed acl ~user:"bob" ~doc:1 Access.Write);
  check Alcotest.bool "unregistered open" true
    (Access.allowed acl ~user:"bob" ~doc:99 Access.Write);
  (match Access.check acl ~user:"bob" ~doc:1 Access.Write with
  | () -> Alcotest.fail "expected Denied"
  | exception Access.Denied { user = "bob"; doc = 1; wanted = Access.Write } ->
    ()
  | exception e -> raise e);
  Alcotest.check_raises "double registration"
    (Invalid_argument "Access.register: document 1 already registered")
    (fun () -> Access.register acl ~doc:1 ~owner:"carol")

let test_two_documents_with_cross_link () =
  let b = B.create () in
  let layout_a, _ = generate ~doc:1 ~oid_base:0 b in
  let layout_b, _ = generate ~doc:2 ~oid_base:1_000_000 ~seed:43L b in
  let acl = Access.create () in
  Access.register acl ~doc:1 ~owner:"alice";
  Access.register acl ~doc:2 ~owner:"alice";
  B.begin_txn b;
  let read_a, write_a, write_b, link_works =
    E.demo_two_documents b ~acl ~doc_a:layout_a ~doc_b:layout_b ~user:"bob"
  in
  B.commit b;
  check Alcotest.bool "bob reads A" true read_a;
  check Alcotest.bool "bob cannot write A" false write_a;
  check Alcotest.bool "bob writes B" true write_b;
  check Alcotest.bool "link across structures works" true link_works

let () =
  Alcotest.run "hyper_extensions"
    [
      ( "e1 schema modification",
        [
          Alcotest.test_case "add DrawNode" `Quick test_add_draw_node;
          Alcotest.test_case "add attribute everywhere" `Quick
            test_add_attribute_everywhere;
        ] );
      ( "e2 versions",
        [
          Alcotest.test_case "versioned edits" `Quick test_versioned_edits;
          Alcotest.test_case "structure as of time (R5)" `Quick
            test_structure_as_of;
          Alcotest.test_case "variants" `Quick test_variants;
        ] );
      ( "e3 access control",
        [
          Alcotest.test_case "policies" `Quick test_access_policies;
          Alcotest.test_case "two documents + cross link" `Quick
            test_two_documents_with_cross_link;
        ] );
    ]

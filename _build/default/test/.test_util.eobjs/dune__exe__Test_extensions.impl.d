test/test_extensions.ml: Access Alcotest Array Extensions Generator Hyper_core Hyper_memdb Hyper_util Layout List Printf Schema

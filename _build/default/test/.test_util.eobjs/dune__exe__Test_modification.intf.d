test/test_modification.mli:

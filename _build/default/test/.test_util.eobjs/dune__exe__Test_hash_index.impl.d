test/test_hash_index.ml: Alcotest Buffer_pool Freelist Fun Hashtbl Hyper_index Hyper_storage List Pager Printf QCheck QCheck_alcotest

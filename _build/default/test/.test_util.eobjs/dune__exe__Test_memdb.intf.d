test/test_memdb.mli:

test/test_memdb.ml: Alcotest Array Generator Hyper_core Hyper_memdb Hyper_util Layout List Ops Printf Protocol Schema String Verify

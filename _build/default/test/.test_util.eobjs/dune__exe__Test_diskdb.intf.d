test/test_diskdb.mli:

test/test_net.ml: Alcotest Channel Fun Hyper_net Hyper_storage Hyper_util Latency_model List Page Pager

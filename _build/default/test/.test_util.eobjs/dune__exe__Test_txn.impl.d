test/test_txn.ml: Alcotest Hyper_txn List Lock_manager Mutex Occ Option Thread Version_store Workspace

test/test_recovery_fuzz.mli:

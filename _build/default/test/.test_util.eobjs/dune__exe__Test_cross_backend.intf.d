test/test_cross_backend.mli:

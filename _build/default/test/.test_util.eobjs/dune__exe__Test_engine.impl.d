test/test_engine.ml: Alcotest Buffer_pool Bytes Engine Filename Fun Hyper_core Hyper_diskdb Hyper_reldb Hyper_storage Hyper_util List Printf QCheck QCheck_alcotest Sys Unix Wal

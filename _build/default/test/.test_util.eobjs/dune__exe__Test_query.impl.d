test/test_query.ml: Alcotest Hyper_core Hyper_memdb Hyper_query Hyper_util Lazy List

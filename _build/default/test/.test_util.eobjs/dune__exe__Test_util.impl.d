test/test_util.ml: Alcotest Array Bitmap Float Gen Hyper_util List Prng QCheck QCheck_alcotest Stats String Table Text_gen Vclock

test/test_index.ml: Alcotest Array Buffer_pool Freelist Hashtbl Hyper_index Hyper_storage Hyper_util List Pager Printf QCheck QCheck_alcotest

test/test_diskdb.ml: Alcotest Filename Fun Generator Hyper_core Hyper_diskdb Hyper_memdb Hyper_storage Hyper_util Layout List Ops Printf Protocol Schema String Sys Unix Verify

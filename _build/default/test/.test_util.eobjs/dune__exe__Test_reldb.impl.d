test/test_reldb.ml: Alcotest Filename Fun Generator Hyper_core Hyper_diskdb Hyper_memdb Hyper_reldb Hyper_util Layout List Ops Printf Protocol Schema Sys Unix Verify

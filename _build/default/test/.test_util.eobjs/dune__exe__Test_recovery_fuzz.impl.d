test/test_recovery_fuzz.ml: Alcotest Filename Hyper_core Hyper_diskdb Hyper_util List Printf Schema String Sys Unix

test/test_modification.ml: Alcotest Array Backend Filename Fun Generator Hyper_core Hyper_diskdb Hyper_memdb Hyper_reldb Layout List Option Printf Schema Sys Unix Verify

(* Query-language tests: lexer, parser (grammar + errors), predicate
   evaluation, planner access-path choice, engine execution against a
   synthetic source, and end-to-end queries through Query_bridge over the
   memdb backend (with index/scan agreement). *)

module Ast = Hyper_query.Ast
module Lexer = Hyper_query.Lexer
module Parser = Hyper_query.Parser
module Planner = Hyper_query.Planner
module Engine = Hyper_query.Engine

let check = Alcotest.check

(* --- Lexer --- *)

let test_lexer_tokens () =
  let tokens = Lexer.tokenize "select WHERE hundred >= 10 and (ten != 3)" in
  let strings = List.map Lexer.token_to_string tokens in
  check
    (Alcotest.list Alcotest.string)
    "token stream"
    [ "select"; "where"; "hundred"; ">="; "10"; "and"; "("; "ten"; "!="; "3";
      ")"; "<eof>" ]
    strings

let test_lexer_operators () =
  let ops = Lexer.tokenize "= != < <= > >= <>" in
  check Alcotest.int "7 ops + eof" 8 (List.length ops)

let test_lexer_error () =
  match Lexer.tokenize "ten @ 3" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error _ -> ()

(* --- Parser --- *)

let roundtrip q = Ast.stmt_to_string (Parser.parse q)

let test_parse_simple () =
  check Alcotest.string "simple" "select where hundred between 10 and 19"
    (roundtrip "select where hundred between 10 and 19");
  check Alcotest.string "count" "count where ten = 3"
    (roundtrip "count where ten = 3");
  check Alcotest.string "limit" "select where true limit 5"
    (roundtrip "select where true limit 5")

let test_parse_precedence () =
  (* and binds tighter than or *)
  check Alcotest.string "precedence"
    "select where (ten = 1 or (ten = 2 and hundred = 3))"
    (roundtrip "select where ten = 1 or ten = 2 and hundred = 3")

let test_parse_not_and_parens () =
  check Alcotest.string "not" "select where (not kind = form)"
    (roundtrip "select where not kind = form");
  check Alcotest.string "parens"
    "select where ((ten = 1 or ten = 2) and hundred = 3)"
    (roundtrip "select where (ten = 1 or ten = 2) and hundred = 3")

let test_parse_errors () =
  let expect_fail q =
    match Parser.parse q with
    | _ -> Alcotest.failf "expected parse error for %S" q
    | exception Parser.Parse_error _ -> ()
  in
  expect_fail "select hundred = 3";
  expect_fail "select where bogus = 3";
  expect_fail "select where hundred between 9 and 5";
  expect_fail "select where kind = banana";
  expect_fail "select where ten = 3 trailing";
  expect_fail "delete where ten = 3"

(* --- Eval --- *)

let row ?(oid = 1) ?(uid = 1) ?(ten = 5) ?(hundred = 50) ?(million = 500_000)
    ?(kind = Ast.Text) () =
  { Ast.oid; unique_id = uid; ten; hundred; million; kind }

let test_eval () =
  let e = Parser.parse_expr "hundred between 40 and 60 and not kind = form" in
  check Alcotest.bool "matches" true (Ast.eval e (row ()));
  check Alcotest.bool "kind excluded" false
    (Ast.eval e (row ~kind:Ast.Form ()));
  check Alcotest.bool "out of range" false (Ast.eval e (row ~hundred:70 ()));
  let e2 = Parser.parse_expr "ten = 5 or million < 1000" in
  check Alcotest.bool "or left" true (Ast.eval e2 (row ()));
  check Alcotest.bool "or right" true
    (Ast.eval e2 (row ~ten:1 ~million:500 ()));
  check Alcotest.bool "neither" false (Ast.eval e2 (row ~ten:1 ()))

(* --- Planner --- *)

let plan_str ?(indexed = fun _ -> true) q =
  Planner.plan_to_string (Planner.plan ~indexed (Parser.parse_expr q))

let test_planner_picks_index () =
  let s = plan_str "hundred between 10 and 19" in
  check Alcotest.bool "index range" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"index-range hundred" = 1)

let test_planner_full_scan_when_unindexed () =
  let indexed = function Ast.Ten -> false | _ -> true in
  let s = plan_str ~indexed "ten = 3" in
  check Alcotest.bool "full scan" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"full-scan" = 1)

let test_planner_picks_most_selective () =
  (* million equality (width 1) beats a hundred range (width 10). *)
  let s = plan_str "hundred between 10 and 19 and million = 5" in
  check Alcotest.bool "million chosen" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"index-range million" = 1);
  (* The other conjunct survives as a residual filter. *)
  check Alcotest.bool "residual keeps hundred" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"hundred between 10 and 19" = 1)

let test_planner_or_blocks_index () =
  (* A disjunction cannot be served by one index probe. *)
  let s = plan_str "hundred = 4 or million = 5" in
  check Alcotest.bool "full scan on or" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"full-scan" = 1)

(* --- Engine over a synthetic source --- *)

let synthetic_rows =
  List.init 100 (fun i ->
      row ~oid:(i + 1) ~uid:(i + 1) ~ten:((i mod 10) + 1)
        ~hundred:((i mod 100) + 1)
        ~million:((i * 10_000) + 1)
        ~kind:(if i mod 10 = 0 then Ast.Form else Ast.Text)
        ())

let synthetic_source ?(with_index = true) () =
  let scan f = List.iter f synthetic_rows in
  let index_range attr ~lo ~hi f =
    match attr with
    | Ast.Hundred when with_index ->
      List.iter
        (fun r -> if r.Ast.hundred >= lo && r.Ast.hundred <= hi then f r)
        synthetic_rows;
      true
    | _ -> false
  in
  { Engine.scan; index_range }

let test_engine_select () =
  match
    Engine.run_string (synthetic_source ()) "select where hundred between 1 and 3"
  with
  | Engine.Oids oids ->
    check (Alcotest.list Alcotest.int) "oids" [ 1; 2; 3 ] oids
  | Engine.Count _ -> Alcotest.fail "expected oids"

let test_engine_count_and_limit () =
  (match Engine.run_string (synthetic_source ()) "count where kind = form" with
  | Engine.Count n -> check Alcotest.int "10 forms" 10 n
  | Engine.Oids _ -> Alcotest.fail "expected count");
  match
    Engine.run_string (synthetic_source ()) "select where kind = text limit 7"
  with
  | Engine.Oids oids -> check Alcotest.int "limited" 7 (List.length oids)
  | Engine.Count _ -> Alcotest.fail "expected oids"

let test_engine_index_equals_scan () =
  let q = "select where hundred between 20 and 40 and ten = 1" in
  let with_idx = Engine.run_string (synthetic_source ()) q in
  let without = Engine.run_string (synthetic_source ~with_index:false ()) q in
  check Alcotest.bool "same result either path" true (with_idx = without)

(* --- End to end through a backend --- *)

module B = Hyper_memdb.Memdb
module Gen = Hyper_core.Generator.Make (B)

let generated =
  lazy
    (let b = B.create () in
     let layout, _ = Gen.generate b ~doc:1 ~leaf_level:4 ~seed:21L in
     (b, layout))

let test_bridge_queries () =
  let b, layout = Lazy.force generated in
  let query q = Hyper_core.Query_bridge.query (module B) b ~doc:1 q in
  (match query "count where true" with
  | Engine.Count n -> check Alcotest.int "all nodes" 781 n
  | Engine.Oids _ -> Alcotest.fail "expected count");
  (match query "count where kind = form" with
  | Engine.Count n -> check Alcotest.int "5 forms" 5 n
  | Engine.Oids _ -> Alcotest.fail "expected count");
  (* Query result agrees with a manual filter. *)
  (match query "select where hundred between 10 and 19 and kind = text" with
  | Engine.Oids oids ->
    let expected = ref [] in
    Hyper_core.Layout.iter_oids layout (fun oid ->
        let h = B.hundred b oid in
        if h >= 10 && h <= 19 && B.kind b oid = Hyper_core.Schema.Text then
          expected := oid :: !expected);
    check (Alcotest.list Alcotest.int) "bridge = manual"
      (List.sort compare !expected) oids
  | Engine.Count _ -> Alcotest.fail "expected oids");
  (* uniqueId range goes through the index. *)
  match query "select where uniqueid between 1 and 5" with
  | Engine.Oids oids -> check (Alcotest.list Alcotest.int) "uids" [ 1; 2; 3; 4; 5 ] oids
  | Engine.Count _ -> Alcotest.fail "expected oids"

let test_bridge_explain () =
  let b, _ = Lazy.force generated in
  let explain q = Hyper_core.Query_bridge.explain (module B) b ~doc:1 q in
  check Alcotest.bool "hundred via index" true
    (Hyper_util.Text_gen.count_occurrences
       (explain "select where hundred between 1 and 10")
       ~sub:"index-range hundred"
    = 1);
  check Alcotest.bool "ten via scan" true
    (Hyper_util.Text_gen.count_occurrences
       (explain "select where ten = 4")
       ~sub:"full-scan"
    = 1)

let () =
  Alcotest.run "hyper_query"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "not + parens" `Quick test_parse_not_and_parens;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ("eval", [ Alcotest.test_case "predicates" `Quick test_eval ]);
      ( "planner",
        [
          Alcotest.test_case "picks index" `Quick test_planner_picks_index;
          Alcotest.test_case "scan when unindexed" `Quick
            test_planner_full_scan_when_unindexed;
          Alcotest.test_case "most selective wins" `Quick
            test_planner_picks_most_selective;
          Alcotest.test_case "or forces scan" `Quick test_planner_or_blocks_index;
        ] );
      ( "engine",
        [
          Alcotest.test_case "select" `Quick test_engine_select;
          Alcotest.test_case "count + limit" `Quick test_engine_count_and_limit;
          Alcotest.test_case "index = scan" `Quick test_engine_index_equals_scan;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "end-to-end queries" `Quick test_bridge_queries;
          Alcotest.test_case "explain" `Quick test_bridge_explain;
        ] );
    ]

(* B+tree tests: ordered-multimap semantics against a reference model,
   split behaviour at scale, duplicates, range scans, persistence via
   attach, and structural invariants after random workloads. *)

open Hyper_storage

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let with_tree ?(capacity = 256) k =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity in
  ignore (Buffer_pool.allocate pool) (* page 0 reserved *);
  let fl = Freelist.attach pool ~head:0 in
  let tree = Hyper_index.Btree.create pool fl in
  k pool fl tree

module B = Hyper_index.Btree

let test_empty () =
  with_tree (fun _ _ t ->
      check Alcotest.int "empty length" 0 (B.length t);
      check (Alcotest.option Alcotest.int) "find in empty" None
        (B.find_first t ~key:5);
      check Alcotest.bool "mem in empty" false (B.mem t ~key:5 ~value:1);
      check Alcotest.int "height 1" 1 (B.height t);
      B.check_invariants t)

let test_insert_lookup_small () =
  with_tree (fun _ _ t ->
      List.iter
        (fun (k, v) -> B.insert t ~key:k ~value:v)
        [ (5, 50); (3, 30); (8, 80); (1, 10); (9, 90) ];
      check (Alcotest.option Alcotest.int) "find 3" (Some 30)
        (B.find_first t ~key:3);
      check (Alcotest.option Alcotest.int) "find missing" None
        (B.find_first t ~key:4);
      check Alcotest.int "length" 5 (B.length t);
      B.check_invariants t)

let test_duplicates () =
  with_tree (fun _ _ t ->
      List.iter (fun v -> B.insert t ~key:7 ~value:v) [ 3; 1; 2; 1 ];
      check (Alcotest.list Alcotest.int) "all values sorted" [ 1; 2; 3 ]
        (B.find_all t ~key:7);
      check (Alcotest.option Alcotest.int) "first" (Some 1) (B.find_first t ~key:7);
      check Alcotest.int "set semantics" 3 (B.length t))

let test_large_sequential () =
  with_tree (fun _ _ t ->
      let n = 50_000 in
      for i = 1 to n do
        B.insert t ~key:i ~value:(i * 2)
      done;
      check Alcotest.int "length" n (B.length t);
      if B.height t < 3 then Alcotest.failf "height %d too small" (B.height t);
      for i = 1 to 1000 do
        let k = i * 47 mod n + 1 in
        check (Alcotest.option Alcotest.int)
          (Printf.sprintf "find %d" k)
          (Some (k * 2)) (B.find_first t ~key:k)
      done;
      B.check_invariants t)

let test_large_random () =
  with_tree (fun _ _ t ->
      let rng = Hyper_util.Prng.create 77L in
      let n = 20_000 in
      let keys = Array.init n (fun i -> i) in
      Hyper_util.Prng.shuffle rng keys;
      Array.iter (fun k -> B.insert t ~key:k ~value:(k + 1)) keys;
      check Alcotest.int "length" n (B.length t);
      B.check_invariants t;
      (* Full scan is sorted 0..n-1. *)
      let prev = ref (-1) in
      B.iter t (fun ~key ~value ->
          if key <> !prev + 1 then Alcotest.failf "gap at %d" key;
          if value <> key + 1 then Alcotest.failf "bad value at %d" key;
          prev := key);
      check Alcotest.int "scan covered all" (n - 1) !prev)

let test_range_scan () =
  with_tree (fun _ _ t ->
      for i = 1 to 1000 do
        B.insert t ~key:i ~value:i
      done;
      let collect lo hi =
        List.rev
          (B.fold_range t ~lo ~hi ~init:[] ~f:(fun acc ~key ~value:_ ->
               key :: acc))
      in
      check (Alcotest.list Alcotest.int) "small range" [ 10; 11; 12 ]
        (collect 10 12);
      check Alcotest.int "10% selectivity" 100 (List.length (collect 1 100));
      check (Alcotest.list Alcotest.int) "empty range" [] (collect 2000 3000);
      check (Alcotest.list Alcotest.int) "inverted range" [] (collect 12 10);
      check Alcotest.int "full range" 1000
        (List.length (collect min_int max_int)))

let test_delete () =
  with_tree (fun _ _ t ->
      for i = 1 to 100 do
        B.insert t ~key:i ~value:i
      done;
      check Alcotest.bool "delete present" true (B.delete t ~key:50 ~value:50);
      check Alcotest.bool "delete again" false (B.delete t ~key:50 ~value:50);
      check Alcotest.bool "delete absent" false (B.delete t ~key:500 ~value:1);
      check (Alcotest.option Alcotest.int) "gone" None (B.find_first t ~key:50);
      check Alcotest.int "length" 99 (B.length t);
      B.check_invariants t)

let test_delete_one_duplicate () =
  with_tree (fun _ _ t ->
      List.iter (fun v -> B.insert t ~key:1 ~value:v) [ 10; 20; 30 ];
      check Alcotest.bool "delete middle dup" true (B.delete t ~key:1 ~value:20);
      check (Alcotest.list Alcotest.int) "rest intact" [ 10; 30 ]
        (B.find_all t ~key:1))

let test_update_pattern () =
  (* The closure1NAttSet pattern: change an indexed attribute by
     delete(old) + insert(new), repeatedly, then restore. *)
  with_tree (fun _ _ t ->
      for oid = 1 to 500 do
        B.insert t ~key:(oid mod 100) ~value:oid
      done;
      for oid = 1 to 500 do
        let old_key = oid mod 100 in
        let new_key = 99 - old_key in
        check Alcotest.bool "remove old" true (B.delete t ~key:old_key ~value:oid);
        B.insert t ~key:new_key ~value:oid
      done;
      check Alcotest.int "length preserved" 500 (B.length t);
      B.check_invariants t;
      for oid = 1 to 500 do
        let k = 99 - (oid mod 100) in
        if not (B.mem t ~key:k ~value:oid) then
          Alcotest.failf "oid %d not at updated key %d" oid k
      done)

let test_attach_persistence () =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity:128 in
  ignore (Buffer_pool.allocate pool);
  let fl = Freelist.attach pool ~head:0 in
  let t = B.create pool fl in
  for i = 1 to 5000 do
    B.insert t ~key:i ~value:(i * 3)
  done;
  Buffer_pool.flush_all pool;
  let root = B.root t in
  (* Fresh pool over the same pager simulates reopening the database. *)
  let pool2 = Buffer_pool.create pager ~capacity:128 in
  let fl2 = Freelist.attach pool2 ~head:0 in
  let t2 = B.attach pool2 fl2 ~root in
  check Alcotest.int "length after attach" 5000 (B.length t2);
  check (Alcotest.option Alcotest.int) "lookup after attach" (Some 9999)
    (B.find_first t2 ~key:3333);
  B.check_invariants t2

let test_negative_keys () =
  with_tree (fun _ _ t ->
      List.iter (fun k -> B.insert t ~key:k ~value:k) [ -5; 0; 5; -1000; 1000 ];
      let all =
        List.rev
          (B.fold_range t ~lo:min_int ~hi:max_int ~init:[]
             ~f:(fun acc ~key ~value:_ -> key :: acc))
      in
      check (Alcotest.list Alcotest.int) "sorted with negatives"
        [ -1000; -5; 0; 5; 1000 ] all)

let test_tiny_pool_pressure () =
  (* The tree must work when the buffer pool is much smaller than the
     tree — every access re-reads pages through eviction. *)
  with_tree ~capacity:8 (fun _ _ t ->
      let n = 10_000 in
      for i = 1 to n do
        B.insert t ~key:i ~value:i
      done;
      for i = 1 to 100 do
        let k = i * 97 mod n + 1 in
        check (Alcotest.option Alcotest.int)
          (Printf.sprintf "find %d under pressure" k)
          (Some k) (B.find_first t ~key:k)
      done;
      B.check_invariants t)

(* Model-based property: tree behaves as a set of (key, value) pairs. *)
let prop_model =
  QCheck.Test.make ~name:"btree vs pair-set model" ~count:40
    QCheck.(
      small_list (triple (int_range 0 2) (int_range 0 50) (int_range 0 20)))
    (fun ops ->
      let pager = Pager.in_memory () in
      let pool = Buffer_pool.create pager ~capacity:64 in
      ignore (Buffer_pool.allocate pool);
      let fl = Freelist.attach pool ~head:0 in
      let t = B.create pool fl in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k, v) ->
          match op with
          | 0 ->
            B.insert t ~key:k ~value:v;
            Hashtbl.replace model (k, v) ()
          | 1 ->
            let expected = Hashtbl.mem model (k, v) in
            let got = B.delete t ~key:k ~value:v in
            if got <> expected then failwith "delete result mismatch";
            Hashtbl.remove model (k, v)
          | _ ->
            if B.mem t ~key:k ~value:v <> Hashtbl.mem model (k, v) then
              failwith "mem mismatch")
        ops;
      B.check_invariants t;
      let scanned =
        B.fold_range t ~lo:min_int ~hi:max_int ~init:0
          ~f:(fun acc ~key ~value ->
            if not (Hashtbl.mem model (key, value)) then
              failwith "phantom entry";
            acc + 1)
      in
      scanned = Hashtbl.length model)

let prop_range_matches_filter =
  QCheck.Test.make ~name:"fold_range equals filtered scan" ~count:40
    QCheck.(
      pair
        (small_list (pair (int_range 0 100) (int_range 0 10)))
        (pair (int_range 0 100) (int_range 0 100)))
    (fun (pairs, (a, b)) ->
      let lo = min a b and hi = max a b in
      let pager = Pager.in_memory () in
      let pool = Buffer_pool.create pager ~capacity:64 in
      ignore (Buffer_pool.allocate pool);
      let fl = Freelist.attach pool ~head:0 in
      let t = B.create pool fl in
      List.iter (fun (k, v) -> B.insert t ~key:k ~value:v) pairs;
      let expected =
        List.sort_uniq compare (List.filter (fun (k, _) -> k >= lo && k <= hi) pairs)
      in
      let got =
        List.rev
          (B.fold_range t ~lo ~hi ~init:[] ~f:(fun acc ~key ~value ->
               (key, value) :: acc))
      in
      got = expected)

let () =
  Alcotest.run "hyper_index"
    [
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/lookup small" `Quick test_insert_lookup_small;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "50k sequential" `Quick test_large_sequential;
          Alcotest.test_case "20k random" `Quick test_large_random;
          Alcotest.test_case "range scans" `Quick test_range_scan;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete one duplicate" `Quick test_delete_one_duplicate;
          Alcotest.test_case "indexed-attribute update pattern" `Quick
            test_update_pattern;
          Alcotest.test_case "attach persistence" `Quick test_attach_persistence;
          Alcotest.test_case "negative keys" `Quick test_negative_keys;
          Alcotest.test_case "tiny pool pressure" `Quick test_tiny_pool_pressure;
          qtest prop_model;
          qtest prop_range_matches_filter;
        ] );
    ]

(* Linear-hash index tests: model-based behaviour, growth through
   splits, duplicates, deletion, persistence via attach, and invariant
   checks after random workloads. *)

open Hyper_storage
module H = Hyper_index.Hash_index

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let with_index ?(capacity = 128) k =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity in
  ignore (Buffer_pool.allocate pool);
  let fl = Freelist.attach pool ~head:0 in
  k pool fl (H.create pool fl)

let test_empty () =
  with_index (fun _ _ h ->
      check Alcotest.int "empty" 0 (H.length h);
      check (Alcotest.option Alcotest.int) "find in empty" None
        (H.find_first h ~key:5);
      check Alcotest.bool "mem in empty" false (H.mem h ~key:5 ~value:1);
      check Alcotest.bool "delete in empty" false (H.delete h ~key:5 ~value:1);
      H.check_invariants h)

let test_insert_find () =
  with_index (fun _ _ h ->
      for i = 1 to 100 do
        H.insert h ~key:i ~value:(i * 10)
      done;
      check Alcotest.int "length" 100 (H.length h);
      for i = 1 to 100 do
        check (Alcotest.option Alcotest.int)
          (Printf.sprintf "find %d" i)
          (Some (i * 10))
          (H.find_first h ~key:i)
      done;
      check (Alcotest.option Alcotest.int) "missing" None
        (H.find_first h ~key:500);
      H.check_invariants h)

let test_duplicates () =
  with_index (fun _ _ h ->
      List.iter (fun v -> H.insert h ~key:7 ~value:v) [ 3; 1; 2; 1 ];
      check (Alcotest.list Alcotest.int) "values sorted" [ 1; 2; 3 ]
        (H.find_all h ~key:7);
      check Alcotest.int "set semantics" 3 (H.length h))

let test_growth_through_splits () =
  with_index ~capacity:512 (fun _ _ h ->
      let n = 20_000 in
      let buckets0 = H.bucket_count h in
      for i = 1 to n do
        H.insert h ~key:i ~value:i
      done;
      if H.bucket_count h <= buckets0 then
        Alcotest.fail "expected the bucket array to grow";
      check Alcotest.int "all entries" n (H.length h);
      H.check_invariants h;
      (* Spot lookups across the whole range after many splits. *)
      for i = 1 to 200 do
        let k = i * 97 mod n + 1 in
        check (Alcotest.option Alcotest.int)
          (Printf.sprintf "find %d after splits" k)
          (Some k) (H.find_first h ~key:k)
      done)

let test_delete () =
  with_index (fun _ _ h ->
      for i = 1 to 500 do
        H.insert h ~key:i ~value:i
      done;
      check Alcotest.bool "delete present" true (H.delete h ~key:250 ~value:250);
      check Alcotest.bool "delete again" false (H.delete h ~key:250 ~value:250);
      check (Alcotest.option Alcotest.int) "gone" None (H.find_first h ~key:250);
      check Alcotest.int "length" 499 (H.length h);
      H.check_invariants h)

let test_attach_persistence () =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity:256 in
  ignore (Buffer_pool.allocate pool);
  let fl = Freelist.attach pool ~head:0 in
  let h = H.create pool fl in
  for i = 1 to 5000 do
    H.insert h ~key:i ~value:(i * 3)
  done;
  Buffer_pool.flush_all pool;
  let pool2 = Buffer_pool.create pager ~capacity:256 in
  let fl2 = Freelist.attach pool2 ~head:0 in
  let h2 = H.attach pool2 fl2 ~header:(H.header h) in
  check Alcotest.int "length after attach" 5000 (H.length h2);
  check (Alcotest.option Alcotest.int) "lookup after attach" (Some 9999)
    (H.find_first h2 ~key:3333);
  H.check_invariants h2

let test_skewed_keys () =
  (* Many duplicates of a few keys stress the overflow chains. *)
  with_index ~capacity:256 (fun _ _ h ->
      for v = 1 to 600 do
        H.insert h ~key:(v mod 3) ~value:v
      done;
      check Alcotest.int "length" 600 (H.length h);
      check Alcotest.int "key 0 chain" 200 (List.length (H.find_all h ~key:0));
      H.check_invariants h)

let prop_model =
  QCheck.Test.make ~name:"hash index vs pair-set model" ~count:40
    QCheck.(
      small_list (triple (int_range 0 2) (int_range 0 50) (int_range 0 20)))
    (fun ops ->
      let pager = Pager.in_memory () in
      let pool = Buffer_pool.create pager ~capacity:64 in
      ignore (Buffer_pool.allocate pool);
      let fl = Freelist.attach pool ~head:0 in
      let h = H.create pool fl in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k, v) ->
          match op with
          | 0 ->
            H.insert h ~key:k ~value:v;
            Hashtbl.replace model (k, v) ()
          | 1 ->
            let expected = Hashtbl.mem model (k, v) in
            if H.delete h ~key:k ~value:v <> expected then
              failwith "delete mismatch";
            Hashtbl.remove model (k, v)
          | _ ->
            if H.mem h ~key:k ~value:v <> Hashtbl.mem model (k, v) then
              failwith "mem mismatch")
        ops;
      H.check_invariants h;
      H.length h = Hashtbl.length model)

let prop_find_all_matches_model =
  QCheck.Test.make ~name:"find_all equals model projection" ~count:40
    QCheck.(small_list (pair (int_range 0 20) (int_range 0 100)))
    (fun pairs ->
      let pager = Pager.in_memory () in
      let pool = Buffer_pool.create pager ~capacity:64 in
      ignore (Buffer_pool.allocate pool);
      let fl = Freelist.attach pool ~head:0 in
      let h = H.create pool fl in
      List.iter (fun (k, v) -> H.insert h ~key:k ~value:v) pairs;
      let dedup = List.sort_uniq compare pairs in
      List.for_all
        (fun k ->
          H.find_all h ~key:k
          = List.sort compare
              (List.filter_map
                 (fun (k', v) -> if k' = k then Some v else None)
                 dedup))
        (List.init 21 Fun.id))

let () =
  Alcotest.run "hyper_hash_index"
    [
      ( "hash_index",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "growth through splits" `Quick
            test_growth_through_splits;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "attach persistence" `Quick test_attach_persistence;
          Alcotest.test_case "skewed keys (overflow chains)" `Quick
            test_skewed_keys;
          qtest prop_model;
          qtest prop_find_all_matches_model;
        ] );
    ]

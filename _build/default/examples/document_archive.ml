(* Document archive: build a hypertext document by hand (the paper's §5.2
   semantic interpretation: folders / documents / chapters / sections),
   persist it in the disk backend, produce a table of contents with a
   closure traversal, edit a section with version history, and show crash
   safety via reopen.

   Run with: dune exec examples/document_archive.exe *)

open Hyper_core
module B = Hyper_diskdb.Diskdb
module O = Ops.Make (B)
module E = Extensions.Make (B)

let db_path = Filename.concat (Filename.get_temp_dir_name ()) "archive.db"

let sections =
  [ ("Introduction", "version1 hypertext systems store documents as node \
                      link structures version1 suitable for engineering \
                      design applications version1");
    ("The Model", "version1 nodes carry attributes and specialise into \
                   text and form nodes version1 links may connect any two \
                   nodes version1");
    ("Operations", "version1 lookups traversals closures and edits probe \
                    the database version1 cold and warm runs expose \
                    caching behaviour version1");
    ("Conclusions", "version1 a generic application model supports \
                     comparative evaluation version1 of database systems \
                     for design work version1") ]

let () =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ db_path; db_path ^ ".wal" ];
  let db = B.open_db (B.default_config ~path:db_path) in

  (* Build: one document (oid 1) with one chapter (oid 2) holding four
     text sections (oids 3..6).  uniqueIds number the nodes. *)
  B.begin_txn db;
  let node oid payload =
    B.create_node db
      { Schema.oid; doc = 7; unique_id = oid; ten = (oid mod 10) + 1;
        hundred = (oid mod 100) + 1; million = oid * 1000; payload }
  in
  node 1 Schema.P_internal;
  node 2 Schema.P_internal;
  List.iteri (fun i (_, body) -> node (3 + i) (Schema.P_text body)) sections;
  B.add_child db ~parent:1 ~child:2;
  List.iteri (fun i _ -> B.add_child db ~parent:2 ~child:(3 + i)) sections;
  (* Cross references between sections, with offsets as link weights. *)
  B.add_ref db ~src:3 ~dst:5 ~offset_from:1 ~offset_to:4;
  B.add_ref db ~src:5 ~dst:6 ~offset_from:2 ~offset_to:3;
  B.commit db;

  (* Table of contents = pre-order 1-N closure (op 10). *)
  B.begin_txn db;
  let toc = O.closure_1n db ~start:1 in
  B.commit db;
  print_endline "table of contents (pre-order closure):";
  List.iter
    (fun oid ->
      let title =
        if oid = 1 then "The HyperModel Report"
        else if oid = 2 then "  Chapter 1"
        else "    " ^ fst (List.nth sections (oid - 3))
      in
      Printf.printf "%s (node %d)\n" title oid)
    toc;

  (* Versioned editing (R5): edit a section, keep history. *)
  let versions = E.create_versions () in
  B.begin_txn db;
  let ts = E.edit_with_version versions db 3 in
  B.commit db;
  Printf.printf "\nedited section 'Introduction' (snapshot t=%d)\n" ts;
  (match E.previous_version versions 3 with
  | Some old ->
    Printf.printf "previous version starts with: %s...\n"
      (String.sub old 0 (min 40 (String.length old)))
  | None -> print_endline "no previous version?!");
  Printf.printf "current version starts with:  %s...\n"
    (String.sub (B.text db 3) 0 40);

  (* Link distances (op 18): follow the reference graph. *)
  B.begin_txn db;
  let reachable = O.closure_mnatt_link_sum db ~start:3 ~depth:5 in
  B.commit db;
  print_endline "\nreference distances from 'Introduction':";
  List.iter
    (fun (oid, dist) -> Printf.printf "  node %d at distance %d\n" oid dist)
    reachable;

  (* Durability: close, reopen, and check everything is still there. *)
  B.close db;
  let db2 = B.open_db (B.default_config ~path:db_path) in
  Printf.printf "\nreopened: %d nodes, section text intact: %b\n"
    (B.node_count db2 ~doc:7)
    (String.length (B.text db2 4) > 0);
  B.close db2;
  List.iter Sys.remove [ db_path; db_path ^ ".wal" ]

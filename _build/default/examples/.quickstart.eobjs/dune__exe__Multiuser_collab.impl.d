examples/multiuser_collab.ml: Generator Hyper_core Hyper_memdb Hyper_txn List Multiuser Printf String

examples/multiuser_collab.mli:

examples/hypertext_graph.ml: Array Filename Generator Hyper_core Hyper_diskdb Hyper_query Hyper_reldb Layout List Ops Printf Query_bridge Sys

examples/quickstart.ml: Generator Hyper_core Hyper_memdb Hyper_query Hyper_util Layout List Ops Printf Query_bridge String

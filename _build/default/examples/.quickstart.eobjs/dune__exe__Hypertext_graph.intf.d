examples/hypertext_graph.mli:

examples/quickstart.mli:

examples/crash_recovery.ml: Filename Hyper_core Hyper_diskdb Hyper_storage List Printf Schema String Sys

examples/document_archive.ml: Extensions Filename Hyper_core Hyper_diskdb List Ops Printf Schema String Sys

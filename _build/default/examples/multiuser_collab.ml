(* Cooperative multi-user editing (R8/R9 and paper §7): private/shared
   workspaces for two users editing different nodes of one structure, a
   conflicting edit detected at publish, and a throughput comparison of
   optimistic vs locking concurrency control under growing contention.

   Run with: dune exec examples/multiuser_collab.exe *)

open Hyper_core
module B = Hyper_memdb.Memdb
module Gen = Generator.Make (B)
module M = Multiuser.Make (B)

let () =
  (* --- Workspaces (R9) --- *)
  let shared = Hyper_txn.Workspace.create_shared () in
  let alice = Hyper_txn.Workspace.checkout shared in
  let bob = Hyper_txn.Workspace.checkout shared in
  (* Two users update different nodes of the same structure. *)
  Hyper_txn.Workspace.put alice 101 "alice's section draft";
  Hyper_txn.Workspace.put bob 102 "bob's figure caption";
  (match Hyper_txn.Workspace.publish alice with
  | Hyper_txn.Workspace.Published n -> Printf.printf "alice published %d object(s)\n" n
  | Hyper_txn.Workspace.Conflicts _ -> assert false);
  (match Hyper_txn.Workspace.publish bob with
  | Hyper_txn.Workspace.Published n -> Printf.printf "bob published %d object(s)\n" n
  | Hyper_txn.Workspace.Conflicts _ -> assert false);
  Printf.printf "shared store now holds nodes: %s\n"
    (String.concat ", "
       (List.map string_of_int (Hyper_txn.Workspace.shared_keys shared)));
  (* A genuine conflict: both edit node 101. *)
  Hyper_txn.Workspace.put alice 101 "alice rev 2";
  Hyper_txn.Workspace.put bob 101 "bob rev 2";
  (match Hyper_txn.Workspace.publish alice with
  | Hyper_txn.Workspace.Published _ -> print_endline "alice's rev 2 published"
  | Hyper_txn.Workspace.Conflicts _ -> assert false);
  (match Hyper_txn.Workspace.publish bob with
  | Hyper_txn.Workspace.Conflicts keys ->
    Printf.printf "bob's publish conflicts on node(s): %s\n"
      (String.concat ", " (List.map string_of_int keys));
    Hyper_txn.Workspace.refresh bob;
    (match Hyper_txn.Workspace.publish bob with
    | Hyper_txn.Workspace.Published _ ->
      print_endline "bob refreshed and re-published"
    | Hyper_txn.Workspace.Conflicts _ -> assert false)
  | Hyper_txn.Workspace.Published _ ->
    print_endline "unexpected: conflict not detected");

  (* --- Concurrency-control comparison (paper §7) --- *)
  print_endline "\nmulti-user update experiment (level-4 database):";
  Printf.printf "%-5s %-6s %-5s %10s %10s %10s %12s\n" "cc" "users" "hot"
    "attempted" "committed" "aborted" "txn/s";
  List.iter
    (fun (mode, users, hot) ->
      let db = B.create () in
      let layout, _ = Gen.generate db ~doc:1 ~leaf_level:4 ~seed:7L in
      let r =
        M.run db layout ~mode ~users ~txns_per_user:100 ~hot_fraction:hot
          ~seed:7L
      in
      Printf.printf "%-5s %-6d %-5.2f %10d %10d %10d %12.0f\n"
        (Multiuser.mode_to_string mode)
        users hot r.Multiuser.txns_attempted r.Multiuser.committed
        r.Multiuser.aborted r.Multiuser.throughput_tps)
    [ (Multiuser.Optimistic, 2, 0.0); (Multiuser.Optimistic, 2, 0.5);
      (Multiuser.Optimistic, 8, 0.5); (Multiuser.Two_phase_locking, 2, 0.0);
      (Multiuser.Two_phase_locking, 2, 0.5);
      (Multiuser.Two_phase_locking, 8, 0.5) ];
  print_endline
    "\nexpected shape: zero aborts without contention; optimistic control\n\
     aborts under contention (the paper's observed problem), locking\n\
     mostly serialises instead"

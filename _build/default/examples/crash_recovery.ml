(* Crash recovery walkthrough (R10): commit work, crash mid-transaction
   with dirty pages stolen to disk, recover from the write-ahead log, and
   reclaim the orphaned pages with the garbage collector.

   The "crash" is simulated by snapshotting the database and WAL files
   while a transaction is open — exactly what a power cut would leave on
   disk — and then opening the snapshot.

   Run with: dune exec examples/crash_recovery.exe *)

open Hyper_core
module B = Hyper_diskdb.Diskdb

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let clean path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".wal" ]

let copy src dst =
  let ic = open_in_bin src in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc

let () =
  let live = tmp "recovery_live.db" and crashed = tmp "recovery_crashed.db" in
  clean live;
  clean crashed;
  (* A tiny buffer pool guarantees dirty-page steals mid-transaction, so
     the crash leaves uncommitted data in the main file — the interesting
     recovery case. *)
  let db = B.open_db { (B.default_config ~path:live) with B.pool_pages = 8 } in

  (* Transaction 1: committed work. *)
  B.begin_txn db;
  for i = 1 to 200 do
    B.create_node db
      { Schema.oid = i; doc = 1; unique_id = i; ten = (i mod 10) + 1;
        hundred = (i mod 100) + 1; million = i * 7;
        payload = Schema.P_text ("version1 committed node " ^ string_of_int i) }
  done;
  B.commit db;
  Printf.printf "committed 200 nodes; io: %s\n" (B.io_description db);

  (* Transaction 2: in flight at the moment of the crash. *)
  B.begin_txn db;
  for i = 201 to 500 do
    B.create_node db
      { Schema.oid = i; doc = 1; unique_id = i; ten = 1; hundred = 1;
        million = 1; payload = Schema.P_text "version1 uncommitted version1" }
  done;
  Printf.printf "transaction 2 in flight (300 nodes, pages stolen to disk)\n";

  (* CRASH: whatever is on disk right now is all that survives. *)
  copy live crashed;
  copy (live ^ ".wal") (crashed ^ ".wal");
  B.abort db;
  B.close db;
  clean live;
  Printf.printf "\n-- crash --\n\n";

  (* Restart: recovery replays the log. *)
  let db2 = B.open_db (B.default_config ~path:crashed) in
  (match B.last_recovery db2 with
  | Some r ->
    Printf.printf
      "recovery ran: %d txn(s) redone %s, %d rolled back %s \
       (%d pages redone, %d undone)\n"
      (List.length r.Hyper_storage.Recovery.committed)
      (String.concat ","
         (List.map string_of_int r.Hyper_storage.Recovery.committed))
      (List.length r.Hyper_storage.Recovery.rolled_back)
      (String.concat ","
         (List.map string_of_int r.Hyper_storage.Recovery.rolled_back))
      r.Hyper_storage.Recovery.pages_redone
      r.Hyper_storage.Recovery.pages_undone
  | None -> print_endline "no recovery was needed?!");
  Printf.printf "nodes after recovery: %d (the committed 200)\n"
    (B.node_count db2 ~doc:1);
  assert (B.node_count db2 ~doc:1 = 200);
  assert (B.lookup_unique db2 ~doc:1 200 <> None);
  assert (B.lookup_unique db2 ~doc:1 201 = None);
  Printf.printf "node 200 text intact: %b\n"
    (String.length (B.text db2 200) > 0);

  (* The aborted transaction's file growth is garbage; collect it. *)
  let before = B.file_bytes db2 in
  let freed = B.collect_garbage db2 in
  Printf.printf
    "\ngarbage collection: %d orphaned pages reclaimed (file %d KB, free \
     for reuse)\n"
    freed (before / 1024);

  (* New work reuses the reclaimed pages instead of growing the file. *)
  B.begin_txn db2;
  for i = 1001 to 1100 do
    B.create_node db2
      { Schema.oid = i; doc = 1; unique_id = i; ten = 2; hundred = 2;
        million = 2; payload = Schema.P_internal }
  done;
  B.commit db2;
  Printf.printf "inserted 100 more nodes; file still %d KB (reuse works)\n"
    (B.file_bytes db2 / 1024);
  assert (B.file_bytes db2 = before);
  B.close db2;
  clean crashed

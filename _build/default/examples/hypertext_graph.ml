(* Hypertext graph analysis: generate a full level-5 test database on the
   relational backend, explore the weighted reference graph (ops 06/08/15/18),
   compare indexed and scanned query plans, and show the per-backend I/O
   profile of the same traversal.

   Run with: dune exec examples/hypertext_graph.exe *)

open Hyper_core
module R = Hyper_reldb.Reldb
module OR = Ops.Make (R)
module D = Hyper_diskdb.Diskdb
module OD = Ops.Make (D)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let clean path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".wal" ]

let () =
  let rel_path = tmp "graph_rel.db" and disk_path = tmp "graph_disk.db" in
  clean rel_path;
  clean disk_path;
  let rel = R.open_db (R.default_config ~path:rel_path) in
  let module GenR = Generator.Make (R) in
  let layout, _ = GenR.generate rel ~doc:1 ~leaf_level:5 ~seed:1988L in
  Printf.printf "relational database: %d nodes\n" (R.node_count rel ~doc:1);

  (* Walk the reference graph from a level-3 node: each node references
     exactly one other, so this is a weighted path (possibly cyclic). *)
  let start = Layout.level_first_oid layout 3 in
  R.begin_txn rel;
  let path = OR.closure_mnatt_link_sum rel ~start ~depth:25 in
  R.commit rel;
  Printf.printf "\nreference walk from node %d (depth <= 25):\n" start;
  List.iteri
    (fun i (oid, dist) ->
      if i < 8 then Printf.printf "  hop %2d: node %6d, total weight %d\n" i oid dist)
    path;
  let final_oid, total = List.nth path (List.length path - 1) in
  Printf.printf "  ... reaches %d unique nodes; endpoint %d at weight %d\n"
    (List.length path) final_oid total;

  (* Fan-in: which nodes point at a popular target (op 08)? *)
  let refs = R.refs_from rel final_oid in
  Printf.printf "node %d is referenced by %d node(s)\n" final_oid
    (Array.length refs);

  (* Ad-hoc queries with different plans (R12). *)
  List.iter
    (fun q ->
      Printf.printf "\nquery: %s\nplan:  %s\n" q
        (Query_bridge.explain (module R) rel ~doc:1 q);
      match Query_bridge.query (module R) rel ~doc:1 q with
      | Hyper_query.Engine.Count n -> Printf.printf "count: %d\n" n
      | Hyper_query.Engine.Oids oids ->
        Printf.printf "nodes: %d\n" (List.length oids))
    [ "count where million between 1 and 10000";
      "count where ten = 5";
      "select where hundred = 50 and kind = text limit 3" ];

  (* Same traversal on the object backend: compare logical I/O. *)
  let disk = D.open_db (D.default_config ~path:disk_path) in
  let module GenD = Generator.Make (D) in
  let _ = GenD.generate disk ~doc:1 ~leaf_level:5 ~seed:1988L in
  let closure_io () =
    R.clear_caches rel;
    R.reset_io rel;
    R.begin_txn rel;
    ignore (OR.closure_1n rel ~start);
    R.commit rel;
    let cr = R.io_counters rel in
    D.clear_caches disk;
    D.reset_io disk;
    D.begin_txn disk;
    ignore (OD.closure_1n disk ~start);
    D.commit disk;
    let cd = D.io_counters disk in
    (cr.R.pool_hits + cr.R.pool_misses, cd.D.pool_hits + cd.D.pool_misses)
  in
  let rel_pages, disk_pages = closure_io () in
  Printf.printf
    "\nsame closure1N, logical page accesses: relational=%d object=%d\n\
     (every relational hop is an index probe + row fetch — a join)\n"
    rel_pages disk_pages;
  R.close rel;
  D.close disk;
  clean rel_path;
  clean disk_path

(* Quickstart: generate a HyperModel test database in memory, run a few
   benchmark operations by hand, and issue an ad-hoc query.

   Run with: dune exec examples/quickstart.exe *)

open Hyper_core
module B = Hyper_memdb.Memdb
module Gen = Generator.Make (B)
module O = Ops.Make (B)

let () =
  (* 1. Create a database and generate the level-4 test structure
        (781 nodes: an archive of folders, documents, chapters, sections
        with text and bitmap leaves — paper §5.2). *)
  let db = B.create () in
  let layout, timings = Gen.generate db ~doc:1 ~leaf_level:4 ~seed:42L in
  Printf.printf "generated %d nodes in %d phases\n"
    (B.node_count db ~doc:1)
    (List.length timings.Generator.phases);

  (* 2. Name lookup (op 01): find a node by its uniqueId attribute. *)
  (match O.name_lookup db ~doc:1 ~uid:123 with
  | Some hundred -> Printf.printf "node uid=123 has hundred=%d\n" hundred
  | None -> print_endline "uid 123 not found");

  (* 3. Closure traversal (op 10): pre-order listing of a level-3
        subtree — think "table of contents of one section". *)
  let start = Layout.level_first_oid layout 3 in
  B.begin_txn db;
  let toc = O.closure_1n db ~start in
  B.commit db;
  Printf.printf "closure1N from node %d reaches %d nodes: %s\n" start
    (List.length toc)
    (String.concat ", " (List.map string_of_int toc));

  (* 4. Edit a text node (op 16) and restore it. *)
  let text_node = Layout.random_text layout (Hyper_util.Prng.create 7L) in
  let before = B.text db text_node in
  B.begin_txn db;
  O.text_node_edit db ~oid:text_node;
  B.commit db;
  Printf.printf "edited text node %d: %d -> %d bytes\n" text_node
    (String.length before)
    (String.length (B.text db text_node));
  B.begin_txn db;
  O.text_node_edit db ~oid:text_node;
  B.commit db;
  assert (B.text db text_node = before);
  print_endline "second edit restored the original text";

  (* 5. Ad-hoc query (R12). *)
  let q = "select where hundred between 90 and 99 and kind = form" in
  Printf.printf "query: %s\nplan:  %s\n%s\n" q
    (Query_bridge.explain (module B) db ~doc:1 q)
    (Hyper_query.Engine.result_to_string
       (Query_bridge.query (module B) db ~doc:1 q))

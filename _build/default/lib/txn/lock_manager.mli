(** Strict two-phase locking (R8: concurrency control).

    Resources are identified by integers (OIDs in the backends).  Shared
    locks are compatible with each other; exclusive locks conflict with
    everything held by other transactions.  Lock upgrade (shared →
    exclusive) is supported for the sole shared holder.

    Deadlocks are broken by timeout: an acquisition that cannot be
    granted within the configured window raises {!Timeout}, and the
    caller is expected to abort and release.  This is the scheme several
    of the paper-era systems used in practice. *)

type t

type mode = Shared | Exclusive

exception Timeout of { txn : int; resource : int }

val create : ?timeout_ms:float -> unit -> t
(** Default timeout: 200 ms. *)

val acquire : t -> txn:int -> resource:int -> mode -> unit
(** Blocks until granted.  Re-acquiring an already-held lock is a no-op
    (or an upgrade when going from shared to exclusive).
    @raise Timeout when the wait exceeds the window. *)

val try_acquire : t -> txn:int -> resource:int -> mode -> bool
(** Non-blocking variant. *)

val release_all : t -> txn:int -> unit
(** End of transaction: drop every lock held by [txn] and wake waiters. *)

val holds : t -> txn:int -> resource:int -> mode option

val locked_resources : t -> txn:int -> int list

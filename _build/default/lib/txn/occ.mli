(** Optimistic concurrency control (backward validation).

    The paper (§7) notes that the systems it was run on used optimistic
    concurrency control, making conflicting multi-user updates abort at
    commit.  This module reproduces that behaviour: transactions record
    read and write sets against versioned resources; commit validates
    that nothing read has since been written by a committed peer.

    Thread-safe; the multi-user benchmark (bench §T7) runs writers on OS
    threads against one validator. *)

type t
(** Shared validator state. *)

type txn

val create : unit -> t

val begin_txn : t -> txn

val note_read : txn -> int -> unit
(** Record that the transaction observed resource [r]. *)

val note_write : txn -> int -> unit
(** Record intent to write resource [r] (implies a read). *)

val commit : txn -> bool
(** Validate and commit atomically.  [false] means validation failed
    (a resource in the read set was committed by another transaction
    since it was read) — the caller must discard its work and retry. *)

val abort : txn -> unit

val committed_count : t -> int
val aborted_count : t -> int

(** Private and shared workspaces (R9: cooperation between users).

    The paper asks that two users be able to update different nodes of
    the same structure, with one user's changes becoming "easily
    accessible" to others when published.  A [shared] store holds the
    published state; each user [checkout]s a private workspace whose
    writes overlay the shared state until [publish].

    Publish performs first-writer-wins conflict detection at object
    granularity: a write conflicts when the shared object changed after
    the workspace was checked out (or last synchronised). *)

type 'a shared

type 'a t

type 'a publish_result =
  | Published of int (** number of objects made shareable *)
  | Conflicts of int list (** keys that changed under us *)

val create_shared : unit -> 'a shared

val shared_get : 'a shared -> int -> 'a option
val shared_keys : 'a shared -> int list

val checkout : 'a shared -> 'a t
(** A private workspace seeing the current shared state. *)

val get : 'a t -> int -> 'a option
(** Private copy when present, otherwise the shared state. *)

val put : 'a t -> int -> 'a -> unit
(** Private write; invisible to other workspaces until published. *)

val dirty_keys : 'a t -> int list

val publish : 'a t -> 'a publish_result
(** Merge private writes into the shared store.  On success the
    workspace is synchronised (further writes rebase on the new state).
    On conflict nothing is merged; the caller may [refresh] and retry. *)

val refresh : 'a t -> unit
(** Re-synchronise with the shared store, dropping conflict markers but
    keeping private writes (they win over refreshed state on [get]). *)

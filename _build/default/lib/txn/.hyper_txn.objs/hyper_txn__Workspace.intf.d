lib/txn/workspace.mli:

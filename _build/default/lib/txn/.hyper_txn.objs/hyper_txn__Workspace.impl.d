lib/txn/workspace.ml: Fun Hashtbl List Mutex Option

lib/txn/occ.mli:

lib/txn/version_store.mli:

lib/txn/version_store.ml: Hashtbl List Option

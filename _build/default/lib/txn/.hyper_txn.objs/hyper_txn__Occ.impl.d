lib/txn/occ.ml: Hashtbl Mutex Option

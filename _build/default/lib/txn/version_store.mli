(** Multi-version object store (R5: versions and variants).

    Keeps a timestamped version chain per key on a process-wide logical
    clock, supporting the paper's extension operations: retrieve the
    previous version of a node, or reconstruct a node structure as it was
    at a given time-point.  Named variants model parallel development
    branches of the same object. *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> int
(** Current logical time (advances on every [put]). *)

val put : 'a t -> key:int -> 'a -> int
(** Append a new version; returns its timestamp. *)

val latest : 'a t -> key:int -> 'a option

val previous : 'a t -> key:int -> 'a option
(** The version immediately before the latest one. *)

val as_of : 'a t -> key:int -> time:int -> 'a option
(** The newest version with timestamp <= [time]. *)

val version_count : 'a t -> key:int -> int

val history : 'a t -> key:int -> (int * 'a) list
(** All versions, newest first, as (timestamp, value). *)

(** {2 Variants} *)

val put_variant : 'a t -> key:int -> variant:string -> 'a -> int
(** Record a value on a named parallel branch of [key]. *)

val latest_variant : 'a t -> key:int -> variant:string -> 'a option

val variants : 'a t -> key:int -> string list
(** Names of branches that exist for [key] (sorted). *)

lib/reldb/reldb.mli: Hyper_core Hyper_net Hyper_storage

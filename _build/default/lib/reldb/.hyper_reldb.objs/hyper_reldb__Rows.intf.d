lib/reldb/rows.mli: Hyper_core

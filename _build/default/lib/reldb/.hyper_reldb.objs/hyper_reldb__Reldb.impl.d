lib/reldb/reldb.ml: Array Buffer_pool Engine Freelist Hashtbl Heap Hyper_core Hyper_index Hyper_net Hyper_storage Hyper_util Int64 List Meta Option Page Pager Printf Rows Stdlib String

lib/reldb/rows.ml: Buffer Bytes Char Hyper_core List Printf String

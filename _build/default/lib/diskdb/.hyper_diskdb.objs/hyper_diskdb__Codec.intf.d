lib/diskdb/codec.mli: Hyper_core

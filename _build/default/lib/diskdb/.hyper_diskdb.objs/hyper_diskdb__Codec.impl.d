lib/diskdb/codec.ml: Array Buffer Bytes Char Hyper_core Hyper_util List Printf String

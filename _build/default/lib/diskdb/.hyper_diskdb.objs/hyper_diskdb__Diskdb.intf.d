lib/diskdb/diskdb.mli: Hyper_core Hyper_net Hyper_storage

lib/diskdb/diskdb.ml: Array Buffer_pool Codec Engine Freelist Hashtbl Heap Hyper_core Hyper_index Hyper_net Hyper_storage Hyper_util Int64 List Meta Object_table Option Page Pager Printf String

type t = { width : int; height : int; bits : Bytes.t }

let payload_bytes w h = (w * h + 7) / 8

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Bitmap.create: dimensions";
  { width; height; bits = Bytes.make (payload_bytes width height) '\000' }

let width t = t.width
let height t = t.height
let byte_size t = Bytes.length t.bits

let check_bounds t x y =
  if x < 0 || y < 0 || x >= t.width || y >= t.height then
    invalid_arg "Bitmap: coordinates out of bounds"

let index t x y = (y * t.width) + x

let get t ~x ~y =
  check_bounds t x y;
  let i = index t x y in
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  byte land (1 lsl (i land 7)) <> 0

let set t ~x ~y v =
  check_bounds t x y;
  let i = index t x y in
  let pos = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let byte = Char.code (Bytes.get t.bits pos) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bits pos (Char.chr byte)

let invert_rect t ~x ~y ~w ~h =
  if w < 0 || h < 0 then invalid_arg "Bitmap.invert_rect: negative extent";
  check_bounds t x y;
  if x + w > t.width || y + h > t.height then
    invalid_arg "Bitmap.invert_rect: rectangle exceeds bitmap";
  for row = y to y + h - 1 do
    for col = x to x + w - 1 do
      let i = index t col row in
      let pos = i lsr 3 in
      let mask = 1 lsl (i land 7) in
      let byte = Char.code (Bytes.get t.bits pos) in
      Bytes.set t.bits pos (Char.chr (byte lxor mask))
    done
  done

let count_set t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let b = Char.code (Bytes.get t.bits i) in
    (* Kernighan popcount; payload bytes past w*h are always zero. *)
    let rec pop b acc = if b = 0 then acc else pop (b land (b - 1)) (acc + 1) in
    n := !n + pop b 0
  done;
  !n

let equal a b =
  a.width = b.width && a.height = b.height && Bytes.equal a.bits b.bits

let copy t = { t with bits = Bytes.copy t.bits }

let to_bytes t =
  let out = Bytes.create (8 + Bytes.length t.bits) in
  Bytes.set_int32_le out 0 (Int32.of_int t.width);
  Bytes.set_int32_le out 4 (Int32.of_int t.height);
  Bytes.blit t.bits 0 out 8 (Bytes.length t.bits);
  out

let of_bytes b =
  if Bytes.length b < 8 then invalid_arg "Bitmap.of_bytes: truncated header";
  let width = Int32.to_int (Bytes.get_int32_le b 0) in
  let height = Int32.to_int (Bytes.get_int32_le b 4) in
  if width <= 0 || height <= 0 then invalid_arg "Bitmap.of_bytes: dimensions";
  let n = payload_bytes width height in
  if Bytes.length b <> 8 + n then invalid_arg "Bitmap.of_bytes: payload size";
  { width; height; bits = Bytes.sub b 8 n }

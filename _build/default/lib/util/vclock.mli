(** Virtual benchmark clock.

    Timings combine real elapsed wall-clock time with *simulated* latency
    contributed by the workstation/server network model ({!Hyper_net}) and
    the pager's simulated disk.  Simulated components advance this clock
    without sleeping, so benchmark runs are fast yet still show the
    cold-vs-warm and local-vs-remote gaps the paper is about.

    The simulated offset is global to the process; {!reset_virtual} is
    called by the benchmark protocol between runs. *)

val now_ns : unit -> float
(** Monotonic wall-clock nanoseconds plus the accumulated virtual
    offset. *)

val advance_ns : float -> unit
(** Add simulated latency.  @raise Invalid_argument on negative input. *)

val virtual_ns : unit -> float
(** Accumulated simulated component since the last reset. *)

val reset_virtual : unit -> unit

type span = { wall_ns : float; virtual_ns : float }
(** Elapsed time split into its real and simulated components. *)

val time : (unit -> 'a) -> 'a * span
(** Run a thunk and measure it.  Total elapsed nanoseconds is
    [span.wall_ns +. span.virtual_ns]. *)

val total_ns : span -> float
val total_ms : span -> float

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(** Random text contents for HyperModel [TextNode]s.

    Paper §5.1: each text node contains 10–100 words separated by single
    spaces; a word is 1–10 random lowercase letters; the first, middle and
    last words are the literal ["version1"]. *)

val marker : string
(** The marker word, ["version1"]. *)

val generate : Prng.t -> string
(** A fresh text body obeying the specification above. *)

val generate_words : Prng.t -> n_words:int -> string
(** Like {!generate} but with an explicit word count (>= 1).  The first,
    middle and last words are still the marker. *)

val word_count : string -> int
(** Number of space-separated words. *)

val replace_first : string -> old_sub:string -> new_sub:string -> string option
(** [replace_first s ~old_sub ~new_sub] substitutes the first occurrence,
    or returns [None] when [old_sub] does not occur.  Used by op 16
    ([textNodeEdit]) to swap ["version1"] and ["version-2"]. *)

val count_occurrences : string -> sub:string -> int
(** Non-overlapping occurrence count of [sub] in the string. *)

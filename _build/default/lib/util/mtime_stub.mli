(** Minimal monotonic clock (nanoseconds).

    Uses [Unix.gettimeofday]; microsecond resolution is sufficient because
    the benchmark protocol always times batches of 50 operations. *)

val now_ns : unit -> int64

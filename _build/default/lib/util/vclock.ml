let offset = ref 0.0

let wall_ns () = Int64.to_float (Mtime_stub.now_ns ())

let now_ns () = wall_ns () +. !offset

let advance_ns d =
  if d < 0.0 then invalid_arg "Vclock.advance_ns: negative";
  offset := !offset +. d

let virtual_ns () = !offset
let reset_virtual () = offset := 0.0

type span = { wall_ns : float; virtual_ns : float }

let time f =
  let w0 = wall_ns () and v0 = !offset in
  let r = f () in
  let w1 = wall_ns () and v1 = !offset in
  (r, { wall_ns = w1 -. w0; virtual_ns = v1 -. v0 })

let total_ns s = s.wall_ns +. s.virtual_ns
let total_ms s = total_ns s /. 1e6

type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns;
    rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cs -> Stdlib.max acc (String.length (List.nth cs i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 1024 in
  let rule ch =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  rule '-';
  line (List.map (fun _ -> Left) t.headers) t.headers;
  rule '=';
  List.iter
    (fun row ->
      match row with
      | Separator -> rule '-'
      | Cells cs -> line t.aligns cs)
    rows;
  rule '-';
  Buffer.contents buf

let print t = print_string (render t)

let fms v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else if Float.abs v >= 0.01 || v = 0.0 then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.5f" v

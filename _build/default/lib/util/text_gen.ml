let marker = "version1"

let random_word rng =
  let len = Prng.int_in rng 1 10 in
  String.init len (fun _ -> Prng.lowercase_letter rng)

let generate_words rng ~n_words =
  if n_words < 1 then invalid_arg "Text_gen.generate_words: n_words < 1";
  let middle = (n_words - 1) / 2 in
  let word i =
    if i = 0 || i = middle || i = n_words - 1 then marker else random_word rng
  in
  String.concat " " (List.init n_words word)

let generate rng = generate_words rng ~n_words:(Prng.int_in rng 10 100)

let word_count s =
  if s = "" then 0 else List.length (String.split_on_char ' ' s)

let find_sub s sub start =
  let n = String.length s and m = String.length sub in
  if m = 0 then invalid_arg "Text_gen: empty substring";
  let rec scan i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else scan (i + 1)
  in
  scan start

let replace_first s ~old_sub ~new_sub =
  match find_sub s old_sub 0 with
  | None -> None
  | Some i ->
    let n = String.length s and m = String.length old_sub in
    Some (String.sub s 0 i ^ new_sub ^ String.sub s (i + m) (n - i - m))

let count_occurrences s ~sub =
  let m = String.length sub in
  let rec loop start acc =
    match find_sub s sub start with
    | None -> acc
    | Some i -> loop (i + m) (acc + 1)
  in
  loop 0 0

type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64, Steele et al., "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Passes BigCrush; one 64-bit word of state. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  (* Decorrelate the child stream from the parent's next values. *)
  { state = Int64.logxor s 0xA5A5A5A5DEADBEEFL }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays positive. *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let lowercase_letter t = Char.chr (Char.code 'a' + int t 26)

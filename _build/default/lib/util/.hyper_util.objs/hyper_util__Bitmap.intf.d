lib/util/bitmap.mli:

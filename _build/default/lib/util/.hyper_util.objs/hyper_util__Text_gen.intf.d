lib/util/text_gen.mli: Prng

lib/util/mtime_stub.mli:

lib/util/vclock.ml: Int64 Mtime_stub

lib/util/stats.mli:

lib/util/mtime_stub.ml: Int64 Unix

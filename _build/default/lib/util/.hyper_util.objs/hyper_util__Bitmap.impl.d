lib/util/bitmap.ml: Bytes Char Int32

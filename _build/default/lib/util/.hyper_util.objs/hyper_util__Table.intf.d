lib/util/table.mli:

lib/util/vclock.mli:

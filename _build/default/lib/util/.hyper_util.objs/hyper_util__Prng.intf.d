lib/util/prng.mli:

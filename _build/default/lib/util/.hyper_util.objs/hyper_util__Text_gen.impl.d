lib/util/text_gen.ml: List Prng String

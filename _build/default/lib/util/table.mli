(** Plain-text table rendering for benchmark reports.

    Produces aligned, boxed ASCII tables in the style of the paper's
    result listings.  Numeric cells are right-aligned, text cells
    left-aligned. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] with column headers and alignments. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** The full table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val fms : float -> string
(** Format a milliseconds quantity with sensible precision
    (e.g. ["0.034"], ["12.5"], ["1510"]). *)

(** Sample statistics for benchmark timings.

    The HyperModel protocol runs each operation 50 times (cold) and 50
    times (warm) and reports milliseconds per node returned; this module
    accumulates the raw samples and derives the summary numbers. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
val total : t -> float
val mean : t -> float

val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    samples. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in \[0,100\], by linear interpolation over
    the sorted samples.  @raise Invalid_argument on an empty series or a
    [p] outside the range. *)

val median : t -> float

val samples : t -> float array
(** Copy of the raw samples in insertion order. *)

(** Deterministic pseudo-random number generator (SplitMix64).

    The HyperModel generator must be reproducible bit-for-bit so that the
    three test databases (levels 4, 5, 6) can be rebuilt identically on
    every backend.  All randomness in the repository flows through this
    module; no global state is used. *)

type t
(** A generator state.  Mutable; not thread-safe — give each thread its
    own [split]. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** A new generator whose stream is statistically independent of the
    remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val lowercase_letter : t -> char
(** Uniform in ['a'..'z']. *)

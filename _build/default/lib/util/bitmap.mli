(** Packed two-dimensional bitmaps for HyperModel [FormNode] contents.

    A form node is a white (all-zero) bitmap whose width and height are
    drawn uniformly from 100..400 pixels (paper §5.1).  The benchmark's
    [formNodeEdit] operation (op 17) inverts a sub-rectangle, which this
    module supports directly. *)

type t

val create : width:int -> height:int -> t
(** All-white (all bits zero) bitmap.
    @raise Invalid_argument on non-positive dimensions. *)

val width : t -> int
val height : t -> int

val byte_size : t -> int
(** Number of payload bytes ([ceil (w*h / 8)]). *)

val get : t -> x:int -> y:int -> bool
(** @raise Invalid_argument when out of bounds. *)

val set : t -> x:int -> y:int -> bool -> unit

val invert_rect : t -> x:int -> y:int -> w:int -> h:int -> unit
(** Flip every bit in the rectangle.  The rectangle must lie fully inside
    the bitmap.  Applying the same inversion twice restores the bitmap. *)

val count_set : t -> int
(** Number of black (set) pixels. *)

val equal : t -> t -> bool

val copy : t -> t

val to_bytes : t -> bytes
(** Serialised form: 4-byte LE width, 4-byte LE height, packed rows. *)

val of_bytes : bytes -> t
(** Inverse of [to_bytes].  @raise Invalid_argument on malformed input. *)

open Hyper_storage

(* Header page layout:
     0   page type (Obj_table is reused for directory pages; the header
         itself uses the Meta tag with a magic by position — it is only
         ever reached through the stored header id)
     8   initial bucket count u32
     12  level u32
     16  split pointer u32
     20  entry count u32
     24  directory (object-table) head page u32

   Bucket page layout:
     0   page type (Btree_leaf reused: same (key, value) entry array)
     2   n u16
     4   next page in this bucket's overflow chain u32
     16  entries: key i64, value i64                      (255 max) *)

type t = {
  pool : Buffer_pool.t;
  freelist : Freelist.t;
  header : int;
  directory : Object_table.t;
  mutable initial : int;
  mutable level : int;
  mutable split : int;
  mutable entries : int;
}

let entry_size = 16
let bucket_header = 16
let bucket_capacity = (Page.size - bucket_header) / entry_size (* 255 *)

(* Split when the average chain holds more than ~2/3 of a page. *)
let load_threshold = 170

let initial_buckets = 4

(* --- header persistence --- *)

let save_header t =
  Buffer_pool.with_page_w t.pool t.header (fun page ->
      Page.set_type page Page.Meta;
      Page.set_u32 page 8 t.initial;
      Page.set_u32 page 12 t.level;
      Page.set_u32 page 16 t.split;
      Page.set_u32 page 20 t.entries;
      Page.set_u32 page 24 (Object_table.head t.directory))

(* --- bucket pages --- *)

let init_bucket page =
  Bytes.fill page 0 Page.size '\000';
  Page.set_type page Page.Btree_leaf;
  Page.set_u16 page 2 0;
  Page.set_u32 page 4 0

let new_bucket_page t =
  let id = Freelist.alloc t.freelist in
  Buffer_pool.with_page_w t.pool id init_bucket;
  id

let entry_pos i = bucket_header + (i * entry_size)

(* --- hashing --- *)

let hash key =
  (* SplitMix64 finaliser over the key. *)
  let open Int64 in
  let z = add (of_int key) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logand (logxor z (shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let bucket_count t = (t.initial lsl t.level) + t.split

let address t key =
  let h = hash key in
  let m = t.initial lsl t.level in
  let a = h mod m in
  if a < t.split then h mod (2 * m) else a

let bucket_page t idx = Object_table.get_exn t.directory ~oid:(idx + 1)

let set_bucket_page t idx page = Object_table.set t.directory ~oid:(idx + 1) ~rid:page

(* --- construction --- *)

let create pool freelist =
  let header = Freelist.alloc freelist in
  let directory = Object_table.fresh pool freelist in
  let t =
    { pool; freelist; header; directory; initial = initial_buckets; level = 0;
      split = 0; entries = 0 }
  in
  for i = 0 to initial_buckets - 1 do
    set_bucket_page t i (new_bucket_page t)
  done;
  save_header t;
  t

let attach pool freelist ~header =
  Buffer_pool.with_page pool header (fun page ->
      let initial = Page.get_u32 page 8 in
      let level = Page.get_u32 page 12 in
      let split = Page.get_u32 page 16 in
      let entries = Page.get_u32 page 20 in
      let dir_head = Page.get_u32 page 24 in
      { pool; freelist; header; level; split; entries; initial;
        directory = Object_table.attach pool freelist ~head:dir_head })

let header t = t.header

(* --- chain operations --- *)

let fold_chain t first ~init ~f =
  let rec walk page_id acc =
    if page_id = 0 then acc
    else begin
      let acc, next =
        Buffer_pool.with_page t.pool page_id (fun page ->
            let n = Page.get_u16 page 2 in
            let acc = ref acc in
            for i = 0 to n - 1 do
              let k = Int64.to_int (Page.get_i64 page (entry_pos i)) in
              let v = Int64.to_int (Page.get_i64 page (entry_pos i + 8)) in
              acc := f !acc ~key:k ~value:v
            done;
            (!acc, Page.get_u32 page 4))
      in
      walk next acc
    end
  in
  walk first init

let chain_mem t first ~key ~value =
  fold_chain t first ~init:false ~f:(fun acc ~key:k ~value:v ->
      acc || (k = key && v = value))

(* Append into the first page of the chain with room, extending the chain
   when every page is full. *)
let chain_append t first ~key ~value =
  let rec place page_id =
    let inserted, next =
      Buffer_pool.with_page_w t.pool page_id (fun page ->
          let n = Page.get_u16 page 2 in
          if n < bucket_capacity then begin
            Page.set_i64 page (entry_pos n) (Int64.of_int key);
            Page.set_i64 page (entry_pos n + 8) (Int64.of_int value);
            Page.set_u16 page 2 (n + 1);
            (true, 0)
          end
          else (false, Page.get_u32 page 4))
    in
    if not inserted then
      if next <> 0 then place next
      else begin
        let fresh = new_bucket_page t in
        Buffer_pool.with_page_w t.pool page_id (fun page ->
            Page.set_u32 page 4 fresh);
        place fresh
      end
  in
  place first

(* Collect and free a whole chain, returning its entries. *)
let chain_drain t first =
  let entries =
    fold_chain t first ~init:[] ~f:(fun acc ~key ~value -> (key, value) :: acc)
  in
  let rec free page_id =
    if page_id <> 0 then begin
      let next =
        Buffer_pool.with_page t.pool page_id (fun page -> Page.get_u32 page 4)
      in
      Freelist.push t.freelist page_id;
      free next
    end
  in
  free first;
  entries

(* --- growth --- *)

let maybe_split t =
  if t.entries > bucket_count t * load_threshold then begin
    let m = t.initial lsl t.level in
    let victim = t.split in
    let buddy = m + t.split in
    let old_chain = bucket_page t victim in
    let entries = chain_drain t old_chain in
    set_bucket_page t victim (new_bucket_page t);
    set_bucket_page t buddy (new_bucket_page t);
    (* Advance the split pointer before re-addressing, so [address] sends
       the drained entries to victim or buddy as appropriate. *)
    t.split <- t.split + 1;
    if t.split = m then begin
      t.split <- 0;
      t.level <- t.level + 1
    end;
    List.iter
      (fun (key, value) ->
        chain_append t (bucket_page t (address t key)) ~key ~value)
      entries;
    save_header t
  end

(* --- public operations --- *)

let insert t ~key ~value =
  let first = bucket_page t (address t key) in
  if not (chain_mem t first ~key ~value) then begin
    chain_append t first ~key ~value;
    t.entries <- t.entries + 1;
    save_header t;
    maybe_split t
  end

let find_all t ~key =
  let first = bucket_page t (address t key) in
  List.sort compare
    (fold_chain t first ~init:[] ~f:(fun acc ~key:k ~value ->
         if k = key then value :: acc else acc))

let find_first t ~key =
  match find_all t ~key with [] -> None | v :: _ -> Some v

let mem t ~key ~value =
  chain_mem t (bucket_page t (address t key)) ~key ~value

let delete t ~key ~value =
  let first = bucket_page t (address t key) in
  let rec remove page_id =
    if page_id = 0 then false
    else begin
      let removed, next =
        Buffer_pool.with_page_w t.pool page_id (fun page ->
            let n = Page.get_u16 page 2 in
            let found = ref (-1) in
            for i = 0 to n - 1 do
              if
                !found < 0
                && Int64.to_int (Page.get_i64 page (entry_pos i)) = key
                && Int64.to_int (Page.get_i64 page (entry_pos i + 8)) = value
              then found := i
            done;
            if !found >= 0 then begin
              (* Swap the last entry into the hole. *)
              let last = n - 1 in
              Page.set_i64 page (entry_pos !found)
                (Page.get_i64 page (entry_pos last));
              Page.set_i64 page
                (entry_pos !found + 8)
                (Page.get_i64 page (entry_pos last + 8));
              Page.set_u16 page 2 last;
              (true, 0)
            end
            else (false, Page.get_u32 page 4))
      in
      if removed then true else remove next
    end
  in
  let removed = remove first in
  if removed then begin
    t.entries <- t.entries - 1;
    save_header t
  end;
  removed

let length t = t.entries

let bucket_count = bucket_count

let all_pages t =
  let acc = ref [] in
  Object_table.iter_pages t.directory (fun id -> acc := id :: !acc);
  for idx = 0 to bucket_count t - 1 do
    let rec walk page_id =
      if page_id <> 0 then begin
        acc := page_id :: !acc;
        walk
          (Buffer_pool.with_page t.pool page_id (fun page ->
               Page.get_u32 page 4))
      end
    in
    walk (bucket_page t idx)
  done;
  !acc

let check_invariants t =
  let seen = ref 0 in
  for idx = 0 to bucket_count t - 1 do
    fold_chain t (bucket_page t idx) ~init:() ~f:(fun () ~key ~value:_ ->
        incr seen;
        let a = address t key in
        if a <> idx then
          failwith
            (Printf.sprintf "hash_index: key %d in bucket %d, addressed to %d"
               key idx a))
  done;
  if !seen <> t.entries then
    failwith
      (Printf.sprintf "hash_index: %d entries found, %d recorded" !seen
         t.entries)

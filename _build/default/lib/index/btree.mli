(** Disk-resident B+tree: ordered multimap from [int] keys to [int]
    values.

    Backs every index in the repository: the HyperModel's uniqueId,
    hundred and million attribute indexes (ops 01, 03, 04), the
    relational backend's primary and secondary indexes, and the query
    planner's access paths.

    Entries are ordered by the pair [(key, value)], so duplicate keys are
    supported and [(key, value)] pairs are unique.  Leaves are chained
    for range scans.  Deletion is lazy (no page merging): freed entries
    leave slack that later inserts reuse — adequate for the benchmark's
    update patterns and common in production systems.

    All nodes live in buffer-pool pages; the root page id changes when
    the root splits, so owners must persist [root t] after updates. *)

open Hyper_storage

type t

val create : Buffer_pool.t -> Freelist.t -> t
(** A fresh empty tree (allocates one leaf page). *)

val attach : Buffer_pool.t -> Freelist.t -> root:int -> t

val root : t -> int

val insert : t -> key:int -> value:int -> unit
(** Duplicate [(key, value)] pairs are ignored (set semantics). *)

val delete : t -> key:int -> value:int -> bool
(** [true] when the pair was present. *)

val mem : t -> key:int -> value:int -> bool

val find_first : t -> key:int -> int option
(** Smallest value bound to [key]. *)

val find_all : t -> key:int -> int list
(** All values bound to [key], ascending. *)

val fold_range :
  t -> lo:int -> hi:int -> init:'a -> f:('a -> key:int -> value:int -> 'a) -> 'a
(** Fold over all entries with [lo <= key <= hi] in ascending order. *)

val iter_range : t -> lo:int -> hi:int -> (key:int -> value:int -> unit) -> unit

val iter : t -> (key:int -> value:int -> unit) -> unit

val length : t -> int
(** Number of entries (walks the leaves). *)

val height : t -> int

val iter_pages : t -> (int -> unit) -> unit
(** Visit every page of the tree (garbage-collection marking). *)

val check_invariants : t -> unit
(** Verify ordering, separator bounds and leaf-chain consistency.
    @raise Failure describing the first violation.  Test support. *)

(** Disk-resident linear-hash index: unordered multimap from [int] keys
    to [int] values.

    The alternative access method to the {!Btree}: O(1) point lookups
    with no ordering (so no range scans) — the classic trade-off for the
    HyperModel's [nameLookup] operation, where a key-to-OID probe is all
    that is needed.  Litwin's linear hashing grows one bucket at a time:
    when the load factor passes a threshold, the bucket at the split
    pointer is rehashed into itself and a new buddy bucket, so growth
    never pauses for a full rebuild.

    Buckets are chains of pages; the directory reuses the
    {!Hyper_storage.Object_table} page-array machinery.  All state
    reattaches from a single header page id. *)

open Hyper_storage

type t

val create : Buffer_pool.t -> Freelist.t -> t
(** A fresh index with a small initial bucket array. *)

val attach : Buffer_pool.t -> Freelist.t -> header:int -> t

val header : t -> int
(** Page id to persist; stable across the index's lifetime. *)

val insert : t -> key:int -> value:int -> unit
(** Duplicate [(key, value)] pairs are ignored (set semantics, matching
    the B+tree). *)

val delete : t -> key:int -> value:int -> bool

val mem : t -> key:int -> value:int -> bool

val find_first : t -> key:int -> int option
(** Some value bound to [key] (no ordering guarantee among duplicates). *)

val find_all : t -> key:int -> int list
(** All values bound to [key], ascending. *)

val length : t -> int
val bucket_count : t -> int

val all_pages : t -> int list
(** Every page the index owns — directory pages and bucket/overflow
    chains — excluding the header (garbage-collection marking). *)

val check_invariants : t -> unit
(** Every entry is findable and lives in the bucket its hash addresses.
    @raise Failure on violation.  Test support. *)

lib/index/btree.ml: Buffer_pool Bytes Freelist Hyper_storage Int64 List Page Printf

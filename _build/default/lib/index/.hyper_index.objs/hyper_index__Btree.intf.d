lib/index/btree.mli: Buffer_pool Freelist Hyper_storage

lib/index/hash_index.ml: Buffer_pool Bytes Freelist Hyper_storage Int64 List Object_table Page Printf

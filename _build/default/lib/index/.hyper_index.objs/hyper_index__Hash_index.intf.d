lib/index/hash_index.mli: Buffer_pool Freelist Hyper_storage

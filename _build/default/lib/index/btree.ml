open Hyper_storage

(* Page layouts.

   Leaf:      0 type | 2 n u16 | 4 next_leaf u32 | 16 entries (key i64, value i64)
   Internal:  0 type | 2 n u16 | 16 child0 u32 | 20 n * (key i64, value i64, child u32)

   Internal separators are full (key, value) pairs so duplicate keys split
   unambiguously: child i holds entries < sep i; child i+1 holds entries
   >= sep i (in (key, value) order). *)

type t = {
  pool : Buffer_pool.t;
  freelist : Freelist.t;
  mutable root : int;
}

let header = 16

let leaf_entry = 16
let leaf_capacity = (Page.size - header) / leaf_entry (* 255 *)

let int_entry = 20
let int_capacity = (Page.size - header - 4) / int_entry (* 203 *)

let get_n page = Page.get_u16 page 2
let set_n page n = Page.set_u16 page 2 n

(* --- leaf accessors --- *)

let leaf_next page = Page.get_u32 page 4
let set_leaf_next page v = Page.set_u32 page 4 v

let leaf_key page i = Int64.to_int (Page.get_i64 page (header + (i * leaf_entry)))
let leaf_value page i =
  Int64.to_int (Page.get_i64 page (header + (i * leaf_entry) + 8))

let set_leaf_entry page i ~key ~value =
  Page.set_i64 page (header + (i * leaf_entry)) (Int64.of_int key);
  Page.set_i64 page (header + (i * leaf_entry) + 8) (Int64.of_int value)

let leaf_shift_right page ~from ~n =
  let src = header + (from * leaf_entry) in
  Bytes.blit page src page (src + leaf_entry) ((n - from) * leaf_entry)

let leaf_shift_left page ~from ~n =
  let src = header + (from * leaf_entry) in
  Bytes.blit page src page (src - leaf_entry) ((n - from) * leaf_entry)

(* --- internal accessors --- *)

let int_child0 page = Page.get_u32 page header
let set_int_child0 page v = Page.set_u32 page header v

let int_entry_pos i = header + 4 + (i * int_entry)
let int_key page i = Int64.to_int (Page.get_i64 page (int_entry_pos i))
let int_value page i = Int64.to_int (Page.get_i64 page (int_entry_pos i + 8))
let int_child page i = Page.get_u32 page (int_entry_pos i + 16)

let set_int_entry page i ~key ~value ~child =
  Page.set_i64 page (int_entry_pos i) (Int64.of_int key);
  Page.set_i64 page (int_entry_pos i + 8) (Int64.of_int value);
  Page.set_u32 page (int_entry_pos i + 16) child

let int_shift_right page ~from ~n =
  let src = int_entry_pos from in
  Bytes.blit page src page (src + int_entry) ((n - from) * int_entry)

(* child of internal node at logical position i in 0..n:
   position 0 is child0, position i>0 is the child of separator i-1 *)
let child_at page i = if i = 0 then int_child0 page else int_child page (i - 1)

(* --- comparisons: entries ordered by (key, value) --- *)

let pair_lt (k1, v1) (k2, v2) = k1 < k2 || (k1 = k2 && v1 < v2)

(* first index i in [0, n) with entries.(i) >= (key, value) *)
let leaf_lower_bound page n ~key ~value =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pair_lt (leaf_key page mid, leaf_value page mid) (key, value) then
      lo := mid + 1
    else hi := mid
  done;
  !lo

(* number of separators strictly <= (key,value): the child position to
   descend into for (key, value) *)
let int_descend_pos page n ~key ~value =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    (* descend right of separator mid when (key,value) >= sep mid *)
    if pair_lt (key, value) (int_key page mid, int_value page mid) then
      hi := mid
    else lo := mid + 1
  done;
  !lo

(* --- construction --- *)

let init_leaf page =
  Bytes.fill page 0 Page.size '\000';
  Page.set_type page Page.Btree_leaf;
  set_n page 0;
  set_leaf_next page 0

let init_internal page =
  Bytes.fill page 0 Page.size '\000';
  Page.set_type page Page.Btree_internal;
  set_n page 0

let create pool freelist =
  let id = Freelist.alloc freelist in
  Buffer_pool.with_page_w pool id init_leaf;
  { pool; freelist; root = id }

let attach pool freelist ~root = { pool; freelist; root }

let root t = t.root

let is_leaf page = Page.get_type page = Page.Btree_leaf

(* --- insert --- *)

type split = No_split | Split of int * int * int (* sep key, sep value, right page *)

let rec insert_rec t page_id ~key ~value =
  let node_kind =
    Buffer_pool.with_page t.pool page_id (fun page -> is_leaf page)
  in
  if node_kind then insert_leaf t page_id ~key ~value
  else insert_internal t page_id ~key ~value

and insert_leaf t page_id ~key ~value =
  let dup, full =
    Buffer_pool.with_page t.pool page_id (fun page ->
        let n = get_n page in
        let i = leaf_lower_bound page n ~key ~value in
        let dup = i < n && leaf_key page i = key && leaf_value page i = value in
        (dup, n >= leaf_capacity))
  in
  if dup then No_split
  else if not full then begin
    Buffer_pool.with_page_w t.pool page_id (fun page ->
        let n = get_n page in
        let i = leaf_lower_bound page n ~key ~value in
        leaf_shift_right page ~from:i ~n;
        set_leaf_entry page i ~key ~value;
        set_n page (n + 1));
    No_split
  end
  else begin
    (* Split: left keeps the lower half, right gets the upper half; the
       separator is the right page's first entry. *)
    let right_id = Freelist.alloc t.freelist in
    let sep_key = ref 0 and sep_value = ref 0 in
    Buffer_pool.with_page_w t.pool page_id (fun left ->
        Buffer_pool.with_page_w t.pool right_id (fun right ->
            init_leaf right;
            let n = get_n left in
            let mid = n / 2 in
            let moved = n - mid in
            Bytes.blit left (header + (mid * leaf_entry)) right header
              (moved * leaf_entry);
            set_n right moved;
            set_n left mid;
            set_leaf_next right (leaf_next left);
            set_leaf_next left right_id;
            sep_key := leaf_key right 0;
            sep_value := leaf_value right 0));
    (* Insert the new entry into the correct half. *)
    let target =
      if pair_lt (key, value) (!sep_key, !sep_value) then page_id else right_id
    in
    (match insert_leaf t target ~key ~value with
    | No_split -> ()
    | Split _ -> failwith "Btree: double split of a freshly split leaf");
    Split (!sep_key, !sep_value, right_id)
  end

and insert_internal t page_id ~key ~value =
  let pos =
    Buffer_pool.with_page t.pool page_id (fun page ->
        int_descend_pos page (get_n page) ~key ~value)
  in
  let child =
    Buffer_pool.with_page t.pool page_id (fun page -> child_at page pos)
  in
  match insert_rec t child ~key ~value with
  | No_split -> No_split
  | Split (sk, sv, right) ->
    let full =
      Buffer_pool.with_page t.pool page_id (fun page ->
          get_n page >= int_capacity)
    in
    if not full then begin
      Buffer_pool.with_page_w t.pool page_id (fun page ->
          let n = get_n page in
          let i = int_descend_pos page n ~key:sk ~value:sv in
          int_shift_right page ~from:i ~n;
          set_int_entry page i ~key:sk ~value:sv ~child:right;
          set_n page (n + 1));
      No_split
    end
    else begin
      (* Split the internal node: middle separator moves up. *)
      let right_id = Freelist.alloc t.freelist in
      let up_key = ref 0 and up_value = ref 0 in
      Buffer_pool.with_page_w t.pool page_id (fun left ->
          Buffer_pool.with_page_w t.pool right_id (fun right_page ->
              init_internal right_page;
              let n = get_n left in
              let mid = n / 2 in
              up_key := int_key left mid;
              up_value := int_value left mid;
              (* right gets separators mid+1..n-1; its child0 is sep mid's child *)
              set_int_child0 right_page (int_child left mid);
              let moved = n - mid - 1 in
              Bytes.blit left (int_entry_pos (mid + 1)) right_page
                (int_entry_pos 0) (moved * int_entry);
              set_n right_page moved;
              set_n left mid));
      (* Now insert (sk, sv, right) into the proper half. *)
      let target =
        if pair_lt (sk, sv) (!up_key, !up_value) then page_id else right_id
      in
      Buffer_pool.with_page_w t.pool target (fun page ->
          let n = get_n page in
          let i = int_descend_pos page n ~key:sk ~value:sv in
          int_shift_right page ~from:i ~n;
          set_int_entry page i ~key:sk ~value:sv ~child:right;
          set_n page (n + 1));
      Split (!up_key, !up_value, right_id)
    end

let insert t ~key ~value =
  match insert_rec t t.root ~key ~value with
  | No_split -> ()
  | Split (sk, sv, right) ->
    let new_root = Freelist.alloc t.freelist in
    let old_root = t.root in
    Buffer_pool.with_page_w t.pool new_root (fun page ->
        init_internal page;
        set_int_child0 page old_root;
        set_int_entry page 0 ~key:sk ~value:sv ~child:right;
        set_n page 1);
    t.root <- new_root

(* --- search helpers --- *)

let rec find_leaf t page_id ~key ~value =
  let leaf, next =
    Buffer_pool.with_page t.pool page_id (fun page ->
        if is_leaf page then (true, 0)
        else (false, child_at page (int_descend_pos page (get_n page) ~key ~value)))
  in
  if leaf then page_id else find_leaf t next ~key ~value

let delete t ~key ~value =
  let leaf = find_leaf t t.root ~key ~value in
  Buffer_pool.with_page_w t.pool leaf (fun page ->
      let n = get_n page in
      let i = leaf_lower_bound page n ~key ~value in
      if i < n && leaf_key page i = key && leaf_value page i = value then begin
        leaf_shift_left page ~from:(i + 1) ~n;
        set_n page (n - 1);
        true
      end
      else false)

let mem t ~key ~value =
  let leaf = find_leaf t t.root ~key ~value in
  Buffer_pool.with_page t.pool leaf (fun page ->
      let n = get_n page in
      let i = leaf_lower_bound page n ~key ~value in
      i < n && leaf_key page i = key && leaf_value page i = value)

(* Fold entries in [lo, hi] by walking the leaf chain from the first
   candidate leaf. *)
let fold_range t ~lo ~hi ~init ~f =
  if lo > hi then init
  else begin
    let leaf = find_leaf t t.root ~key:lo ~value:min_int in
    let rec walk page_id acc =
      if page_id = 0 then acc
      else begin
        let acc, continue, next =
          Buffer_pool.with_page t.pool page_id (fun page ->
              let n = get_n page in
              let acc = ref acc in
              let continue = ref true in
              let i = ref (leaf_lower_bound page n ~key:lo ~value:min_int) in
              while !continue && !i < n do
                let k = leaf_key page !i in
                if k > hi then continue := false
                else begin
                  acc := f !acc ~key:k ~value:(leaf_value page !i);
                  incr i
                end
              done;
              (!acc, !continue, leaf_next page))
        in
        if continue then walk next acc else acc
      end
    in
    walk leaf init
  end

let iter_range t ~lo ~hi f =
  fold_range t ~lo ~hi ~init:() ~f:(fun () ~key ~value -> f ~key ~value)

let iter t f = iter_range t ~lo:min_int ~hi:max_int f

let find_all t ~key =
  List.rev
    (fold_range t ~lo:key ~hi:key ~init:[] ~f:(fun acc ~key:_ ~value ->
         value :: acc))

let find_first t ~key =
  (* Cheap: look only at the first matching leaf position. *)
  let leaf = find_leaf t t.root ~key ~value:min_int in
  let rec probe page_id =
    if page_id = 0 then None
    else
      let result, next =
        Buffer_pool.with_page t.pool page_id (fun page ->
            let n = get_n page in
            let i = leaf_lower_bound page n ~key ~value:min_int in
            if i < n then
              if leaf_key page i = key then (Some (Some (leaf_value page i)), 0)
              else (Some None, 0)
            else (None, leaf_next page))
      in
      match result with Some r -> r | None -> probe next
  in
  probe leaf

let length t =
  fold_range t ~lo:min_int ~hi:max_int ~init:0 ~f:(fun acc ~key:_ ~value:_ ->
      acc + 1)

let height t =
  let rec depth page_id acc =
    let leaf, next =
      Buffer_pool.with_page t.pool page_id (fun page ->
          if is_leaf page then (true, 0) else (false, child_at page 0))
    in
    if leaf then acc else depth next (acc + 1)
  in
  depth t.root 1

let iter_pages t f =
  let rec visit page_id =
    f page_id;
    let children =
      Buffer_pool.with_page t.pool page_id (fun page ->
          if is_leaf page then []
          else List.init (get_n page + 1) (fun i -> child_at page i))
    in
    List.iter visit children
  in
  visit t.root

(* --- invariant checking (tests) --- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Recursively verify each node's entries lie within (lo, hi) bounds in
     (key,value) order, and collect leaves left-to-right. *)
  let leaves = ref [] in
  let rec check page_id lo hi depth =
    Buffer_pool.with_page t.pool page_id (fun page ->
        let n = get_n page in
        let in_bounds pair =
          (match lo with Some l -> not (pair_lt pair l) | None -> true)
          && match hi with Some h -> pair_lt pair h | None -> true
        in
        if is_leaf page then begin
          for i = 0 to n - 1 do
            let pair = (leaf_key page i, leaf_value page i) in
            if not (in_bounds pair) then
              fail "btree: leaf %d entry %d out of separator bounds" page_id i;
            if i > 0 then begin
              let prev = (leaf_key page (i - 1), leaf_value page (i - 1)) in
              if not (pair_lt prev pair) then
                fail "btree: leaf %d entries %d,%d out of order" page_id (i - 1) i
            end
          done;
          leaves := (page_id, depth) :: !leaves
        end
        else begin
          if n = 0 then fail "btree: internal node %d has no separators" page_id;
          for i = 0 to n - 1 do
            let pair = (int_key page i, int_value page i) in
            if not (in_bounds pair) then
              fail "btree: internal %d separator %d out of bounds" page_id i;
            if i > 0 then begin
              let prev = (int_key page (i - 1), int_value page (i - 1)) in
              if not (pair_lt prev pair) then
                fail "btree: internal %d separators %d,%d out of order" page_id
                  (i - 1) i
            end
          done;
          for i = 0 to n do
            let child = child_at page i in
            let lo' = if i = 0 then lo else Some (int_key page (i - 1), int_value page (i - 1)) in
            let hi' = if i = n then hi else Some (int_key page i, int_value page i) in
            check child lo' hi' (depth + 1)
          done
        end)
  in
  check t.root None None 0;
  (* All leaves at the same depth, chained left-to-right. *)
  let ordered = List.rev !leaves in
  (match ordered with
  | [] -> fail "btree: no leaves"
  | (_, d0) :: rest ->
    List.iter
      (fun (_, d) -> if d <> d0 then fail "btree: leaves at unequal depth")
      rest);
  let rec check_chain = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      let next = Buffer_pool.with_page t.pool a (fun page -> leaf_next page) in
      if next <> b then fail "btree: leaf chain broken at page %d" a;
      check_chain rest
    | [ (last, _) ] ->
      let next = Buffer_pool.with_page t.pool last (fun page -> leaf_next page) in
      if next <> 0 then fail "btree: last leaf %d has a next pointer" last
    | [] -> ()
  in
  check_chain ordered

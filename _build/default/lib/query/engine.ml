type source = {
  scan : (Ast.row -> unit) -> unit;
  index_range : Ast.attr -> lo:int -> hi:int -> (Ast.row -> unit) -> bool;
}

type result = Oids of int list | Count of int

exception Limit_reached

let collect source stmt =
  let matched = ref [] in
  let n = ref 0 in
  let limit = stmt.Ast.limit in
  let visit residual row =
    if Ast.eval residual row then begin
      matched := row.Ast.oid :: !matched;
      incr n;
      match limit with
      | Some l when !n >= l -> raise Limit_reached
      | Some _ | None -> ()
    end
  in
  (* Probe which attributes the source can index by asking with an empty
     visitor; sources answer statically so this is side-effect free. *)
  let indexed attr = source.index_range attr ~lo:1 ~hi:0 (fun _ -> ()) in
  let plan = Planner.plan ~indexed stmt.Ast.where in
  (try
     match plan with
     | Planner.Full_scan e -> source.scan (visit e)
     | Planner.Index_range (attr, lo, hi, residual) ->
       if not (source.index_range attr ~lo ~hi (visit residual)) then
         (* Source lied about the index; recover with a scan of the full
            predicate. *)
         source.scan (visit stmt.Ast.where)
   with Limit_reached -> ());
  List.sort compare !matched

let run source stmt =
  let oids = collect source stmt in
  match stmt.Ast.verb with
  | Ast.Select -> Oids oids
  | Ast.Count -> Count (List.length oids)

let run_string source input = run source (Parser.parse input)

let explain source input =
  let stmt = Parser.parse input in
  let indexed attr = source.index_range attr ~lo:1 ~hi:0 (fun _ -> ()) in
  Planner.plan_to_string (Planner.plan ~indexed stmt.Ast.where)

let result_to_string = function
  | Oids oids ->
    Printf.sprintf "%d nodes: [%s]" (List.length oids)
      (String.concat "; " (List.map string_of_int oids))
  | Count n -> Printf.sprintf "count = %d" n

(** Abstract syntax for the HyperModel ad-hoc query language (R12).

    The language selects nodes by predicates over the benchmark schema's
    scalar attributes and node kind:

    {v
      select where hundred between 10 and 19
      count  where million >= 500000 and kind = text
      select where (ten = 3 or ten = 4) and not kind = form limit 20
    v} *)

type attr = Unique_id | Ten | Hundred | Million

type kind = Internal | Text | Form | Draw

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Cmp of attr * cmp * int
  | Between of attr * int * int  (** inclusive bounds *)
  | Kind_is of kind
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | True

type verb = Select | Count

type stmt = { verb : verb; where : expr; limit : int option }

(** A row as seen by the query engine. *)
type row = {
  oid : int;
  unique_id : int;
  ten : int;
  hundred : int;
  million : int;
  kind : kind;
}

val attr_of_row : row -> attr -> int
val eval : expr -> row -> bool
val attr_to_string : attr -> string
val kind_to_string : kind -> string
val expr_to_string : expr -> string
val stmt_to_string : stmt -> string

(** Query execution over an abstract row source.

    Backends expose their data through a {!source}; the engine parses,
    plans against the available indexes and executes.  Results are OIDs
    in ascending order (selects) or a count. *)

type source = {
  scan : (Ast.row -> unit) -> unit;
      (** visit every row in the queried structure *)
  index_range : Ast.attr -> lo:int -> hi:int -> (Ast.row -> unit) -> bool;
      (** visit rows with [attr] in [lo, hi] via an index; [false] when no
          index exists on [attr] (the engine then falls back to a scan) *)
}

type result = Oids of int list | Count of int

val run : source -> Ast.stmt -> result

val run_string : source -> string -> result
(** Parse then [run].
    @raise Parser.Parse_error / Lexer.Lex_error on bad input. *)

val explain : source -> string -> string
(** The plan that [run_string] would execute, rendered. *)

val result_to_string : result -> string

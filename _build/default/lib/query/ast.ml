type attr = Unique_id | Ten | Hundred | Million

type kind = Internal | Text | Form | Draw

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Cmp of attr * cmp * int
  | Between of attr * int * int
  | Kind_is of kind
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | True

type verb = Select | Count

type stmt = { verb : verb; where : expr; limit : int option }

type row = {
  oid : int;
  unique_id : int;
  ten : int;
  hundred : int;
  million : int;
  kind : kind;
}

let attr_of_row row = function
  | Unique_id -> row.unique_id
  | Ten -> row.ten
  | Hundred -> row.hundred
  | Million -> row.million

let apply_cmp op a b =
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let rec eval expr row =
  match expr with
  | Cmp (attr, op, v) -> apply_cmp op (attr_of_row row attr) v
  | Between (attr, lo, hi) ->
    let v = attr_of_row row attr in
    v >= lo && v <= hi
  | Kind_is k -> row.kind = k
  | And (a, b) -> eval a row && eval b row
  | Or (a, b) -> eval a row || eval b row
  | Not e -> not (eval e row)
  | True -> true

let attr_to_string = function
  | Unique_id -> "uniqueId"
  | Ten -> "ten"
  | Hundred -> "hundred"
  | Million -> "million"

let kind_to_string = function
  | Internal -> "internal"
  | Text -> "text"
  | Form -> "form"
  | Draw -> "draw"

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_to_string = function
  | Cmp (a, op, v) ->
    Printf.sprintf "%s %s %d" (attr_to_string a) (cmp_to_string op) v
  | Between (a, lo, hi) ->
    Printf.sprintf "%s between %d and %d" (attr_to_string a) lo hi
  | Kind_is k -> Printf.sprintf "kind = %s" (kind_to_string k)
  | And (a, b) ->
    Printf.sprintf "(%s and %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) ->
    Printf.sprintf "(%s or %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> Printf.sprintf "(not %s)" (expr_to_string e)
  | True -> "true"

let stmt_to_string { verb; where; limit } =
  Printf.sprintf "%s where %s%s"
    (match verb with Select -> "select" | Count -> "count")
    (expr_to_string where)
    (match limit with None -> "" | Some n -> Printf.sprintf " limit %d" n)

lib/query/engine.mli: Ast

lib/query/lexer.mli:

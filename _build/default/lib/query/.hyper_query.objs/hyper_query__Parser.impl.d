lib/query/parser.ml: Ast Lexer Printf

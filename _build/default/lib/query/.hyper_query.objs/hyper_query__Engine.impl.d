lib/query/engine.ml: Ast List Parser Planner Printf String

lib/query/ast.mli:

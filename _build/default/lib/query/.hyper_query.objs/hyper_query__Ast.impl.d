lib/query/ast.ml: Printf

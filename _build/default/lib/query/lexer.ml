type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec lex i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> lex (i + 1) acc
      | '(' -> lex (i + 1) (LPAREN :: acc)
      | ')' -> lex (i + 1) (RPAREN :: acc)
      | '=' -> lex (i + 1) (EQ :: acc)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> lex (i + 2) (NEQ :: acc)
      | '<' when i + 1 < n && input.[i + 1] = '=' -> lex (i + 2) (LE :: acc)
      | '<' when i + 1 < n && input.[i + 1] = '>' -> lex (i + 2) (NEQ :: acc)
      | '<' -> lex (i + 1) (LT :: acc)
      | '>' when i + 1 < n && input.[i + 1] = '=' -> lex (i + 2) (GE :: acc)
      | '>' -> lex (i + 1) (GT :: acc)
      | c when is_digit c ->
        let j = ref i in
        while !j < n && is_digit input.[!j] do
          incr j
        done;
        lex !j (INT (int_of_string (String.sub input i (!j - i))) :: acc)
      | c when is_alpha c ->
        let j = ref i in
        while !j < n && (is_alpha input.[!j] || is_digit input.[!j]) do
          incr j
        done;
        lex !j (IDENT (String.lowercase_ascii (String.sub input i (!j - i))) :: acc)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C at %d" c i))
  in
  lex 0 []

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | LPAREN -> "("
  | RPAREN -> ")"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

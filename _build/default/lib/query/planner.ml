open Ast

type plan =
  | Full_scan of Ast.expr
  | Index_range of Ast.attr * int * int * Ast.expr

(* Extract the top-level conjuncts of an expression. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec conjoin = function
  | [] -> True
  | [ e ] -> e
  | e :: rest -> And (e, conjoin rest)

(* An indexable bound for a conjunct, as (attr, lo, hi). *)
let bound_of ~indexed = function
  | Between (a, lo, hi) when indexed a -> Some (a, lo, hi)
  | Cmp (a, Eq, v) when indexed a -> Some (a, v, v)
  | Cmp (a, Le, v) when indexed a -> Some (a, min_int, v)
  | Cmp (a, Lt, v) when indexed a -> Some (a, min_int, v - 1)
  | Cmp (a, Ge, v) when indexed a -> Some (a, v, max_int)
  | Cmp (a, Gt, v) when indexed a -> Some (a, v + 1, max_int)
  | Cmp (_, (Neq | Eq | Lt | Le | Gt | Ge), _)
  | Between _ | Kind_is _ | And _ | Or _ | Not _ | True -> None

(* Width of a bound, used to pick the most selective index. *)
let width (_, lo, hi) =
  if lo = min_int || hi = max_int then max_int else hi - lo + 1

let plan ~indexed expr =
  let cs = conjuncts expr in
  let candidates =
    List.filter_map
      (fun c ->
        match bound_of ~indexed c with
        | Some b -> Some (c, b)
        | None -> None)
      cs
  in
  match candidates with
  | [] -> Full_scan expr
  | _ ->
    let best =
      List.fold_left
        (fun acc cand ->
          match acc with
          | None -> Some cand
          | Some (_, bb) ->
            let _, cb = cand in
            if width cb < width bb then Some cand else acc)
        None candidates
    in
    (match best with
    | Some (chosen, (attr, lo, hi)) ->
      let residual = conjoin (List.filter (fun c -> c != chosen) cs) in
      Index_range (attr, lo, hi, residual)
    | None -> Full_scan expr)

let plan_to_string = function
  | Full_scan e -> Printf.sprintf "full-scan filter(%s)" (expr_to_string e)
  | Index_range (a, lo, hi, residual) ->
    Printf.sprintf "index-range %s in [%s, %s] filter(%s)"
      (attr_to_string a)
      (if lo = min_int then "-inf" else string_of_int lo)
      (if hi = max_int then "+inf" else string_of_int hi)
      (expr_to_string residual)

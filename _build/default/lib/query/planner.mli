(** Rule-based access-path selection.

    The planner looks for an indexable range on an indexed attribute in
    the top-level conjunction of the predicate; when found, execution
    probes that index and filters the residual predicate.  Otherwise it
    falls back to a sequential scan — the trade-off the HyperModel's
    range-lookup operations (03, 04) are designed to expose. *)

type plan =
  | Full_scan of Ast.expr
      (** scan every row, filter by the predicate *)
  | Index_range of Ast.attr * int * int * Ast.expr
      (** probe index on attr for keys in [lo, hi], filter the residual *)

val plan : indexed:(Ast.attr -> bool) -> Ast.expr -> plan
(** [indexed] reports which attributes have an index available. *)

val plan_to_string : plan -> string

open Ast

exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect_ident st name =
  match peek st with
  | Lexer.IDENT s when s = name -> advance st
  | t -> fail "expected %S, got %s" name (Lexer.token_to_string t)

let expect_int st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    n
  | t -> fail "expected an integer, got %s" (Lexer.token_to_string t)

let attr_of_ident = function
  | "uniqueid" -> Some Unique_id
  | "ten" -> Some Ten
  | "hundred" -> Some Hundred
  | "million" -> Some Million
  | _ -> None

let kind_of_ident = function
  | "internal" -> Some Internal
  | "text" -> Some Text
  | "form" -> Some Form
  | "draw" -> Some Draw
  | _ -> None

let cmp_of_token = function
  | Lexer.EQ -> Some Eq
  | Lexer.NEQ -> Some Neq
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | _ -> None

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Lexer.IDENT "or" ->
    advance st;
    Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_unary st in
  match peek st with
  | Lexer.IDENT "and" ->
    advance st;
    And (left, parse_and st)
  | _ -> left

and parse_unary st =
  match peek st with
  | Lexer.IDENT "not" ->
    advance st;
    Not (parse_unary st)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    (match peek st with
    | Lexer.RPAREN ->
      advance st;
      e
    | t -> fail "expected ), got %s" (Lexer.token_to_string t))
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.IDENT "true" ->
    advance st;
    True
  | Lexer.IDENT "kind" ->
    advance st;
    (match peek st with
    | Lexer.EQ -> advance st
    | t -> fail "expected = after kind, got %s" (Lexer.token_to_string t));
    (match peek st with
    | Lexer.IDENT s -> (
      match kind_of_ident s with
      | Some k ->
        advance st;
        Kind_is k
      | None -> fail "unknown kind %S" s)
    | t -> fail "expected a kind name, got %s" (Lexer.token_to_string t))
  | Lexer.IDENT name -> (
    match attr_of_ident name with
    | None -> fail "unknown attribute %S" name
    | Some attr -> (
      advance st;
      match peek st with
      | Lexer.IDENT "between" ->
        advance st;
        let lo = expect_int st in
        expect_ident st "and";
        let hi = expect_int st in
        if hi < lo then fail "between: upper bound %d < lower bound %d" hi lo;
        Between (attr, lo, hi)
      | t -> (
        match cmp_of_token t with
        | Some op ->
          advance st;
          Cmp (attr, op, expect_int st)
        | None ->
          fail "expected a comparison after %s, got %s"
            (Ast.attr_to_string attr) (Lexer.token_to_string t))))
  | t -> fail "expected a predicate, got %s" (Lexer.token_to_string t)

let parse_stmt st =
  let verb =
    match peek st with
    | Lexer.IDENT "select" ->
      advance st;
      Select
    | Lexer.IDENT "count" ->
      advance st;
      Count
    | t -> fail "expected select or count, got %s" (Lexer.token_to_string t)
  in
  expect_ident st "where";
  let where = parse_or st in
  let limit =
    match peek st with
    | Lexer.IDENT "limit" ->
      advance st;
      let n = expect_int st in
      if n < 0 then fail "negative limit";
      Some n
    | _ -> None
  in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail "trailing input: %s" (Lexer.token_to_string t));
  { verb; where; limit }

let parse input = parse_stmt { tokens = Lexer.tokenize input }

let parse_expr input =
  let st = { tokens = Lexer.tokenize input } in
  let e = parse_or st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail "trailing input: %s" (Lexer.token_to_string t));
  e

(** Tokeniser for the query language. *)

type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string

val tokenize : string -> token list
(** @raise Lex_error on an unrecognisable character. *)

val token_to_string : token -> string

(** Recursive-descent parser for the query language.

    Grammar (keywords case-insensitive):

    {v
      stmt    := ("select" | "count") "where" expr ("limit" INT)?
      expr    := conj ("or" conj)*
      conj    := unary ("and" unary)*
      unary   := "not" unary | "(" expr ")" | atom
      atom    := attr cmp INT
               | attr "between" INT "and" INT
               | "kind" "=" ("internal"|"text"|"form"|"draw")
               | "true"
      attr    := "uniqueid" | "ten" | "hundred" | "million"
    v} *)

exception Parse_error of string

val parse : string -> Ast.stmt
(** @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a bare predicate (no verb / limit). *)

open Hyper_storage

type profile = {
  network : Latency_model.t;
  server_disk : Latency_model.t;
  server_cache_pages : int;
}

type counters = {
  mutable round_trips : int;
  mutable bytes_sent : int;
  mutable server_hits : int;
  mutable server_misses : int;
}

type t = {
  pager : Pager.t;
  network : Latency_model.t;
  server_disk : Latency_model.t;
  cache_capacity : int;
  cache : (int, int) Hashtbl.t; (* page -> last-use tick *)
  mutable tick : int;
  mutable all_resident : bool;
  counters : counters;
}

let cache_touch t page =
  t.tick <- t.tick + 1;
  if not (Hashtbl.mem t.cache page) then begin
    if Hashtbl.length t.cache >= t.cache_capacity then begin
      (* Evict the least recently used entry. *)
      let victim =
        Hashtbl.fold
          (fun p tick best ->
            match best with
            | Some (_, bt) when bt <= tick -> best
            | _ -> Some (p, tick))
          t.cache None
      in
      match victim with
      | Some (p, _) -> Hashtbl.remove t.cache p
      | None -> ()
    end;
    Hashtbl.add t.cache page t.tick
  end
  else Hashtbl.replace t.cache page t.tick

let server_lookup t page =
  let hit = t.all_resident || Hashtbl.mem t.cache page in
  cache_touch t page;
  hit

let on_read t page =
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + Page.size;
  Latency_model.charge t.network ~bytes:Page.size;
  if server_lookup t page then
    t.counters.server_hits <- t.counters.server_hits + 1
  else begin
    t.counters.server_misses <- t.counters.server_misses + 1;
    Latency_model.charge t.server_disk ~bytes:Page.size
  end

let on_write t page =
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + Page.size;
  Latency_model.charge t.network ~bytes:Page.size;
  (* The written page is now resident in the server cache. *)
  cache_touch t page

let attach ~network ?(server_disk = Latency_model.disk_1988)
    ?(server_cache_pages = 1024) pager =
  let t =
    { pager; network; server_disk; cache_capacity = server_cache_pages;
      cache = Hashtbl.create (2 * server_cache_pages); tick = 0;
      all_resident = false;
      counters =
        { round_trips = 0; bytes_sent = 0; server_hits = 0; server_misses = 0 } }
  in
  Pager.set_hooks pager ~on_read:(on_read t) ~on_write:(on_write t);
  t

let profile_1988 =
  { network = Latency_model.lan_1988; server_disk = Latency_model.disk_1988;
    server_cache_pages = 1024 }

let attach_profile (p : profile) pager =
  attach ~network:p.network ~server_disk:p.server_disk
    ~server_cache_pages:p.server_cache_pages pager

let detach t = Pager.clear_hooks t.pager

let counters t = t.counters

let reset_counters t =
  t.counters.round_trips <- 0;
  t.counters.bytes_sent <- 0;
  t.counters.server_hits <- 0;
  t.counters.server_misses <- 0

let warm_server t = t.all_resident <- true

open Hyper_util

type t = { per_request_ns : float; per_byte_ns : float }

let create ~per_request_ns ~per_byte_ns =
  if per_request_ns < 0.0 || per_byte_ns < 0.0 then
    invalid_arg "Latency_model.create: negative cost";
  { per_request_ns; per_byte_ns }

let zero = { per_request_ns = 0.0; per_byte_ns = 0.0 }

let lan_1988 = { per_request_ns = 2_000_000.0; per_byte_ns = 800.0 }

let disk_1988 = { per_request_ns = 25_000_000.0; per_byte_ns = 1_000.0 }

let disk_modern = { per_request_ns = 80_000.0; per_byte_ns = 2.0 }

let cost_ns t ~bytes =
  t.per_request_ns +. (t.per_byte_ns *. float_of_int bytes)

let charge t ~bytes = Vclock.advance_ns (cost_ns t ~bytes)

let describe t =
  Printf.sprintf "%.0f us/request + %.2f ns/byte"
    (t.per_request_ns /. 1000.0) t.per_byte_ns

lib/net/latency_model.mli:

lib/net/latency_model.ml: Hyper_util Printf Vclock

lib/net/channel.mli: Hyper_storage Latency_model

lib/net/channel.ml: Hashtbl Hyper_storage Latency_model Page Pager

(** Deterministic latency models for simulated I/O (R6/R7).

    A model charges a fixed per-request cost plus a per-byte cost to the
    virtual clock ({!Hyper_util.Vclock}) instead of sleeping, so
    benchmarks remain fast and reproducible while cold/warm and
    local/remote gaps stay visible in the reported times.

    The presets approximate the paper's 1988 environment: workstations on
    a 10 Mbit/s LAN against a shared server, and local SCSI-era disks. *)

type t

val create : per_request_ns:float -> per_byte_ns:float -> t

val zero : t
(** Free I/O (used for pure in-memory runs). *)

val lan_1988 : t
(** A remote procedure call on a 10 Mbit/s Ethernet: ≈2 ms fixed cost
    plus 0.8 µs/byte. *)

val disk_1988 : t
(** One random access on a late-80s disk: ≈25 ms seek+rotate plus
    transfer at ≈1 MB/s. *)

val disk_modern : t
(** A commodity SSD: 80 µs access, ≈0.5 GB/s. *)

val cost_ns : t -> bytes:int -> float

val charge : t -> bytes:int -> unit
(** Advance the virtual clock by [cost_ns]. *)

val describe : t -> string

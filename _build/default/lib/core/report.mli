(** Rendering benchmark results in the paper's reporting format:
    milliseconds per node returned, cold and warm, per database level. *)

val creation_table :
  title:string -> (string * int * Generator.timings) list -> string
(** One row per generation phase per (backend, level): ms/item and total.
    The int is the leaf level. *)

val operation_table :
  title:string -> levels:int list -> (int * Protocol.measurement list) list ->
  string
(** The paper's §6 matrix: rows are operations, column pairs are
    cold/warm ms-per-node for each level.  Input: per-level measurement
    lists (all levels must share the operation set). *)

val comparison_table :
  title:string -> backends:string list ->
  (string * (string * Protocol.measurement) list) list -> string
(** Cross-backend table: rows are operations, columns cold/warm per
    backend.  Input: (op label, per-backend measurement) rows. *)

val size_table :
  title:string -> (int * int * int) list -> string
(** (leaf level, modelled bytes, measured bytes) rows — experiment T1. *)

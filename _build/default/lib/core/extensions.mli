(** The paper's §6.8 extension operations, probing requirements the core
    20 operations do not: schema modification (R4), versions (R5) and
    access control (R11).  Each returns enough information for the T6
    experiment to report a capability line and a timing. *)

module Make (B : Backend.S) : sig
  (** {2 E1 — schema modification (R4)} *)

  val add_draw_node :
    B.t -> layout:Layout.t -> oid:Oid.t -> unique_id:int -> unit
  (** Add a node of the dynamically added [DrawNode] type to the
      structure (as a child of the root).  Must be called inside a
      transaction. *)

  val add_attribute_everywhere :
    B.t -> layout:Layout.t -> name:string -> value:(Oid.t -> int) -> int
  (** Specialise the schema by adding attribute [name] to every node of
      the structure; returns the number of nodes touched. *)

  (** {2 E2 — versions and variants (R5)} *)

  type versions
  (** Version store for text-node contents, on a logical clock. *)

  val create_versions : unit -> versions

  val edit_with_version : versions -> B.t -> Oid.t -> int
  (** Snapshot the node's current text, then apply the textNodeEdit
      mutation; returns the snapshot timestamp.  In-transaction only. *)

  val current_text : versions -> B.t -> Oid.t -> string
  val previous_version : versions -> Oid.t -> string option
  val version_as_of : versions -> Oid.t -> time:int -> string option
  val version_count : versions -> Oid.t -> int

  val create_variant : versions -> B.t -> Oid.t -> variant:string -> int
  (** Record the node's current text as the head of a named variant
      branch. *)

  val variant_text : versions -> Oid.t -> variant:string -> string option

  val structure_as_of :
    versions -> B.t -> start:Oid.t -> time:int -> (Oid.t * string) list
  (** R5's second requirement: "retrieve … a node-structure as it was at
      a specific time-point".  Walks the 1-N closure from [start] in
      pre-order and reconstructs each text node's content at [time] —
      the snapshot value when one exists, otherwise the current content
      (a node never edited has only its current state).  Non-text nodes
      are omitted. *)

  (** {2 E3 — access control (R11)} *)

  val demo_two_documents :
    B.t -> acl:Access.t -> doc_a:Layout.t -> doc_b:Layout.t -> user:string ->
    (bool * bool * bool * bool)
  (** Set doc A public-read-only and doc B public-writable (as the
      paper's example), create a reference from A's root to B's root, and
      return, for [user]: (can read A, can write A, can write B, link
      from A to B traversable).  Expected: (true, false, true, true).
      In-transaction only. *)
end

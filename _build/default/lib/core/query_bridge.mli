(** Bridge from any backend to the ad-hoc query engine (R12).

    Exposes one document structure as a {!Hyper_query.Engine.source}:
    sequential scans go through [iter_doc]; the uniqueId, hundred and
    million indexes are offered to the planner.  The [ten] attribute has
    no index anywhere (as in the paper), so predicates on it filter after
    the chosen access path. *)

val source :
  (module Backend.S with type t = 'b) -> 'b -> doc:int ->
  Hyper_query.Engine.source

val query :
  (module Backend.S with type t = 'b) -> 'b -> doc:int -> string ->
  Hyper_query.Engine.result
(** Parse, plan and run a query string against one structure. *)

val explain :
  (module Backend.S with type t = 'b) -> 'b -> doc:int -> string -> string

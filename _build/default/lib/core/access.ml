type permission = Read | Write

type policy = { owner : string; mutable public_read : bool; mutable public_write : bool }

type t = { policies : (int, policy) Hashtbl.t }

exception Denied of { user : string; doc : int; wanted : permission }

let create () = { policies = Hashtbl.create 8 }

let register t ~doc ~owner =
  if Hashtbl.mem t.policies doc then
    invalid_arg (Printf.sprintf "Access.register: document %d already registered" doc);
  Hashtbl.add t.policies doc { owner; public_read = false; public_write = false }

let policy_exn t doc =
  match Hashtbl.find_opt t.policies doc with
  | Some p -> p
  | None ->
    invalid_arg (Printf.sprintf "Access: document %d is not registered" doc)

let set_public t ~doc ~read ~write =
  let p = policy_exn t doc in
  p.public_read <- read;
  p.public_write <- write

let allowed t ~user ~doc permission =
  match Hashtbl.find_opt t.policies doc with
  | None -> true (* unregistered structures are unrestricted *)
  | Some p ->
    if p.owner = user then true
    else begin
      match permission with
      | Read -> p.public_read || p.public_write
      | Write -> p.public_write
    end

let check t ~user ~doc permission =
  if not (allowed t ~user ~doc permission) then
    raise (Denied { user; doc; wanted = permission })

let owner_of t ~doc =
  Option.map (fun p -> p.owner) (Hashtbl.find_opt t.policies doc)

let describe t ~doc =
  match Hashtbl.find_opt t.policies doc with
  | None -> "unregistered (open)"
  | Some p ->
    Printf.sprintf "owner=%s public-read=%b public-write=%b" p.owner
      p.public_read p.public_write

(** The benchmark timing protocol (paper §6).

    For every operation: (a) draw 50 random inputs from the layout,
    (b) run the 50 operations *cold* (caches dropped, as after a database
    open), (c) commit, (d) run the same 50 inputs *warm*, (e) drop caches
    so this sequence cannot warm the next one.  Commit time is included
    in the measured window; reported numbers are milliseconds per node
    returned, cold and warm.

    Time is read from {!Hyper_util.Vclock}, so simulated I/O latency
    (remote/disk models) is included. *)

type measurement = {
  op : string;          (** paper id + name, e.g. ["10 closure1N"] *)
  reps : int;
  nodes_cold : int;     (** nodes returned over all cold reps *)
  nodes_warm : int;
  cold_ms : float;      (** total cold window, commit included *)
  warm_ms : float;
}

val cold_ms_per_node : measurement -> float
val warm_ms_per_node : measurement -> float
val nodes_per_op : measurement -> float

type config = {
  reps : int;        (** 50 in the paper *)
  seed : int64;      (** input-selection stream *)
  depth : int;       (** M-N-attribute closure depth; 25 in the paper *)
}

val default_config : config

(** Operations selectable by id (used by the CLI). *)
val op_ids : string list

module Make (B : Backend.S) : sig
  val run_op : ?config:config -> B.t -> Layout.t -> string -> measurement
  (** Run one operation sequence by op id (e.g. ["05A"], ["16"]).
      @raise Invalid_argument for an unknown id. *)

  val run_all : ?config:config -> B.t -> Layout.t -> measurement list
  (** All 20 operations, in paper order. *)
end

(** Access control (R11).

    The paper's requirement: set public read-access on one
    document-structure and public write-access on another, while links
    between the structures keep working.  Access control is enforced at
    the structure (document) granularity, above the storage backends —
    the same place the paper-era systems put it.

    Each document has an owner with full rights; public rights are
    granted per permission.  Checks are pure; the {!check} variant
    raises. *)

type permission = Read | Write

type t

exception Denied of { user : string; doc : int; wanted : permission }

val create : unit -> t

val register : t -> doc:int -> owner:string -> unit
(** @raise Invalid_argument when the document is already registered. *)

val set_public : t -> doc:int -> read:bool -> write:bool -> unit
(** @raise Invalid_argument for an unregistered document. *)

val allowed : t -> user:string -> doc:int -> permission -> bool
(** Owner: everything.  Others: the public grants.  Unregistered
    documents are open (benchmark databases don't register). *)

val check : t -> user:string -> doc:int -> permission -> unit
(** @raise Denied when not {!allowed}. *)

val owner_of : t -> doc:int -> string option

val describe : t -> doc:int -> string

type t = int

let none = 0
let is_valid t = t > 0
let to_int t = t

let of_int i =
  if i <= 0 then invalid_arg (Printf.sprintf "Oid.of_int: %d" i);
  i

let to_string = string_of_int
let compare = Int.compare
let equal = Int.equal

open Hyper_util

type t = {
  doc : int;
  oid_base : int;
  leaf_level : int;
  fanout : int;
  node_count : int;
}

(* fanout^level *)
let pow fanout level =
  let rec go acc i = if i = 0 then acc else go (acc * fanout) (i - 1) in
  go 1 level

(* Σ fanout^i for i <= level *)
let cumulative fanout level =
  let rec go acc i =
    if i > level then acc else go (acc + pow fanout i) (i + 1)
  in
  go 0 0

let make ?(fanout = Schema.fanout) ~doc ~oid_base ~leaf_level () =
  if leaf_level < 1 then invalid_arg "Layout.make: leaf_level < 1";
  if fanout < 2 then invalid_arg "Layout.make: fanout < 2";
  { doc; oid_base; leaf_level; fanout; node_count = cumulative fanout leaf_level }

(* Index of a node within the structure: 0 .. node_count-1, BFS order. *)
let index_of t oid =
  let i = oid - t.oid_base - 1 in
  if i < 0 || i >= t.node_count then
    invalid_arg (Printf.sprintf "Layout: oid %d outside structure" oid);
  i

let level_first_index t level = cumulative t.fanout level - pow t.fanout level

let level_of_index t idx =
  let rec search level =
    if level > t.leaf_level then invalid_arg "Layout.level_of_index"
    else if idx < cumulative t.fanout level then level
    else search (level + 1)
  in
  search 0

let level_of_oid t oid = level_of_index t (index_of t oid)

let level_first_oid t level = t.oid_base + 1 + level_first_index t level

let level_node_count t level = pow t.fanout level

let closure_size t ~from_level =
  let rec sum acc i =
    if i > t.leaf_level then acc
    else sum (acc + pow t.fanout (i - from_level)) (i + 1)
  in
  sum 0 from_level

let root t = t.oid_base + 1

let uid_of_oid t oid = index_of t oid + 1

let oid_of_uid t uid =
  if uid < 1 || uid > t.node_count then
    invalid_arg (Printf.sprintf "Layout: uid %d out of range" uid);
  t.oid_base + uid

(* position of the node within its level *)
let rank t oid =
  let idx = index_of t oid in
  let level = level_of_index t idx in
  (level, idx - level_first_index t level)

let parent_of t oid =
  let level, r = rank t oid in
  if level = 0 then None
  else Some (level_first_oid t (level - 1) + (r / t.fanout))

let children_of t oid =
  let level, r = rank t oid in
  if level >= t.leaf_level then [||]
  else
    let first = level_first_oid t (level + 1) + (r * t.fanout) in
    Array.init t.fanout (fun i -> first + i)

let is_leaf t oid = fst (rank t oid) = t.leaf_level

(* Leaf l (0-based within the leaf level) is a form node when
   l mod 125 = 0: one form per 125 leaves. *)
let is_form t oid =
  let level, r = rank t oid in
  level = t.leaf_level && r mod Schema.form_node_ratio = 0

let form_count t =
  let leaves = pow t.fanout t.leaf_level in
  (leaves + Schema.form_node_ratio - 1) / Schema.form_node_ratio

let text_count t = pow t.fanout t.leaf_level - form_count t

let random_node t rng = t.oid_base + 1 + Prng.int rng t.node_count

let random_non_root t rng = t.oid_base + 2 + Prng.int rng (t.node_count - 1)

let random_internal t rng =
  let internal = cumulative t.fanout (t.leaf_level - 1) in
  t.oid_base + 1 + Prng.int rng internal

let random_level t rng level =
  level_first_oid t level + Prng.int rng (pow t.fanout level)

let random_leaf_rank t rng ~form =
  let leaves = pow t.fanout t.leaf_level in
  if form then begin
    let n = form_count t in
    Prng.int rng n * Schema.form_node_ratio
  end
  else begin
    (* Rejection sampling: texts are all leaves except every 125th. *)
    let rec draw () =
      let r = Prng.int rng leaves in
      if r mod Schema.form_node_ratio = 0 then draw () else r
    in
    draw ()
  end

let random_text t rng =
  level_first_oid t t.leaf_level + random_leaf_rank t rng ~form:false

let random_form t rng =
  level_first_oid t t.leaf_level + random_leaf_rank t rng ~form:true

let random_uid t rng = 1 + Prng.int rng t.node_count

let iter_oids t f =
  for oid = t.oid_base + 1 to t.oid_base + t.node_count do
    f oid
  done

(** The HyperModel benchmark operations (paper §6), written once as a
    functor over {!Backend.S}.

    Operation numbering follows the paper: 01 nameLookup … 18
    closureMNATTLINKSUM.  Inputs are chosen by the caller (see
    {!Protocol}) so that input selection never pollutes the timing.
    Operations that the paper specifies as updates perform real updates;
    running them twice restores the database (ops 12, 16, 17 are
    self-inverse). *)

module Make (B : Backend.S) : sig
  (* --- 6.1 Name lookup --- *)

  val name_lookup : B.t -> doc:int -> uid:int -> int option
  (** /*01*/ Value of [hundred] for the node with the given [uniqueId]. *)

  val name_oid_lookup : B.t -> oid:Oid.t -> int
  (** /*02*/ Value of [hundred] for the node with the given object id. *)

  (* --- 6.2 Range lookup --- *)

  val range_lookup_hundred : B.t -> doc:int -> x:int -> Oid.t list
  (** /*03*/ Nodes with [hundred] in [x, x+9] (10% selectivity). *)

  val range_lookup_million : B.t -> doc:int -> x:int -> Oid.t list
  (** /*04*/ Nodes with [million] in [x, x+9999] (1% selectivity). *)

  (* --- 6.3 Group lookup --- *)

  val group_lookup_1n : B.t -> oid:Oid.t -> Oid.t array
  (** /*05A*/ Ordered children of an internal node. *)

  val group_lookup_mn : B.t -> oid:Oid.t -> Oid.t array
  (** /*05B*/ Parts of an internal node. *)

  val group_lookup_mnatt : B.t -> oid:Oid.t -> Oid.t array
  (** /*06*/ The node(s) referenced by the given node (refsTo). *)

  (* --- 6.4 Reference lookup --- *)

  val ref_lookup_1n : B.t -> oid:Oid.t -> Oid.t option
  (** /*07A*/ Parent of a non-root node. *)

  val ref_lookup_mn : B.t -> oid:Oid.t -> Oid.t array
  (** /*07B*/ The node(s) this node is part of. *)

  val ref_lookup_mnatt : B.t -> oid:Oid.t -> Oid.t array
  (** /*08*/ The nodes referencing the given node (refsFrom). *)

  (* --- 6.4.1 Sequential scan --- *)

  val seq_scan : B.t -> doc:int -> int
  (** /*09*/ Access the [ten] attribute of every node of the structure;
      returns the number of nodes visited. *)

  (* --- 6.5 Closure traversals --- *)

  val closure_1n : B.t -> start:Oid.t -> Oid.t list
  (** /*10*/ Pre-order list of nodes reachable through the 1-N
      relationship, stored back into the database. *)

  val closure_mn : B.t -> start:Oid.t -> Oid.t list
  (** /*14*/ Nodes reachable through the M-N parts relationship, in order
      of first visit (shared sub-parts appear once), stored back. *)

  val closure_mnatt : B.t -> start:Oid.t -> depth:int -> Oid.t list
  (** /*15*/ Nodes reachable through refsTo, to the given depth (25 at
      benchmark time), stored back. *)

  (* --- 6.6 Other closure operations --- *)

  val closure_1n_att_sum : B.t -> start:Oid.t -> int
  (** /*11*/ Sum of [hundred] over the 1-N closure. *)

  val closure_1n_att_set : B.t -> start:Oid.t -> int
  (** /*12*/ Set [hundred := 99 - hundred] over the 1-N closure (running
      twice restores the values); returns nodes updated. *)

  val closure_1n_pred : B.t -> start:Oid.t -> x:int -> Oid.t list
  (** /*13*/ 1-N closure that excludes — and stops recursing at — nodes
      with [million] in [x, x+9999]. *)

  val closure_mnatt_link_sum :
    B.t -> start:Oid.t -> depth:int -> (Oid.t * int) list
  (** /*18*/ Nodes reachable through refsTo to [depth], paired with their
      distance from [start] (sum of [offsetTo] along the first-visit
      path). *)

  (* --- 6.7 Editing --- *)

  val text_node_edit : B.t -> oid:Oid.t -> unit
  (** /*16*/ Substitute ["version1"] → ["version-2"] (or back, when the
      text already holds ["version-2"]). *)

  val form_node_edit :
    B.t -> oid:Oid.t -> x:int -> y:int -> w:int -> h:int -> unit
  (** /*17*/ Invert the given sub-rectangle of a form node's bitmap
      (self-inverse). *)
end

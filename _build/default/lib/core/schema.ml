type kind = Internal | Text | Form | Draw

type payload =
  | P_internal
  | P_text of string
  | P_form of Hyper_util.Bitmap.t
  | P_draw

type node_spec = {
  oid : Oid.t;
  doc : int;
  unique_id : int;
  ten : int;
  hundred : int;
  million : int;
  payload : payload;
}

type link = { target : Oid.t; offset_from : int; offset_to : int }

let kind_of_payload = function
  | P_internal -> Internal
  | P_text _ -> Text
  | P_form _ -> Form
  | P_draw -> Draw

let kind_to_string = function
  | Internal -> "internal"
  | Text -> "text"
  | Form -> "form"
  | Draw -> "draw"

let fanout = 5

let nodes_at_level level =
  if level < 0 then invalid_arg "Schema.nodes_at_level: negative level";
  let rec pow acc i = if i = 0 then acc else pow (acc * fanout) (i - 1) in
  pow 1 level

let total_nodes ~leaf_level =
  let rec sum acc i =
    if i > leaf_level then acc else sum (acc + nodes_at_level i) (i + 1)
  in
  sum 0 0

let form_node_ratio = 125

(* A level-3 node's 1-N subtree: itself plus full subtrees down to the
   leaf level. 6 at level 4, 31 at level 5, 156 at level 6 (paper §6.5). *)
let closure_size ~leaf_level =
  let rec sum acc i =
    if i > leaf_level then acc else sum (acc + nodes_at_level (i - 3)) (i + 1)
  in
  sum 0 3

let closure_depth_mnatt = 25

let model_bytes_per_node = 80
let model_bytes_per_text = 380
let model_bytes_per_form = 7800
let model_bytes_per_link = 25

let model_db_bytes ~leaf_level =
  let n = total_nodes ~leaf_level in
  let leaves = nodes_at_level leaf_level in
  let forms = leaves / form_node_ratio in
  let texts = leaves - forms in
  (* Every node pays the base cost; text/form payloads come on top.
     Links: (n-1) 1-N + (n-1) M-N + n M-N-attribute ≈ 3n references. *)
  (n * model_bytes_per_node)
  + (texts * model_bytes_per_text)
  + (forms * model_bytes_per_form)
  + (((2 * (n - 1)) + n) * model_bytes_per_link)

(** Shape of a generated test database.

    The generator assigns OIDs in breadth-first order, so the layout is a
    pure function of [doc], [oid_base] and [leaf_level]; it is what the
    benchmark driver uses to draw random operation inputs (random node,
    random internal node, random level-3 node, …) without touching the
    database — input selection must not count towards operation time.

    Note the layout encodes only the 1-N tree arithmetic; the random M-N
    and reference wiring lives solely in the database. *)

type t = {
  doc : int;
  oid_base : int; (** OIDs are [oid_base + 1 .. oid_base + node_count] *)
  leaf_level : int;
  fanout : int; (** children per internal node (paper default: 5) *)
  node_count : int;
}

val make : ?fanout:int -> doc:int -> oid_base:int -> leaf_level:int -> unit -> t
(** The paper's §5.2 N.B. requires that levels and fanouts be variable;
    [fanout] defaults to the benchmark's 5.
    @raise Invalid_argument when [leaf_level < 1] or [fanout < 2]. *)

val level_of_oid : t -> Oid.t -> int
(** @raise Invalid_argument for an OID outside the structure. *)

val level_first_oid : t -> int -> Oid.t
val level_node_count : t -> int -> int

val root : t -> Oid.t
val uid_of_oid : t -> Oid.t -> int
val oid_of_uid : t -> int -> Oid.t

val parent_of : t -> Oid.t -> Oid.t option
(** Structural parent in the 1-N tree (root has none). *)

val children_of : t -> Oid.t -> Oid.t array
(** Structural children ([||] at the leaf level). *)

val is_leaf : t -> Oid.t -> bool

val closure_size : t -> from_level:int -> int
(** Nodes in a full 1-N closure from a node at [from_level] (paper §6.5:
    6 / 31 / 156 from level 3 at fanout 5). *)

val is_form : t -> Oid.t -> bool
(** Every {!Schema.form_node_ratio}-th leaf is a form node. *)

val text_count : t -> int
val form_count : t -> int

(** {2 Random input selection (uniform, from a caller-supplied PRNG)} *)

val random_node : t -> Hyper_util.Prng.t -> Oid.t
val random_non_root : t -> Hyper_util.Prng.t -> Oid.t
val random_internal : t -> Hyper_util.Prng.t -> Oid.t
val random_level : t -> Hyper_util.Prng.t -> int -> Oid.t
val random_text : t -> Hyper_util.Prng.t -> Oid.t
val random_form : t -> Hyper_util.Prng.t -> Oid.t
val random_uid : t -> Hyper_util.Prng.t -> int

val iter_oids : t -> (Oid.t -> unit) -> unit

module Ast = Hyper_query.Ast
module Engine = Hyper_query.Engine

let ast_kind_of = function
  | Schema.Internal -> Ast.Internal
  | Schema.Text -> Ast.Text
  | Schema.Form -> Ast.Form
  | Schema.Draw -> Ast.Draw

let source (type b) (module B : Backend.S with type t = b) (b : b) ~doc =
  let row oid =
    { Ast.oid; unique_id = B.unique_id b oid; ten = B.ten b oid;
      hundred = B.hundred b oid; million = B.million b oid;
      kind = ast_kind_of (B.kind b oid) }
  in
  let scan f = B.iter_doc b ~doc (fun oid -> f (row oid)) in
  let index_range attr ~lo ~hi f =
    let feed oids =
      List.iter (fun oid -> f (row oid)) oids;
      true
    in
    match attr with
    | Ast.Unique_id -> feed (B.range_unique b ~doc ~lo ~hi)
    | Ast.Hundred -> feed (B.range_hundred b ~doc ~lo ~hi)
    | Ast.Million -> feed (B.range_million b ~doc ~lo ~hi)
    | Ast.Ten -> false
  in
  { Engine.scan; index_range }

let query (type b) (module B : Backend.S with type t = b) (b : b) ~doc q =
  Engine.run_string (source (module B) b ~doc) q

let explain (type b) (module B : Backend.S with type t = b) (b : b) ~doc q =
  Engine.explain (source (module B) b ~doc) q

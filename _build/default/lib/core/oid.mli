(** Object identifiers.

    OIDs are dense positive integers assigned by the generator in
    breadth-first order (the root of a structure gets the first id).  In
    the disk backend they index the object table; in the relational
    backend they are the primary key — the two representations the paper
    anticipates (§6.1). *)

type t = int

val none : t
(** Sentinel (0) — never a valid object. *)

val is_valid : t -> bool
val to_int : t -> int
val of_int : int -> t
(** @raise Invalid_argument on non-positive input. *)

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

open Hyper_util

let creation_table ~title rows =
  let t =
    Table.create ~title
      [ ("backend", Table.Left); ("level", Table.Right); ("phase", Table.Left);
        ("items", Table.Right); ("ms/item", Table.Right);
        ("total ms", Table.Right) ]
  in
  List.iter
    (fun (backend, level, timings) ->
      List.iter
        (fun p ->
          Table.add_row t
            [ backend; string_of_int level; p.Generator.label;
              string_of_int p.Generator.items;
              Table.fms (Generator.ms_per_item p);
              Table.fms p.Generator.ms_total ])
        timings.Generator.phases;
      Table.add_separator t)
    rows;
  Table.render t

let operation_table ~title ~levels per_level =
  let columns =
    ("operation", Table.Left)
    :: List.concat_map
         (fun level ->
           [ (Printf.sprintf "L%d cold" level, Table.Right);
             (Printf.sprintf "L%d warm" level, Table.Right) ])
         levels
  in
  let t = Table.create ~title columns in
  let ops =
    match per_level with
    | (_, ms) :: _ -> List.map (fun m -> m.Protocol.op) ms
    | [] -> []
  in
  List.iter
    (fun op ->
      let cells =
        List.concat_map
          (fun level ->
            match List.assoc_opt level per_level with
            | None -> [ "-"; "-" ]
            | Some ms -> (
              match List.find_opt (fun m -> m.Protocol.op = op) ms with
              | None -> [ "-"; "-" ]
              | Some m ->
                [ Table.fms (Protocol.cold_ms_per_node m);
                  Table.fms (Protocol.warm_ms_per_node m) ]))
          levels
      in
      Table.add_row t (op :: cells))
    ops;
  Table.render t

let comparison_table ~title ~backends rows =
  let columns =
    ("operation", Table.Left)
    :: List.concat_map
         (fun b ->
           [ (b ^ " cold", Table.Right); (b ^ " warm", Table.Right) ])
         backends
  in
  let t = Table.create ~title columns in
  List.iter
    (fun (op, per_backend) ->
      let cells =
        List.concat_map
          (fun b ->
            match List.assoc_opt b per_backend with
            | None -> [ "-"; "-" ]
            | Some m ->
              [ Table.fms (Protocol.cold_ms_per_node m);
                Table.fms (Protocol.warm_ms_per_node m) ])
          backends
      in
      Table.add_row t (op :: cells))
    rows;
  Table.render t

let size_table ~title rows =
  let t =
    Table.create ~title
      [ ("leaf level", Table.Right); ("nodes", Table.Right);
        ("paper model MB", Table.Right); ("measured MB", Table.Right);
        ("ratio", Table.Right) ]
  in
  List.iter
    (fun (level, modelled, measured) ->
      let mb b = float_of_int b /. 1e6 in
      Table.add_row t
        [ string_of_int level;
          string_of_int (Schema.total_nodes ~leaf_level:level);
          Printf.sprintf "%.2f" (mb modelled);
          Printf.sprintf "%.2f" (mb measured);
          Printf.sprintf "%.2f" (mb measured /. mb modelled) ])
    rows;
  Table.render t

(** Test-database generation (paper §5.2) with creation timing (§5.3).

    Builds one HyperModel structure of the requested size into any
    backend, in five timed phases, each ending in a commit:

    + internal nodes (levels 0 .. leaf−1),
    + leaf nodes (text and form),
    + 1-N parent/children relationships (ordered),
    + M-N parts relationships (5 random next-level nodes per non-leaf),
    + M-N attribute references (one per node, random target, offsets
      0..9).

    All randomness derives from [seed]; the same seed produces the same
    database on every backend. *)

type phase = {
  label : string;
  items : int;           (** nodes or relationships created *)
  ms_total : float;      (** wall + simulated, commit included *)
}

type timings = { phases : phase list }

val ms_per_item : phase -> float

module Make (B : Backend.S) : sig
  val generate :
    ?cluster:bool ->
    ?oid_base:int ->
    ?fanout:int ->
    B.t ->
    doc:int ->
    leaf_level:int ->
    seed:int64 ->
    Layout.t * timings
  (** [cluster] (default true): create nodes in depth-first order with
      the 1-N parent as placement hint, enabling physical clustering
      along the aggregation hierarchy.  With [cluster:false] nodes are
      created in shuffled order with no hint — the ablation of §5.2. *)
end

(** The HyperModel conceptual schema (paper §5.1, Figure 1) and the
    generator arithmetic (§5.2).

    Nodes carry four integer attributes — [uniqueId] (dense, 1..N within
    a structure), [ten], [hundred], [million] (uniform in [1,10],
    [1,100], [1,1000000]) — and specialise into TextNode (10–100 random
    words) or FormNode (a white bitmap, 100–400 pixels a side).  DrawNode
    exists for the R4 schema-modification extension.

    Three relationship types connect nodes:
    - [parent/children]: 1-N aggregation, *ordered* (a sequence of
      sections);
    - [partOf/parts]: M-N aggregation with shared sub-parts;
    - [refFrom/refTo]: M-N association with [offsetFrom]/[offsetTo]
      attributes in 0..9 (a directed weighted graph). *)

type kind = Internal | Text | Form | Draw

(** Typed payload of a node at creation time. *)
type payload =
  | P_internal
  | P_text of string
  | P_form of Hyper_util.Bitmap.t
  | P_draw

(** Everything needed to create one node. *)
type node_spec = {
  oid : Oid.t;
  doc : int; (** owning structure (test-database) id *)
  unique_id : int;
  ten : int;
  hundred : int;
  million : int;
  payload : payload;
}

(** One association link with its attributes. *)
type link = { target : Oid.t; offset_from : int; offset_to : int }

val kind_of_payload : payload -> kind
val kind_to_string : kind -> string

(** {2 Generator arithmetic} *)

val fanout : int
(** 5 — children per internal node, parts per non-leaf node. *)

val nodes_at_level : int -> int
(** [5^level]. *)

val total_nodes : leaf_level:int -> int
(** Σ 5^i for i ≤ leaf_level: 781 (4), 3 906 (5), 19 531 (6). *)

val form_node_ratio : int
(** One form node per 125 text nodes at the leaf level. *)

val closure_size : leaf_level:int -> int
(** Nodes in a full 1-N closure from a level-3 node: 6 / 31 / 156. *)

val closure_depth_mnatt : int
(** Run-time depth for M-N-attribute closures (25, §6.5). *)

(** {2 The paper's §5.2 size model (for experiment T1)} *)

val model_bytes_per_node : int (* 80 *)
val model_bytes_per_text : int (* 380 *)
val model_bytes_per_form : int (* 7800 *)
val model_bytes_per_link : int (* 25 *)

val model_db_bytes : leaf_level:int -> int
(** Estimated database size per the paper's arithmetic (≈8 MB at level 6). *)

lib/core/layout.mli: Hyper_util Oid

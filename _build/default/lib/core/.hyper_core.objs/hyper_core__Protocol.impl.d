lib/core/protocol.ml: Array Backend Hashtbl Hyper_util Int64 Layout List Ops Printf Prng Vclock

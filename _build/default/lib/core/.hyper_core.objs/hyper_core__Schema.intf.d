lib/core/schema.mli: Hyper_util Oid

lib/core/protocol.mli: Backend Layout

lib/core/query_bridge.ml: Backend Hyper_query List Schema

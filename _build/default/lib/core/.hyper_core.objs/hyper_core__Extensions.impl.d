lib/core/extensions.ml: Access Array Backend Hyper_txn Layout List Ops Schema

lib/core/layout.ml: Array Hyper_util Printf Prng Schema

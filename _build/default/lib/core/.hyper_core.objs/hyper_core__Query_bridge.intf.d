lib/core/query_bridge.mli: Backend Hyper_query

lib/core/access.mli:

lib/core/generator.ml: Array Backend Bitmap Hashtbl Hyper_util Layout List Prng Schema Text_gen Vclock

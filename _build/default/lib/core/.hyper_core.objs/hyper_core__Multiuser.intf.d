lib/core/multiuser.mli: Backend Layout

lib/core/schema.ml: Hyper_util Oid

lib/core/verify.ml: Array Backend Hyper_util Layout List Printexc Printf Schema String

lib/core/multiuser.ml: Array Backend Fun Hashtbl Hyper_txn Hyper_util Int64 Layout List Mutex Prng Schema Thread Unix

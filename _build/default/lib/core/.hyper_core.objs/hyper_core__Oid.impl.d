lib/core/oid.ml: Int Printf

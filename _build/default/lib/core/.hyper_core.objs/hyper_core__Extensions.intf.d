lib/core/extensions.mli: Access Backend Layout Oid

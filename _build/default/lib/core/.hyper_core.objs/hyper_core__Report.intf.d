lib/core/report.mli: Generator Protocol

lib/core/ops.ml: Array Backend Hashtbl Hyper_util List Option Schema

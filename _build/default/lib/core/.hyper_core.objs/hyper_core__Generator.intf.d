lib/core/generator.mli: Backend Layout

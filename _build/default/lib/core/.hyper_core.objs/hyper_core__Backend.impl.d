lib/core/backend.ml: Hyper_util Oid Schema

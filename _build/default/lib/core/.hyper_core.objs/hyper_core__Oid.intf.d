lib/core/oid.mli:

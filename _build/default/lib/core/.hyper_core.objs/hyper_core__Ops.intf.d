lib/core/ops.mli: Backend Oid

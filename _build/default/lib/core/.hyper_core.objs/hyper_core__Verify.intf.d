lib/core/verify.mli: Backend Layout

lib/core/report.ml: Generator Hyper_util List Printf Protocol Schema Table

lib/core/access.ml: Hashtbl Option Printf

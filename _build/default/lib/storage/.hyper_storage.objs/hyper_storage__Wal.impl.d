lib/storage/wal.ml: Bytes Char List Page Printf Stdlib Sys Unix

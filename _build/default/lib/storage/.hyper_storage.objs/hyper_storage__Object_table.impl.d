lib/storage/object_table.ml: Array Buffer_pool Bytes Freelist Int64 List Page Printf

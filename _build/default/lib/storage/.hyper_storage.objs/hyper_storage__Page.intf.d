lib/storage/page.mli:

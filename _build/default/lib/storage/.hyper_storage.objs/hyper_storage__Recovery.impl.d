lib/storage/recovery.ml: Hashtbl List Pager Wal

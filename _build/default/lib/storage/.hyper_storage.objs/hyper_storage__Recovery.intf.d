lib/storage/recovery.mli: Pager

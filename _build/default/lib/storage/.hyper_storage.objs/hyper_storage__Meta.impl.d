lib/storage/meta.ml: Buffer_pool Bytes List Page Pager Printf String

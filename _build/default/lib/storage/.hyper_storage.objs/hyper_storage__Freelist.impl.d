lib/storage/freelist.ml: Buffer_pool Bytes Page

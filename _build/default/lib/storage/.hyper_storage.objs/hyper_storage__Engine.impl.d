lib/storage/engine.ml: Buffer_pool Hashtbl List Pager Recovery Wal

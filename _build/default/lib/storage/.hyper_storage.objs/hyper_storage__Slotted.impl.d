lib/storage/slotted.ml: Bytes List Page Printf Stdlib

lib/storage/heap.mli: Buffer_pool Freelist

lib/storage/object_table.mli: Buffer_pool Freelist Heap

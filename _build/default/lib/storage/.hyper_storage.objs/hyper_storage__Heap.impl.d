lib/storage/heap.ml: Buffer_pool Bytes Char Freelist List Option Page Printf Slotted Stdlib

lib/storage/freelist.mli: Buffer_pool

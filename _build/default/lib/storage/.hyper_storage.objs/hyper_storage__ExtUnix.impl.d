lib/storage/extUnix.ml: Unix

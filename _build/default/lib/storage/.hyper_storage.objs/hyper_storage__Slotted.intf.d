lib/storage/slotted.mli:

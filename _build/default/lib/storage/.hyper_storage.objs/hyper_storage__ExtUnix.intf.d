lib/storage/extUnix.mli: Unix

lib/storage/meta.mli: Buffer_pool

lib/storage/pager.ml: Array Bytes ExtUnix Page Printf Unix

lib/storage/pager.mli:

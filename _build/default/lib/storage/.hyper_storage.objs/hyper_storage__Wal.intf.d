lib/storage/wal.mli:

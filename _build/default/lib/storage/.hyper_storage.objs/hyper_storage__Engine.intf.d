lib/storage/engine.mli: Buffer_pool Pager Recovery

(** File-backed page store.

    One pager owns one database file addressed as an array of
    {!Page.size}-byte pages.  All physical I/O in a backend flows through
    here, which gives a single point for

    - counting reads and writes (the benchmark's I/O statistics), and
    - simulating slower media or a remote page server: the [on_read] /
      [on_write] hooks fire once per physical page transfer, and typically
      advance {!Hyper_util.Vclock} by a modelled latency. *)

type t

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

val create : path:string -> t
(** Open (or create) the file at [path]. *)

val in_memory : unit -> t
(** A pager backed by an expandable in-RAM array instead of a file —
    used in tests and by backends running in "diskless" mode.  Hooks and
    statistics behave identically. *)

val page_count : t -> int

val allocate : t -> int
(** Extend the store by one zeroed page and return its id. *)

val read : t -> int -> bytes
(** A fresh copy of the page contents.
    @raise Invalid_argument for an id that was never allocated. *)

val write : t -> int -> bytes -> unit
(** @raise Invalid_argument on an unallocated id or wrong buffer size. *)

val sync : t -> unit
(** Flush to stable storage (no-op for in-memory pagers). *)

val close : t -> unit

val set_hooks :
  t -> on_read:(int -> unit) -> on_write:(int -> unit) -> unit
(** Install I/O hooks.  Each receives the page id. *)

val clear_hooks : t -> unit
val stats : t -> stats
val reset_stats : t -> unit

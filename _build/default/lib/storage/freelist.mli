(** Persistent free-page list.

    Freed pages (e.g. overflow chains released by a record update) are
    linked through their bytes 4..7 and tagged {!Page.Free}; the head page
    id lives with the owner's metadata.  Popping reuses pages instead of
    growing the file. *)

type t

val attach : Buffer_pool.t -> head:int -> t
(** [head = 0] means the list is empty (page 0 is always the meta page, so
    0 is a safe sentinel). *)

val head : t -> int
(** Current head for persisting; call at checkpoint/close. *)

val push : t -> int -> unit
val pop : t -> int option

val alloc : t -> int
(** Pop a recycled page or allocate a fresh one from the pool. *)

val length : t -> int
(** Number of pages currently in the list (walks the chain). *)

val iter : t -> (int -> unit) -> unit
(** Visit every free page id (garbage-collection marking: free pages are
    accounted for, not garbage). *)

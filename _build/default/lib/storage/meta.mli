(** The master page (page 0): a tiny persistent string → int64 map.

    Backends keep their root pointers here — heap heads, B+tree roots, the
    object-table directory, the free-list head, and scalar counters.  The
    map must fit in one page. *)

val magic : string

val format : Buffer_pool.t -> unit
(** Initialise page 0 of a brand-new store (page 0 must already be
    allocated). *)

val is_formatted : Buffer_pool.t -> bool

val load : Buffer_pool.t -> (string * int64) list
(** @raise Invalid_argument when page 0 has no valid meta signature. *)

val store : Buffer_pool.t -> (string * int64) list -> unit
(** Replace the whole map.  @raise Invalid_argument when it does not fit
    in one page or a key is longer than 255 bytes. *)

val get : Buffer_pool.t -> string -> int64 option
val get_exn : Buffer_pool.t -> string -> int64
val set : Buffer_pool.t -> string -> int64 -> unit
(** Read-modify-write of a single key. *)

type t = { pool : Buffer_pool.t; mutable head : int }

let next_offset = 4

let attach pool ~head = { pool; head }

let head t = t.head

let push t page_id =
  let old_head = t.head in
  Buffer_pool.with_page_w t.pool page_id (fun page ->
      Bytes.fill page 0 Page.size '\000';
      Page.set_type page Page.Free;
      Page.set_u32 page next_offset old_head);
  t.head <- page_id

let pop t =
  if t.head = 0 then None
  else begin
    let page_id = t.head in
    let next =
      Buffer_pool.with_page t.pool page_id (fun page ->
          Page.get_u32 page next_offset)
    in
    t.head <- next;
    Some page_id
  end

let alloc t =
  match pop t with
  | Some id -> id
  | None -> Buffer_pool.allocate t.pool

let iter t f =
  let rec walk id =
    if id <> 0 then begin
      f id;
      let next =
        Buffer_pool.with_page t.pool id (fun page -> Page.get_u32 page next_offset)
      in
      walk next
    end
  in
  walk t.head

let length t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

(** Positioned I/O helpers (pread/pwrite built from [lseek] + [read]).

    Isolated here so the pager stays readable; single-threaded use only
    (the seek/read pair is not atomic). *)

val pread : Unix.file_descr -> bytes -> int -> int -> int -> int
(** [pread fd buf file_off buf_off len] reads at an absolute file offset;
    returns the number of bytes read (0 at end of file). *)

val pwrite : Unix.file_descr -> bytes -> int -> int -> int -> int
(** [pwrite fd buf file_off buf_off len] writes at an absolute file
    offset; returns the number of bytes written. *)

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type backing =
  | File of Unix.file_descr
  | Memory of bytes array ref

type t = {
  backing : backing;
  mutable count : int;
  mutable on_read : int -> unit;
  mutable on_write : int -> unit;
  stats : stats;
  mutable closed : bool;
}

let no_hook (_ : int) = ()

let fresh_stats () = { reads = 0; writes = 0; allocs = 0 }

let create ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let len = (Unix.fstat fd).Unix.st_size in
  if len mod Page.size <> 0 then begin
    Unix.close fd;
    invalid_arg (Printf.sprintf "Pager.create: %s is not page-aligned" path)
  end;
  { backing = File fd; count = len / Page.size; on_read = no_hook;
    on_write = no_hook; stats = fresh_stats (); closed = false }

let in_memory () =
  { backing = Memory (ref [||]); count = 0; on_read = no_hook;
    on_write = no_hook; stats = fresh_stats (); closed = false }

let check_open t = if t.closed then invalid_arg "Pager: store is closed"

let check_id t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Pager: page %d out of range (count %d)" id t.count)

let page_count t = t.count

let pread fd buf off =
  let rec loop pos =
    if pos < Page.size then begin
      let n =
        ExtUnix.pread fd buf (off + pos) pos (Page.size - pos)
      in
      if n = 0 then
        (* Hole past EOF within an allocated region: treat as zeroes. *)
        Bytes.fill buf pos (Page.size - pos) '\000'
      else loop (pos + n)
    end
  in
  loop 0

and pwrite fd buf off =
  let rec loop pos =
    if pos < Page.size then begin
      let n = ExtUnix.pwrite fd buf (off + pos) pos (Page.size - pos) in
      loop (pos + n)
    end
  in
  loop 0

let allocate t =
  check_open t;
  let id = t.count in
  t.count <- t.count + 1;
  t.stats.allocs <- t.stats.allocs + 1;
  (match t.backing with
  | File fd -> pwrite fd (Page.alloc ()) (id * Page.size)
  | Memory arr ->
    let grown = Array.make (id + 1) Bytes.empty in
    Array.blit !arr 0 grown 0 id;
    grown.(id) <- Page.alloc ();
    arr := grown);
  id

let read t id =
  check_open t;
  check_id t id;
  t.stats.reads <- t.stats.reads + 1;
  t.on_read id;
  match t.backing with
  | File fd ->
    let buf = Bytes.create Page.size in
    pread fd buf (id * Page.size);
    buf
  | Memory arr -> Bytes.copy !arr.(id)

let write t id data =
  check_open t;
  check_id t id;
  if Bytes.length data <> Page.size then
    invalid_arg "Pager.write: buffer is not one page";
  t.stats.writes <- t.stats.writes + 1;
  t.on_write id;
  match t.backing with
  | File fd -> pwrite fd data (id * Page.size)
  | Memory arr -> !arr.(id) <- Bytes.copy data

let sync t =
  check_open t;
  match t.backing with File fd -> Unix.fsync fd | Memory _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backing with File fd -> Unix.close fd | Memory _ -> ()
  end

let set_hooks t ~on_read ~on_write =
  t.on_read <- on_read;
  t.on_write <- on_write

let clear_hooks t =
  t.on_read <- no_hook;
  t.on_write <- no_hook

let stats t = t.stats

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.allocs <- 0

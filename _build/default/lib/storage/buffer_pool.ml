type stats = { mutable hits : int; mutable misses : int; mutable evictions : int }

type frame = {
  page_id : int;
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable tick : int; (* last-use stamp for LRU *)
}

type t = {
  pager : Pager.t;
  cap : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable on_first_dirty : int -> bytes -> unit;
  mutable on_evict_dirty : int -> bytes -> unit;
  (* pages already reported to [on_first_dirty] since the last
     [take_dirty_set] *)
  first_dirty_seen : (int, unit) Hashtbl.t;
  stats : stats;
}

let no_hook (_ : int) (_ : bytes) = ()

let create pager ~capacity =
  if capacity < 4 then invalid_arg "Buffer_pool.create: capacity < 4";
  { pager; cap = capacity; frames = Hashtbl.create (2 * capacity); clock = 0;
    on_first_dirty = no_hook; on_evict_dirty = no_hook;
    first_dirty_seen = Hashtbl.create 64;
    stats = { hits = 0; misses = 0; evictions = 0 } }

let capacity t = t.cap
let pager t = t.pager

let touch t f =
  t.clock <- t.clock + 1;
  f.tick <- t.clock

let write_back t f =
  if f.dirty then begin
    Pager.write t.pager f.page_id f.data;
    f.dirty <- false
  end

(* Evict the least-recently-used unpinned frame.  Dirty victims are
   announced through [on_evict_dirty] (WAL rule) and then written back. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ f best ->
        if f.pins > 0 then best
        else
          match best with
          | Some b when b.tick <= f.tick -> best
          | _ -> Some f)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned, cannot evict"
  | Some f ->
    if f.dirty then t.on_evict_dirty f.page_id f.data;
    write_back t f;
    Hashtbl.remove t.frames f.page_id;
    t.stats.evictions <- t.stats.evictions + 1

let ensure_room t =
  while Hashtbl.length t.frames >= t.cap do
    evict_one t
  done

let load t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
    t.stats.hits <- t.stats.hits + 1;
    touch t f;
    f
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    ensure_room t;
    let f =
      { page_id; data = Pager.read t.pager page_id; dirty = false; pins = 0;
        tick = 0 }
    in
    touch t f;
    Hashtbl.add t.frames page_id f;
    f

let with_pinned t page_id k =
  let f = load t page_id in
  f.pins <- f.pins + 1;
  Fun.protect ~finally:(fun () -> f.pins <- f.pins - 1) (fun () -> k f)

let with_page t page_id k = with_pinned t page_id (fun f -> k f.data)

(* The before-image is the frame content prior to the first write in the
   current txn window — snapshot it before the caller mutates the page. *)
let mark_dirty t f =
  if not (Hashtbl.mem t.first_dirty_seen f.page_id) then begin
    Hashtbl.add t.first_dirty_seen f.page_id ();
    t.on_first_dirty f.page_id (Bytes.copy f.data)
  end;
  f.dirty <- true

let with_page_w t page_id k =
  with_pinned t page_id (fun f ->
      mark_dirty t f;
      k f.data)

let allocate t =
  let page_id = Pager.allocate t.pager in
  ensure_room t;
  let f =
    { page_id; data = Page.alloc (); dirty = true; pins = 0; tick = 0 }
  in
  touch t f;
  Hashtbl.add t.frames page_id f;
  if not (Hashtbl.mem t.first_dirty_seen page_id) then begin
    Hashtbl.add t.first_dirty_seen page_id ();
    t.on_first_dirty page_id (Page.alloc ())
  end;
  page_id

let flush_all t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let drop_all t =
  Hashtbl.iter
    (fun _ f ->
      if f.pins > 0 then invalid_arg "Buffer_pool.drop_all: page still pinned")
    t.frames;
  flush_all t;
  Hashtbl.reset t.frames;
  Hashtbl.reset t.first_dirty_seen

let discard_dirty t =
  let dirty_ids =
    Hashtbl.fold (fun id f acc -> if f.dirty then id :: acc else acc) t.frames []
  in
  List.iter (fun id -> Hashtbl.remove t.frames id) dirty_ids;
  Hashtbl.reset t.first_dirty_seen

let invalidate t page_id = Hashtbl.remove t.frames page_id

let set_txn_hooks t ~on_first_dirty ~on_evict_dirty =
  t.on_first_dirty <- on_first_dirty;
  t.on_evict_dirty <- on_evict_dirty

let clear_txn_hooks t =
  t.on_first_dirty <- no_hook;
  t.on_evict_dirty <- no_hook

let take_dirty_set t =
  let dirty =
    Hashtbl.fold
      (fun id f acc -> if f.dirty then (id, Bytes.copy f.data) :: acc else acc)
      t.frames []
  in
  Hashtbl.reset t.first_dirty_seen;
  List.sort (fun (a, _) (b, _) -> compare a b) dirty

let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0

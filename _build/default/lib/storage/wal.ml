type entry =
  | Begin of int
  | Before of int * int * bytes
  | After of int * int * bytes
  | Commit of int
  | Checkpoint

type t = { path : string; mutable oc : out_channel }

let entry_magic = 0xA7

let kind_of = function
  | Begin _ -> 1
  | Before _ -> 2
  | After _ -> 3
  | Commit _ -> 4
  | Checkpoint -> 5

(* Cheap rolling checksum — only needs to catch torn/garbled tails. *)
let checksum b =
  let h = ref 5381 in
  Bytes.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land 0x3FFFFFFF) b;
  !h

let open_ ~path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { path; oc }

let payload_of = function
  | Begin _ | Commit _ | Checkpoint -> Bytes.empty
  | Before (_, _, img) | After (_, _, img) -> img

let ids_of = function
  | Begin t -> (t, 0)
  | Commit t -> (t, 0)
  | Checkpoint -> (0, 0)
  | Before (t, p, _) -> (t, p)
  | After (t, p, _) -> (t, p)

let append t e =
  let payload = payload_of e in
  let txn, page = ids_of e in
  let header = Bytes.create 14 in
  Page.set_u8 header 0 entry_magic;
  Page.set_u8 header 1 (kind_of e);
  Page.set_u32 header 2 txn;
  Page.set_u32 header 6 page;
  Page.set_u32 header 10 (Bytes.length payload);
  output_bytes t.oc header;
  output_bytes t.oc payload;
  let crc = Bytes.create 4 in
  Page.set_u32 crc 0 (checksum payload lxor checksum header);
  output_bytes t.oc crc

let flush t = Stdlib.flush t.oc

let sync t =
  flush t;
  let fd = Unix.descr_of_out_channel t.oc in
  Unix.fsync fd

let truncate t =
  close_out t.oc;
  t.oc <- open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 t.path

let size_bytes t =
  flush t;
  (Unix.stat t.path).Unix.st_size

let close t = close_out t.oc

let read_all ~path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let entries = ref [] in
    let ok = ref true in
    (try
       while !ok && pos_in ic + 18 <= len do
         let header = Bytes.create 14 in
         really_input ic header 0 14;
         if Page.get_u8 header 0 <> entry_magic then ok := false
         else begin
           let kind = Page.get_u8 header 1 in
           let txn = Page.get_u32 header 2 in
           let page = Page.get_u32 header 6 in
           let plen = Page.get_u32 header 10 in
           if pos_in ic + plen + 4 > len then ok := false
           else begin
             let payload = Bytes.create plen in
             really_input ic payload 0 plen;
             let crc = Bytes.create 4 in
             really_input ic crc 0 4;
             if Page.get_u32 crc 0 <> (checksum payload lxor checksum header)
             then ok := false
             else
               let entry =
                 match kind with
                 | 1 -> Some (Begin txn)
                 | 2 -> Some (Before (txn, page, payload))
                 | 3 -> Some (After (txn, page, payload))
                 | 4 -> Some (Commit txn)
                 | 5 -> Some Checkpoint
                 | _ -> None
               in
               match entry with
               | Some e -> entries := e :: !entries
               | None -> ok := false
           end
         end
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let entry_to_string = function
  | Begin t -> Printf.sprintf "begin(%d)" t
  | Before (t, p, _) -> Printf.sprintf "before(%d, page %d)" t p
  | After (t, p, _) -> Printf.sprintf "after(%d, page %d)" t p
  | Commit t -> Printf.sprintf "commit(%d)" t
  | Checkpoint -> "checkpoint"

let pread fd buf file_off buf_off len =
  ignore (Unix.lseek fd file_off Unix.SEEK_SET);
  Unix.read fd buf buf_off len

let pwrite fd buf file_off buf_off len =
  ignore (Unix.lseek fd file_off Unix.SEEK_SET);
  Unix.write fd buf buf_off len

(** Object table: stable object identifiers over relocatable records.

    Maps dense OIDs (1, 2, 3, …) to heap {!Heap.rid}s through a chain of
    directory pages.  This is the indirection that lets an object-oriented
    database hand out immutable object ids while records move between
    pages as they grow — exactly the structure the paper assumes for
    [nameOIDLookup] (op 02).

    Directory pages hold 510 entries each; the chain grows on demand.  An
    in-memory copy of the chain's page ids gives O(1) access; it is
    rebuilt on [attach]. *)

type t

val fresh : Buffer_pool.t -> Freelist.t -> t
val attach : Buffer_pool.t -> Freelist.t -> head:int -> t
val head : t -> int

val set : t -> oid:int -> rid:Heap.rid -> unit
(** @raise Invalid_argument when [oid < 1]. *)

val get : t -> oid:int -> Heap.rid option
val get_exn : t -> oid:int -> Heap.rid
val remove : t -> oid:int -> unit
val capacity : t -> int
(** Highest OID currently addressable without growing. *)

val iter_pages : t -> (int -> unit) -> unit
(** Visit every directory page (garbage-collection marking). *)

type t = {
  pool : Buffer_pool.t;
  freelist : Freelist.t;
  mutable pages : int array; (* chain in order; pages.(0) is the head *)
}

let header = 16
let entries_per_page = (Page.size - header) / 8 (* 510 *)

let init_page pool id =
  Buffer_pool.with_page_w pool id (fun page ->
      Bytes.fill page 0 Page.size '\000';
      Page.set_type page Page.Obj_table)

let fresh pool freelist =
  let id = Freelist.alloc freelist in
  init_page pool id;
  { pool; freelist; pages = [| id |] }

let attach pool freelist ~head =
  let rec walk id acc =
    if id = 0 then List.rev acc
    else
      let next =
        Buffer_pool.with_page pool id (fun page -> Page.get_u32 page 4)
      in
      walk next (id :: acc)
  in
  { pool; freelist; pages = Array.of_list (walk head []) }

let head t = t.pages.(0)

let capacity t = Array.length t.pages * entries_per_page

let grow t =
  let id = Freelist.alloc t.freelist in
  init_page t.pool id;
  let last = t.pages.(Array.length t.pages - 1) in
  Buffer_pool.with_page_w t.pool last (fun page -> Page.set_u32 page 4 id);
  t.pages <- Array.append t.pages [| id |]

let locate _t oid =
  if oid < 1 then invalid_arg "Object_table: oid must be >= 1";
  let idx = oid - 1 in
  (idx / entries_per_page, header + (idx mod entries_per_page * 8))

(* Entries store rid + 1 so that an all-zero page reads as "absent". *)
let set t ~oid ~rid =
  let chunk, offset = locate t oid in
  while chunk >= Array.length t.pages do
    grow t
  done;
  Buffer_pool.with_page_w t.pool t.pages.(chunk) (fun page ->
      Page.set_i64 page offset (Int64.of_int (rid + 1)))

let get t ~oid =
  let chunk, offset = locate t oid in
  if chunk >= Array.length t.pages then None
  else
    let v =
      Buffer_pool.with_page t.pool t.pages.(chunk) (fun page ->
          Page.get_i64 page offset)
    in
    if v = 0L then None else Some (Int64.to_int v - 1)

let get_exn t ~oid =
  match get t ~oid with
  | Some rid -> rid
  | None -> invalid_arg (Printf.sprintf "Object_table: unknown oid %d" oid)

let remove t ~oid =
  let chunk, offset = locate t oid in
  if chunk < Array.length t.pages then
    Buffer_pool.with_page_w t.pool t.pages.(chunk) (fun page ->
        Page.set_i64 page offset 0L)

let iter_pages t f = Array.iter f t.pages

lib/memdb/memdb.ml: Array Backend_intf Hashtbl Hyper_util Int List Map Oid Option Printf Schema Seq

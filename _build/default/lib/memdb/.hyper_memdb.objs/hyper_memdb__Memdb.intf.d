lib/memdb/memdb.mli: Backend_intf Oid

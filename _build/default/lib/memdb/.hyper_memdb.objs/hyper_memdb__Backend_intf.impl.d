lib/memdb/backend_intf.ml: Hyper_core

(** In-memory object database — the Smalltalk-80 analogue.

    The whole object graph lives in the process heap; relationships are
    direct references (hash-table indirection on OID), so there is no
    meaningful cold/warm distinction — which is precisely the behaviour
    the paper observed for the in-memory system it measured.

    Transactions are provided by an undo log: every mutation inside
    [begin_txn] records an inverse thunk, [abort] replays them.  The
    uniqueId, hundred and million attributes are indexed (hash table,
    bucket array and balanced map respectively). *)

open Backend_intf

include Backend_intf.S

val create : unit -> t

val stored_result_count : t -> int
(** Number of closure result lists persisted via [store_result_list]. *)

val stored_result : t -> int -> Oid.t list
(** [stored_result t i] is the [i]-th stored list (0-based). *)

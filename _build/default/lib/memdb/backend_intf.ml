(* Re-export the backend signature and core types under short names so
   that backend .mli files can say [include Backend_intf.S]. *)

module Oid = Hyper_core.Oid
module Schema = Hyper_core.Schema

module type S = Hyper_core.Backend.S

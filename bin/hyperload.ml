(* hyperload — multi-client load generator for the socket server.

   Drives N simulated users against a hypermodel server (self-served
   in-process, or a remote address via --connect) and reports
   throughput and per-request latency percentiles per client count.

   Two arrival disciplines (Darmont's OCB line: credible multi-user
   numbers need a controlled arrival process):

   - closed loop: each user waits for its reply, thinks for a fixed
     time, then issues the next request — load self-limits to the
     server's capacity;
   - open loop: requests arrive on a Poisson process at a fixed rate
     regardless of completions, executed by a worker pool; latency is
     measured from *scheduled arrival*, so queue wait counts.

   All randomness (op mix, targets, inter-arrival times) is drawn from
   a seeded SplitMix64 stream: two runs with the same arguments issue
   the same requests. *)

open Hyper_core
open Cmdliner
module Obs = Hyper_obs.Obs
module Net = Hyper_net
module Prng = Hyper_util.Prng
module Stats = Hyper_util.Stats
module Sync = Hyper_util.Sync

let now_ns () = Hyper_util.Mtime_stub.now_ns ()

let m_lat = Obs.Histogram.make "hyper_load_request_ns"
let m_requests = Obs.Counter.make "hyper_load_requests_total"
let m_errors = Obs.Counter.make "hyper_load_protocol_errors_total"

(* --- workload --- *)

(* One simulated user action: a small read-heavy mix with a write-txn
   fraction, every target drawn from the layout arithmetic (never from
   the database — input selection must not count as server work). *)
let next_request rng layout ~write_fraction =
  if Prng.float rng 1.0 < write_fraction then
    let oid = Layout.random_node layout rng in
    [
      Trace.Begin;
      Trace.Set_hundred { oid; value = Prng.int rng 100 };
      Trace.Commit;
    ]
  else
    match Prng.int rng 3 with
    | 0 ->
      [ Trace.Lookup_unique
          { doc = layout.Layout.doc; uid = Layout.random_uid layout rng } ]
    | 1 -> [ Trace.Attrs (Layout.random_node layout rng) ]
    | _ -> [ Trace.Children (Layout.random_internal layout rng) ]

type point = {
  clients : int;
  requests : int;
  errors : int;
  wall_s : float;
  lat : Stats.t;  (* milliseconds *)
}

let run_request conn ops =
  match Net.Client.call conn ops with
  | outcomes -> List.length outcomes > 0
  | exception Net.Client.Server_fault _ -> false

(* --- closed loop --- *)

let run_closed ~addr ~layout ~clients ~think_ms ~write_fraction ~seed
    ~deadline_ns ~requests_per_client =
  let errors = ref 0
  and lock = Sync.Mutex.create ~rank:40 "bin.hyperload.errors" in
  let worker i =
    let rng = Prng.create (Int64.add seed (Int64.of_int (i * 7919))) in
    let stats = Stats.create () in
    let conn = Net.Client.connect ~client_name:(Printf.sprintf "load-%d" i) addr in
    let budget = ref requests_per_client in
    let continue () =
      (match deadline_ns with Some d -> now_ns () < d | None -> true)
      && match !budget with Some 0 -> false | _ -> true
    in
    while continue () do
      (match !budget with Some n -> budget := Some (n - 1) | None -> ());
      let ops = next_request rng layout ~write_fraction in
      let t0 = now_ns () in
      let ok = run_request conn ops in
      let dt = Int64.sub (now_ns ()) t0 in
      Obs.Counter.incr m_requests;
      Obs.Histogram.observe m_lat (Int64.to_float dt);
      Stats.add stats (Int64.to_float dt /. 1e6);
      if not ok then begin
        Obs.Counter.incr m_errors;
        Sync.Mutex.lock lock;
        incr errors;
        Sync.Mutex.unlock lock
      end;
      if think_ms > 0.0 then Thread.delay (think_ms /. 1000.0)
    done;
    Net.Client.close conn;
    stats
  in
  let results = Array.init clients (fun _ -> Stats.create ()) in
  let t0 = now_ns () in
  let threads =
    List.init clients (fun i ->
        Thread.create (fun () -> results.(i) <- worker i) ())
  in
  List.iter Thread.join threads;
  let wall_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  let lat = Stats.create () in
  Array.iter (fun s -> Array.iter (Stats.add lat) (Stats.samples s)) results;
  { clients; requests = Stats.count lat; errors = !errors; wall_s; lat }

(* --- open loop --- *)

(* Poisson arrivals: exponential inter-arrival gaps at [rate] req/s,
   precomputed from the seed.  A worker pool of [clients] connections
   drains the arrival queue; a request's latency starts at its
   scheduled arrival time, so server saturation shows up as queue wait
   rather than silently thinning the offered load. *)
let run_open ~addr ~layout ~clients ~rate ~write_fraction ~seed ~duration_s =
  let rng = Prng.create seed in
  let schedule = ref [] in
  let t = ref 0.0 in
  while !t < duration_s do
    let u = Float.max 1e-12 (Prng.float rng 1.0) in
    t := !t +. (-.Float.log u /. rate);
    if !t < duration_s then
      schedule := (!t, next_request rng layout ~write_fraction) :: !schedule
  done;
  let jobs = ref (List.rev !schedule) in
  let lock = Sync.Mutex.create ~rank:40 "bin.hyperload.jobs" in
  let errors = ref 0 in
  let t0 = now_ns () in
  let take () =
    Sync.Mutex.lock lock;
    let j =
      match !jobs with
      | [] -> None
      | j :: rest ->
        jobs := rest;
        Some j
    in
    Sync.Mutex.unlock lock;
    j
  in
  let worker i =
    let conn = Net.Client.connect ~client_name:(Printf.sprintf "load-%d" i) addr in
    let stats = Stats.create () in
    let rec loop () =
      match take () with
      | None -> ()
      | Some (at_s, ops) ->
        let arrival = Int64.add t0 (Int64.of_float (at_s *. 1e9)) in
        let gap = Int64.to_float (Int64.sub arrival (now_ns ())) /. 1e9 in
        if gap > 0.0 then Thread.delay gap;
        let ok = run_request conn ops in
        let dt = Int64.sub (now_ns ()) arrival in
        Obs.Counter.incr m_requests;
        Obs.Histogram.observe m_lat (Int64.to_float dt);
        Stats.add stats (Int64.to_float dt /. 1e6);
        if not ok then begin
          Obs.Counter.incr m_errors;
          Sync.Mutex.lock lock;
          incr errors;
          Sync.Mutex.unlock lock
        end;
        loop ()
    in
    loop ();
    Net.Client.close conn;
    stats
  in
  let results = Array.init clients (fun _ -> Stats.create ()) in
  let threads =
    List.init clients (fun i ->
        Thread.create (fun () -> results.(i) <- worker i) ())
  in
  List.iter Thread.join threads;
  let wall_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  let lat = Stats.create () in
  Array.iter (fun s -> Array.iter (Stats.add lat) (Stats.samples s)) results;
  { clients; requests = Stats.count lat; errors = !errors; wall_s; lat }

(* --- reporting --- *)

let point_row p =
  let q pct = if Stats.count p.lat = 0 then 0.0 else Stats.percentile p.lat pct in
  Printf.sprintf "%8d %9d %8.2f %12.0f %9.3f %9.3f %9.3f %7d" p.clients
    p.requests p.wall_s
    (if p.wall_s > 0.0 then float_of_int p.requests /. p.wall_s else 0.0)
    (q 50.0) (q 95.0) (q 99.0) p.errors

let point_json p =
  let module J = Hyper_util.Sjson in
  let q pct = if Stats.count p.lat = 0 then 0.0 else Stats.percentile p.lat pct in
  J.Obj
    [
      ("clients", J.Num (float_of_int p.clients));
      ("requests", J.Num (float_of_int p.requests));
      ("wall_s", J.Num p.wall_s);
      ( "throughput_rps",
        J.Num
          (if p.wall_s > 0.0 then float_of_int p.requests /. p.wall_s else 0.0)
      );
      ("p50_ms", J.Num (q 50.0));
      ("p95_ms", J.Num (q 95.0));
      ("p99_ms", J.Num (q 99.0));
      ("mean_ms", J.Num (if Stats.count p.lat = 0 then 0.0 else Stats.mean p.lat));
      ("errors", J.Num (float_of_int p.errors));
    ]

(* --- server bring-up --- *)

type served = {
  s_addr : Net.Netaddr.t;
  s_layout : Layout.t;
  shutdown : unit -> unit;
}

let self_serve ~backend ~level ~fanout ~seed ~sock =
  let addr = Net.Netaddr.Unix_sock sock in
  match backend with
  | "memdb" ->
    let module M = Hyper_memdb.Memdb in
    let b = M.create () in
    let module G = Generator.Make (M) in
    let layout, _ = G.generate ~fanout b ~doc:1 ~leaf_level:level ~seed in
    let srv =
      Net.Server.start ~layout
        (Backend.Instance ((module M : Backend.S with type t = M.t), b))
        addr
    in
    { s_addr = addr; s_layout = layout; shutdown = (fun () -> Net.Server.drain srv) }
  | "diskdb" ->
    let module D = Hyper_diskdb.Diskdb in
    let path = Filename.temp_file "hyperload" ".db" in
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; path ^ ".wal" ];
    let b = D.open_db (D.default_config ~path) in
    let module G = Generator.Make (D) in
    let layout, _ = G.generate ~fanout b ~doc:1 ~leaf_level:level ~seed in
    let srv =
      Net.Server.start ~layout
        (Backend.Instance ((module D : Backend.S with type t = D.t), b))
        addr
    in
    {
      s_addr = addr;
      s_layout = layout;
      shutdown =
        (fun () ->
          Net.Server.drain srv;
          D.close b;
          List.iter
            (fun p -> if Sys.file_exists p then Sys.remove p)
            [ path; path ^ ".wal" ]);
    }
  | s -> failwith (Printf.sprintf "unknown backend %S (memdb or diskdb)" s)

(* --- main --- *)

let main connect backend level fanout seed sock sweep mode duration_s
    requests_per_client think_ms rate write_fraction json metrics =
  if metrics <> None then Obs.enable ();
  let served =
    match connect with
    | Some a ->
      (* remote server: the layout is pure arithmetic over level/fanout *)
      let layout = Layout.make ~fanout ~doc:1 ~oid_base:0 ~leaf_level:level () in
      {
        s_addr = Net.Netaddr.of_string a;
        s_layout = layout;
        shutdown = (fun () -> ());
      }
    | None ->
      let sock =
        match sock with
        | Some s -> s
        | None ->
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "hyperload_%d.sock" (Unix.getpid ()))
      in
      self_serve ~backend ~level ~fanout ~seed ~sock
  in
  Fun.protect ~finally:served.shutdown @@ fun () ->
  let layout = served.s_layout and addr = served.s_addr in
  Printf.printf
    "hyperload: %s, level %d (%d nodes), %s loop, write fraction %.2f\n"
    (Net.Netaddr.to_string addr) level layout.Layout.node_count mode
    write_fraction;
  Printf.printf "%8s %9s %8s %12s %9s %9s %9s %7s\n" "clients" "requests"
    "wall_s" "rps" "p50_ms" "p95_ms" "p99_ms" "errors";
  let points =
    List.map
      (fun clients ->
        let p =
          match mode with
          | "closed" ->
            let deadline_ns =
              match requests_per_client with
              | Some _ -> None
              | None ->
                Some
                  (Int64.add (now_ns ()) (Int64.of_float (duration_s *. 1e9)))
            in
            run_closed ~addr ~layout ~clients ~think_ms ~write_fraction ~seed
              ~deadline_ns ~requests_per_client
          | "open" ->
            run_open ~addr ~layout ~clients ~rate ~write_fraction ~seed
              ~duration_s
          | s -> failwith (Printf.sprintf "unknown mode %S (closed or open)" s)
        in
        print_endline (point_row p);
        p)
      sweep
  in
  (match metrics with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (Obs.to_prometheus ());
    close_out oc;
    Printf.printf "metrics -> %s\n" file);
  (match json with
  | None -> ()
  | Some file ->
    let module J = Hyper_util.Sjson in
    let doc =
      J.Obj
        [
          ( "meta",
            J.Obj
              [
                ("schema", J.Num 1.0);
                ("tool", J.Str "hyperload");
                ("mode", J.Str mode);
                ( "backend",
                  J.Str (match connect with Some _ -> "remote" | None -> backend)
                );
                ("level", J.Num (float_of_int level));
                ("fanout", J.Num (float_of_int fanout));
                ("seed", J.Num (Int64.to_float seed));
                ("write_fraction", J.Num write_fraction);
                ("think_ms", J.Num think_ms);
              ] );
          ("points", J.List (List.map point_json points));
        ]
    in
    let oc = open_out file in
    output_string oc (J.to_string doc);
    close_out oc;
    Printf.printf "json -> %s\n" file);
  let total_errors = List.fold_left (fun a p -> a + p.errors) 0 points in
  if total_errors > 0 then begin
    Printf.printf "%d protocol error(s)\n" total_errors;
    exit 1
  end

let () =
  let connect_arg =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Drive an already-running server at $(docv) \
                 (unix:/path or host:port) instead of self-serving.")
  in
  let backend_arg =
    Arg.(value & opt string "diskdb" & info [ "serve-backend" ] ~docv:"B"
           ~doc:"Backend to self-serve: memdb or diskdb.")
  in
  let level_arg =
    Arg.(value & opt int 3 & info [ "l"; "level" ] ~docv:"LEVEL"
           ~doc:"Leaf level of the served test database.")
  in
  let fanout_arg =
    Arg.(value & opt int 5 & info [ "fanout" ] ~docv:"N"
           ~doc:"Children per internal node.")
  in
  let seed_arg =
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload and generator seed.")
  in
  let sock_arg =
    Arg.(value & opt (some string) None & info [ "sock" ] ~docv:"PATH"
           ~doc:"Unix-socket path when self-serving (default: a \
                 per-process path under the temp dir).")
  in
  let sweep_arg =
    Arg.(value & opt (list int) [ 64 ] & info [ "sweep"; "clients" ]
           ~docv:"N,M,.." ~doc:"Client counts to measure, in order.")
  in
  let mode_arg =
    Arg.(value & opt string "closed" & info [ "mode" ] ~docv:"MODE"
           ~doc:"Arrival discipline: closed (think time) or open \
                 (Poisson arrivals).")
  in
  let duration_arg =
    Arg.(value & opt float 10.0 & info [ "duration-s" ] ~docv:"S"
           ~doc:"Measurement window per sweep point.")
  in
  let rpc_arg =
    Arg.(value & opt (some int) None & info [ "requests-per-client" ]
           ~docv:"N"
           ~doc:"Closed loop: stop each client after $(docv) requests \
                 instead of after --duration-s (deterministic totals \
                 for CI).")
  in
  let think_arg =
    Arg.(value & opt float 1.0 & info [ "think-ms" ] ~docv:"MS"
           ~doc:"Closed loop: think time between a reply and the next \
                 request.")
  in
  let rate_arg =
    Arg.(value & opt float 500.0 & info [ "rate" ] ~docv:"RPS"
           ~doc:"Open loop: system-wide Poisson arrival rate.")
  in
  let write_arg =
    Arg.(value & opt float 0.2 & info [ "write-fraction" ] ~docv:"F"
           ~doc:"Fraction of requests that are write transactions.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the sweep results as JSON to $(docv).")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Enable the metrics sink and dump Prometheus text to \
                 $(docv).")
  in
  let doc = "Multi-client load generator for the hypermodel socket server" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "hyperload" ~doc)
          Term.(
            const main $ connect_arg $ backend_arg $ level_arg $ fanout_arg
            $ seed_arg $ sock_arg $ sweep_arg $ mode_arg $ duration_arg
            $ rpc_arg $ think_arg $ rate_arg $ write_arg $ json_arg
            $ metrics_arg)))

(* hyperlint — typedtree-based invariant linter for the storage, txn
   and fault-injection layers.

     dune build @check        # produce the .cmt files
     hyperlint _build/default # report violations, exit 1 on any

   The rules, the invariants they guard and the suppression story are
   documented in DESIGN.md §12. *)

open Cmdliner
module Lint = Hyper_lint.Driver
module Rules = Hyper_lint.Rules
module Finding = Hyper_lint.Finding
module Allowlist = Hyper_lint.Allowlist
module Sjson = Hyper_util.Sjson

let list_rules () =
  List.iter
    (fun (id, descr) -> Printf.printf "%-26s %s\n" id descr)
    Rules.all

(* Machine-readable findings, one object per finding, stable field
   order — the CI lint job archives this and diffs it across runs. *)
let json_of_findings findings =
  Sjson.List
    (List.map
       (fun (f : Finding.t) ->
         Sjson.Obj
           [
             ("rule", Sjson.Str f.rule);
             ("path", Sjson.Str f.file);
             ("line", Sjson.Num (float_of_int f.line));
             ("col", Sjson.Num (float_of_int f.col));
             ("message", Sjson.Str f.message);
           ])
       findings)

let write_json path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Sjson.to_string (json_of_findings findings));
      output_char oc '\n')

let check_allowlist ~allowlist_file (report : Lint.report) =
  match allowlist_file with
  | None ->
      prerr_endline "hyperlint: --check-allowlist with no allowlist file";
      2
  | Some f -> (
      let entries = Allowlist.load f in
      let known_rules = List.map fst Rules.all in
      match
        Allowlist.stale entries ~sources:report.Lint.sources ~known_rules
      with
      | [] ->
          Printf.eprintf "hyperlint: %d allowlist entr(y/ies), none stale\n"
            (List.length entries);
          0
      | stale ->
          List.iter
            (fun (e : Allowlist.entry) ->
              Printf.printf
                "stale allowlist entry: %s %s (%s)\n" e.rule e.path_fragment
                (if List.mem e.rule known_rules then
                   "path fragment matches no linted source"
                 else "unknown rule id"))
            stale;
          1)

let run roots allowlist only all_paths verbose do_list json_out
    do_check_allowlist =
  if do_list then begin
    list_rules ();
    0
  end
  else begin
    let roots =
      match roots with
      | [] ->
          if Sys.file_exists "_build/default" then [ "_build/default" ]
          else [ "." ]
      | rs -> rs
    in
    let allowlist_file =
      match allowlist with
      | Some f -> Some f
      | None ->
          if Sys.file_exists "lint.allowlist" then Some "lint.allowlist"
          else None
    in
    let only = if only = [] then Lint.default_only else only in
    let report = Lint.scan ?allowlist_file ~only ~scope_all:all_paths roots in
    if report.Lint.units = 0 then begin
      prerr_endline
        "hyperlint: no .cmt files matched — run `dune build @check` first \
         and point hyperlint at the build directory";
      2
    end
    else if do_check_allowlist then check_allowlist ~allowlist_file report
    else begin
      (match json_out with
      | Some path -> write_json path report.Lint.findings
      | None -> ());
      List.iter
        (fun f -> print_endline (Finding.to_string_hinted f))
        report.Lint.findings;
      if verbose then begin
        List.iter
          (fun f ->
            Printf.printf "allowed (lint.allowlist): %s\n"
              (Finding.to_string f))
          report.Lint.allowed;
        List.iter
          (fun f ->
            Printf.printf "allowed ([@lint.allow]): %s\n"
              (Finding.to_string f))
          report.Lint.attr_suppressed
      end;
      Printf.eprintf
        "hyperlint: %d unit(s), %d finding(s), %d allowed (%d by attribute)\n"
        report.Lint.units
        (List.length report.Lint.findings)
        (List.length report.Lint.allowed)
        (List.length report.Lint.attr_suppressed);
      if report.Lint.findings <> [] then 1 else 0
    end
  end

let roots_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"DIR"
           ~doc:"Directories to walk for .cmt files (default: \
                 _build/default if present, else the current directory).")

let allowlist_arg =
  Arg.(value & opt (some file) None
       & info [ "allowlist" ] ~docv:"FILE"
           ~doc:"Suppression file (default: lint.allowlist if present). \
                 Lines of `rule-id path-substring`.")

let only_arg =
  Arg.(value & opt_all string []
       & info [ "only" ] ~docv:"PREFIX"
           ~doc:"Only lint sources whose path starts with $(docv) \
                 (repeatable; default lib/ and bin/).")

let all_paths_arg =
  Arg.(value & flag
       & info [ "all-paths" ]
           ~doc:"Disable per-rule directory scoping (deterministic-iteration \
                 normally applies to lib/reldb, lib/txn and lib/check only).")

let verbose_arg =
  Arg.(value & flag
       & info [ "verbose"; "v" ] ~doc:"Also print allowed/suppressed findings.")

let list_arg =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"List rule ids and exit.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the findings to $(docv) as a JSON array of \
                 {rule, path, line, col, message} objects.")

let check_allowlist_arg =
  Arg.(value & flag
       & info [ "check-allowlist" ]
           ~doc:"Instead of reporting findings, report stale allowlist \
                 entries (unknown rule id, or path fragment matching no \
                 linted source) and exit 1 if any.")

let cmd =
  Cmd.v
    (Cmd.info "hyperlint" ~version:"%%VERSION%%"
       ~doc:"Typedtree-based invariant linter for the hypermodel repo")
    Term.(
      const run $ roots_arg $ allowlist_arg $ only_arg $ all_paths_arg
      $ verbose_arg $ list_arg $ json_arg $ check_allowlist_arg)

let () = exit (Cmd.eval' cmd)

(* hyperbench — command-line driver for the HyperModel benchmark.

   Subcommands: generate, verify, run, query, multiuser, bench, diff,
   gc, info.  `hyperbench SUBCOMMAND --help` documents each. *)

open Hyper_core
open Cmdliner

type backend_kind = Mem | Disk | Rel

let backend_conv =
  let parse = function
    | "memdb" -> Ok Mem
    | "diskdb" -> Ok Disk
    | "reldb" -> Ok Rel
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print fmt k =
    Format.pp_print_string fmt
      (match k with Mem -> "memdb" | Disk -> "diskdb" | Rel -> "reldb")
  in
  Arg.conv (parse, print)

(* Polymorphic action over any backend instance. *)
type action = {
  act : 'a. (module Backend.S with type t = 'a) -> 'a -> unit;
}

let with_backend kind ~path ~pool_pages ~remote action =
  match kind with
  | Mem ->
    let b = Hyper_memdb.Memdb.create () in
    action.act (module Hyper_memdb.Memdb) b
  | Disk ->
    let module D = Hyper_diskdb.Diskdb in
    let config =
      { (D.default_config ~path) with
        D.pool_pages;
        remote = (if remote then Some D.remote_1988 else None) }
    in
    let b = D.open_db config in
    Fun.protect ~finally:(fun () -> D.close b) (fun () -> action.act (module D) b)
  | Rel ->
    let module R = Hyper_reldb.Reldb in
    let config =
      { (R.default_config ~path) with
        R.pool_pages;
        remote =
          (if remote then Some Hyper_net.Channel.profile_1988 else None) }
    in
    let b = R.open_db config in
    Fun.protect ~finally:(fun () -> R.close b) (fun () -> action.act (module R) b)

(* Common argument definitions. *)

let backend_arg =
  Arg.(value & opt backend_conv Mem & info [ "b"; "backend" ] ~docv:"BACKEND"
         ~doc:"Backend: memdb, diskdb or reldb.")

let level_arg =
  Arg.(value & opt int 4 & info [ "l"; "level" ] ~docv:"LEVEL"
         ~doc:"Leaf level of the test database (paper sizes: 4, 5, 6).")

let path_arg =
  Arg.(value & opt string "/tmp/hypermodel.db" & info [ "p"; "path" ]
         ~docv:"PATH" ~doc:"Database file (diskdb/reldb only).")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED"
         ~doc:"Generator seed; equal seeds give identical databases.")

let pool_arg =
  Arg.(value & opt int 2048 & info [ "pool" ] ~docv:"PAGES"
         ~doc:"Buffer pool capacity in 4 KiB pages.")

let remote_arg =
  Arg.(value & flag & info [ "remote" ]
         ~doc:"Simulate a 1988 workstation/server channel (diskdb/reldb).")

let cluster_arg =
  Arg.(value & opt bool true & info [ "cluster" ] ~docv:"BOOL"
         ~doc:"Cluster node placement along the 1-N hierarchy.")

let reps_arg =
  Arg.(value & opt int 50 & info [ "reps" ] ~docv:"N"
         ~doc:"Repetitions per operation sequence (the paper uses 50).")

let fanout_arg =
  Arg.(value & opt int 5 & info [ "fanout" ] ~docv:"N"
         ~doc:"Children per internal node (the paper uses 5; §5.2 N.B.                requires it to be variable).")

let layout_of ?fanout level =
  Layout.make ?fanout ~doc:1 ~oid_base:0 ~leaf_level:level ()

(* generate/run build the test database from scratch; a store left at
   the target path by a previous invocation would collide with
   regeneration ("oid 1 already exists").  Remove it, WAL included. *)
let remove_store path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".wal" ]

let generate_into (type a) (module B : Backend.S with type t = a) (b : a)
    ~level ~seed ~cluster ~fanout =
  let module G = Generator.Make (B) in
  G.generate ~cluster ~fanout b ~doc:1 ~leaf_level:level ~seed

(* --- generate --- *)

let cmd_generate =
  let run backend level path seed pool_pages cluster remote fanout =
    if backend <> Mem then remove_store path;
    with_backend backend ~path ~pool_pages ~remote
      { act =
          (fun (type a) (module B : Backend.S with type t = a) (b : a) ->
            let _, timings =
              generate_into (module B) b ~level ~seed ~cluster ~fanout
            in
            print_string
              (Report.creation_table
                 ~title:
                   (Printf.sprintf
                      "Database creation (%s, level %d, seed %Ld, cluster %b)"
                      B.name level seed cluster)
                 [ (B.name, level, timings) ]);
            Printf.printf "nodes: %d\nio: %s\n"
              (B.node_count b ~doc:1) (B.io_description b)) }
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Create a test database (paper §5.2/§5.3).")
    Term.(
      const run $ backend_arg $ level_arg $ path_arg $ seed_arg $ pool_arg
      $ cluster_arg $ remote_arg $ fanout_arg)

(* --- verify --- *)

let cmd_verify =
  let run backend level path seed pool_pages fresh fanout =
    with_backend backend ~path ~pool_pages ~remote:false
      { act =
          (fun (type a) (module B : Backend.S with type t = a) (b : a) ->
            let layout = layout_of ~fanout level in
            if fresh || backend = Mem then
              ignore
                (generate_into (module B) b ~level ~seed ~cluster:true ~fanout);
            let module V = Verify.Make (B) in
            let checks = V.run b layout in
            List.iter
              (fun c ->
                Printf.printf "[%s] %s%s\n"
                  (if c.Verify.ok then "ok" else "FAIL")
                  c.Verify.name
                  (if c.Verify.ok then "" else ": " ^ c.Verify.detail))
              checks;
            if Verify.all_ok checks then print_endline "all checks passed"
            else exit 1) }
  in
  let fresh_arg =
    Arg.(value & flag & info [ "fresh" ]
           ~doc:"Generate before verifying (implied for memdb).")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify the structural invariants of a database.")
    Term.(
      const run $ backend_arg $ level_arg $ path_arg $ seed_arg $ pool_arg
      $ fresh_arg $ fanout_arg)

(* --- run --- *)

(* Replicated run (diskdb only): the whole store lives on an in-memory
   fault-injection VFS so the cluster can snapshot its files; every
   commit ships through the WAL stream under the chosen ack policy.
   After the timed ops the primary is failed over and a read-only
   operation is served from the promoted replica. *)
let run_replicated ~level ~seed ~pool_pages ~cluster ~reps ~ops ~fanout
    ~replicas ~durability =
  let module D = Hyper_diskdb.Diskdb in
  let module Vfs = Hyper_storage.Vfs in
  let module Repl = Hyper_repl.Repl in
  let policy =
    match Repl.policy_of_string durability with
    | Some p -> p
    | None ->
      failwith
        (Printf.sprintf "unknown durability %S (async, sync-one, quorum)"
           durability)
  in
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let dbpath = "/bench/disk.db" in
  let config =
    { (D.default_config ~path:dbpath) with D.pool_pages; vfs = Some vfs }
  in
  let db = D.open_db config in
  let layout, _ = generate_into (module D) db ~level ~seed ~cluster ~fanout in
  let rs =
    List.init replicas (fun i ->
        Repl.Replica.create ~name:(Printf.sprintf "bench-r%d" i) ())
  in
  let cl =
    Repl.Cluster.create
      ~cfg:{ Repl.Cluster.default_config with Repl.Cluster.policy }
      ~engine:(D.engine db) ~vfs ~path:dbpath ~replicas:rs ()
  in
  let module P = Protocol.Make (D) in
  let pconfig = { Protocol.default_config with reps } in
  let ids = if ops = [] then Protocol.op_ids else ops in
  let ms = List.map (P.run_op ~config:pconfig db layout) ids in
  Repl.Cluster.heartbeat cl;
  print_string
    (Report.operation_table
       ~title:
         (Printf.sprintf
            "HyperModel operations (diskdb + %d replica(s), %s, level %d, \
             %d reps, ms/node)"
            replicas
            (Repl.policy_to_string policy)
            level reps)
       ~levels:[ level ] [ (level, ms) ]);
  Printf.printf "io: %s\n" (D.io_description db);
  Printf.printf "replication: %s\n" (Repl.Cluster.report cl);
  (* Failover: promote the most-caught-up replica and serve a warm
     read-only operation from it. *)
  let idx, survivor = Repl.Cluster.promote cl in
  Repl.Cluster.detach cl;
  let rdb =
    D.open_db
      { (D.default_config ~path:(Repl.Replica.path survivor)) with
        D.pool_pages;
        vfs = Some (Repl.Replica.vfs survivor) }
  in
  Fun.protect
    ~finally:(fun () -> D.close rdb)
    (fun () ->
      let m = P.run_op ~config:pconfig rdb layout "01" in
      Printf.printf
        "failover: promoted r%d (%d commits); op 01 from the replica: \
         %.3f/%.3f ms/node cold/warm\n"
        idx
        (Repl.Replica.applied_commits survivor)
        (Protocol.cold_ms_per_node m)
        (Protocol.warm_ms_per_node m))

(* JSON rendering of a measurement list, shared by `run --json` and
   `bench`. *)
let measurements_json ms =
  let module J = Hyper_util.Sjson in
  J.List
    (List.map
       (fun m ->
         J.Obj
           [ ("op", J.Str m.Protocol.op);
             ("cold_ms_per_node", J.Num (Protocol.cold_ms_per_node m));
             ("warm_ms_per_node", J.Num (Protocol.warm_ms_per_node m)) ])
       ms)

let write_file file s =
  let oc = open_out file in
  output_string oc s;
  close_out oc

(* Wire serving: `--serve ADDR` generates the database into the chosen
   backend and serves it over the socket protocol; `--connect ADDR`
   runs the op suite through a {!Hyper_net.Client_backend}, so
   [Protocol.Make] measures wire round-trips without knowing it left
   the process.  Both together make a single-process smoke test:
   in-process server, real socket in between. *)
let run_net ~backend ~level ~path ~seed ~pool_pages ~remote ~cluster ~reps
    ~ops ~fanout ~serve ~connect ~json =
  let module Net = Hyper_net in
  let run_client addr_s =
    let addr = Net.Netaddr.of_string addr_s in
    let layout = layout_of ~fanout level in
    let module CB = Net.Client_backend in
    let cb = CB.make (Net.Client.connect addr) in
    Fun.protect
      ~finally:(fun () -> Net.Client.close (CB.conn cb))
      (fun () ->
        let module P = Protocol.Make (CB) in
        let config = { Protocol.default_config with reps } in
        let ids = if ops = [] then Protocol.op_ids else ops in
        let ms = List.map (P.run_op ~config cb layout) ids in
        (match json with
        | None -> ()
        | Some file ->
          let module J = Hyper_util.Sjson in
          write_file file
            (J.to_string
               (J.Obj
                  [ ( "meta",
                      J.Obj
                        [ ("backend", J.Str "wire");
                          ("address", J.Str addr_s);
                          ("level", J.Num (float_of_int level));
                          ("reps", J.Num (float_of_int reps)) ] );
                    ("operations", measurements_json ms) ]));
          Printf.printf "json -> %s\n" file);
        print_string
          (Report.operation_table
             ~title:
               (Printf.sprintf
                  "HyperModel operations (wire %s, level %d, %d reps, ms/node)"
                  addr_s level reps)
             ~levels:[ level ] [ (level, ms) ]);
        Printf.printf "io: %s\n" (CB.io_description cb))
  in
  match (serve, connect) with
  | None, Some addr_s -> run_client addr_s
  | None, None -> assert false
  | Some addr_s, _ ->
    if backend <> Mem then remove_store path;
    with_backend backend ~path ~pool_pages ~remote
      { act =
          (fun (type a) (module B : Backend.S with type t = a) (b : a) ->
            let layout, _ =
              generate_into (module B) b ~level ~seed ~cluster ~fanout
            in
            let addr = Net.Netaddr.of_string addr_s in
            let instance =
              Backend.Instance ((module B : Backend.S with type t = a), b)
            in
            let srv = Net.Server.start ~layout instance addr in
            Printf.printf "serving %s level %d at %s\n%!" B.name level addr_s;
            (match connect with
            | Some caddr_s ->
              (* single-process smoke: client over a real socket *)
              run_client caddr_s
            | None ->
              (* serve until interrupted, then drain *)
              let stop = ref false in
              let arm s =
                match Sys.signal s (Sys.Signal_handle (fun _ -> stop := true))
                with
                | _ -> ()
                | exception Invalid_argument _ -> ()
                | exception Sys_error _ -> ()
              in
              arm Sys.sigint;
              arm Sys.sigterm;
              while not !stop do
                Thread.delay 0.2
              done;
              Printf.printf "draining...\n%!");
            Net.Server.drain ~grace_s:5.0 srv) }

let cc_of_string s =
  match String.lowercase_ascii s with
  | "occ" -> Multiuser.Optimistic
  | "2pl" -> Multiuser.Two_phase_locking
  | "mvcc" -> Multiuser.Mvcc
  | s -> failwith (Printf.sprintf "unknown mode %S (use occ, 2pl or mvcc)" s)

let print_multiuser (r : Multiuser.result) =
  Printf.printf
    "%s  users=%d  attempted=%d  committed=%d  aborted=%d  retried-ok=%d\n\
     wall=%.1f ms  throughput=%.0f txn/s\n"
    (Multiuser.mode_to_string r.Multiuser.mode)
    r.Multiuser.users r.Multiuser.txns_attempted r.Multiuser.committed
    r.Multiuser.aborted r.Multiuser.retried_ok r.Multiuser.wall_ms
    r.Multiuser.throughput_tps;
  if r.Multiuser.readers > 0 then
    Printf.printf "readers=%d  sweeps=%d  reader-aborts=%d\n"
      r.Multiuser.readers r.Multiuser.reader_sweeps r.Multiuser.reader_aborts

let cmd_run =
  let run backend level path seed pool_pages remote cluster reps ops fanout
      trace metrics replicas durability json serve connect cc =
    let module Obs = Hyper_obs.Obs in
    if metrics <> None then Obs.enable ();
    if replicas > 0 && backend <> Disk then
      failwith "--replicas requires -b diskdb";
    if (serve <> None || connect <> None) && replicas > 0 then
      failwith "--serve/--connect and --replicas are exclusive";
    if cc <> None && (serve <> None || connect <> None || replicas > 0) then
      failwith "--cc runs locally (not with --serve/--connect/--replicas)";
    if serve <> None || connect <> None then
      run_net ~backend ~level ~path ~seed ~pool_pages ~remote ~cluster ~reps
        ~ops ~fanout ~serve ~connect ~json
    else if replicas > 0 then
      run_replicated ~level ~seed ~pool_pages ~cluster ~reps ~ops ~fanout
        ~replicas ~durability
    else begin
    if backend <> Mem then remove_store path;
    with_backend backend ~path ~pool_pages ~remote
      { act =
          (fun (type a) (module B : Backend.S with type t = a) (b : a) ->
            let layout, _ =
              generate_into (module B) b ~level ~seed ~cluster ~fanout
            in
            let module P = Protocol.Make (B) in
            let config = { Protocol.default_config with reps } in
            let ids = if ops = [] then Protocol.op_ids else ops in
            (* Span collection starts after generation so the trace
               holds exactly one tree per timed batch. *)
            if trace <> None then Obs.Span.set_tracing true;
            let ms = List.map (P.run_op ~config b layout) ids in
            (* The small multiuser leg under the chosen concurrency
               control runs before the trace/metrics dumps so its
               counters (hyper_mvcc_*, lock waits) land in them. *)
            let mu_result =
              match cc with
              | None -> None
              | Some mode_s ->
                let module M = Multiuser.Make (B) in
                Some
                  (M.run ~readers:2 b layout ~mode:(cc_of_string mode_s)
                     ~users:4 ~txns_per_user:10 ~hot_fraction:0.5 ~seed)
            in
            (match trace with
            | None -> ()
            | Some file ->
              let roots = Obs.Span.take_roots () in
              Obs.Span.set_tracing false;
              let oc = open_out file in
              output_string oc (Obs.Span.to_string roots);
              close_out oc;
              Printf.printf "trace: %d root spans -> %s\n" (List.length roots)
                file);
            (match metrics with
            | None -> ()
            | Some file ->
              let oc = open_out file in
              output_string oc (Obs.to_prometheus ());
              close_out oc;
              Printf.printf "metrics -> %s\n" file);
            (match json with
            | None -> ()
            | Some file ->
              let module J = Hyper_util.Sjson in
              write_file file
                (J.to_string
                   (J.Obj
                      [ ( "meta",
                          J.Obj
                            [ ("backend", J.Str B.name);
                              ("level", J.Num (float_of_int level));
                              ("reps", J.Num (float_of_int reps)) ] );
                        ("operations", measurements_json ms) ]));
              Printf.printf "json -> %s\n" file);
            print_string
              (Report.operation_table
                 ~title:
                   (Printf.sprintf
                      "HyperModel operations (%s, level %d, %d reps, ms/node)"
                      B.name level reps)
                 ~levels:[ level ] [ (level, ms) ]);
            Printf.printf "io: %s\n" (B.io_description b);
            match mu_result with
            | None -> ()
            | Some r -> print_multiuser r) }
    end
  in
  let ops_arg =
    Arg.(value & opt (list string) [] & info [ "ops" ] ~docv:"IDS"
           ~doc:"Comma-separated op ids (e.g. 01,05A,10); default: all 20.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write per-operation span trees (one root per timed \
                 cold/warm batch) to $(docv).")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Enable the metrics sink and write a Prometheus-style \
                 dump to $(docv) after the run.")
  in
  let replicas_arg =
    Arg.(value & opt int 0 & info [ "replicas" ] ~docv:"N"
           ~doc:"Replicate every commit to $(docv) WAL-shipping replicas \
                 (diskdb only; the store then runs on an in-memory VFS). \
                 After the timed ops the primary is failed over and op 01 \
                 is served from the promoted replica.")
  in
  let durability_arg =
    Arg.(value & opt string "async" & info [ "durability" ] ~docv:"MODE"
           ~doc:"Commit ack policy with --replicas: async, sync-one or \
                 quorum.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the per-operation measurements as JSON to \
                 $(docv) (non-replicated runs).")
  in
  let serve_arg =
    Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"ADDR"
           ~doc:"Generate the database and serve it over the wire protocol \
                 at $(docv) (unix:/path or host:port) until interrupted, \
                 instead of timing ops locally.")
  in
  let connect_arg =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Run the ops through a socket client against the server at \
                 $(docv).  Combined with --serve, starts an in-process \
                 server and runs the client against it over a real socket.")
  in
  let cc_arg =
    Arg.(value & opt (some string) None & info [ "cc" ] ~docv:"MODE"
           ~doc:"After the timed ops, run a small multiuser leg under this \
                 concurrency control (occ, 2pl or mvcc) with two concurrent \
                 readers on the same database.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Generate a database and run benchmark operations (paper §6).")
    Term.(
      const run $ backend_arg $ level_arg $ path_arg $ seed_arg $ pool_arg
      $ remote_arg $ cluster_arg $ reps_arg $ ops_arg $ fanout_arg
      $ trace_arg $ metrics_arg $ replicas_arg $ durability_arg $ json_arg
      $ serve_arg $ connect_arg $ cc_arg)

(* --- query --- *)

let cmd_query =
  let run backend level path seed pool_pages explain q =
    with_backend backend ~path ~pool_pages ~remote:false
      { act =
          (fun (type a) (module B : Backend.S with type t = a) (b : a) ->
            ignore
              (generate_into (module B) b ~level ~seed ~cluster:true ~fanout:5);
            if explain then
              print_endline (Query_bridge.explain (module B) b ~doc:1 q)
            else
              print_endline
                (Hyper_query.Engine.result_to_string
                   (Query_bridge.query (module B) b ~doc:1 q))) }
  in
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"e.g. \"select where hundred between 10 and 19 limit 5\".")
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the plan instead.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run an ad-hoc query (R12) against a fresh database.")
    Term.(
      const run $ backend_arg $ level_arg $ path_arg $ seed_arg $ pool_arg
      $ explain_arg $ query_arg)

(* --- multiuser --- *)

let cmd_multiuser =
  let run level seed users txns hot mode_s readers =
    let mode = cc_of_string mode_s in
    let module B = Hyper_memdb.Memdb in
    let b = B.create () in
    let module G = Generator.Make (B) in
    let layout, _ = G.generate b ~doc:1 ~leaf_level:level ~seed in
    let module M = Multiuser.Make (B) in
    let r =
      M.run ~readers b layout ~mode ~users ~txns_per_user:txns
        ~hot_fraction:hot ~seed
    in
    print_multiuser r
  in
  let users_arg =
    Arg.(value & opt int 4 & info [ "users" ] ~docv:"N" ~doc:"User threads.")
  in
  let txns_arg =
    Arg.(value & opt int 100 & info [ "txns" ] ~docv:"N"
           ~doc:"Transactions per user.")
  in
  let hot_arg =
    Arg.(value & opt float 0.3 & info [ "hot" ] ~docv:"F"
           ~doc:"Fraction of transactions on the shared hot subtree.")
  in
  let mode_arg =
    Arg.(value & opt string "occ" & info [ "mode"; "cc" ] ~docv:"MODE"
           ~doc:"Concurrency control: occ, 2pl or mvcc.")
  in
  let readers_arg =
    Arg.(value & opt int 0 & info [ "readers" ] ~docv:"N"
           ~doc:"Concurrent whole-structure reader threads (MVCC readers \
                 hold no locks; 2PL readers take shared locks).")
  in
  Cmd.v
    (Cmd.info "multiuser"
       ~doc:"Multi-user update experiment (paper §7) on the memory backend.")
    Term.(
      const run $ level_arg $ seed_arg $ users_arg $ txns_arg $ hot_arg
      $ mode_arg $ readers_arg)

(* --- bench --- *)

(* The committed benchmark trajectory (BENCH_*.json): a fixed diskdb
   workload measured two ways —

   - per-operation cold/warm ms/node plus minor-heap words allocated
     per node returned (the zero-copy read path shows up here), and
   - a durable multi-user leg on a real file: committed txns against
     real WAL fsyncs (group commit shows up here as fsyncs/commit < 1).

   `--baseline` re-measures with the pre-group-commit, pre-zero-copy
   behaviour ({!Hyper_storage.Storage_tuning.legacy_copies} plus no
   group scheduler) so the trajectory can be regenerated from one
   binary. *)

let bench_group_config =
  { Hyper_storage.Group_commit.max_batch = 8; max_hold_ns = 5e6 }

let bench_operations ~path ~level ~seed ~reps ~ops =
  let module D = Hyper_diskdb.Diskdb in
  remove_store path;
  let db = D.open_db (D.default_config ~path) in
  Fun.protect
    ~finally:(fun () -> D.close db)
    (fun () ->
      let layout, _ =
        generate_into (module D) db ~level ~seed ~cluster:true ~fanout:5
      in
      let module P = Protocol.Make (D) in
      let config = { Protocol.default_config with reps } in
      List.map
        (fun id ->
          let w0 = Gc.minor_words () in
          let m = P.run_op ~config db layout id in
          let words = Gc.minor_words () -. w0 in
          let nodes = m.Protocol.nodes_cold + m.Protocol.nodes_warm in
          (m, if nodes = 0 then 0.0 else words /. float_of_int nodes))
        ops)

let bench_multiuser ~path ~level ~seed ~users ~txns ~baseline =
  let module D = Hyper_diskdb.Diskdb in
  let module E = Hyper_storage.Engine in
  remove_store path;
  let config =
    { (D.default_config ~path) with
      D.durable_sync = true;
      group_commit = (if baseline then None else Some bench_group_config) }
  in
  let db = D.open_db config in
  Fun.protect
    ~finally:(fun () -> D.close db)
    (fun () ->
      let layout, _ =
        generate_into (module D) db ~level ~seed ~cluster:true ~fanout:5
      in
      let engine = D.engine db in
      let syncs0 = E.wal_sync_count engine in
      (* Generation also committed through the scheduler — subtract its
         groups so the leg reports the multiuser run alone. *)
      let groups0 = E.group_commit_stats engine in
      (* The group-commit seam: commit point inside the db mutex, the
         durability wait outside it, so concurrent committers coalesce
         into one fsync barrier. *)
      let commit =
        if baseline then None
        else
          Some
            (fun () ->
              let tk = E.commit_ticket engine in
              fun () -> E.await_durable engine tk)
      in
      let module M = Multiuser.Make (D) in
      let r =
        M.run ?commit db layout ~mode:Multiuser.Two_phase_locking ~users
          ~txns_per_user:txns ~hot_fraction:0.0 ~seed
      in
      let fsyncs = E.wal_sync_count engine - syncs0 in
      let groups =
        match (E.group_commit_stats engine, groups0) with
        | Some (g, m), Some (g0, m0) -> Some (g - g0, m - m0)
        | g, _ -> g
      in
      (r, fsyncs, groups))

(* The T7 concurrency-control matrix: the same memdb update workload
   under 2PL, OCC and MVCC, each with and without concurrent
   whole-structure readers.  The interesting cell is writers-under-
   readers: 2PL writers stall on the sweep's shared locks, MVCC writers
   never see the (lock-free, snapshot-pinned) readers at all. *)
let bench_t7_matrix ~level ~seed ~users ~txns =
  let module B = Hyper_memdb.Memdb in
  let module M = Multiuser.Make (B) in
  List.concat_map
    (fun mode ->
      List.map
        (fun readers ->
          let b = B.create () in
          let module G = Generator.Make (B) in
          let layout, _ = G.generate b ~doc:1 ~leaf_level:level ~seed in
          M.run ~readers b layout ~mode ~users ~txns_per_user:txns
            ~hot_fraction:0.5 ~seed)
        [ 0; 2 ])
    [ Multiuser.Two_phase_locking; Multiuser.Optimistic; Multiuser.Mvcc ]

let bench_json ~mode ~level ~seed ~reps ~users ~txns ~op_results
    ~(mu : Multiuser.result) ~fsyncs ~groups ~matrix =
  let module J = Hyper_util.Sjson in
  let ops_json =
    J.List
      (List.map
         (fun (m, alloc_per_node) ->
           J.Obj
             [ ("op", J.Str m.Protocol.op);
               ("cold_ms_per_node", J.Num (Protocol.cold_ms_per_node m));
               ("warm_ms_per_node", J.Num (Protocol.warm_ms_per_node m));
               ("alloc_words_per_node", J.Num alloc_per_node) ])
         op_results)
  in
  let group_fields =
    match groups with
    | None -> [ ("group_commit", J.Bool false) ]
    | Some (g, members) ->
      [ ("group_commit", J.Bool true);
        ("groups", J.Num (float_of_int g));
        ("group_members", J.Num (float_of_int members));
        ( "mean_group_size",
          J.Num
            (if g = 0 then 0.0 else float_of_int members /. float_of_int g) )
      ]
  in
  J.Obj
    [ ( "meta",
        J.Obj
          [ ("schema", J.Num 1.0);
            ("mode", J.Str mode);
            ("backend", J.Str "diskdb");
            ("level", J.Num (float_of_int level));
            ("reps", J.Num (float_of_int reps));
            ("seed", J.Num (Int64.to_float seed));
            ("users", J.Num (float_of_int users));
            ("txns_per_user", J.Num (float_of_int txns)) ] );
      ("operations", ops_json);
      ( "multiuser",
        J.Obj
          ([ ("mode", J.Str (Multiuser.mode_to_string mu.Multiuser.mode));
             ("committed", J.Num (float_of_int mu.Multiuser.committed));
             ("aborted", J.Num (float_of_int mu.Multiuser.aborted));
             ("wal_fsyncs", J.Num (float_of_int fsyncs));
             ( "fsyncs_per_commit",
               J.Num
                 (if mu.Multiuser.committed = 0 then 0.0
                  else float_of_int fsyncs /. float_of_int mu.Multiuser.committed)
             );
             ("throughput_tps", J.Num mu.Multiuser.throughput_tps) ]
          @ group_fields) );
      ( "t7_matrix",
        J.List
          (List.map
             (fun (r : Multiuser.result) ->
               J.Obj
                 [ ( "cc",
                     J.Str
                       (Printf.sprintf "%s/r%d"
                          (Multiuser.mode_to_string r.Multiuser.mode)
                          r.Multiuser.readers) );
                   ("committed", J.Num (float_of_int r.Multiuser.committed));
                   ("aborted", J.Num (float_of_int r.Multiuser.aborted));
                   ("readers", J.Num (float_of_int r.Multiuser.readers));
                   ( "reader_sweeps",
                     J.Num (float_of_int r.Multiuser.reader_sweeps) );
                   ( "reader_aborts",
                     J.Num (float_of_int r.Multiuser.reader_aborts) );
                   ("throughput_tps", J.Num r.Multiuser.throughput_tps) ])
             matrix) ) ]

let cmd_bench =
  let run level seed reps ops users txns baseline json =
    let module Tuning = Hyper_storage.Storage_tuning in
    Tuning.legacy_copies := baseline;
    Fun.protect
      ~finally:(fun () -> Tuning.legacy_copies := false)
      (fun () ->
        let path = Filename.temp_file "hyperbench_bench" ".db" in
        Fun.protect
          ~finally:(fun () -> remove_store path)
          (fun () ->
            let ops = if ops = [] then [ "01"; "05A"; "10"; "16" ] else ops in
            let op_results = bench_operations ~path ~level ~seed ~reps ~ops in
            let mu, fsyncs, groups =
              bench_multiuser ~path ~level ~seed ~users ~txns ~baseline
            in
            let matrix = bench_t7_matrix ~level ~seed ~users:4 ~txns:25 in
            let mode = if baseline then "baseline" else "current" in
            let doc =
              bench_json ~mode ~level ~seed ~reps ~users ~txns ~op_results ~mu
                ~fsyncs ~groups ~matrix
            in
            let s = Hyper_util.Sjson.to_string doc in
            (match json with
            | None -> print_string s
            | Some file ->
              write_file file s;
              Printf.printf "bench (%s) -> %s\n" mode file);
            Printf.printf
              "multiuser: committed=%d fsyncs=%d (%.3f/commit)%s\n"
              mu.Multiuser.committed fsyncs
              (if mu.Multiuser.committed = 0 then 0.0
               else float_of_int fsyncs /. float_of_int mu.Multiuser.committed)
              (match groups with
              | None -> ""
              | Some (g, members) ->
                Printf.sprintf " groups=%d members=%d" g members)))
  in
  let ops_arg =
    Arg.(value & opt (list string) [] & info [ "ops" ] ~docv:"IDS"
           ~doc:"Op ids to measure; default 01,05A,10,16.")
  in
  let users_arg =
    Arg.(value & opt int 8 & info [ "users" ] ~docv:"N"
           ~doc:"User threads for the durable multiuser leg.")
  in
  let txns_arg =
    Arg.(value & opt int 25 & info [ "txns" ] ~docv:"N"
           ~doc:"Transactions per user for the durable multiuser leg.")
  in
  let baseline_arg =
    Arg.(value & flag & info [ "baseline" ]
           ~doc:"Measure with legacy copies and without group commit — \
                 the pre-optimisation reference point of the committed \
                 trajectory.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the result to $(docv) instead of stdout.")
  in
  let reps_small =
    Arg.(value & opt int 5 & info [ "reps" ] ~docv:"N"
           ~doc:"Repetitions per operation sequence.")
  in
  let level_small =
    Arg.(value & opt int 3 & info [ "l"; "level" ] ~docv:"LEVEL"
           ~doc:"Leaf level of the test database.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure the committed benchmark trajectory (operations + durable \
          multiuser leg) and emit JSON for $(b,hyperbench diff).")
    Term.(
      const run $ level_small $ seed_arg $ reps_small $ ops_arg $ users_arg
      $ txns_arg $ baseline_arg $ json_arg)

(* --- diff --- *)

(* The diff is generic over metrics: every numeric field shared by a
   matched pair of objects is compared.  Polarity comes from the field
   name — throughput-style metrics regress when they drop, everything
   else (latencies, per-node costs, error counts) when it rises.
   Identity, configuration and raw-count fields are not metrics. *)
let diff_skip_fields =
  [ "op"; "clients"; "requests"; "wall_s"; "schema"; "level"; "reps";
    "seed"; "users"; "txns_per_user"; "fanout"; "write_fraction";
    "think_ms"; "committed"; "aborted"; "groups"; "group_members";
    "mean_group_size"; "wal_fsyncs"; "readers"; "reader_sweeps";
    "reader_aborts" ]

let diff_higher_is_better name =
  let prefixed p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  let suffixed s =
    let ln = String.length name and ls = String.length s in
    ln >= ls && String.sub name (ln - ls) ls = s
  in
  prefixed "throughput" || suffixed "_rps" || suffixed "_tps"

let cmd_diff =
  let run file_a file_b threshold warn_only =
    let module J = Hyper_util.Sjson in
    let load f =
      let ic = open_in f in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      try J.of_string s
      with J.Parse_error msg -> failwith (Printf.sprintf "%s: %s" f msg)
    in
    let a = load file_a and b = load file_b in
    let regressions = ref 0 in
    let compare_metric ~what ~higher_better old_v new_v =
      match (old_v, new_v) with
      | Some o, Some n ->
        let delta = if o = 0.0 then 0.0 else (n -. o) /. o *. 100.0 in
        let regressed =
          o > 0.0
          && (if higher_better then n < o *. (1.0 -. threshold)
              else n > o *. (1.0 +. threshold))
        in
        if regressed then incr regressions;
        Printf.printf "%-44s %12.4f -> %12.4f  %+7.1f%%%s\n" what o n delta
          (if regressed then "  REGRESSION" else "")
      | _ -> Printf.printf "%-44s (missing; skipped)\n" what
    in
    (* Numeric fields of a matched pair that count as metrics. *)
    let metric_fields obj =
      match obj with
      | J.Obj fields ->
        List.filter_map
          (fun (k, v) ->
            match J.to_num v with
            | Some f when not (List.mem k diff_skip_fields) -> Some (k, f)
            | _ -> None)
          fields
      | _ -> []
    in
    let compare_objects ~label obj_a obj_b =
      match obj_b with
      | None -> Printf.printf "%-44s (missing in NEW; skipped)\n" label
      | Some obj_b ->
        List.iter
          (fun (k, o) ->
            compare_metric
              ~what:(Printf.sprintf "%s %s" label k)
              ~higher_better:(diff_higher_is_better k)
              (Some o)
              (Option.bind (J.member k obj_b) J.to_num))
          (metric_fields obj_a)
    in
    (* A section is a list of objects matched by an identity field.
       Both `hyperbench bench` ("operations" keyed by "op") and
       hyperload ("points" keyed by "clients") fit the shape. *)
    let section ~name ~key =
      let rows doc =
        match Option.bind (J.member name doc) J.to_list with
        | Some l -> l
        | None -> []
      in
      let ident row =
        match J.member key row with
        | Some (J.Str s) -> Some s
        | Some (J.Num f) -> Some (Printf.sprintf "%g" f)
        | _ -> None
      in
      let find id = List.find_opt (fun r -> ident r = Some id) (rows b) in
      List.iter
        (fun row_a ->
          match ident row_a with
          | Some id ->
            compare_objects
              ~label:(Printf.sprintf "%s %s" name id)
              row_a (find id)
          | None -> ())
        (rows a)
    in
    section ~name:"operations" ~key:"op";
    section ~name:"points" ~key:"clients";
    section ~name:"t7_matrix" ~key:"cc";
    (match J.member "multiuser" a with
    | Some mu_a ->
      compare_objects ~label:"multiuser" mu_a (J.member "multiuser" b)
    | None -> ());
    if !regressions > 0 then begin
      Printf.printf "%d metric(s) regressed more than %.0f%%\n" !regressions
        (threshold *. 100.0);
      if not warn_only then exit 1
    end
    else print_endline "no regressions"
  in
  let file_a =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let file_b =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let threshold_arg =
    Arg.(value & opt float 0.10 & info [ "threshold" ] ~docv:"F"
           ~doc:"Relative regression tolerance (0.10 = 10%).")
  in
  let warn_arg =
    Arg.(value & flag & info [ "warn-only" ]
           ~doc:"Report regressions but exit 0 (CI on noisy runners).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two benchmark JSON files ($(b,hyperbench bench) or \
          $(b,hyperload)); every shared numeric metric is compared, \
          throughput-style fields as higher-is-better.  Exit non-zero when \
          any metric regresses past the threshold.")
    Term.(const run $ file_a $ file_b $ threshold_arg $ warn_arg)

(* --- gc --- *)

let cmd_gc =
  let run backend path pool_pages =
    match backend with
    | Mem ->
      print_endline
        "memdb objects are reclaimed by the OCaml runtime; nothing to do"
    | Disk ->
      let module D = Hyper_diskdb.Diskdb in
      let b = D.open_db { (D.default_config ~path) with D.pool_pages } in
      let freed = D.collect_garbage b in
      Printf.printf "reclaimed %d orphaned page(s); file %d KB\n" freed
        (D.file_bytes b / 1024);
      D.close b
    | Rel ->
      let module R = Hyper_reldb.Reldb in
      let b = R.open_db { (R.default_config ~path) with R.pool_pages } in
      let freed = R.collect_garbage b in
      Printf.printf "reclaimed %d orphaned page(s); file %d KB\n" freed
        (R.file_bytes b / 1024);
      R.close b
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Collect unreachable pages (R10: garbage collection of \
          non-referenced objects).")
    Term.(const run $ backend_arg $ path_arg $ pool_arg)

(* --- info --- *)

let cmd_info =
  let run level =
    Printf.printf "HyperModel test database arithmetic (paper §5.2)\n\n";
    List.iter
      (fun l ->
        Printf.printf
          "level %d: %6d nodes (%d forms, %d texts at the leaves), \
           model size %.1f MB, level-3 closure %d nodes\n"
          l
          (Schema.total_nodes ~leaf_level:l)
          (Layout.form_count (layout_of l))
          (Layout.text_count (layout_of l))
          (float_of_int (Schema.model_db_bytes ~leaf_level:l) /. 1e6)
          (Schema.closure_size ~leaf_level:l))
      [ 4; 5; 6; level ]
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the paper's database-size arithmetic.")
    Term.(const run $ level_arg)

let () =
  let doc = "The HyperModel benchmark (Berre, Anderson, Mallison 1990)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "hyperbench" ~doc)
          [ cmd_generate; cmd_verify; cmd_run; cmd_query; cmd_multiuser;
            cmd_bench; cmd_diff; cmd_gc; cmd_info ]))

(* hyperfuzz — differential oracle fuzzer driver.

   Generates seed-driven op traces (Hyper_check.Gen), replays them on
   memdb (oracle) and the disk-backed subjects, shrinks any divergence to
   a minimal repro and saves it as a replayable trace file.  A second
   mode interleaves faulty-VFS crash points with the trace and checks
   recovery against the oracle's acked-commit prefix.  Exit status 1 on
   any divergence — CI fails the job and uploads the repro artifact. *)

open Cmdliner
module Check = Hyper_check.Differential
module Fail = Hyper_check.Failover
module Repl = Hyper_repl.Repl
module Trace = Hyper_core.Trace

let say fmt = Printf.printf (fmt ^^ "\n%!")

let parse_subjects s =
  let names = String.split_on_char ',' s in
  let kinds =
    List.map
      (fun n ->
        match Check.kind_of_name (String.trim n) with
        | Some k -> k
        | None -> failwith (Printf.sprintf "unknown subject %S" n))
      names
  in
  if kinds = [] then failwith "empty subject list";
  kinds

let repro_path ~dir ~seed = Filename.concat dir (Printf.sprintf "fuzz-repro-%Ld.trace" seed)

let report_finding ~dir (f : Check.finding) =
  let { Check.seed; gen_seed; level; _ } = f.f_case in
  let path = repro_path ~dir ~seed in
  Check.save_repro ~path ~gen_seed ~level f.f_minimal;
  say "DIVERGENCE on %s (seed %Ld, %d-op minimal repro):" f.f_backend seed
    (List.length f.f_minimal);
  Format.printf "%a@." Check.pp_divergence f.f_divergence;
  say "replay: hyperfuzz replay %s" path

(* Stratify n crash points over the write-count space of the trace:
   evenly spaced, never 0. *)
let crash_points ~writes n =
  if writes <= 0 || n <= 0 then []
  else
    List.init n (fun i ->
        let k = 1 + (i * writes / n) in
        min k writes)
    |> List.sort_uniq compare

let check_crashes ~gen_seed ~level ~npoints ~seed ops =
  if npoints = 0 then true
  else begin
    let writes = Check.crash_writes ~gen_seed ~level ops in
    List.for_all
      (fun k ->
        match Check.crash_check ~gen_seed ~level ~crash_after:k ops with
        | Check.Crash_clean _ -> true
        | Check.Crash_diverged { crash_step; acked; in_flight; divergence } ->
            say
              "CRASH DIVERGENCE (seed %Ld, crash after %d writes, step %d, \
               %d acked commits%s):"
              seed k crash_step acked
              (if in_flight then ", commit in flight" else "");
            Format.printf "%a@." Check.pp_divergence divergence;
            false)
      (crash_points ~writes npoints)
  end

let run_fuzz seed traces steps level budget_s subjects npoints dir =
  let subjects = parse_subjects subjects in
  let gen_seed = 42L in
  (* Monotonic budget: a wall-clock step must not end (or extend) the
     fuzzing window. *)
  let now_s () = Int64.to_float (Hyper_util.Mtime_stub.now_ns ()) /. 1e9 in
  let deadline = if budget_s > 0.0 then Some (now_s () +. budget_s) else None in
  let expired () =
    match deadline with Some t -> now_s () > t | None -> false
  in
  let failures = ref 0 in
  let ran = ref 0 in
  (try
     for i = 0 to traces - 1 do
       if expired () then raise Exit;
       let seed = Int64.add seed (Int64.of_int i) in
       let case = { Check.seed; gen_seed; level; steps; subjects } in
       incr ran;
       (match Check.run_case case with
       | Some f ->
           report_finding ~dir f;
           incr failures
       | None -> ());
       if (not (expired ())) && not (check_crashes ~gen_seed ~level ~npoints ~seed
              (Hyper_check.Gen.trace ~seed ~gen_seed ~level ~steps))
       then incr failures
     done
   with Exit -> ());
  say "fuzz: %d trace(s), %d divergence(s) [seed base %Ld, level %d, steps %d]"
    !ran !failures seed level steps;
  if !failures > 0 then exit 1

let run_replay path subjects =
  let subjects = parse_subjects subjects in
  let gen_seed, level, ops = Check.load_repro ~path in
  let oracle, layout = Check.oracle_harness ~gen_seed ~level in
  let failures = ref 0 in
  List.iter
    (fun kind ->
      let subject = Check.subject_harness ~gen_seed ~level kind in
      match Check.check ~layout ~oracle ~subject ops with
      | None -> say "%s: agrees (%d ops)" subject.Check.h_name (List.length ops)
      | Some d ->
          incr failures;
          say "%s: diverges" subject.Check.h_name;
          Format.printf "%a@." Check.pp_divergence d)
    subjects;
  if !failures > 0 then exit 1

(* --------------------------------------------------------------- *)
(* net mode: the same differential traces, but the subject sits behind
   the real socket stack (wire codec + server sessions + client), and
   crash interleavings kill the server mid-request: the acked prefix
   must survive recovery and be visible through a fresh wire client. *)

let run_net seed traces steps level budget_s npoints dir =
  let module NC = Hyper_check.Netcheck in
  let gen_seed = 42L in
  let now_s () = Int64.to_float (Hyper_util.Mtime_stub.now_ns ()) /. 1e9 in
  let deadline = if budget_s > 0.0 then Some (now_s () +. budget_s) else None in
  let expired () =
    match deadline with Some t -> now_s () > t | None -> false
  in
  let failures = ref 0 in
  let ran = ref 0 in
  (try
     for i = 0 to traces - 1 do
       if expired () then raise Exit;
       let seed = Int64.add seed (Int64.of_int i) in
       let ops = Hyper_check.Gen.trace ~seed ~gen_seed ~level ~steps in
       incr ran;
       (match NC.check ~gen_seed ~level ops with
       | None -> ()
       | Some d ->
           incr failures;
           let path = repro_path ~dir ~seed in
           Check.save_repro ~path ~gen_seed ~level ops;
           say "WIRE DIVERGENCE (seed %Ld, %d ops):" seed (List.length ops);
           Format.printf "%a@." Check.pp_divergence d;
           say "replay: hyperfuzz replay %s" path);
       if (not (expired ())) && npoints > 0 then begin
         let writes = Check.crash_writes ~gen_seed ~level ops in
         List.iter
           (fun k ->
             match NC.crash_check ~gen_seed ~level ~crash_after:k ops with
             | Check.Crash_clean _ -> ()
             | Check.Crash_diverged { crash_step; acked; in_flight; divergence }
               ->
                 incr failures;
                 say
                   "WIRE CRASH DIVERGENCE (seed %Ld, crash after %d writes, \
                    step %d, %d acked commits%s):"
                   seed k crash_step acked
                   (if in_flight then ", commit in flight" else "");
                 Format.printf "%a@." Check.pp_divergence divergence)
           (crash_points ~writes npoints)
       end
     done
   with Exit -> ());
  say
    "net: %d trace(s), %d divergence(s) [seed base %Ld, level %d, steps %d, \
     %d crash point(s)/trace]"
    !ran !failures seed level steps npoints;
  if !failures > 0 then exit 1

(* --------------------------------------------------------------- *)
(* mvcc mode: snapshot-consistency fuzzing.  Each case hammers the
   version store with concurrent writers + pinned-snapshot readers
   (store check), then replays a generated trace on memdb cloning
   Backend snapshots between transactions and diffs each view against
   an oracle replay of its commit prefix (backend check). *)

let run_mvcc seed traces steps level budget_s dir =
  let module MC = Hyper_check.Mvcc_check in
  let gen_seed = 42L in
  let now_s () = Int64.to_float (Hyper_util.Mtime_stub.now_ns ()) /. 1e9 in
  let deadline = if budget_s > 0.0 then Some (now_s () +. budget_s) else None in
  let expired () =
    match deadline with Some t -> now_s () > t | None -> false
  in
  let failures = ref 0 in
  let ran = ref 0 in
  (try
     for i = 0 to traces - 1 do
       if expired () then raise Exit;
       let seed = Int64.add seed (Int64.of_int i) in
       incr ran;
       (* Vary the thread/key shape with the case index so different
          contention regimes (few hot keys … wide key space) are all
          visited. *)
       let writers = 2 + (i mod 3) in
       let readers = 1 + (i mod 2) in
       let keys = [| 4; 16; 64 |].(i mod 3) in
       (match
          MC.store_check ~seed ~writers ~readers ~keys ~txns_per_writer:50
        with
       | None -> ()
       | Some v ->
           incr failures;
           say "MVCC STORE VIOLATION (seed %Ld, %d writers, %d readers, %d \
                keys):" seed writers readers keys;
           Format.printf "%a@." MC.pp_violation v);
       if not (expired ()) then
         match MC.backend_check ~seed ~gen_seed ~level ~steps with
         | None -> ()
         | Some v ->
             incr failures;
             let path = repro_path ~dir ~seed in
             Check.save_repro ~path ~gen_seed ~level
               (Hyper_check.Gen.trace ~seed ~gen_seed ~level ~steps);
             say "MVCC SNAPSHOT VIOLATION (seed %Ld):" seed;
             Format.printf "%a@." MC.pp_violation v;
             say "trace saved: %s" path
     done
   with Exit -> ());
  say "mvcc: %d case(s), %d violation(s) [seed base %Ld, level %d, steps %d]"
    !ran !failures seed level steps;
  if !failures > 0 then exit 1

(* --------------------------------------------------------------- *)
(* failover mode: replicated primary, crash/partition/promote, diff
   the survivor against the oracle replay of its committed prefix. *)

(* Deterministic case schedule: cycle the ack policies, stratify the
   primary crash point, alternate link faults, and periodically throw in
   a replica kill/restart and a tiny retention window (the latter forces
   the snapshot catch-up path). *)
let failover_case ~base ~steps ~level ~replicas i =
  let seed = Int64.add base (Int64.of_int i) in
  let policy =
    match i mod 3 with 0 -> Repl.Async | 1 -> Repl.Sync_one | _ -> Repl.Quorum
  in
  let crash_after = [| 0; 40; 150; 600 |].(i / 3 mod 4) in
  let kill =
    if i mod 5 = 3 then Some (i mod replicas, steps / 4) else None
  in
  let restart =
    if kill <> None && i mod 2 = 1 then Some (steps * 3 / 4) else None
  in
  let retain, snapshot_lag = if i mod 7 = 2 then (8, 16) else (4096, 1024) in
  { Fail.fo_seed = seed; fo_gen_seed = 42L; fo_level = level;
    fo_steps = steps; fo_policy = policy; fo_replicas = replicas;
    fo_crash_after = crash_after; fo_net_faults = i mod 2 = 0;
    fo_kill_at = kill; fo_restart_at = restart; fo_retain = retain;
    fo_snapshot_lag = snapshot_lag }

let failover_repro_path ~dir ~seed =
  Filename.concat dir (Printf.sprintf "failover-repro-%Ld.repro" seed)

let run_failover seed cases steps level budget_s replicas dir replay =
  match replay with
  | Some path ->
    let c = Fail.load_repro ~path in
    let r = Fail.failover_check c in
    Format.printf "%a@." Fail.pp_report r;
    if not (Fail.ok r) then exit 1
  | None ->
    let now_s () = Int64.to_float (Hyper_util.Mtime_stub.now_ns ()) /. 1e9 in
    let deadline =
      if budget_s > 0.0 then Some (now_s () +. budget_s) else None
    in
    let expired () =
      match deadline with Some t -> now_s () > t | None -> false
    in
    let failures = ref 0 in
    let ran = ref 0 in
    let crashed = ref 0 in
    let snapshots = ref 0 in
    let replays = ref 0 in
    (try
       for i = 0 to cases - 1 do
         if expired () then raise Exit;
         let c = failover_case ~base:seed ~steps ~level ~replicas i in
         incr ran;
         let r = Fail.failover_check c in
         if r.Fail.r_crashed then incr crashed;
         snapshots := !snapshots + r.Fail.r_snapshots;
         replays := !replays + r.Fail.r_replays;
         if not (Fail.ok r) then begin
           incr failures;
           let path = failover_repro_path ~dir ~seed:c.Fail.fo_seed in
           Fail.save_repro ~path c;
           say "FAILOVER VIOLATION:";
           Format.printf "%a@." Fail.pp_report r;
           say "replay: hyperfuzz failover --replay %s" path
         end
       done
     with Exit -> ());
    say
      "failover: %d case(s), %d violation(s) [%d primary crash(es), %d \
       snapshot / %d replay catch-up(s); seed base %Ld, level %d, steps %d, \
       %d replicas]"
      !ran !failures !crashed !snapshots !replays seed level steps replicas;
    if !failures > 0 then exit 1

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"N" ~doc:"Base trace seed; trace $(i,i) uses seed+$(i,i).")

let traces_arg =
  Arg.(value & opt int 10_000 & info [ "traces" ] ~docv:"N"
         ~doc:"Maximum number of traces (the budget usually stops first).")

let steps_arg =
  Arg.(value & opt int 120 & info [ "steps" ] ~docv:"N" ~doc:"Ops per trace.")

let level_arg =
  Arg.(value & opt int 3 & info [ "level" ] ~docv:"L" ~doc:"Leaf level of the generated database.")

let budget_arg =
  Arg.(value & opt float 30.0 & info [ "budget-s" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget; 0 disables.")

let subjects_arg =
  Arg.(value & opt string "diskdb,diskdb-remote,reldb"
       & info [ "subjects" ] ~docv:"LIST"
           ~doc:"Comma-separated subjects: diskdb, diskdb-remote, reldb.")

let crash_points_arg =
  Arg.(value & opt int 0 & info [ "crash-points" ] ~docv:"N"
         ~doc:"Crash-point interleavings per trace (0 disables crash mode).")

let dir_arg =
  Arg.(value & opt string "." & info [ "repro-dir" ] ~docv:"DIR"
         ~doc:"Where to save shrunk repro trace files.")

let trace_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Repro trace file.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Fuzz backends against the memdb oracle")
    Term.(const run_fuzz $ seed_arg $ traces_arg $ steps_arg $ level_arg
          $ budget_arg $ subjects_arg $ crash_points_arg $ dir_arg)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a saved repro trace against the subjects")
    Term.(const run_replay $ trace_arg $ subjects_arg)

let net_cmd =
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Fuzz the socket stack: differential traces through a wire \
          client + server, plus server-crash acked-prefix recovery checks")
    Term.(const run_net $ seed_arg $ traces_arg $ steps_arg $ level_arg
          $ budget_arg $ crash_points_arg $ dir_arg)

let mvcc_cmd =
  Cmd.v
    (Cmd.info "mvcc"
       ~doc:
         "Fuzz snapshot isolation: concurrent writers vs pinned snapshot \
          readers over the version store, plus memdb snapshot views diffed \
          against oracle replays of their commit prefix")
    Term.(const run_mvcc $ seed_arg $ traces_arg $ steps_arg $ level_arg
          $ budget_arg $ dir_arg)

let cases_arg =
  Arg.(value & opt int 10_000 & info [ "cases" ] ~docv:"N"
         ~doc:"Maximum number of failover cases (the budget usually stops \
               first).")

let fo_steps_arg =
  Arg.(value & opt int 60 & info [ "steps" ] ~docv:"N" ~doc:"Ops per case.")

let replicas_arg =
  Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"N"
         ~doc:"Replicas behind the primary.")

let fo_replay_arg =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
         ~doc:"Re-run a single saved failover repro instead of fuzzing.")

let failover_cmd =
  Cmd.v
    (Cmd.info "failover"
       ~doc:"Crash-fuzz the replication layer: replicate, fail, promote, \
             diff the survivor")
    Term.(const run_failover $ seed_arg $ cases_arg $ fo_steps_arg
          $ level_arg $ budget_arg $ replicas_arg $ dir_arg $ fo_replay_arg)

let () =
  let doc = "differential oracle fuzzer for the HyperModel backends" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "hyperfuzz" ~doc)
          [ run_cmd; replay_cmd; net_cmd; mvcc_cmd; failover_cmd ]))

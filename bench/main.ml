(* The HyperModel benchmark harness.

   Regenerates every artefact the paper commits to (see DESIGN.md §4):

     F1  schema verification          F2  1-N tree population
     F3  M-N structure statistics     F4  reference-graph statistics
     T1  database sizes (§5.2)        T2  creation times (§5.3)
     T3  the 20-operation matrix (§6, cold/warm × levels)
     T4  cross-backend comparison     T5  clustering & pool ablations
     T6  extension operations (§6.8)  T7  multi-user experiments (§7)

   plus a Bechamel micro-benchmark per table's kernel operation.

   Usage: dune exec bench/main.exe [-- --levels 4,5 --reps 20 --quick
   --no-bechamel --skip T3,T4] *)

open Hyper_core
module Mem = Hyper_memdb.Memdb
module Dsk = Hyper_diskdb.Diskdb
module Rel = Hyper_reldb.Reldb
module Table = Hyper_util.Table
module Prng = Hyper_util.Prng
module Obs = Hyper_obs.Obs

module GenM = Generator.Make (Mem)
module GenD = Generator.Make (Dsk)
module GenR = Generator.Make (Rel)
module ProtoM = Protocol.Make (Mem)
module ProtoD = Protocol.Make (Dsk)
module ProtoR = Protocol.Make (Rel)
module VerM = Verify.Make (Mem)
module VerD = Verify.Make (Dsk)
module VerR = Verify.Make (Rel)
module OpsM = Ops.Make (Mem)
module OpsD = Ops.Make (Dsk)
module OpsR = Ops.Make (Rel)
module ExtM = Extensions.Make (Mem)
module MultiM = Multiuser.Make (Mem)

(* --- configuration --- *)

type cfg = {
  mutable levels : int list;
  mutable reps : int;
  mutable seed : int64;
  mutable bechamel : bool;
  mutable skip : string list;
  mutable json : string option;
  mutable metrics : string option;
}

let cfg =
  { levels = [ 4; 5; 6 ]; reps = 50; seed = 42L; bechamel = true; skip = [];
    json = None; metrics = None }

let parse_args () =
  let set_levels s =
    cfg.levels <- List.map int_of_string (String.split_on_char ',' s)
  in
  let spec =
    [ ("--levels", Arg.String set_levels, "LIST leaf levels (default 4,5,6)");
      ("--reps", Arg.Int (fun n -> cfg.reps <- n), "N repetitions (default 50)");
      ("--seed", Arg.String (fun s -> cfg.seed <- Int64.of_string s), "S seed");
      ("--quick", Arg.Unit (fun () -> cfg.levels <- [ 4 ]; cfg.reps <- 10),
       " small run (level 4, 10 reps)");
      ("--no-bechamel", Arg.Unit (fun () -> cfg.bechamel <- false),
       " skip the Bechamel micro-benchmarks");
      ("--skip", Arg.String (fun s -> cfg.skip <- String.split_on_char ',' s),
       "LIST skip experiment ids (e.g. T3,T7)");
      ("--json", Arg.String (fun s -> cfg.json <- Some s),
       "FILE write machine-readable results (see DESIGN.md §10)");
      ("--metrics", Arg.String (fun s -> cfg.metrics <- Some s),
       "FILE write a Prometheus-style metrics dump (see DESIGN.md §13)") ]
  in
  Arg.parse spec
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "HyperModel benchmark harness"

let skipped id = List.mem id cfg.skip

let banner id title =
  Printf.printf "\n================ %s — %s ================\n\n" id title

(* --- shared database instances --- *)

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hyperbench_%d_%s" (Unix.getpid ()) name)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".wal"; path ^ ".sum" ]

(* Memoized per-level instances; update operations in the protocol are
   self-inverse over an even rep count, so reuse across sections is
   sound. *)
let mem_cache : (int, Mem.t * Layout.t * Generator.timings) Hashtbl.t =
  Hashtbl.create 4

let mem_db level =
  match Hashtbl.find_opt mem_cache level with
  | Some entry -> entry
  | None ->
    let b = Mem.create () in
    let layout, timings = GenM.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    Hashtbl.add mem_cache level (b, layout, timings);
    (b, layout, timings)

let disk_cache : (int, Dsk.t * Layout.t * Generator.timings) Hashtbl.t =
  Hashtbl.create 4

let disk_db level =
  match Hashtbl.find_opt disk_cache level with
  | Some entry -> entry
  | None ->
    let path = tmp (Printf.sprintf "disk_l%d.db" level) in
    cleanup path;
    let b = Dsk.open_db (Dsk.default_config ~path) in
    let layout, timings = GenD.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    Hashtbl.add disk_cache level (b, layout, timings);
    (b, layout, timings)

let rel_cache : (int, Rel.t * Layout.t * Generator.timings) Hashtbl.t =
  Hashtbl.create 4

let rel_db level =
  match Hashtbl.find_opt rel_cache level with
  | Some entry -> entry
  | None ->
    let path = tmp (Printf.sprintf "rel_l%d.db" level) in
    cleanup path;
    let b = Rel.open_db (Rel.default_config ~path) in
    let layout, timings = GenR.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    Hashtbl.add rel_cache level (b, layout, timings);
    (b, layout, timings)

let protocol_config () = { Protocol.default_config with reps = cfg.reps }

(* Shape checks collected along the way; summarised at the end. *)
let shape_results : (string * bool * string) list ref = ref []

let shape name ok detail = shape_results := (name, ok, detail) :: !shape_results

(* --- machine-readable output (--json; format in DESIGN.md §10) --- *)

module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write buf = function
    | Bool x -> Buffer.add_string buf (string_of_bool x)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      (* NaN/infinity are not JSON; null keeps consumers honest. *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_file path t =
    let buf = Buffer.create 65536 in
    write buf t;
    Buffer.add_char buf '\n';
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc
end

(* Per-op diskdb I/O counters captured during T3, for the JSON report:
   (level, [(op label, counters over the cold+warm sequence)]). *)
let t3_disk_io : (int * (string * Dsk.io_counters) list) list ref = ref []

(* T5 traversal-prefetch ablation rows, for the table, the shape checks
   and the JSON report. *)
type prefetch_case = {
  pc_prefetch : bool;
  pc_cluster : bool;
  pc_remote : bool;
  pc_ms : float;
  pc_io : Dsk.io_counters;
}

let t5_prefetch_results : prefetch_case list ref = ref []

(* ====================== F1: schema verification ====================== *)

let f1 () =
  banner "F1" "schema (Figure 1): structural verification on every backend";
  let level = List.hd cfg.levels in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Every Figure-1 constraint, checked on the generated level-%d \
            database" level)
      [ ("check", Table.Left); ("memdb", Table.Left); ("diskdb", Table.Left);
        ("reldb", Table.Left) ]
  in
  let bm, lm, _ = mem_db level in
  let bd, ld, _ = disk_db level in
  let br, lr, _ = rel_db level in
  let cm = VerM.run bm lm and cd = VerD.run bd ld and cr = VerR.run br lr in
  List.iteri
    (fun i c ->
      let cell checks =
        let c = List.nth checks i in
        if c.Verify.ok then "ok" else "FAIL: " ^ c.Verify.detail
      in
      Table.add_row t [ c.Verify.name; cell cm; cell cd; cell cr ])
    cm;
  Table.print t;
  shape "F1 all backends verify"
    (Verify.all_ok cm && Verify.all_ok cd && Verify.all_ok cr)
    "structural constraints hold on all backends"

(* ====================== F2: 1-N tree population ====================== *)

let f2 () =
  banner "F2" "the 1-N hierarchy (Figure 2): node population per level";
  let t =
    Table.create
      ~title:"Nodes per tree level (generated vs. paper arithmetic 5^i)"
      ([ ("leaf level", Table.Right) ]
      @ List.init 7 (fun i -> (Printf.sprintf "level %d" i, Table.Right))
      @ [ ("total", Table.Right); ("texts", Table.Right); ("forms", Table.Right) ])
  in
  List.iter
    (fun level ->
      let _, layout, _ = mem_db level in
      let cells =
        List.init 7 (fun i ->
            if i > level then "-"
            else string_of_int (Schema.nodes_at_level i))
      in
      Table.add_row t
        (string_of_int level :: cells
        @ [ string_of_int layout.Layout.node_count;
            string_of_int (Layout.text_count layout);
            string_of_int (Layout.form_count layout) ]))
    cfg.levels;
  Table.print t;
  (* Counts measured from the database itself. *)
  let level = List.hd (List.rev cfg.levels) in
  let b, layout, _ = mem_db level in
  let measured = Array.make (level + 1) 0 in
  Layout.iter_oids layout (fun oid ->
      let l = Layout.level_of_oid layout oid in
      measured.(l) <- measured.(l) + 1);
  let ok = ref true in
  Array.iteri
    (fun i n -> if n <> Schema.nodes_at_level i then ok := false)
    measured;
  ignore b;
  shape "F2 level populations" !ok "measured per-level counts match 5^i"

(* ====================== F3: M-N structure ====================== *)

let f3 () =
  banner "F3" "the M-N hierarchy (Figure 3): shared sub-parts statistics";
  let t =
    Table.create
      ~title:"M-N parts relationships (target: edges = N - 1; fan-in varies)"
      [ ("level", Table.Right); ("edges", Table.Right); ("target", Table.Right);
        ("max fan-in", Table.Right); ("shared nodes %", Table.Right) ]
  in
  List.iter
    (fun level ->
      let b, layout, _ = mem_db level in
      let edges = ref 0 and max_fan = ref 0 and shared = ref 0 in
      Layout.iter_oids layout (fun oid ->
          edges := !edges + Array.length (Mem.parts b oid);
          let fan_in = Array.length (Mem.part_of b oid) in
          if fan_in > !max_fan then max_fan := fan_in;
          if fan_in > 1 then incr shared);
      Table.add_row t
        [ string_of_int level; string_of_int !edges;
          string_of_int (layout.Layout.node_count - 1);
          string_of_int !max_fan;
          Printf.sprintf "%.1f"
            (100.0 *. float_of_int !shared
            /. float_of_int layout.Layout.node_count) ];
      shape
        (Printf.sprintf "F3 M-N edge count (level %d)" level)
        (!edges = layout.Layout.node_count - 1)
        "M-N relationship count equals N - 1")
    cfg.levels;
  Table.print t

(* ====================== F4: reference graph ====================== *)

let f4 () =
  banner "F4" "the M-N attribute graph (Figure 4): references and offsets";
  let t =
    Table.create
      ~title:"refTo/refFrom relationships (target: edges = N; offsets ~U(0,9))"
      [ ("level", Table.Right); ("edges", Table.Right); ("target", Table.Right);
        ("offset mean", Table.Right); ("offset min..max", Table.Right) ]
  in
  List.iter
    (fun level ->
      let b, layout, _ = mem_db level in
      let edges = ref 0 and sum = ref 0 in
      let lo = ref 99 and hi = ref (-1) in
      Layout.iter_oids layout (fun oid ->
          Array.iter
            (fun l ->
              incr edges;
              sum := !sum + l.Schema.offset_to;
              if l.Schema.offset_to < !lo then lo := l.Schema.offset_to;
              if l.Schema.offset_to > !hi then hi := l.Schema.offset_to)
            (Mem.refs_to b oid));
      let mean = float_of_int !sum /. float_of_int !edges in
      Table.add_row t
        [ string_of_int level; string_of_int !edges;
          string_of_int layout.Layout.node_count; Printf.sprintf "%.2f" mean;
          Printf.sprintf "%d..%d" !lo !hi ];
      shape
        (Printf.sprintf "F4 reference count (level %d)" level)
        (!edges = layout.Layout.node_count)
        "one reference per node";
      shape
        (Printf.sprintf "F4 offsets uniform-ish (level %d)" level)
        (mean > 3.5 && mean < 5.5 && !lo = 0 && !hi = 9)
        "offsets span 0..9 with mean near 4.5")
    cfg.levels;
  Table.print t

(* ====================== T1: database sizes ====================== *)

let t1 () =
  banner "T1" "database size (§5.2: ~8 MB at level 6, x5 per level)";
  let rows =
    List.map
      (fun level ->
        let b, _, _ = disk_db level in
        Dsk.checkpoint b;
        (level, Schema.model_db_bytes ~leaf_level:level, Dsk.file_bytes b))
      cfg.levels
  in
  print_string
    (Report.size_table
       ~title:"Paper size model vs. measured diskdb file size" rows);
  (match List.rev rows with
  | (level, modelled, measured) :: _ ->
    let ratio = float_of_int measured /. float_of_int modelled in
    shape "T1 size within model" (ratio > 0.7 && ratio < 1.6)
      (Printf.sprintf "level %d: measured/model = %.2f" level ratio)
  | [] -> ());
  (* Growth factor between consecutive levels should be ~5. *)
  (match rows with
  | (_, _, a) :: (_, _, b) :: _ ->
    let growth = float_of_int b /. float_of_int a in
    shape "T1 x5 growth per level" (growth > 3.5 && growth < 6.5)
      (Printf.sprintf "growth factor %.1f" growth)
  | _ -> ())

(* ====================== T2: creation times ====================== *)

let copy_file src dst =
  let ic = open_in_bin src in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc

let t2 () =
  banner "T2" "creation times (§5.3), per phase, commit included";
  let rows =
    List.concat_map
      (fun level ->
        let _, _, tm = mem_db level in
        let _, _, td = disk_db level in
        let _, _, tr = rel_db level in
        [ ("memdb", level, tm); ("diskdb", level, td); ("reldb", level, tr) ])
      cfg.levels
  in
  print_string
    (Report.creation_table ~title:"Node and relationship creation (ms)" rows);
  (* Database open — the seventh RUBE87 operation the HyperModel
     incorporates (§4).  Measured on a file copy so the shared instances
     stay open. *)
  let t =
    Table.create ~title:"Database open (ms; attach roots, walk heap chains)"
      [ ("level", Table.Right); ("diskdb", Table.Right);
        ("reldb", Table.Right) ]
  in
  List.iter
    (fun level ->
      let probe_disk =
        let b, _, _ = disk_db level in
        Dsk.checkpoint b;
        let src = tmp (Printf.sprintf "disk_l%d.db" level) in
        let dst = tmp "open_probe_disk.db" in
        copy_file src dst;
        let _, span =
          Hyper_util.Vclock.time (fun () ->
              let b = Dsk.open_db (Dsk.default_config ~path:dst) in
              Dsk.close b)
        in
        cleanup dst;
        Hyper_util.Vclock.total_ms span
      in
      let probe_rel =
        let b, _, _ = rel_db level in
        Rel.checkpoint b;
        let src = tmp (Printf.sprintf "rel_l%d.db" level) in
        let dst = tmp "open_probe_rel.db" in
        copy_file src dst;
        let _, span =
          Hyper_util.Vclock.time (fun () ->
              let b = Rel.open_db (Rel.default_config ~path:dst) in
              Rel.close b)
        in
        cleanup dst;
        Hyper_util.Vclock.total_ms span
      in
      Table.add_row t
        [ string_of_int level; Table.fms probe_disk; Table.fms probe_rel ])
    cfg.levels;
  Table.print t

(* ====================== T3: the operation matrix ====================== *)

let t3_results : (string * int * Protocol.measurement list) list ref = ref []

let t3 () =
  banner "T3"
    "the 20 HyperModel operations (§6): ms per node, cold and warm";
  let config = protocol_config () in
  let run name proto =
    List.iter
      (fun level ->
        let ms = proto level config in
        t3_results := (name, level, ms) :: !t3_results)
      cfg.levels;
    let per_level =
      List.filter_map
        (fun (n, l, ms) -> if n = name then Some (l, ms) else None)
        !t3_results
    in
    print_string
      (Report.operation_table
         ~title:
           (Printf.sprintf "%s (%d reps per op; ms/node returned)" name
              cfg.reps)
         ~levels:cfg.levels per_level)
  in
  run "memdb" (fun level config ->
      let b, layout, _ = mem_db level in
      ProtoM.run_all ~config b layout);
  run "diskdb" (fun level config ->
      let b, layout, _ = disk_db level in
      (* Same sequence as [run_all], with the I/O counters snapshotted
         around each operation for the JSON report. *)
      let per_op =
        List.map
          (fun id ->
            Dsk.reset_io b;
            let m = ProtoD.run_op ~config b layout id in
            (m.Protocol.op, m, Dsk.io_counters b))
          Protocol.op_ids
      in
      t3_disk_io :=
        (level, List.map (fun (op, _, io) -> (op, io)) per_op) :: !t3_disk_io;
      List.map (fun (_, m, _) -> m) per_op);
  run "reldb" (fun level config ->
      let b, layout, _ = rel_db level in
      ProtoR.run_all ~config b layout);
  (* Shape: warm never dramatically slower than cold on the disk backend
     for read operations (caching works). *)
  let disk_ms =
    List.concat_map
      (fun (n, _, ms) -> if n = "diskdb" then ms else [])
      !t3_results
  in
  let cold_beats_warm =
    List.filter
      (fun m ->
        Protocol.warm_ms_per_node m > 3.0 *. Protocol.cold_ms_per_node m
        && Protocol.cold_ms_per_node m > 0.0001)
      disk_ms
  in
  shape "T3 warm <= cold on diskdb (within noise)"
    (List.length cold_beats_warm <= 4)
    (Printf.sprintf "%d of %d measurements warm>3x cold"
       (List.length cold_beats_warm) (List.length disk_ms))

(* ====================== T4: backend comparison ====================== *)

let t4 () =
  banner "T4" "cross-DBMS comparison (the paper's motivating table)";
  let level = List.hd (List.rev cfg.levels) in
  let config = protocol_config () in
  let key_ops = [ "01"; "03"; "05A"; "07A"; "09"; "10"; "14"; "16" ] in
  let mem_ms =
    let b, layout, _ = mem_db level in
    List.map (fun id -> ProtoM.run_op ~config b layout id) key_ops
  in
  let disk_ms =
    let b, layout, _ = disk_db level in
    List.map (fun id -> ProtoD.run_op ~config b layout id) key_ops
  in
  let remote_ms =
    let path = tmp "disk_remote.db" in
    cleanup path;
    let b =
      Dsk.open_db
        { (Dsk.default_config ~path) with Dsk.remote = Some Dsk.remote_1988 }
    in
    let layout, _ = GenD.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    let ms = List.map (fun id -> ProtoD.run_op ~config b layout id) key_ops in
    Dsk.close b;
    cleanup path;
    ms
  in
  let rel_ms =
    let b, layout, _ = rel_db level in
    List.map (fun id -> ProtoR.run_op ~config b layout id) key_ops
  in
  let rel_remote_ms =
    let path = tmp "rel_remote.db" in
    cleanup path;
    let b =
      Rel.open_db
        { (Rel.default_config ~path) with
          Rel.remote = Some Hyper_net.Channel.profile_1988 }
    in
    let layout, _ = GenR.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    let ms = List.map (fun id -> ProtoR.run_op ~config b layout id) key_ops in
    Rel.close b;
    cleanup path;
    ms
  in
  let backends = [ "memdb"; "diskdb"; "disk-remote"; "reldb"; "rel-remote" ] in
  let rows =
    List.mapi
      (fun i m ->
        ( m.Protocol.op,
          [ ("memdb", m); ("diskdb", List.nth disk_ms i);
            ("disk-remote", List.nth remote_ms i);
            ("reldb", List.nth rel_ms i);
            ("rel-remote", List.nth rel_remote_ms i) ] ))
      mem_ms
  in
  print_string
    (Report.comparison_table
       ~title:
         (Printf.sprintf
            "Key operations at level %d (ms/node; disk-remote simulates a \
             1988 LAN + server disk)" level)
       ~backends rows);
  (* R7: "a typical application will need access to something between
     100 - 10,000 objects per second".  Warm traversal rates per
     architecture, objects/second. *)
  let t_rate =
    Table.create
      ~title:
        "R7 check: warm closure1N traversal rate (objects/second; paper \
         target 100-10,000 for interactive work)"
      [ ("backend", Table.Left); ("objects/s", Table.Right);
        ("meets R7", Table.Left) ]
  in
  let closure_of ms = List.nth ms 5 in
  List.iter
    (fun (name, ms) ->
      let warm = Protocol.warm_ms_per_node (closure_of ms) in
      let rate = if warm > 0.0 then 1000.0 /. warm else infinity in
      Table.add_row t_rate
        [ name;
          (if rate = infinity then ">10M" else Printf.sprintf "%.0f" rate);
          (if rate >= 100.0 then "yes" else "NO") ])
    [ ("memdb", mem_ms); ("diskdb", disk_ms); ("disk-remote", remote_ms);
      ("reldb", rel_ms); ("rel-remote", rel_remote_ms) ];
  Table.print t_rate;
  (* Shapes the paper predicts. *)
  let get ms op_idx = List.nth ms op_idx in
  let closure_idx = 5 (* op 10 *) in
  let remote_cold = Protocol.cold_ms_per_node (get remote_ms closure_idx) in
  let remote_warm = Protocol.warm_ms_per_node (get remote_ms closure_idx) in
  shape "T4 remote cold >> remote warm (closure1N)"
    (remote_cold > 3.0 *. remote_warm)
    (Printf.sprintf "cold %.3f vs warm %.3f ms/node" remote_cold remote_warm);
  let mem_cold = Protocol.cold_ms_per_node (get mem_ms closure_idx) in
  shape "T4 memdb fastest on traversals"
    (mem_cold <= Protocol.cold_ms_per_node (get disk_ms closure_idx)
    && mem_cold <= Protocol.cold_ms_per_node (get rel_ms closure_idx))
    "in-memory traversal at least as fast as disk/relational";
  let rel_remote_cold =
    Protocol.cold_ms_per_node (get rel_remote_ms closure_idx)
  in
  let rel_remote_warm =
    Protocol.warm_ms_per_node (get rel_remote_ms closure_idx)
  in
  shape "T4 rel-remote cold >> rel-remote warm (closure1N)"
    (rel_remote_cold > 3.0 *. rel_remote_warm)
    (Printf.sprintf "cold %.3f vs warm %.3f ms/node" rel_remote_cold
       rel_remote_warm)

(* ====================== T5: ablations ====================== *)

let t5 () =
  banner "T5" "ablations: clustering (§5.2) and buffer-pool size";
  let level = List.hd (List.rev cfg.levels) in
  let config = { (protocol_config ()) with Protocol.reps = max 10 (cfg.reps / 2) } in
  (* Clustering on/off with a pool too small for the database: compare the
     1-N closure (clustered path) against the M-N closure. *)
  let run_case ~cluster =
    let path = tmp (Printf.sprintf "ablate_%b.db" cluster) in
    cleanup path;
    let b =
      Dsk.open_db { (Dsk.default_config ~path) with Dsk.pool_pages = 128 }
    in
    let layout, _ =
      GenD.generate ~cluster b ~doc:1 ~leaf_level:level ~seed:cfg.seed
    in
    let m10 = ProtoD.run_op ~config b layout "10" in
    let m14 = ProtoD.run_op ~config b layout "14" in
    Dsk.clear_caches b;
    Dsk.reset_io b;
    Dsk.begin_txn b;
    let rng = Prng.create 17L in
    for _ = 1 to 20 do
      ignore (OpsD.closure_1n b ~start:(Layout.random_level layout rng 3))
    done;
    Dsk.commit b;
    let misses = (Dsk.io_counters b).Dsk.pool_misses in
    Dsk.close b;
    cleanup path;
    (m10, m14, misses)
  in
  let c10, c14, c_misses = run_case ~cluster:true in
  let u10, u14, u_misses = run_case ~cluster:false in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Clustering along the 1-N hierarchy (level %d, 128-page pool)"
           level)
      [ ("metric", Table.Left); ("clustered", Table.Right);
        ("unclustered", Table.Right) ]
  in
  Table.add_row t
    [ "closure1N cold ms/node"; Table.fms (Protocol.cold_ms_per_node c10);
      Table.fms (Protocol.cold_ms_per_node u10) ];
  Table.add_row t
    [ "closureMN cold ms/node"; Table.fms (Protocol.cold_ms_per_node c14);
      Table.fms (Protocol.cold_ms_per_node u14) ];
  Table.add_row t
    [ "pool misses, 20 cold closures"; string_of_int c_misses;
      string_of_int u_misses ];
  Table.print t;
  shape "T5 clustering reduces cold misses" (c_misses < u_misses)
    (Printf.sprintf "%d vs %d misses" c_misses u_misses);
  shape "T5 closure1N <= closureMN when clustered (cold)"
    (Protocol.cold_ms_per_node c10 <= Protocol.cold_ms_per_node c14 *. 1.5)
    "the paper's §5.2 clustering claim";
  (* Object (check-out) cache ablation: warm attribute traversals with
     and without a decoded-object cache (ECKL87 / R7). *)
  let cache_case object_cache =
    let path = tmp (Printf.sprintf "objc_%d.db" object_cache) in
    cleanup path;
    let b = Dsk.open_db { (Dsk.default_config ~path) with Dsk.object_cache } in
    let layout, _ = GenD.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    let m11 = ProtoD.run_op ~config b layout "11" in
    let m01 = ProtoD.run_op ~config b layout "01" in
    Dsk.close b;
    cleanup path;
    (m01, m11)
  in
  let off01, off11 = cache_case 0 in
  let on01, on11 = cache_case 16384 in
  let t3 =
    Table.create
      ~title:
        (Printf.sprintf
           "Object (check-out) cache ablation (level %d): warm ms/node" level)
      [ ("operation", Table.Left); ("cache off", Table.Right);
        ("cache on", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun (label, off, on) ->
      let woff = Protocol.warm_ms_per_node off in
      let won = Protocol.warm_ms_per_node on in
      Table.add_row t3
        [ label; Table.fms woff; Table.fms won;
          (if won > 0.0 then Printf.sprintf "%.1fx" (woff /. won) else "-") ])
    [ ("01 nameLookup", off01, on01); ("11 closure1NAttSum", off11, on11) ];
  Table.print t3;
  shape "T5 object cache speeds warm attribute access"
    (Protocol.warm_ms_per_node on11 <= 1.2 *. Protocol.warm_ms_per_node off11)
    (Printf.sprintf "warm closure sum %.5f -> %.5f ms/node"
       (Protocol.warm_ms_per_node off11)
       (Protocol.warm_ms_per_node on11));
  (* Access-method ablation: uid point lookups through the B+tree vs the
     linear-hash index. *)
  let uid_case uid_hash_index =
    let path = tmp (Printf.sprintf "uidpath_%b.db" uid_hash_index) in
    cleanup path;
    let b = Dsk.open_db { (Dsk.default_config ~path) with Dsk.uid_hash_index } in
    let layout, _ = GenD.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
    let m = ProtoD.run_op ~config b layout "01" in
    Dsk.clear_caches b;
    Dsk.reset_io b;
    let rng = Prng.create 29L in
    for _ = 1 to 200 do
      ignore (Dsk.lookup_unique b ~doc:1 (Layout.random_uid layout rng))
    done;
    let c = Dsk.io_counters b in
    let accesses = c.Dsk.pool_hits + c.Dsk.pool_misses in
    Dsk.close b;
    cleanup path;
    (m, accesses)
  in
  let m_btree, acc_btree = uid_case false in
  let m_hash, acc_hash = uid_case true in
  let t4 =
    Table.create
      ~title:
        (Printf.sprintf
           "Access-method ablation (level %d): nameLookup via B+tree vs             linear hash" level)
      [ ("access path", Table.Left); ("cold ms/node", Table.Right);
        ("warm ms/node", Table.Right);
        ("pages/200 lookups", Table.Right) ]
  in
  Table.add_row t4
    [ "B+tree"; Table.fms (Protocol.cold_ms_per_node m_btree);
      Table.fms (Protocol.warm_ms_per_node m_btree); string_of_int acc_btree ];
  Table.add_row t4
    [ "linear hash"; Table.fms (Protocol.cold_ms_per_node m_hash);
      Table.fms (Protocol.warm_ms_per_node m_hash); string_of_int acc_hash ];
  Table.print t4;
  shape "T5 hash probe touches fewer pages than btree descent"
    (acc_hash < acc_btree)
    (Printf.sprintf "%d vs %d page accesses" acc_hash acc_btree);
  (* Buffer-pool sweep: cold seqScan cost versus pool size. *)
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf "Buffer-pool sweep (level %d): cold seqScan" level)
      [ ("pool pages", Table.Right); ("pool misses", Table.Right);
        ("ms/node", Table.Right) ]
  in
  List.iter
    (fun pool_pages ->
      let path = tmp (Printf.sprintf "pool_%d.db" pool_pages) in
      cleanup path;
      let b = Dsk.open_db { (Dsk.default_config ~path) with Dsk.pool_pages } in
      let layout, _ = GenD.generate b ~doc:1 ~leaf_level:level ~seed:cfg.seed in
      Dsk.clear_caches b;
      Dsk.reset_io b;
      let (), span =
        Hyper_util.Vclock.time (fun () ->
            ignore (OpsD.seq_scan b ~doc:1 : int))
      in
      let misses = (Dsk.io_counters b).Dsk.pool_misses in
      Table.add_row t2
        [ string_of_int pool_pages; string_of_int misses;
          Table.fms
            (Hyper_util.Vclock.total_ms span
            /. float_of_int layout.Layout.node_count) ];
      Dsk.close b;
      cleanup path)
    [ 64; 256; 1024; 4096 ];
  Table.print t2;
  (* Traversal-prefetch ablation (group fetch vs page-at-a-time, the
     paper's Vbase/GemStone transfer-granularity axis): 20 cold closure1N
     traversals from random level-3 starts, prefetch on/off x
     clustered/unclustered x local/remote.  The unclustered-remote pair
     is the acceptance check: batching the children's pages into one
     group transfer must cut network round trips at least 3x without
     changing the traversal results. *)
  let prefetch_level = 5 in
  let closures_per_case = 20 in
  let prefetch_layout =
    Layout.make ~doc:1 ~oid_base:0 ~leaf_level:prefetch_level ()
  in
  (* The database file depends only on [cluster]; generate it once per
     clustering mode and re-open it under each (remote, prefetch)
     configuration. *)
  let prefetch_db ~cluster =
    let path = tmp (Printf.sprintf "prefetch_%b.db" cluster) in
    cleanup path;
    let b =
      Dsk.open_db { (Dsk.default_config ~path) with Dsk.pool_pages = 1024 }
    in
    ignore
      (GenD.generate ~cluster b ~doc:1 ~leaf_level:prefetch_level
         ~seed:cfg.seed);
    Dsk.close b;
    path
  in
  let run_prefetch ~cluster ~remote ~prefetch path =
    let b =
      Dsk.open_db
        { (Dsk.default_config ~path) with
          Dsk.pool_pages = 1024;
          prefetch;
          remote = (if remote then Some Dsk.remote_1988 else None) }
    in
    Dsk.clear_caches b;
    Dsk.reset_io b;
    let rng = Prng.create 17L in
    let results = ref [] in
    Dsk.begin_txn b;
    let (), span =
      Hyper_util.Vclock.time (fun () ->
          for _ = 1 to closures_per_case do
            results :=
              OpsD.closure_1n b
                ~start:(Layout.random_level prefetch_layout rng 3)
              :: !results
          done)
    in
    Dsk.commit b;
    let io = Dsk.io_counters b in
    Dsk.close b;
    t5_prefetch_results :=
      { pc_prefetch = prefetch; pc_cluster = cluster; pc_remote = remote;
        pc_ms = Hyper_util.Vclock.total_ms span; pc_io = io }
      :: !t5_prefetch_results;
    (List.rev !results, io, Hyper_util.Vclock.total_ms span)
  in
  let tp =
    Table.create
      ~title:
        (Printf.sprintf
           "Traversal prefetch (group fetch) ablation: %d cold closure1N \
            traversals at level %d"
           closures_per_case prefetch_level)
      [ ("case", Table.Left); ("prefetch", Table.Left);
        ("round trips", Table.Right); ("batched", Table.Right);
        ("pool miss", Table.Right); ("prefetched", Table.Right);
        ("server miss", Table.Right); ("ms", Table.Right) ]
  in
  let identical = ref true in
  List.iter
    (fun cluster ->
      let path = prefetch_db ~cluster in
      List.iter
        (fun remote ->
          let res_off, io_off, ms_off =
            run_prefetch ~cluster ~remote ~prefetch:false path
          in
          let res_on, io_on, ms_on =
            run_prefetch ~cluster ~remote ~prefetch:true path
          in
          if res_on <> res_off then identical := false;
          let case =
            Printf.sprintf "%s %s"
              (if cluster then "clustered" else "unclustered")
              (if remote then "remote" else "local")
          in
          List.iter
            (fun (label, io, ms) ->
              Table.add_row tp
                [ case; label;
                  string_of_int io.Dsk.round_trips;
                  string_of_int io.Dsk.batched_round_trips;
                  string_of_int io.Dsk.pool_misses;
                  string_of_int io.Dsk.pool_prefetches;
                  string_of_int io.Dsk.server_misses; Table.fms ms ])
            [ ("off", io_off, ms_off); ("on", io_on, ms_on) ];
          if remote && not cluster then begin
            shape "T5 prefetch cuts remote round trips >= 3x (unclustered)"
              (io_on.Dsk.round_trips > 0
              && io_off.Dsk.round_trips >= 3 * io_on.Dsk.round_trips)
              (Printf.sprintf "%d vs %d round trips (%.1fx)"
                 io_off.Dsk.round_trips io_on.Dsk.round_trips
                 (float_of_int io_off.Dsk.round_trips
                 /. float_of_int (max 1 io_on.Dsk.round_trips)));
            shape "T5 prefetch batches are group fetches"
              (io_on.Dsk.batched_round_trips > 0
              && io_on.Dsk.pool_prefetches > 0)
              (Printf.sprintf "%d batched trips, %d pages prefetched"
                 io_on.Dsk.batched_round_trips io_on.Dsk.pool_prefetches)
          end;
          if (not remote) && not cluster then
            shape "T5 prefetch does not regress local cold misses"
              (io_on.Dsk.pool_misses <= io_off.Dsk.pool_misses
              && io_on.Dsk.pool_misses + io_on.Dsk.pool_prefetches
                 <= io_off.Dsk.pool_misses + (io_off.Dsk.pool_misses / 10) + 8)
              (Printf.sprintf "misses %d -> %d (+%d prefetched)"
                 io_off.Dsk.pool_misses io_on.Dsk.pool_misses
                 io_on.Dsk.pool_prefetches))
        [ false; true ];
      cleanup path)
    [ true; false ];
  Table.print tp;
  shape "T5 prefetch leaves traversal results unchanged" !identical
    "closure1N node lists identical with prefetch on and off"

(* ====================== T6: extension operations ====================== *)

let t6 () =
  banner "T6" "extension operations (§6.8): R4 / R5 / R11";
  let level = List.hd cfg.levels in
  let b, layout, _ = mem_db level in
  let t =
    Table.create ~title:"Capability probes with timings"
      [ ("extension", Table.Left); ("result", Table.Left); ("ms", Table.Right) ]
  in
  (* E1: dynamic schema modification. *)
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Mem.begin_txn b;
        let n =
          ExtM.add_attribute_everywhere b ~layout ~name:"t6_layer"
            ~value:(fun oid -> oid mod 5)
        in
        Mem.commit b;
        assert (n = layout.Layout.node_count))
  in
  Table.add_row t
    [ "E1 add attribute to every node (R4)";
      Printf.sprintf "%d nodes specialised" layout.Layout.node_count;
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Mem.begin_txn b;
        ExtM.add_draw_node b ~layout ~oid:5_000_000 ~unique_id:5_000_000;
        Mem.commit b)
  in
  Table.add_row t
    [ "E1 add DrawNode instance (R4)"; "new node type member created";
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  (* E2: versioned edits. *)
  let versions = ExtM.create_versions () in
  let rng = Prng.create 23L in
  let edits = 100 in
  let oids = Array.init edits (fun _ -> Layout.random_text layout rng) in
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Array.iter
          (fun oid ->
            Mem.begin_txn b;
            ignore (ExtM.edit_with_version versions b oid : int);
            Mem.commit b)
          oids)
  in
  Table.add_row t
    [ "E2 versioned textNodeEdit x100 (R5)";
      Printf.sprintf "%d snapshots kept" edits;
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Array.iter
          (fun oid -> ignore (ExtM.previous_version versions oid))
          oids)
  in
  Table.add_row t
    [ "E2 retrieve previous version x100 (R5)"; "all retrieved";
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  (* restore the edited nodes (edits are self-inverse) *)
  Array.iter
    (fun oid ->
      Mem.begin_txn b;
      OpsM.text_node_edit b ~oid;
      Mem.commit b)
    oids;
  (* E4: structural modification (the §5.2 N.B. requirement; timed the
     way OO7 later standardised: insert new composites, then delete
     them). *)
  let inserts = 100 in
  let base_oid = 6_000_000 in
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Mem.begin_txn b;
        for i = 0 to inserts - 1 do
          let oid = base_oid + i in
          Mem.create_node b
            { Schema.oid; doc = layout.Layout.doc; unique_id = oid;
              ten = (i mod 10) + 1; hundred = (i mod 100) + 1;
              million = i + 1; payload = Schema.P_internal };
          Mem.add_child b ~parent:(Layout.random_internal layout rng) ~child:oid
        done;
        Mem.commit b)
  in
  Table.add_row t
    [ "E4 insert 100 nodes + attach (structural)";
      Printf.sprintf "%d nodes attached" inserts;
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Mem.begin_txn b;
        for i = 0 to inserts - 1 do
          Mem.delete_node b (base_oid + i)
        done;
        Mem.commit b)
  in
  Table.add_row t
    [ "E4 delete those 100 nodes (structural)";
      Printf.sprintf "%d nodes detached and reclaimed" inserts;
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  (* E3: access control across two structures. *)
  let b3 = Mem.create () in
  let layout_a, _ = GenM.generate b3 ~doc:1 ~leaf_level:4 ~seed:cfg.seed in
  let layout_b, _ =
    GenM.generate b3 ~doc:2 ~oid_base:1_000_000 ~leaf_level:4
      ~seed:(Int64.add cfg.seed 1L)
  in
  let acl = Access.create () in
  Access.register acl ~doc:1 ~owner:"alice";
  Access.register acl ~doc:2 ~owner:"alice";
  let result = ref (false, false, false, false) in
  let (), span =
    Hyper_util.Vclock.time (fun () ->
        Mem.begin_txn b3;
        result :=
          ExtM.demo_two_documents b3 ~acl ~doc_a:layout_a ~doc_b:layout_b
            ~user:"bob";
        Mem.commit b3)
  in
  let read_a, write_a, write_b, link = !result in
  Table.add_row t
    [ "E3 public-read doc + public-write doc + cross link (R11)";
      Printf.sprintf "read A %b / write A %b / write B %b / link %b" read_a
        write_a write_b link;
      Table.fms (Hyper_util.Vclock.total_ms span) ];
  Table.print t;
  shape "T6 access-control semantics"
    (read_a && (not write_a) && write_b && link)
    "paper's R11 example behaves as specified"

(* ====================== T7: multi-user ====================== *)

let t7 () =
  banner "T7" "multi-user experiments (§7): OCC vs 2PL under contention";
  let t =
    Table.create
      ~title:
        "Concurrent closure1NAttSet transactions (level 4; 100 txns/user; \
         one retry per abort)"
      [ ("cc", Table.Left); ("users", Table.Right); ("hot", Table.Right);
        ("attempted", Table.Right); ("committed", Table.Right);
        ("aborted", Table.Right); ("txn/s", Table.Right) ]
  in
  let occ_hot_aborts = ref 0 and occ_cold_aborts = ref 0 in
  List.iter
    (fun (mode, users, hot) ->
      let b = Mem.create () in
      let layout, _ = GenM.generate b ~doc:1 ~leaf_level:4 ~seed:cfg.seed in
      let r =
        MultiM.run b layout ~mode ~users ~txns_per_user:100 ~hot_fraction:hot
          ~seed:cfg.seed
      in
      if mode = Multiuser.Optimistic && hot > 0.4 then
        occ_hot_aborts := !occ_hot_aborts + r.Multiuser.aborted;
      if mode = Multiuser.Optimistic && hot = 0.0 then
        occ_cold_aborts := !occ_cold_aborts + r.Multiuser.aborted;
      Table.add_row t
        [ Multiuser.mode_to_string mode; string_of_int users;
          Printf.sprintf "%.1f" hot; string_of_int r.Multiuser.txns_attempted;
          string_of_int r.Multiuser.committed;
          string_of_int r.Multiuser.aborted;
          Printf.sprintf "%.0f" r.Multiuser.throughput_tps ])
    [ (Multiuser.Optimistic, 1, 0.0); (Multiuser.Optimistic, 2, 0.0);
      (Multiuser.Optimistic, 2, 0.5); (Multiuser.Optimistic, 4, 0.5);
      (Multiuser.Optimistic, 8, 0.5); (Multiuser.Two_phase_locking, 1, 0.0);
      (Multiuser.Two_phase_locking, 2, 0.0);
      (Multiuser.Two_phase_locking, 2, 0.5);
      (Multiuser.Two_phase_locking, 4, 0.5);
      (Multiuser.Two_phase_locking, 8, 0.5) ];
  Table.print t;
  shape "T7 OCC aborts only under contention"
    (!occ_cold_aborts = 0 && !occ_hot_aborts > 0)
    (Printf.sprintf "disjoint: %d aborts; hot: %d aborts" !occ_cold_aborts
       !occ_hot_aborts)

(* ====================== Bechamel micro-benchmarks ====================== *)

let micro () =
  banner "MICRO" "Bechamel kernels (one per experiment family)";
  let open Bechamel in
  let b, layout, _ = mem_db (List.hd cfg.levels) in
  let rng = Prng.create 3L in
  let start = Layout.level_first_oid layout 3 in
  let pager = Hyper_storage.Pager.in_memory () in
  let pool = Hyper_storage.Buffer_pool.create pager ~capacity:256 in
  ignore (Hyper_storage.Buffer_pool.allocate pool);
  let fl = Hyper_storage.Freelist.attach pool ~head:0 in
  let btree = Hyper_index.Btree.create pool fl in
  let hash = Hyper_index.Hash_index.create pool fl in
  for i = 1 to 10_000 do
    Hyper_index.Btree.insert btree ~key:i ~value:i;
    Hyper_index.Hash_index.insert hash ~key:i ~value:i
  done;
  let counter = ref 10_000 in
  let spec = Hashtbl.hash in
  ignore spec;
  let node_spec () =
    incr counter;
    { Schema.oid = !counter; doc = 9; unique_id = !counter; ten = 1;
      hundred = 50; million = 777; payload = Schema.P_internal }
  in
  let bitmap = Hyper_util.Bitmap.create ~width:400 ~height:400 in
  let sample_text = Mem.text b (Layout.random_text layout rng) in
  let tests =
    Test.make_grouped ~name:"hypermodel"
      [ Test.make ~name:"T3.01 nameLookup (memdb)"
          (Staged.stage (fun () ->
               ignore (OpsM.name_lookup b ~doc:1 ~uid:((!counter mod 700) + 1))));
        Test.make ~name:"T3.10 closure1N (memdb)"
          (Staged.stage (fun () -> ignore (OpsM.closure_1n_att_sum b ~start)));
        Test.make ~name:"T1 node codec encode+decode"
          (Staged.stage (fun () ->
               ignore
                 (Hyper_diskdb.Codec.decode
                    (Hyper_diskdb.Codec.encode
                       (Hyper_diskdb.Codec.of_spec (node_spec ()))))));
        Test.make ~name:"T2 create_node (memdb)"
          (Staged.stage (fun () ->
               Mem.begin_txn b;
               Mem.create_node b (node_spec ());
               Mem.commit b));
        Test.make ~name:"T5 btree point lookup (10k entries)"
          (Staged.stage (fun () ->
               ignore
                 (Hyper_index.Btree.find_first btree
                    ~key:((!counter * 37 mod 10_000) + 1))));
        Test.make ~name:"T5 hash point lookup (10k entries)"
          (Staged.stage (fun () ->
               ignore
                 (Hyper_index.Hash_index.find_first hash
                    ~key:((!counter * 37 mod 10_000) + 1))));
        Test.make ~name:"T3.17 bitmap invert 50x50"
          (Staged.stage (fun () ->
               Hyper_util.Bitmap.invert_rect bitmap ~x:10 ~y:10 ~w:50 ~h:50));
        Test.make ~name:"T3.16 text substitute"
          (Staged.stage (fun () ->
               ignore
                 (Hyper_util.Text_gen.replace_first sample_text
                    ~old_sub:"version1" ~new_sub:"version-2"))) ]
  in
  let benchmark_cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all benchmark_cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create ~title:"Per-call cost (ordinary least squares fit)"
      [ ("kernel", Table.Left); ("ns/call", Table.Right) ]
  in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | Some _ | None -> (name, nan) :: acc)
      results []
  in
  List.iter
    (fun (name, est) -> Table.add_row t [ name; Printf.sprintf "%.0f" est ])
    (List.sort compare rows);
  Table.print t

(* ====================== main ====================== *)

(* The metrics registry snapshot, as a JSON object keyed by metric
   name.  Histograms expand to {count, sum, buckets: [[le, cum], ...]}
   (cumulative, Prometheus-style). *)
let metrics_json () =
  Json.Obj
    (List.map
       (function
         | Obs.F_counter { name; value; _ } -> (name, Json.Int value)
         | Obs.F_gauge { name; value; _ } -> (name, Json.Float value)
         | Obs.F_histogram { name; count; sum; buckets; _ } ->
           ( name,
             Json.Obj
               [ ("count", Json.Int count); ("sum", Json.Float sum);
                 ("buckets",
                  Json.List
                    (List.filter_map
                       (fun (le, cum) ->
                         (* Drop empty leading buckets and the non-JSON
                            infinite bound; [count] already carries the
                            catch-all total. *)
                         if cum = 0 || le = infinity then None
                         else
                           Some (Json.List [ Json.Float le; Json.Int cum ]))
                       buckets)) ] ))
       (Obs.families ()))

let () =
  parse_args ();
  (* The whole run reports through the metrics registry; the sink stays
     enabled so the --json metrics section and --metrics dump cover
     generation, the protocol and the ablations alike. *)
  Obs.enable ();
  Printf.printf
    "The HyperModel Benchmark — reproduction harness\n\
     levels: %s   reps: %d   seed: %Ld\n"
    (String.concat "," (List.map string_of_int cfg.levels))
    cfg.reps cfg.seed;
  let experiments =
    [ ("F1", f1); ("F2", f2); ("F3", f3); ("F4", f4); ("T1", t1); ("T2", t2);
      ("T3", t3); ("T4", t4); ("T5", t5); ("T6", t6); ("T7", t7) ]
  in
  List.iter
    (fun (id, f) ->
      if skipped id then Printf.printf "\n[%s skipped]\n" id else f ())
    experiments;
  if cfg.bechamel && not (skipped "MICRO") then micro ();
  (* Summary. *)
  banner "SUMMARY" "expected-shape checks";
  let results = List.rev !shape_results in
  List.iter
    (fun (name, ok, detail) ->
      Printf.printf "[%s] %s — %s\n" (if ok then "pass" else "FAIL") name detail)
    results;
  let failed = List.filter (fun (_, ok, _) -> not ok) results in
  Printf.printf "\n%d/%d shape checks passed\n"
    (List.length results - List.length failed)
    (List.length results);
  (* Machine-readable report (written before the failure exit so CI can
     archive partial results). *)
  (match cfg.json with
  | None -> ()
  | Some path ->
    let io_json (c : Dsk.io_counters) =
      Json.Obj
        [ ("pager_reads", Json.Int c.Dsk.pager_reads);
          ("pager_writes", Json.Int c.Dsk.pager_writes);
          ("pool_hits", Json.Int c.Dsk.pool_hits);
          ("pool_misses", Json.Int c.Dsk.pool_misses);
          ("pool_evictions", Json.Int c.Dsk.pool_evictions);
          ("pool_prefetches", Json.Int c.Dsk.pool_prefetches);
          ("round_trips", Json.Int c.Dsk.round_trips);
          ("batched_round_trips", Json.Int c.Dsk.batched_round_trips);
          ("server_hits", Json.Int c.Dsk.server_hits);
          ("server_misses", Json.Int c.Dsk.server_misses);
          ("wal_bytes", Json.Int c.Dsk.wal_bytes);
          ("object_hits", Json.Int c.Dsk.object_hits);
          ("object_misses", Json.Int c.Dsk.object_misses) ]
    in
    let operations =
      List.concat_map
        (fun (backend, level, ms) ->
          let ios =
            if backend = "diskdb" then
              Option.value ~default:[] (List.assoc_opt level !t3_disk_io)
            else []
          in
          List.map
            (fun m ->
              Json.Obj
                ([ ("backend", Json.Str backend); ("level", Json.Int level);
                   ("op", Json.Str m.Protocol.op);
                   ("reps", Json.Int m.Protocol.reps);
                   ("nodes_cold", Json.Int m.Protocol.nodes_cold);
                   ("nodes_warm", Json.Int m.Protocol.nodes_warm);
                   ("cold_ms", Json.Float m.Protocol.cold_ms);
                   ("warm_ms", Json.Float m.Protocol.warm_ms);
                   ("cold_ms_per_node",
                    Json.Float (Protocol.cold_ms_per_node m));
                   ("warm_ms_per_node",
                    Json.Float (Protocol.warm_ms_per_node m)) ]
                @
                match List.assoc_opt m.Protocol.op ios with
                | Some io -> [ ("io", io_json io) ]
                | None -> []))
            ms)
        (List.rev !t3_results)
    in
    let prefetch_rows =
      List.rev_map
        (fun r ->
          Json.Obj
            [ ("prefetch", Json.Bool r.pc_prefetch);
              ("clustered", Json.Bool r.pc_cluster);
              ("remote", Json.Bool r.pc_remote); ("ms", Json.Float r.pc_ms);
              ("io", io_json r.pc_io) ])
        !t5_prefetch_results
    in
    let shapes =
      List.map
        (fun (name, ok, detail) ->
          Json.Obj
            [ ("name", Json.Str name); ("pass", Json.Bool ok);
              ("detail", Json.Str detail) ])
        results
    in
    Json.to_file path
      (Json.Obj
         [ ("meta",
            Json.Obj
              [ ("levels",
                 Json.List (List.map (fun l -> Json.Int l) cfg.levels));
                ("reps", Json.Int cfg.reps);
                ("seed", Json.Str (Int64.to_string cfg.seed)) ]);
           ("operations", Json.List operations);
           ("prefetch_ablation", Json.List prefetch_rows);
           ("shapes", Json.List shapes);
           ("metrics", metrics_json ()) ]);
    Printf.printf "wrote %s\n" path);
  (match cfg.metrics with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Obs.to_prometheus ());
    close_out oc;
    Printf.printf "wrote %s\n" path);
  (* Clean up cached disk databases. *)
  Hashtbl.iter (fun _ (b, _, _) -> try Dsk.close b with _ -> ()) disk_cache;
  Hashtbl.iter (fun _ (b, _, _) -> try Rel.close b with _ -> ()) rel_cache;
  List.iter
    (fun level ->
      cleanup (tmp (Printf.sprintf "disk_l%d.db" level));
      cleanup (tmp (Printf.sprintf "rel_l%d.db" level)))
    cfg.levels;
  if failed <> [] then exit 1

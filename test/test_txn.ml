(* Concurrency-support tests: 2PL lock manager (compatibility, upgrade,
   timeout/deadlock, multi-threaded exclusion), optimistic concurrency
   control (validation, first-committer-wins), the multi-version store
   (R5) and cooperative workspaces (R9). *)

open Hyper_txn

let check = Alcotest.check

(* The whole battery runs under the lockdep deadlock detector: any
   lock-order inversion performed during the run is a failure even if
   every assertion passes (checked after the run). *)
module Lockdep = Hyper_util.Sync.Lockdep

let () = Lockdep.enable ()

(* --- Lock manager --- *)

let test_shared_compatible () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~txn:1 ~resource:10 Lock_manager.Shared;
  Lock_manager.acquire lm ~txn:2 ~resource:10 Lock_manager.Shared;
  check Alcotest.bool "third shared too" true
    (Lock_manager.try_acquire lm ~txn:3 ~resource:10 Lock_manager.Shared);
  check Alcotest.bool "exclusive blocked" false
    (Lock_manager.try_acquire lm ~txn:4 ~resource:10 Lock_manager.Exclusive)

let test_exclusive_excludes () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~txn:1 ~resource:5 Lock_manager.Exclusive;
  check Alcotest.bool "shared blocked" false
    (Lock_manager.try_acquire lm ~txn:2 ~resource:5 Lock_manager.Shared);
  check Alcotest.bool "exclusive blocked" false
    (Lock_manager.try_acquire lm ~txn:2 ~resource:5 Lock_manager.Exclusive);
  (* Reentrant for the owner. *)
  check Alcotest.bool "owner re-acquires" true
    (Lock_manager.try_acquire lm ~txn:1 ~resource:5 Lock_manager.Exclusive);
  Lock_manager.release_all lm ~txn:1;
  check Alcotest.bool "released" true
    (Lock_manager.try_acquire lm ~txn:2 ~resource:5 Lock_manager.Exclusive)

let test_upgrade () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~txn:1 ~resource:7 Lock_manager.Shared;
  (* Sole shared holder upgrades. *)
  check Alcotest.bool "upgrade ok" true
    (Lock_manager.try_acquire lm ~txn:1 ~resource:7 Lock_manager.Exclusive);
  check (Alcotest.option Alcotest.bool) "now exclusive" (Some true)
    (Option.map
       (fun m -> m = Lock_manager.Exclusive)
       (Lock_manager.holds lm ~txn:1 ~resource:7));
  (* No downgrade: re-acquiring shared keeps exclusive. *)
  check Alcotest.bool "shared re-acquire" true
    (Lock_manager.try_acquire lm ~txn:1 ~resource:7 Lock_manager.Shared);
  check (Alcotest.option Alcotest.bool) "still exclusive" (Some true)
    (Option.map
       (fun m -> m = Lock_manager.Exclusive)
       (Lock_manager.holds lm ~txn:1 ~resource:7))

let test_upgrade_blocked_by_other_reader () =
  let lm = Lock_manager.create ~timeout_ms:30.0 () in
  Lock_manager.acquire lm ~txn:1 ~resource:7 Lock_manager.Shared;
  Lock_manager.acquire lm ~txn:2 ~resource:7 Lock_manager.Shared;
  check Alcotest.bool "upgrade with peer blocked" false
    (Lock_manager.try_acquire lm ~txn:1 ~resource:7 Lock_manager.Exclusive)

let test_timeout () =
  let lm = Lock_manager.create ~timeout_ms:30.0 () in
  Lock_manager.acquire lm ~txn:1 ~resource:3 Lock_manager.Exclusive;
  match Lock_manager.acquire lm ~txn:2 ~resource:3 Lock_manager.Shared with
  | () -> Alcotest.fail "expected timeout"
  | exception Lock_manager.Timeout { txn = 2; resource = 3 } -> ()
  | exception e -> raise e

let test_locked_resources () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~txn:1 ~resource:1 Lock_manager.Shared;
  Lock_manager.acquire lm ~txn:1 ~resource:2 Lock_manager.Exclusive;
  check (Alcotest.list Alcotest.int) "both listed" [ 1; 2 ]
    (List.sort compare (Lock_manager.locked_resources lm ~txn:1));
  Lock_manager.release_all lm ~txn:1;
  check (Alcotest.list Alcotest.int) "none" []
    (Lock_manager.locked_resources lm ~txn:1)

let test_deadlock_broken_by_timeout () =
  (* Classic deadlock: two threads take A and B in opposite orders.  The
     timeout must break the cycle — at least one thread finishes its
     work, the other sees Timeout, releases and retries successfully. *)
  let lm = Lock_manager.create ~timeout_ms:50.0 () in
  let completed = ref 0 and timeouts = ref 0 in
  let m = Mutex.create () in
  let bump r =
    Mutex.lock m;
    incr r;
    Mutex.unlock m
  in
  let worker txn first second =
    Thread.create
      (fun () ->
        let rec attempt tries =
          if tries > 10 then failwith "livelock"
          else begin
            match
              Lock_manager.acquire lm ~txn ~resource:first
                Lock_manager.Exclusive;
              Thread.delay 0.01 (* widen the window for the deadlock *);
              Lock_manager.acquire lm ~txn ~resource:second
                Lock_manager.Exclusive
            with
            | () ->
              bump completed;
              Lock_manager.release_all lm ~txn
            | exception Lock_manager.Timeout _ ->
              bump timeouts;
              Lock_manager.release_all lm ~txn;
              (* Staggered backoff so simultaneous victims don't re-deadlock
                 in lockstep. *)
              Thread.delay (0.005 *. float_of_int (txn * (tries + 1)));
              attempt (tries + 1)
          end
        in
        attempt 0)
      ()
  in
  let t1 = worker 1 100 200 in
  let t2 = worker 2 200 100 in
  Thread.join t1;
  Thread.join t2;
  check Alcotest.int "both eventually complete" 2 !completed;
  if !timeouts = 0 then
    (* Occasionally the schedule avoids the deadlock entirely; that is
       fine — the invariant is completion, timeouts are the mechanism. *)
    ()

let test_threads_mutual_exclusion () =
  (* N threads increment a shared counter under an exclusive lock; the
     final count proves no lost updates. *)
  let lm = Lock_manager.create ~timeout_ms:5000.0 () in
  let counter = ref 0 in
  let worker txn =
    Thread.create
      (fun () ->
        for _ = 1 to 200 do
          Lock_manager.acquire lm ~txn ~resource:99 Lock_manager.Exclusive;
          let v = !counter in
          (* A tiny window that would lose updates without the lock. *)
          if v mod 7 = 0 then Thread.yield ();
          counter := v + 1;
          Lock_manager.release_all lm ~txn
        done)
      ()
  in
  let threads = List.init 4 (fun i -> worker (i + 1)) in
  List.iter Thread.join threads;
  check Alcotest.int "no lost updates" 800 !counter

(* --- OCC --- *)

let test_occ_no_conflict () =
  let v = Occ.create () in
  let t1 = Occ.begin_txn v in
  Occ.note_read t1 1;
  Occ.note_write t1 2;
  check Alcotest.bool "t1 commits" true (Occ.commit t1);
  check Alcotest.int "committed count" 1 (Occ.committed_count v)

let test_occ_conflict_aborts () =
  let v = Occ.create () in
  let t1 = Occ.begin_txn v in
  let t2 = Occ.begin_txn v in
  Occ.note_read t1 10;
  Occ.note_write t1 10;
  Occ.note_read t2 10;
  Occ.note_write t2 10;
  check Alcotest.bool "first committer wins" true (Occ.commit t1);
  check Alcotest.bool "second fails validation" false (Occ.commit t2);
  check Alcotest.int "aborted count" 1 (Occ.aborted_count v)

let test_occ_disjoint_writes_both_commit () =
  (* The paper's cooperative scenario: two users updating different nodes
     of the same structure must both succeed. *)
  let v = Occ.create () in
  let t1 = Occ.begin_txn v in
  let t2 = Occ.begin_txn v in
  Occ.note_write t1 100;
  Occ.note_write t2 200;
  check Alcotest.bool "t1" true (Occ.commit t1);
  check Alcotest.bool "t2" true (Occ.commit t2)

let test_occ_read_only_sees_no_conflict () =
  let v = Occ.create () in
  let w = Occ.begin_txn v in
  Occ.note_write w 5;
  let r = Occ.begin_txn v in
  Occ.note_read r 6 (* reads something the writer does not touch *);
  check Alcotest.bool "writer commits" true (Occ.commit w);
  check Alcotest.bool "reader commits" true (Occ.commit r)

let test_occ_write_read_conflict () =
  let v = Occ.create () in
  let w = Occ.begin_txn v in
  Occ.note_write w 5;
  let r = Occ.begin_txn v in
  Occ.note_read r 5;
  check Alcotest.bool "writer commits" true (Occ.commit w);
  check Alcotest.bool "stale reader aborts" false (Occ.commit r)

let test_occ_finished_txn_rejected () =
  let v = Occ.create () in
  let t1 = Occ.begin_txn v in
  ignore (Occ.commit t1 : bool);
  Alcotest.check_raises "commit twice"
    (Invalid_argument "Occ: transaction already finished") (fun () ->
      ignore (Occ.commit t1 : bool))

(* --- Version store --- *)

let test_versions_basic () =
  let vs = Version_store.create () in
  check (Alcotest.option Alcotest.string) "empty" None
    (Version_store.latest vs ~key:1);
  let t1 = Version_store.put vs ~key:1 "v1" in
  let t2 = Version_store.put vs ~key:1 "v2" in
  let _t3 = Version_store.put vs ~key:1 "v3" in
  check (Alcotest.option Alcotest.string) "latest" (Some "v3")
    (Version_store.latest vs ~key:1);
  check (Alcotest.option Alcotest.string) "previous" (Some "v2")
    (Version_store.previous vs ~key:1);
  check (Alcotest.option Alcotest.string) "as_of t1" (Some "v1")
    (Version_store.as_of vs ~key:1 ~time:t1);
  check (Alcotest.option Alcotest.string) "as_of t2" (Some "v2")
    (Version_store.as_of vs ~key:1 ~time:t2);
  check (Alcotest.option Alcotest.string) "as_of before t1" None
    (Version_store.as_of vs ~key:1 ~time:(t1 - 1));
  check Alcotest.int "3 versions" 3 (Version_store.version_count vs ~key:1)

let test_versions_snapshot_across_keys () =
  (* Reconstruct a node structure as it was at a time-point (R5). *)
  let vs = Version_store.create () in
  ignore (Version_store.put vs ~key:1 "a1");
  ignore (Version_store.put vs ~key:2 "b1");
  let snapshot_time = Version_store.now vs in
  ignore (Version_store.put vs ~key:1 "a2");
  ignore (Version_store.put vs ~key:2 "b2");
  check (Alcotest.option Alcotest.string) "key 1 at snapshot" (Some "a1")
    (Version_store.as_of vs ~key:1 ~time:snapshot_time);
  check (Alcotest.option Alcotest.string) "key 2 at snapshot" (Some "b1")
    (Version_store.as_of vs ~key:2 ~time:snapshot_time)

let test_variants () =
  let vs = Version_store.create () in
  ignore (Version_store.put vs ~key:1 "main1");
  ignore (Version_store.put_variant vs ~key:1 ~variant:"draft" "draft1");
  ignore (Version_store.put_variant vs ~key:1 ~variant:"review" "review1");
  ignore (Version_store.put_variant vs ~key:1 ~variant:"draft" "draft2");
  check
    (Alcotest.list Alcotest.string)
    "variant names" [ "draft"; "review" ]
    (Version_store.variants vs ~key:1);
  check (Alcotest.option Alcotest.string) "draft head" (Some "draft2")
    (Version_store.latest_variant vs ~key:1 ~variant:"draft");
  check (Alcotest.option Alcotest.string) "main untouched" (Some "main1")
    (Version_store.latest vs ~key:1)

(* --- Workspaces --- *)

let test_workspace_isolation () =
  let shared = Workspace.create_shared () in
  let w1 = Workspace.checkout shared in
  let w2 = Workspace.checkout shared in
  Workspace.put w1 1 "w1-private";
  check (Alcotest.option Alcotest.string) "w1 sees own write"
    (Some "w1-private") (Workspace.get w1 1);
  check (Alcotest.option Alcotest.string) "w2 does not" None
    (Workspace.get w2 1);
  check (Alcotest.option Alcotest.string) "shared empty" None
    (Workspace.shared_get shared 1)

let test_workspace_publish () =
  let shared = Workspace.create_shared () in
  let w1 = Workspace.checkout shared in
  let w2 = Workspace.checkout shared in
  Workspace.put w1 1 "one";
  Workspace.put w1 2 "two";
  (match Workspace.publish w1 with
  | Workspace.Published 2 -> ()
  | Workspace.Published n -> Alcotest.failf "published %d" n
  | Workspace.Conflicts _ -> Alcotest.fail "unexpected conflict");
  check (Alcotest.option Alcotest.string) "w2 sees published" (Some "one")
    (Workspace.get w2 1);
  check (Alcotest.list Alcotest.int) "shared keys" [ 1; 2 ]
    (Workspace.shared_keys shared)

let test_workspace_disjoint_publishes () =
  (* Paper R9: two users update different nodes in the same structure. *)
  let shared = Workspace.create_shared () in
  let w1 = Workspace.checkout shared in
  let w2 = Workspace.checkout shared in
  Workspace.put w1 1 "user1";
  Workspace.put w2 2 "user2";
  (match Workspace.publish w1 with
  | Workspace.Published _ -> ()
  | Workspace.Conflicts _ -> Alcotest.fail "w1 conflicted");
  (match Workspace.publish w2 with
  | Workspace.Published _ -> ()
  | Workspace.Conflicts _ -> Alcotest.fail "disjoint publish conflicted");
  check (Alcotest.option Alcotest.string) "both merged" (Some "user1")
    (Workspace.shared_get shared 1);
  check (Alcotest.option Alcotest.string) "both merged 2" (Some "user2")
    (Workspace.shared_get shared 2)

let test_workspace_conflict_and_refresh () =
  let shared = Workspace.create_shared () in
  let w1 = Workspace.checkout shared in
  let w2 = Workspace.checkout shared in
  Workspace.put w1 1 "first";
  Workspace.put w2 1 "second";
  (match Workspace.publish w1 with
  | Workspace.Published _ -> ()
  | Workspace.Conflicts _ -> Alcotest.fail "w1 conflicted");
  (match Workspace.publish w2 with
  | Workspace.Conflicts [ 1 ] -> ()
  | Workspace.Conflicts ks ->
    Alcotest.failf "wrong conflict set (%d keys)" (List.length ks)
  | Workspace.Published _ -> Alcotest.fail "conflict not detected");
  (* Nothing was merged on conflict. *)
  check (Alcotest.option Alcotest.string) "shared keeps first" (Some "first")
    (Workspace.shared_get shared 1);
  (* Refresh re-baselines; publish then succeeds (w2's intent wins). *)
  Workspace.refresh w2;
  (match Workspace.publish w2 with
  | Workspace.Published 1 -> ()
  | Workspace.Published n -> Alcotest.failf "published %d" n
  | Workspace.Conflicts _ -> Alcotest.fail "refresh did not clear conflict");
  check (Alcotest.option Alcotest.string) "second wins after refresh"
    (Some "second")
    (Workspace.shared_get shared 1)

(* --- multiuser invariants over real backends ---

   Multiuser.Make drives concurrent closure1NAttSet transactions through
   a real backend; these pin its accounting exactly:
   - every attempt resolves: committed + aborted = attempted;
   - each logical transaction gets at most one retry, so the permanently
     failed count is (aborted - retried_ok) / 2 and the identity
     committed + (aborted - retried_ok) / 2 = logical transactions holds;
   - disjoint workloads converge completely (no aborts at all);
   - the database is structurally intact afterwards.  The transaction
     body complements hundred (h := 99 - h), which maps the generated
     1..100 onto -1..98, so odd numbers of commits leave some nodes out
     of the attribute range; complementing those back restores a state
     Verify accepts in full. *)

module Multiuser_invariants (B : Hyper_core.Backend.S) = struct
  module MU = Hyper_core.Multiuser.Make (B)
  module G = Hyper_core.Generator.Make (B)
  module V = Hyper_core.Verify.Make (B)

  let accounting_ok ~users ~txns_per_user (r : Hyper_core.Multiuser.result) =
    check Alcotest.int "committed + aborted = attempted" r.txns_attempted
      (r.committed + r.aborted);
    check Alcotest.bool "retried_ok bounded by aborts" true
      (r.retried_ok <= r.aborted);
    check Alcotest.int "abort parity (one retry each)" 0
      ((r.aborted - r.retried_ok) mod 2);
    let permanently_failed = (r.aborted - r.retried_ok) / 2 in
    check Alcotest.int "every logical txn accounted for"
      (users * txns_per_user)
      (r.committed + permanently_failed)

  let normalize_hundred b layout =
    B.begin_txn b;
    Hyper_core.Layout.iter_oids layout (fun oid ->
        let h = B.hundred b oid in
        if h < 1 then B.set_hundred b oid (99 - h));
    B.commit b

  let run_all b layout =
    List.iter
      (fun mode ->
        (* Fully disjoint: everyone works a private subtree, so both
           schemes must commit everything first try. *)
        let r =
          MU.run b layout ~mode ~users:3 ~txns_per_user:10 ~hot_fraction:0.0
            ~seed:11L
        in
        accounting_ok ~users:3 ~txns_per_user:10 r;
        check Alcotest.int
          (Hyper_core.Multiuser.mode_to_string mode ^ " disjoint aborts")
          0 r.aborted;
        check Alcotest.int
          (Hyper_core.Multiuser.mode_to_string mode ^ " disjoint commits")
          30 r.committed;
        (* Contended: half the transactions hit one hot subtree.  Aborts
           are allowed; the accounting identity and forward progress are
           not negotiable. *)
        let r =
          MU.run b layout ~mode ~users:3 ~txns_per_user:10 ~hot_fraction:0.5
            ~seed:13L
        in
        accounting_ok ~users:3 ~txns_per_user:10 r;
        check Alcotest.bool
          (Hyper_core.Multiuser.mode_to_string mode ^ " makes progress")
          true (r.committed > 0))
      [
        Hyper_core.Multiuser.Two_phase_locking;
        Hyper_core.Multiuser.Optimistic;
        Hyper_core.Multiuser.Mvcc;
      ];
    normalize_hundred b layout;
    let fails = Hyper_core.Verify.failures (V.run b layout) in
    match fails with
    | [] -> ()
    | c :: _ ->
      Alcotest.failf "verify failed after multiuser run: %s — %s"
        c.Hyper_core.Verify.name c.Hyper_core.Verify.detail
end

let test_multiuser_memdb () =
  let module B = Hyper_memdb.Memdb in
  let module I = Multiuser_invariants (B) in
  let b = B.create () in
  let layout, _ = I.G.generate b ~doc:1 ~leaf_level:3 ~seed:21L in
  I.run_all b layout

let test_multiuser_diskdb () =
  let module B = Hyper_diskdb.Diskdb in
  let module I = Multiuser_invariants (B) in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_txn_mu_%d.db" (Unix.getpid ()))
  in
  let cleanup () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; path ^ ".sum"; path ^ ".wal" ]
  in
  cleanup ();
  let b = B.open_db (B.default_config ~path) in
  Fun.protect
    ~finally:(fun () ->
      (try B.close b with _ -> ());
      cleanup ())
    (fun () ->
      let layout, _ = I.G.generate b ~doc:1 ~leaf_level:3 ~seed:21L in
      I.run_all b layout)

let () =
  Alcotest.run "hyper_txn"
    [
      ( "lock_manager",
        [
          Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "exclusive excludes" `Quick test_exclusive_excludes;
          Alcotest.test_case "upgrade" `Quick test_upgrade;
          Alcotest.test_case "upgrade blocked by reader" `Quick
            test_upgrade_blocked_by_other_reader;
          Alcotest.test_case "timeout breaks deadlock" `Quick test_timeout;
          Alcotest.test_case "real deadlock resolved" `Quick
            test_deadlock_broken_by_timeout;
          Alcotest.test_case "locked resources" `Quick test_locked_resources;
          Alcotest.test_case "threaded mutual exclusion" `Quick
            test_threads_mutual_exclusion;
        ] );
      ( "occ",
        [
          Alcotest.test_case "no conflict" `Quick test_occ_no_conflict;
          Alcotest.test_case "write-write conflict" `Quick test_occ_conflict_aborts;
          Alcotest.test_case "disjoint writes commit" `Quick
            test_occ_disjoint_writes_both_commit;
          Alcotest.test_case "independent reader ok" `Quick
            test_occ_read_only_sees_no_conflict;
          Alcotest.test_case "stale reader aborts" `Quick
            test_occ_write_read_conflict;
          Alcotest.test_case "double finish rejected" `Quick
            test_occ_finished_txn_rejected;
        ] );
      ( "version_store",
        [
          Alcotest.test_case "chains" `Quick test_versions_basic;
          Alcotest.test_case "snapshot across keys" `Quick
            test_versions_snapshot_across_keys;
          Alcotest.test_case "variants" `Quick test_variants;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "isolation" `Quick test_workspace_isolation;
          Alcotest.test_case "publish" `Quick test_workspace_publish;
          Alcotest.test_case "disjoint publishes" `Quick
            test_workspace_disjoint_publishes;
          Alcotest.test_case "conflict + refresh" `Quick
            test_workspace_conflict_and_refresh;
        ] );
      ( "multiuser",
        [
          Alcotest.test_case "invariants on memdb" `Quick test_multiuser_memdb;
          Alcotest.test_case "invariants on diskdb" `Quick
            test_multiuser_diskdb;
        ] );
    ]

(* Alcotest.run returns only when every test passed; a lockdep report
   accumulated along the way still fails the binary. *)
let () =
  match Lockdep.reports () with
  | [] -> ()
  | rs ->
    List.iter (fun r -> prerr_endline (Lockdep.report_to_string r)) rs;
    exit 70

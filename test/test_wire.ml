(* Wire-codec battery: round-trip every frame type, torn/partial reads
   at every byte boundary, CRC corruption, oversized rejection, and a
   random-bytes never-crash fuzz.  Everything is seeded: the suite is
   deterministic. *)

open Hyper_core
open Hyper_net

let check = Alcotest.check

(* --- fixtures: one representative of everything --- *)

let sample_ops =
  [
    Trace.Begin;
    Trace.Create
      {
        oid = 7;
        doc = 1;
        uid = 42;
        ten = 3;
        hundred = 55;
        million = 123456;
        near = Some 6;
        payload = Trace.P_text "hello \"wire\"\nworld";
      };
    Trace.Add_children { parent = 7; children = [ 8; 9; 10 ] };
    Trace.Set_text { oid = 7; value = String.make 300 'x' };
    Trace.Lookup_unique { doc = 1; uid = 42 };
    Trace.Doc_oids 1;
    Trace.Store_results [ 1; 2; 3 ];
    Trace.Form_get 9;
    Trace.Form_set { oid = 9; width = 8; height = 8; data = String.make 72 '\xAB' };
    Trace.Verify_checks;
    Trace.Commit;
  ]

let sample_values =
  [
    Trace.V_unit;
    Trace.V_int (-17);
    Trace.V_int_opt None;
    Trace.V_int_opt (Some 99);
    Trace.V_ints [ 1; -2; 3 ];
    Trace.V_oids [];
    Trace.V_oids [ 5; 6; 7 ];
    Trace.V_links [ (1, 2, 3); (4, 5, 6) ];
    Trace.V_pairs [ (10, 0); (11, 4) ];
    Trace.V_string "";
    Trace.V_string "binary \x00\xff bytes";
    Trace.V_checks [ ("parents", true); ("refs", false) ];
    Trace.V_form (8, 8, String.make 72 '\x5c');
  ]

let sample_outcomes =
  List.map (fun v -> Trace.Done v) sample_values
  @ [ Trace.Raised "Invalid_argument"; Trace.Raised "Failure" ]

let sample_requests =
  [
    Wire.Hello { client = "test"; protocol = Wire.protocol_version };
    Wire.Ops { rid = 1; ops = sample_ops };
    Wire.Ops { rid = 2; ops = [] };
    Wire.Ping { rid = 3 };
    Wire.Snapshot { rid = 4; active = true };
    Wire.Snapshot { rid = 5; active = false };
    Wire.Bye;
  ]

let sample_responses =
  [
    Wire.Welcome { session = 12; server = "srv"; protocol = 1 };
    Wire.Results { rid = 1; outcomes = sample_outcomes };
    Wire.Results { rid = 2; outcomes = [] };
    Wire.Fault { rid = -1; code = Wire.F_bad_frame; message = "torn" };
    Wire.Fault { rid = 9; code = Wire.F_internal; message = "" };
    Wire.Fault { rid = 0; code = Wire.F_draining; message = "bye" };
    Wire.Fault { rid = 4; code = Wire.F_bad_op; message = "no parse" };
    Wire.Pong { rid = 3 };
  ]

let feed_all dec b = Wire.Decoder.feed dec b ~off:0 ~len:(Bytes.length b)

let expect_frame name dec =
  match Wire.Decoder.next dec with
  | Some (Ok f) -> f
  | Some (Error e) -> Alcotest.failf "%s: decode error %s" name (Wire.error_to_string e)
  | None -> Alcotest.failf "%s: frame not complete" name

let expect_error name dec =
  match Wire.Decoder.next dec with
  | Some (Error e) -> e
  | Some (Ok _) -> Alcotest.failf "%s: expected error, got a frame" name
  | None -> Alcotest.failf "%s: expected error, got None" name

(* --- round trips --- *)

let test_request_round_trip () =
  let dec = Wire.Decoder.create_request () in
  List.iter (fun r -> feed_all dec (Wire.encode_request r)) sample_requests;
  List.iter
    (fun r ->
      let got = expect_frame "request" dec in
      if got <> r then Alcotest.fail "request did not round-trip")
    sample_requests;
  check Alcotest.int "drained" 0 (Wire.Decoder.buffered dec)

let test_response_round_trip () =
  let dec = Wire.Decoder.create_response () in
  List.iter (fun r -> feed_all dec (Wire.encode_response r)) sample_responses;
  List.iter
    (fun r ->
      let got = expect_frame "response" dec in
      if got <> r then Alcotest.fail "response did not round-trip")
    sample_responses;
  check Alcotest.int "drained" 0 (Wire.Decoder.buffered dec)

let test_ops_survive_the_wire () =
  (* The op payload is the canonical trace grammar: parse-print must be
     exact for every op constructor the protocol can carry. *)
  let dec = Wire.Decoder.create_request () in
  feed_all dec (Wire.encode_request (Wire.Ops { rid = 5; ops = sample_ops }));
  match expect_frame "ops" dec with
  | Wire.Ops { rid = 5; ops } ->
    check Alcotest.int "op count" (List.length sample_ops) (List.length ops);
    List.iter2
      (fun a b ->
        check Alcotest.string "op text" (Trace.op_to_string a)
          (Trace.op_to_string b))
      sample_ops ops
  | _ -> Alcotest.fail "wrong frame"

let test_encode_returns_fresh_buffer () =
  (* Buffer-reuse audit: encoders must not hand out a shared scratch
     buffer — encode twice, clobber the first result, and the second
     must still carry the frame intact. *)
  let r = Wire.Ping { rid = 77 } in
  let first = Wire.encode_request r in
  let second = Wire.encode_request r in
  Bytes.fill first 0 (Bytes.length first) 'X';
  let dec = Wire.Decoder.create_request () in
  feed_all dec second;
  (match expect_frame "fresh" dec with
  | Wire.Ping { rid = 77 } -> ()
  | _ -> Alcotest.fail "second encode was corrupted by clobbering the first")

(* --- torn / partial reads --- *)

let test_torn_single_byte_feed () =
  (* Feed a multi-frame stream one byte at a time; every frame must pop
     out exactly when its last byte arrives, never before. *)
  let stream =
    Bytes.concat Bytes.empty (List.map Wire.encode_response sample_responses)
  in
  let dec = Wire.Decoder.create_response () in
  let got = ref [] in
  Bytes.iter
    (fun c ->
      Wire.Decoder.feed dec (Bytes.make 1 c) ~off:0 ~len:1;
      match Wire.Decoder.next dec with
      | Some (Ok f) -> got := f :: !got
      | Some (Error e) ->
        Alcotest.failf "torn feed error: %s" (Wire.error_to_string e)
      | None -> ())
    stream;
  check Alcotest.int "all frames recovered"
    (List.length sample_responses)
    (List.length !got);
  if List.rev !got <> sample_responses then
    Alcotest.fail "torn stream decoded differently"

let test_torn_every_split_point () =
  (* One frame cut into (prefix, suffix) at every boundary: decode must
     return None on the prefix (for every proper prefix) and the frame
     after the suffix. *)
  let frame =
    Wire.encode_request (Wire.Ops { rid = 1; ops = sample_ops })
  in
  let n = Bytes.length frame in
  for cut = 0 to n - 1 do
    let dec = Wire.Decoder.create_request () in
    Wire.Decoder.feed dec frame ~off:0 ~len:cut;
    (match Wire.Decoder.next dec with
    | None -> ()
    | Some _ -> Alcotest.failf "frame complete at %d/%d bytes" cut n);
    Wire.Decoder.feed dec frame ~off:cut ~len:(n - cut);
    match expect_frame "suffix" dec with
    | Wire.Ops { rid = 1; _ } -> ()
    | _ -> Alcotest.fail "wrong frame after split"
  done

let test_feed_buffer_reuse () =
  (* The caller's read buffer is reused between feeds — the decoder
     must have copied the bytes (the audit contract for real fds). *)
  let frame = Wire.encode_request (Wire.Ping { rid = 77 }) in
  let dec = Wire.Decoder.create_request () in
  let scratch = Bytes.create 1 in
  Bytes.iter
    (fun c ->
      Bytes.set scratch 0 c;
      Wire.Decoder.feed dec scratch ~off:0 ~len:1;
      Bytes.set scratch 0 '\xee' (* clobber after feed *))
    frame;
  match Wire.Decoder.next dec with
  | Some (Ok (Wire.Ping { rid = 77 })) -> ()
  | _ -> Alcotest.fail "decoder retained caller's buffer"

(* --- corruption --- *)

let test_crc_corruption () =
  let frame = Wire.encode_request (Wire.Ping { rid = 5 }) in
  (* flip one bit in the body *)
  let body_off = 12 in
  Bytes.set_uint8 frame body_off (Bytes.get_uint8 frame body_off lxor 1);
  let dec = Wire.Decoder.create_request () in
  feed_all dec frame;
  (match expect_error "crc" dec with
  | Wire.Bad_crc _ -> ()
  | e -> Alcotest.failf "expected Bad_crc, got %s" (Wire.error_to_string e));
  (* poisoned: same error again, even after feeding a good frame *)
  feed_all dec (Wire.encode_request (Wire.Ping { rid = 6 }));
  match expect_error "poisoned" dec with
  | Wire.Bad_crc _ -> ()
  | e -> Alcotest.failf "poison lost: %s" (Wire.error_to_string e)

let test_bad_magic_version_kind () =
  let mangle f =
    let frame = Wire.encode_request (Wire.Ping { rid = 1 }) in
    f frame;
    let dec = Wire.Decoder.create_request () in
    feed_all dec frame;
    expect_error "mangled" dec
  in
  (match mangle (fun b -> Bytes.set b 0 'X') with
  | Wire.Bad_magic _ -> ()
  | e -> Alcotest.failf "expected Bad_magic, got %s" (Wire.error_to_string e));
  (match mangle (fun b -> Bytes.set_uint8 b 2 250) with
  | Wire.Bad_version 250 -> ()
  | e -> Alcotest.failf "expected Bad_version, got %s" (Wire.error_to_string e));
  (match mangle (fun b -> Bytes.set_uint8 b 3 77) with
  | Wire.Unknown_kind 77 -> ()
  | e -> Alcotest.failf "expected Unknown_kind, got %s" (Wire.error_to_string e));
  (* a response kind on the request side is equally unknown *)
  match mangle (fun b -> Bytes.set_uint8 b 3 130) with
  | Wire.Unknown_kind 130 -> ()
  | e ->
    Alcotest.failf "expected Unknown_kind 130, got %s" (Wire.error_to_string e)

let test_oversized_rejection () =
  let frame = Wire.encode_request (Wire.Ops { rid = 1; ops = sample_ops }) in
  let dec = Wire.Decoder.create_request ~max_frame:16 () in
  feed_all dec frame;
  match expect_error "oversized" dec with
  | Wire.Oversized { limit = 16; _ } -> ()
  | e -> Alcotest.failf "expected Oversized, got %s" (Wire.error_to_string e)

let test_truncated_body_is_malformed () =
  (* A frame whose CRC passes but whose body lies about its lengths:
     declare a string longer than the body. *)
  let buf = Buffer.create 32 in
  Buffer.add_int64_le buf 1000L (* string length 1000, but no bytes *);
  let body = Buffer.to_bytes buf in
  let frame = Bytes.create (12 + Bytes.length body) in
  Bytes.set frame 0 'H';
  Bytes.set frame 1 'M';
  Bytes.set_uint8 frame 2 Wire.protocol_version;
  Bytes.set_uint8 frame 3 1 (* Hello *);
  Bytes.set_int32_le frame 4 (Int32.of_int (Bytes.length body));
  Bytes.set_int32_le frame 8 (Int32.of_int (Hyper_storage.Page.checksum body));
  Bytes.blit body 0 frame 12 (Bytes.length body);
  let dec = Wire.Decoder.create_request () in
  feed_all dec frame;
  match expect_error "truncated body" dec with
  | Wire.Malformed _ -> ()
  | e -> Alcotest.failf "expected Malformed, got %s" (Wire.error_to_string e)

(* --- fuzz: never crash --- *)

let test_random_bytes_never_crash =
  QCheck.Test.make ~count:500 ~name:"decoder never raises on random bytes"
    QCheck.(pair small_int (list (string_of_size Gen.small_nat)))
    (fun (chunk_seed, chunks) ->
      let dec = Wire.Decoder.create_request () in
      ignore chunk_seed;
      List.iter
        (fun s ->
          let b = Bytes.of_string s in
          Wire.Decoder.feed dec b ~off:0 ~len:(Bytes.length b);
          (* drain whatever the decoder makes of it *)
          let rec drain n =
            if n > 0 then
              match Wire.Decoder.next dec with
              | Some (Ok _) -> drain (n - 1)
              | Some (Error _) | None -> ()
          in
          drain 100)
        chunks;
      true)

let test_random_corruption_never_crashes =
  (* Start from a valid stream, corrupt one byte anywhere: decode must
     yield frames and/or a typed error, never raise. *)
  QCheck.Test.make ~count:500 ~name:"single-byte corruption is typed"
    QCheck.(pair small_nat small_nat)
    (fun (pos_seed, byte) ->
      let stream =
        Bytes.concat Bytes.empty
          (List.map Wire.encode_request sample_requests)
      in
      let pos = pos_seed mod Bytes.length stream in
      Bytes.set_uint8 stream pos (byte land 0xff);
      let dec = Wire.Decoder.create_request () in
      Wire.Decoder.feed dec stream ~off:0 ~len:(Bytes.length stream);
      let rec drain n =
        if n > 0 then
          match Wire.Decoder.next dec with
          | Some (Ok _) -> drain (n - 1)
          | Some (Error _) | None -> ()
      in
      drain 100;
      true)

let test_outcome_codec_round_trip () =
  List.iter
    (fun o ->
      let buf = Buffer.create 64 in
      Wire.encode_outcome buf o;
      let b = Buffer.to_bytes buf in
      let pos = ref 0 in
      let o' = Wire.decode_outcome b ~pos in
      if not (Trace.outcome_equal o o') then
        Alcotest.failf "outcome did not round-trip: %s"
          (Trace.outcome_to_string o);
      check Alcotest.int "consumed all" (Bytes.length b) !pos)
    sample_outcomes

let () =
  Alcotest.run "test_wire"
    [
      ( "round-trip",
        [
          Alcotest.test_case "requests" `Quick test_request_round_trip;
          Alcotest.test_case "responses" `Quick test_response_round_trip;
          Alcotest.test_case "ops payload" `Quick test_ops_survive_the_wire;
          Alcotest.test_case "encode is fresh" `Quick
            test_encode_returns_fresh_buffer;
          Alcotest.test_case "outcome codec" `Quick
            test_outcome_codec_round_trip;
        ] );
      ( "torn",
        [
          Alcotest.test_case "single-byte feed" `Quick
            test_torn_single_byte_feed;
          Alcotest.test_case "every split point" `Quick
            test_torn_every_split_point;
          Alcotest.test_case "buffer reuse" `Quick test_feed_buffer_reuse;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "crc" `Quick test_crc_corruption;
          Alcotest.test_case "magic/version/kind" `Quick
            test_bad_magic_version_kind;
          Alcotest.test_case "oversized" `Quick test_oversized_rejection;
          Alcotest.test_case "lying body lengths" `Quick
            test_truncated_body_is_malformed;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest test_random_bytes_never_crash;
          QCheck_alcotest.to_alcotest test_random_corruption_never_crashes;
        ] );
    ]

(* Fault-injection suite for the storage stack (robustness R10).

   Everything here drives the engine through [Vfs.Faulty] — a
   deterministic, PRNG-seeded in-memory VFS that can crash mid-write,
   tear the in-flight write, lie about fsync, lose unsynced writes on
   power failure, and inject typed I/O errors — plus a few tests of the
   real-file seams (page checksums, torn WAL tails).

   The scenario count of the big crash sweep is controlled by the
   HYPER_FUZZ_SCENARIOS environment variable (default 200), so a nightly
   CI job can turn it up without recompiling. *)

open Hyper_core
module B = Hyper_diskdb.Diskdb
module V = Hyper_storage.Vfs
module F = Hyper_storage.Vfs.Faulty
module E = Hyper_storage.Storage_error
module Wal = Hyper_storage.Wal
module Pager = Hyper_storage.Pager
module Page = Hyper_storage.Page
module Recovery = Hyper_storage.Recovery

let check = Alcotest.check

let scenarios =
  match Sys.getenv_opt "HYPER_FUZZ_SCENARIOS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 200)
  | None -> 200

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_fault_%d_%s_%d" (Unix.getpid ()) name !counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal"; path ^ ".wal.sum" ]

(* --- workload helpers (small batches: the sweep runs hundreds of times) --- *)

let batch_size = 40

let insert_batch b ~batch =
  B.begin_txn b;
  for i = 0 to batch_size - 1 do
    let oid = (batch * batch_size) + i + 1 in
    B.create_node b
      { Schema.oid; doc = 1; unique_id = oid; ten = (batch mod 10) + 1;
        hundred = (oid mod 100) + 1; million = oid;
        payload =
          (if i mod 8 = 0 then Schema.P_text (String.make 300 'x')
           else Schema.P_internal) }
  done;
  B.commit b

let assert_committed_prefix b ~max_batches =
  let count = B.node_count b ~doc:1 in
  if count mod batch_size <> 0 then
    Alcotest.failf "partial batch visible: %d nodes" count;
  let batches = count / batch_size in
  if batches > max_batches then
    Alcotest.failf "phantom batches: %d > %d" batches max_batches;
  for oid = 1 to count do
    (match B.lookup_unique b ~doc:1 oid with
    | Some o when o = oid -> ()
    | Some o -> Alcotest.failf "uid %d resolves to %d" oid o
    | None -> Alcotest.failf "uid %d lost from index" oid);
    let h = B.hundred b oid in
    if h <> (oid mod 100) + 1 then
      Alcotest.failf "oid %d: hundred corrupted (%d)" oid h
  done;
  for oid = count + 1 to max_batches * batch_size do
    match B.lookup_unique b ~doc:1 oid with
    | None -> ()
    | Some _ -> Alcotest.failf "uid %d should not exist" oid
  done;
  let indexed = List.length (B.range_hundred b ~doc:1 ~lo:1 ~hi:100) in
  check Alcotest.int "index covers exactly the prefix" count indexed;
  batches

let faulty_config env ~path ~pool_pages ?checkpoint_wal_bytes () =
  let base =
    { (B.default_config ~path) with
      B.pool_pages; durable_sync = true; vfs = Some (F.vfs env) }
  in
  match checkpoint_wal_bytes with
  | None -> base
  | Some n -> { base with B.checkpoint_wal_bytes = n }

let total_batches = 4

(* Small checkpoint threshold on half the scenarios: commits then trip
   checkpoints mid-workload, so crash points land inside the
   flush-all / sync / wal-truncate window too. *)
let run_workload env ~path ~tiny_checkpoints =
  let acked = ref 0 in
  let checkpoint_wal_bytes = if tiny_checkpoints then Some 16_384 else None in
  (try
     let b =
       B.open_db (faulty_config env ~path ~pool_pages:8 ?checkpoint_wal_bytes ())
     in
     for batch = 0 to total_batches - 1 do
       insert_batch b ~batch;
       incr acked
     done;
     B.close b
   with V.Crash -> ());
  !acked

(* --- the big sweep: seeded crash scenarios --- *)

let run_scenario i ~w ~s =
  (* Mix the scenario index into every fault dimension. *)
  let crash_on_sync = i mod 16 = 7 && s > 0 in
  let k_writes =
    if crash_on_sync then 0 else 1 + (i * 7919) mod w (* stratified & coprime *)
  in
  let k_syncs = if crash_on_sync then 1 + (i mod s) else 0 in
  let power_loss = i mod 2 = 0 in
  let lying_fsync = i mod 4 >= 2 in
  let tiny_checkpoints = i mod 8 >= 4 in
  let path = temp_path "sweep" in
  let env =
    F.create
      { F.seed = Int64.of_int (0xBEEF + i); crash_after_writes = k_writes;
        crash_after_syncs = k_syncs; torn_writes = true; power_loss;
        lying_fsync; rules = [] }
  in
  let acked = run_workload env ~path ~tiny_checkpoints in
  F.power_fail env;
  F.set_plan env F.quiet;
  let b = B.open_db (faulty_config env ~path ~pool_pages:64 ()) in
  let recovered = assert_committed_prefix b ~max_batches:total_batches in
  if not (power_loss && lying_fsync) && recovered < acked then
    Alcotest.failf
      "scenario %d (kw=%d ks=%d power=%b lying=%b ckpt=%b): acked %d > recovered %d"
      i k_writes k_syncs power_loss lying_fsync tiny_checkpoints acked recovered;
  insert_batch b ~batch:recovered;
  check Alcotest.int "writable after recovery"
    ((recovered + 1) * batch_size)
    (B.node_count b ~doc:1);
  B.close b

let test_crash_sweep () =
  (* Dry run: learn the workload's write and sync counts. *)
  let env = F.create F.quiet in
  let acked = run_workload env ~path:(temp_path "dry") ~tiny_checkpoints:false in
  check Alcotest.int "dry run commits everything" total_batches acked;
  let w = F.write_count env and s = F.sync_count env in
  if w < 20 then Alcotest.failf "workload too quiet: %d writes" w;
  for i = 0 to scenarios - 1 do
    run_scenario i ~w ~s
  done

(* --- transient faults are retried --- *)

let test_transient_eio_retried () =
  let path = temp_path "eio" in
  let env = F.create F.quiet in
  let b = B.open_db (faulty_config env ~path ~pool_pages:8 ()) in
  insert_batch b ~batch:0;
  (* Two consecutive transient EIOs on the next data-file read; the
     engine's retry layer must absorb both. *)
  let rule =
    { F.suffix = ""; rops = [ `Read ]; fault = E.Eio; transient = true;
      skip = 0; remaining = 2 }
  in
  B.clear_caches b; (* force the next lookup to fault pages in *)
  F.set_plan env { F.quiet with F.rules = [ rule ] };
  (match B.lookup_unique b ~doc:1 1 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "lookup failed under transient EIO");
  check Alcotest.int "both injected faults were consumed" 0 rule.F.remaining;
  B.close b

(* --- ENOSPC degrades to read-only, committed data stays readable --- *)

let test_enospc_read_only () =
  let path = temp_path "enospc" in
  let env = F.create F.quiet in
  let b = B.open_db (faulty_config env ~path ~pool_pages:8 ()) in
  insert_batch b ~batch:0;
  (* Every WAL append from now on hits a full disk. *)
  F.set_plan env
    { F.quiet with
      F.rules =
        [ { F.suffix = ".wal"; rops = [ `Write ]; fault = E.Enospc;
            transient = false; skip = 0; remaining = -1 } ] };
  let raised = ref false in
  (try insert_batch b ~batch:1
   with E.Error (E.Io { fault = E.Enospc; _ }) ->
     raised := true;
     (* The fault can fire at a dirty-page steal mid-insert, which leaves
        the transaction open; abort needs no WAL and must still work.
        When it fired at commit the engine already rolled back. *)
     (try B.abort b with Invalid_argument _ -> ()));
  check Alcotest.bool "mutating on a full WAL raises ENOSPC" true !raised;
  check Alcotest.bool "store degraded to read-only" true (B.read_only b);
  (* The failed transaction rolled back; committed data is intact. *)
  check Alcotest.int "committed batch survives" batch_size
    (B.node_count b ~doc:1);
  (match B.lookup_unique b ~doc:1 1 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "read path broken after degradation");
  (* New write transactions are refused up front. *)
  (try
     B.begin_txn b;
     Alcotest.fail "begin_txn should raise in read-only mode"
   with E.Error E.Read_only -> ());
  (* Close must not raise even though the WAL is unusable. *)
  B.close b;
  (* After "freeing space" the store reopens fully writable. *)
  F.set_plan env F.quiet;
  let b2 = B.open_db (faulty_config env ~path ~pool_pages:8 ()) in
  check Alcotest.int "data intact after reopen" batch_size
    (B.node_count b2 ~doc:1);
  insert_batch b2 ~batch:1;
  check Alcotest.int "writable after reopen" (2 * batch_size)
    (B.node_count b2 ~doc:1);
  B.close b2

(* --- page checksums catch corruption on real files --- *)

let test_checksum_detects_corruption () =
  let path = temp_path "crc" in
  cleanup path;
  let pager = Pager.create path in
  let id = Pager.allocate pager in
  let page = Page.alloc () in
  Bytes.fill page 0 Page.size 'A';
  Pager.write pager id page;
  Pager.sync pager;
  Pager.close pager;
  (* Bit rot: flip one byte in the middle of the page. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (Page.size / 2) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "Z" 0 1);
  Unix.close fd;
  let pager2 = Pager.create path in
  (try
     ignore (Pager.read pager2 id);
     Alcotest.fail "corrupted page read should raise"
   with E.Error (E.Corrupt_page { page = p; expected; actual; _ }) ->
     check Alcotest.int "corrupt page id" id p;
     if expected = actual then Alcotest.fail "expected <> actual");
  Pager.close pager2;
  (* A missing sidecar (pre-checksum file) is accepted unverified. *)
  Sys.remove (path ^ ".sum");
  let pager3 = Pager.create path in
  let back = Pager.read pager3 id in
  check Alcotest.char "unverified read returns raw bytes" 'Z'
    (Bytes.get back (Page.size / 2));
  Pager.close pager3;
  cleanup path

(* --- torn WAL tails exactly on entry boundaries --- *)

let wal_entry_bytes e =
  (* header + payload + crc, mirroring the on-disk framing *)
  14 + Bytes.length (match e with
    | Wal.Before (_, _, img) | Wal.After (_, _, img) -> img
    | Wal.Begin _ | Wal.Commit _ | Wal.Checkpoint -> Bytes.empty) + 4

let test_torn_tail_on_entry_boundary () =
  let path = temp_path "tornwal" in
  cleanup path;
  let img = Bytes.make Page.size 'w' in
  let entries =
    [ Wal.Begin 1; Wal.After (1, 0, img); Wal.Commit 1; Wal.Begin 2;
      Wal.After (2, 1, img) ]
  in
  let wal = Wal.open_ path in
  List.iter (Wal.append wal) entries;
  Wal.flush wal;
  Wal.close wal;
  let full = (Unix.stat path).Unix.st_size in
  check Alcotest.int "framing matches on-disk size"
    (List.fold_left (fun a e -> a + wal_entry_bytes e) 0 entries)
    full;
  let truncate_to len =
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
    Unix.ftruncate fd len;
    Unix.close fd
  in
  let prefix3 =
    wal_entry_bytes (Wal.Begin 1)
    + wal_entry_bytes (Wal.After (1, 0, img))
    + wal_entry_bytes (Wal.Commit 1)
  in
  (* Tear exactly on the boundary before the final entry... *)
  truncate_to (prefix3 + wal_entry_bytes (Wal.Begin 2));
  check Alcotest.int "tear before final entry keeps 4 entries" 4
    (List.length (Wal.read_all path));
  (* ... exactly on the boundary between entries 3 and 4... *)
  truncate_to prefix3;
  check Alcotest.int "tear on entry boundary keeps 3 entries" 3
    (List.length (Wal.read_all path));
  (* ... mid-header (7 of 14 bytes)... *)
  truncate_to (prefix3 + 7);
  check Alcotest.int "tear mid-header keeps 3 entries" 3
    (List.length (Wal.read_all path));
  (* ... and just after a complete header, before its crc. *)
  truncate_to (prefix3 + 14);
  check Alcotest.int "tear after header keeps 3 entries" 3
    (List.length (Wal.read_all path));
  cleanup path

(* --- a Before image past the data file's end must not crash recovery --- *)

let test_undo_beyond_page_count () =
  let path = temp_path "beyond" in
  cleanup path;
  let wal_path = path ^ ".wal" in
  let img = Bytes.make Page.size 'u' in
  let wal = Wal.open_ wal_path in
  Wal.append wal (Wal.Begin 7);
  Wal.append wal (Wal.Before (7, 5, img)); (* page 5 of an empty file *)
  Wal.flush wal;
  Wal.close wal;
  check Alcotest.bool "log demands recovery" true
    (Recovery.needs_recovery wal_path);
  let pager = Pager.create path in
  check Alcotest.int "data file starts empty" 0 (Pager.page_count pager);
  let report = Recovery.recover ~wal_path pager in
  check Alcotest.int "file extended to cover the image" 6
    (Pager.page_count pager);
  check (Alcotest.list Alcotest.int) "txn rolled back" [ 7 ]
    report.Recovery.rolled_back;
  check Alcotest.int "one page undone" 1 report.Recovery.pages_undone;
  check Alcotest.char "undo image applied" 'u'
    (Bytes.get (Pager.read pager 5) 0);
  Pager.close pager;
  cleanup path;
  cleanup wal_path

(* --- the I/O seam: no direct Unix calls outside the VFS layer --- *)

let test_no_direct_io_in_storage () =
  (* dune copies library sources into the build tree, so they are
     reachable from the test's cwd.  The VFS implementations and the
     pread/pwrite shim are the seam itself and are exempt. *)
  let dir = "../lib/storage" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Printf.printf "storage sources not present; seam check skipped\n"
  else begin
    let exempt = [ "vfs.ml"; "extUnix.ml" ] in
    let forbidden =
      [ "Unix.read"; "Unix.write"; "Unix.fsync"; "Unix.openfile";
        "Unix.lseek"; "Unix.ftruncate"; "Unix.fstat"; "open_out";
        "open_in" ]
    in
    let contains line sub =
      let ll = String.length line and ls = String.length sub in
      let rec at i = i + ls <= ll && (String.sub line i ls = sub || at (i + 1)) in
      at 0
    in
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".ml" && not (List.mem name exempt)
        then begin
          let ic = open_in (Filename.concat dir name) in
          let lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               incr lineno;
               List.iter
                 (fun bad ->
                   if contains line bad then
                     Alcotest.failf "%s:%d bypasses the VFS seam: %s" name
                       !lineno bad)
                 forbidden
             done
           with End_of_file -> ());
          close_in ic
        end)
      (Sys.readdir dir)
  end

let () =
  Alcotest.run "hyper_fault_injection"
    [
      ( "faults",
        [
          Alcotest.test_case "seeded crash sweep" `Quick test_crash_sweep;
          Alcotest.test_case "transient EIO retried" `Quick
            test_transient_eio_retried;
          Alcotest.test_case "ENOSPC degrades to read-only" `Quick
            test_enospc_read_only;
          Alcotest.test_case "checksum detects corruption" `Quick
            test_checksum_detects_corruption;
          Alcotest.test_case "torn WAL tail on entry boundary" `Quick
            test_torn_tail_on_entry_boundary;
          Alcotest.test_case "undo image beyond page count" `Quick
            test_undo_beyond_page_count;
          Alcotest.test_case "no direct I/O outside the VFS" `Quick
            test_no_direct_io_in_storage;
        ] );
    ]

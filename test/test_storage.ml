(* Tests for the storage engine: pager, buffer pool, slotted pages, heap
   files with overflow, free list, meta page, WAL and crash recovery
   (including fault injection via torn logs). *)

open Hyper_storage

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_test_%d_%s_%d" (Unix.getpid ()) name !counter)

let with_file_pager name k =
  let path = temp_path name in
  let pager = Pager.create path in
  Fun.protect
    ~finally:(fun () ->
      Pager.close pager;
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".sum" ])
    (fun () -> k pager path)

(* --- Pager --- *)

let test_pager_roundtrip () =
  with_file_pager "pager" (fun pager _path ->
      let id = Pager.allocate pager in
      check Alcotest.int "first page id" 0 id;
      let page = Page.alloc () in
      Bytes.fill page 0 16 'x';
      Pager.write pager id page;
      let back = Pager.read pager id in
      check Alcotest.bytes "round trip" page back)

let test_pager_persistence () =
  let path = temp_path "persist" in
  let pager = Pager.create path in
  let id = Pager.allocate pager in
  let page = Page.alloc () in
  Bytes.blit_string "persist me" 0 page 100 10;
  Pager.write pager id page;
  Pager.close pager;
  let pager2 = Pager.create path in
  check Alcotest.int "page count survives" 1 (Pager.page_count pager2);
  let back = Pager.read pager2 id in
  check Alcotest.string "data survives" "persist me"
    (Bytes.to_string (Page.get_sub back ~pos:100 ~len:10));
  Pager.close pager2;
  Sys.remove path;
  Sys.remove (path ^ ".sum")

let test_pager_bounds () =
  with_file_pager "bounds" (fun pager _ ->
      Alcotest.check_raises "unallocated read"
        (Invalid_argument "Pager: page 0 out of range (count 0)") (fun () ->
          ignore (Pager.read pager 0)))

let test_pager_hooks_and_stats () =
  with_file_pager "hooks" (fun pager _ ->
      let reads = ref 0 and writes = ref 0 in
      Pager.set_hooks pager
        ~on_read:(fun _ -> incr reads)
        ~on_write:(fun _ -> incr writes);
      let id = Pager.allocate pager in
      Pager.write pager id (Page.alloc ());
      ignore (Pager.read pager id);
      ignore (Pager.read pager id);
      check Alcotest.int "reads hook" 2 !reads;
      check Alcotest.int "writes hook" 1 !writes;
      let s = Pager.stats pager in
      check Alcotest.int "reads stat" 2 s.Pager.reads;
      check Alcotest.int "writes stat" 1 s.Pager.writes;
      check Alcotest.int "allocs stat" 1 s.Pager.allocs)

let test_pager_in_memory () =
  let pager = Pager.in_memory () in
  let id = Pager.allocate pager in
  let page = Page.alloc () in
  Bytes.fill page 10 5 'q';
  Pager.write pager id page;
  check Alcotest.bytes "in-memory round trip" page (Pager.read pager id);
  Pager.close pager

(* --- Buffer pool --- *)

let test_pool_caching () =
  with_file_pager "pool" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:4 in
      let id = Buffer_pool.allocate pool in
      Buffer_pool.with_page_w pool id (fun page -> Bytes.fill page 0 8 'a');
      (* Second access must be a hit and see the write. *)
      Buffer_pool.with_page pool id (fun page ->
          check Alcotest.char "cached data" 'a' (Bytes.get page 0));
      let s = Buffer_pool.stats pool in
      check Alcotest.int "no misses yet" 0 s.Buffer_pool.misses;
      Buffer_pool.drop_all pool;
      Buffer_pool.with_page pool id (fun page ->
          check Alcotest.char "flushed to pager" 'a' (Bytes.get page 0));
      check Alcotest.int "one miss after drop" 1
        (Buffer_pool.stats pool).Buffer_pool.misses)

let test_pool_eviction () =
  with_file_pager "evict" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:4 in
      let ids = List.init 8 (fun _ -> Buffer_pool.allocate pool) in
      List.iteri
        (fun i id ->
          Buffer_pool.with_page_w pool id (fun page -> Page.set_u16 page 8 i))
        ids;
      (* All 8 pages written through only 4 frames; all data must survive. *)
      List.iteri
        (fun i id ->
          Buffer_pool.with_page pool id (fun page ->
              check Alcotest.int (Printf.sprintf "page %d" i) i
                (Page.get_u16 page 8)))
        ids;
      let s = Buffer_pool.stats pool in
      if s.Buffer_pool.evictions = 0 then Alcotest.fail "expected evictions")

let test_pool_pin_protects () =
  with_file_pager "pin" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:4 in
      let first = Buffer_pool.allocate pool in
      Buffer_pool.with_page pool first (fun _page ->
          (* While pinned, allocate enough pages to force eviction pressure;
             the pinned frame must never be the victim. *)
          for _ = 1 to 10 do
            let id = Buffer_pool.allocate pool in
            Buffer_pool.with_page_w pool id (fun p -> Page.set_u16 p 2 7)
          done);
      Buffer_pool.with_page pool first (fun page ->
          check Alcotest.int "pinned page intact" 0 (Page.get_u16 page 2)))

let test_pool_discard_dirty () =
  with_file_pager "discard" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:8 in
      let id = Buffer_pool.allocate pool in
      Buffer_pool.with_page_w pool id (fun page -> Bytes.fill page 0 4 'z');
      Buffer_pool.flush_all pool;
      Buffer_pool.with_page_w pool id (fun page -> Bytes.fill page 0 4 'w');
      Buffer_pool.discard_dirty pool;
      Buffer_pool.with_page pool id (fun page ->
          check Alcotest.char "dirty write discarded" 'z' (Bytes.get page 0)))

let test_pool_first_dirty_hook () =
  with_file_pager "hook" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:8 in
      let captured = ref [] in
      Buffer_pool.set_txn_hooks pool
        ~on_first_dirty:(fun id img -> captured := (id, Bytes.get img 0) :: !captured)
        ~on_evict_dirty:(fun _ _ -> ());
      let id = Buffer_pool.allocate pool in
      (* allocate counts as a first-dirty (before-image = zeroes); start a
         fresh txn window for the scenario under test. *)
      ignore (Buffer_pool.take_dirty_set pool);
      captured := [];
      Buffer_pool.with_page_w pool id (fun page -> Bytes.fill page 0 4 'a');
      Buffer_pool.with_page_w pool id (fun page -> Bytes.fill page 0 4 'b');
      (* Two writes, one capture; before-image predates the first write. *)
      check Alcotest.int "one capture" 1 (List.length !captured);
      let _, first_byte = List.hd !captured in
      check Alcotest.char "before image is pre-write" '\000' first_byte;
      let dirty = Buffer_pool.take_dirty_set pool in
      check Alcotest.int "one dirty page" 1 (List.length dirty);
      (* After take_dirty_set, the next write captures again. *)
      Buffer_pool.with_page_w pool id (fun page -> Bytes.fill page 0 4 'c');
      check Alcotest.int "recapture after take" 2 (List.length !captured);
      let _, snd_byte = List.hd !captured in
      check Alcotest.char "second before image sees b" 'b' snd_byte)

(* A clean frame over a Memory pager is a zero-copy view of the store
   page; the first write must copy-on-write so the store stays isolated
   until flush. *)
let test_pool_cow_memory_isolation () =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity:4 in
  let id = Buffer_pool.allocate pool in
  Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 8 'a');
  Buffer_pool.flush_all pool;
  Buffer_pool.drop_all pool;
  Buffer_pool.with_page pool id (fun p ->
      check Alcotest.char "view sees store" 'a' (Bytes.get p 0));
  Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 8 'b');
  check Alcotest.char "store isolated from dirty frame" 'a'
    (Bytes.get (Pager.read pager id) 0);
  Buffer_pool.flush_all pool;
  check Alcotest.char "store updated on flush" 'b'
    (Bytes.get (Pager.read pager id) 0);
  Pager.close pager

(* Pin-safety with borrowed (un-owned) frames: churning every page
   through a 4-frame pool while one view is pinned must neither evict
   the pinned frame nor corrupt its contents. *)
let test_pool_view_pin_safety () =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity:4 in
  let ids = List.init 12 (fun _ -> Buffer_pool.allocate pool) in
  List.iteri
    (fun i id -> Buffer_pool.with_page_w pool id (fun p -> Page.set_u16 p 0 i))
    ids;
  Buffer_pool.flush_all pool;
  Buffer_pool.drop_all pool;
  Buffer_pool.with_page pool (List.hd ids) (fun p ->
      List.iteri
        (fun i id ->
          if i > 0 then
            Buffer_pool.with_page pool id (fun q ->
                check Alcotest.int (Printf.sprintf "page %d" i) i
                  (Page.get_u16 q 0)))
        ids;
      check Alcotest.int "pinned view intact" 0 (Page.get_u16 p 0));
  Pager.close pager

(* --- Slotted pages --- *)

let test_slotted_insert_read () =
  let page = Page.alloc () in
  Slotted.init page;
  let r1 = Bytes.of_string "hello" and r2 = Bytes.of_string "world!" in
  let s1 = Option.get (Slotted.insert page r1) in
  let s2 = Option.get (Slotted.insert page r2) in
  check Alcotest.bytes "read r1" r1 (Slotted.read page s1);
  check Alcotest.bytes "read r2" r2 (Slotted.read page s2);
  check Alcotest.int "two slots" 2 (Slotted.slot_count page);
  check Alcotest.int "two live" 2 (Slotted.live_records page)

let test_slotted_delete_reuse () =
  let page = Page.alloc () in
  Slotted.init page;
  let s1 = Option.get (Slotted.insert page (Bytes.make 10 'a')) in
  let _s2 = Option.get (Slotted.insert page (Bytes.make 10 'b')) in
  Slotted.delete page s1;
  check Alcotest.int "one live" 1 (Slotted.live_records page);
  Alcotest.check_raises "read deleted" (Invalid_argument "Slotted: slot 0 is free")
    (fun () -> ignore (Slotted.read page s1));
  let s3 = Option.get (Slotted.insert page (Bytes.make 4 'c')) in
  check Alcotest.int "slot reused" s1 s3

let test_slotted_fill_and_compact () =
  let page = Page.alloc () in
  Slotted.init page;
  (* Fill with 100-byte records until full. *)
  let slots = ref [] in
  (try
     while true do
       match Slotted.insert page (Bytes.make 100 'x') with
       | Some s -> slots := s :: !slots
       | None -> raise Exit
     done
   with Exit -> ());
  let n = List.length !slots in
  if n < 35 then Alcotest.failf "page held only %d 100-byte records" n;
  (* Delete every other record, then a 150-byte record must fit after
     compaction. *)
  List.iteri (fun i s -> if i mod 2 = 0 then Slotted.delete page s) !slots;
  (match Slotted.insert page (Bytes.make 150 'y') with
  | Some _ -> ()
  | None -> Alcotest.fail "compaction did not reclaim space");
  (* Survivors intact after compaction. *)
  List.iteri
    (fun i s ->
      if i mod 2 = 1 then
        check Alcotest.bytes
          (Printf.sprintf "survivor %d" i)
          (Bytes.make 100 'x') (Slotted.read page s))
    !slots

let test_slotted_update_in_place () =
  let page = Page.alloc () in
  Slotted.init page;
  let s = Option.get (Slotted.insert page (Bytes.of_string "abcdef")) in
  check Alcotest.bool "shrink ok" true (Slotted.update page s (Bytes.of_string "xy"));
  check Alcotest.bytes "shrunk" (Bytes.of_string "xy") (Slotted.read page s);
  check Alcotest.bool "grow ok" true
    (Slotted.update page s (Bytes.make 200 'g'));
  check Alcotest.bytes "grown" (Bytes.make 200 'g') (Slotted.read page s)

let test_slotted_update_too_big () =
  let page = Page.alloc () in
  Slotted.init page;
  let s = Option.get (Slotted.insert page (Bytes.make 2000 'a')) in
  let _ = Option.get (Slotted.insert page (Bytes.make 1500 'b')) in
  (* Growing record a to 3000 cannot fit (1500 + 3000 > capacity). *)
  check Alcotest.bool "grow fails" false
    (Slotted.update page s (Bytes.make 3000 'c'));
  check Alcotest.bytes "record a unchanged" (Bytes.make 2000 'a')
    (Slotted.read page s)

(* Model-based property: a slotted page behaves like a map from slots to
   records under random insert/delete/update. *)
let prop_slotted_model =
  QCheck.Test.make ~name:"slotted page vs model" ~count:60
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 300)))
    (fun ops ->
      let page = Page.alloc () in
      Slotted.init page;
      let model : (int, bytes) Hashtbl.t = Hashtbl.create 16 in
      let next_char = ref 0 in
      List.iter
        (fun (op, size) ->
          let payload () =
            incr next_char;
            Bytes.make size (Char.chr (Char.code 'a' + (!next_char mod 26)))
          in
          match op with
          | 0 -> (
            let r = payload () in
            match Slotted.insert page r with
            | Some s -> Hashtbl.replace model s r
            | None -> ())
          | 1 -> (
            match Hashtbl.fold (fun k _ _ -> Some k) model None with
            | Some s ->
              Slotted.delete page s;
              Hashtbl.remove model s
            | None -> ())
          | _ -> (
            match Hashtbl.fold (fun k _ _ -> Some k) model None with
            | Some s ->
              let r = payload () in
              if Slotted.update page s r then Hashtbl.replace model s r
            | None -> ()))
        ops;
      Hashtbl.fold
        (fun s r acc -> acc && Bytes.equal (Slotted.read page s) r)
        model true
      && Slotted.live_records page = Hashtbl.length model)

(* --- Heap --- *)

let with_heap k =
  with_file_pager "heap" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:64 in
      ignore (Buffer_pool.allocate pool) (* reserve page 0 as meta slot *);
      let freelist = Freelist.attach pool ~head:0 in
      let heap = Heap.fresh pool freelist in
      k pool heap)

let test_heap_small_records () =
  with_heap (fun _pool heap ->
      let rids =
        List.init 100 (fun i ->
            (i, Heap.insert heap (Bytes.of_string (Printf.sprintf "record-%d" i))))
      in
      List.iter
        (fun (i, rid) ->
          check Alcotest.string
            (Printf.sprintf "read %d" i)
            (Printf.sprintf "record-%d" i)
            (Bytes.to_string (Heap.read heap rid)))
        rids;
      check Alcotest.int "count" 100 (Heap.record_count heap))

let test_heap_overflow_records () =
  with_heap (fun _pool heap ->
      (* A FormNode-sized record (≈7.8 KB) spans overflow pages. *)
      let big = Bytes.init 7800 (fun i -> Char.chr (i mod 251)) in
      let rid = Heap.insert heap big in
      check Alcotest.bytes "big record round trip" big (Heap.read heap rid);
      let huge = Bytes.init 60_000 (fun i -> Char.chr ((i * 7) mod 256)) in
      let rid2 = Heap.insert heap huge in
      check Alcotest.bytes "huge record round trip" huge (Heap.read heap rid2);
      check Alcotest.bytes "small record still fine" big (Heap.read heap rid))

let test_heap_update_relocation () =
  with_heap (fun _pool heap ->
      let rid = Heap.insert heap (Bytes.make 100 'a') in
      (* Grow within the page. *)
      let rid2 = Heap.update heap rid (Bytes.make 200 'b') in
      check Alcotest.bytes "grown" (Bytes.make 200 'b') (Heap.read heap rid2);
      (* Grow past inline limit: becomes an overflow record. *)
      let rid3 = Heap.update heap rid2 (Bytes.make 10_000 'c') in
      check Alcotest.bytes "overflowed" (Bytes.make 10_000 'c')
        (Heap.read heap rid3);
      (* Shrink back to inline. *)
      let rid4 = Heap.update heap rid3 (Bytes.make 10 'd') in
      check Alcotest.bytes "shrunk" (Bytes.make 10 'd') (Heap.read heap rid4))

let test_heap_delete () =
  with_heap (fun _pool heap ->
      let rid = Heap.insert heap (Bytes.make 50 'x') in
      Heap.delete heap rid;
      check Alcotest.int "empty" 0 (Heap.record_count heap))

let test_heap_overflow_pages_recycled () =
  with_heap (fun pool heap ->
      let big () = Bytes.make 20_000 'o' in
      let rid = Heap.insert heap (big ()) in
      let pages_before = Pager.page_count (Buffer_pool.pager pool) in
      Heap.delete heap rid;
      (* Inserting another big record must reuse the freed chain. *)
      let _rid2 = Heap.insert heap (big ()) in
      let pages_after = Pager.page_count (Buffer_pool.pager pool) in
      check Alcotest.int "no file growth on reuse" pages_before pages_after)

let test_heap_clustering_hint () =
  with_heap (fun _pool heap ->
      let anchor = Heap.insert heap (Bytes.make 40 'p') in
      let near = Heap.insert ~near:anchor heap (Bytes.make 40 'c') in
      check Alcotest.int "same page as anchor" (Heap.rid_page anchor)
        (Heap.rid_page near))

(* [read_with] hands inline records out as a window into the pinned
   page (no intermediate copy); overflow records are assembled and
   presented at offset zero. *)
let test_heap_read_with_views () =
  with_heap (fun _pool heap ->
      let small = Bytes.of_string "zero-copy-inline-record" in
      let rid = Heap.insert heap small in
      let got =
        Heap.read_with heap rid (fun b ~off ~len -> Bytes.sub b off len)
      in
      check Alcotest.bytes "inline via view" small got;
      Heap.read_with heap rid (fun b ~off ~len ->
          check Alcotest.bool "in-place window, not a fresh buffer" true
            (off > 0 || Bytes.length b > len));
      let big = Bytes.init 20_000 (fun i -> Char.chr (i mod 251)) in
      let rid2 = Heap.insert heap big in
      Heap.read_with heap rid2 (fun b ~off ~len ->
          check Alcotest.int "overflow at offset zero" 0 off;
          check Alcotest.int "overflow length" 20_000 len;
          check Alcotest.bytes "overflow assembled" big (Bytes.sub b off len)))

(* The [legacy_copies] tuning knob must change allocation behaviour
   only, never results. *)
let test_heap_legacy_copies_equivalence () =
  with_heap (fun _pool heap ->
      let small = Bytes.of_string "legacy-vs-zero-copy" in
      let big = Bytes.init 9_000 (fun i -> Char.chr (i * 3 mod 256)) in
      let r1 = Heap.insert heap small in
      let r2 = Heap.insert heap big in
      let read_all () = (Heap.read heap r1, Heap.read heap r2) in
      let fast = read_all () in
      Fun.protect
        ~finally:(fun () -> Storage_tuning.legacy_copies := false)
        (fun () ->
          Storage_tuning.legacy_copies := true;
          let legacy = read_all () in
          check Alcotest.bytes "small record equal" (fst fast) (fst legacy);
          check Alcotest.bytes "big record equal" (snd fast) (snd legacy)))

let test_heap_iter_order_and_attach () =
  with_file_pager "heap2" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:64 in
      ignore (Buffer_pool.allocate pool);
      let freelist = Freelist.attach pool ~head:0 in
      let heap = Heap.fresh pool freelist in
      let n = 500 in
      for i = 0 to n - 1 do
        ignore (Heap.insert heap (Bytes.of_string (string_of_int i)))
      done;
      Buffer_pool.flush_all pool;
      (* Reattach and verify everything is still reachable. *)
      let heap2 = Heap.attach pool freelist ~head:(Heap.first_page heap) in
      let seen = ref 0 in
      Heap.iter heap2 (fun _ _ -> incr seen);
      check Alcotest.int "all records via attach" n !seen)

(* --- Freelist --- *)

let test_freelist_lifo () =
  with_file_pager "freelist" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:16 in
      ignore (Buffer_pool.allocate pool);
      let fl = Freelist.attach pool ~head:0 in
      let a = Buffer_pool.allocate pool in
      let b = Buffer_pool.allocate pool in
      Freelist.push fl a;
      Freelist.push fl b;
      check Alcotest.int "length" 2 (Freelist.length fl);
      check (Alcotest.option Alcotest.int) "pop b" (Some b) (Freelist.pop fl);
      check (Alcotest.option Alcotest.int) "pop a" (Some a) (Freelist.pop fl);
      check (Alcotest.option Alcotest.int) "empty" None (Freelist.pop fl);
      (* alloc falls back to the pager when empty *)
      let c = Freelist.alloc fl in
      if c = a || c = b then Alcotest.fail "expected a fresh page")

(* --- Meta --- *)

let test_meta_roundtrip () =
  with_file_pager "meta" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:8 in
      ignore (Buffer_pool.allocate pool);
      check Alcotest.bool "not formatted" false (Meta.is_formatted pool);
      Meta.format pool;
      check Alcotest.bool "formatted" true (Meta.is_formatted pool);
      Meta.store pool [ ("heap", 3L); ("btree_uid", 7L) ];
      check (Alcotest.option Alcotest.int64) "get heap" (Some 3L)
        (Meta.get pool "heap");
      Meta.set pool "heap" 9L;
      Meta.set pool "new_key" 1L;
      check Alcotest.int64 "updated" 9L (Meta.get_exn pool "heap");
      check Alcotest.int64 "added" 1L (Meta.get_exn pool "new_key");
      check Alcotest.int64 "untouched" 7L (Meta.get_exn pool "btree_uid");
      check (Alcotest.option Alcotest.int64) "missing" None
        (Meta.get pool "nope"))

(* --- WAL + recovery --- *)

let page_of_char c =
  let p = Page.alloc () in
  Bytes.fill p 0 Page.size c;
  p

let test_wal_roundtrip () =
  let path = temp_path "wal" in
  let wal = Wal.open_ path in
  let entries =
    [
      Wal.Begin 1;
      Wal.Before (1, 2, page_of_char 'a');
      Wal.After (1, 2, page_of_char 'b');
      Wal.Commit 1;
      Wal.Checkpoint;
    ]
  in
  List.iter (Wal.append wal) entries;
  Wal.flush wal;
  let back = Wal.read_all path in
  check Alcotest.int "entry count" (List.length entries) (List.length back);
  List.iter2
    (fun a b ->
      check Alcotest.string "entry" (Wal.entry_to_string a)
        (Wal.entry_to_string b))
    entries back;
  Wal.close wal;
  Sys.remove path

let test_wal_torn_tail () =
  let path = temp_path "torn" in
  let wal = Wal.open_ path in
  Wal.append wal (Wal.Begin 1);
  Wal.append wal (Wal.After (1, 0, page_of_char 'x'));
  Wal.append wal (Wal.Commit 1);
  Wal.flush wal;
  let full = (Unix.stat path).Unix.st_size in
  Wal.close wal;
  (* Truncate mid-entry: the commit record is destroyed. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (full - 3);
  Unix.close fd;
  let back = Wal.read_all path in
  check Alcotest.int "commit lost, prefix kept" 2 (List.length back);
  Sys.remove path

let test_wal_missing_file () =
  check Alcotest.int "missing file is empty log" 0
    (List.length (Wal.read_all (temp_path "nonexistent")))

let test_recovery_redo () =
  with_file_pager "redo" (fun pager _path ->
      let wal_path = temp_path "redo_wal" in
      let p0 = Pager.allocate pager in
      Pager.write pager p0 (page_of_char 'o');
      (* Committed txn whose after-image never reached the main file. *)
      let wal = Wal.open_ wal_path in
      Wal.append wal (Wal.Begin 1);
      Wal.append wal (Wal.Before (1, p0, page_of_char 'o'));
      Wal.append wal (Wal.After (1, p0, page_of_char 'n'));
      Wal.append wal (Wal.Commit 1);
      Wal.flush wal;
      Wal.close wal;
      let report = Recovery.recover ~wal_path pager in
      check (Alcotest.list Alcotest.int) "committed" [ 1 ] report.Recovery.committed;
      check Alcotest.int "pages redone" 1 report.Recovery.pages_redone;
      check Alcotest.char "page holds new value" 'n'
        (Bytes.get (Pager.read pager p0) 0);
      Sys.remove wal_path)

let test_recovery_undo () =
  with_file_pager "undo" (fun pager _path ->
      let wal_path = temp_path "undo_wal" in
      let p0 = Pager.allocate pager in
      (* Uncommitted txn stole the page onto disk before crashing. *)
      Pager.write pager p0 (page_of_char 'u');
      let wal = Wal.open_ wal_path in
      Wal.append wal (Wal.Begin 9);
      Wal.append wal (Wal.Before (9, p0, page_of_char 'o'));
      Wal.append wal (Wal.After (9, p0, page_of_char 'u'));
      Wal.flush wal;
      Wal.close wal;
      let report = Recovery.recover ~wal_path pager in
      check (Alcotest.list Alcotest.int) "rolled back" [ 9 ]
        report.Recovery.rolled_back;
      check Alcotest.char "before image restored" 'o'
        (Bytes.get (Pager.read pager p0) 0);
      Sys.remove wal_path)

let test_recovery_mixed () =
  with_file_pager "mixed" (fun pager _path ->
      let wal_path = temp_path "mixed_wal" in
      let p0 = Pager.allocate pager and p1 = Pager.allocate pager in
      Pager.write pager p0 (page_of_char '0');
      Pager.write pager p1 (page_of_char '1');
      let wal = Wal.open_ wal_path in
      (* txn 1 commits a change to p0; txn 2 crashes mid-flight on p1. *)
      Wal.append wal (Wal.Begin 1);
      Wal.append wal (Wal.Before (1, p0, page_of_char '0'));
      Wal.append wal (Wal.After (1, p0, page_of_char 'A'));
      Wal.append wal (Wal.Commit 1);
      Wal.append wal (Wal.Begin 2);
      Wal.append wal (Wal.Before (2, p1, page_of_char '1'));
      Wal.flush wal;
      Wal.close wal;
      Pager.write pager p1 (page_of_char 'Z') (* stolen uncommitted write *);
      let report = Recovery.recover ~wal_path pager in
      check (Alcotest.list Alcotest.int) "committed" [ 1 ] report.Recovery.committed;
      check (Alcotest.list Alcotest.int) "rolled back" [ 2 ]
        report.Recovery.rolled_back;
      check Alcotest.char "p0 redone" 'A' (Bytes.get (Pager.read pager p0) 0);
      check Alcotest.char "p1 undone" '1' (Bytes.get (Pager.read pager p1) 0);
      Sys.remove wal_path)

let test_recovery_checkpoint_bound () =
  with_file_pager "ckpt" (fun pager _path ->
      let wal_path = temp_path "ckpt_wal" in
      let p0 = Pager.allocate pager in
      Pager.write pager p0 (page_of_char 'k');
      let wal = Wal.open_ wal_path in
      Wal.append wal (Wal.Begin 1);
      Wal.append wal (Wal.After (1, p0, page_of_char 'x'));
      Wal.append wal (Wal.Commit 1);
      Wal.append wal Wal.Checkpoint;
      Wal.flush wal;
      Wal.close wal;
      check Alcotest.bool "no recovery needed" false
        (Recovery.needs_recovery wal_path);
      let report = Recovery.recover ~wal_path pager in
      check Alcotest.int "nothing redone past checkpoint" 0
        report.Recovery.pages_redone;
      check Alcotest.char "page untouched" 'k'
        (Bytes.get (Pager.read pager p0) 0);
      Sys.remove wal_path)

(* --- Object table --- *)

let test_object_table () =
  with_file_pager "objtab" (fun pager _ ->
      let pool = Buffer_pool.create pager ~capacity:32 in
      ignore (Buffer_pool.allocate pool);
      let fl = Freelist.attach pool ~head:0 in
      let tab = Object_table.fresh pool fl in
      check (Alcotest.option Alcotest.int) "unset" None (Object_table.get tab ~oid:1);
      Object_table.set tab ~oid:1 ~rid:100;
      Object_table.set tab ~oid:2000 ~rid:4242 (* forces chain growth *);
      check Alcotest.int "oid 1" 100 (Object_table.get_exn tab ~oid:1);
      check Alcotest.int "oid 2000" 4242 (Object_table.get_exn tab ~oid:2000);
      check (Alcotest.option Alcotest.int) "gap oid" None
        (Object_table.get tab ~oid:1999);
      Object_table.set tab ~oid:1 ~rid:555;
      check Alcotest.int "oid 1 updated" 555 (Object_table.get_exn tab ~oid:1);
      Object_table.remove tab ~oid:1;
      check (Alcotest.option Alcotest.int) "removed" None
        (Object_table.get tab ~oid:1);
      (* Survives reattach. *)
      Buffer_pool.flush_all pool;
      let tab2 = Object_table.attach pool fl ~head:(Object_table.head tab) in
      check Alcotest.int "reattached" 4242 (Object_table.get_exn tab2 ~oid:2000);
      Alcotest.check_raises "oid 0 invalid"
        (Invalid_argument "Object_table: oid must be >= 1") (fun () ->
          ignore (Object_table.get tab ~oid:0)))

let () =
  Alcotest.run "hyper_storage"
    [
      ( "pager",
        [
          Alcotest.test_case "round trip" `Quick test_pager_roundtrip;
          Alcotest.test_case "persistence" `Quick test_pager_persistence;
          Alcotest.test_case "bounds" `Quick test_pager_bounds;
          Alcotest.test_case "hooks and stats" `Quick test_pager_hooks_and_stats;
          Alcotest.test_case "in-memory backing" `Quick test_pager_in_memory;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "caching" `Quick test_pool_caching;
          Alcotest.test_case "eviction under pressure" `Quick test_pool_eviction;
          Alcotest.test_case "pin protects" `Quick test_pool_pin_protects;
          Alcotest.test_case "discard dirty (abort)" `Quick test_pool_discard_dirty;
          Alcotest.test_case "first-dirty hook" `Quick test_pool_first_dirty_hook;
          Alcotest.test_case "copy-on-write isolation" `Quick
            test_pool_cow_memory_isolation;
          Alcotest.test_case "view pin safety" `Quick test_pool_view_pin_safety;
        ] );
      ( "slotted",
        [
          Alcotest.test_case "insert/read" `Quick test_slotted_insert_read;
          Alcotest.test_case "delete + slot reuse" `Quick test_slotted_delete_reuse;
          Alcotest.test_case "fill and compact" `Quick test_slotted_fill_and_compact;
          Alcotest.test_case "update in place" `Quick test_slotted_update_in_place;
          Alcotest.test_case "update too big" `Quick test_slotted_update_too_big;
          qtest prop_slotted_model;
        ] );
      ( "heap",
        [
          Alcotest.test_case "small records" `Quick test_heap_small_records;
          Alcotest.test_case "overflow records" `Quick test_heap_overflow_records;
          Alcotest.test_case "update relocation" `Quick test_heap_update_relocation;
          Alcotest.test_case "delete" `Quick test_heap_delete;
          Alcotest.test_case "overflow pages recycled" `Quick
            test_heap_overflow_pages_recycled;
          Alcotest.test_case "clustering hint" `Quick test_heap_clustering_hint;
          Alcotest.test_case "iter and attach" `Quick test_heap_iter_order_and_attach;
          Alcotest.test_case "read_with views" `Quick test_heap_read_with_views;
          Alcotest.test_case "legacy copies equivalence" `Quick
            test_heap_legacy_copies_equivalence;
        ] );
      ( "freelist",
        [ Alcotest.test_case "lifo push/pop" `Quick test_freelist_lifo ] );
      ("meta", [ Alcotest.test_case "round trip" `Quick test_meta_roundtrip ]);
      ( "wal",
        [
          Alcotest.test_case "round trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_wal_torn_tail;
          Alcotest.test_case "missing file" `Quick test_wal_missing_file;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "redo committed" `Quick test_recovery_redo;
          Alcotest.test_case "undo uncommitted" `Quick test_recovery_undo;
          Alcotest.test_case "mixed redo+undo" `Quick test_recovery_mixed;
          Alcotest.test_case "checkpoint bound" `Quick test_recovery_checkpoint_bound;
        ] );
      ( "object_table",
        [ Alcotest.test_case "set/get/grow/reattach" `Quick test_object_table ] );
    ]

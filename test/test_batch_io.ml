(* Tests for the batched page I/O path and traversal prefetch:
   [Pager.read_many] over the vectored [Vfs.pread_multi] (including
   per-sub-read fault injection and torn tails), [Buffer_pool.prefetch]
   / [with_pages] pin safety and statistics, and end-to-end agreement of
   closure traversals with prefetch on and off against the in-memory
   reference backend. *)

open Hyper_storage
module F = Vfs.Faulty
module Mem = Hyper_memdb.Memdb
module Dsk = Hyper_diskdb.Diskdb
module Layout = Hyper_core.Layout
module GenM = Hyper_core.Generator.Make (Mem)
module GenD = Hyper_core.Generator.Make (Dsk)
module OpsM = Hyper_core.Ops.Make (Mem)
module OpsD = Hyper_core.Ops.Make (Dsk)

let check = Alcotest.check

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_batch_%d_%s_%d" (Unix.getpid ()) name !counter)

(* Distinct, position-dependent page contents so a swapped or partially
   filled buffer cannot pass the byte comparison. *)
let page_of i =
  Bytes.init Page.size (fun j -> Char.chr (((i * 131) + (j * 7)) land 0xff))

let fill_pager pager n =
  Array.init n (fun i ->
      let id = Pager.allocate pager in
      let p = page_of i in
      Pager.write pager id p;
      p)

(* --- Pager.read_many --- *)

let check_batch_matches_singles pager ids =
  let batch = Pager.read_many pager ids in
  check Alcotest.int "result arity" (List.length ids) (List.length batch);
  List.iter2
    (fun id b ->
      check Alcotest.bytes
        (Printf.sprintf "page %d identical to single read" id)
        (Pager.read pager id) b)
    ids batch

let test_read_many_file () =
  let path = temp_path "rm_file" in
  let pager = Pager.create path in
  Fun.protect
    ~finally:(fun () ->
      Pager.close pager;
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".sum" ])
    (fun () ->
      let pages = fill_pager pager 7 in
      (* out of order, with a duplicate *)
      check_batch_matches_singles pager [ 5; 0; 3; 3; 6; 1 ];
      check Alcotest.bytes "contents are the written bytes" pages.(5)
        (List.hd (Pager.read_many pager [ 5 ]));
      check Alcotest.int "empty batch" 0 (List.length (Pager.read_many pager [])))

let test_read_many_in_memory () =
  let pager = Pager.in_memory () in
  let _ = fill_pager pager 5 in
  check_batch_matches_singles pager [ 4; 2; 0; 1; 3 ]

let test_read_many_faulty_eio () =
  let env = F.create F.quiet in
  let vfs = F.vfs env in
  let path = "/batch_eio" in
  let pager = Pager.create ~vfs path in
  let pages = fill_pager pager 5 in
  (* One EIO aimed at the third sub-read of the next batch: the faulty
     VFS consults its rules once per (buf, off) pair, so a skip window
     lands inside a vectored read exactly as it would across single
     reads. *)
  let rule =
    { F.suffix = ""; rops = [ `Read ]; fault = Storage_error.Eio;
      transient = false; skip = 2; remaining = 1 }
  in
  F.set_plan env { F.quiet with F.rules = [ rule ] };
  (match Pager.read_many pager [ 0; 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "batch read should have raised EIO"
  | exception
      Storage_error.Error (Storage_error.Io { fault = Storage_error.Eio; _ })
    -> ());
  (* The rule was one-shot; the same batch now succeeds, intact. *)
  let batch = Pager.read_many pager [ 0; 1; 2; 3; 4 ] in
  List.iteri
    (fun i b ->
      check Alcotest.bytes (Printf.sprintf "page %d after fault" i) pages.(i) b)
    batch;
  Pager.close pager

let test_read_many_torn_tail () =
  let env = F.create F.quiet in
  let vfs = F.vfs env in
  let path = "/batch_tear" in
  let pager = Pager.create ~vfs path in
  let pages = fill_pager pager 4 in
  Pager.close pager;
  (* A crash mid-append leaves a partial page at the tail; open must
     truncate it away and batch reads of the surviving prefix must be
     byte-identical to single reads. *)
  let f = vfs.Vfs.open_rw path in
  f.Vfs.truncate ((3 * Page.size) + 100);
  f.Vfs.close ();
  let pager = Pager.create ~vfs path in
  check Alcotest.int "partial tail page truncated away" 3
    (Pager.page_count pager);
  let batch = Pager.read_many pager [ 0; 1; 2 ] in
  List.iteri
    (fun i b ->
      check Alcotest.bytes
        (Printf.sprintf "page %d survives the torn tail" i)
        pages.(i) b)
    batch;
  Pager.close pager

let test_read_many_checksum () =
  let env = F.create F.quiet in
  let vfs = F.vfs env in
  let path = "/batch_crc" in
  let pager = Pager.create ~vfs path in
  let _ = fill_pager pager 3 in
  Pager.close pager;
  (* Corrupt the middle page behind the pager's back; the batch read
     must verify every page of the group and name the bad one. *)
  let f = vfs.Vfs.open_rw path in
  f.Vfs.pwrite ~buf:(Bytes.make 64 '\xde') ~off:(Page.size + 128);
  f.Vfs.close ();
  let pager = Pager.create ~vfs path in
  (match Pager.read_many pager [ 0; 1; 2 ] with
  | _ -> Alcotest.fail "batch read should have failed the checksum"
  | exception
      Storage_error.Error (Storage_error.Corrupt_page { page; _ }) ->
    check Alcotest.int "corrupt page identified" 1 page);
  Pager.close pager

(* --- Buffer_pool.prefetch / with_pages --- *)

let with_pool n k =
  let pager = Pager.in_memory () in
  let pool = Buffer_pool.create pager ~capacity:4 in
  let ids = Array.init n (fun _ -> Buffer_pool.allocate pool) in
  Array.iteri
    (fun i id ->
      Buffer_pool.with_page_w pool id (fun buf ->
          Bytes.blit (page_of i) 0 buf 0 Page.size))
    ids;
  Buffer_pool.flush_all pool;
  Buffer_pool.drop_all pool;
  Buffer_pool.reset_stats pool;
  k pool

let test_prefetch_counts () =
  with_pool 6 (fun pool ->
      Buffer_pool.prefetch pool [ 0; 1; 2; 2 ];
      let s = Buffer_pool.stats pool in
      check Alcotest.int "prefetched pages (deduplicated)" 3
        s.Buffer_pool.prefetches;
      check Alcotest.int "prefetch is not a miss" 0 s.Buffer_pool.misses;
      List.iter
        (fun id ->
          check Alcotest.bytes
            (Printf.sprintf "page %d content" id)
            (page_of id)
            (Buffer_pool.with_page pool id Bytes.copy))
        [ 0; 1; 2 ];
      let s = Buffer_pool.stats pool in
      check Alcotest.int "demand access after prefetch hits" 3
        s.Buffer_pool.hits;
      check Alcotest.int "no misses after prefetch" 0 s.Buffer_pool.misses)

let test_prefetch_never_evicts_pinned () =
  with_pool 10 (fun pool ->
      Buffer_pool.with_page pool 0 (fun b0 ->
          Buffer_pool.with_page pool 1 (fun b1 ->
              Buffer_pool.with_page pool 2 (fun b2 ->
                  let before = (Bytes.copy b0, Bytes.copy b1, Bytes.copy b2) in
                  (* 3 of 4 frames pinned: the batch must be capped at the
                     single unpinned slot, never evicting a pinned frame. *)
                  Buffer_pool.prefetch pool [ 3; 4; 5; 6; 7; 8; 9 ];
                  let s = Buffer_pool.stats pool in
                  check Alcotest.int "batch capped at unpinned slots" 1
                    s.Buffer_pool.prefetches;
                  let a, b, c = before in
                  check Alcotest.bytes "pinned frame 0 untouched" a b0;
                  check Alcotest.bytes "pinned frame 1 untouched" b b1;
                  check Alcotest.bytes "pinned frame 2 untouched" c b2)));
      (* The previously pinned pages are still resident. *)
      let hits_before = (Buffer_pool.stats pool).Buffer_pool.hits in
      List.iter
        (fun id -> ignore (Buffer_pool.with_page pool id Bytes.length : int))
        [ 0; 1; 2 ];
      check Alcotest.bool "pinned frames stayed resident" true
        ((Buffer_pool.stats pool).Buffer_pool.hits >= hits_before + 3))

let test_with_pages () =
  with_pool 6 (fun pool ->
      Buffer_pool.with_pages pool [ 4; 1; 3 ] (fun bufs ->
          check Alcotest.int "buffer arity" 3 (List.length bufs);
          List.iter2
            (fun id buf ->
              check Alcotest.bytes
                (Printf.sprintf "page %d in requested order" id)
                (page_of id) (Bytes.copy buf))
            [ 4; 1; 3 ] bufs);
      let s = Buffer_pool.stats pool in
      check Alcotest.int "missing frames fetched as one batch" 3
        s.Buffer_pool.prefetches;
      (* all frames unpinned again: a full drop must succeed *)
      Buffer_pool.drop_all pool)

(* --- closure traversals: prefetch on/off vs the in-memory reference --- *)

let test_closure_prefetch_agreement () =
  let seed = 97L in
  let leaf_level = 3 in
  let bm = Mem.create () in
  let layout, _ = GenM.generate ~cluster:false bm ~doc:1 ~leaf_level ~seed in
  let open_disk prefetch =
    let path = temp_path (Printf.sprintf "closure_%b" prefetch) in
    let b = Dsk.open_db { (Dsk.default_config ~path) with Dsk.prefetch } in
    ignore (GenD.generate ~cluster:false b ~doc:1 ~leaf_level ~seed);
    (b, path)
  in
  let b_off, p_off = open_disk false in
  let b_on, p_on = open_disk true in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (b, path) ->
          Dsk.close b;
          List.iter
            (fun p -> if Sys.file_exists p then Sys.remove p)
            [ path; path ^ ".wal"; path ^ ".sum" ])
        [ (b_off, p_off); (b_on, p_on) ])
    (fun () ->
      (* cold pools, so the prefetch path has something to fetch *)
      Dsk.clear_caches b_off;
      Dsk.clear_caches b_on;
      Dsk.reset_io b_off;
      Dsk.reset_io b_on;
      let starts =
        Layout.root layout
        :: List.init
             (Layout.level_node_count layout 1)
             (fun i -> Layout.level_first_oid layout 1 + i)
      in
      List.iter
        (fun start ->
          Mem.begin_txn bm;
          let reference = OpsM.closure_1n bm ~start in
          Mem.commit bm;
          Dsk.begin_txn b_off;
          let off = OpsD.closure_1n b_off ~start in
          Dsk.commit b_off;
          Dsk.begin_txn b_on;
          let on = OpsD.closure_1n b_on ~start in
          Dsk.commit b_on;
          check
            (Alcotest.list Alcotest.int)
            (Printf.sprintf "closure from %d, prefetch off vs memdb" start)
            reference off;
          check
            (Alcotest.list Alcotest.int)
            (Printf.sprintf "closure from %d, prefetch on vs memdb" start)
            reference on)
        starts;
      (* and the prefetch path actually engaged *)
      let io = Dsk.io_counters b_on in
      check Alcotest.bool "prefetch batches were issued" true
        (io.Dsk.pool_prefetches > 0))

let () =
  Alcotest.run "hyper_batch_io"
    [
      ( "read_many",
        [
          Alcotest.test_case "file batch = single reads" `Quick
            test_read_many_file;
          Alcotest.test_case "in-memory batch = single reads" `Quick
            test_read_many_in_memory;
          Alcotest.test_case "per-sub-read EIO" `Quick test_read_many_faulty_eio;
          Alcotest.test_case "torn tail" `Quick test_read_many_torn_tail;
          Alcotest.test_case "checksum verified per page" `Quick
            test_read_many_checksum;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "counts as prefetch, then hits" `Quick
            test_prefetch_counts;
          Alcotest.test_case "never evicts a pinned frame" `Quick
            test_prefetch_never_evicts_pinned;
          Alcotest.test_case "with_pages batches and pins" `Quick
            test_with_pages;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "closure1N identical, prefetch on/off vs memdb"
            `Quick test_closure_prefetch_agreement;
        ] );
    ]

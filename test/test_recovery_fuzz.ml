(* Crash-recovery fuzzing over the fault-injecting VFS.

   A workload of K committed transactions (each inserting a batch of 100
   nodes) runs against the disk backend with a tiny buffer pool (so
   dirty-page steals and WAL activity are constant) — entirely on top of
   [Vfs.Faulty], so no real files are involved.  A dry run counts the
   total number of mutating VFS operations W the workload issues; the
   fuzzer then replays the workload with an in-process crash injected at
   every stratified point k in [1..W]: the k-th write raises [Vfs.Crash]
   mid-operation (optionally tearing the in-flight write), we simulate
   the power failure, and reopen the store over the surviving bytes.

   Required property: recovery always lands on a *committed prefix* —
   the recovered database contains exactly the batches of the first j
   transactions for some j, with the uniqueId index, the object table and
   the heap mutually consistent.  No partial batches, no phantom nodes,
   no broken lookups.  And because the workload commits with
   [durable_sync] against an honest fsync, every acknowledged commit must
   survive: j >= acked. *)

open Hyper_core
module B = Hyper_diskdb.Diskdb
module V = Hyper_storage.Vfs
module F = Hyper_storage.Vfs.Faulty

let check = Alcotest.check

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_fuzz_%d_%s_%d" (Unix.getpid ()) name !counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ]

let batch_size = 100

let insert_batch b ~batch =
  B.begin_txn b;
  for i = 0 to batch_size - 1 do
    let oid = (batch * batch_size) + i + 1 in
    B.create_node b
      { Schema.oid; doc = 1; unique_id = oid; ten = (batch mod 10) + 1;
        hundred = (oid mod 100) + 1; million = oid;
        payload =
          (if i mod 10 = 0 then Schema.P_text (String.make 500 'f')
           else Schema.P_internal) }
  done;
  B.commit b

(* Check the committed-prefix property on a recovered store. *)
let assert_committed_prefix b ~max_batches =
  let count = B.node_count b ~doc:1 in
  if count mod batch_size <> 0 then
    Alcotest.failf "partial batch visible: %d nodes" count;
  let batches = count / batch_size in
  if batches > max_batches then
    Alcotest.failf "phantom batches: %d > %d" batches max_batches;
  (* Every node of the prefix is fully reachable... *)
  for oid = 1 to count do
    (match B.lookup_unique b ~doc:1 oid with
    | Some o when o = oid -> ()
    | Some o -> Alcotest.failf "uid %d resolves to %d" oid o
    | None -> Alcotest.failf "uid %d lost from index" oid);
    let h = B.hundred b oid in
    if h <> (oid mod 100) + 1 then
      Alcotest.failf "oid %d: hundred corrupted (%d)" oid h
  done;
  (* ... and nothing beyond it exists. *)
  for oid = count + 1 to max_batches * batch_size do
    match B.lookup_unique b ~doc:1 oid with
    | None -> ()
    | Some _ -> Alcotest.failf "uid %d should not exist" oid
  done;
  (* The attribute index agrees with a scan. *)
  let indexed = List.length (B.range_hundred b ~doc:1 ~lo:1 ~hi:100) in
  check Alcotest.int "index covers exactly the prefix" count indexed;
  batches

let faulty_config env ~path ~pool_pages =
  { (B.default_config ~path) with
    B.pool_pages; durable_sync = true; vfs = Some (F.vfs env) }

(* Run the workload until it finishes or the VFS kills the power.
   Returns the number of batches whose commit was acknowledged.  The
   final scenario bit leaves a transaction in flight at close time: its
   nodes (oids 900_000+) must never surface after recovery. *)
let run_workload env ~path ~batches ~in_flight =
  let acked = ref 0 in
  (try
     let b = B.open_db (faulty_config env ~path ~pool_pages:8) in
     for batch = 0 to batches - 1 do
       insert_batch b ~batch;
       incr acked
     done;
     if in_flight then begin
       B.begin_txn b;
       for i = 0 to 49 do
         let oid = 900_000 + i in
         B.create_node b
           { Schema.oid; doc = 1; unique_id = oid; ten = 1; hundred = 1;
             million = 1; payload = Schema.P_internal }
       done;
       (* Neither committed nor aborted: the crash takes it down.  Force
          some steal activity so Before images reach the WAL. *)
       B.abort b
     end;
     B.close b
   with V.Crash -> ());
  !acked

(* One crash point: run the workload over a fresh faulty environment
   that powers off at the [k]-th mutating VFS op, then recover and check
   invariants. *)
let run_crash_point ~seed ~k ~power_loss ~lying_fsync ~in_flight =
  let total_batches = 5 in
  let path = temp_path "vfs" in
  let env =
    F.create
      { F.quiet with
        F.seed; crash_after_writes = k; torn_writes = true; power_loss;
        lying_fsync }
  in
  let acked = run_workload env ~path ~batches:total_batches ~in_flight in
  (* The machine reboots: surviving bytes only, faults disarmed. *)
  F.power_fail env;
  F.set_plan env F.quiet;
  let b2 = B.open_db (faulty_config env ~path ~pool_pages:64) in
  let recovered = assert_committed_prefix b2 ~max_batches:total_batches in
  (* durable_sync over an honest fsync: acknowledged commits survive.
     Power loss combined with a lying fsync voids the guarantee. *)
  if not (power_loss && lying_fsync) && recovered < acked then
    Alcotest.failf
      "durability violated (k=%d power=%b lying=%b): acked %d, recovered %d"
      k power_loss lying_fsync acked recovered;
  (* An in-flight transaction must never surface. *)
  (match B.lookup_unique b2 ~doc:1 900_000 with
  | None -> ()
  | Some _ -> Alcotest.fail "in-flight transaction surfaced");
  (* The store stays writable after recovery. *)
  insert_batch b2 ~batch:recovered;
  check Alcotest.int "writable after recovery"
    ((recovered + 1) * batch_size)
    (B.node_count b2 ~doc:1);
  B.close b2

let test_crash_points () =
  (* Dry run: learn how many mutating ops the whole workload issues. *)
  let path = temp_path "dry" in
  let env = F.create F.quiet in
  let acked = run_workload env ~path ~batches:5 ~in_flight:true in
  check Alcotest.int "dry run commits everything" 5 acked;
  let w = F.write_count env in
  if w < 20 then Alcotest.failf "workload too quiet: %d writes" w;
  (* Stratified crash points across the whole write sequence, with the
     fault mode varied per point. *)
  let points = 120 in
  for i = 0 to points - 1 do
    let k = 1 + (i * (w - 1) / (points - 1)) in
    run_crash_point
      ~seed:(Int64.of_int (0xF00D + i))
      ~k ~power_loss:(i mod 2 = 0) ~lying_fsync:(i mod 4 < 2)
      ~in_flight:(i mod 8 >= 4)
  done

let test_wal_fully_lost () =
  (* Losing the whole WAL after a clean flush must still leave the
     committed data intact (commit forces pages to the data file).
     This one runs on real files: it exercises [Vfs.real] end to end. *)
  let path = temp_path "nowal" in
  cleanup path;
  let b = B.open_db { (B.default_config ~path) with B.pool_pages = 8 } in
  insert_batch b ~batch:0;
  insert_batch b ~batch:1;
  B.close b;
  Sys.remove (path ^ ".wal");
  let b2 = B.open_db (B.default_config ~path) in
  check Alcotest.int "data survives without wal" (2 * batch_size)
    (B.node_count b2 ~doc:1);
  ignore (assert_committed_prefix b2 ~max_batches:2);
  B.close b2;
  cleanup path

let () =
  Alcotest.run "hyper_recovery_fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "in-process crash points" `Quick
            test_crash_points;
          Alcotest.test_case "wal lost entirely" `Quick test_wal_fully_lost;
        ] );
    ]

(* Engine-level transaction tests, exercised directly against the shared
   storage session: bracketing errors, WAL hook ordering, commit
   durability, abort restoration with stolen pages, checkpoint
   truncation, and codec property tests for both backends' record
   formats. *)

open Hyper_storage

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_engine_%d_%s_%d" (Unix.getpid ()) name !counter)

let with_engine ?(pool_pages = 8) name k =
  let path = temp_path name in
  let e = Engine.open_ ~path ~pool_pages () in
  Fun.protect
    ~finally:(fun () ->
      (try Engine.close e with _ -> ());
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".sum"; path ^ ".wal" ])
    (fun () -> k e path)

let test_bracketing_errors () =
  with_engine "bracket" (fun e _ ->
      Alcotest.check_raises "commit without begin"
        (Invalid_argument "Engine: no active transaction") (fun () ->
          Engine.commit e);
      Engine.begin_txn e;
      Alcotest.check_raises "nested begin"
        (Invalid_argument "Engine: nested transaction") (fun () ->
          Engine.begin_txn e);
      Alcotest.check_raises "clear_caches inside txn"
        (Invalid_argument "Engine: clear_caches inside a transaction")
        (fun () -> Engine.clear_caches e);
      Engine.abort e;
      check Alcotest.bool "not in txn" false (Engine.in_txn e))

(* Close with a transaction still open (typically: an exception unwound
   through a [Fun.protect] whose finalizer closes the store) rolls the
   transaction back instead of raising — the uncommitted writes must
   not survive a reopen. *)
let test_close_rolls_back_open_txn () =
  with_engine "close_rollback" (fun e path ->
      let pool = Engine.pool e in
      Engine.begin_txn e;
      let id = Buffer_pool.allocate pool in
      Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 8 'c');
      Engine.commit e;
      Engine.begin_txn e;
      Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 8 'u');
      Engine.close e;
      let e2 = Engine.open_ ~path ~pool_pages:8 () in
      Fun.protect
        ~finally:(fun () -> Engine.close e2)
        (fun () ->
          Buffer_pool.with_page (Engine.pool e2) id (fun p ->
              check Alcotest.char "uncommitted write rolled back" 'c'
                (Bytes.get p 0))))

let test_commit_then_visible_after_drop () =
  with_engine "commit" (fun e _ ->
      let pool = Engine.pool e in
      Engine.begin_txn e;
      let id = Buffer_pool.allocate pool in
      Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 8 'c');
      Engine.commit e;
      Engine.clear_caches e;
      Buffer_pool.with_page pool id (fun p ->
          check Alcotest.char "committed data on disk" 'c' (Bytes.get p 0)))

let test_abort_restores_stolen_pages () =
  with_engine ~pool_pages:4 "abort" (fun e _ ->
      let pool = Engine.pool e in
      (* Committed baseline on several pages. *)
      Engine.begin_txn e;
      let ids = List.init 12 (fun _ -> Buffer_pool.allocate pool) in
      List.iter
        (fun id -> Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 4 'o'))
        ids;
      Engine.commit e;
      (* Mutate all pages in a txn (forcing steals with 4 frames), abort. *)
      Engine.begin_txn e;
      List.iter
        (fun id -> Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 4 'x'))
        ids;
      Engine.abort e;
      List.iter
        (fun id ->
          Buffer_pool.with_page pool id (fun p ->
              check Alcotest.char
                (Printf.sprintf "page %d restored" id)
                'o' (Bytes.get p 0)))
        ids)

let test_reload_hook_fires_on_abort () =
  with_engine "hook" (fun e _ ->
      let reloads = ref 0 and saves = ref 0 in
      Engine.set_hooks e
        ~on_save:(fun () -> incr saves)
        ~on_reload:(fun () -> incr reloads);
      Engine.begin_txn e;
      Engine.commit e;
      check Alcotest.int "save on commit" 1 !saves;
      check Alcotest.int "no reload on commit" 0 !reloads;
      Engine.begin_txn e;
      Engine.abort e;
      check Alcotest.int "reload on abort" 1 !reloads)

let test_checkpoint_truncates_wal () =
  with_engine "ckpt" (fun e path ->
      let pool = Engine.pool e in
      Engine.begin_txn e;
      let id = Buffer_pool.allocate pool in
      Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 4 'w');
      Engine.commit e;
      if Engine.wal_bytes e = 0 then Alcotest.fail "wal empty after commit";
      Engine.checkpoint e;
      check Alcotest.int "wal truncated" 0 (Engine.wal_bytes e);
      ignore path)

let test_wal_before_after_ordering () =
  (* The WAL must contain Begin, then a Before for each first-dirty page,
     then After images, then Commit. *)
  let path = temp_path "order" in
  let e = Engine.open_ ~path ~pool_pages:8 () in
  let pool = Engine.pool e in
  Engine.begin_txn e;
  let id = Buffer_pool.allocate pool in
  Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 4 'z');
  Engine.commit e;
  Engine.close e;
  (* close checkpoints/truncates, so capture before closing: reopen path
     is gone — instead re-run without close. *)
  Sys.remove path;
  Sys.remove (path ^ ".sum");
  Sys.remove (path ^ ".wal");
  let e = Engine.open_ ~path ~pool_pages:8 () in
  let pool = Engine.pool e in
  Engine.begin_txn e;
  let id = Buffer_pool.allocate pool in
  Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 4 'z');
  Engine.commit e;
  let entries = Wal.read_all (path ^ ".wal") in
  let kinds =
    List.map
      (function
        | Wal.Begin _ -> "begin"
        | Wal.Before _ -> "before"
        | Wal.After _ -> "after"
        | Wal.Commit _ -> "commit"
        | Wal.Checkpoint -> "checkpoint")
      entries
  in
  check Alcotest.bool "starts with begin" true (List.hd kinds = "begin");
  check Alcotest.bool "ends with commit" true
    (List.nth kinds (List.length kinds - 1) = "commit");
  check Alcotest.bool "has before image" true (List.mem "before" kinds);
  check Alcotest.bool "has after image" true (List.mem "after" kinds);
  (* Every Before precedes every After for the same page set. *)
  let first_after =
    List.mapi (fun i k -> (i, k)) kinds
    |> List.find_opt (fun (_, k) -> k = "after")
  in
  let last_before =
    List.mapi (fun i k -> (i, k)) kinds
    |> List.filter (fun (_, k) -> k = "before")
    |> List.rev |> List.hd
  in
  (match (first_after, last_before) with
  | Some (ia, _), (ib, _) ->
    if ib > ia then Alcotest.fail "a Before appears after an After"
  | None, _ -> ());
  (try Engine.close e with _ -> ());
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ]

(* --- group commit --- *)

(* A single-threaded committer through a group scheduler must behave
   exactly like plain durable commit: every commit forms its own group
   of one, and the data survives a cache drop. *)
let test_group_commit_single () =
  let path = temp_path "group1" in
  let e =
    Engine.open_ ~path ~pool_pages:8 ~durable_sync:true
      ~group_commit:{ Group_commit.max_batch = 8; max_hold_ns = 0.0 }
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Engine.close e with _ -> ());
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".sum"; path ^ ".wal" ])
    (fun () ->
      let pool = Engine.pool e in
      let syncs0 = Engine.wal_sync_count e in
      Engine.begin_txn e;
      let id = Buffer_pool.allocate pool in
      Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 0 8 'g');
      Engine.commit e;
      Engine.begin_txn e;
      Buffer_pool.with_page_w pool id (fun p -> Bytes.fill p 4 4 'h');
      Engine.commit e;
      check Alcotest.int "one fsync per solo commit" 2
        (Engine.wal_sync_count e - syncs0);
      (match Engine.group_commit_stats e with
      | Some (groups, members) ->
        check Alcotest.int "groups" 2 groups;
        check Alcotest.int "members" 2 members
      | None -> Alcotest.fail "group commit not enabled");
      Engine.clear_caches e;
      Buffer_pool.with_page pool id (fun p ->
          check Alcotest.char "durable" 'g' (Bytes.get p 0)))

(* Two transactions committed through tickets before either waits: the
   first award covers both (one barrier, two members), and both survive
   a power failure. *)
let test_group_commit_batches_tickets () =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let path = "/t/group.db" in
  let open_engine () =
    Engine.open_ ~vfs ~path ~pool_pages:8 ~durable_sync:true
      ~group_commit:{ Group_commit.max_batch = 8; max_hold_ns = 0.0 }
      ()
  in
  let e = open_engine () in
  let pool = Engine.pool e in
  Engine.begin_txn e;
  let a = Buffer_pool.allocate pool in
  Buffer_pool.with_page_w pool a (fun p -> Bytes.fill p 0 8 'a');
  let tk1 = Engine.commit_ticket e in
  Engine.begin_txn e;
  let b = Buffer_pool.allocate pool in
  Buffer_pool.with_page_w pool b (fun p -> Bytes.fill p 0 8 'b');
  let tk2 = Engine.commit_ticket e in
  let syncs0 = Engine.wal_sync_count e in
  Engine.await_durable e tk1;
  Engine.await_durable e tk2;
  check Alcotest.int "one shared fsync" 1 (Engine.wal_sync_count e - syncs0);
  (match Engine.group_commit_stats e with
  | Some (groups, members) ->
    check Alcotest.int "one group" 1 groups;
    check Alcotest.int "two members" 2 members
  | None -> Alcotest.fail "group commit not enabled");
  (* Both acked commits must survive losing power. *)
  Vfs.Faulty.power_fail env;
  let e2 = open_engine () in
  let pool2 = Engine.pool e2 in
  Buffer_pool.with_page pool2 a (fun p ->
      check Alcotest.char "txn 1 durable" 'a' (Bytes.get p 0));
  Buffer_pool.with_page pool2 b (fun p ->
      check Alcotest.char "txn 2 durable" 'b' (Bytes.get p 0));
  Engine.close e2

(* Crash during the group fsync: the barrier fails, the waiter sees the
   failure (so the commit is never acked) and the engine demotes itself.
   After the power failure the store recovers to an atomic state: the
   previously acked transaction is intact, and the unacked one is either
   fully present or fully rolled back — never half-applied. *)
let test_group_commit_crash_mid_barrier () =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let path = "/t/crash.db" in
  let cfg = { Group_commit.max_batch = 8; max_hold_ns = 0.0 } in
  let e =
    Engine.open_ ~vfs ~path ~pool_pages:8 ~durable_sync:true ~group_commit:cfg
      ()
  in
  let pool = Engine.pool e in
  Engine.begin_txn e;
  let a = Buffer_pool.allocate pool in
  Buffer_pool.with_page_w pool a (fun p -> Bytes.fill p 0 8 'a');
  Engine.commit e;
  (* Unacked transaction: ticket taken, barrier armed to crash. *)
  Engine.begin_txn e;
  Buffer_pool.with_page_w pool a (fun p -> Bytes.fill p 0 8 'x');
  let tk = Engine.commit_ticket e in
  Vfs.Faulty.arm_crash env ~after_syncs:1 ~power_loss:true ();
  (match Engine.await_durable e tk with
  | () -> Alcotest.fail "barrier should have crashed"
  | exception _ -> ());
  check Alcotest.bool "engine demoted" true (Engine.read_only e);
  Vfs.Faulty.power_fail env;
  (* Disarm the crash plan: the reopen below models the post-reboot run. *)
  Vfs.Faulty.set_plan env Vfs.Faulty.quiet;
  let e2 =
    Engine.open_ ~vfs ~path ~pool_pages:8 ~durable_sync:true ~group_commit:cfg
      ()
  in
  let c =
    Buffer_pool.with_page (Engine.pool e2) a (fun p -> Bytes.get p 0)
  in
  if c <> 'a' && c <> 'x' then
    Alcotest.failf "page neither old nor new state: %C" c;
  (* Whatever recovery decided must match the page contents. *)
  (match Engine.recovery e2 with
  | Some r ->
    let committed = List.mem 2 r.Recovery.committed in
    check Alcotest.char "page matches recovery verdict"
      (if committed then 'x' else 'a')
      c
  | None -> check Alcotest.char "no recovery: acked state only" 'a' c);
  Engine.close e2

(* The fsync-sharing seam end to end: concurrent committers on a real
   file coalesce into fewer fsyncs than commits. *)
let test_group_commit_multiuser_shares_fsyncs () =
  let module D = Hyper_diskdb.Diskdb in
  let path = temp_path "mu_group" in
  let config =
    { (D.default_config ~path) with
      D.durable_sync = true;
      pool_pages = 256;
      group_commit = Some { Group_commit.max_batch = 8; max_hold_ns = 5e6 } }
  in
  let db = D.open_db config in
  Fun.protect
    ~finally:(fun () ->
      (try D.close db with _ -> ());
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".sum"; path ^ ".wal" ])
    (fun () ->
      let module G = Hyper_core.Generator.Make (D) in
      let layout, _ = G.generate db ~doc:1 ~leaf_level:3 ~seed:7L in
      let engine = D.engine db in
      let syncs0 = Engine.wal_sync_count engine in
      let groups0 = Engine.group_commit_stats engine in
      let commit () =
        let tk = Engine.commit_ticket engine in
        fun () -> Engine.await_durable engine tk
      in
      let module M = Hyper_core.Multiuser.Make (D) in
      let r =
        M.run ~commit db layout ~mode:Hyper_core.Multiuser.Two_phase_locking
          ~users:8 ~txns_per_user:25 ~hot_fraction:0.0 ~seed:7L
      in
      let fsyncs = Engine.wal_sync_count engine - syncs0 in
      let committed = r.Hyper_core.Multiuser.committed in
      if committed < 100 then
        Alcotest.failf "too few committed transactions: %d" committed;
      if fsyncs >= committed then
        Alcotest.failf "no fsync sharing: %d fsyncs for %d commits" fsyncs
          committed;
      match (Engine.group_commit_stats engine, groups0) with
      | Some (g, m), Some (g0, m0) ->
        check Alcotest.int "every commit got a ticket" committed (m - m0);
        check Alcotest.int "one fsync per group" fsyncs (g - g0)
      | _ -> Alcotest.fail "group commit not enabled")

(* --- codec properties --- *)

let link_gen =
  QCheck.Gen.(
    map3
      (fun t f o -> { Hyper_core.Schema.target = t + 1; offset_from = f; offset_to = o })
      (int_bound 100_000) (int_bound 9) (int_bound 9))

let node_gen =
  QCheck.Gen.(
    let oids = array_size (int_bound 8) (map (fun i -> i + 1) (int_bound 100_000)) in
    let links = array_size (int_bound 4) link_gen in
    let kind =
      oneofl
        [ Hyper_core.Schema.Internal; Hyper_core.Schema.Text;
          Hyper_core.Schema.Form; Hyper_core.Schema.Draw ]
    in
    map
      (fun ((doc, uid, kind, ten), (hundred, million, parent), (children, parts, part_of), (refs_to, refs_from, text)) ->
        { Hyper_diskdb.Codec.doc; unique_id = uid; kind; ten;
          hundred; million; parent; children; parts; part_of; refs_to;
          refs_from; dyn = [ ("k", 7) ]; text;
          form = Bytes.of_string "formbytes" })
      (tup4
         (tup4 (int_bound 100) (int_bound 100_000) kind (int_bound 10))
         (tup3 (int_range (-1) 100) (int_bound 1_000_000) (int_bound 100_000))
         (tup3 oids oids oids)
         (tup3 links links (string_size (int_bound 200)))))

let prop_diskdb_codec_roundtrip =
  QCheck.Test.make ~name:"diskdb codec round trip" ~count:200
    (QCheck.make node_gen) (fun n ->
      let n' = Hyper_diskdb.Codec.decode (Hyper_diskdb.Codec.encode n) in
      n' = n)

let prop_oid_list_roundtrip =
  QCheck.Test.make ~name:"oid list codec round trip" ~count:200
    QCheck.(small_list small_nat)
    (fun oids ->
      Hyper_diskdb.Codec.decode_oid_list
        (Hyper_diskdb.Codec.encode_oid_list oids)
      = oids)

let prop_reldb_node_roundtrip =
  QCheck.Test.make ~name:"reldb NODE row round trip" ~count:200
    QCheck.(
      quad (int_bound 100) (int_bound 100_000) (int_range (-1) 100)
        (int_bound 1_000_000))
    (fun (doc, uid, hundred, million) ->
      let row =
        { Hyper_reldb.Rows.doc; oid = uid + 1; unique_id = uid;
          ten = (uid mod 10) + 1; hundred; million;
          kind = Hyper_core.Schema.Text; dyn = [ ("layer", 3) ] }
      in
      Hyper_reldb.Rows.decode_node (Hyper_reldb.Rows.encode_node row) = row)

let prop_reldb_relationship_rows =
  QCheck.Test.make ~name:"reldb CHILD/PART/REF row round trips" ~count:200
    QCheck.(
      quad (int_bound 100_000) (int_bound 100_000) (int_bound 9) (int_bound 9))
    (fun (a, b, f, o) ->
      let child = { Hyper_reldb.Rows.parent = a + 1; pos = f; child = b + 1 } in
      let part = { Hyper_reldb.Rows.whole = a + 1; part = b + 1; seq = o } in
      let r =
        { Hyper_reldb.Rows.src = a + 1; dst = b + 1; offset_from = f;
          offset_to = o; seq = a }
      in
      Hyper_reldb.Rows.decode_child (Hyper_reldb.Rows.encode_child child)
      = child
      && Hyper_reldb.Rows.decode_part (Hyper_reldb.Rows.encode_part part)
         = part
      && Hyper_reldb.Rows.decode_ref (Hyper_reldb.Rows.encode_ref r) = r)

let test_text_form_rows () =
  let oid, text =
    Hyper_reldb.Rows.decode_text
      (Hyper_reldb.Rows.encode_text ~oid:42 "hello world")
  in
  check Alcotest.int "text oid" 42 oid;
  check Alcotest.string "text body" "hello world" text;
  let bitmap = Hyper_util.Bitmap.create ~width:120 ~height:90 in
  Hyper_util.Bitmap.invert_rect bitmap ~x:3 ~y:4 ~w:10 ~h:10;
  let oid, bytes =
    Hyper_reldb.Rows.decode_form
      (Hyper_reldb.Rows.encode_form ~oid:7
         (Hyper_util.Bitmap.to_bytes bitmap))
  in
  check Alcotest.int "form oid" 7 oid;
  check Alcotest.bool "bitmap preserved" true
    (Hyper_util.Bitmap.equal bitmap (Hyper_util.Bitmap.of_bytes bytes))

let () =
  Alcotest.run "hyper_engine"
    [
      ( "engine",
        [
          Alcotest.test_case "bracketing errors" `Quick test_bracketing_errors;
          Alcotest.test_case "close rolls back open txn" `Quick
            test_close_rolls_back_open_txn;
          Alcotest.test_case "commit durable through drop" `Quick
            test_commit_then_visible_after_drop;
          Alcotest.test_case "abort restores stolen pages" `Quick
            test_abort_restores_stolen_pages;
          Alcotest.test_case "hooks fire" `Quick test_reload_hook_fires_on_abort;
          Alcotest.test_case "checkpoint truncates wal" `Quick
            test_checkpoint_truncates_wal;
          Alcotest.test_case "wal entry ordering" `Quick
            test_wal_before_after_ordering;
        ] );
      ( "group_commit",
        [
          Alcotest.test_case "solo committer unchanged" `Quick
            test_group_commit_single;
          Alcotest.test_case "tickets share one fsync" `Quick
            test_group_commit_batches_tickets;
          Alcotest.test_case "crash mid-barrier" `Quick
            test_group_commit_crash_mid_barrier;
          Alcotest.test_case "multiuser shares fsyncs" `Quick
            test_group_commit_multiuser_shares_fsyncs;
        ] );
      ( "codecs",
        [
          qtest prop_diskdb_codec_roundtrip;
          qtest prop_oid_list_roundtrip;
          qtest prop_reldb_node_roundtrip;
          qtest prop_reldb_relationship_rows;
          Alcotest.test_case "text/form rows" `Quick test_text_form_rows;
        ] );
    ]

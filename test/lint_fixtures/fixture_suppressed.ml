(* The same plants as fixture_violations.ml, each waived with a
   [@lint.allow] attribute — exercising expression attributes,
   let-binding attributes and a floating [@@@lint.allow].  test_lint
   asserts zero findings and counts the suppressions. *)

module Oid = Hyper_core.Oid

let raw_open path =
  (Unix.openfile path [ Unix.O_RDONLY ] 0o644 [@lint.allow "vfs-boundary"])

let swallow f = (try f () with _ -> ()) [@lint.allow "no-catchall-swallow"]

module Buffer_pool = struct
  let pin _pool _page = ()
  let unpin _pool _page = ()
end

let leak pool page = Buffer_pool.pin pool page
  [@@lint.allow "pin-balance"]

(* Everything below the floating attribute is waived for the rule. *)
[@@@lint.allow "no-poly-compare-on-oid"]

let same_node (a : Oid.t) (b : Oid.t) = a = b

let doc_ids (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
   [@lint.allow "deterministic-iteration"])

let stamp () = (Unix.gettimeofday () [@lint.allow "monotonic-time"])

module Frame = struct
  type t = Ping of { epoch : int; lsn : int }
end

let bad_epoch = function Frame.Ping { epoch = _; lsn } -> lsn
  [@@lint.allow "epoch-check"]

let copy_page (page : bytes) = (Bytes.copy page [@lint.allow "no-page-copy"])

let raw_lock () = (Mutex.create () [@lint.allow "sync-wrapper-only"])

module Sync = Hyper_util.Sync

let outer = Sync.Mutex.create ~rank:10 "fixture_suppressed.outer"
let inner = Sync.Mutex.create ~rank:40 "fixture_suppressed.inner"

let backwards () =
  Sync.Mutex.with_lock inner (fun () ->
      (Sync.Mutex.with_lock outer (fun () -> ())
      [@lint.allow "lock-order"]))

(* no-blocking-under-mutex only accepts the reasoned payload form. *)
let sleepy () =
  Sync.Mutex.with_lock outer (fun () ->
      (Thread.delay 0.01
      [@lint.allow
        "no-blocking-under-mutex: fixture — demonstrates the mandatory \
         reasoned payload"]))

(* The same plants as fixture_violations.ml, each waived with a
   [@lint.allow] attribute — exercising expression attributes,
   let-binding attributes and a floating [@@@lint.allow].  test_lint
   asserts zero findings and counts the suppressions. *)

module Oid = Hyper_core.Oid

let raw_open path =
  (Unix.openfile path [ Unix.O_RDONLY ] 0o644 [@lint.allow "vfs-boundary"])

let swallow f = (try f () with _ -> ()) [@lint.allow "no-catchall-swallow"]

module Buffer_pool = struct
  let pin _pool _page = ()
  let unpin _pool _page = ()
end

let leak pool page = Buffer_pool.pin pool page
  [@@lint.allow "pin-balance"]

(* Everything below the floating attribute is waived for the rule. *)
[@@@lint.allow "no-poly-compare-on-oid"]

let same_node (a : Oid.t) (b : Oid.t) = a = b

let doc_ids (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
   [@lint.allow "deterministic-iteration"])

let stamp () = (Unix.gettimeofday () [@lint.allow "monotonic-time"])

module Frame = struct
  type t = Ping of { epoch : int; lsn : int }
end

let bad_epoch = function Frame.Ping { epoch = _; lsn } -> lsn
  [@@lint.allow "epoch-check"]

let copy_page (page : bytes) = (Bytes.copy page [@lint.allow "no-page-copy"])

(* The idiomatic counterparts of fixture_violations.ml — the shapes the
   rules are meant to steer code toward.  test_lint asserts hyperlint
   reports nothing here, with nothing suppressed either. *)

module Oid = Hyper_core.Oid
module Vfs = Hyper_storage.Vfs

(* I/O goes through the VFS seam, not raw Unix. *)
let present (vfs : Vfs.t) path = vfs.Vfs.exists path

(* Handlers name the exceptions they mean to absorb. *)
let swallow f = try f () with Not_found | Invalid_argument _ -> ()

module Buffer_pool = struct
  let pin _pool _page = ()
  let unpin _pool _page = ()
end

(* Pin is balanced by an unpin in the same binding. *)
let pinned pool page f =
  Buffer_pool.pin pool page;
  Fun.protect ~finally:(fun () -> Buffer_pool.unpin pool page) f

(* Keyed equality at Oid.t. *)
let same_node (a : Oid.t) (b : Oid.t) = Oid.equal a b

(* Hash-order fold, immediately sorted with a keyed comparator. *)
let doc_ids (tbl : (int, string) Hashtbl.t) =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(* Durations come from the monotonic clock, not the wall clock. *)
let stamp () = Hyper_util.Mtime_stub.now_ns ()

(* Frame handlers enumerate the constructors and bind the epoch. *)
module Frame = struct
  type t = Ping of { epoch : int; lsn : int }
end

let good_epoch = function Frame.Ping { epoch; lsn } -> epoch + lsn

(* Page contents are read in place through the pin, not copied out. *)
let first_byte (page : bytes) = Bytes.get page 0

(* Locks come from the Sync wrapper with a declared rank. *)
module Sync = Hyper_util.Sync

let outer = Sync.Mutex.create ~rank:10 "fixture_clean.outer"
let inner = Sync.Mutex.create ~rank:40 "fixture_clean.inner"

(* Nested acquisition in ascending declared rank. *)
let ordered () =
  Sync.Mutex.with_lock outer (fun () ->
      Sync.Mutex.with_lock inner (fun () -> ()))

(* Snapshot under the lock, block outside it. *)
let polite () =
  let snapshot = Sync.Mutex.with_lock outer (fun () -> 42) in
  Thread.delay 0.001;
  snapshot

(* One planted violation per hyperlint rule.  test_lint asserts the
   exact rule id and line of each finding, so keep this file stable:
   append new plants at the bottom rather than reflowing. *)

module Oid = Hyper_core.Oid

(* vfs-boundary: raw Unix I/O outside the VFS seam. *)
let raw_open path = Unix.openfile path [ Unix.O_RDONLY ] 0o644

(* no-catchall-swallow: handler would eat Vfs.Crash / Storage_error. *)
let swallow f = try f () with _ -> ()

(* pin-balance: pin with no unpin anywhere in the enclosing binding. *)
module Buffer_pool = struct
  let pin _pool _page = ()
  let unpin _pool _page = ()
end

let leak pool page = Buffer_pool.pin pool page

(* no-poly-compare-on-oid: structural equality at Oid.t. *)
let same_node (a : Oid.t) (b : Oid.t) = a = b

(* deterministic-iteration: list built in hash order, never sorted. *)
let doc_ids (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

(* monotonic-time: wall-clock reads outside lib/util. *)
let stamp () = Unix.gettimeofday ()

(* epoch-check: a frame handler that wildcards the epoch field acts on
   stale-epoch frames from a deposed primary. *)
module Frame = struct
  type t = Ping of { epoch : int; lsn : int }
end

let bad_epoch = function
  | Frame.Ping { epoch = _; lsn } -> lsn

(* no-page-copy: copying a pinned page buffer outside lib/storage. *)
let copy_page (page : bytes) = Bytes.copy page

(* sync-wrapper-only: a raw stdlib primitive dodges the Sync wrapper
   (no lockdep, no metrics, no declared rank). *)
let raw_lock () = Mutex.create ()

(* Ranked Sync locks for the two concurrency plants below. *)
module Sync = Hyper_util.Sync

let outer = Sync.Mutex.create ~rank:10 "fixture.outer"
let inner = Sync.Mutex.create ~rank:40 "fixture.inner"

(* lock-order: the low-rank lock taken while a high-rank one is held. *)
let backwards () =
  Sync.Mutex.with_lock inner (fun () ->
      Sync.Mutex.with_lock outer (fun () -> ()))

(* no-blocking-under-mutex: sleeping inside the critical section. *)
let sleepy () = Sync.Mutex.with_lock outer (fun () -> Thread.delay 0.01)

(* no-poly-compare-on-oid, version-chain shape: the structural [=]
   compares only the oid half of an (oid, variant) chain key — the
   bug Version_store.variants shipped with.  The sort keeps the fold
   deterministic, so only v4 fires. *)
let chain_variants (chains : (Oid.t * string, int) Hashtbl.t) (key : Oid.t) =
  List.sort_uniq Stdlib.compare
    (Hashtbl.fold
       (fun (oid, variant) _ acc -> if oid = key then variant :: acc else acc)
       chains [])

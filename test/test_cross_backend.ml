(* Cross-backend equivalence.

   The protocol draws operation inputs deterministically from (seed, op
   id), and all backends hold the bit-identical generated database, so
   every operation must return exactly the same number of nodes on
   memdb, diskdb and reldb — for all 20 operations.  This pins the whole
   stack (generator, indexes, traversals, scans) to one semantics.

   Also checks representative *values* (not just counts) across
   backends: closure node lists, range-result sets, attribute sums. *)

open Hyper_core
module M = Hyper_memdb.Memdb
module D = Hyper_diskdb.Diskdb
module R = Hyper_reldb.Reldb

module GenM = Generator.Make (M)
module GenD = Generator.Make (D)
module GenR = Generator.Make (R)
module PM = Protocol.Make (M)
module PD = Protocol.Make (D)
module PR = Protocol.Make (R)
module OM = Ops.Make (M)
module OD = Ops.Make (D)
module OR = Ops.Make (R)

let check = Alcotest.check

let temp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hyper_cross_%d_%s" (Unix.getpid ()) name)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ]

(* One shared fixture for the whole suite. *)
let fixture =
  lazy
    (let seed = 2024L in
     let bm = M.create () in
     let layout, _ = GenM.generate bm ~doc:1 ~leaf_level:4 ~seed in
     let disk_path = temp_path "disk.db" in
     cleanup disk_path;
     let bd = D.open_db (D.default_config ~path:disk_path) in
     let _ = GenD.generate bd ~doc:1 ~leaf_level:4 ~seed in
     let rel_path = temp_path "rel.db" in
     cleanup rel_path;
     let br = R.open_db (R.default_config ~path:rel_path) in
     let _ = GenR.generate br ~doc:1 ~leaf_level:4 ~seed in
     (bm, bd, br, layout))

let test_op_counts_identical () =
  let bm, bd, br, layout = Lazy.force fixture in
  let config = { Protocol.default_config with reps = 8 } in
  List.iter
    (fun id ->
      let mm = PM.run_op ~config bm layout id in
      let md = PD.run_op ~config bd layout id in
      let mr = PR.run_op ~config br layout id in
      check Alcotest.int
        (Printf.sprintf "%s: memdb vs diskdb node count" mm.Protocol.op)
        mm.Protocol.nodes_cold md.Protocol.nodes_cold;
      check Alcotest.int
        (Printf.sprintf "%s: memdb vs reldb node count" mm.Protocol.op)
        mm.Protocol.nodes_cold mr.Protocol.nodes_cold;
      check Alcotest.int
        (Printf.sprintf "%s: warm equals cold count" mm.Protocol.op)
        mm.Protocol.nodes_cold mm.Protocol.nodes_warm)
    Protocol.op_ids

let test_closures_identical () =
  let bm, bd, br, layout = Lazy.force fixture in
  let rng = Hyper_util.Prng.create 77L in
  for _ = 1 to 10 do
    let start = Layout.random_level layout rng 3 in
    M.begin_txn bm;
    let cm = OM.closure_1n bm ~start in
    M.commit bm;
    D.begin_txn bd;
    let cd = OD.closure_1n bd ~start in
    D.commit bd;
    R.begin_txn br;
    let cr = OR.closure_1n br ~start in
    R.commit br;
    check (Alcotest.list Alcotest.int) "1-N closure identical (disk)" cm cd;
    check (Alcotest.list Alcotest.int) "1-N closure identical (rel)" cm cr;
    M.begin_txn bm;
    let gm = OM.closure_mnatt_link_sum bm ~start ~depth:25 in
    M.commit bm;
    D.begin_txn bd;
    let gd = OD.closure_mnatt_link_sum bd ~start ~depth:25 in
    D.commit bd;
    R.begin_txn br;
    let gr = OR.closure_mnatt_link_sum br ~start ~depth:25 in
    R.commit br;
    check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
      "link sums identical (disk)" gm gd;
    check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
      "link sums identical (rel)" gm gr
  done

let test_ranges_and_sums_identical () =
  let bm, bd, br, layout = Lazy.force fixture in
  let sorted l = List.sort compare l in
  for x = 1 to 10 do
    let x = x * 9 in
    let rm = sorted (OM.range_lookup_hundred bm ~doc:1 ~x) in
    let rd = sorted (OD.range_lookup_hundred bd ~doc:1 ~x) in
    let rr = sorted (OR.range_lookup_hundred br ~doc:1 ~x) in
    check (Alcotest.list Alcotest.int) "hundred range identical (disk)" rm rd;
    check (Alcotest.list Alcotest.int) "hundred range identical (rel)" rm rr
  done;
  let rng = Hyper_util.Prng.create 99L in
  for _ = 1 to 10 do
    let start = Layout.random_level layout rng 3 in
    let sm = OM.closure_1n_att_sum bm ~start in
    check Alcotest.int "att sum identical (disk)" sm (OD.closure_1n_att_sum bd ~start);
    check Alcotest.int "att sum identical (rel)" sm (OR.closure_1n_att_sum br ~start)
  done

let test_queries_identical () =
  let bm, bd, br, _ = Lazy.force fixture in
  List.iter
    (fun q ->
      let qm = Query_bridge.query (module M) bm ~doc:1 q in
      let qd = Query_bridge.query (module D) bd ~doc:1 q in
      let qr = Query_bridge.query (module R) br ~doc:1 q in
      if qm <> qd then Alcotest.failf "query %S differs on diskdb" q;
      if qm <> qr then Alcotest.failf "query %S differs on reldb" q)
    [ "count where true";
      "select where hundred between 10 and 19 and kind = text";
      "count where million >= 500000 or ten = 3";
      "select where uniqueid between 100 and 120";
      "count where not kind = internal" ];
  (* LIMIT without an ORDER BY is nondeterministic across access paths
     (as in SQL): only the cardinality is comparable. *)
  let limited = "select where hundred between 10 and 19 limit 7" in
  List.iter
    (fun result ->
      match result with
      | Hyper_query.Engine.Oids oids ->
        check Alcotest.int "limit respected" 7 (List.length oids)
      | Hyper_query.Engine.Count _ -> Alcotest.fail "expected oids")
    [ Query_bridge.query (module M) bm ~doc:1 limited;
      Query_bridge.query (module D) bd ~doc:1 limited;
      Query_bridge.query (module R) br ~doc:1 limited ]

let test_first_class_instances () =
  (* Heterogeneous backends in one list via Backend.instance. *)
  let bm, bd, br, _ = Lazy.force fixture in
  let instances =
    [ Backend.Instance ((module M), bm); Backend.Instance ((module D), bd);
      Backend.Instance ((module R), br) ]
  in
  check
    (Alcotest.list Alcotest.string)
    "names" [ "memdb"; "diskdb"; "reldb" ]
    (List.map Backend.instance_name instances);
  List.iter
    (fun inst ->
      (match inst with
      | Backend.Instance ((module B), b) ->
        check Alcotest.int
          (Printf.sprintf "%s node count" B.name)
          781 (B.node_count b ~doc:1));
      if String.length (Backend.instance_description inst) = 0 then
        Alcotest.fail "empty description")
    instances

let cleanup_fixture () =
  let _, bd, br, _ = Lazy.force fixture in
  (try D.close bd with _ -> ());
  (try R.close br with _ -> ());
  cleanup (temp_path "disk.db");
  cleanup (temp_path "rel.db")

let () =
  Fun.protect ~finally:cleanup_fixture (fun () ->
      Alcotest.run "hyper_cross_backend"
        [
          ( "equivalence",
            [
              Alcotest.test_case "all 20 op counts identical" `Quick
                test_op_counts_identical;
              Alcotest.test_case "closures identical" `Quick
                test_closures_identical;
              Alcotest.test_case "ranges and sums identical" `Quick
                test_ranges_and_sums_identical;
              Alcotest.test_case "queries identical" `Quick
                test_queries_identical;
              Alcotest.test_case "first-class backend instances" `Quick
                test_first_class_instances;
            ] );
        ])

(* Tier-1 harness around Hyper_check: small-budget differential runs
   (the big budget lives in bin/fuzz.ml and CI's nightly job).

   What is pinned here:
   - agreement: generated traces find zero divergences on every subject;
   - sensitivity: a deliberately lying backend IS caught, the repro
     shrinks to a handful of ops, and shrinking is deterministic;
   - crash interleaving: recovery at several crash points matches the
     oracle replay of the acked prefix;
   - the checked-in corpus replays cleanly (regression traces for every
     divergence class the fuzzer has found);
   - trace serialisation round-trips, so printed repros are faithful. *)

open Hyper_core
open Hyper_check

let check = Alcotest.check
let gen_seed = 42L
let level = 3

(* --- cross-backend agreement on generated traces --- *)

let test_agreement () =
  List.iter
    (fun seed ->
      match
        Differential.run_case
          { Differential.seed; gen_seed; level; steps = 50;
            subjects = Differential.all_kinds }
      with
      | None -> ()
      | Some f ->
        Alcotest.failf "seed %Ld diverged on %s: %s" seed
          f.Differential.f_backend
          (Format.asprintf "%a" Differential.pp_divergence
             f.Differential.f_divergence))
    [ 201L; 202L ]

(* --- sensitivity: a lying backend must be caught and shrunk --- *)

(* Memdb with a bug planted in [children]: nodes whose oid is a multiple
   of 23 report their children reversed.  Several layout nodes (23, 46,
   69, 92, 115) hit it, so generated reads, closures and the final
   verify all can observe it. *)
module Liar = struct
  include Hyper_memdb.Memdb

  let name = "liar"

  let children t oid =
    let c = children t oid in
    let n = Array.length c in
    if oid mod 23 = 0 && n > 1 then
      Array.init n (fun i -> c.(n - 1 - i))
    else c
end

let liar_harness () =
  {
    Differential.h_name = "liar";
    h_fresh =
      (fun () ->
        let b = Hyper_memdb.Memdb.create () in
        let module G = Generator.Make (Hyper_memdb.Memdb) in
        let _ = G.generate b ~doc:1 ~leaf_level:level ~seed:gen_seed in
        ( Backend.Instance ((module Liar : Backend.S with type t = Liar.t), b),
          fun () -> () ));
  }

let find_liar () =
  let oracle, layout = Differential.oracle_harness ~gen_seed ~level in
  let subject = liar_harness () in
  let ops = Gen.trace ~seed:303L ~gen_seed ~level ~steps:60 in
  match Differential.check ~layout ~oracle ~subject ops with
  | None -> Alcotest.fail "planted bug not detected"
  | Some d ->
    let minimal, d' = Differential.shrink ~layout ~oracle ~subject ops d in
    (minimal, d')

let test_liar_detected_and_shrunk () =
  let minimal, d = find_liar () in
  check Alcotest.bool "shrunk to a handful of ops" true
    (List.length minimal <= 4);
  (* The minimal repro still diverges when replayed from scratch. *)
  let oracle, layout = Differential.oracle_harness ~gen_seed ~level in
  match Differential.check ~layout ~oracle ~subject:(liar_harness ()) minimal with
  | None -> Alcotest.fail "minimal repro does not reproduce"
  | Some d2 ->
    check Alcotest.int "same divergence step" d.Differential.step
      d2.Differential.step

let test_shrink_deterministic () =
  let m1, d1 = find_liar () in
  let m2, d2 = find_liar () in
  check
    (Alcotest.list Alcotest.string)
    "same minimal trace"
    (List.map Trace.op_to_string m1)
    (List.map Trace.op_to_string m2);
  check Alcotest.int "same step" d1.Differential.step d2.Differential.step

(* --- crash-point interleaving --- *)

let test_crash_points_clean () =
  let ops = Gen.trace ~seed:404L ~gen_seed ~level ~steps:40 in
  let writes = Differential.crash_writes ~gen_seed ~level ops in
  check Alcotest.bool "trace performs writes" true (writes > 0);
  List.iter
    (fun k ->
      let k = max 1 k in
      match Differential.crash_check ~gen_seed ~level ~crash_after:k ops with
      | Differential.Crash_clean _ -> ()
      | Differential.Crash_diverged { crash_step; acked; _ } ->
        Alcotest.failf "recovery diverged at k=%d (step %d, %d acked)" k
          crash_step acked)
    [ writes / 4; writes / 2; 3 * writes / 4 ]

(* --- checked-in corpus --- *)

let corpus_files () =
  let dir = "corpus" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Alcotest.fail "corpus directory missing (dune deps broken?)";
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".trace")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let test_corpus_replays () =
  let files = corpus_files () in
  check Alcotest.bool "corpus is non-empty" true (List.length files >= 4);
  List.iter
    (fun path ->
      let g, l, ops = Differential.load_repro ~path in
      let oracle, layout = Differential.oracle_harness ~gen_seed:g ~level:l in
      List.iter
        (fun kind ->
          let subject = Differential.subject_harness ~gen_seed:g ~level:l kind in
          match Differential.check ~layout ~oracle ~subject ops with
          | None -> ()
          | Some d ->
            Alcotest.failf "%s vs %s: %s" path
              (Differential.kind_name kind)
              (Format.asprintf "%a" Differential.pp_divergence d))
        Differential.all_kinds)
    files

(* --- serialisation and generation determinism --- *)

let test_op_round_trip () =
  let ops = Gen.trace ~seed:505L ~gen_seed ~level ~steps:300 in
  check Alcotest.bool "trace long enough to cover the grammar" true
    (List.length ops > 200);
  List.iter
    (fun op ->
      let s = Trace.op_to_string op in
      if Trace.op_of_string s <> op then
        Alcotest.failf "round trip broke: %S" s)
    ops

let test_gen_deterministic () =
  let t1 = Gen.trace ~seed:606L ~gen_seed ~level ~steps:80 in
  let t2 = Gen.trace ~seed:606L ~gen_seed ~level ~steps:80 in
  check
    (Alcotest.list Alcotest.string)
    "same seed, same trace"
    (List.map Trace.op_to_string t1)
    (List.map Trace.op_to_string t2);
  let t3 = Gen.trace ~seed:607L ~gen_seed ~level ~steps:80 in
  check Alcotest.bool "different seed, different trace" true
    (List.map Trace.op_to_string t1 <> List.map Trace.op_to_string t3)

let test_save_load_round_trip () =
  let ops = Gen.trace ~seed:708L ~gen_seed ~level ~steps:60 in
  let path = Filename.temp_file "hyper_fuzz_repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Differential.save_repro ~path ~gen_seed ~level ops;
      let g, l, ops' = Differential.load_repro ~path in
      check Alcotest.int "level survives" level l;
      check Alcotest.bool "gen_seed survives" true (g = gen_seed);
      check
        (Alcotest.list Alcotest.string)
        "ops survive"
        (List.map Trace.op_to_string ops)
        (List.map Trace.op_to_string ops'))

let () =
  Alcotest.run "hyper_differential"
    [
      ( "agreement",
        [
          Alcotest.test_case "generated traces agree everywhere" `Quick
            test_agreement;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "planted bug detected and shrunk" `Quick
            test_liar_detected_and_shrunk;
          Alcotest.test_case "shrinking is deterministic" `Quick
            test_shrink_deterministic;
        ] );
      ( "crash",
        [
          Alcotest.test_case "recovery matches oracle at 3 crash points"
            `Quick test_crash_points_clean;
        ] );
      ( "corpus",
        [ Alcotest.test_case "checked-in traces replay" `Quick test_corpus_replays ] );
      ( "serialisation",
        [
          Alcotest.test_case "op print/parse round trip" `Quick
            test_op_round_trip;
          Alcotest.test_case "generation deterministic" `Quick
            test_gen_deterministic;
          Alcotest.test_case "repro file round trip" `Quick
            test_save_load_round_trip;
        ] );
    ]

(* The lockdep-style runtime detector in Hyper_util.Sync: a planted
   ABBA inversion must be reported deterministically from a sequential
   history (no thread ever actually hangs), declared-rank violations
   and re-entrant acquisition must surface, Condition.wait must keep
   the held-set honest, and contended acquisitions must show up in the
   lib/obs lock metrics. *)

module Sync = Hyper_util.Sync
module Lockdep = Hyper_util.Sync.Lockdep
module Obs = Hyper_obs.Obs

let check = Alcotest.check

(* Every scenario starts from a blank detector and leaves a blank one
   behind: under HYPER_LOCKDEP=1 the at_exit hook fails the binary on
   any report still accumulated, and these tests plant reports on
   purpose. *)
let with_lockdep f =
  Lockdep.enable ();
  Fun.protect ~finally:(fun () -> Lockdep.enable ()) f

let kind_name = function
  | Lockdep.Would_deadlock -> "would-deadlock"
  | Lockdep.Rank_violation -> "rank-violation"
  | Lockdep.Reentrant_lock -> "re-entrant"

(* --- ABBA: the order graph catches the inversion without a hang --- *)

let test_abba () =
  with_lockdep (fun () ->
      let a = Sync.Mutex.create "test.sync.a" in
      let b = Sync.Mutex.create "test.sync.b" in
      (* One thread, two sequential critical sections in opposite
         nesting order.  A real ABBA needs two threads interleaving —
         and then the process hangs; the order graph convicts the same
         bug from this deterministic sequential history. *)
      Sync.Mutex.lock a;
      Sync.Mutex.lock b;
      Sync.Mutex.unlock b;
      Sync.Mutex.unlock a;
      Sync.Mutex.lock b;
      Sync.Mutex.lock a;
      Sync.Mutex.unlock a;
      Sync.Mutex.unlock b;
      (match Lockdep.reports () with
      | [ r ] ->
        check Alcotest.string "kind" "would-deadlock" (kind_name r.kind);
        check Alcotest.string "lock closing the cycle" "test.sync.a" r.lock;
        check
          Alcotest.(list string)
          "class cycle"
          [ "test.sync.a"; "test.sync.b"; "test.sync.a" ]
          r.cycle;
        check Alcotest.(list string) "held at detection" [ "test.sync.b" ]
          r.held;
        if r.stack_now = "" || r.stack_prior = "" then
          Alcotest.fail "both acquisition stacks must be captured"
      | rs ->
        Alcotest.failf "expected exactly one report, got %d" (List.length rs));
      (* The first (legal) nesting is in the order graph. *)
      if not (List.mem ("test.sync.a", "test.sync.b") (Lockdep.edges ())) then
        Alcotest.fail "edge a->b missing from the order graph";
      (* check_exn surfaces the accumulated report for harness mains. *)
      match Lockdep.check_exn () with
      | () -> Alcotest.fail "check_exn must raise on a pending report"
      | exception Lockdep.Deadlock _ -> ())

(* --- declared ranks: outermost-lowest is enforced --- *)

let test_rank_violation () =
  with_lockdep (fun () ->
      let low = Sync.Mutex.create ~rank:10 "test.sync.low" in
      let high = Sync.Mutex.create ~rank:40 "test.sync.high" in
      (* Ascending ranks: clean. *)
      Sync.Mutex.with_lock low (fun () ->
          Sync.Mutex.with_lock high (fun () -> ()));
      check Alcotest.int "ascending order is clean" 0
        (List.length (Lockdep.reports ()));
      (* Descending ranks: a rank violation, plus the would-deadlock
         the same inversion closes in the order graph.  Both are
         deduplicated across the repeats. *)
      for _ = 1 to 3 do
        Sync.Mutex.with_lock high (fun () ->
            Sync.Mutex.with_lock low (fun () -> ()))
      done;
      match Lockdep.reports () with
      | [ rank; cycle ] ->
        check Alcotest.string "first kind" "rank-violation"
          (kind_name rank.kind);
        check Alcotest.string "offending acquisition" "test.sync.low"
          rank.lock;
        check Alcotest.(list string) "held" [ "test.sync.high" ] rank.held;
        check Alcotest.string "second kind" "would-deadlock"
          (kind_name cycle.kind)
      | rs ->
        Alcotest.failf "expected two deduplicated reports, got %d"
          (List.length rs))

(* --- re-entrant acquisition raises instead of hanging --- *)

let test_reentrant () =
  with_lockdep (fun () ->
      let m = Sync.Mutex.create "test.sync.reentrant" in
      Sync.Mutex.lock m;
      (match Sync.Mutex.lock m with
      | () -> Alcotest.fail "re-entrant lock must raise, not hang"
      | exception Lockdep.Deadlock r ->
        check Alcotest.string "kind" "re-entrant" (kind_name r.kind);
        check Alcotest.string "lock" "test.sync.reentrant" r.lock);
      (* try_lock on an already-held mutex reports false, no raise. *)
      check Alcotest.bool "try_lock declines" false (Sync.Mutex.try_lock m);
      Sync.Mutex.unlock m)

(* --- Condition.wait releases the mutex in the held-set too --- *)

let test_condition_wait () =
  with_lockdep (fun () ->
      let m = Sync.Mutex.create "test.sync.cond" in
      let c = Sync.Condition.create () in
      let ready = ref false in
      let waiter =
        Thread.create
          (fun () ->
            Sync.Mutex.with_lock m (fun () ->
                while not !ready do
                  Sync.Condition.wait c m
                done))
          ()
      in
      Thread.delay 0.02;
      (* If wait left [m] in the waiter's held-set, the signaller's
         acquisition here would be bogus bookkeeping; the join below
         would also deadlock under a naive implementation. *)
      Sync.Mutex.with_lock m (fun () ->
          ready := true;
          Sync.Condition.signal c);
      Thread.join waiter;
      check Alcotest.int "no reports from the wait protocol" 0
        (List.length (Lockdep.reports ())))

(* --- contended acquisitions reach the lib/obs lock metrics --- *)

let test_contention_metrics () =
  with_lockdep (fun () ->
      Obs.enable ();
      Obs.reset ();
      Fun.protect ~finally:Obs.disable (fun () ->
          let m = Sync.Mutex.create "test.sync.contended" in
          let taken = Atomic.make false in
          let holder =
            Thread.create
              (fun () ->
                Sync.Mutex.with_lock m (fun () ->
                    Atomic.set taken true;
                    Thread.delay 0.03))
              ()
          in
          while not (Atomic.get taken) do
            Thread.yield ()
          done;
          (* The holder provably has the lock: this acquisition is
             contended by construction. *)
          Sync.Mutex.with_lock m (fun () -> ());
          Thread.join holder;
          let labels = [ ("lock", "test.sync.contended") ] in
          let contended =
            Obs.Counter.value
              (Obs.Counter.labeled "hyper_lock_contended_total" labels)
          in
          if contended < 1 then
            Alcotest.failf "contended counter: expected >= 1, got %d" contended;
          let wait = Obs.Histogram.labeled "hyper_lock_wait_ns" labels in
          if Obs.Histogram.count wait < 1 then
            Alcotest.fail "wait-time histogram recorded nothing";
          if not (Obs.Histogram.sum wait > 0.) then
            Alcotest.fail "wait-time histogram sum must be positive";
          (* Every hold segment (holder's and ours) lands in held_ns. *)
          let held = Obs.Histogram.labeled "hyper_lock_held_ns" labels in
          if Obs.Histogram.count held < 2 then
            Alcotest.failf "held-time histogram: expected >= 2 segments, got %d"
              (Obs.Histogram.count held);
          (* All waiters admitted: the waiter gauge is back to zero. *)
          check (Alcotest.float 0.0) "waiter gauge drained" 0.0
            (Obs.Gauge.value (Obs.Gauge.labeled "hyper_lock_waiters" labels))))

let () =
  Alcotest.run "sync"
    [
      ( "lockdep",
        [
          Alcotest.test_case "ABBA inversion, no hang" `Quick test_abba;
          Alcotest.test_case "rank violation" `Quick test_rank_violation;
          Alcotest.test_case "re-entrant acquisition" `Quick test_reentrant;
          Alcotest.test_case "condition wait bookkeeping" `Quick
            test_condition_wait;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "contention histograms" `Quick
            test_contention_metrics;
        ] );
    ]

(* Network-simulation tests: latency-model arithmetic, channel
   round-trip accounting, server-cache behaviour, virtual-clock charging
   and detach semantics. *)

open Hyper_net
open Hyper_storage

let check = Alcotest.check

let test_latency_cost () =
  let m = Latency_model.create ~per_request_ns:1000.0 ~per_byte_ns:2.0 in
  check (Alcotest.float 1e-9) "fixed + per byte" 1200.0
    (Latency_model.cost_ns m ~bytes:100);
  check (Alcotest.float 1e-9) "zero model" 0.0
    (Latency_model.cost_ns Latency_model.zero ~bytes:4096);
  Alcotest.check_raises "negative cost rejected"
    (Invalid_argument "Latency_model.create: negative cost") (fun () ->
      ignore (Latency_model.create ~per_request_ns:(-1.0) ~per_byte_ns:0.0))

let test_latency_presets_ordering () =
  (* A 1988 disk access is slower than a LAN round trip; a modern SSD is
     far faster than both. *)
  let page = 4096 in
  let lan = Latency_model.cost_ns Latency_model.lan_1988 ~bytes:page in
  let disk = Latency_model.cost_ns Latency_model.disk_1988 ~bytes:page in
  let ssd = Latency_model.cost_ns Latency_model.disk_modern ~bytes:page in
  if not (ssd < lan && lan < disk) then
    Alcotest.failf "preset ordering broken: ssd %.0f lan %.0f disk %.0f" ssd
      lan disk

let test_latency_charge_advances_vclock () =
  Hyper_util.Vclock.reset_virtual ();
  let m = Latency_model.create ~per_request_ns:500.0 ~per_byte_ns:0.0 in
  Latency_model.charge m ~bytes:0;
  Latency_model.charge m ~bytes:0;
  check (Alcotest.float 1e-9) "two charges" 1000.0
    (Hyper_util.Vclock.virtual_ns ());
  Hyper_util.Vclock.reset_virtual ()

let with_channel ?(server_cache_pages = 4) k =
  let pager = Pager.in_memory () in
  let ids = List.init 10 (fun _ -> Pager.allocate pager) in
  let network = Latency_model.create ~per_request_ns:100.0 ~per_byte_ns:0.0 in
  let server_disk =
    Latency_model.create ~per_request_ns:10_000.0 ~per_byte_ns:0.0
  in
  let ch = Channel.attach ~network ~server_disk ~server_cache_pages pager in
  Hyper_util.Vclock.reset_virtual ();
  Fun.protect
    ~finally:(fun () -> Hyper_util.Vclock.reset_virtual ())
    (fun () -> k pager ch ids)

let test_channel_counts_round_trips () =
  with_channel (fun pager ch ids ->
      let page = Page.alloc () in
      Pager.write pager (List.hd ids) page;
      ignore (Pager.read pager (List.hd ids));
      ignore (Pager.read pager (List.nth ids 1));
      let c = Channel.counters ch in
      check Alcotest.int "three trips" 3 c.Channel.round_trips;
      check Alcotest.int "bytes" (3 * Page.size) c.Channel.bytes_sent;
      Channel.reset_counters ch;
      check Alcotest.int "reset" 0 (Channel.counters ch).Channel.round_trips)

let test_server_cache_hits_and_misses () =
  with_channel (fun pager ch ids ->
      (* First read of a page misses the server cache (disk charge);
         a repeat read hits it (network charge only). *)
      let v0 = Hyper_util.Vclock.virtual_ns () in
      ignore (Pager.read pager (List.hd ids));
      let miss_cost = Hyper_util.Vclock.virtual_ns () -. v0 in
      let v1 = Hyper_util.Vclock.virtual_ns () in
      ignore (Pager.read pager (List.hd ids));
      let hit_cost = Hyper_util.Vclock.virtual_ns () -. v1 in
      check (Alcotest.float 1e-9) "miss = net + disk" 10_100.0 miss_cost;
      check (Alcotest.float 1e-9) "hit = net only" 100.0 hit_cost;
      let c = Channel.counters ch in
      check Alcotest.int "one miss" 1 c.Channel.server_misses;
      check Alcotest.int "one hit" 1 c.Channel.server_hits)

let test_server_cache_eviction () =
  with_channel ~server_cache_pages:2 (fun pager ch ids ->
      (* Touch pages 0,1,2: page 0 is evicted from the 2-page server
         cache; re-reading it misses again. *)
      List.iter (fun i -> ignore (Pager.read pager (List.nth ids i))) [ 0; 1; 2 ];
      ignore (Pager.read pager (List.hd ids));
      let c = Channel.counters ch in
      check Alcotest.int "four misses (evicted re-read)" 4
        c.Channel.server_misses)

let test_write_populates_server_cache () =
  with_channel (fun pager ch ids ->
      Pager.write pager (List.hd ids) (Page.alloc ());
      ignore (Pager.read pager (List.hd ids));
      let c = Channel.counters ch in
      check Alcotest.int "read after write is a server hit" 1
        c.Channel.server_hits;
      check Alcotest.int "no server miss" 0 c.Channel.server_misses)

let test_warm_server () =
  with_channel (fun pager ch ids ->
      Channel.warm_server ch;
      ignore (Pager.read pager (List.nth ids 5));
      let c = Channel.counters ch in
      check Alcotest.int "warm server never misses" 0 c.Channel.server_misses)

let test_detach_stops_charging () =
  with_channel (fun pager ch ids ->
      Channel.detach ch;
      let v0 = Hyper_util.Vclock.virtual_ns () in
      ignore (Pager.read pager (List.hd ids));
      check (Alcotest.float 1e-9) "no cost after detach" 0.0
        (Hyper_util.Vclock.virtual_ns () -. v0);
      check Alcotest.int "no trips after detach" 0
        (Channel.counters ch).Channel.round_trips)

let test_profile_1988 () =
  let p = Channel.profile_1988 in
  check Alcotest.int "server cache" 1024 p.Channel.server_cache_pages;
  (* A page over the 1988 profile costs on the order of milliseconds. *)
  let cost =
    Latency_model.cost_ns p.Channel.network ~bytes:Page.size
    +. Latency_model.cost_ns p.Channel.server_disk ~bytes:Page.size
  in
  if cost < 1e6 || cost > 1e8 then
    Alcotest.failf "1988 page fetch cost %.0f ns out of expected range" cost

(* --- Link: message-level fault injection --- *)

let msg i = Bytes.of_string (Printf.sprintf "m%03d" i)

let drain link =
  let rec go acc =
    match Channel.Link.poll link with
    | Some b -> go (Bytes.to_string b :: acc)
    | None -> if Channel.Link.pending link > 0 then go acc else List.rev acc
  in
  go []

let test_link_reliable_fifo () =
  let l = Channel.Link.create () in
  for i = 0 to 9 do
    Channel.Link.send l (msg i)
  done;
  let got = drain l in
  check Alcotest.int "all delivered" 10 (List.length got);
  List.iteri
    (fun i s -> check Alcotest.string "in order" (Bytes.to_string (msg i)) s)
    got;
  let st = Channel.Link.stats l in
  check Alcotest.int "sent" 10 st.Channel.Link.sent;
  check Alcotest.int "delivered" 10 st.Channel.Link.delivered;
  check Alcotest.int "no drops" 0 st.Channel.Link.dropped

let test_link_deterministic () =
  let run () =
    let l =
      Channel.Link.create ~plan:(Channel.Link.faulty ~seed:99L) ()
    in
    for i = 0 to 199 do
      Channel.Link.send l (msg i)
    done;
    (drain l, Channel.Link.stats l)
  in
  let got1, st1 = run () in
  let got2, st2 = run () in
  check Alcotest.bool "same delivery schedule" true (got1 = got2);
  check Alcotest.int "same drop count" st1.Channel.Link.dropped
    st2.Channel.Link.dropped;
  check Alcotest.int "same dup count" st1.Channel.Link.duplicated
    st2.Channel.Link.duplicated;
  (* The aggressive plan must actually exercise every fault kind over
     200 sends. *)
  check Alcotest.bool "drops happened" true (st1.Channel.Link.dropped > 0);
  check Alcotest.bool "dups happened" true (st1.Channel.Link.duplicated > 0);
  check Alcotest.bool "reorders happened" true
    (st1.Channel.Link.reordered > 0);
  check Alcotest.bool "delays happened" true (st1.Channel.Link.delayed > 0);
  check Alcotest.int "accounting closes" st1.Channel.Link.delivered
    (st1.Channel.Link.sent - st1.Channel.Link.dropped
    + st1.Channel.Link.duplicated)

let test_link_seed_changes_schedule () =
  let run seed =
    let l = Channel.Link.create ~plan:(Channel.Link.faulty ~seed) () in
    for i = 0 to 199 do
      Channel.Link.send l (msg i)
    done;
    drain l
  in
  check Alcotest.bool "different seeds, different schedules" true
    (run 1L <> run 2L)

let test_link_partition () =
  let l = Channel.Link.create () in
  Channel.Link.send l (msg 0);
  Channel.Link.set_down l true;
  Channel.Link.send l (msg 1);
  check Alcotest.bool "down link delivers nothing" true
    (Channel.Link.poll l = None);
  Channel.Link.set_down l false;
  Channel.Link.send l (msg 2);
  let got = drain l in
  (* The pre-partition message survived queued; the in-partition one is
     gone for good. *)
  check Alcotest.bool "partition drops, queue survives" true
    (got = [ "m000"; "m002" ])

let test_link_isolation () =
  (* The link must copy: mutating the sent buffer afterwards cannot
     corrupt the queued message. *)
  let l = Channel.Link.create () in
  let b = Bytes.of_string "fragile" in
  Channel.Link.send l b;
  Bytes.fill b 0 (Bytes.length b) 'X';
  match Channel.Link.poll l with
  | Some got -> check Alcotest.string "copied on send" "fragile"
      (Bytes.to_string got)
  | None -> Alcotest.fail "message lost"

let test_link_isolation_delayed () =
  (* Buffer-reuse audit: the delay path parks its own copy too — a
     sender reusing its buffer while a message sits parked must not
     corrupt the eventual delivery. *)
  let plan =
    { Channel.Link.reliable with
      Channel.Link.seed = 5L; delay_1_in = 1; delay_polls = 2 }
  in
  let l = Channel.Link.create ~plan () in
  let b = Bytes.of_string "parked!" in
  Channel.Link.send l b;
  Bytes.fill b 0 (Bytes.length b) 'X';
  (* first polls age the parked message; content must survive *)
  let rec drain_until n =
    if n = 0 then Alcotest.fail "delayed message never delivered"
    else
      match Channel.Link.poll l with
      | Some got -> Bytes.to_string got
      | None -> drain_until (n - 1)
  in
  check Alcotest.string "copied on park" "parked!" (drain_until 10)

let test_link_isolation_duplicated () =
  (* Buffer-reuse audit: duplicate deliveries are independent copies —
     a receiver scribbling on the first copy must not change the
     second. *)
  let plan =
    { Channel.Link.reliable with Channel.Link.seed = 5L; dup_1_in = 1 }
  in
  let l = Channel.Link.create ~plan () in
  Channel.Link.send l (Bytes.of_string "twice");
  (match Channel.Link.poll l with
  | Some first -> Bytes.fill first 0 (Bytes.length first) 'X'
  | None -> Alcotest.fail "first copy lost");
  match Channel.Link.poll l with
  | Some second ->
    check Alcotest.string "copies are independent" "twice"
      (Bytes.to_string second)
  | None -> Alcotest.fail "duplicate copy lost"

let () =
  Alcotest.run "hyper_net"
    [
      ( "latency_model",
        [
          Alcotest.test_case "cost arithmetic" `Quick test_latency_cost;
          Alcotest.test_case "preset ordering" `Quick
            test_latency_presets_ordering;
          Alcotest.test_case "charges vclock" `Quick
            test_latency_charge_advances_vclock;
        ] );
      ( "channel",
        [
          Alcotest.test_case "round trips" `Quick test_channel_counts_round_trips;
          Alcotest.test_case "server cache hit/miss" `Quick
            test_server_cache_hits_and_misses;
          Alcotest.test_case "server cache eviction" `Quick
            test_server_cache_eviction;
          Alcotest.test_case "write populates cache" `Quick
            test_write_populates_server_cache;
          Alcotest.test_case "warm server" `Quick test_warm_server;
          Alcotest.test_case "detach" `Quick test_detach_stops_charging;
          Alcotest.test_case "1988 profile" `Quick test_profile_1988;
        ] );
      ( "link",
        [
          Alcotest.test_case "reliable fifo" `Quick test_link_reliable_fifo;
          Alcotest.test_case "deterministic faults" `Quick
            test_link_deterministic;
          Alcotest.test_case "seed matters" `Quick
            test_link_seed_changes_schedule;
          Alcotest.test_case "partition" `Quick test_link_partition;
          Alcotest.test_case "send copies" `Quick test_link_isolation;
          Alcotest.test_case "delay path copies" `Quick
            test_link_isolation_delayed;
          Alcotest.test_case "duplicates are independent" `Quick
            test_link_isolation_duplicated;
        ] );
    ]

(* hyperlint end-to-end: the fixture library plants one violation per
   rule (test/lint_fixtures/fixture_violations.ml), one suppressed copy
   of each (fixture_suppressed.ml) and one idiomatic copy
   (fixture_clean.ml).  The linter must report exactly the planted
   findings with exact rule ids and lines, honour both suppression
   channels, and — the point of the exercise — find nothing in lib/. *)

module Driver = Hyper_lint.Driver
module Finding = Hyper_lint.Finding

let check = Alcotest.check

(* Tests run from _build/default/test; the fixture cmts are below us,
   the library cmts one level up. *)
let fixture_root = "lint_fixtures"

let scan_fixture name =
  Driver.scan ~scope_all:true
    ~only:[ "test/lint_fixtures/" ^ name ]
    [ fixture_root ]

let rule_line f = (f.Finding.rule, f.Finding.line)

let pp_rule_lines rl =
  String.concat "; "
    (List.map (fun (r, l) -> Printf.sprintf "%s:%d" r l) rl)

let rule_lines_t =
  Alcotest.testable
    (fun ppf rl -> Format.pp_print_string ppf (pp_rule_lines rl))
    ( = )

let by_line a b = compare (snd a, fst a) (snd b, fst b)

(* --- planted violations: exact rule ids and locations --- *)

let expected_violations =
  [
    ("vfs-boundary", 8);
    ("no-catchall-swallow", 11);
    ("pin-balance", 19);
    ("no-poly-compare-on-oid", 22);
    ("deterministic-iteration", 26);
    ("monotonic-time", 29);
    ("epoch-check", 38);
    ("no-page-copy", 41);
    ("sync-wrapper-only", 45);
    ("lock-order", 56);
    ("no-blocking-under-mutex", 59);
    ("no-poly-compare-on-oid", 68);
  ]

let test_violations () =
  let r = scan_fixture "fixture_violations.ml" in
  check Alcotest.int "one unit scanned" 1 r.Driver.units;
  check rule_lines_t "planted findings" expected_violations
    (List.sort by_line (List.map rule_line r.Driver.findings));
  check Alcotest.int "nothing suppressed" 0
    (List.length r.Driver.attr_suppressed)

(* --- every suppression channel waives its finding --- *)

let test_suppressed () =
  let r = scan_fixture "fixture_suppressed.ml" in
  check Alcotest.int "no findings" 0 (List.length r.Driver.findings);
  let rules =
    List.sort_uniq String.compare
      (List.map (fun f -> f.Finding.rule) r.Driver.attr_suppressed)
  in
  check
    Alcotest.(list string)
    "every rule was suppressed, not missed"
    (List.sort String.compare (List.map fst Hyper_lint.Rules.all))
    rules

(* --- the idiomatic shapes trigger nothing at all --- *)

let test_clean () =
  let r = scan_fixture "fixture_clean.ml" in
  check Alcotest.int "no findings" 0 (List.length r.Driver.findings);
  check Alcotest.int "no suppressions" 0
    (List.length r.Driver.attr_suppressed)

(* --- allowlist file waives by rule id + path substring --- *)

let test_allowlist () =
  let file = Filename.temp_file "hyperlint" ".allowlist" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "# test waiver\nvfs-boundary fixture_violations\n";
      close_out oc;
      let r =
        Driver.scan ~scope_all:true ~allowlist_file:file
          ~only:[ "test/lint_fixtures/fixture_violations.ml" ]
          [ fixture_root ]
      in
      check rule_lines_t "vfs-boundary waived"
        (List.filter (fun (rl, _) -> rl <> "vfs-boundary") expected_violations)
        (List.sort by_line (List.map rule_line r.Driver.findings));
      check rule_lines_t "waiver recorded" [ ("vfs-boundary", 8) ]
        (List.map rule_line r.Driver.allowed))

(* --- the repo's own library code is lint-clean --- *)

let test_lib_clean () =
  let r = Driver.scan ~only:[ "lib/" ] [ "../lib" ] in
  if r.Driver.units < 10 then
    Alcotest.failf "only %d units scanned — cmt discovery broken?"
      r.Driver.units;
  (match r.Driver.findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "lib/ has %d finding(s), first: %s"
      (List.length r.Driver.findings)
      (Finding.to_string f));
  (* The two deliberate waivers (trace.ml outcome normalisation,
     lock_manager release_all) must stay visible as suppressions. *)
  if List.length r.Driver.attr_suppressed < 2 then
    Alcotest.failf "expected the known [@lint.allow] sites, found %d"
      (List.length r.Driver.attr_suppressed)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "planted violations" `Quick test_violations;
          Alcotest.test_case "attribute suppression" `Quick test_suppressed;
          Alcotest.test_case "clean fixture" `Quick test_clean;
          Alcotest.test_case "allowlist file" `Quick test_allowlist;
        ] );
      ( "self-check",
        [ Alcotest.test_case "lib/ is lint-clean" `Quick test_lib_clean ] );
    ]

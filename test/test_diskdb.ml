(* Disk backend tests: generation + full structural verification,
   durability across close/reopen, transaction abort (including B+tree
   root rollback), crash recovery with stolen pages, the clustering
   ablation, remote-mode latency accounting and result storage. *)

open Hyper_core
module B = Hyper_diskdb.Diskdb
module Gen = Generator.Make (B)
module O = Ops.Make (B)
module V = Verify.Make (B)
module P = Protocol.Make (B)

let check = Alcotest.check

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_diskdb_%d_%s_%d" (Unix.getpid ()) name !counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ]

let with_db ?(pool_pages = 256) ?remote name k =
  let path = temp_path name in
  let config = { (B.default_config ~path) with pool_pages; remote } in
  let b = B.open_db config in
  Fun.protect
    ~finally:(fun () ->
      (try B.close b with _ -> ());
      cleanup path)
    (fun () -> k b config path)

let generate ?(leaf_level = 4) ?(seed = 42L) ?(cluster = true) b =
  Gen.generate ~cluster b ~doc:1 ~leaf_level ~seed

let assert_verifies b layout =
  List.iter
    (fun c ->
      if not c.Verify.ok then
        Alcotest.failf "verify: %s — %s" c.Verify.name c.Verify.detail)
    (V.run b layout)

(* --- basics --- *)

let test_generate_and_verify () =
  with_db "gen" (fun b _ _ ->
      let layout, timings = generate b in
      check Alcotest.int "node count" 781 (B.node_count b ~doc:1);
      assert_verifies b layout;
      check Alcotest.int "five phases" 5 (List.length timings.Generator.phases))

let test_persistence () =
  let path = temp_path "persist" in
  let config = B.default_config ~path in
  let b = B.open_db config in
  let layout, _ = generate b in
  let sample_text = B.text b (Layout.random_text layout (Hyper_util.Prng.create 1L)) in
  B.close b;
  (* Reopen: everything must still verify; no recovery needed. *)
  let b2 = B.open_db config in
  check Alcotest.bool "no recovery" true (B.last_recovery b2 = None);
  check Alcotest.int "count after reopen" 781 (B.node_count b2 ~doc:1);
  assert_verifies b2 layout;
  (* Cold lookups work through the reopened object table and indexes. *)
  (match O.name_lookup b2 ~doc:1 ~uid:500 with
  | Some _ -> ()
  | None -> Alcotest.fail "uid 500 lost");
  ignore (sample_text : string);
  B.close b2;
  cleanup path

let test_mutation_requires_txn () =
  with_db "txn" (fun b _ _ ->
      let _layout, _ = generate b in
      Alcotest.check_raises "set_hundred outside txn"
        (Invalid_argument "Engine: mutation outside a transaction") (fun () ->
          B.set_hundred b 1 50))

let test_abort_rolls_back () =
  with_db "abort" (fun b _ _ ->
      let layout, _ = generate b in
      let start = Layout.level_first_oid layout 3 in
      let sum0 = O.closure_1n_att_sum b ~start in
      let h0 = B.hundred b 10 in
      B.begin_txn b;
      ignore (O.closure_1n_att_set b ~start : int);
      B.set_hundred b 10 77;
      B.abort b;
      check Alcotest.int "attribute sum rolled back" sum0
        (O.closure_1n_att_sum b ~start);
      check Alcotest.int "single attr rolled back" h0 (B.hundred b 10);
      (* Indexes consistent after rollback. *)
      assert_verifies b layout)

let test_abort_many_inserts_under_pressure () =
  (* A small pool forces dirty-page steals during the transaction; abort
     must restore the stolen pages from undo images. *)
  with_db ~pool_pages:8 "abort2" (fun b _ _ ->
      B.begin_txn b;
      for i = 1 to 50 do
        B.create_node b
          { Schema.oid = i; doc = 1; unique_id = i; ten = 1; hundred = 50;
            million = 5; payload = Schema.P_internal }
      done;
      B.commit b;
      check Alcotest.int "committed" 50 (B.node_count b ~doc:1);
      B.begin_txn b;
      for i = 51 to 400 do
        B.create_node b
          { Schema.oid = i; doc = 1; unique_id = i; ten = 2; hundred = 60;
            million = 6; payload = Schema.P_internal }
      done;
      B.abort b;
      check Alcotest.int "aborted inserts gone" 50 (B.node_count b ~doc:1);
      check (Alcotest.option Alcotest.int) "uid 300 gone" None
        (B.lookup_unique b ~doc:1 300);
      check (Alcotest.option Alcotest.int) "uid 50 kept" (Some 50)
        (B.lookup_unique b ~doc:1 50);
      (* The store remains fully usable. *)
      B.begin_txn b;
      B.create_node b
        { Schema.oid = 1000; doc = 1; unique_id = 1000; ten = 3; hundred = 70;
          million = 7; payload = Schema.P_internal };
      B.commit b;
      check Alcotest.int "insert after abort" 51 (B.node_count b ~doc:1))

let test_crash_recovery () =
  (* Simulate a crash with an uncommitted transaction whose pages were
     stolen to disk: copy the data and WAL files mid-transaction, then
     open the copy. *)
  let path = temp_path "crash" in
  let config = { (B.default_config ~path) with pool_pages = 8 } in
  let b = B.open_db config in
  B.begin_txn b;
  for i = 1 to 50 do
    B.create_node b
      { Schema.oid = i; doc = 1; unique_id = i; ten = 1; hundred = 10;
        million = 100; payload = Schema.P_internal }
  done;
  B.commit b;
  B.begin_txn b;
  for i = 51 to 400 do
    B.create_node b
      { Schema.oid = i; doc = 1; unique_id = i; ten = 2; hundred = 20;
        million = 200; payload = Schema.P_internal }
  done;
  (* "Crash": snapshot the files while the transaction is open. *)
  let copy src dst =
    let ic = open_in_bin src and oc = open_out_bin dst in
    let len = in_channel_length ic in
    let buf = really_input_string ic len in
    output_string oc buf;
    close_in ic;
    close_out oc
  in
  let path2 = temp_path "crash_copy" in
  copy path path2;
  copy (path ^ ".wal") (path2 ^ ".wal");
  B.abort b;
  B.close b;
  cleanup path;
  let b2 = B.open_db { (B.default_config ~path:path2) with pool_pages = 64 } in
  (match B.last_recovery b2 with
  | Some report ->
    check
      (Alcotest.list Alcotest.int)
      "uncommitted txn rolled back" [ 2 ] report.Hyper_storage.Recovery.rolled_back
  | None -> Alcotest.fail "expected a recovery pass");
  check Alcotest.int "committed survives" 50 (B.node_count b2 ~doc:1);
  check (Alcotest.option Alcotest.int) "uid 50 alive" (Some 50)
    (B.lookup_unique b2 ~doc:1 50);
  check (Alcotest.option Alcotest.int) "uid 300 rolled back" None
    (B.lookup_unique b2 ~doc:1 300);
  B.close b2;
  cleanup path2

let test_clustering_reduces_cold_misses () =
  let cold_misses cluster =
    with_db ~pool_pages:16 "cluster" (fun b _ _ ->
        let layout, _ = generate ~cluster b in
        B.clear_caches b;
        B.reset_io b;
        (* Cold 1-N closures from every level-3 node of the first subtree. *)
        let rng = Hyper_util.Prng.create 5L in
        B.begin_txn b;
        for _ = 1 to 20 do
          ignore (O.closure_1n b ~start:(Layout.random_level layout rng 3))
        done;
        B.commit b;
        (B.io_counters b).B.pool_misses)
  in
  let clustered = cold_misses true in
  let unclustered = cold_misses false in
  if clustered >= unclustered then
    Alcotest.failf "clustering did not reduce misses: %d vs %d" clustered
      unclustered

let test_remote_mode_charges_latency () =
  with_db ~pool_pages:64 ~remote:B.remote_1988 "remote" (fun b _ _ ->
      let layout, _ = generate b in
      Hyper_util.Vclock.reset_virtual ();
      B.clear_caches b;
      let v0 = Hyper_util.Vclock.virtual_ns () in
      ignore (O.name_oid_lookup b ~oid:(Layout.root layout) : int);
      let cold_cost = Hyper_util.Vclock.virtual_ns () -. v0 in
      if cold_cost <= 0.0 then Alcotest.fail "cold read cost nothing";
      let v1 = Hyper_util.Vclock.virtual_ns () in
      ignore (O.name_oid_lookup b ~oid:(Layout.root layout) : int);
      let warm_cost = Hyper_util.Vclock.virtual_ns () -. v1 in
      check (Alcotest.float 0.0) "warm read free" 0.0 warm_cost;
      let c = B.io_counters b in
      if c.B.round_trips = 0 then Alcotest.fail "no round trips counted")

let test_stored_results () =
  with_db "results" (fun b _ _ ->
      let layout, _ = generate b in
      let start = Layout.level_first_oid layout 3 in
      B.begin_txn b;
      let closure = O.closure_1n b ~start in
      B.commit b;
      check Alcotest.int "one stored result" 1 (B.stored_result_count b);
      check (Alcotest.list Alcotest.int) "stored list matches" closure
        (B.stored_result b 0))

let test_object_cache_semantics_and_savings () =
  (* With the check-out cache on, results are identical but warm access
     skips the buffer pool; abort and cold reset must invalidate. *)
  let path = temp_path "objcache" in
  let config =
    { (B.default_config ~path) with B.pool_pages = 256; object_cache = 4096 }
  in
  let b = B.open_db config in
  Fun.protect
    ~finally:(fun () ->
      (try B.close b with _ -> ());
      cleanup path)
    (fun () ->
      let layout, _ = generate b in
      assert_verifies b layout;
      let start = Layout.level_first_oid layout 3 in
      (* Warm the cache, then measure pool traffic of a cached closure. *)
      B.begin_txn b;
      ignore (O.closure_1n b ~start);
      B.commit b;
      B.reset_io b;
      let sum_cached = O.closure_1n_att_sum b ~start in
      let c = B.io_counters b in
      check Alcotest.int "no pool traffic when cached" 0
        (c.B.pool_hits + c.B.pool_misses);
      if c.B.object_hits = 0 then Alcotest.fail "expected object-cache hits";
      (* Same answer as an uncached read (cold reset drops the cache). *)
      B.clear_caches b;
      B.reset_io b;
      let sum_cold = O.closure_1n_att_sum b ~start in
      check Alcotest.int "cached = uncached result" sum_cold sum_cached;
      let c = B.io_counters b in
      if c.B.pool_hits + c.B.pool_misses = 0 then
        Alcotest.fail "cold read should touch the pool";
      (* Mutation through the cache is visible and abort invalidates. *)
      let h0 = B.hundred b start in
      B.begin_txn b;
      B.set_hundred b start 77;
      check Alcotest.int "write visible through cache" 77 (B.hundred b start);
      B.abort b;
      check Alcotest.int "abort invalidates cached object" h0
        (B.hundred b start))

let test_uid_hash_index_access_path () =
  (* With the linear-hash access path on, every uid lookup goes through
     the hash; contents, persistence and deletes must all agree. *)
  let path = temp_path "uidhash" in
  let config =
    { (B.default_config ~path) with B.uid_hash_index = true }
  in
  let b = B.open_db config in
  let layout, _ = generate b in
  assert_verifies b layout (* the verifier probes every uid *);
  B.close b;
  (* Persistence: hash header reattaches. *)
  let b2 = B.open_db config in
  check (Alcotest.option Alcotest.int) "hash lookup after reopen" (Some 600)
    (B.lookup_unique b2 ~doc:1 600);
  (* Deletion unhooks the hash entry too. *)
  B.begin_txn b2;
  B.delete_node b2 (Layout.level_first_oid layout 4);
  B.commit b2;
  let gone = Layout.uid_of_oid layout (Layout.level_first_oid layout 4) in
  check (Alcotest.option Alcotest.int) "deleted uid gone from hash" None
    (B.lookup_unique b2 ~doc:1 gone);
  B.close b2;
  cleanup path

let test_gc_reclaims_aborted_pages () =
  (* An aborted transaction that grew the file leaves orphan pages: the
     undo restores contents and roots, but not the file length.  GC must
     find them and later inserts must reuse them instead of growing. *)
  with_db ~pool_pages:8 "gc" (fun b _ _ ->
      B.begin_txn b;
      for i = 1 to 20 do
        B.create_node b
          { Schema.oid = i; doc = 1; unique_id = i; ten = 1; hundred = 10;
            million = 100; payload = Schema.P_internal }
      done;
      B.commit b;
      B.begin_txn b;
      for i = 21 to 600 do
        B.create_node b
          { Schema.oid = i; doc = 1; unique_id = i; ten = 2; hundred = 20;
            million = 200;
            payload = Schema.P_text (String.make 300 'x') }
      done;
      B.abort b;
      let size_after_abort = B.file_bytes b in
      let freed = B.collect_garbage b in
      if freed <= 0 then Alcotest.fail "expected orphan pages to be reclaimed";
      (* A second collection finds nothing. *)
      check Alcotest.int "gc is idempotent" 0 (B.collect_garbage b);
      (* Contents intact. *)
      check Alcotest.int "nodes intact" 20 (B.node_count b ~doc:1);
      check (Alcotest.option Alcotest.int) "lookup intact" (Some 7)
        (B.lookup_unique b ~doc:1 7);
      (* New inserts consume the free list, not fresh file space. *)
      B.begin_txn b;
      for i = 1000 to 1040 do
        B.create_node b
          { Schema.oid = i; doc = 1; unique_id = i; ten = 3; hundred = 30;
            million = 300; payload = Schema.P_internal }
      done;
      B.commit b;
      check Alcotest.int "file did not grow" size_after_abort (B.file_bytes b))

let test_ops_match_memdb () =
  (* Same seed => the same database; every operation must agree with the
     in-memory backend (ground truth). *)
  let bm = Hyper_memdb.Memdb.create () in
  let module GenM = Generator.Make (Hyper_memdb.Memdb) in
  let module OM = Ops.Make (Hyper_memdb.Memdb) in
  let layout_m, _ = GenM.generate bm ~doc:1 ~leaf_level:4 ~seed:11L in
  with_db "matches" (fun b _ _ ->
      let layout, _ = generate ~seed:11L b in
      check Alcotest.int "same node count" layout_m.Layout.node_count
        layout.Layout.node_count;
      Layout.iter_oids layout (fun oid ->
          if B.hundred b oid <> Hyper_memdb.Memdb.hundred bm oid then
            Alcotest.failf "hundred differs at %d" oid;
          if B.parts b oid <> Hyper_memdb.Memdb.parts bm oid then
            Alcotest.failf "parts differ at %d" oid);
      let start = Layout.level_first_oid layout 3 in
      B.begin_txn b;
      let c1 = O.closure_1n b ~start in
      B.commit b;
      Hyper_memdb.Memdb.begin_txn bm;
      let c2 = OM.closure_1n bm ~start in
      Hyper_memdb.Memdb.commit bm;
      check (Alcotest.list Alcotest.int) "identical closures" c2 c1;
      let r1 = List.sort compare (O.range_lookup_million b ~doc:1 ~x:400_000) in
      let r2 =
        List.sort compare (OM.range_lookup_million bm ~doc:1 ~x:400_000)
      in
      check (Alcotest.list Alcotest.int) "identical range results" r2 r1)

let test_protocol_smoke () =
  with_db ~pool_pages:512 "protocol" (fun b _ _ ->
      let layout, _ = generate b in
      let config = { Protocol.default_config with reps = 3 } in
      let ms = P.run_all ~config b layout in
      check Alcotest.int "20 ops" 20 (List.length ms);
      List.iter
        (fun m ->
          if m.Protocol.cold_ms < 0.0 then
            Alcotest.failf "%s: negative time" m.Protocol.op)
        ms)

let test_text_edit_grows_record () =
  (* version-2 is longer; the record must update (possibly relocating)
     without corrupting neighbours. *)
  with_db "edit" (fun b _ _ ->
      let layout, _ = generate b in
      let rng = Hyper_util.Prng.create 3L in
      B.begin_txn b;
      for _ = 1 to 50 do
        let oid = Layout.random_text layout rng in
        (* Forward then back: each edit grows/shrinks the record, and the
           pair leaves the database verifiable. *)
        O.text_node_edit b ~oid;
        O.text_node_edit b ~oid
      done;
      B.commit b;
      assert_verifies b layout |> ignore;
      ())

let test_form_edit_overflow_roundtrip () =
  with_db "form" (fun b _ _ ->
      let layout, _ = generate b in
      let oid = Layout.random_form layout (Hyper_util.Prng.create 8L) in
      B.begin_txn b;
      O.form_node_edit b ~oid ~x:0 ~y:0 ~w:50 ~h:50;
      B.commit b;
      check Alcotest.int "edit persisted through overflow pages" (50 * 50)
        (Hyper_util.Bitmap.count_set (B.form b oid));
      B.begin_txn b;
      O.form_node_edit b ~oid ~x:0 ~y:0 ~w:50 ~h:50;
      B.commit b;
      check Alcotest.int "self-inverse" 0
        (Hyper_util.Bitmap.count_set (B.form b oid)))

let () =
  Alcotest.run "hyper_diskdb"
    [
      ( "basics",
        [
          Alcotest.test_case "generate + verify" `Quick test_generate_and_verify;
          Alcotest.test_case "persistence across reopen" `Quick test_persistence;
          Alcotest.test_case "mutation requires txn" `Quick
            test_mutation_requires_txn;
          Alcotest.test_case "ops match memdb ground truth" `Quick
            test_ops_match_memdb;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
          Alcotest.test_case "abort under buffer pressure" `Quick
            test_abort_many_inserts_under_pressure;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "gc reclaims aborted pages" `Quick
            test_gc_reclaims_aborted_pages;
          Alcotest.test_case "object cache semantics" `Quick
            test_object_cache_semantics_and_savings;
          Alcotest.test_case "uid hash access path" `Quick
            test_uid_hash_index_access_path;
        ] );
      ( "physical design",
        [
          Alcotest.test_case "clustering reduces cold misses" `Quick
            test_clustering_reduces_cold_misses;
          Alcotest.test_case "remote mode charges latency" `Quick
            test_remote_mode_charges_latency;
          Alcotest.test_case "text edits relocate safely" `Quick
            test_text_edit_grows_record;
          Alcotest.test_case "form edits through overflow" `Quick
            test_form_edit_overflow_roundtrip;
        ] );
      ( "results+protocol",
        [
          Alcotest.test_case "stored results" `Quick test_stored_results;
          Alcotest.test_case "protocol smoke" `Quick test_protocol_smoke;
        ] );
    ]

(* Protocol/report/multiuser/layout tests: measurement arithmetic,
   reporting tables, cold-vs-warm behaviour on the disk backend, layout
   property tests, verifier negative cases (a corrupted database must be
   flagged), and deterministic multi-user runs. *)

open Hyper_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- measurement arithmetic --- *)

let measurement ~nodes_cold ~nodes_warm ~cold_ms ~warm_ms =
  { Protocol.op = "test"; reps = 50; nodes_cold; nodes_warm; cold_ms; warm_ms }

let test_per_node_math () =
  let m = measurement ~nodes_cold:100 ~nodes_warm:100 ~cold_ms:50.0 ~warm_ms:10.0 in
  check (Alcotest.float 1e-9) "cold" 0.5 (Protocol.cold_ms_per_node m);
  check (Alcotest.float 1e-9) "warm" 0.1 (Protocol.warm_ms_per_node m);
  check (Alcotest.float 1e-9) "nodes/op" 2.0 (Protocol.nodes_per_op m);
  let z = measurement ~nodes_cold:0 ~nodes_warm:0 ~cold_ms:5.0 ~warm_ms:5.0 in
  check (Alcotest.float 1e-9) "zero nodes is defined" 0.0
    (Protocol.cold_ms_per_node z)

let test_op_ids_complete () =
  check Alcotest.int "20 operations" 20 (List.length Protocol.op_ids);
  List.iter
    (fun id ->
      if not (List.mem id Protocol.op_ids) then Alcotest.failf "missing %s" id)
    [ "01"; "05A"; "05B"; "07A"; "07B"; "09"; "10"; "18" ]

(* --- cold vs warm on the disk backend --- *)

module D = Hyper_diskdb.Diskdb
module GenD = Generator.Make (D)
module ProtoD = Protocol.Make (D)

let test_disk_cold_slower_than_warm () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_proto_%d.db" (Unix.getpid ()))
  in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ];
  (* A latency model makes cold misses expensive and deterministic. *)
  let b =
    D.open_db
      { (D.default_config ~path) with
        D.pool_pages = 256;
        remote = Some Hyper_net.Channel.profile_1988 }
  in
  let layout, _ = GenD.generate b ~doc:1 ~leaf_level:4 ~seed:5L in
  let config = { Protocol.default_config with reps = 10 } in
  let m = ProtoD.run_op ~config b layout "01" in
  let cold = Protocol.cold_ms_per_node m in
  let warm = Protocol.warm_ms_per_node m in
  if cold <= 2.0 *. warm then
    Alcotest.failf "expected cold >> warm: %.4f vs %.4f" cold warm;
  (* Node counts identical between the two temperatures (same inputs). *)
  check Alcotest.int "same inputs" m.Protocol.nodes_cold m.Protocol.nodes_warm;
  D.close b;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ]

let test_protocol_deterministic_inputs () =
  (* Equal (seed, op) draws identical inputs: two runs on identical
     databases return identical node counts, rep for rep. *)
  let mk () =
    let b = Hyper_memdb.Memdb.create () in
    let module G = Generator.Make (Hyper_memdb.Memdb) in
    let layout, _ = G.generate b ~doc:1 ~leaf_level:4 ~seed:31L in
    (b, layout)
  in
  let b1, l1 = mk () and b2, l2 = mk () in
  let module P = Protocol.Make (Hyper_memdb.Memdb) in
  let config = { Protocol.default_config with reps = 6 } in
  List.iter
    (fun id ->
      let m1 = P.run_op ~config b1 l1 id in
      let m2 = P.run_op ~config b2 l2 id in
      check Alcotest.int
        (Printf.sprintf "%s deterministic" m1.Protocol.op)
        m1.Protocol.nodes_cold m2.Protocol.nodes_cold)
    Protocol.op_ids

(* --- report rendering --- *)

let test_report_tables () =
  let ms =
    [ measurement ~nodes_cold:50 ~nodes_warm:50 ~cold_ms:25.0 ~warm_ms:5.0 ]
  in
  let ms = List.map (fun m -> { m with Protocol.op = "10 closure1N" }) ms in
  let s =
    Report.operation_table ~title:"T" ~levels:[ 4; 5 ] [ (4, ms); (5, ms) ]
  in
  check Alcotest.bool "table mentions op" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"10 closure1N" = 1);
  check Alcotest.bool "has both level columns" true
    (Hyper_util.Text_gen.count_occurrences s ~sub:"L4 cold" = 1
    && Hyper_util.Text_gen.count_occurrences s ~sub:"L5 warm" = 1);
  let s2 =
    Report.comparison_table ~title:"C" ~backends:[ "a"; "b" ]
      [ ("op x", [ ("a", List.hd ms); ("b", List.hd ms) ]) ]
  in
  check Alcotest.bool "comparison columns" true
    (Hyper_util.Text_gen.count_occurrences s2 ~sub:"a cold" = 1);
  let s3 = Report.size_table ~title:"S" [ (4, 400_000, 440_000) ] in
  check Alcotest.bool "ratio rendered" true
    (Hyper_util.Text_gen.count_occurrences s3 ~sub:"1.10" = 1)

(* --- layout properties --- *)

let prop_layout_parent_child_inverse =
  QCheck.Test.make ~name:"layout parent/children inverse" ~count:300
    QCheck.(pair (int_range 1 5) (int_bound 10_000))
    (fun (level, salt) ->
      let l = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:level () in
      let oid = (salt mod l.Layout.node_count) + 1 in
      let children_ok =
        Array.for_all
          (fun c -> Layout.parent_of l c = Some oid)
          (Layout.children_of l oid)
      in
      let parent_ok =
        match Layout.parent_of l oid with
        | None -> oid = Layout.root l
        | Some p -> Array.exists (fun c -> c = oid) (Layout.children_of l p)
      in
      children_ok && parent_ok)

let prop_layout_uid_bijection =
  QCheck.Test.make ~name:"layout uid <-> oid bijection" ~count:300
    QCheck.(pair (int_range 1 5) (int_bound 10_000))
    (fun (level, salt) ->
      let l = Layout.make ~doc:1 ~oid_base:7777 ~leaf_level:level () in
      let uid = (salt mod l.Layout.node_count) + 1 in
      Layout.uid_of_oid l (Layout.oid_of_uid l uid) = uid)

let prop_layout_level_consistent =
  QCheck.Test.make ~name:"level_of_oid vs level_first_oid" ~count:300
    QCheck.(pair (int_range 1 5) (int_bound 10_000))
    (fun (leaf, salt) ->
      let l = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:leaf () in
      let oid = (salt mod l.Layout.node_count) + 1 in
      let level = Layout.level_of_oid l oid in
      let first = Layout.level_first_oid l level in
      oid >= first && oid < first + Schema.nodes_at_level level)

let prop_random_pickers_in_range =
  QCheck.Test.make ~name:"random pickers respect their domains" ~count:200
    QCheck.int64 (fun seed ->
      let l = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:4 () in
      let rng = Hyper_util.Prng.create seed in
      let node = Layout.random_node l rng in
      let non_root = Layout.random_non_root l rng in
      let internal = Layout.random_internal l rng in
      let level3 = Layout.random_level l rng 3 in
      let text = Layout.random_text l rng in
      let form = Layout.random_form l rng in
      node >= 1 && node <= 781 && non_root >= 2 && non_root <= 781
      && (not (Layout.is_leaf l internal))
      && Layout.level_of_oid l level3 = 3
      && Layout.is_leaf l text
      && (not (Layout.is_form l text))
      && Layout.is_form l form)

(* --- verifier negative cases --- *)

module B = Hyper_memdb.Memdb
module GenM = Generator.Make (B)
module V = Verify.Make (B)

let failing_checks b layout = Verify.failures (V.run b layout)

let test_verifier_catches_bad_text () =
  let b = B.create () in
  let layout, _ = GenM.generate b ~doc:1 ~leaf_level:4 ~seed:9L in
  let text_oid = Layout.random_text layout (Hyper_util.Prng.create 1L) in
  B.begin_txn b;
  B.set_text b text_oid "no markers here at all";
  B.commit b;
  let fails = failing_checks b layout in
  check Alcotest.bool "text check fails" true
    (List.exists
       (fun c ->
         Hyper_util.Text_gen.count_occurrences c.Verify.name ~sub:"text nodes"
         = 1)
       fails)

let test_verifier_catches_bad_attribute () =
  let b = B.create () in
  let layout, _ = GenM.generate b ~doc:1 ~leaf_level:4 ~seed:9L in
  B.begin_txn b;
  B.set_hundred b 10 5_000 (* out of 1..100 *);
  B.commit b;
  let fails = failing_checks b layout in
  check Alcotest.bool "attribute range check fails" true
    (List.exists
       (fun c ->
         Hyper_util.Text_gen.count_occurrences c.Verify.name
           ~sub:"attribute ranges"
         = 1)
       fails)

let test_verifier_catches_missing_node () =
  let b = B.create () in
  let layout, _ = GenM.generate b ~doc:1 ~leaf_level:4 ~seed:9L in
  (* Add a stray extra node to the same doc: node count check fires. *)
  B.begin_txn b;
  B.create_node b
    { Schema.oid = 40_000; doc = 1; unique_id = 40_000; ten = 1; hundred = 1;
      million = 1; payload = Schema.P_internal };
  B.commit b;
  let fails = failing_checks b layout in
  check Alcotest.bool "count check fails" true
    (List.exists
       (fun c ->
         Hyper_util.Text_gen.count_occurrences c.Verify.name ~sub:"node count"
         = 1)
       fails)

(* --- multiuser determinism and invariants --- *)

module M = Multiuser.Make (B)

let run_multi ~mode ~users ~hot =
  let b = B.create () in
  let layout, _ = GenM.generate b ~doc:1 ~leaf_level:4 ~seed:3L in
  (b, layout, M.run b layout ~mode ~users ~txns_per_user:30 ~hot_fraction:hot ~seed:3L)

let test_multiuser_single_user_never_aborts () =
  List.iter
    (fun mode ->
      let _, _, r = run_multi ~mode ~users:1 ~hot:1.0 in
      check Alcotest.int "no aborts single user" 0 r.Multiuser.aborted;
      check Alcotest.int "all committed" 30 r.Multiuser.committed)
    [ Multiuser.Optimistic; Multiuser.Two_phase_locking ]

let test_multiuser_disjoint_never_aborts () =
  List.iter
    (fun mode ->
      let _, _, r = run_multi ~mode ~users:4 ~hot:0.0 in
      check Alcotest.int "no aborts disjoint" 0 r.Multiuser.aborted;
      check Alcotest.int "all committed" 120 r.Multiuser.committed)
    [ Multiuser.Optimistic; Multiuser.Two_phase_locking ]

let test_multiuser_database_consistent_after_run () =
  (* closure1NAttSet is self-inverse per txn pair, but arbitrary numbers
     of commits may leave hundred complemented; structural invariants
     other than the attribute range must still hold. *)
  let b, layout, _ = run_multi ~mode:Multiuser.Optimistic ~users:4 ~hot:0.5 in
  let fails =
    List.filter
      (fun c -> c.Verify.name <> "attribute ranges (ten, hundred, million)")
      (failing_checks b layout)
  in
  (match fails with
  | [] -> ()
  | c :: _ -> Alcotest.failf "structure broken: %s — %s" c.Verify.name c.Verify.detail);
  ignore layout

let test_multiuser_validation () =
  let b = B.create () in
  let layout, _ = GenM.generate b ~doc:1 ~leaf_level:4 ~seed:3L in
  Alcotest.check_raises "users < 1"
    (Invalid_argument "Multiuser.run: users < 1") (fun () ->
      ignore
        (M.run b layout ~mode:Multiuser.Optimistic ~users:0 ~txns_per_user:1
           ~hot_fraction:0.0 ~seed:1L));
  Alcotest.check_raises "hot out of range"
    (Invalid_argument "Multiuser.run: hot_fraction outside [0, 1]") (fun () ->
      ignore
        (M.run b layout ~mode:Multiuser.Optimistic ~users:1 ~txns_per_user:1
           ~hot_fraction:1.5 ~seed:1L))

let () =
  Alcotest.run "hyper_protocol"
    [
      ( "measurement",
        [
          Alcotest.test_case "per-node math" `Quick test_per_node_math;
          Alcotest.test_case "op ids" `Quick test_op_ids_complete;
          Alcotest.test_case "disk cold >> warm under latency" `Quick
            test_disk_cold_slower_than_warm;
          Alcotest.test_case "deterministic inputs per (seed, op)" `Quick
            test_protocol_deterministic_inputs;
        ] );
      ("report", [ Alcotest.test_case "tables render" `Quick test_report_tables ]);
      ( "layout",
        [
          qtest prop_layout_parent_child_inverse;
          qtest prop_layout_uid_bijection;
          qtest prop_layout_level_consistent;
          qtest prop_random_pickers_in_range;
        ] );
      ( "verifier negatives",
        [
          Alcotest.test_case "bad text flagged" `Quick test_verifier_catches_bad_text;
          Alcotest.test_case "bad attribute flagged" `Quick
            test_verifier_catches_bad_attribute;
          Alcotest.test_case "extra node flagged" `Quick
            test_verifier_catches_missing_node;
        ] );
      ( "multiuser",
        [
          Alcotest.test_case "single user clean" `Quick
            test_multiuser_single_user_never_aborts;
          Alcotest.test_case "disjoint users clean" `Quick
            test_multiuser_disjoint_never_aborts;
          Alcotest.test_case "structure survives contention" `Quick
            test_multiuser_database_consistent_after_run;
          Alcotest.test_case "argument validation" `Quick
            test_multiuser_validation;
        ] );
    ]

(* The MVCC layer: version chains and the R5 history operations,
   snapshot isolation, first-committer-wins validation, and GC
   watermark semantics.  The whole binary runs with the lockdep
   detector live (like test_txn), so a rank inversion anywhere in the
   version store or the multiuser harness fails the run. *)

module VS = Hyper_txn.Version_store
module Obs = Hyper_obs.Obs
module Lockdep = Hyper_util.Sync.Lockdep

let () = Lockdep.enable ()

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- chains and R5 round-trips --- *)

let test_chain_ordering () =
  let vs = VS.create () in
  let t1 = VS.put vs ~key:1 "a" in
  let t2 = VS.put vs ~key:1 "b" in
  let t3 = VS.put vs ~key:1 "c" in
  check Alcotest.bool "clock strictly advances" true (t1 < t2 && t2 < t3);
  check
    Alcotest.(list (pair int string))
    "history newest first"
    [ (t3, "c"); (t2, "b"); (t1, "a") ]
    (VS.history vs ~key:1);
  check Alcotest.(option string) "latest" (Some "c") (VS.latest vs ~key:1);
  check Alcotest.(option string) "previous" (Some "b") (VS.previous vs ~key:1);
  check Alcotest.int "version_count" 3 (VS.version_count vs ~key:1);
  check Alcotest.(option string) "missing latest" None (VS.latest vs ~key:9);
  check Alcotest.(option string) "missing previous" None (VS.previous vs ~key:9);
  check Alcotest.(list int) "keys" [ 1 ] (VS.keys vs)

let test_as_of_boundary () =
  let vs = VS.create () in
  let t1 = VS.put vs ~key:7 10 in
  let t2 = VS.put vs ~key:7 20 in
  (* The boundary is inclusive: a probe at exactly a version's
     timestamp sees that version. *)
  check Alcotest.(option int) "at t1" (Some 10) (VS.as_of vs ~key:7 ~time:t1);
  check Alcotest.(option int) "at t2" (Some 20) (VS.as_of vs ~key:7 ~time:t2);
  check
    Alcotest.(option int)
    "just below t2" (Some 10)
    (VS.as_of vs ~key:7 ~time:(t2 - 1));
  check
    Alcotest.(option int)
    "before first" None
    (VS.as_of vs ~key:7 ~time:(t1 - 1))

let test_variant_roundtrip () =
  let vs = VS.create () in
  ignore (VS.put vs ~key:3 "trunk" : int);
  ignore (VS.put_variant vs ~key:3 ~variant:"exp" "e1" : int);
  ignore (VS.put_variant vs ~key:3 ~variant:"exp" "e2" : int);
  ignore (VS.put_variant vs ~key:3 ~variant:"alt" "a1" : int);
  check Alcotest.(list string) "variants sorted" [ "alt"; "exp" ]
    (VS.variants vs ~key:3);
  check
    Alcotest.(option string)
    "latest on branch" (Some "e2")
    (VS.latest_variant vs ~key:3 ~variant:"exp");
  check
    Alcotest.(option string)
    "other branch" (Some "a1")
    (VS.latest_variant vs ~key:3 ~variant:"alt");
  check
    Alcotest.(option string)
    "trunk unaffected" (Some "trunk") (VS.latest vs ~key:3);
  check Alcotest.(list string) "no variants elsewhere" [] (VS.variants vs ~key:4)

(* Model test: [as_of] must agree with a replay of the put log — for
   every key and probe time, the answer is the newest put whose
   returned timestamp is <= the probe.  GC is off so the full log
   stays resolvable. *)
let test_as_of_model =
  QCheck.Test.make ~name:"as_of agrees with put-log replay" ~count:200
    QCheck.(small_list (pair (int_range 0 4) small_int))
    (fun puts ->
      let vs = VS.create ~gc_every:0 () in
      let log = List.map (fun (k, v) -> (VS.put vs ~key:k v, k, v)) puts in
      let expect key time =
        List.fold_left
          (fun acc (ts, k, v) -> if k = key && ts <= time then Some v else acc)
          None log
      in
      let ok = ref true in
      for time = 0 to VS.now vs + 1 do
        for key = 0 to 4 do
          if VS.as_of vs ~key ~time <> expect key time then ok := false
        done
      done;
      !ok)

(* --- snapshot isolation --- *)

let test_snapshot_isolation () =
  let vs = VS.create () in
  ignore (VS.put vs ~key:1 100 : int);
  ignore (VS.put vs ~key:2 200 : int);
  let snap = VS.begin_snapshot vs in
  check Alcotest.int "one active pin" 1 (VS.active_snapshots vs);
  (* Commits land after the snapshot began: a direct put and a full
     read-write transaction. *)
  ignore (VS.put vs ~key:1 111 : int);
  let txn = VS.begin_rw vs in
  VS.txn_put txn ~key:2 222;
  (match VS.commit txn with
  | VS.Committed _ -> ()
  | VS.Conflict _ -> Alcotest.fail "unexpected conflict");
  check
    Alcotest.(option int)
    "snapshot keeps key 1 pre-image" (Some 100)
    (VS.snapshot_get snap ~key:1);
  check
    Alcotest.(option int)
    "snapshot keeps key 2 pre-image" (Some 200)
    (VS.snapshot_get snap ~key:2);
  check Alcotest.(option int) "live sees put" (Some 111) (VS.latest vs ~key:1);
  check Alcotest.(option int) "live sees commit" (Some 222) (VS.latest vs ~key:2);
  ignore (VS.put vs ~key:3 300 : int);
  check
    Alcotest.(option int)
    "key born after the snapshot is invisible" None
    (VS.snapshot_get snap ~key:3);
  VS.release snap;
  check Alcotest.int "pin dropped" 0 (VS.active_snapshots vs);
  check Alcotest.bool "reads after release rejected" true
    (match VS.snapshot_get snap ~key:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Idempotent. *)
  VS.release snap

let test_first_committer_wins () =
  let vs = VS.create () in
  ignore (VS.put vs ~key:1 0 : int);
  ignore (VS.put vs ~key:2 0 : int);
  let a = VS.begin_rw vs in
  let b = VS.begin_rw vs in
  check Alcotest.(option int) "a reads committed" (Some 0) (VS.txn_get a ~key:1);
  VS.txn_put a ~key:1 10;
  check
    Alcotest.(option int)
    "own buffered write wins for a" (Some 10) (VS.txn_get a ~key:1);
  check
    Alcotest.(option int)
    "a's buffer invisible to b" (Some 0) (VS.txn_get b ~key:1);
  VS.txn_put b ~key:1 20;
  VS.txn_put b ~key:2 20;
  check Alcotest.(list int) "write set sorted" [ 1; 2 ] (VS.txn_write_set b);
  (match VS.commit a with
  | VS.Committed ts ->
    check Alcotest.(option int) "a installed" (Some 10) (VS.as_of vs ~key:1 ~time:ts)
  | VS.Conflict _ -> Alcotest.fail "first committer must win");
  (match VS.commit b with
  | VS.Committed _ -> Alcotest.fail "second committer must lose"
  | VS.Conflict keys ->
    check Alcotest.(list int) "only the overwritten key conflicts" [ 1 ] keys);
  check
    Alcotest.(option int)
    "loser installed nothing" (Some 0) (VS.latest vs ~key:2);
  check Alcotest.bool "finished txn rejected" true
    (match VS.commit b with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Disjoint writers both commit. *)
  let c = VS.begin_rw vs in
  let d = VS.begin_rw vs in
  VS.txn_put c ~key:1 30;
  VS.txn_put d ~key:2 40;
  let committed = function VS.Committed _ -> true | VS.Conflict _ -> false in
  check Alcotest.bool "disjoint c commits" true (committed (VS.commit c));
  check Alcotest.bool "disjoint d commits" true (committed (VS.commit d));
  (* An aborted transaction leaves no trace and unpins. *)
  let e = VS.begin_rw vs in
  VS.txn_put e ~key:1 99;
  VS.abort_rw e;
  check Alcotest.(option int) "abort discards" (Some 30) (VS.latest vs ~key:1);
  check Alcotest.int "no pins left" 0 (VS.active_snapshots vs)

(* --- GC watermark --- *)

let test_gc_watermark () =
  let vs = VS.create ~retain:1 ~gc_every:0 () in
  ignore (VS.put vs ~key:1 0 : int);
  let snap = VS.begin_snapshot vs in
  let pin_ts = VS.snapshot_ts snap in
  for i = 1 to 10 do
    ignore (VS.put vs ~key:1 i : int)
  done;
  check Alcotest.int "watermark is the oldest pin" pin_ts (VS.watermark vs);
  ignore (VS.gc vs : int);
  check
    Alcotest.(option int)
    "pinned read survives GC" (Some 0)
    (VS.snapshot_get snap ~key:1);
  check Alcotest.bool "chain keeps the pinned image plus the head" true
    (VS.version_count vs ~key:1 >= 2);
  VS.release snap;
  check Alcotest.int "watermark advances to now" (VS.now vs) (VS.watermark vs);
  let dropped = VS.gc vs in
  check Alcotest.bool "gc reclaims the unpinned history" true (dropped > 0);
  check Alcotest.int "chain pruned to the retain floor" 1
    (VS.version_count vs ~key:1);
  check Alcotest.(option int) "latest survives" (Some 10) (VS.latest vs ~key:1)

(* Regression for the unbounded-chain bug: with no live snapshot, the
   automatic GC cadence must bound every chain — sustained updates
   cannot accumulate more than the retain floor plus one GC period of
   installs. *)
let test_chains_stay_bounded () =
  let retain = 4 and gc_every = 64 in
  let vs = VS.create ~retain ~gc_every () in
  for i = 1 to 5_000 do
    ignore (VS.put vs ~key:(i mod 8) i : int)
  done;
  let bound = retain + gc_every in
  List.iter
    (fun key ->
      let n = VS.version_count vs ~key in
      if n > bound then
        Alcotest.failf "key %d kept %d versions (bound %d)" key n bound)
    (VS.keys vs);
  check Alcotest.bool "total versions bounded" true
    (VS.total_versions vs <= 8 * bound)

(* --- acceptance: a long snapshot reader holds zero locks --- *)

(* Writers commit throughout while snapshot readers sweep the whole
   structure.  Under [Mvcc] the read path never touches the lock
   manager, so [hyper_txn_lock_waits_total] stays exactly flat; the
   same shape under [Two_phase_locking] makes writers queue behind the
   sweeps' shared locks, which is the contrast the counter shows. *)
let test_reader_holds_zero_locks () =
  let module B = Hyper_memdb.Memdb in
  let module MU = Hyper_core.Multiuser.Make (B) in
  let module G = Hyper_core.Generator.Make (B) in
  let waits = Obs.Counter.make "hyper_txn_lock_waits_total" in
  let b = B.create () in
  let layout, _ = G.generate b ~doc:1 ~leaf_level:3 ~seed:31L in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let before = Obs.Counter.value waits in
      let r =
        MU.run ~readers:2 b layout ~mode:Hyper_core.Multiuser.Mvcc ~users:3
          ~txns_per_user:10 ~hot_fraction:0.5 ~seed:17L
      in
      check Alcotest.int "lock waits flat under MVCC readers" before
        (Obs.Counter.value waits);
      check Alcotest.bool "writers committed throughout" true (r.committed > 0);
      check Alcotest.bool "readers swept" true (r.reader_sweeps > 0);
      check Alcotest.int "snapshot sweeps never abort" 0 r.reader_aborts;
      let after_mvcc = Obs.Counter.value waits in
      let r2 =
        MU.run ~readers:2 b layout ~mode:Hyper_core.Multiuser.Two_phase_locking
          ~users:3 ~txns_per_user:10 ~hot_fraction:0.5 ~seed:17L
      in
      check Alcotest.bool "2PL writers do wait on the sweeps" true
        (Obs.Counter.value waits > after_mvcc);
      check Alcotest.bool "2PL still makes progress" true (r2.committed > 0))

(* --- differential fuzz, tiny tier-1 budget --- *)

let test_store_fuzz_smoke () =
  match
    Hyper_check.Mvcc_check.store_check ~seed:5L ~writers:3 ~readers:2 ~keys:16
      ~txns_per_writer:60
  with
  | None -> ()
  | Some v ->
    Alcotest.failf "store_check: %s"
      (Format.asprintf "%a" Hyper_check.Mvcc_check.pp_violation v)

let test_backend_fuzz_smoke () =
  match
    Hyper_check.Mvcc_check.backend_check ~seed:7L ~gen_seed:42L ~level:3
      ~steps:120
  with
  | None -> ()
  | Some v ->
    Alcotest.failf "backend_check: %s"
      (Format.asprintf "%a" Hyper_check.Mvcc_check.pp_violation v)

let () =
  Alcotest.run "hyper_mvcc"
    [
      ( "chains",
        [
          Alcotest.test_case "ordering + history" `Quick test_chain_ordering;
          Alcotest.test_case "as_of inclusive boundary" `Quick
            test_as_of_boundary;
          Alcotest.test_case "variants round-trip" `Quick test_variant_roundtrip;
          qtest test_as_of_model;
        ] );
      ( "snapshot_isolation",
        [
          Alcotest.test_case "snapshots are stable" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "first committer wins" `Quick
            test_first_committer_wins;
        ] );
      ( "gc",
        [
          Alcotest.test_case "watermark semantics" `Quick test_gc_watermark;
          Alcotest.test_case "chains stay bounded" `Quick
            test_chains_stay_bounded;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "reader holds zero locks" `Quick
            test_reader_holds_zero_locks;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "store smoke" `Quick test_store_fuzz_smoke;
          Alcotest.test_case "backend smoke" `Quick test_backend_fuzz_smoke;
        ] );
    ]

(* Alcotest.run returns only when every test passed; a lockdep report
   accumulated along the way still fails the binary. *)
let () =
  match Lockdep.reports () with
  | [] -> ()
  | rs ->
    List.iter (fun r -> prerr_endline (Lockdep.report_to_string r)) rs;
    exit 70

(* Structural-modification tests (remove_child / remove_part /
   remove_ref / delete_node), run identically against all three backends
   through the shared signature, plus backend-specific durability and
   rollback checks. *)

open Hyper_core

let check = Alcotest.check

(* A scenario is polymorphic in the backend. *)
type scenario = {
  name : string;
  run : 'a. (module Backend.S with type t = 'a) -> 'a -> Layout.t -> unit;
}

let find_ref (type a) (module B : Backend.S with type t = a) (b : a) oid =
  match B.refs_to b oid with
  | [| l |] -> l.Schema.target
  | _ -> Alcotest.fail "expected exactly one reference"

let scenario_remove_ref =
  { name = "remove_ref";
    run =
      (fun (type a) (module B : Backend.S with type t = a) (b : a) layout ->
        let src = Layout.root layout in
        let dst = find_ref (module B) b src in
        let inverse_before = Array.length (B.refs_from b dst) in
        B.begin_txn b;
        B.remove_ref b ~src ~dst;
        B.commit b;
        check Alcotest.int "outgoing gone" 0 (Array.length (B.refs_to b src));
        check Alcotest.int "inverse gone" (inverse_before - 1)
          (Array.length (B.refs_from b dst));
        B.begin_txn b;
        (match B.remove_ref b ~src ~dst with
        | () -> Alcotest.fail "double remove should raise"
        | exception Invalid_argument _ -> ());
        B.abort b) }

let scenario_remove_part =
  { name = "remove_part";
    run =
      (fun (type a) (module B : Backend.S with type t = a) (b : a) layout ->
        let whole = Layout.root layout in
        let part = (B.parts b whole).(0) in
        let inverse_before = Array.length (B.part_of b part) in
        B.begin_txn b;
        B.remove_part b ~whole ~part;
        B.commit b;
        check Alcotest.int "parts shrank" (layout.Layout.fanout - 1)
          (Array.length (B.parts b whole));
        check Alcotest.int "partOf shrank" (inverse_before - 1)
          (Array.length (B.part_of b part));
        check Alcotest.bool "edge gone" false
          (Array.exists (fun p -> p = part) (B.parts b whole))) }

let scenario_remove_child_and_readd =
  { name = "remove_child + re-add";
    run =
      (fun (type a) (module B : Backend.S with type t = a) (b : a) layout ->
        let parent = Layout.root layout in
        let original = B.children b parent in
        let victim = original.(1) in
        B.begin_txn b;
        B.remove_child b ~parent ~child:victim;
        B.commit b;
        let remaining = B.children b parent in
        check Alcotest.int "one fewer child"
          (Array.length original - 1)
          (Array.length remaining);
        check
          (Alcotest.array Alcotest.int)
          "sequence order preserved"
          (Array.of_list
             (List.filter (fun c -> c <> victim) (Array.to_list original)))
          remaining;
        check (Alcotest.option Alcotest.int) "orphaned" None
          (B.parent b victim);
        (* Re-attach: appends at the end of the sequence. *)
        B.begin_txn b;
        B.add_child b ~parent ~child:victim;
        B.commit b;
        let readded = B.children b parent in
        check Alcotest.int "back to full size" (Array.length original)
          (Array.length readded);
        check Alcotest.int "appended last" victim
          readded.(Array.length readded - 1);
        check (Alcotest.option Alcotest.int) "parent restored" (Some parent)
          (B.parent b victim)) }

let scenario_delete_leaf =
  { name = "delete_node (leaf)";
    run =
      (fun (type a) (module B : Backend.S with type t = a) (b : a) layout ->
        let doc = layout.Layout.doc in
        let victim = Layout.level_first_oid layout layout.Layout.leaf_level in
        let parent = Option.get (B.parent b victim) in
        let uid = B.unique_id b victim in
        let n0 = B.node_count b ~doc in
        (* Incoming references must be detached by the delete itself. *)
        B.begin_txn b;
        B.delete_node b victim;
        B.commit b;
        check Alcotest.int "count dropped" (n0 - 1) (B.node_count b ~doc);
        check (Alcotest.option Alcotest.int) "uid unindexed" None
          (B.lookup_unique b ~doc uid);
        check Alcotest.bool "parent's sequence updated" false
          (Array.exists (fun c -> c = victim) (B.children b parent));
        (* Not in any range lookup either. *)
        let survivors = B.range_hundred b ~doc ~lo:1 ~hi:100 in
        check Alcotest.bool "not in attribute index" false
          (List.mem victim survivors);
        (* A scan no longer visits it. *)
        let seen = ref false in
        B.iter_doc b ~doc (fun oid -> if oid = victim then seen := true);
        check Alcotest.bool "not scanned" false !seen;
        B.begin_txn b;
        (match B.delete_node b victim with
        | () -> Alcotest.fail "double delete should raise"
        | exception Invalid_argument _ -> ());
        B.abort b) }

let scenario_delete_with_children_rejected =
  { name = "delete_node with children rejected";
    run =
      (fun (type a) (module B : Backend.S with type t = a) (b : a) layout ->
        B.begin_txn b;
        (match B.delete_node b (Layout.root layout) with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
        B.abort b) }

let scenario_delete_subtree_bottom_up =
  { name = "delete a whole subtree bottom-up";
    run =
      (fun (type a) (module B : Backend.S with type t = a) (b : a) layout ->
        let doc = layout.Layout.doc in
        let top = (Layout.children_of layout (Layout.root layout)).(0) in
        let n0 = B.node_count b ~doc in
        (* Post-order deletion via the backend's own children lists. *)
        let deleted = ref 0 in
        B.begin_txn b;
        let rec wipe oid =
          Array.iter wipe (B.children b oid);
          B.delete_node b oid;
          incr deleted
        in
        wipe top;
        B.commit b;
        check Alcotest.int "subtree size"
          (Layout.closure_size layout ~from_level:1)
          !deleted;
        check Alcotest.int "count dropped" (n0 - !deleted)
          (B.node_count b ~doc);
        check Alcotest.int "root lost one child"
          (layout.Layout.fanout - 1)
          (Array.length (B.children b (Layout.root layout)))) }

let scenarios =
  [ scenario_remove_ref; scenario_remove_part; scenario_remove_child_and_readd;
    scenario_delete_leaf; scenario_delete_with_children_rejected;
    scenario_delete_subtree_bottom_up ]

(* --- backend harnesses --- *)

let temp_path =
  let counter = ref 0 in
  fun name ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyper_mod_%d_%s_%d" (Unix.getpid ()) name !counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".sum"; path ^ ".wal" ]

let memdb_case s =
  Alcotest.test_case s.name `Quick (fun () ->
      let b = Hyper_memdb.Memdb.create () in
      let module G = Generator.Make (Hyper_memdb.Memdb) in
      let layout, _ = G.generate b ~doc:1 ~leaf_level:2 ~seed:13L in
      s.run (module Hyper_memdb.Memdb) b layout)

let diskdb_case s =
  Alcotest.test_case s.name `Quick (fun () ->
      let module D = Hyper_diskdb.Diskdb in
      let path = temp_path "disk" in
      cleanup path;
      let b = D.open_db (D.default_config ~path) in
      let module G = Generator.Make (D) in
      let layout, _ = G.generate b ~doc:1 ~leaf_level:2 ~seed:13L in
      Fun.protect
        ~finally:(fun () ->
          (try D.close b with _ -> ());
          cleanup path)
        (fun () -> s.run (module D) b layout))

let reldb_case s =
  Alcotest.test_case s.name `Quick (fun () ->
      let module R = Hyper_reldb.Reldb in
      let path = temp_path "rel" in
      cleanup path;
      let b = R.open_db (R.default_config ~path) in
      let module G = Generator.Make (R) in
      let layout, _ = G.generate b ~doc:1 ~leaf_level:2 ~seed:13L in
      Fun.protect
        ~finally:(fun () ->
          (try R.close b with _ -> ());
          cleanup path)
        (fun () -> s.run (module R) b layout))

(* --- backend-specific cases --- *)

let test_delete_self_reference () =
  (* A node that references itself: the delete must unhook both
     directions of the same edge without double-removal. *)
  let module B = Hyper_memdb.Memdb in
  let b = B.create () in
  B.begin_txn b;
  B.create_node b
    { Schema.oid = 1; doc = 5; unique_id = 1; ten = 1; hundred = 1;
      million = 1; payload = Schema.P_internal };
  B.add_ref b ~src:1 ~dst:1 ~offset_from:2 ~offset_to:3;
  B.delete_node b 1;
  B.commit b;
  check Alcotest.int "doc empty" 0 (B.node_count b ~doc:5)

let test_delete_persists_across_reopen () =
  let module D = Hyper_diskdb.Diskdb in
  let path = temp_path "persist" in
  cleanup path;
  let b = D.open_db (D.default_config ~path) in
  let module G = Generator.Make (D) in
  let layout, _ = G.generate b ~doc:1 ~leaf_level:2 ~seed:13L in
  let victim = Layout.level_first_oid layout 2 in
  let uid = D.unique_id b victim in
  D.begin_txn b;
  D.delete_node b victim;
  D.commit b;
  D.close b;
  let b2 = D.open_db (D.default_config ~path) in
  check Alcotest.int "count persisted" (layout.Layout.node_count - 1)
    (D.node_count b2 ~doc:1);
  check (Alcotest.option Alcotest.int) "uid stays gone" None
    (D.lookup_unique b2 ~doc:1 uid);
  D.close b2;
  cleanup path

let test_delete_abort_restores () =
  let module D = Hyper_diskdb.Diskdb in
  let path = temp_path "abortdel" in
  cleanup path;
  let b = D.open_db (D.default_config ~path) in
  let module G = Generator.Make (D) in
  let layout, _ = G.generate b ~doc:1 ~leaf_level:2 ~seed:13L in
  let victim = Layout.level_first_oid layout 2 in
  let uid = D.unique_id b victim in
  D.begin_txn b;
  D.delete_node b victim;
  D.abort b;
  check Alcotest.int "count restored" layout.Layout.node_count
    (D.node_count b ~doc:1);
  check (Alcotest.option Alcotest.int) "uid restored" (Some victim)
    (D.lookup_unique b ~doc:1 uid);
  check Alcotest.bool "back in parent's sequence" true
    (Array.exists
       (fun c -> c = victim)
       (D.children b (Option.get (Layout.parent_of layout victim))));
  D.close b;
  cleanup path

let test_custom_fanout_generation () =
  (* §5.2 N.B.: fanouts must be variable.  Build a fanout-3 database and
     verify it fully. *)
  let module B = Hyper_memdb.Memdb in
  let b = B.create () in
  let module G = Generator.Make (B) in
  let module V = Verify.Make (B) in
  let layout, _ = G.generate ~fanout:3 b ~doc:1 ~leaf_level:3 ~seed:21L in
  check Alcotest.int "fanout recorded" 3 layout.Layout.fanout;
  check Alcotest.int "node count 1+3+9+27" 40 layout.Layout.node_count;
  check Alcotest.int "backend agrees" 40 (B.node_count b ~doc:1);
  List.iter
    (fun c ->
      if not c.Verify.ok then
        Alcotest.failf "fanout-3 verify failed: %s — %s" c.Verify.name
          c.Verify.detail)
    (V.run b layout);
  check Alcotest.int "closure size from level 1" 13
    (Layout.closure_size layout ~from_level:1)

let () =
  Alcotest.run "hyper_modification"
    [
      ("memdb", List.map memdb_case scenarios);
      ("diskdb", List.map diskdb_case scenarios);
      ("reldb", List.map reldb_case scenarios);
      ( "specifics",
        [
          Alcotest.test_case "self-reference delete" `Quick
            test_delete_self_reference;
          Alcotest.test_case "delete persists (diskdb)" `Quick
            test_delete_persists_across_reopen;
          Alcotest.test_case "delete abort restores (diskdb)" `Quick
            test_delete_abort_restores;
          Alcotest.test_case "custom fanout generation" `Quick
            test_custom_fanout_generation;
        ] );
    ]

(* Replication and failover (ROADMAP item 2).

   Pinned here:
   - WAL torn-tail handling for streaming: a torn final record on a
     received log is truncated at reopen, never redone (the regression
     the replication design depends on);
   - frame codec round-trips and rejects garbling;
   - the ack-policy matrix survives the failover fuzz at several crash
     points and seeds (acked commits present on the promoted replica,
     survivor diffs clean against the oracle replay of its prefix);
   - promotion picks the max-LSN replica;
   - fencing: a deposed primary's late appends are rejected and it
     demotes itself to read-only;
   - quorum loss flips the primary into degraded read-only mode while
     reads keep working;
   - both catch-up paths (log replay and snapshot copy) fire, and a
     killed replica rejoins correctly through restart. *)

open Hyper_core
open Hyper_check
module Vfs = Hyper_storage.Vfs
module Wal = Hyper_storage.Wal
module Page = Hyper_storage.Page
module Storage_error = Hyper_storage.Storage_error
module D = Hyper_diskdb.Diskdb
module Link = Hyper_net.Channel.Link
module Repl = Hyper_repl.Repl
module Frame = Hyper_repl.Frame
module Replica = Hyper_repl.Repl.Replica
module Cluster = Hyper_repl.Repl.Cluster

(* The whole battery runs under the lockdep deadlock detector: any
   lock-order inversion across the replication threads is a failure
   even if every assertion passes (checked after the run). *)
module Lockdep = Hyper_util.Sync.Lockdep

let () = Lockdep.enable ()

let check = Alcotest.check
let gen_seed = 42L
let level = 3

(* --- satellite: torn final record is truncated at reopen --- *)

let test_torn_tail () =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let wal = Wal.open_ ~vfs "/t/log" in
  let entries =
    [ Wal.Begin 1; Wal.After (1, 0, Bytes.make 16 'a'); Wal.Commit 1 ]
  in
  List.iter (Wal.append wal) entries;
  Wal.sync wal;
  Wal.close wal;
  (* Tear: append a prefix of a valid record — a crash mid-append. *)
  let torn = Wal.encode_entry (Wal.After (2, 1, Bytes.make 16 'b')) in
  let f = vfs.Vfs.open_rw "/t/log" in
  let clean_len = f.Vfs.size () in
  f.Vfs.pwrite ~buf:(Bytes.sub torn 0 (Bytes.length torn - 5)) ~off:clean_len;
  f.Vfs.sync ();
  f.Vfs.close ();
  let scan = Wal.scan ~vfs "/t/log" in
  check Alcotest.bool "scan sees the tear" true scan.Wal.torn;
  check Alcotest.int "clean prefix ends before the tear" clean_len
    scan.Wal.clean_bytes;
  check Alcotest.int "entries stop at the tear" 3
    (List.length scan.Wal.entries);
  (* Reopen must truncate the tear so appends extend the clean prefix. *)
  let wal = Wal.open_ ~vfs "/t/log" in
  Wal.append wal (Wal.Commit 9);
  Wal.sync wal;
  Wal.close wal;
  let reread = Wal.read_all ~vfs "/t/log" in
  check Alcotest.int "tear gone, append readable" 4 (List.length reread);
  check Alcotest.bool "appended entry is last" true
    (List.nth reread 3 = Wal.Commit 9)

(* A torn Append payload on the wire: the replica applies the clean
   prefix, asks for a resend, and never redoes the torn record. *)
let test_torn_frame_nak () =
  let r = Replica.create ~name:"torn" () in
  let whole =
    Bytes.concat Bytes.empty
      [ Wal.encode_entry (Wal.Begin 1);
        Wal.encode_entry (Wal.After (1, 0, Bytes.make Page.size 'x'));
        Wal.encode_entry (Wal.Commit 1) ]
  in
  let torn = Bytes.sub whole 0 (Bytes.length whole - 4) in
  (match
     Replica.handle r
       (Frame.Append { epoch = 1; base_lsn = 0; payload = torn })
   with
  | Some (Frame.Nak { epoch; lsn }) ->
    check Alcotest.int "nak carries the replica epoch" 1 epoch;
    check Alcotest.int "resend from after the clean records" 2 lsn
  | Some f -> Alcotest.failf "expected nak, got %s" (Frame.to_string f)
  | None -> Alcotest.fail "expected nak, got nothing");
  check Alcotest.int "commit was in the torn tail: nothing applied" 0
    (Replica.applied_commits r);
  (* The resend completes the transaction exactly once. *)
  (match
     Replica.handle r
       (Frame.Append { epoch = 1; base_lsn = 0; payload = whole })
   with
  | Some (Frame.Ack { epoch = _e; lsn }) ->
    check Alcotest.int "caught up" 3 lsn
  | Some f -> Alcotest.failf "expected ack, got %s" (Frame.to_string f)
  | None -> Alcotest.fail "expected ack, got nothing");
  check Alcotest.int "one commit applied" 1 (Replica.applied_commits r)

(* --- frame codec --- *)

let test_frame_codec () =
  let frames =
    [ Frame.Append { epoch = 3; base_lsn = 17; payload = Bytes.make 9 'p' };
      Frame.Heartbeat { epoch = 1; commit_lsn = 0 };
      Frame.Snapshot
        { epoch = 2; lsn = 5; commits = 4;
          files = [ ("data", Bytes.make 64 'd'); ("sum", Bytes.empty) ] };
      Frame.Ack { epoch = 7; lsn = 123 };
      Frame.Nak { epoch = 7; lsn = 9 };
      Frame.Fence { epoch = 12 } ]
  in
  List.iter
    (fun f ->
      match Frame.decode (Frame.encode f) with
      | Some g ->
        if f <> g then
          Alcotest.failf "codec not faithful: %s vs %s" (Frame.to_string f)
            (Frame.to_string g)
      | None -> Alcotest.failf "decode failed: %s" (Frame.to_string f))
    frames;
  let b = Frame.encode (Frame.Ack { epoch = 1; lsn = 2 }) in
  Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 0x40));
  check Alcotest.bool "garbled frame rejected" true (Frame.decode b = None);
  check Alcotest.bool "truncated frame rejected" true
    (Frame.decode (Bytes.sub b 0 5) = None)

(* --- shared scenario plumbing --- *)

let layout_of () = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:level ()

let build_primary () =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let db = D.open_db (Differential.crash_config vfs) in
  let module G = Generator.Make (D) in
  ignore (G.generate db ~doc:1 ~leaf_level:level ~seed:gen_seed);
  (env, vfs, db)

let cluster_of ?(cfg = Cluster.default_config) ~vfs ~db n =
  let replicas =
    List.init n (fun i -> Replica.create ~name:(Printf.sprintf "t%d" i) ())
  in
  Cluster.create ~cfg ~engine:(D.engine db) ~vfs ~path:"/fuzz/disk.db"
    ~replicas ()

let run_ops ~layout db ops =
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  let acked = ref 0 in
  List.iter
    (fun op ->
      let out = Trace.apply ~layout inst op in
      if op = Trace.Commit && out = Trace.Done Trace.V_unit then incr acked)
    ops;
  !acked

let trace steps seed = Gen.trace ~seed ~gen_seed ~level ~steps

(* --- the ack-policy matrix, three seeds, three crash points each --- *)

let test_policy_matrix () =
  List.iter
    (fun (policy, seed) ->
      List.iter
        (fun crash_after ->
          let c =
            { Failover.fo_seed = seed; fo_gen_seed = gen_seed;
              fo_level = level; fo_steps = 50; fo_policy = policy;
              fo_replicas = 2; fo_crash_after = crash_after;
              fo_net_faults = true; fo_kill_at = None; fo_restart_at = None;
              fo_retain = 4096; fo_snapshot_lag = 1024 }
          in
          let r = Failover.failover_check c in
          if not (Failover.ok r) then
            Alcotest.failf "failover violation:@ %a" Failover.pp_report r)
        [ 0; 40; 400 ])
    [ (Repl.Async, 301L); (Repl.Sync_one, 302L); (Repl.Quorum, 303L);
      (Repl.Sync_one, 304L); (Repl.Quorum, 305L); (Repl.Async, 306L) ]

(* --- promotion picks the replica with the maximum LSN --- *)

let test_promotion_max_lsn () =
  let _env, vfs, db = build_primary () in
  let layout = layout_of () in
  let cluster = cluster_of ~vfs ~db 2 in
  let ops = trace 60 501L in
  let half = List.filteri (fun i _ -> i < 30) ops in
  let rest = List.filteri (fun i _ -> i >= 30) ops in
  ignore (run_ops ~layout db half);
  (* Partition replica 0: from here on only replica 1 advances. *)
  Link.set_down (Cluster.link_out cluster 0) true;
  Link.set_down (Cluster.link_in cluster 0) true;
  ignore (run_ops ~layout db rest);
  Cluster.heartbeat cluster;
  check Alcotest.bool "replica 1 is ahead" true
    (Replica.next_lsn (Cluster.replica cluster 1)
    > Replica.next_lsn (Cluster.replica cluster 0));
  let idx, survivor = Cluster.promote cluster in
  check Alcotest.int "max-LSN replica promoted" 1 idx;
  check Alcotest.int "survivor is fully caught up" (Cluster.lsn cluster)
    (Replica.next_lsn survivor);
  check Alcotest.int "survivor has every commit" (Cluster.commits cluster)
    (Replica.applied_commits survivor)

(* --- fencing: the deposed primary's late appends are rejected --- *)

let test_fencing () =
  let _env, vfs, db = build_primary () in
  let layout = layout_of () in
  let cluster = cluster_of ~vfs ~db 2 in
  let acked = run_ops ~layout db (trace 40 502L) in
  check Alcotest.bool "some commits acked" true (acked > 0);
  let idx, _survivor = Cluster.promote cluster in
  check Alcotest.bool "a replica was promoted" true (idx = 0 || idx = 1);
  check Alcotest.bool "not yet deposed" false (Cluster.deposed cluster);
  (* The old primary keeps running and tries to commit: the next ship
     meets a fenced replica, learns of the new epoch and demotes. *)
  let late = run_ops ~layout db (trace 40 503L) in
  check Alcotest.int "late commits rejected" 0 late;
  check Alcotest.bool "old primary deposed" true (Cluster.deposed cluster);
  check Alcotest.bool "old primary read-only" true (D.read_only db);
  check Alcotest.bool "epoch advanced on the live replica" true
    (Replica.epoch (Cluster.replica cluster (1 - idx)) > Cluster.epoch cluster)

(* --- quorum loss: primary degrades to read-only, reads keep working --- *)

let test_quorum_loss_degraded () =
  let _env, vfs, db = build_primary () in
  let layout = layout_of () in
  let cfg =
    { Cluster.default_config with
      Cluster.policy = Repl.Quorum;
      ack_retries = 2 }
  in
  let cluster = cluster_of ~cfg ~vfs ~db 2 in
  let acked = run_ops ~layout db (trace 30 504L) in
  check Alcotest.bool "healthy quorum commits" true (acked > 0);
  Cluster.kill_replica cluster 0;
  Cluster.kill_replica cluster 1;
  let acked = run_ops ~layout db (trace 30 505L) in
  check Alcotest.int "no commit without a quorum" 0 acked;
  check Alcotest.bool "cluster degraded" true (Cluster.degraded cluster);
  check Alcotest.bool "primary read-only" true (D.read_only db);
  (* Committed data must remain readable in degraded mode. *)
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  match Trace.apply ~layout inst (Trace.Node_count 1) with
  | Trace.Done (Trace.V_int n) ->
    check Alcotest.bool "reads still served" true (n > 0)
  | out ->
    Alcotest.failf "degraded read failed: %s" (Trace.outcome_to_string out)

(* --- group commit composes with quorum acks --- *)

(* The group durability barrier sits before the ship-and-ack commit
   hook, so a quorum ack must still mean the transaction is applied on
   a quorum of replicas — batching fsyncs must not weaken the ack. *)
let test_group_commit_quorum_durable () =
  let _env, vfs, db = build_primary () in
  (match Hyper_storage.Engine.group_commit_stats (D.engine db) with
  | Some _ -> ()
  | None -> Alcotest.fail "primary must run with group commit enabled");
  let layout = layout_of () in
  let cfg = { Cluster.default_config with Cluster.policy = Repl.Quorum } in
  let cluster = cluster_of ~cfg ~vfs ~db 3 in
  let acked = run_ops ~layout db (trace 60 509L) in
  check Alcotest.bool "commits acked" true (acked > 0);
  (* Deliberately no heartbeat: whatever the replicas hold now, they
     held when the ack was returned. *)
  let applied =
    List.init 3 (fun i -> Replica.applied_commits (Cluster.replica cluster i))
  in
  let have = List.length (List.filter (fun a -> a >= acked) applied) in
  check Alcotest.bool "a majority holds every acked commit" true (have >= 2);
  let _idx, survivor = Cluster.promote cluster in
  check Alcotest.bool "survivor has every acked commit" true
    (Replica.applied_commits survivor >= acked)

(* --- sync-one: the laggard is demoted to async, commits continue --- *)

let test_sync_laggard_demoted () =
  let _env, vfs, db = build_primary () in
  let layout = layout_of () in
  let cfg =
    { Cluster.default_config with
      Cluster.policy = Repl.Sync_one;
      ack_retries = 2;
      demote_after = 2 }
  in
  let cluster = cluster_of ~cfg ~vfs ~db 2 in
  (* Partition replica 0 only: replica 1 keeps acking, so commits must
     not stall; the laggard accumulates strikes and goes async. *)
  Link.set_down (Cluster.link_out cluster 0) true;
  Link.set_down (Cluster.link_in cluster 0) true;
  let acked = run_ops ~layout db (trace 60 506L) in
  check Alcotest.bool "commits kept flowing" true (acked > 0);
  check Alcotest.bool "laggard demoted to async" false
    (Cluster.synced cluster 0);
  check Alcotest.bool "acking replica still sync" true
    (Cluster.synced cluster 1);
  check Alcotest.bool "no degradation" false (Cluster.degraded cluster);
  check Alcotest.bool "demotion counted" true
    ((Cluster.counters cluster).Cluster.demotions > 0)

(* --- catch-up: both paths, via a killed-and-rejoining replica --- *)

let test_catchup_replay () =
  let _env, vfs, db = build_primary () in
  let layout = layout_of () in
  let cluster = cluster_of ~vfs ~db 2 in
  ignore (run_ops ~layout db (trace 20 507L));
  Cluster.kill_replica cluster 0;
  ignore (run_ops ~layout db (trace 20 508L));
  (* Modest gap, retained tail still covers it: log replay. *)
  Cluster.restart_replica cluster 0;
  Cluster.heartbeat cluster;
  check Alcotest.bool "replay catch-up used" true
    ((Cluster.counters cluster).Cluster.replays > 0);
  check Alcotest.int "rejoined replica caught up" (Cluster.lsn cluster)
    (Replica.next_lsn (Cluster.replica cluster 0));
  check Alcotest.int "rejoined replica has every commit"
    (Cluster.commits cluster)
    (Replica.applied_commits (Cluster.replica cluster 0))

let test_catchup_snapshot () =
  let _env, vfs, db = build_primary () in
  let layout = layout_of () in
  let cfg =
    { Cluster.default_config with Cluster.retain_records = 8;
      snapshot_lag = 16 }
  in
  let cluster = cluster_of ~cfg ~vfs ~db 2 in
  ignore (run_ops ~layout db (trace 20 509L));
  Cluster.kill_replica cluster 0;
  ignore (run_ops ~layout db (trace 40 510L));
  (* The retained tail (8 records) long since evicted the gap. *)
  Cluster.restart_replica cluster 0;
  Cluster.heartbeat cluster;
  check Alcotest.bool "snapshot catch-up used" true
    ((Cluster.counters cluster).Cluster.snapshots > 0);
  check Alcotest.int "rejoined replica caught up" (Cluster.lsn cluster)
    (Replica.next_lsn (Cluster.replica cluster 0));
  (* After a snapshot the replica's base holds the commits; promote it
     and make sure the store opens clean. *)
  let _idx, survivor = Cluster.promote ~idx:0 cluster in
  let recovered =
    D.open_db
      { (Differential.crash_config (Replica.vfs survivor)) with
        D.path = Replica.path survivor }
  in
  check Alcotest.bool "promoted snapshot store opens" true
    (D.stored_result_count recovered >= 0);
  D.close recovered

(* --- failover fuzz exercises kill/restart and both catch-up paths --- *)

let test_failover_with_replica_crash () =
  List.iter
    (fun (seed, retain, snapshot_lag) ->
      let c =
        { Failover.fo_seed = seed; fo_gen_seed = gen_seed; fo_level = level;
          fo_steps = 60; fo_policy = Repl.Quorum; fo_replicas = 3;
          fo_crash_after = 300; fo_net_faults = true;
          fo_kill_at = Some (0, 15); fo_restart_at = Some 35;
          fo_retain = retain; fo_snapshot_lag = snapshot_lag }
      in
      let r = Failover.failover_check c in
      if not (Failover.ok r) then
        Alcotest.failf "failover violation:@ %a" Failover.pp_report r)
    [ (601L, 4096, 1024); (602L, 8, 16); (603L, 4096, 1024) ]

(* --- repro files round-trip --- *)

let test_repro_roundtrip () =
  let c =
    { Failover.fo_seed = 77L; fo_gen_seed = gen_seed; fo_level = level;
      fo_steps = 50; fo_policy = Repl.Quorum; fo_replicas = 3;
      fo_crash_after = 120; fo_net_faults = true; fo_kill_at = Some (1, 9);
      fo_restart_at = Some 30; fo_retain = 64; fo_snapshot_lag = 128 }
  in
  let path = Filename.temp_file "failover" ".repro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Failover.save_repro ~path c;
      let c' = Failover.load_repro ~path in
      if c <> c' then
        Alcotest.failf "repro not faithful:@ %a@ vs@ %a" Failover.pp_fcase c
          Failover.pp_fcase c')

let () =
  Alcotest.run "replication"
    [
      ( "wal-tail",
        [
          Alcotest.test_case "torn tail truncated at reopen" `Quick
            test_torn_tail;
          Alcotest.test_case "torn frame nakked, never redone" `Quick
            test_torn_frame_nak;
        ] );
      ("frame", [ Alcotest.test_case "codec" `Quick test_frame_codec ]);
      ( "failover",
        [
          Alcotest.test_case "ack-policy matrix x crash points" `Slow
            test_policy_matrix;
          Alcotest.test_case "promotion picks max lsn" `Quick
            test_promotion_max_lsn;
          Alcotest.test_case "fencing rejects deposed primary" `Quick
            test_fencing;
          Alcotest.test_case "replica crash mid-trace" `Slow
            test_failover_with_replica_crash;
          Alcotest.test_case "repro round-trip" `Quick test_repro_roundtrip;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "quorum ack implies replica-durable" `Quick
            test_group_commit_quorum_durable;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "quorum loss goes read-only" `Quick
            test_quorum_loss_degraded;
          Alcotest.test_case "sync laggard demoted to async" `Quick
            test_sync_laggard_demoted;
        ] );
      ( "catch-up",
        [
          Alcotest.test_case "log replay" `Quick test_catchup_replay;
          Alcotest.test_case "snapshot copy" `Quick test_catchup_snapshot;
        ] );
    ]

(* Alcotest.run returns only when every test passed; a lockdep report
   accumulated along the way still fails the binary. *)
let () =
  match Lockdep.reports () with
  | [] -> ()
  | rs ->
    List.iter (fun r -> prerr_endline (Lockdep.report_to_string r)) rs;
    exit 70

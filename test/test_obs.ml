(* Hyper_obs unit tests: counter/histogram correctness, registry
   identity, the disabled-sink no-op guarantee, span nesting and
   exception safety, and the Prometheus text rendering.

   The registry is process-global, so every test re-establishes the
   sink state it needs and metric names are unique per test. *)

module Obs = Hyper_obs.Obs

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle haystack

(* --- counters --- *)

let test_counter_gating () =
  Obs.disable ();
  let c = Obs.Counter.make "test_gate_total" in
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  check Alcotest.int "disabled sink is a true no-op" 0 (Obs.Counter.value c);
  Obs.enable ();
  Obs.Counter.incr c;
  Obs.Counter.add c 2;
  check Alcotest.int "enabled sink accumulates" 3 (Obs.Counter.value c);
  Obs.reset ();
  check Alcotest.int "reset zeroes in place" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  check Alcotest.int "handle survives reset" 1 (Obs.Counter.value c);
  Obs.disable ()

let test_registry_identity () =
  Obs.enable ();
  let a = Obs.Counter.labeled "test_faults_total" [ ("kind", "eio") ] in
  let b = Obs.Counter.labeled "test_faults_total" [ ("kind", "eio") ] in
  let other = Obs.Counter.labeled "test_faults_total" [ ("kind", "enospc") ] in
  Obs.Counter.incr a;
  check Alcotest.int "same name+labels shares the cell" 1
    (Obs.Counter.value b);
  check Alcotest.int "distinct label set is a distinct metric" 0
    (Obs.Counter.value other);
  (match Obs.Gauge.make "test_faults_total{kind=\"eio\"}" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  Obs.disable ()

(* --- gauges --- *)

let test_gauge () =
  Obs.enable ();
  let g = Obs.Gauge.make "test_size_bytes" in
  Obs.Gauge.set g 10.5;
  Obs.Gauge.add g 2.0;
  check (Alcotest.float 1e-9) "set then add" 12.5 (Obs.Gauge.value g);
  Obs.disable ();
  Obs.Gauge.set g 99.0;
  check (Alcotest.float 1e-9) "disabled set is a no-op" 12.5
    (Obs.Gauge.value g)

(* --- histograms --- *)

let test_histogram () =
  Obs.enable ();
  let h = Obs.Histogram.make "test_latency_ns" in
  List.iter (Obs.Histogram.observe h) [ 1.0; 3.0; 100.0 ];
  Obs.Histogram.observe h (-5.0) (* clamps to 0 *);
  Obs.Histogram.observe h Float.nan (* dropped *);
  check Alcotest.int "count (NaN dropped)" 4 (Obs.Histogram.count h);
  check (Alcotest.float 1e-9) "sum (negative clamped)" 104.0
    (Obs.Histogram.sum h);
  (* Log2 buckets: 0 and 1 land in le=1, 3 in le=4, 100 in le=128. *)
  check (Alcotest.float 0.0) "q=0.5 bucket bound" 1.0
    (Obs.Histogram.quantile h 0.5);
  check (Alcotest.float 0.0) "q=0.75 bucket bound" 4.0
    (Obs.Histogram.quantile h 0.75);
  check (Alcotest.float 0.0) "q=1 bucket bound" 128.0
    (Obs.Histogram.quantile h 1.0);
  check (Alcotest.float 0.0) "empty histogram quantile" 0.0
    (Obs.Histogram.quantile (Obs.Histogram.make "test_empty_ns") 0.5);
  (* The exported family must carry cumulative buckets ending at +Inf. *)
  let fam =
    List.find_map
      (function
        | Obs.F_histogram { name = "test_latency_ns"; buckets; _ } ->
            Some buckets
        | _ -> None)
      (Obs.families ())
  in
  (match fam with
  | None -> Alcotest.fail "histogram family missing from families ()"
  | Some buckets ->
      let les, cums = List.split buckets in
      check Alcotest.bool "last bucket is +Inf" true
        (List.nth les (List.length les - 1) = infinity);
      check Alcotest.int "cumulative count closes at total" 4
        (List.nth cums (List.length cums - 1));
      check Alcotest.bool "cumulative counts are monotone" true
        (List.for_all2 ( <= ) (0 :: cums) (cums @ [ max_int ])));
  Obs.disable ()

(* --- spans --- *)

let test_span_nesting () =
  Obs.Span.set_tracing true;
  let r =
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span "inner" (fun () -> 7))
  in
  check Alcotest.int "thunk result passes through" 7 r;
  (try Obs.Span.with_span "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  let roots = Obs.Span.take_roots () in
  check
    Alcotest.(list string)
    "roots in completion order" [ "outer"; "boom" ]
    (List.map Obs.Span.name roots);
  let outer = List.hd roots in
  check
    Alcotest.(list string)
    "nested span attaches to parent" [ "inner" ]
    (List.map Obs.Span.name (Obs.Span.children outer));
  check Alcotest.bool "duration non-negative" true
    (Obs.Span.duration_ms outer >= 0.0);
  check Alcotest.int "take_roots drains" 0
    (List.length (Obs.Span.take_roots ()));
  let rendered = Obs.Span.to_string roots in
  check_contains "rendering names the root" rendered "outer";
  check_contains "rendering indents the child" rendered "\n  inner";
  Obs.Span.set_tracing false

let test_span_disabled () =
  Obs.Span.set_tracing false;
  check Alcotest.int "disabled tracing is a passthrough" 3
    (Obs.Span.with_span "off" (fun () -> 3));
  check Alcotest.int "nothing recorded while off" 0
    (List.length (Obs.Span.take_roots ()))

(* --- Prometheus text exposition --- *)

let test_prometheus () =
  Obs.enable ();
  let c = Obs.Counter.make ~help:"ops so far" "test_prom_total" in
  Obs.Counter.add c 3;
  let h = Obs.Histogram.make "test_prom_ns" in
  Obs.Histogram.observe h 3.0;
  let s = Obs.to_prometheus () in
  check_contains "HELP line" s "# HELP test_prom_total ops so far";
  check_contains "TYPE line" s "# TYPE test_prom_total counter";
  check_contains "counter sample" s "test_prom_total 3\n";
  check_contains "histogram TYPE" s "# TYPE test_prom_ns histogram";
  check_contains "cumulative bucket" s "test_prom_ns_bucket{le=\"4\"} 1";
  check_contains "+Inf bucket" s "test_prom_ns_bucket{le=\"+Inf\"} 1";
  check_contains "histogram count" s "test_prom_ns_count 1";
  Obs.disable ()

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter gating" `Quick test_counter_gating;
          Alcotest.test_case "registry identity" `Quick test_registry_identity;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and exceptions" `Quick test_span_nesting;
          Alcotest.test_case "disabled passthrough" `Quick test_span_disabled;
        ] );
      ( "export",
        [ Alcotest.test_case "prometheus text" `Quick test_prometheus ] );
    ]

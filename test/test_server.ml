(* Server integration battery over a real unix socket: per-session
   transaction isolation under concurrency, pipelined in-order replies,
   mid-transaction client death rolling back, graceful drain, and
   client reconnect-with-backoff across a server restart. *)

open Hyper_core
open Hyper_net
module M = Hyper_memdb.Memdb
module Gen = Generator.Make (M)

let check = Alcotest.check

(* The whole battery runs under the lockdep deadlock detector: any
   lock-order inversion the server threads perform during the run is a
   failure even if every assertion passes (checked after the run). *)
module Lockdep = Hyper_util.Sync.Lockdep

let () = Lockdep.enable ()

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hyper_srv_%d_%s.sock" (Unix.getpid ()) name)

(* Fresh generated memdb + server per test. *)
let with_server name k =
  let bm = M.create () in
  let layout, _ = Gen.generate bm ~doc:1 ~leaf_level:3 ~seed:11L in
  let instance = Backend.Instance ((module M : Backend.S with type t = M.t), bm) in
  let addr = Netaddr.Unix_sock (sock_path name) in
  let srv = Server.start ~layout instance addr in
  Fun.protect
    ~finally:(fun () -> Server.kill srv)
    (fun () -> k srv addr layout)

let connect addr = Client.connect ~backoff_base_s:0.02 ~max_attempts:5 addr

let probe_oid layout =
  let rng = Hyper_util.Prng.create 3L in
  Layout.random_level layout rng 2

let get_hundred c oid =
  match Client.call c [ Trace.Attrs oid ] with
  | [ Trace.Done (Trace.V_ints [ _; _; _; h; _ ]) ] -> h
  | _ -> Alcotest.fail "attrs probe failed"

(* --- transactions --- *)

let test_commit_and_abort_visibility () =
  with_server "vis" (fun _srv addr _layout ->
      let a = connect addr and b = connect addr in
      let mk uid =
        Trace.Create
          {
            oid = 900000 + uid;
            doc = 1;
            uid = 900000 + uid;
            ten = 1;
            hundred = 1;
            million = 1;
            near = None;
            payload = Trace.P_internal;
          }
      in
      (* aborted work is invisible to the other session *)
      (match Client.call a [ Trace.Begin; mk 1; Trace.Abort ] with
      | [ Trace.Done _; Trace.Done _; Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "abort batch failed");
      (match Client.call b [ Trace.Lookup_unique { doc = 1; uid = 900001 } ] with
      | [ Trace.Done (Trace.V_int_opt None) ] -> ()
      | _ -> Alcotest.fail "aborted create leaked");
      (* committed work is visible *)
      (match Client.call a [ Trace.Begin; mk 2; Trace.Commit ] with
      | [ Trace.Done _; Trace.Done _; Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "commit batch failed");
      (match
         Client.call b [ Trace.Lookup_unique { doc = 1; uid = 900002 } ]
       with
      | [ Trace.Done (Trace.V_int_opt (Some _)) ] -> ()
      | _ -> Alcotest.fail "committed create not visible");
      Client.close a;
      Client.close b)

let test_concurrent_txns_serialize () =
  (* 8 clients × 8 read-modify-write transactions on one attribute.
     The engine lease serialises whole transactions, so no increment
     can be lost. *)
  with_server "rmw" (fun _srv addr layout ->
      let oid = probe_oid layout in
      let c0 = connect addr in
      let base = get_hundred c0 oid in
      let clients = 8 and rounds = 8 in
      let worker () =
        let c = connect addr in
        for _ = 1 to rounds do
          match Client.call c [ Trace.Begin; Trace.Attrs oid ] with
          | [ Trace.Done _; Trace.Done (Trace.V_ints [ _; _; _; h; _ ]) ] -> (
            match
              Client.call c
                [ Trace.Set_hundred { oid; value = h + 1 }; Trace.Commit ]
            with
            | [ Trace.Done _; Trace.Done _ ] -> ()
            | _ -> Alcotest.fail "rmw write failed")
          | _ -> Alcotest.fail "rmw read failed"
        done;
        Client.close c
      in
      let threads = List.init clients (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      check Alcotest.int "no lost increment" (base + (clients * rounds))
        (get_hundred c0 oid);
      Client.close c0)

(* --- pipelining --- *)

let test_pipelined_in_order () =
  with_server "pipe" (fun _srv addr layout ->
      let oid = probe_oid layout in
      let c = connect addr in
      let rids =
        List.init 10 (fun i ->
            ( i,
              Client.submit c
                [
                  Trace.Begin;
                  Trace.Set_hundred { oid; value = i };
                  Trace.Attrs oid;
                  Trace.Commit;
                ] ))
      in
      (* await out of submission order: later rids first *)
      List.iter
        (fun (i, rid) ->
          match Client.await c rid with
          | [ Trace.Done _; Trace.Done _;
              Trace.Done (Trace.V_ints [ _; _; _; h; _ ]); Trace.Done _ ] ->
            check Alcotest.int "pipelined batches applied in order" i h
          | _ -> Alcotest.fail "pipelined batch failed")
        (List.rev rids);
      Client.close c)

(* --- mid-txn disconnect --- *)

let test_client_kill_mid_txn_rolls_back () =
  with_server "kill" (fun _srv addr layout ->
      let oid = probe_oid layout in
      let observer = connect addr in
      let before = get_hundred observer oid in
      (* raw connection so we can vanish without a Bye *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match addr with
      | Netaddr.Unix_sock p -> Unix.connect fd (Unix.ADDR_UNIX p)
      | _ -> assert false);
      let send r =
        let b = Wire.encode_request r in
        ignore (Unix.write fd b 0 (Bytes.length b))
      in
      let dec = Wire.Decoder.create_response () in
      let read_one () =
        let buf = Bytes.create 4096 in
        let rec go () =
          match Wire.Decoder.next dec with
          | Some (Ok r) -> r
          | Some (Error e) -> Alcotest.failf "raw: %s" (Wire.error_to_string e)
          | None ->
            let n = Unix.read fd buf 0 (Bytes.length buf) in
            if n = 0 then Alcotest.fail "raw: eof";
            Wire.Decoder.feed dec buf ~off:0 ~len:n;
            go ()
        in
        go ()
      in
      send (Wire.Hello { client = "killer"; protocol = Wire.protocol_version });
      (match read_one () with
      | Wire.Welcome _ -> ()
      | _ -> Alcotest.fail "no welcome");
      send
        (Wire.Ops
           {
             rid = 1;
             ops =
               [ Trace.Begin; Trace.Set_hundred { oid; value = before + 7 } ];
           });
      (match read_one () with
      | Wire.Results { rid = 1; outcomes = [ Trace.Done _; Trace.Done _ ] } ->
        ()
      | _ -> Alcotest.fail "txn ops not acked");
      (* vanish mid-transaction *)
      Unix.close fd;
      (* the observer's next call needs the engine lease, so it blocks
         until the server has rolled the dead session back *)
      check Alcotest.int "mid-txn write rolled back" before
        (get_hundred observer oid);
      Client.close observer)

(* --- drain --- *)

let test_drain_finishes_in_flight () =
  with_server "drain" (fun srv addr layout ->
      let oid = probe_oid layout in
      let c = connect addr in
      (* pipeline a pile of work, then drain while it is in flight *)
      let rids =
        List.init 20 (fun i ->
            Client.submit c
              [
                Trace.Begin;
                Trace.Set_hundred { oid; value = i };
                Trace.Commit;
              ])
      in
      let drainer = Thread.create (fun () -> Server.drain ~grace_s:5.0 srv) () in
      (* every in-flight request still gets its reply, in order *)
      List.iter
        (fun rid ->
          match Client.await c rid with
          | [ Trace.Done _; Trace.Done _; Trace.Done _ ] -> ()
          | _ -> Alcotest.fail "drained request lost")
        rids;
      Thread.join drainer;
      check Alcotest.int "all sessions gone" 0 (Server.session_count srv);
      (* new work is refused: the server is gone *)
      (match
         Client.call c [ Trace.Attrs oid ]
       with
      | exception Client.Connection_lost _ -> ()
      | _ -> Alcotest.fail "server still serving after drain");
      Client.close c)

(* --- restart / reconnect --- *)

let test_reconnect_after_restart () =
  let name = "restart" in
  let bm = M.create () in
  let layout, _ = Gen.generate bm ~doc:1 ~leaf_level:3 ~seed:11L in
  let instance = Backend.Instance ((module M : Backend.S with type t = M.t), bm) in
  let addr = Netaddr.Unix_sock (sock_path name) in
  let srv1 = Server.start ~layout instance addr in
  let oid = probe_oid layout in
  let c = Client.connect ~backoff_base_s:0.02 ~max_attempts:10 addr in
  let h = get_hundred c oid in
  let g1 = Client.generation c in
  Server.kill srv1;
  (* restart on the same address while the client retries with backoff *)
  let restarter =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        Server.start ~layout instance addr)
      ()
  in
  (* the call sees the dead socket, reconnects with backoff, retries *)
  check Alcotest.int "same answer after restart" h (get_hundred c oid);
  if Client.generation c <= g1 then
    Alcotest.fail "expected a fresh connection after restart";
  Client.close c;
  let srv2 = Thread.join restarter in
  ignore srv2

let test_mid_txn_loss_is_not_retried () =
  with_server "txnloss" (fun srv addr _layout ->
      let c = connect addr in
      (match Client.call c [ Trace.Begin ] with
      | [ Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "begin failed");
      Server.kill srv;
      match Client.call c [ Trace.Commit ] with
      | exception Client.Connection_lost _ -> ()
      | _ -> Alcotest.fail "mid-txn loss must not silently retry")

(* --- snapshot sessions --- *)

let mk_create uid =
  Trace.Create
    {
      oid = 900000 + uid;
      doc = 1;
      uid = 900000 + uid;
      ten = 1;
      hundred = 1;
      million = 1;
      near = None;
      payload = Trace.P_internal;
    }

let lookup c uid =
  match Client.call c [ Trace.Lookup_unique { doc = 1; uid = 900000 + uid } ] with
  | [ Trace.Done (Trace.V_int_opt r) ] -> r
  | _ -> Alcotest.fail "lookup failed"

let test_snapshot_session_detached () =
  with_server "snap" (fun _srv addr _layout ->
      let w = connect addr and r = connect addr in
      Client.snapshot r ~active:true;
      (* A writer commits after the view was cloned; the snapshot
         session keeps the pre-image, a live session sees the write. *)
      (match Client.call w [ Trace.Begin; mk_create 1; Trace.Commit ] with
      | [ Trace.Done _; Trace.Done _; Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "writer commit failed");
      check Alcotest.bool "snapshot keeps the pre-image" true
        (lookup r 1 = None);
      check Alcotest.bool "live session sees the commit" true
        (lookup w 1 <> None);
      (* Deactivating returns the session to live reads. *)
      Client.snapshot r ~active:false;
      check Alcotest.bool "deactivated session reads live state" true
        (lookup r 1 <> None);
      Client.close w;
      Client.close r)

let test_snapshot_reads_bypass_lease () =
  with_server "snaplease" (fun _srv addr _layout ->
      let w = connect addr and r = connect addr in
      Client.snapshot r ~active:true;
      (* The writer parks inside a transaction, holding the engine
         lease across batches.  The snapshot session must still get
         replies — its reads never touch the lease. *)
      (match Client.call w [ Trace.Begin; mk_create 2 ] with
      | [ Trace.Done _; Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "begin failed");
      check Alcotest.bool "snapshot read answered mid-txn" true
        (lookup r 2 = None);
      (match Client.call w [ Trace.Commit ] with
      | [ Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "commit failed");
      Client.close w;
      Client.close r)

let test_snapshot_session_read_only () =
  with_server "snapro" (fun _srv addr _layout ->
      let r = connect addr in
      Client.snapshot r ~active:true;
      (match Client.call r [ mk_create 3 ] with
      | [ Trace.Raised "Snapshot_read_only" ] -> ()
      | _ -> Alcotest.fail "mutation must be rejected on a snapshot");
      (match Client.call r [ Trace.Begin ] with
      | [ Trace.Raised "Snapshot_read_only" ] -> ()
      | _ -> Alcotest.fail "txn control must be rejected on a snapshot");
      Client.close r)

let test_snapshot_inside_txn_rejected () =
  with_server "snaptxn" (fun _srv addr _layout ->
      let c = connect addr in
      (match Client.call c [ Trace.Begin ] with
      | [ Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "begin failed");
      (match Client.snapshot c ~active:true with
      | exception Client.Server_fault (Wire.F_bad_op, _) -> ()
      | () -> Alcotest.fail "snapshot inside a transaction must fault");
      (* The session survives the fault and can finish its txn. *)
      (match Client.call c [ Trace.Commit ] with
      | [ Trace.Done _ ] -> ()
      | _ -> Alcotest.fail "commit after fault failed");
      Client.close c)

let () =
  Alcotest.run "test_server"
    [
      ( "txn",
        [
          Alcotest.test_case "commit/abort visibility" `Quick
            test_commit_and_abort_visibility;
          Alcotest.test_case "concurrent rmw serialises" `Quick
            test_concurrent_txns_serialize;
          Alcotest.test_case "mid-txn kill rolls back" `Quick
            test_client_kill_mid_txn_rolls_back;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "in-order replies" `Quick test_pipelined_in_order ]
      );
      ( "lifecycle",
        [
          Alcotest.test_case "drain finishes in-flight" `Quick
            test_drain_finishes_in_flight;
          Alcotest.test_case "reconnect after restart" `Quick
            test_reconnect_after_restart;
          Alcotest.test_case "mid-txn loss not retried" `Quick
            test_mid_txn_loss_is_not_retried;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "detached view" `Quick
            test_snapshot_session_detached;
          Alcotest.test_case "reads bypass the lease" `Quick
            test_snapshot_reads_bypass_lease;
          Alcotest.test_case "read-only enforced" `Quick
            test_snapshot_session_read_only;
          Alcotest.test_case "rejected inside txn" `Quick
            test_snapshot_inside_txn_rejected;
        ] );
    ]

(* Alcotest.run returns only when every test passed; a lockdep report
   accumulated along the way still fails the binary. *)
let () =
  match Lockdep.reports () with
  | [] -> ()
  | rs ->
    List.iter (fun r -> prerr_endline (Lockdep.report_to_string r)) rs;
    exit 70

(* Stats regression suite for the PR-5 fixes: Float.compare-based
   percentile sorting, NaN rejection at [add], empty-series guards on
   min/max/percentile, and Welford's update keeping stddev accurate
   when the mean dwarfs the spread. *)

module Stats = Hyper_util.Stats

let check = Alcotest.check
let close = Alcotest.float 1e-9

let of_list xs =
  let t = Stats.create () in
  List.iter (Stats.add t) xs;
  t

let raises_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* --- percentile: linear interpolation over sorted samples --- *)

let test_percentile () =
  (* Insertion order deliberately scrambled: percentile must sort. *)
  let t = of_list [ 30.0; 10.0; 40.0; 20.0 ] in
  check close "p0 is the minimum" 10.0 (Stats.percentile t 0.0);
  check close "p100 is the maximum" 40.0 (Stats.percentile t 100.0);
  check close "p50 interpolates between middle samples" 25.0
    (Stats.percentile t 50.0);
  check close "p25 interpolates with fractional rank" 17.5
    (Stats.percentile t 25.0);
  check close "median is p50" (Stats.percentile t 50.0) (Stats.median t);
  let one = of_list [ 7.0 ] in
  check close "single sample at any p" 7.0 (Stats.percentile one 33.0)

let test_percentile_negative () =
  (* Float.compare must order negatives correctly (the old polymorphic
     compare happened to as well, but this pins the behaviour). *)
  let t = of_list [ -3.0; 5.0; -10.0; 0.0 ] in
  check close "p0 over mixed signs" (-10.0) (Stats.percentile t 0.0);
  check close "p50 over mixed signs" (-1.5) (Stats.percentile t 50.0)

let test_percentile_errors () =
  let t = of_list [ 1.0; 2.0 ] in
  raises_invalid "p < 0" (fun () -> Stats.percentile t (-1.0));
  raises_invalid "p > 100" (fun () -> Stats.percentile t 100.5);
  raises_invalid "empty series" (fun () ->
      Stats.percentile (Stats.create ()) 50.0)

(* --- NaN rejection --- *)

let test_nan_rejected () =
  let t = of_list [ 1.0 ] in
  raises_invalid "NaN sample" (fun () -> Stats.add t Float.nan);
  (* The failed add must not have corrupted the series. *)
  check Alcotest.int "count unchanged" 1 (Stats.count t);
  check close "mean unchanged" 1.0 (Stats.mean t)

(* --- empty-series guards --- *)

let test_empty_guards () =
  let t = Stats.create () in
  raises_invalid "min of empty" (fun () -> Stats.min t);
  raises_invalid "max of empty" (fun () -> Stats.max t);
  check Alcotest.int "count" 0 (Stats.count t);
  check close "mean of empty is 0" 0.0 (Stats.mean t);
  check close "stddev of empty is 0" 0.0 (Stats.stddev t)

let test_min_max () =
  let t = of_list [ 3.0; -2.0; 9.0 ] in
  check close "min" (-2.0) (Stats.min t);
  check close "max" 9.0 (Stats.max t)

(* --- stddev numerical robustness --- *)

let test_stddev_basic () =
  let t = of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* Classic fixture: population variance 4, sample variance 32/7. *)
  check (Alcotest.float 1e-9) "sample stddev" (sqrt (32.0 /. 7.0))
    (Stats.stddev t);
  check close "stddev of a single sample is 0" 0.0
    (Stats.stddev (of_list [ 42.0 ]))

let test_stddev_large_offset () =
  (* Samples {1, 2, 3} offset by 1e9 — sample stddev is exactly 1.
     The old sum-of-squares formula loses every significant digit at
     this offset (and could go negative under the sqrt). *)
  let t = of_list [ 1e9 +. 1.0; 1e9 +. 2.0; 1e9 +. 3.0 ] in
  check (Alcotest.float 1e-6) "Welford survives a 1e9 offset" 1.0
    (Stats.stddev t)

let () =
  Alcotest.run "stats"
    [
      ( "percentile",
        [
          Alcotest.test_case "interpolation fixtures" `Quick test_percentile;
          Alcotest.test_case "negative samples" `Quick test_percentile_negative;
          Alcotest.test_case "domain errors" `Quick test_percentile_errors;
        ] );
      ( "guards",
        [
          Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
          Alcotest.test_case "empty series" `Quick test_empty_guards;
          Alcotest.test_case "min/max" `Quick test_min_max;
        ] );
      ( "stddev",
        [
          Alcotest.test_case "textbook fixture" `Quick test_stddev_basic;
          Alcotest.test_case "large offset" `Quick test_stddev_large_offset;
        ] );
    ]

(* Model-based check of Hyper_util.Lru against a naive reference: an
   association list kept most-recently-used-first, where every operation
   is a linear scan.  Random op sequences must leave both structures
   with identical observable state — contents, recency order (observed
   through eviction), length and hit/miss answers. *)

module Lru = Hyper_util.Lru

let qtest = QCheck_alcotest.to_alcotest

(* --- the reference model --- *)

module Model = struct
  type t = { cap : int; mutable l : (int * int) list }

  let create cap = { cap; l = [] }
  let length m = List.length m.l
  let mem m k = List.mem_assoc k m.l

  let find m k =
    match List.assoc_opt k m.l with
    | None -> None
    | Some v ->
      m.l <- (k, v) :: List.remove_assoc k m.l;
      Some v

  let put m k v =
    m.l <- (k, v) :: List.remove_assoc k m.l;
    if List.length m.l > m.cap then
      m.l <- List.filteri (fun i _ -> i < m.cap) m.l

  let remove m k = m.l <- List.remove_assoc k m.l
  let clear m = m.l <- []
  let sorted m = List.sort compare m.l
end

(* --- random op sequences --- *)

type op = Put of int * int | Find of int | Mem of int | Remove of int | Clear

let op_gen =
  (* Keys from a small space so collisions, touches and evictions of
     the same key actually happen. *)
  QCheck.Gen.(
    frequency
      [ (6, map2 (fun k v -> Put (k, v)) (int_bound 20) (int_bound 1000));
        (4, map (fun k -> Find k) (int_bound 20));
        (2, map (fun k -> Mem k) (int_bound 20));
        (2, map (fun k -> Remove k) (int_bound 20));
        (1, return Clear) ])

let op_print = function
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Find k -> Printf.sprintf "find %d" k
  | Mem k -> Printf.sprintf "mem %d" k
  | Remove k -> Printf.sprintf "remove %d" k
  | Clear -> "clear"

let scenario =
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "cap=%d [%s]" cap
        (String.concat "; " (List.map op_print ops)))
    QCheck.Gen.(pair (int_range 1 8) (list_size (int_bound 120) op_gen))

let lru_contents t =
  let acc = ref [] in
  Lru.iter (fun k v -> acc := (k, v) :: !acc) t;
  List.sort compare !acc

let agrees (cap, ops) =
  let t = Lru.create ~capacity:cap () in
  let m = Model.create cap in
  List.for_all
    (fun op ->
      let step_ok =
        match op with
        | Put (k, v) ->
          Lru.put t k v;
          Model.put m k v;
          true
        | Find k -> Lru.find t k = Model.find m k
        | Mem k -> Lru.mem t k = Model.mem m k
        | Remove k ->
          Lru.remove t k;
          Model.remove m k;
          true
        | Clear ->
          Lru.clear t;
          Model.clear m;
          true
      in
      step_ok
      && Lru.length t = Model.length m
      && Lru.length t <= cap
      && lru_contents t = Model.sorted m)
    ops

let model_agreement =
  QCheck.Test.make ~name:"random ops match assoc-list model" ~count:500
    scenario agrees

(* Recency is only observable through which binding an over-capacity put
   evicts; drive it explicitly so a put/find that fails to move its key
   to the front cannot hide behind content equality. *)
let eviction_order =
  QCheck.Test.make ~name:"eviction follows recency, not insertion" ~count:300
    QCheck.(
      make
        ~print:(fun l -> String.concat ";" (List.map string_of_int l))
        Gen.(list_size (int_bound 40) (int_bound 6)))
    (fun touches ->
      let cap = 4 in
      let t = Lru.create ~capacity:cap () in
      let m = Model.create cap in
      List.iteri
        (fun i k ->
          (* Alternate touching (find) and inserting fresh keys. *)
          if i mod 3 = 2 then begin
            let fresh = 100 + i in
            Lru.put t fresh i;
            Model.put m fresh i
          end
          else begin
            ignore (Lru.find t k);
            ignore (Model.find m k);
            Lru.put t k i;
            Model.put m k i
          end)
        touches;
      lru_contents t = Model.sorted m)

let invalid_capacity () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0 () : (int, int) Lru.t))

let () =
  Alcotest.run "hyper_lru"
    [
      ( "model",
        [
          qtest model_agreement;
          qtest eviction_order;
          Alcotest.test_case "invalid capacity" `Quick invalid_capacity;
        ] );
    ]

(** One rule violation, located in a source file.

    Findings are what {!Rules.check_structure} produces and what
    {!Driver.scan} aggregates, sorts and prints.  The [file] is the
    compilation unit's source path as the compiler recorded it
    (relative to the build context root, e.g. ["lib/txn/workspace.ml"]);
    [line]/[col] are 1-based / 0-based as in compiler diagnostics. *)

type t = {
  rule : string;  (** rule id, e.g. ["vfs-boundary"] *)
  file : string;
  line : int;
  col : int;
  message : string;  (** what is wrong at this site *)
  hint : string;  (** how to fix (or legitimately suppress) it *)
}

val compare : t -> t -> int
(** Order by file, then line, column and rule — the report order. *)

val to_string : t -> string
(** ["file:line:col: [rule] message"] — no hint. *)

val to_string_hinted : t -> string
(** Same, plus an indented ["hint: ..."] second line. *)

(** Checked-in suppression list.

    One entry per line: a rule id, whitespace, and a path substring the
    finding's file must contain.  Blank lines and [#] comments are
    ignored.  The file is the coarse companion to the fine-grained
    [\[@lint.allow "rule-id"\]] source attribute — use it for whole-file
    or whole-directory waivers that would be noisy as attributes. *)

type entry = { rule : string; path_fragment : string }

val load : string -> entry list
(** @raise Sys_error if the file cannot be read. *)

val allows : entry list -> Finding.t -> bool
(** Whether some entry matches the finding's rule and file. *)

val stale : entry list -> sources:string list -> known_rules:string list -> entry list
(** Entries whose rule id is unknown or whose path fragment matches
    none of [sources] (the scanned units) — waivers that can no longer
    suppress anything and should be deleted rather than silently
    ignored. *)

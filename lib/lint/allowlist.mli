(** Checked-in suppression list.

    One entry per line: a rule id, whitespace, and a path substring the
    finding's file must contain.  Blank lines and [#] comments are
    ignored.  The file is the coarse companion to the fine-grained
    [\[@lint.allow "rule-id"\]] source attribute — use it for whole-file
    or whole-directory waivers that would be noisy as attributes. *)

type entry = { rule : string; path_fragment : string }

val load : string -> entry list
(** @raise Sys_error if the file cannot be read. *)

val allows : entry list -> Finding.t -> bool
(** Whether some entry matches the finding's rule and file. *)

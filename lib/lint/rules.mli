(** The repo-specific invariant rules, run over one compilation unit's
    typedtree (from a [.cmt] file produced by [dune build \@check]).

    Rules:
    - [vfs-boundary] — direct [Unix]/[ExtUnix] file I/O outside
      [lib/storage/vfs.ml] and [lib/storage/extUnix.ml].  All storage
      bytes must flow through [Vfs.t] so fault injection sees them.
    - [no-catchall-swallow] — an unguarded [with _ ->] / [with e ->]
      handler (or [match ... with exception _ ->]) whose body never
      re-raises.  Such handlers can swallow [Storage_error.Error] and,
      worse, [Vfs.Crash] — silently disarming the crash fuzzer.
      Guarded catch-alls ([| e when pred e -> ...]) are considered
      deliberate and accepted.
    - [pin-balance] — a [Buffer_pool.pin] call in a binding that
      contains no [unpin] (the balanced idiom pairs them through
      [Fun.protect ~finally] or uses [with_page]/[with_pages]).
    - [no-poly-compare-on-oid] — polymorphic [=], [<>], [compare] or
      [Hashtbl.hash] instantiated at [Oid.t]; use [Oid.equal] /
      [Oid.compare] so the code survives [Oid.t] gaining structure.
    - [deterministic-iteration] — [Hashtbl.fold] producing a list with
      no sort in the surrounding application chain, or [Hashtbl.iter]
      accumulating into a list ref; hash iteration order is not part of
      any contract and already caused a real cross-backend ordering
      divergence (see DESIGN.md §11).  Scoped to [lib/reldb], [lib/txn]
      and [lib/check] unless [scope_all] is set.
    - [no-page-copy] — [Bytes.copy]/[Bytes.sub] applied to a page
      buffer (an argument named [page] or [*_page]) outside
      [lib/storage]: the zero-copy read path (see DESIGN.md §15) exists
      so record consumers decode in place; copying the page reintroduces
      the allocation it removed.
    - [lock-order] — a [Hyper_util.Sync.Mutex] acquisition (direct, via
      [with_lock], or through a one-level callee summary) while a lock
      of higher or equal declared rank is lexically held.  Ranks come
      from the [~rank] literal at each [Sync.Mutex.create] site
      (harvested by {!prepass}); unranked locks are exempt.
    - [no-blocking-under-mutex] — a blocking call ([Unix] socket/file
      I/O, [Unix.sleepf], [Thread.delay]/[join], [Wal.sync]) lexically
      inside a Sync critical section, directly or via a summarized
      callee.  Waiving this rule requires a reason:
      [\[@lint.allow "no-blocking-under-mutex: <why it is safe>"\]] —
      a bare rule id does not suppress it.
    - [sync-wrapper-only] — raw [Mutex.create]/[Condition.create]
      outside [lib/util]; all synchronisation must go through
      [Hyper_util.Sync] so lockdep and the metrics hook see it.

    Suppression: a [\[@lint.allow "rule-id"\]] attribute on the
    expression, on the enclosing [let] binding, or floating
    ([\[@@@lint.allow "rule-id"\]]) for the rest of the file.  Any rule
    also accepts the reasoned payload ["rule-id: reason"];
    [no-blocking-under-mutex] accepts {e only} that form. *)

type result = {
  findings : Finding.t list;  (** violations, in traversal order *)
  suppressed : Finding.t list;
      (** would-be violations silenced by a [\[@lint.allow\]] attribute *)
}

val all : (string * string) list
(** [(rule_id, one-line description)] for every rule, in V1..V11 order. *)

type pre
(** Whole-project facts the concurrency rules need: the declared
    lock-rank table and one-level function summaries. *)

val prepass : (string * Typedtree.structure) list -> pre
(** [prepass units] over every [(source, structure)] about to be
    checked.  Without it (or outside its units) the concurrency rules
    simply see no lock classes and stay silent. *)

val check_structure :
  ?pre:pre -> scope_all:bool -> source:string -> Typedtree.structure -> result

(** Whole-project lint driver.

    Walks directories for [.cmt] files (as produced by
    [dune build \@check]), runs {!Rules.check_structure} over every
    implementation whose recorded source path matches an [only] prefix,
    and aggregates the findings.  Interfaces, packed modules and
    generated sources (no [.ml] suffix) are skipped, as is a second
    [.cmt] for an already-seen source. *)

type report = {
  findings : Finding.t list;  (** sorted; what the build should fail on *)
  allowed : Finding.t list;  (** waived by the allowlist file *)
  attr_suppressed : Finding.t list;  (** waived by [\[@lint.allow\]] *)
  units : int;  (** compilation units linted *)
  sources : string list;
      (** source path of every linted unit, in scan order — the
          universe [hyperlint --check-allowlist] validates waivers
          against *)
}

val default_only : string list
(** [["lib/"; "bin/"]] — the layers whose invariants the rules guard. *)

val scan :
  ?only:string list ->
  ?allowlist_file:string ->
  ?scope_all:bool ->
  string list ->
  report
(** [scan roots] — each root is a directory to walk (or a single [.cmt]
    file).  [scope_all] lifts the per-rule directory scoping (used by
    the fixture tests).
    @raise Sys_error if the allowlist file cannot be read. *)

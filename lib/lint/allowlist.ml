type entry = { rule : string; path_fragment : string }

let is_space c = c = ' ' || c = '\t'

(* First whitespace-separated token and the rest (trimmed). *)
let split_token line =
  let n = String.length line in
  let rec skip i = if i < n && is_space line.[i] then skip (i + 1) else i in
  let rec tok i = if i < n && not (is_space line.[i]) then tok (i + 1) else i in
  let s = skip 0 in
  let e = tok s in
  (String.sub line s (e - s), String.trim (String.sub line e (n - e)))

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_token line with
  | "", _ -> None
  | rule, rest -> (
      (* The path fragment is the second token; trailing words after it
         are treated as an inline comment. *)
      match split_token rest with
      | "", _ -> None
      | frag, _ -> Some { rule; path_fragment = frag })

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] in
      (try
         while true do
           match parse_line (input_line ic) with
           | Some e -> entries := e :: !entries
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !entries)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i =
      if i + nn > nh then false
      else String.sub hay i nn = needle || at (i + 1)
    in
    at 0

let allows entries (f : Finding.t) =
  List.exists
    (fun e -> e.rule = f.rule && contains ~needle:e.path_fragment f.file)
    entries

(* A waiver earns its keep only while both halves still exist: a rule
   id the linter knows and a path fragment some scanned source still
   matches.  Anything else is a stale entry silently suppressing
   nothing — report it so the file stays an honest inventory. *)
let stale entries ~sources ~known_rules =
  List.filter
    (fun e ->
      (not (List.mem e.rule known_rules))
      || not
           (List.exists (fun src -> contains ~needle:e.path_fragment src)
              sources))
    entries

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let to_string_hinted f = to_string f ^ "\n  hint: " ^ f.hint

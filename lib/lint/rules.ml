(* Typedtree-level checks.  Each rule is a structural (and, for V4, a
   type-level) pattern over the tree the compiler already elaborated, so
   module aliases, [open]s and type abbreviations are resolved for us.
   The checks deliberately approximate in the direction of precision:
   a site that trips a rule legitimately carries a
   [@lint.allow "rule-id"] attribute or an allowlist entry, and the
   remaining blind spots (e.g. a polymorphic compare whose type the
   inferencer already expanded to [int]) are accepted rather than
   guessed at. *)

open Typedtree

let v1 = "vfs-boundary"
let v2 = "no-catchall-swallow"
let v3 = "pin-balance"
let v4 = "no-poly-compare-on-oid"
let v5 = "deterministic-iteration"
let v6 = "monotonic-time"
let v7 = "epoch-check"
let v8 = "no-page-copy"
let v9 = "lock-order"
let v10 = "no-blocking-under-mutex"
let v11 = "sync-wrapper-only"

let all =
  [
    (v1, "direct Unix/ExtUnix file I/O outside lib/storage/{vfs,extUnix}.ml");
    (v2, "catch-all exception handler that never re-raises");
    (v3, "Buffer_pool.pin without an unpin in the enclosing binding");
    (v4, "polymorphic =/<>/compare/Hashtbl.hash instantiated at Oid.t");
    (v5, "Hashtbl iteration order flowing into an unsorted list result");
    (v6, "Unix.gettimeofday (wall clock) outside lib/util");
    (v7, "replication frame pattern that wildcards the frame or its epoch");
    (v8, "Bytes.copy/Bytes.sub of a page buffer outside lib/storage");
    (v9, "Sync.Mutex acquisition against the declared rank order");
    (v10, "blocking call lexically inside a Sync.Mutex critical section");
    (v11, "raw Mutex.create/Condition.create outside lib/util");
  ]

type result = { findings : Finding.t list; suppressed : Finding.t list }

(* {2 Small helpers over compiler-libs data} *)

(* "Hyper_storage__Buffer_pool" is the mangled unit name of the wrapped
   module "Buffer_pool"; accept both spellings everywhere. *)
let part_matches m part =
  part = m || String.ends_with ~suffix:("__" ^ m) part

let path_parts p = String.split_on_char '.' (Path.name p)

let ident_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* Head of an application chain: [head_of (f a b)] is [f]. *)
let rec head_of e =
  match e.exp_desc with Texp_apply (f, _) -> head_of f | _ -> e

let head_constr_parts ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (path_parts p)
  | _ -> None

let arrow_first ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let is_oid_type ty =
  match head_constr_parts ty with
  | Some parts -> (
      match List.rev parts with
      | "t" :: owner :: _ -> part_matches "Oid" owner
      | _ -> false)
  | None -> false

let is_list_type ty =
  match head_constr_parts ty with
  | Some [ "list" ] -> true
  | Some _ | None -> false

(* A replication frame: any type [t] owned by a module whose name (or
   wrapped-unit suffix) is [Frame]. *)
let is_frame_type ty =
  match head_constr_parts ty with
  | Some parts -> (
      match List.rev parts with
      | "t" :: owner :: _ -> part_matches "Frame" owner
      | _ -> false)
  | None -> false

(* {2 [@lint.allow] attributes} *)

let allow_strings (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | Parsetree.PStr
            [ { pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] -> (
            let string_const (e : Parsetree.expression) =
              match e.pexp_desc with
              | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) ->
                  Some s
              | _ -> None
            in
            match e.pexp_desc with
            | Parsetree.Pexp_tuple es -> List.filter_map string_const es
            | _ -> Option.to_list (string_const e))
        | _ -> [])
    attrs

(* An allow payload is either a bare rule id or ["rule-id: reason"].
   [no-blocking-under-mutex] demands the reasoned form: every waived
   blocking call must say *why* it is safe, right in the payload. *)
let allow_covers ~rule s =
  if String.equal s rule then not (String.equal rule v10)
  else
    match String.index_opt s ':' with
    | Some i ->
        String.equal (String.trim (String.sub s 0 i)) rule
        && String.trim (String.sub s (i + 1) (String.length s - i - 1)) <> ""
    | None -> false

(* {2 Sub-tree scans} *)

exception Found

let expr_exists pred e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          if pred e then raise Found;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  match it.expr it e with () -> false | exception Found -> true

let mentions_unpin =
  expr_exists (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> Path.last p = "unpin"
      | _ -> false)

(* Any use of [raise]/[raise_notrace] counts as a re-raise; a handler
   that raises a *different* exception still discards the original, but
   distinguishing that would need value tracking — the rule stays
   syntactic. *)
let has_raise =
  expr_exists (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) ->
          let n = Path.last p in
          n = "raise" || n = "raise_notrace" || n = "reraise"
      | _ -> false)

(* [r := x :: !r] anywhere below [e] — the list-accumulating iteration
   callback shape. *)
let accumulates_cons =
  expr_exists (fun e ->
      match e.exp_desc with
      | Texp_apply (f, [ (_, Some _); (_, Some rhs) ]) -> (
          match f.exp_desc with
          | Texp_ident (p, _, _) when Path.last p = ":=" -> (
              match rhs.exp_desc with
              | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "::"
              | _ -> false)
          | _ -> false)
      | _ -> false)

(* A value pattern that matches every exception. *)
let rec catch_all_pat (p : pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | Tpat_or (a, b, _) -> catch_all_pat a || catch_all_pat b
  | _ -> false

let sortish e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match Path.last p with
      | "sort" | "sort_uniq" | "stable_sort" | "fast_sort" -> true
      | _ -> false)
  | _ -> false

(* An application is a "sorting context" when its head or one of its
   arguments is a sort: covers both [List.sort cmp (fold ...)] and
   [fold ... |> List.sort_uniq cmp]. *)
let is_sort_context fn args =
  sortish (head_of fn)
  || List.exists
       (fun (_, a) ->
         match a with Some ae -> sortish (head_of ae) | None -> false)
       args

(* {2 The pass} *)

let unix_io_names =
  [
    "read"; "write"; "single_write"; "write_substring"; "openfile";
    "ftruncate"; "fsync"; "fdatasync"; "lseek";
  ]

let ext_unix_io_names = [ "pread"; "pwrite" ]

let source_under prefix source =
  String.length source >= String.length prefix
  && String.sub source 0 (String.length prefix) = prefix

let v5_in_scope source =
  source_under "lib/reldb" source
  || source_under "lib/txn" source
  || source_under "lib/check" source

(* {2 Concurrency prepass (V9/V10)}

   A whole-project phase run before the per-unit pass.  It harvests:

   - the declared lock-rank table, from every
     [Sync.Mutex.create ?rank "name"] site whose arguments are
     literals; the lock's {e binder} (the let-bound variable or record
     field label it is stored in) is remembered per source file, so a
     later [Sync.Mutex.lock t.m] can be resolved back to its class;
   - one-level function summaries — for every [let f ... = body] in a
     scanned unit, the lock classes [body] acquires directly and the
     blocking calls it makes directly.  Callers check a callee's
     summary against their own held set; the summaries are not closed
     transitively (one level, as advertised). *)

type summary = {
  mutable s_acquires : (string * int option) list;  (* class, rank *)
  mutable s_blocks : string list;  (* display names of blocking calls *)
}

type pre = {
  ranks : (string, int option) Hashtbl.t;  (* lock class -> rank *)
  binds : (string * string, string) Hashtbl.t;
      (* (source basename, binder name) -> lock class *)
  summaries : (string * string, summary) Hashtbl.t;
      (* (module name, function name) -> summary *)
}

let empty_pre () =
  { ranks = Hashtbl.create 16; binds = Hashtbl.create 16;
    summaries = Hashtbl.create 64 }

(* Strip the wrapped-unit prefix: "Hyper_storage__Group_commit" ->
   "Group_commit". *)
let norm_mod m =
  let n = String.length m in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if m.[i] = '_' && m.[i + 1] = '_' then last_sep (i + 1) (Some (i + 1))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i -> String.sub m (i + 1) (n - i - 1)
  | None -> m

let unit_module source =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename source))

(* [Sync.Mutex.create]: the wrapper's own create, as opposed to a raw
   [Stdlib.Mutex.create] (V11 flags the latter). *)
let is_sync_create p =
  match List.rev (path_parts p) with
  | "create" :: owner :: rest ->
      part_matches "Mutex" owner && List.exists (part_matches "Sync") rest
  | _ -> false

let is_sync_op op p =
  match List.rev (path_parts p) with
  | name :: owner :: rest ->
      String.equal name op && part_matches "Mutex" owner
      && List.exists (part_matches "Sync") rest
  | _ -> false

let string_lit e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
  | _ -> None

let int_lit e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_int n) -> Some n
  | _ -> None

(* [~rank:30] reaches the typedtree wrapped in the [Some] the compiler
   inserts for a supplied optional argument. *)
let rank_lit e =
  match e.exp_desc with
  | Texp_construct (_, { Types.cstr_name = "Some"; _ }, [ arg ]) -> int_lit arg
  | _ -> int_lit e

(* If [e] is [Sync.Mutex.create ?rank "name"] with literal arguments,
   its (class, rank). *)
let create_class e =
  match e.exp_desc with
  | Texp_apply (fn, args) -> (
      match ident_path fn with
      | Some p when is_sync_create p ->
          let name =
            List.find_map
              (fun (lbl, a) ->
                match (lbl, a) with
                | Asttypes.Nolabel, Some ae -> string_lit ae
                | _ -> None)
              args
          in
          let rank =
            List.find_map
              (fun (lbl, a) ->
                match (lbl, a) with
                | (Asttypes.Labelled "rank" | Asttypes.Optional "rank"), Some ae
                  ->
                    rank_lit ae
                | _ -> None)
              args
          in
          Option.map (fun n -> (n, rank)) name
      | _ -> None)
  | _ -> None

(* Resolve a lock expression ([t.m], [db_mutex]) to its class via the
   binder table of the current source file. *)
let lock_class pre ~base arg =
  let key n = Hashtbl.find_opt pre.binds (base, n) in
  match arg.exp_desc with
  | Texp_ident (p, _, _) -> key (Path.last p)
  | Texp_field (_, _, lbl) -> key lbl.Types.lbl_name
  | _ -> None

(* Calls that park the thread (or the disk) while made: taking any of
   these with a Sync lock held starves every peer of that lock.
   [Sync.Condition.wait] is exempt — it releases the mutex. *)
let blocking_call p =
  match List.rev (path_parts p) with
  | name :: owner :: _ ->
      let unixish =
        part_matches "Unix" owner || part_matches "UnixLabels" owner
      in
      let is n = String.equal name n in
      if
        unixish
        && (is "read" || is "write" || is "single_write"
           || is "write_substring" || is "select" || is "sleep" || is "sleepf"
           || is "connect" || is "accept" || is "close" || is "fsync"
           || is "fdatasync")
        || (part_matches "Thread" owner && (is "delay" || is "join"))
        || (part_matches "Wal" owner && (is "sync" || is "sync_file"))
      then Some (Path.name p)
      else None
  | _ -> None

let prepass units =
  let pre = empty_pre () in
  (* Phase a: lock classes and their binders. *)
  let harvest_create ~base name e =
    match create_class e with
    | Some (cls, rank) ->
        if not (Hashtbl.mem pre.ranks cls) then Hashtbl.add pre.ranks cls rank;
        if name <> "" && not (Hashtbl.mem pre.binds (base, name)) then
          Hashtbl.add pre.binds (base, name) cls
    | None -> ()
  in
  List.iter
    (fun (source, str) ->
      let base = Filename.basename source in
      let it =
        {
          Tast_iterator.default_iterator with
          expr =
            (fun sub e ->
              (match e.exp_desc with
              | Texp_record { fields; _ } ->
                  Array.iter
                    (fun (lbl, def) ->
                      match def with
                      | Overridden (_, fe) ->
                          harvest_create ~base lbl.Types.lbl_name fe
                      | Kept _ -> ())
                    fields
              | _ -> ());
              Tast_iterator.default_iterator.expr sub e);
          value_binding =
            (fun sub vb ->
              (match pat_bound_idents vb.vb_pat with
              | [ id ] -> harvest_create ~base (Ident.name id) vb.vb_expr
              | _ -> ());
              Tast_iterator.default_iterator.value_binding sub vb);
        }
      in
      it.structure it str)
    units;
  (* Phase b: one-level summaries of every bound function. *)
  List.iter
    (fun (source, str) ->
      let base = Filename.basename source in
      let m = unit_module source in
      let summarize name body =
        let s =
          match Hashtbl.find_opt pre.summaries (m, name) with
          | Some s -> s
          | None ->
              let s = { s_acquires = []; s_blocks = [] } in
              Hashtbl.add pre.summaries (m, name) s;
              s
        in
        let note_acquire cls =
          if not (List.mem_assoc cls s.s_acquires) then
            s.s_acquires <-
              (cls, Option.join (Hashtbl.find_opt pre.ranks cls))
              :: s.s_acquires
        in
        let it =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun sub e ->
                (match e.exp_desc with
                | Texp_apply (fn, (_, Some arg) :: _) -> (
                    match ident_path fn with
                    | Some p
                      when is_sync_op "lock" p || is_sync_op "try_lock" p
                           || is_sync_op "with_lock" p -> (
                        match lock_class pre ~base arg with
                        | Some cls -> note_acquire cls
                        | None -> ())
                    | _ -> ())
                | Texp_ident (p, _, _) -> (
                    match blocking_call p with
                    | Some d ->
                        if not (List.mem d s.s_blocks) then
                          s.s_blocks <- d :: s.s_blocks
                    | None -> ())
                | _ -> ());
                Tast_iterator.default_iterator.expr sub e);
          }
        in
        it.expr it body
      in
      let it =
        {
          Tast_iterator.default_iterator with
          value_binding =
            (fun sub vb ->
              (match (pat_bound_idents vb.vb_pat, vb.vb_expr.exp_desc) with
              | [ id ], Texp_function _ -> summarize (Ident.name id) vb.vb_expr
              | _ -> ());
              Tast_iterator.default_iterator.value_binding sub vb);
        }
      in
      it.structure it str)
    units;
  pre

type ctx = {
  source : string;
  base : string;  (* Filename.basename source *)
  unit_mod : string;  (* module name of this unit, for summary lookups *)
  pre : pre;
  scope_all : bool;
  mutable active_allows : string list;  (* stack-scoped [@lint.allow] ids *)
  mutable sort_depth : int;  (* > 0 inside a sorting application *)
  mutable bindings : (string * bool) list;  (* (name, mentions unpin) *)
  mutable held : (string * int option) list;  (* lexically held Sync locks *)
  mutable findings : Finding.t list;
  mutable suppressed : Finding.t list;
}

let check_structure ?pre ~scope_all ~source (str : structure) =
  let ctx =
    {
      source;
      base = Filename.basename source;
      unit_mod = unit_module source;
      pre = (match pre with Some p -> p | None -> empty_pre ());
      scope_all;
      active_allows = [];
      sort_depth = 0;
      bindings = [];
      held = [];
      findings = [];
      suppressed = [];
    }
  in
  let flag ?(extra_allows = []) rule (loc : Location.t) message hint =
    let pos = loc.loc_start in
    let f =
      {
        Finding.rule;
        file = ctx.source;
        line = pos.pos_lnum;
        col = pos.pos_cnum - pos.pos_bol;
        message;
        hint;
      }
    in
    if List.exists (allow_covers ~rule) (extra_allows @ ctx.active_allows)
    then ctx.suppressed <- f :: ctx.suppressed
    else ctx.findings <- f :: ctx.findings
  in
  let check_ident e p =
    let parts = path_parts p in
    let rev = List.rev parts in
    (match rev with
    | name :: owner ->
        (* V1: the Vfs seam.  [lib/storage/vfs.ml] and its pread/pwrite
           shim are the only files allowed to touch the OS directly. *)
        let v1_hit =
          (List.mem name unix_io_names
          && List.exists (fun m -> part_matches "Unix" m || part_matches "UnixLabels" m) owner)
          || (List.mem name ext_unix_io_names
             && List.exists (part_matches "ExtUnix") owner)
        in
        if v1_hit && ctx.base <> "vfs.ml" && ctx.base <> "extUnix.ml" then
          flag v1 e.exp_loc
            (Printf.sprintf "direct I/O call `%s` bypasses the Vfs seam"
               (Path.name p))
            "route the operation through a Vfs.t (lib/storage/vfs.ml); \
             only vfs.ml/extUnix.ml may call Unix I/O directly";
        (* V6: the wall clock.  Unix.gettimeofday moves with NTP steps,
           so any timing or deadline derived from it can go negative or
           wildly wrong mid-run; lib/util owns the monotonic source
           (Mtime_stub, with gettimeofday only as a clamped fallback). *)
        if
          name = "gettimeofday"
          && List.exists
               (fun m ->
                 part_matches "Unix" m || part_matches "UnixLabels" m)
               owner
          && not (source_under "lib/util" ctx.source)
        then
          flag v6 e.exp_loc
            "Unix.gettimeofday is wall-clock time; NTP steps make \
             derived timings and deadlines wrong"
            "use Hyper_util.Mtime_stub.now_ns (or Vclock) for durations \
             and deadlines; only lib/util may read the wall clock"
    | [] -> ());
    (* V11: the Sync wrapper is the only mutex/condition source.  Raw
       primitives dodge the lockdep detector and the lint rules alike;
       [lib/util] (the wrapper's home) is the one place allowed. *)
    (match rev with
    | "create" :: owner :: rest
      when (part_matches "Mutex" owner || part_matches "Condition" owner)
           && not (List.exists (part_matches "Sync") rest)
           && not (source_under "lib/util" ctx.source) ->
        flag v11 e.exp_loc
          (Printf.sprintf
             "raw `%s` bypasses Hyper_util.Sync (no lockdep, no metrics, \
              no rank)"
             (Path.name p))
          "create the lock with Hyper_util.Sync.Mutex.create ?rank \
           \"area.module.role\" (Condition via Sync.Condition.create)"
    | _ -> ());
    (* V10: blocking calls lexically inside a critical section. *)
    (match blocking_call p with
    | Some display when ctx.held <> [] ->
        flag v10 e.exp_loc
          (Printf.sprintf "blocking call `%s` while holding %s" display
             (String.concat ", "
                (List.map (fun (c, _) -> Printf.sprintf "%S" c) ctx.held)))
          "move the call outside the critical section (snapshot under the \
           lock, act after unlock), or waive with \
           [@lint.allow \"no-blocking-under-mutex: <why it is safe>\"]"
    | _ -> ());
    (* V3: pin balance. *)
    (match rev with
    | "pin" :: owner
      when List.exists (part_matches "Buffer_pool") owner
           || ctx.base = "buffer_pool.ml" ->
        let enclosing_unpins = List.exists snd ctx.bindings in
        let defining_pin =
          match ctx.bindings with ("pin", _) :: _ -> true | _ -> false
        in
        if not (enclosing_unpins || defining_pin) then
          flag v3 e.exp_loc
            "Buffer_pool.pin with no unpin in the enclosing binding"
            "pair pin with unpin in a Fun.protect ~finally, or use \
             with_page/with_pages"
    | _ -> ());
    (* V4: polymorphic structural ops at Oid.t.  The ident's type is the
       instantiation, so both applied ([a = b]) and first-class uses
       ([List.sort compare oids]) are caught. *)
    let poly_op =
      match parts with
      | [ "Stdlib"; ("=" | "<>" | "compare") ] -> Some (List.nth parts 1)
      | _ -> (
          match rev with
          | "hash" :: owner :: _ when part_matches "Hashtbl" owner ->
              Some "Hashtbl.hash"
          | _ -> None)
    in
    match poly_op with
    | Some op -> (
        match arrow_first e.exp_type with
        | Some a when is_oid_type a ->
            flag v4 e.exp_loc
              (Printf.sprintf "polymorphic `%s` instantiated at Oid.t" op)
              "use Oid.equal / Oid.compare (or a keyed hash) so the code \
               survives Oid.t gaining structure"
        | _ -> ())
    | None -> ()
  in
  let check_catch_all_case ~what (guard : expression option)
      (pat_loc : Location.t) (rhs : expression) =
    if Option.is_none guard && not (has_raise rhs) then
      flag v2 ~extra_allows:(allow_strings rhs.exp_attributes) pat_loc
        (what
       ^ " can swallow Storage_error.Error and Vfs.Crash crash points")
        "match explicit exception constructors, add a `when` guard that \
         re-raises crash faults, or re-raise"
  in
  (* V8: page-buffer copies above the storage layer.  The zero-copy read
     path (Pager.read_view → Buffer_pool → Slotted.view → Heap.read_with)
     exists so consumers decode records in place; a [Bytes.copy page] or
     [Bytes.sub page ...] outside lib/storage reintroduces the per-read
     allocation the path was built to remove.  "Page buffer" is
     approximated by the argument's name — [page] or [*_page], the
     binder every pinned-frame callback in this codebase uses. *)
  let is_page_name n = n = "page" || String.ends_with ~suffix:"_page" n in
  let check_page_copy e =
    if not (source_under "lib/storage" ctx.source) then
      match e.exp_desc with
      | Texp_apply (fn, (_, Some arg) :: _) -> (
          match ident_path fn with
          | Some p -> (
              match List.rev (path_parts p) with
              | (("copy" | "sub") as op) :: owner :: _
                when part_matches "Bytes" owner -> (
                  match arg.exp_desc with
                  | Texp_ident (ap, _, _) when is_page_name (Path.last ap) ->
                      flag v8 e.exp_loc
                        (Printf.sprintf
                           "Bytes.%s of page buffer `%s` copies what the \
                            zero-copy read path pins in place"
                           op (Path.last ap))
                        "decode in place via Slotted.view / Heap.read_with \
                         (Codec.decode_at takes ~off/~len); copy only what \
                         outlives the pin"
                  | _ -> ())
              | _ -> ())
          | None -> ())
      | _ -> ()
  in
  let check_expr e =
    (match ident_path e with
    | Some p -> check_ident e p
    | None -> ());
    check_page_copy e;
    match e.exp_desc with
    | Texp_try (_, cases) ->
        List.iter
          (fun c ->
            if catch_all_pat c.c_lhs then
              check_catch_all_case ~what:"catch-all `try ... with` handler"
                c.c_guard c.c_lhs.pat_loc c.c_rhs)
          cases
    | Texp_match (_, cases, _) ->
        List.iter
          (fun c ->
            match split_pattern c.c_lhs with
            | _, Some ep when catch_all_pat ep ->
                check_catch_all_case ~what:"catch-all `exception` case"
                  c.c_guard ep.pat_loc c.c_rhs
            | _ -> ())
          cases
    | Texp_apply (fn, args)
      when ctx.scope_all || v5_in_scope ctx.source -> (
        match ident_path fn with
        | Some p -> (
            match List.rev (path_parts p) with
            | "fold" :: owner :: _ when part_matches "Hashtbl" owner ->
                if is_list_type e.exp_type && ctx.sort_depth = 0 then
                  flag v5 e.exp_loc
                    "Hashtbl.fold builds a list in hash-iteration order \
                     with no sort in sight"
                    "sort the result with a keyed comparator (e.g. \
                     List.sort Int.compare), or iterate a sorted key list"
            | "iter" :: owner :: _ when part_matches "Hashtbl" owner ->
                if
                  List.exists
                    (fun (_, a) ->
                      match a with
                      | Some ae -> accumulates_cons ae
                      | None -> false)
                    args
                then
                  flag v5 e.exp_loc
                    "Hashtbl.iter accumulates a list in hash-iteration \
                     order"
                    "collect then sort with a keyed comparator, or \
                     iterate a sorted key list"
            | _ -> ())
        | None -> ())
    | _ -> ()
  in
  (* V7: epoch fencing.  Every protocol decision starts from the frame's
     epoch — a handler that matches a whole [Frame.t] with a wildcard,
     or wildcards/omits the [epoch] field of a frame constructor, will
     happily act on a stale-epoch frame from a deposed primary.  Named
     binders (including [_epoch]) pass: they keep the field visible at
     the match site. *)
  let v7_hint =
    "enumerate the frame constructors and bind their epoch field (a \
     named binder like _epoch is fine)"
  in
  let check_frame_pat (p : pattern) =
    match p.pat_desc with
    | Tpat_any when is_frame_type p.pat_type ->
        flag v7 ~extra_allows:(allow_strings p.pat_attributes) p.pat_loc
          "wildcard pattern at Frame.t matches frames of any epoch"
          v7_hint
    | Tpat_construct (_, cstr, args, _) when is_frame_type p.pat_type ->
        List.iter
          (fun (arg : pattern) ->
            let flag_arg msg =
              flag v7 ~extra_allows:(allow_strings arg.pat_attributes)
                arg.pat_loc msg v7_hint
            in
            match arg.pat_desc with
            | Tpat_record (fields, closed) ->
                let epoch_field =
                  List.find_opt
                    (fun (_, lbl, _) -> lbl.Types.lbl_name = "epoch")
                    fields
                in
                (match epoch_field with
                | Some (_, _, { pat_desc = Tpat_any; _ }) ->
                    flag_arg
                      (Printf.sprintf
                         "frame handler for `%s` wildcards the epoch field"
                         cstr.Types.cstr_name)
                | Some _ -> ()
                | None ->
                    if closed = Asttypes.Open then
                      flag_arg
                        (Printf.sprintf
                           "frame handler for `%s` never binds the epoch \
                            field"
                           cstr.Types.cstr_name))
            | Tpat_any when cstr.Types.cstr_inlined <> None ->
                flag_arg
                  (Printf.sprintf
                     "frame handler for `%s` wildcards the whole payload, \
                      epoch included"
                     cstr.Types.cstr_name)
            | _ -> ())
          args
    | _ -> ()
  in
  (* V9: the declared rank order — strictly increasing along the
     acquisition chain (same-class nesting skipped, like the runtime
     detector). *)
  let check_acquire ~via loc cls rank =
    match rank with
    | None -> ()
    | Some r ->
        List.iter
          (fun (hc, hr) ->
            match hr with
            | Some hr when hr >= r && not (String.equal hc cls) ->
                flag v9 loc
                  (Printf.sprintf
                     "%s acquires %S (rank %d) while %S (rank %d) is held; \
                      ranks must strictly increase"
                     via cls r hc hr)
                  "acquire locks in ascending declared rank (see DESIGN.md \
                   §17), or re-rank the hierarchy deliberately"
            | _ -> ())
          ctx.held
  in
  let summary_of p =
    match List.rev (path_parts p) with
    | [ fn ] -> Hashtbl.find_opt ctx.pre.summaries (ctx.unit_mod, fn)
    | fn :: owner :: _ -> Hashtbl.find_opt ctx.pre.summaries (norm_mod owner, fn)
    | [] -> None
  in
  (* Lock bookkeeping for one application node.  Returns the classes to
     treat as held while traversing the node's sub-expressions (the
     [with_lock]/summarized-callee bracket); [lock]/[unlock] mutate
     [ctx.held] persistently instead. *)
  let conc_apply e =
    match e.exp_desc with
    | Texp_apply (fn, ((_, Some arg0) :: _ as _args)) -> (
        match ident_path fn with
        | Some p when is_sync_op "lock" p || is_sync_op "try_lock" p -> (
            match lock_class ctx.pre ~base:ctx.base arg0 with
            | Some cls ->
                let rank = Option.join (Hashtbl.find_opt ctx.pre.ranks cls) in
                check_acquire ~via:"Sync.Mutex.lock" e.exp_loc cls rank;
                ctx.held <- (cls, rank) :: ctx.held;
                []
            | None -> [])
        | Some p when is_sync_op "unlock" p -> (
            match lock_class ctx.pre ~base:ctx.base arg0 with
            | Some cls ->
                let rec drop = function
                  | [] -> []
                  | (c, _) :: rest when String.equal c cls -> rest
                  | h :: rest -> h :: drop rest
                in
                ctx.held <- drop ctx.held;
                []
            | None -> [])
        | Some p when is_sync_op "with_lock" p -> (
            match lock_class ctx.pre ~base:ctx.base arg0 with
            | Some cls ->
                let rank = Option.join (Hashtbl.find_opt ctx.pre.ranks cls) in
                check_acquire ~via:"Sync.Mutex.with_lock" e.exp_loc cls rank;
                [ (cls, rank) ]
            | None -> [])
        | Some p -> (
            (* One-level inter-procedural step: the callee's summary. *)
            match summary_of p with
            | Some s ->
                List.iter
                  (fun (cls, rank) ->
                    check_acquire
                      ~via:(Printf.sprintf "`%s`" (Path.name p))
                      e.exp_loc cls rank)
                  s.s_acquires;
                if ctx.held <> [] && s.s_blocks <> [] then
                  flag v10 e.exp_loc
                    (Printf.sprintf
                       "`%s` blocks (%s) and is called while holding %s"
                       (Path.name p)
                       (String.concat ", " s.s_blocks)
                       (String.concat ", "
                          (List.map
                             (fun (c, _) -> Printf.sprintf "%S" c)
                             ctx.held)))
                    "restructure so the blocking callee runs outside the \
                     critical section, or waive with [@lint.allow \
                     \"no-blocking-under-mutex: <why it is safe>\"]";
                s.s_acquires
            | None -> [])
        | None -> [])
    | _ -> []
  in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match classify_pattern p with
    | Value -> check_frame_pat (p : value general_pattern)
    | Computation -> ());
    default.pat sub p
  in
  let expr sub e =
    let saved = ctx.active_allows in
    ctx.active_allows <- allow_strings e.exp_attributes @ ctx.active_allows;
    check_expr e;
    let bracket = conc_apply e in
    let held0 = ctx.held in
    ctx.held <- bracket @ ctx.held;
    (match e.exp_desc with
    | Texp_apply (fn, args) when is_sort_context fn args ->
        ctx.sort_depth <- ctx.sort_depth + 1;
        default.expr sub e;
        ctx.sort_depth <- ctx.sort_depth - 1
    | Texp_ifthenelse (c, t, eo) ->
        (* Each branch starts from the pre-branch held set, and nothing
           a branch locks or unlocks leaks past the conditional. *)
        sub.Tast_iterator.expr sub c;
        let h = ctx.held in
        sub.Tast_iterator.expr sub t;
        ctx.held <- h;
        (match eo with
        | Some el ->
            sub.Tast_iterator.expr sub el;
            ctx.held <- h
        | None -> ())
    | Texp_match (scrut, cases, _) ->
        sub.Tast_iterator.expr sub scrut;
        let h = ctx.held in
        List.iter
          (fun c ->
            sub.Tast_iterator.case sub c;
            ctx.held <- h)
          cases
    | Texp_try (body, cases) ->
        sub.Tast_iterator.expr sub body;
        let h = ctx.held in
        List.iter
          (fun c ->
            sub.Tast_iterator.case sub c;
            ctx.held <- h)
          cases
    | Texp_function _ ->
        (* A lambda inherits the lexically held set (the with_lock /
           Fun.protect idiom), but its own lock traffic must not leak
           into siblings evaluated elsewhere. *)
        let h = ctx.held in
        default.expr sub e;
        ctx.held <- h
    | _ -> default.expr sub e);
    (match bracket with [] -> () | _ -> ctx.held <- held0);
    ctx.active_allows <- saved
  in
  let value_binding sub vb =
    let saved_allows = ctx.active_allows in
    ctx.active_allows <- allow_strings vb.vb_attributes @ ctx.active_allows;
    let name =
      match pat_bound_idents vb.vb_pat with
      | [ id ] -> Ident.name id
      | _ -> ""
    in
    ctx.bindings <- (name, mentions_unpin vb.vb_expr) :: ctx.bindings;
    default.value_binding sub vb;
    ctx.bindings <- List.tl ctx.bindings;
    ctx.active_allows <- saved_allows
  in
  let structure sub s =
    (* Floating [@@@lint.allow "..."] applies to the rest of the
       enclosing structure (commonly: the rest of the file). *)
    let saved = ctx.active_allows in
    List.iter
      (fun item ->
        (match item.str_desc with
        | Tstr_attribute a -> ctx.active_allows <- allow_strings [ a ] @ ctx.active_allows
        | _ -> ());
        (* Lock tracking is per top-level definition. *)
        ctx.held <- [];
        sub.Tast_iterator.structure_item sub item)
      s.str_items;
    ctx.active_allows <- saved
  in
  let it = { default with expr; value_binding; structure; pat } in
  it.structure it str;
  { findings = List.rev ctx.findings; suppressed = List.rev ctx.suppressed }

(* Typedtree-level checks.  Each rule is a structural (and, for V4, a
   type-level) pattern over the tree the compiler already elaborated, so
   module aliases, [open]s and type abbreviations are resolved for us.
   The checks deliberately approximate in the direction of precision:
   a site that trips a rule legitimately carries a
   [@lint.allow "rule-id"] attribute or an allowlist entry, and the
   remaining blind spots (e.g. a polymorphic compare whose type the
   inferencer already expanded to [int]) are accepted rather than
   guessed at. *)

open Typedtree

let v1 = "vfs-boundary"
let v2 = "no-catchall-swallow"
let v3 = "pin-balance"
let v4 = "no-poly-compare-on-oid"
let v5 = "deterministic-iteration"
let v6 = "monotonic-time"
let v7 = "epoch-check"
let v8 = "no-page-copy"

let all =
  [
    (v1, "direct Unix/ExtUnix file I/O outside lib/storage/{vfs,extUnix}.ml");
    (v2, "catch-all exception handler that never re-raises");
    (v3, "Buffer_pool.pin without an unpin in the enclosing binding");
    (v4, "polymorphic =/<>/compare/Hashtbl.hash instantiated at Oid.t");
    (v5, "Hashtbl iteration order flowing into an unsorted list result");
    (v6, "Unix.gettimeofday (wall clock) outside lib/util");
    (v7, "replication frame pattern that wildcards the frame or its epoch");
    (v8, "Bytes.copy/Bytes.sub of a page buffer outside lib/storage");
  ]

type result = { findings : Finding.t list; suppressed : Finding.t list }

(* {2 Small helpers over compiler-libs data} *)

(* "Hyper_storage__Buffer_pool" is the mangled unit name of the wrapped
   module "Buffer_pool"; accept both spellings everywhere. *)
let part_matches m part =
  part = m || String.ends_with ~suffix:("__" ^ m) part

let path_parts p = String.split_on_char '.' (Path.name p)

let ident_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* Head of an application chain: [head_of (f a b)] is [f]. *)
let rec head_of e =
  match e.exp_desc with Texp_apply (f, _) -> head_of f | _ -> e

let head_constr_parts ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (path_parts p)
  | _ -> None

let arrow_first ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let is_oid_type ty =
  match head_constr_parts ty with
  | Some parts -> (
      match List.rev parts with
      | "t" :: owner :: _ -> part_matches "Oid" owner
      | _ -> false)
  | None -> false

let is_list_type ty =
  match head_constr_parts ty with
  | Some [ "list" ] -> true
  | Some _ | None -> false

(* A replication frame: any type [t] owned by a module whose name (or
   wrapped-unit suffix) is [Frame]. *)
let is_frame_type ty =
  match head_constr_parts ty with
  | Some parts -> (
      match List.rev parts with
      | "t" :: owner :: _ -> part_matches "Frame" owner
      | _ -> false)
  | None -> false

(* {2 [@lint.allow] attributes} *)

let allow_strings (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | Parsetree.PStr
            [ { pstr_desc = Parsetree.Pstr_eval (e, _); _ } ] -> (
            let string_const (e : Parsetree.expression) =
              match e.pexp_desc with
              | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) ->
                  Some s
              | _ -> None
            in
            match e.pexp_desc with
            | Parsetree.Pexp_tuple es -> List.filter_map string_const es
            | _ -> Option.to_list (string_const e))
        | _ -> [])
    attrs

(* {2 Sub-tree scans} *)

exception Found

let expr_exists pred e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          if pred e then raise Found;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  match it.expr it e with () -> false | exception Found -> true

let mentions_unpin =
  expr_exists (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> Path.last p = "unpin"
      | _ -> false)

(* Any use of [raise]/[raise_notrace] counts as a re-raise; a handler
   that raises a *different* exception still discards the original, but
   distinguishing that would need value tracking — the rule stays
   syntactic. *)
let has_raise =
  expr_exists (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) ->
          let n = Path.last p in
          n = "raise" || n = "raise_notrace" || n = "reraise"
      | _ -> false)

(* [r := x :: !r] anywhere below [e] — the list-accumulating iteration
   callback shape. *)
let accumulates_cons =
  expr_exists (fun e ->
      match e.exp_desc with
      | Texp_apply (f, [ (_, Some _); (_, Some rhs) ]) -> (
          match f.exp_desc with
          | Texp_ident (p, _, _) when Path.last p = ":=" -> (
              match rhs.exp_desc with
              | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "::"
              | _ -> false)
          | _ -> false)
      | _ -> false)

(* A value pattern that matches every exception. *)
let rec catch_all_pat (p : pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | Tpat_or (a, b, _) -> catch_all_pat a || catch_all_pat b
  | _ -> false

let sortish e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match Path.last p with
      | "sort" | "sort_uniq" | "stable_sort" | "fast_sort" -> true
      | _ -> false)
  | _ -> false

(* An application is a "sorting context" when its head or one of its
   arguments is a sort: covers both [List.sort cmp (fold ...)] and
   [fold ... |> List.sort_uniq cmp]. *)
let is_sort_context fn args =
  sortish (head_of fn)
  || List.exists
       (fun (_, a) ->
         match a with Some ae -> sortish (head_of ae) | None -> false)
       args

(* {2 The pass} *)

let unix_io_names =
  [
    "read"; "write"; "single_write"; "write_substring"; "openfile";
    "ftruncate"; "fsync"; "fdatasync"; "lseek";
  ]

let ext_unix_io_names = [ "pread"; "pwrite" ]

let source_under prefix source =
  String.length source >= String.length prefix
  && String.sub source 0 (String.length prefix) = prefix

let v5_in_scope source =
  source_under "lib/reldb" source
  || source_under "lib/txn" source
  || source_under "lib/check" source

type ctx = {
  source : string;
  base : string;  (* Filename.basename source *)
  scope_all : bool;
  mutable active_allows : string list;  (* stack-scoped [@lint.allow] ids *)
  mutable sort_depth : int;  (* > 0 inside a sorting application *)
  mutable bindings : (string * bool) list;  (* (name, mentions unpin) *)
  mutable findings : Finding.t list;
  mutable suppressed : Finding.t list;
}

let check_structure ~scope_all ~source (str : structure) =
  let ctx =
    {
      source;
      base = Filename.basename source;
      scope_all;
      active_allows = [];
      sort_depth = 0;
      bindings = [];
      findings = [];
      suppressed = [];
    }
  in
  let flag ?(extra_allows = []) rule (loc : Location.t) message hint =
    let pos = loc.loc_start in
    let f =
      {
        Finding.rule;
        file = ctx.source;
        line = pos.pos_lnum;
        col = pos.pos_cnum - pos.pos_bol;
        message;
        hint;
      }
    in
    if List.mem rule ctx.active_allows || List.mem rule extra_allows then
      ctx.suppressed <- f :: ctx.suppressed
    else ctx.findings <- f :: ctx.findings
  in
  let check_ident e p =
    let parts = path_parts p in
    let rev = List.rev parts in
    (match rev with
    | name :: owner ->
        (* V1: the Vfs seam.  [lib/storage/vfs.ml] and its pread/pwrite
           shim are the only files allowed to touch the OS directly. *)
        let v1_hit =
          (List.mem name unix_io_names
          && List.exists (fun m -> part_matches "Unix" m || part_matches "UnixLabels" m) owner)
          || (List.mem name ext_unix_io_names
             && List.exists (part_matches "ExtUnix") owner)
        in
        if v1_hit && ctx.base <> "vfs.ml" && ctx.base <> "extUnix.ml" then
          flag v1 e.exp_loc
            (Printf.sprintf "direct I/O call `%s` bypasses the Vfs seam"
               (Path.name p))
            "route the operation through a Vfs.t (lib/storage/vfs.ml); \
             only vfs.ml/extUnix.ml may call Unix I/O directly";
        (* V6: the wall clock.  Unix.gettimeofday moves with NTP steps,
           so any timing or deadline derived from it can go negative or
           wildly wrong mid-run; lib/util owns the monotonic source
           (Mtime_stub, with gettimeofday only as a clamped fallback). *)
        if
          name = "gettimeofday"
          && List.exists
               (fun m ->
                 part_matches "Unix" m || part_matches "UnixLabels" m)
               owner
          && not (source_under "lib/util" ctx.source)
        then
          flag v6 e.exp_loc
            "Unix.gettimeofday is wall-clock time; NTP steps make \
             derived timings and deadlines wrong"
            "use Hyper_util.Mtime_stub.now_ns (or Vclock) for durations \
             and deadlines; only lib/util may read the wall clock"
    | [] -> ());
    (* V3: pin balance. *)
    (match rev with
    | "pin" :: owner
      when List.exists (part_matches "Buffer_pool") owner
           || ctx.base = "buffer_pool.ml" ->
        let enclosing_unpins = List.exists snd ctx.bindings in
        let defining_pin =
          match ctx.bindings with ("pin", _) :: _ -> true | _ -> false
        in
        if not (enclosing_unpins || defining_pin) then
          flag v3 e.exp_loc
            "Buffer_pool.pin with no unpin in the enclosing binding"
            "pair pin with unpin in a Fun.protect ~finally, or use \
             with_page/with_pages"
    | _ -> ());
    (* V4: polymorphic structural ops at Oid.t.  The ident's type is the
       instantiation, so both applied ([a = b]) and first-class uses
       ([List.sort compare oids]) are caught. *)
    let poly_op =
      match parts with
      | [ "Stdlib"; ("=" | "<>" | "compare") ] -> Some (List.nth parts 1)
      | _ -> (
          match rev with
          | "hash" :: owner :: _ when part_matches "Hashtbl" owner ->
              Some "Hashtbl.hash"
          | _ -> None)
    in
    match poly_op with
    | Some op -> (
        match arrow_first e.exp_type with
        | Some a when is_oid_type a ->
            flag v4 e.exp_loc
              (Printf.sprintf "polymorphic `%s` instantiated at Oid.t" op)
              "use Oid.equal / Oid.compare (or a keyed hash) so the code \
               survives Oid.t gaining structure"
        | _ -> ())
    | None -> ()
  in
  let check_catch_all_case ~what (guard : expression option)
      (pat_loc : Location.t) (rhs : expression) =
    if Option.is_none guard && not (has_raise rhs) then
      flag v2 ~extra_allows:(allow_strings rhs.exp_attributes) pat_loc
        (what
       ^ " can swallow Storage_error.Error and Vfs.Crash crash points")
        "match explicit exception constructors, add a `when` guard that \
         re-raises crash faults, or re-raise"
  in
  (* V8: page-buffer copies above the storage layer.  The zero-copy read
     path (Pager.read_view → Buffer_pool → Slotted.view → Heap.read_with)
     exists so consumers decode records in place; a [Bytes.copy page] or
     [Bytes.sub page ...] outside lib/storage reintroduces the per-read
     allocation the path was built to remove.  "Page buffer" is
     approximated by the argument's name — [page] or [*_page], the
     binder every pinned-frame callback in this codebase uses. *)
  let is_page_name n = n = "page" || String.ends_with ~suffix:"_page" n in
  let check_page_copy e =
    if not (source_under "lib/storage" ctx.source) then
      match e.exp_desc with
      | Texp_apply (fn, (_, Some arg) :: _) -> (
          match ident_path fn with
          | Some p -> (
              match List.rev (path_parts p) with
              | (("copy" | "sub") as op) :: owner :: _
                when part_matches "Bytes" owner -> (
                  match arg.exp_desc with
                  | Texp_ident (ap, _, _) when is_page_name (Path.last ap) ->
                      flag v8 e.exp_loc
                        (Printf.sprintf
                           "Bytes.%s of page buffer `%s` copies what the \
                            zero-copy read path pins in place"
                           op (Path.last ap))
                        "decode in place via Slotted.view / Heap.read_with \
                         (Codec.decode_at takes ~off/~len); copy only what \
                         outlives the pin"
                  | _ -> ())
              | _ -> ())
          | None -> ())
      | _ -> ()
  in
  let check_expr e =
    (match ident_path e with
    | Some p -> check_ident e p
    | None -> ());
    check_page_copy e;
    match e.exp_desc with
    | Texp_try (_, cases) ->
        List.iter
          (fun c ->
            if catch_all_pat c.c_lhs then
              check_catch_all_case ~what:"catch-all `try ... with` handler"
                c.c_guard c.c_lhs.pat_loc c.c_rhs)
          cases
    | Texp_match (_, cases, _) ->
        List.iter
          (fun c ->
            match split_pattern c.c_lhs with
            | _, Some ep when catch_all_pat ep ->
                check_catch_all_case ~what:"catch-all `exception` case"
                  c.c_guard ep.pat_loc c.c_rhs
            | _ -> ())
          cases
    | Texp_apply (fn, args)
      when ctx.scope_all || v5_in_scope ctx.source -> (
        match ident_path fn with
        | Some p -> (
            match List.rev (path_parts p) with
            | "fold" :: owner :: _ when part_matches "Hashtbl" owner ->
                if is_list_type e.exp_type && ctx.sort_depth = 0 then
                  flag v5 e.exp_loc
                    "Hashtbl.fold builds a list in hash-iteration order \
                     with no sort in sight"
                    "sort the result with a keyed comparator (e.g. \
                     List.sort Int.compare), or iterate a sorted key list"
            | "iter" :: owner :: _ when part_matches "Hashtbl" owner ->
                if
                  List.exists
                    (fun (_, a) ->
                      match a with
                      | Some ae -> accumulates_cons ae
                      | None -> false)
                    args
                then
                  flag v5 e.exp_loc
                    "Hashtbl.iter accumulates a list in hash-iteration \
                     order"
                    "collect then sort with a keyed comparator, or \
                     iterate a sorted key list"
            | _ -> ())
        | None -> ())
    | _ -> ()
  in
  (* V7: epoch fencing.  Every protocol decision starts from the frame's
     epoch — a handler that matches a whole [Frame.t] with a wildcard,
     or wildcards/omits the [epoch] field of a frame constructor, will
     happily act on a stale-epoch frame from a deposed primary.  Named
     binders (including [_epoch]) pass: they keep the field visible at
     the match site. *)
  let v7_hint =
    "enumerate the frame constructors and bind their epoch field (a \
     named binder like _epoch is fine)"
  in
  let check_frame_pat (p : pattern) =
    match p.pat_desc with
    | Tpat_any when is_frame_type p.pat_type ->
        flag v7 ~extra_allows:(allow_strings p.pat_attributes) p.pat_loc
          "wildcard pattern at Frame.t matches frames of any epoch"
          v7_hint
    | Tpat_construct (_, cstr, args, _) when is_frame_type p.pat_type ->
        List.iter
          (fun (arg : pattern) ->
            let flag_arg msg =
              flag v7 ~extra_allows:(allow_strings arg.pat_attributes)
                arg.pat_loc msg v7_hint
            in
            match arg.pat_desc with
            | Tpat_record (fields, closed) ->
                let epoch_field =
                  List.find_opt
                    (fun (_, lbl, _) -> lbl.Types.lbl_name = "epoch")
                    fields
                in
                (match epoch_field with
                | Some (_, _, { pat_desc = Tpat_any; _ }) ->
                    flag_arg
                      (Printf.sprintf
                         "frame handler for `%s` wildcards the epoch field"
                         cstr.Types.cstr_name)
                | Some _ -> ()
                | None ->
                    if closed = Asttypes.Open then
                      flag_arg
                        (Printf.sprintf
                           "frame handler for `%s` never binds the epoch \
                            field"
                           cstr.Types.cstr_name))
            | Tpat_any when cstr.Types.cstr_inlined <> None ->
                flag_arg
                  (Printf.sprintf
                     "frame handler for `%s` wildcards the whole payload, \
                      epoch included"
                     cstr.Types.cstr_name)
            | _ -> ())
          args
    | _ -> ()
  in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match classify_pattern p with
    | Value -> check_frame_pat (p : value general_pattern)
    | Computation -> ());
    default.pat sub p
  in
  let expr sub e =
    let saved = ctx.active_allows in
    ctx.active_allows <- allow_strings e.exp_attributes @ ctx.active_allows;
    check_expr e;
    (match e.exp_desc with
    | Texp_apply (fn, args) when is_sort_context fn args ->
        ctx.sort_depth <- ctx.sort_depth + 1;
        default.expr sub e;
        ctx.sort_depth <- ctx.sort_depth - 1
    | _ -> default.expr sub e);
    ctx.active_allows <- saved
  in
  let value_binding sub vb =
    let saved_allows = ctx.active_allows in
    ctx.active_allows <- allow_strings vb.vb_attributes @ ctx.active_allows;
    let name =
      match pat_bound_idents vb.vb_pat with
      | [ id ] -> Ident.name id
      | _ -> ""
    in
    ctx.bindings <- (name, mentions_unpin vb.vb_expr) :: ctx.bindings;
    default.value_binding sub vb;
    ctx.bindings <- List.tl ctx.bindings;
    ctx.active_allows <- saved_allows
  in
  let structure sub s =
    (* Floating [@@@lint.allow "..."] applies to the rest of the
       enclosing structure (commonly: the rest of the file). *)
    let saved = ctx.active_allows in
    List.iter
      (fun item ->
        (match item.str_desc with
        | Tstr_attribute a -> ctx.active_allows <- allow_strings [ a ] @ ctx.active_allows
        | _ -> ());
        sub.Tast_iterator.structure_item sub item)
      s.str_items;
    ctx.active_allows <- saved
  in
  let it = { default with expr; value_binding; structure; pat } in
  it.structure it str;
  { findings = List.rev ctx.findings; suppressed = List.rev ctx.suppressed }

type report = {
  findings : Finding.t list;
  allowed : Finding.t list;
  attr_suppressed : Finding.t list;
  units : int;
  sources : string list;
}

let default_only = [ "lib/"; "bin/" ]

let rec collect_cmts acc path =
  match Sys.is_directory path with
  | true ->
      Array.fold_left
        (fun acc name -> collect_cmts acc (Filename.concat path name))
        acc (Sys.readdir path)
  | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc
  | exception Sys_error _ -> acc (* raced with a build, or dangling link *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let scan ?(only = default_only) ?allowlist_file ?(scope_all = false) roots =
  let allow_entries =
    match allowlist_file with None -> [] | Some f -> Allowlist.load f
  in
  (* Phase one: load every in-scope unit.  The concurrency rules need
     whole-project facts (lock ranks, callee summaries) before any
     single unit can be judged. *)
  let seen = Hashtbl.create 64 in
  let units = ref [] in
  let consider cmt_path =
    match Cmt_format.read_cmt cmt_path with
    | exception
        ( Sys_error _ | End_of_file | Failure _ | Cmt_format.Error _
        | Cmi_format.Error _ ) ->
        (* Unreadable or foreign-version cmt: not this build's output. *)
        ()
    | cmt -> (
        match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
        | Cmt_format.Implementation str, Some source
          when Filename.check_suffix source ".ml"
               && List.exists (fun p -> starts_with p source) only
               && not (Hashtbl.mem seen source) ->
            Hashtbl.add seen source ();
            units := (source, str) :: !units
        | _ -> ())
  in
  List.iter
    (fun root ->
      List.iter consider (List.sort String.compare (collect_cmts [] root)))
    roots;
  let units = List.rev !units in
  let pre = Rules.prepass units in
  (* Phase two: the per-unit pass. *)
  let findings = ref [] and allowed = ref [] and suppressed = ref [] in
  List.iter
    (fun (source, str) ->
      let r = Rules.check_structure ~pre ~scope_all ~source str in
      List.iter
        (fun f ->
          if Allowlist.allows allow_entries f then allowed := f :: !allowed
          else findings := f :: !findings)
        r.Rules.findings;
      suppressed := List.rev_append r.Rules.suppressed !suppressed)
    units;
  {
    findings = List.sort Finding.compare !findings;
    allowed = List.sort Finding.compare !allowed;
    attr_suppressed = List.sort Finding.compare !suppressed;
    units = List.length units;
    sources = List.map fst units;
  }

open Hyper_storage
module Btree = Hyper_index.Btree
module Schema = Hyper_core.Schema
module Oid = Hyper_core.Oid
module Bitmap = Hyper_util.Bitmap

type config = {
  path : string;
  pool_pages : int;
  durable_sync : bool;
  checkpoint_wal_bytes : int;
  remote : Hyper_net.Channel.profile option;
  vfs : Vfs.t option;
}

let default_config ~path =
  { path; pool_pages = 2048; durable_sync = false;
    checkpoint_wal_bytes = 64 * 1024 * 1024; remote = None; vfs = None }

let remote_1988 = Hyper_net.Channel.profile_1988

(* One heap + primary index per table, plus secondary indexes for every
   access path the operations need.  They live in a swappable sub-record
   so that abort/reload can re-attach them atomically. *)
type structures = {
  freelist : Freelist.t;
  node_heap : Heap.t;
  text_heap : Heap.t;
  form_heap : Heap.t;
  child_heap : Heap.t;
  part_heap : Heap.t;
  ref_heap : Heap.t;
  results_heap : Heap.t;
  node_pk : Btree.t; (* oid -> rid *)
  idx_uid : Btree.t; (* pack(doc, uid) -> oid *)
  idx_hundred : Btree.t; (* pack(doc, hundred) -> oid *)
  idx_million : Btree.t; (* pack(doc, million) -> oid *)
  text_pk : Btree.t; (* oid -> rid *)
  form_pk : Btree.t; (* oid -> rid *)
  child_by_parent : Btree.t; (* parent * 2^16 + pos -> rid *)
  child_by_child : Btree.t; (* child -> rid *)
  part_by_whole : Btree.t; (* whole -> rid *)
  part_by_part : Btree.t; (* part -> rid *)
  ref_by_src : Btree.t; (* src -> rid *)
  ref_by_dst : Btree.t; (* dst -> rid *)
}

type t = {
  engine : Engine.t;
  pool : Buffer_pool.t;
  channel : Hyper_net.Channel.t option;
  mutable s : structures;
  doc_counts : (int, int) Hashtbl.t;
  mutable result_seq : int;
  mutable edge_seq : int; (* stamps M-N edge rows in insertion order *)
}

let name = "reldb"

let description = "relational mapping: entity/relationship tables + index joins"

let key_shift = 1 lsl 44
let value_bias = 1 lsl 21
let pack_key ~doc v = (doc * key_shift) + v + value_bias

let doc_key doc = Printf.sprintf "doc_%d" doc

(* Ordered lists of (meta key, getter/setter) pairs keep save/load in
   lock-step; heaps and trees are threaded through records below. *)

let save_roots t =
  let s = t.s in
  let kvs =
    [ ("freelist", Freelist.head s.freelist);
      ("node_heap", Heap.first_page s.node_heap);
      ("text_heap", Heap.first_page s.text_heap);
      ("form_heap", Heap.first_page s.form_heap);
      ("child_heap", Heap.first_page s.child_heap);
      ("part_heap", Heap.first_page s.part_heap);
      ("ref_heap", Heap.first_page s.ref_heap);
      ("results_heap", Heap.first_page s.results_heap);
      ("node_pk", Btree.root s.node_pk);
      ("idx_uid", Btree.root s.idx_uid);
      ("idx_hundred", Btree.root s.idx_hundred);
      ("idx_million", Btree.root s.idx_million);
      ("text_pk", Btree.root s.text_pk);
      ("form_pk", Btree.root s.form_pk);
      ("child_by_parent", Btree.root s.child_by_parent);
      ("child_by_child", Btree.root s.child_by_child);
      ("part_by_whole", Btree.root s.part_by_whole);
      ("part_by_part", Btree.root s.part_by_part);
      ("ref_by_src", Btree.root s.ref_by_src);
      ("ref_by_dst", Btree.root s.ref_by_dst);
      ("result_seq", t.result_seq);
      ("edge_seq", t.edge_seq) ]
    |> List.map (fun (k, v) -> (k, Int64.of_int v))
  in
  let kvs =
    kvs
    @ List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold
           (fun doc count acc -> (doc_key doc, Int64.of_int count) :: acc)
           t.doc_counts [])
  in
  Meta.store t.pool kvs

let attach_structures pool kvs =
  let geti key = Int64.to_int (List.assoc key kvs) in
  let freelist = Freelist.attach pool ~head:(geti "freelist") in
  let heap key = Heap.attach pool freelist ~head:(geti key) in
  let tree key = Btree.attach pool freelist ~root:(geti key) in
  { freelist;
    node_heap = heap "node_heap";
    text_heap = heap "text_heap";
    form_heap = heap "form_heap";
    child_heap = heap "child_heap";
    part_heap = heap "part_heap";
    ref_heap = heap "ref_heap";
    results_heap = heap "results_heap";
    node_pk = tree "node_pk";
    idx_uid = tree "idx_uid";
    idx_hundred = tree "idx_hundred";
    idx_million = tree "idx_million";
    text_pk = tree "text_pk";
    form_pk = tree "form_pk";
    child_by_parent = tree "child_by_parent";
    child_by_child = tree "child_by_child";
    part_by_whole = tree "part_by_whole";
    part_by_part = tree "part_by_part";
    ref_by_src = tree "ref_by_src";
    ref_by_dst = tree "ref_by_dst" }

let load_doc_counts t kvs =
  Hashtbl.reset t.doc_counts;
  List.iter
    (fun (k, v) ->
      if String.length k > 4 && String.sub k 0 4 = "doc_" then
        match int_of_string_opt (String.sub k 4 (String.length k - 4)) with
        | Some doc -> Hashtbl.replace t.doc_counts doc (Int64.to_int v)
        | None -> ())
    kvs

let load_roots t =
  let kvs = Meta.load t.pool in
  t.s <- attach_structures t.pool kvs;
  t.result_seq <- Int64.to_int (List.assoc "result_seq" kvs);
  t.edge_seq <- Int64.to_int (List.assoc "edge_seq" kvs);
  load_doc_counts t kvs

let begin_txn t = Engine.begin_txn t.engine
let commit t = Engine.commit t.engine
let abort t = Engine.abort t.engine
let clear_caches t = Engine.clear_caches t.engine
let require_txn t = Engine.require_txn t.engine

let open_db config =
  let engine =
    Engine.open_ ?vfs:config.vfs ~path:config.path
      ~pool_pages:config.pool_pages ~durable_sync:config.durable_sync
      ~checkpoint_wal_bytes:config.checkpoint_wal_bytes ()
  in
  let pool = Engine.pool engine in
  let channel =
    Option.map
      (fun profile ->
        Hyper_net.Channel.attach_profile profile (Engine.pager engine))
      config.remote
  in
  let t =
    if Engine.fresh engine then begin
      let page0 = Buffer_pool.allocate pool in
      assert (page0 = 0);
      Meta.format pool;
      let fl = Freelist.attach pool ~head:0 in
      let s =
        { freelist = fl;
          node_heap = Heap.fresh pool fl;
          text_heap = Heap.fresh pool fl;
          form_heap = Heap.fresh pool fl;
          child_heap = Heap.fresh pool fl;
          part_heap = Heap.fresh pool fl;
          ref_heap = Heap.fresh pool fl;
          results_heap = Heap.fresh pool fl;
          node_pk = Btree.create pool fl;
          idx_uid = Btree.create pool fl;
          idx_hundred = Btree.create pool fl;
          idx_million = Btree.create pool fl;
          text_pk = Btree.create pool fl;
          form_pk = Btree.create pool fl;
          child_by_parent = Btree.create pool fl;
          child_by_child = Btree.create pool fl;
          part_by_whole = Btree.create pool fl;
          part_by_part = Btree.create pool fl;
          ref_by_src = Btree.create pool fl;
          ref_by_dst = Btree.create pool fl }
      in
      let t =
        { engine; pool; channel; s; doc_counts = Hashtbl.create 4;
          result_seq = 0; edge_seq = 0 }
      in
      save_roots t;
      Buffer_pool.flush_all pool;
      Pager.sync (Engine.pager engine);
      t
    end
    else begin
      let kvs = Meta.load pool in
      let t =
        { engine; pool; channel; s = attach_structures pool kvs;
          doc_counts = Hashtbl.create 4;
          result_seq = Int64.to_int (List.assoc "result_seq" kvs);
          edge_seq = Int64.to_int (List.assoc "edge_seq" kvs) }
      in
      load_doc_counts t kvs;
      t
    end
  in
  Engine.set_hooks engine
    ~on_save:(fun () -> save_roots t)
    ~on_reload:(fun () -> load_roots t);
  t

let checkpoint t = Engine.checkpoint t.engine

let close t =
  (match t.channel with Some c -> Hyper_net.Channel.detach c | None -> ());
  Engine.close t.engine
let last_recovery t = Engine.recovery t.engine

(* --- row access helpers --- *)

let node_rid t oid =
  match Btree.find_first t.s.node_pk ~key:oid with
  | Some rid -> rid
  | None -> invalid_arg (Printf.sprintf "Reldb: unknown oid %d" oid)

let read_node t oid = Rows.decode_node (Heap.read t.s.node_heap (node_rid t oid))

(* A secondary-index probe on a deleted or never-created node would
   happily return (or insert) rows for it; the backend contract — and
   the other backends, which resolve the node record first — is to
   reject the oid.  One primary-key probe buys the same behaviour. *)
let require_node t oid = ignore (node_rid t oid : int)

let update_node t row =
  let rid = node_rid t row.Rows.oid in
  let rid' = Heap.update t.s.node_heap rid (Rows.encode_node row) in
  if rid' <> rid then begin
    ignore (Btree.delete t.s.node_pk ~key:row.Rows.oid ~value:rid : bool);
    Btree.insert t.s.node_pk ~key:row.Rows.oid ~value:rid'
  end

(* --- creation --- *)

let create_node ?near:_ t spec =
  require_txn t;
  let oid = spec.Schema.oid in
  if Btree.find_first t.s.node_pk ~key:oid <> None then
    invalid_arg (Printf.sprintf "Reldb: oid %d already exists" oid);
  let row =
    { Rows.doc = spec.Schema.doc; oid; unique_id = spec.Schema.unique_id;
      ten = spec.Schema.ten; hundred = spec.Schema.hundred;
      million = spec.Schema.million;
      kind = Schema.kind_of_payload spec.Schema.payload; dyn = [] }
  in
  let rid = Heap.insert t.s.node_heap (Rows.encode_node row) in
  Btree.insert t.s.node_pk ~key:oid ~value:rid;
  let doc = spec.Schema.doc in
  Btree.insert t.s.idx_uid ~key:(pack_key ~doc spec.Schema.unique_id) ~value:oid;
  Btree.insert t.s.idx_hundred ~key:(pack_key ~doc spec.Schema.hundred) ~value:oid;
  Btree.insert t.s.idx_million ~key:(pack_key ~doc spec.Schema.million) ~value:oid;
  (match spec.Schema.payload with
  | Schema.P_text body ->
    let trid = Heap.insert t.s.text_heap (Rows.encode_text ~oid body) in
    Btree.insert t.s.text_pk ~key:oid ~value:trid
  | Schema.P_form bitmap ->
    let frid =
      Heap.insert t.s.form_heap (Rows.encode_form ~oid (Bitmap.to_bytes bitmap))
    in
    Btree.insert t.s.form_pk ~key:oid ~value:frid
  | Schema.P_internal | Schema.P_draw -> ());
  Hashtbl.replace t.doc_counts doc
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.doc_counts doc))

let child_key ~parent ~pos = (parent lsl 16) lor pos

(* Next free position: one past the highest occupied, so removals never
   cause position collisions while the remaining sequence keeps its
   order. *)
let next_child_pos t parent =
  Btree.fold_range t.s.child_by_parent ~lo:(child_key ~parent ~pos:0)
    ~hi:(child_key ~parent ~pos:0xFFFF) ~init:0
    ~f:(fun acc ~key ~value:_ -> Stdlib.max acc ((key land 0xFFFF) + 1))

let add_child t ~parent ~child =
  require_txn t;
  require_node t parent;
  require_node t child;
  if Btree.find_first t.s.child_by_child ~key:child <> None then
    invalid_arg (Printf.sprintf "Reldb: node %d already has a parent" child);
  let pos = next_child_pos t parent in
  let row = { Rows.parent; pos; child } in
  let rid = Heap.insert t.s.child_heap (Rows.encode_child row) in
  Btree.insert t.s.child_by_parent ~key:(child_key ~parent ~pos) ~value:rid;
  Btree.insert t.s.child_by_child ~key:child ~value:rid

(* Batch form: one next-position probe for the whole batch instead of
   one B+tree range fold per edge. *)
let add_children t ~parent children =
  require_txn t;
  (* Validate every endpoint before the first insert: a bad child must
     not leave a half-linked batch behind. *)
  require_node t parent;
  Array.iter
    (fun child ->
      require_node t child;
      if Btree.find_first t.s.child_by_child ~key:child <> None then
        invalid_arg (Printf.sprintf "Reldb: node %d already has a parent" child))
    children;
  let pos = ref (next_child_pos t parent) in
  Array.iter
    (fun child ->
      if Btree.find_first t.s.child_by_child ~key:child <> None then
        invalid_arg (Printf.sprintf "Reldb: node %d already has a parent" child);
      let row = { Rows.parent; pos = !pos; child } in
      let rid = Heap.insert t.s.child_heap (Rows.encode_child row) in
      Btree.insert t.s.child_by_parent ~key:(child_key ~parent ~pos:!pos)
        ~value:rid;
      Btree.insert t.s.child_by_child ~key:child ~value:rid;
      incr pos)
    children

let next_edge_seq t =
  let seq = t.edge_seq in
  t.edge_seq <- seq + 1;
  seq

let add_part t ~whole ~part =
  require_txn t;
  require_node t whole;
  require_node t part;
  let rid =
    Heap.insert t.s.part_heap
      (Rows.encode_part { Rows.whole; part; seq = next_edge_seq t })
  in
  Btree.insert t.s.part_by_whole ~key:whole ~value:rid;
  Btree.insert t.s.part_by_part ~key:part ~value:rid

let add_parts t ~whole parts =
  require_txn t;
  require_node t whole;
  Array.iter (fun part -> require_node t part) parts;
  Array.iter (fun part -> add_part t ~whole ~part) parts

(* Row storage has no per-object pages to group-fetch: edges live in
   their own heaps and are reached through the B+trees, so the hint has
   nothing cheaper than the demand path to do. *)
let prefetch_nodes _t _oids = ()

let add_ref t ~src ~dst ~offset_from ~offset_to =
  require_txn t;
  require_node t src;
  require_node t dst;
  let rid =
    Heap.insert t.s.ref_heap
      (Rows.encode_ref
         { Rows.src; dst; offset_from; offset_to; seq = next_edge_seq t })
  in
  Btree.insert t.s.ref_by_src ~key:src ~value:rid;
  Btree.insert t.s.ref_by_dst ~key:dst ~value:rid

(* --- structural modification --- *)

let remove_child t ~parent ~child =
  require_txn t;
  let rid =
    match Btree.find_first t.s.child_by_child ~key:child with
    | Some rid -> rid
    | None -> invalid_arg (Printf.sprintf "Reldb: child edge %d does not exist" child)
  in
  let row = Rows.decode_child (Heap.read t.s.child_heap rid) in
  if row.Rows.parent <> parent then
    invalid_arg
      (Printf.sprintf "Reldb: %d is a child of %d, not %d" child
         row.Rows.parent parent);
  Heap.delete t.s.child_heap rid;
  ignore
    (Btree.delete t.s.child_by_parent
       ~key:(child_key ~parent ~pos:row.Rows.pos) ~value:rid
      : bool);
  ignore (Btree.delete t.s.child_by_child ~key:child ~value:rid : bool)

let remove_part t ~whole ~part =
  require_txn t;
  let rid =
    List.find_opt
      (fun rid ->
        (Rows.decode_part (Heap.read t.s.part_heap rid)).Rows.part = part)
      (Btree.find_all t.s.part_by_whole ~key:whole)
  in
  match rid with
  | None ->
    invalid_arg (Printf.sprintf "Reldb: part edge %d/%d does not exist" whole part)
  | Some rid ->
    Heap.delete t.s.part_heap rid;
    ignore (Btree.delete t.s.part_by_whole ~key:whole ~value:rid : bool);
    ignore (Btree.delete t.s.part_by_part ~key:part ~value:rid : bool)

let remove_ref t ~src ~dst =
  require_txn t;
  let rid =
    List.find_opt
      (fun rid -> (Rows.decode_ref (Heap.read t.s.ref_heap rid)).Rows.dst = dst)
      (Btree.find_all t.s.ref_by_src ~key:src)
  in
  match rid with
  | None -> invalid_arg (Printf.sprintf "Reldb: no reference %d -> %d" src dst)
  | Some rid ->
    Heap.delete t.s.ref_heap rid;
    ignore (Btree.delete t.s.ref_by_src ~key:src ~value:rid : bool);
    ignore (Btree.delete t.s.ref_by_dst ~key:dst ~value:rid : bool)

let delete_node t oid =
  require_txn t;
  let row = read_node t oid in
  let has_children =
    Btree.fold_range t.s.child_by_parent ~lo:(child_key ~parent:oid ~pos:0)
      ~hi:(child_key ~parent:oid ~pos:0xFFFF) ~init:false
      ~f:(fun _ ~key:_ ~value:_ -> true)
  in
  if has_children then
    invalid_arg (Printf.sprintf "Reldb: node %d still has children" oid);
  (match Btree.find_first t.s.child_by_child ~key:oid with
  | Some rid ->
    let edge = Rows.decode_child (Heap.read t.s.child_heap rid) in
    remove_child t ~parent:edge.Rows.parent ~child:oid
  | None -> ());
  let wholes =
    List.map
      (fun rid -> (Rows.decode_part (Heap.read t.s.part_heap rid)).Rows.whole)
      (Btree.find_all t.s.part_by_part ~key:oid)
  in
  List.iter (fun whole -> remove_part t ~whole ~part:oid) wholes;
  let parts =
    List.map
      (fun rid -> (Rows.decode_part (Heap.read t.s.part_heap rid)).Rows.part)
      (Btree.find_all t.s.part_by_whole ~key:oid)
  in
  List.iter (fun part -> remove_part t ~whole:oid ~part) parts;
  let dsts =
    List.map
      (fun rid -> (Rows.decode_ref (Heap.read t.s.ref_heap rid)).Rows.dst)
      (Btree.find_all t.s.ref_by_src ~key:oid)
  in
  List.iter (fun dst -> remove_ref t ~src:oid ~dst) dsts;
  let srcs =
    List.map
      (fun rid -> (Rows.decode_ref (Heap.read t.s.ref_heap rid)).Rows.src)
      (Btree.find_all t.s.ref_by_dst ~key:oid)
  in
  List.iter (fun src -> remove_ref t ~src ~dst:oid) srcs;
  (match Btree.find_first t.s.text_pk ~key:oid with
  | Some rid ->
    Heap.delete t.s.text_heap rid;
    ignore (Btree.delete t.s.text_pk ~key:oid ~value:rid : bool)
  | None -> ());
  (match Btree.find_first t.s.form_pk ~key:oid with
  | Some rid ->
    Heap.delete t.s.form_heap rid;
    ignore (Btree.delete t.s.form_pk ~key:oid ~value:rid : bool)
  | None -> ());
  let doc = row.Rows.doc in
  ignore
    (Btree.delete t.s.idx_uid ~key:(pack_key ~doc row.Rows.unique_id)
       ~value:oid
      : bool);
  ignore
    (Btree.delete t.s.idx_hundred ~key:(pack_key ~doc row.Rows.hundred)
       ~value:oid
      : bool);
  ignore
    (Btree.delete t.s.idx_million ~key:(pack_key ~doc row.Rows.million)
       ~value:oid
      : bool);
  let rid = node_rid t oid in
  Heap.delete t.s.node_heap rid;
  ignore (Btree.delete t.s.node_pk ~key:oid ~value:rid : bool);
  Hashtbl.replace t.doc_counts doc
    (Option.value ~default:1 (Hashtbl.find_opt t.doc_counts doc) - 1)

(* --- attributes --- *)

let kind t oid = (read_node t oid).Rows.kind
let unique_id t oid = (read_node t oid).Rows.unique_id
let ten t oid = (read_node t oid).Rows.ten
let hundred t oid = (read_node t oid).Rows.hundred
let million t oid = (read_node t oid).Rows.million

let set_hundred t oid v =
  require_txn t;
  let row = read_node t oid in
  if row.Rows.hundred <> v then begin
    let doc = row.Rows.doc in
    ignore
      (Btree.delete t.s.idx_hundred ~key:(pack_key ~doc row.Rows.hundred)
         ~value:oid
        : bool);
    Btree.insert t.s.idx_hundred ~key:(pack_key ~doc v) ~value:oid;
    row.Rows.hundred <- v;
    update_node t row
  end

let set_dyn_attr t oid key v =
  require_txn t;
  let row = read_node t oid in
  row.Rows.dyn <- (key, v) :: List.remove_assoc key row.Rows.dyn;
  update_node t row

let dyn_attr t oid key = List.assoc_opt key (read_node t oid).Rows.dyn

(* --- associative lookup --- *)

let lookup_unique t ~doc uid = Btree.find_first t.s.idx_uid ~key:(pack_key ~doc uid)

let collect_range tree ~doc ~lo ~hi =
  List.rev
    (Btree.fold_range tree ~lo:(pack_key ~doc lo) ~hi:(pack_key ~doc hi)
       ~init:[] ~f:(fun acc ~key:_ ~value -> value :: acc))

let range_unique t ~doc ~lo ~hi = collect_range t.s.idx_uid ~doc ~lo ~hi
let range_hundred t ~doc ~lo ~hi = collect_range t.s.idx_hundred ~doc ~lo ~hi
let range_million t ~doc ~lo ~hi = collect_range t.s.idx_million ~doc ~lo ~hi

(* --- relationships: every traversal is index probe + row fetches --- *)

let rids_for tree key = Btree.find_all tree ~key

let children t oid =
  require_node t oid;
  let rids =
    List.rev
      (Btree.fold_range t.s.child_by_parent ~lo:(child_key ~parent:oid ~pos:0)
         ~hi:(child_key ~parent:oid ~pos:0xFFFF) ~init:[]
         ~f:(fun acc ~key:_ ~value -> value :: acc))
  in
  (* Key order is (parent, pos): the sequence order. *)
  Array.of_list
    (List.map
       (fun rid -> (Rows.decode_child (Heap.read t.s.child_heap rid)).Rows.child)
       rids)

let parent t oid =
  require_node t oid;
  Option.map
    (fun rid -> (Rows.decode_child (Heap.read t.s.child_heap rid)).Rows.parent)
    (Btree.find_first t.s.child_by_child ~key:oid)

(* parts and refsTo are insertion-ordered; the index yields rids (which
   Heap recycles), so order by the rows' sequence stamps instead. *)
let parts t oid =
  require_node t oid;
  let rows =
    List.map
      (fun rid -> Rows.decode_part (Heap.read t.s.part_heap rid))
      (rids_for t.s.part_by_whole oid)
  in
  let rows =
    List.sort
      (fun (a : Rows.part_row) (b : Rows.part_row) ->
        compare a.Rows.seq b.Rows.seq)
      rows
  in
  Array.of_list (List.map (fun (r : Rows.part_row) -> r.Rows.part) rows)

let part_of t oid =
  require_node t oid;
  Array.of_list
    (List.map
       (fun rid -> (Rows.decode_part (Heap.read t.s.part_heap rid)).Rows.whole)
       (rids_for t.s.part_by_part oid))

let link_of_ref ~incoming r =
  { Schema.target = (if incoming then r.Rows.src else r.Rows.dst);
    offset_from = r.Rows.offset_from;
    offset_to = r.Rows.offset_to }

let refs_to t oid =
  require_node t oid;
  let rows =
    List.map
      (fun rid -> Rows.decode_ref (Heap.read t.s.ref_heap rid))
      (rids_for t.s.ref_by_src oid)
  in
  let rows =
    List.sort
      (fun (a : Rows.ref_row) (b : Rows.ref_row) -> compare a.Rows.seq b.Rows.seq)
      rows
  in
  Array.of_list (List.map (link_of_ref ~incoming:false) rows)

let refs_from t oid =
  require_node t oid;
  Array.of_list
    (List.map
       (fun rid ->
         link_of_ref ~incoming:true (Rows.decode_ref (Heap.read t.s.ref_heap rid)))
       (rids_for t.s.ref_by_dst oid))

(* --- content --- *)

let text_rid t oid =
  match Btree.find_first t.s.text_pk ~key:oid with
  | Some rid -> rid
  | None -> invalid_arg (Printf.sprintf "Reldb: node %d is not a text node" oid)

let text t oid = snd (Rows.decode_text (Heap.read t.s.text_heap (text_rid t oid)))

let set_text t oid body =
  require_txn t;
  let rid = text_rid t oid in
  let rid' = Heap.update t.s.text_heap rid (Rows.encode_text ~oid body) in
  if rid' <> rid then begin
    ignore (Btree.delete t.s.text_pk ~key:oid ~value:rid : bool);
    Btree.insert t.s.text_pk ~key:oid ~value:rid'
  end

let form_rid t oid =
  match Btree.find_first t.s.form_pk ~key:oid with
  | Some rid -> rid
  | None -> invalid_arg (Printf.sprintf "Reldb: node %d is not a form node" oid)

let form t oid =
  Bitmap.of_bytes (snd (Rows.decode_form (Heap.read t.s.form_heap (form_rid t oid))))

let set_form t oid bitmap =
  require_txn t;
  let rid = form_rid t oid in
  let rid' =
    Heap.update t.s.form_heap rid (Rows.encode_form ~oid (Bitmap.to_bytes bitmap))
  in
  if rid' <> rid then begin
    ignore (Btree.delete t.s.form_pk ~key:oid ~value:rid : bool);
    Btree.insert t.s.form_pk ~key:oid ~value:rid'
  end

(* --- scans --- *)

let iter_doc t ~doc f =
  Btree.iter_range t.s.idx_uid ~lo:(doc * key_shift)
    ~hi:(((doc + 1) * key_shift) - 1)
    (fun ~key:_ ~value -> f value)

let node_count t ~doc =
  Option.value ~default:0 (Hashtbl.find_opt t.doc_counts doc)

let store_result_list t oids =
  require_txn t;
  ignore (Heap.insert t.s.results_heap (Rows.encode_oid_list oids) : Heap.rid);
  t.result_seq <- t.result_seq + 1

let stored_result_count t = t.result_seq

(* --- introspection --- *)

type io_counters = {
  pager_reads : int;
  pager_writes : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  wal_bytes : int;
}

let io_counters t =
  let ps = Pager.stats (Engine.pager t.engine) in
  let bs = Buffer_pool.stats t.pool in
  { pager_reads = ps.Pager.reads; pager_writes = ps.Pager.writes;
    pool_hits = bs.Buffer_pool.hits; pool_misses = bs.Buffer_pool.misses;
    pool_evictions = bs.Buffer_pool.evictions;
    wal_bytes = Engine.wal_bytes t.engine }

(* Rows live in paged heaps and B+trees; no cheap in-memory fork. *)
let snapshot _ = None

let io_description t =
  let c = io_counters t in
  Printf.sprintf "pager r/w %d/%d; pool hit/miss/evict %d/%d/%d" c.pager_reads
    c.pager_writes c.pool_hits c.pool_misses c.pool_evictions

let reset_io t =
  Pager.reset_stats (Engine.pager t.engine);
  Buffer_pool.reset_stats t.pool

let file_bytes t = Pager.page_count (Engine.pager t.engine) * Page.size

(* Mark-and-sweep page collection (R10) — same scheme as the object
   backend, over this backend's seven heaps and fourteen B+trees. *)
let collect_garbage t =
  Engine.begin_txn t.engine;
  let total = Pager.page_count (Engine.pager t.engine) in
  let marked = Array.make total false in
  marked.(0) <- true;
  let mark id = if id > 0 && id < total then marked.(id) <- true in
  let s = t.s in
  List.iter
    (fun h -> Heap.iter_pages h mark)
    [ s.node_heap; s.text_heap; s.form_heap; s.child_heap; s.part_heap;
      s.ref_heap; s.results_heap ];
  List.iter
    (fun b -> Btree.iter_pages b mark)
    [ s.node_pk; s.idx_uid; s.idx_hundred; s.idx_million; s.text_pk;
      s.form_pk; s.child_by_parent; s.child_by_child; s.part_by_whole;
      s.part_by_part; s.ref_by_src; s.ref_by_dst ];
  Freelist.iter s.freelist mark;
  let freed = ref 0 in
  for id = 1 to total - 1 do
    if not marked.(id) then begin
      Freelist.push s.freelist id;
      incr freed
    end
  done;
  Engine.commit t.engine;
  !freed

module Schema = Hyper_core.Schema

type node_row = {
  doc : int;
  oid : int;
  unique_id : int;
  mutable ten : int;
  mutable hundred : int;
  mutable million : int;
  kind : Schema.kind;
  mutable dyn : (string * int) list;
}

type child_row = { parent : int; pos : int; child : int }

(* M-N edges carry an insertion sequence number: the secondary indexes
   map endpoint -> heap rid, and rids are recycled by Heap's free list,
   so rid order is an access-path artefact.  parts/refsTo are specified
   as insertion-ordered (what the pointer backends' append order gives),
   and [seq] is what makes that order survive a delete + re-add. *)
type part_row = { whole : int; part : int; seq : int }

type ref_row = {
  src : int;
  dst : int;
  offset_from : int;
  offset_to : int;
  seq : int;
}

(* --- emit / read primitives (little-endian over Buffer / cursor) --- *)

let emit_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let emit_u16 buf v =
  emit_u8 buf v;
  emit_u8 buf (v lsr 8)

let emit_u32 buf v =
  emit_u16 buf v;
  emit_u16 buf (v lsr 16)

type cursor = { data : bytes; mutable pos : int }

let read_u8 c =
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let read_u16 c =
  let lo = read_u8 c in
  lo lor (read_u8 c lsl 8)

let read_u32 c =
  let lo = read_u16 c in
  lo lor (read_u16 c lsl 16)

let read_i32 c =
  let v = read_u32 c in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let kind_tag = function
  | Schema.Internal -> 0
  | Schema.Text -> 1
  | Schema.Form -> 2
  | Schema.Draw -> 3

let kind_of_tag = function
  | 0 -> Schema.Internal
  | 1 -> Schema.Text
  | 2 -> Schema.Form
  | 3 -> Schema.Draw
  | n -> invalid_arg (Printf.sprintf "Rows: bad kind tag %d" n)

(* --- NODE --- *)

let encode_node r =
  let buf = Buffer.create 32 in
  emit_u32 buf r.doc;
  emit_u32 buf r.oid;
  emit_u32 buf r.unique_id;
  emit_u8 buf r.ten;
  emit_u8 buf (kind_tag r.kind);
  emit_u32 buf (r.hundred land 0xFFFFFFFF);
  emit_u32 buf r.million;
  emit_u8 buf (List.length r.dyn);
  List.iter
    (fun (k, v) ->
      emit_u8 buf (String.length k);
      Buffer.add_string buf k;
      emit_u32 buf (v land 0xFFFFFFFF))
    r.dyn;
  Buffer.to_bytes buf

let decode_node data =
  let c = { data; pos = 0 } in
  let doc = read_u32 c in
  let oid = read_u32 c in
  let unique_id = read_u32 c in
  let ten = read_u8 c in
  let kind = kind_of_tag (read_u8 c) in
  let hundred = read_i32 c in
  let million = read_u32 c in
  let n_dyn = read_u8 c in
  let dyn =
    List.init n_dyn (fun _ ->
        let klen = read_u8 c in
        let k = Bytes.sub_string c.data c.pos klen in
        c.pos <- c.pos + klen;
        (k, read_u32 c))
  in
  { doc; oid; unique_id; ten; hundred; million; kind; dyn }

(* --- TEXT / FORM --- *)

let encode_text ~oid body =
  let buf = Buffer.create (8 + String.length body) in
  emit_u32 buf oid;
  emit_u32 buf (String.length body);
  Buffer.add_string buf body;
  Buffer.to_bytes buf

let decode_text data =
  let c = { data; pos = 0 } in
  let oid = read_u32 c in
  let len = read_u32 c in
  (oid, Bytes.sub_string c.data c.pos len)

let encode_form ~oid bitmap =
  let buf = Buffer.create (8 + Bytes.length bitmap) in
  emit_u32 buf oid;
  emit_u32 buf (Bytes.length bitmap);
  Buffer.add_bytes buf bitmap;
  Buffer.to_bytes buf

let decode_form data =
  let c = { data; pos = 0 } in
  let oid = read_u32 c in
  let len = read_u32 c in
  (oid, Bytes.sub c.data c.pos len)

(* --- CHILD / PART / REF --- *)

let encode_child r =
  let buf = Buffer.create 10 in
  emit_u32 buf r.parent;
  emit_u16 buf r.pos;
  emit_u32 buf r.child;
  Buffer.to_bytes buf

let decode_child data =
  let c = { data; pos = 0 } in
  let parent = read_u32 c in
  let pos = read_u16 c in
  let child = read_u32 c in
  { parent; pos; child }

let encode_part r =
  let buf = Buffer.create 12 in
  emit_u32 buf r.whole;
  emit_u32 buf r.part;
  emit_u32 buf r.seq;
  Buffer.to_bytes buf

let decode_part data =
  let c = { data; pos = 0 } in
  let whole = read_u32 c in
  let part = read_u32 c in
  let seq = read_u32 c in
  { whole; part; seq }

let encode_ref r =
  let buf = Buffer.create 14 in
  emit_u32 buf r.src;
  emit_u32 buf r.dst;
  emit_u8 buf r.offset_from;
  emit_u8 buf r.offset_to;
  emit_u32 buf r.seq;
  Buffer.to_bytes buf

let decode_ref data =
  let c = { data; pos = 0 } in
  let src = read_u32 c in
  let dst = read_u32 c in
  let offset_from = read_u8 c in
  let offset_to = read_u8 c in
  let seq = read_u32 c in
  { src; dst; offset_from; offset_to; seq }

let encode_oid_list oids =
  let buf = Buffer.create (4 + (4 * List.length oids)) in
  emit_u32 buf (List.length oids);
  List.iter (emit_u32 buf) oids;
  Buffer.to_bytes buf

let decode_oid_list data =
  let c = { data; pos = 0 } in
  let n = read_u32 c in
  List.init n (fun _ -> read_u32 c)

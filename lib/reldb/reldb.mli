(** Relational backend — the paper's "currently being implemented on a
    relational system following the methodology outlined in /BLAH88/".

    Entities and relationships become tables ({!Rows}); every traversal
    hop is a secondary-index probe followed by row fetches — a join — so
    closure operations pay per-hop index costs that the object backends
    avoid with direct references.  There is no inter-object clustering:
    the [near] hint is ignored, as a relational system clusters by table,
    not by aggregate.  OIDs are the NODE table's primary key, which is
    exactly how the paper expects a relational system to represent node
    references (§6).

    Shares the transactional storage engine (WAL, buffer pool, recovery)
    with the object backend, so performance differences are purely about
    data layout and access paths. *)

type config = {
  path : string;
  pool_pages : int;
  durable_sync : bool;
  checkpoint_wal_bytes : int;
  remote : Hyper_net.Channel.profile option;
      (** workstation/server simulation, as in the object backend *)
  vfs : Hyper_storage.Vfs.t option;
      (** VFS all storage I/O flows through; [None] = real files.  Same
          contract as {!Hyper_diskdb.Diskdb.config}[.vfs]. *)
}

val default_config : path:string -> config

val remote_1988 : Hyper_net.Channel.profile

include Hyper_core.Backend.S

val open_db : config -> t
val close : t -> unit
val checkpoint : t -> unit
val last_recovery : t -> Hyper_storage.Recovery.report option

type io_counters = {
  pager_reads : int;
  pager_writes : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  wal_bytes : int;
}

val io_counters : t -> io_counters
val file_bytes : t -> int
val stored_result_count : t -> int

val collect_garbage : t -> int
(** Mark-and-sweep collection of unreachable pages (R10); see
    {!Hyper_diskdb.Diskdb.collect_garbage}. *)

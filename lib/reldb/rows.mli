(** Row codecs for the relational backend's six tables.

    The HyperModel schema mapped to relations following the methodology
    the paper cites (/BLAH88/): one table per entity class fragment and
    one table per relationship:

    {v
      NODE (doc, oid, uniqueId, ten, hundred, million, kind, dyn…)
      TEXT (oid, body)
      FORM (oid, bitmap)
      CHILD(parent, pos, child)       -- 1-N, pos preserves the sequence
      PART (whole, part)              -- M-N
      REF  (src, dst, offFrom, offTo) -- M-N with attributes
    v} *)

type node_row = {
  doc : int;
  oid : int;
  unique_id : int;
  mutable ten : int;
  mutable hundred : int;
  mutable million : int;
  kind : Hyper_core.Schema.kind;
  mutable dyn : (string * int) list;
}

type child_row = { parent : int; pos : int; child : int }

(* [seq] orders M-N edges by insertion: the endpoint indexes map to
   heap rids, which Heap recycles, so rid order cannot serve as the
   specified parts/refsTo order after a delete + re-add. *)
type part_row = { whole : int; part : int; seq : int }

type ref_row = {
  src : int;
  dst : int;
  offset_from : int;
  offset_to : int;
  seq : int;
}

val encode_node : node_row -> bytes
val decode_node : bytes -> node_row

val encode_text : oid:int -> string -> bytes
val decode_text : bytes -> int * string

val encode_form : oid:int -> bytes -> bytes
val decode_form : bytes -> int * bytes

val encode_child : child_row -> bytes
val decode_child : bytes -> child_row

val encode_part : part_row -> bytes
val decode_part : bytes -> part_row

val encode_ref : ref_row -> bytes
val decode_ref : bytes -> ref_row

val encode_oid_list : int list -> bytes
val decode_oid_list : bytes -> int list

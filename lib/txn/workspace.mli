(** Private and shared workspaces (R9: cooperation between users).

    The paper asks that two users be able to update different nodes of
    the same structure, with one user's changes becoming "easily
    accessible" to others when published.  A [shared] store holds the
    published state; each user [checkout]s a private workspace whose
    writes overlay the shared state until [publish].

    The shared store is a {!Version_store}: publish is a
    first-committer-wins MVCC commit of the overlay against the
    checkout timestamp, so conflict detection at object granularity (a
    write conflicts when the shared object changed after the workspace
    was checked out or last synchronised) falls out of the
    snapshot-isolation rule.  Read-only cooperation uses {!snapshot}
    views pinned at a commit timestamp — they never conflict, never
    block a publisher, and never touch {!Lock_manager}. *)

type 'a shared

type 'a t

type 'a publish_result =
  | Published of int (** number of objects made shareable *)
  | Conflicts of int list (** keys that changed under us *)

val create_shared : unit -> 'a shared

val shared_get : 'a shared -> int -> 'a option
val shared_keys : 'a shared -> int list

val checkout : 'a shared -> 'a t
(** A private workspace seeing the current shared state. *)

val get : 'a t -> int -> 'a option
(** Private copy when present, otherwise the shared state. *)

val put : 'a t -> int -> 'a -> unit
(** Private write; invisible to other workspaces until published. *)

val dirty_keys : 'a t -> int list

val publish : 'a t -> 'a publish_result
(** Merge private writes into the shared store.  On success the
    workspace is synchronised (further writes rebase on the new state).
    On conflict nothing is merged; the caller may [refresh] and retry. *)

val refresh : 'a t -> unit
(** Re-synchronise with the shared store, dropping conflict markers but
    keeping private writes (they win over refreshed state on [get]). *)

(** {2 Read-only snapshot views}

    A pinned, consistent view of the shared state — the MVCC read path.
    Unlike {!checkout}, a view never sees later publishes, cannot
    conflict and holds no locks; release it when done so version GC can
    advance past its timestamp. *)

type 'a view

val snapshot : 'a shared -> 'a view
(** Pin a view at the current publish timestamp. *)

val view_ts : 'a view -> int

val view_get : 'a view -> int -> 'a option
(** The shared value as of the view's timestamp.
    @raise Invalid_argument after {!view_release}. *)

val view_release : 'a view -> unit
(** Unpin from the GC watermark.  Idempotent. *)

module Sync = Hyper_util.Sync

type 'a shared = {
  mutex : Sync.Mutex.t;
  store : (int, 'a * int) Hashtbl.t; (* value, version *)
  mutable version : int;
}

type 'a t = {
  parent : 'a shared;
  overlay : (int, 'a) Hashtbl.t;
  baseline : (int, int) Hashtbl.t; (* key -> shared version at checkout *)
}

type 'a publish_result = Published of int | Conflicts of int list

let create_shared () =
  { mutex = Sync.Mutex.create ~rank:20 "txn.workspace";
    store = Hashtbl.create 256; version = 0 }

let with_lock s f = Sync.Mutex.with_lock s.mutex f

let shared_get s key =
  with_lock s (fun () -> Option.map fst (Hashtbl.find_opt s.store key))

let shared_keys s =
  with_lock s (fun () ->
      List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.store []))

let shared_version_of s key =
  match Hashtbl.find_opt s.store key with Some (_, v) -> v | None -> 0

let snapshot_baseline t =
  Hashtbl.reset t.baseline;
  with_lock t.parent (fun () ->
      Hashtbl.iter
        (fun k (_, v) -> Hashtbl.replace t.baseline k v)
        t.parent.store)

let checkout parent =
  let t =
    { parent; overlay = Hashtbl.create 64; baseline = Hashtbl.create 64 }
  in
  snapshot_baseline t;
  t

let get t key =
  match Hashtbl.find_opt t.overlay key with
  | Some v -> Some v
  | None -> shared_get t.parent key

let put t key v = Hashtbl.replace t.overlay key v

let dirty_keys t =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.overlay [])

let baseline_of t key =
  Option.value ~default:0 (Hashtbl.find_opt t.baseline key)

let publish t =
  with_lock t.parent (fun () ->
      (* Publish in sorted key order so the version stamps a publish
         assigns are reproducible run to run, not hash-bucket order. *)
      let keys =
        List.sort Int.compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) t.overlay [])
      in
      let conflicts =
        List.filter
          (fun k -> shared_version_of t.parent k <> baseline_of t k)
          keys
      in
      if conflicts <> [] then Conflicts conflicts
      else begin
        let n = Hashtbl.length t.overlay in
        List.iter
          (fun k ->
            let v = Hashtbl.find t.overlay k in
            t.parent.version <- t.parent.version + 1;
            Hashtbl.replace t.parent.store k (v, t.parent.version))
          keys;
        Hashtbl.reset t.overlay;
        (* Re-baseline inline; we already hold the lock. *)
        Hashtbl.reset t.baseline;
        Hashtbl.iter
          (fun k (_, v) -> Hashtbl.replace t.baseline k v)
          t.parent.store;
        Published n
      end)

let refresh t = snapshot_baseline t

(* Private/shared workspaces (R9), refitted onto the MVCC version
   store: the shared state is a {!Version_store}, a publish is a
   first-committer-wins commit of the overlay against the checkout
   timestamp, and read-only cooperation uses pinned snapshot views
   that never conflict and never take a lock-manager lock. *)

type 'a shared = { vs : 'a Version_store.t }

type 'a t = {
  parent : 'a shared;
  overlay : (int, 'a) Hashtbl.t;
  mutable base_ts : int; (* commit time the workspace is synced to *)
}

type 'a publish_result = Published of int | Conflicts of int list

let create_shared () = { vs = Version_store.create () }

let shared_get s key = Version_store.latest s.vs ~key

let shared_keys s = Version_store.keys s.vs

let checkout parent =
  { parent; overlay = Hashtbl.create 64;
    base_ts = Version_store.now parent.vs }

let get t key =
  match Hashtbl.find_opt t.overlay key with
  | Some v -> Some v
  | None -> shared_get t.parent key

let put t key v = Hashtbl.replace t.overlay key v

let dirty_keys t =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.overlay [])

let publish t =
  (* Publish in sorted key order so the install order (and therefore
     repro output) is reproducible run to run, not hash-bucket order. *)
  let writes =
    List.map (fun k -> (k, Hashtbl.find t.overlay k)) (dirty_keys t)
  in
  match Version_store.commit_keys t.parent.vs ~read_ts:t.base_ts writes with
  | Version_store.Conflict keys -> Conflicts keys
  | Version_store.Committed ts ->
    Hashtbl.reset t.overlay;
    (* Re-baseline on our own commit: further writes rebase on it. *)
    t.base_ts <- ts;
    Published (List.length writes)

let refresh t = t.base_ts <- Version_store.now t.parent.vs

(* --- read-only snapshot views --- *)

type 'a view = 'a Version_store.snapshot

let snapshot parent = Version_store.begin_snapshot parent.vs

let view_ts = Version_store.snapshot_ts

let view_get view key = Version_store.snapshot_get view ~key

let view_release = Version_store.release

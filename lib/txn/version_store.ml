type 'a t = {
  mutable clock : int;
  chains : (int, (int * 'a) list) Hashtbl.t; (* newest first *)
  variant_chains : (int * string, (int * 'a) list) Hashtbl.t;
}

let create () =
  { clock = 0; chains = Hashtbl.create 256; variant_chains = Hashtbl.create 16 }

let now t = t.clock

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let put t ~key v =
  let ts = tick t in
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.chains key) in
  Hashtbl.replace t.chains key ((ts, v) :: chain);
  ts

let latest t ~key =
  match Hashtbl.find_opt t.chains key with
  | Some ((_, v) :: _) -> Some v
  | Some [] | None -> None

let previous t ~key =
  match Hashtbl.find_opt t.chains key with
  | Some (_ :: (_, v) :: _) -> Some v
  | Some _ | None -> None

let as_of t ~key ~time =
  match Hashtbl.find_opt t.chains key with
  | None -> None
  | Some chain ->
    let rec find = function
      | [] -> None
      | (ts, v) :: rest -> if ts <= time then Some v else find rest
    in
    find chain

let version_count t ~key =
  match Hashtbl.find_opt t.chains key with
  | None -> 0
  | Some chain -> List.length chain

let history t ~key = Option.value ~default:[] (Hashtbl.find_opt t.chains key)

let put_variant t ~key ~variant v =
  let ts = tick t in
  let k = (key, variant) in
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.variant_chains k) in
  Hashtbl.replace t.variant_chains k ((ts, v) :: chain);
  ts

let latest_variant t ~key ~variant =
  match Hashtbl.find_opt t.variant_chains (key, variant) with
  | Some ((_, v) :: _) -> Some v
  | Some [] | None -> None

let variants t ~key =
  Hashtbl.fold
    (fun (k, name) _ acc -> if k = key then name :: acc else acc)
    t.variant_chains []
  |> List.sort_uniq String.compare

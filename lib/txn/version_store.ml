module Obs = Hyper_obs.Obs
module Sync = Hyper_util.Sync

let m_snapshots =
  Obs.Counter.make "hyper_mvcc_snapshots_total"
    ~help:"snapshot read views and read-write transactions opened"

let m_commits =
  Obs.Counter.make "hyper_mvcc_commits_total"
    ~help:"MVCC commits that passed first-committer-wins validation"

let m_conflicts =
  Obs.Counter.make "hyper_mvcc_conflicts_total"
    ~help:"MVCC commits aborted by first-committer-wins validation"

let m_gc_pruned =
  Obs.Counter.make "hyper_mvcc_gc_pruned_total"
    ~help:"versions dropped below the oldest-active-snapshot watermark"

let h_chain_len =
  Obs.Histogram.make "hyper_mvcc_chain_length"
    ~help:"version-chain length at install time"

type 'a t = {
  mutex : Sync.Mutex.t;
  mutable clock : int;
  chains : (int, (int * 'a) list) Hashtbl.t; (* newest first *)
  variant_chains : (int * string, (int * 'a) list) Hashtbl.t;
  active : (int, int) Hashtbl.t; (* pin id -> read_ts *)
  mutable next_pin : int;
  retain : int;
  gc_every : int;
  mutable installs_since_gc : int;
}

let create ?(retain = 8) ?(gc_every = 256) () =
  if retain < 1 then invalid_arg "Version_store.create: retain < 1";
  if gc_every < 0 then invalid_arg "Version_store.create: gc_every < 0";
  { mutex = Sync.Mutex.create ~rank:20 "txn.version_store";
    clock = 0; chains = Hashtbl.create 256;
    variant_chains = Hashtbl.create 16; active = Hashtbl.create 16;
    next_pin = 1; retain; gc_every; installs_since_gc = 0 }

let with_lock t f = Sync.Mutex.with_lock t.mutex f

let now t = with_lock t (fun () -> t.clock)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* --- GC (called with the mutex held) --- *)

let watermark_locked t =
  Hashtbl.fold (fun _ ts acc -> min ts acc) t.active t.clock

(* Keep every version newer than the watermark, the newest one
   at-or-below it (the image a watermark-aged snapshot reads), and at
   least [retain] newest versions overall so the R5 history operations
   keep working after churn. *)
let prune_chain ~retain ~wm chain =
  let rec split kept n = function
    | [] -> (List.rev kept, [])
    | (ts, _) :: _ as tail when ts <= wm ->
      (* [tail]'s head is the watermark image; keep it plus enough of
         the tail to satisfy the retain floor. *)
      let keep_tail = max 1 (retain - n) in
      let rec take k = function
        | [] -> []
        | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
      in
      (List.rev kept, take keep_tail tail)
    | v :: rest -> split (v :: kept) (n + 1) rest
  in
  let newer, tail = split [] 0 chain in
  newer @ tail

let gc_locked t =
  let wm = watermark_locked t in
  let pruned = ref 0 in
  let prune_tbl tbl =
    (* Sorted replacement order: GC effects are reproducible run to
       run, not hash-bucket order. *)
    let replacements =
      List.sort
        (fun (a, _) (b, _) -> Stdlib.compare a b)
        (Hashtbl.fold
           (fun key chain acc ->
             let kept = prune_chain ~retain:t.retain ~wm chain in
             let dropped = List.length chain - List.length kept in
             if dropped > 0 then begin
               pruned := !pruned + dropped;
               (key, kept) :: acc
             end
             else acc)
           tbl [])
    in
    List.iter (fun (key, kept) -> Hashtbl.replace tbl key kept) replacements
  in
  prune_tbl t.chains;
  prune_tbl t.variant_chains;
  t.installs_since_gc <- 0;
  if !pruned > 0 then Obs.Counter.add m_gc_pruned !pruned;
  !pruned

let note_install t chain_len =
  if Obs.enabled () then
    Obs.Histogram.observe h_chain_len (float_of_int chain_len);
  t.installs_since_gc <- t.installs_since_gc + 1;
  if t.gc_every > 0 && t.installs_since_gc >= t.gc_every then
    ignore (gc_locked t : int)

let gc t = with_lock t (fun () -> gc_locked t)

let watermark t = with_lock t (fun () -> watermark_locked t)

(* --- R5 chain operations --- *)

let put t ~key v =
  with_lock t (fun () ->
      let ts = tick t in
      let chain = Option.value ~default:[] (Hashtbl.find_opt t.chains key) in
      Hashtbl.replace t.chains key ((ts, v) :: chain);
      note_install t (List.length chain + 1);
      ts)

let chain_of t ~key =
  with_lock t (fun () ->
      Option.value ~default:[] (Hashtbl.find_opt t.chains key))

let latest t ~key =
  match chain_of t ~key with (_, v) :: _ -> Some v | [] -> None

let previous t ~key =
  match chain_of t ~key with _ :: (_, v) :: _ -> Some v | _ -> None

let find_as_of chain time =
  let rec find = function
    | [] -> None
    | (ts, v) :: rest -> if ts <= time then Some v else find rest
  in
  find chain

let as_of t ~key ~time = find_as_of (chain_of t ~key) time

let version_count t ~key = List.length (chain_of t ~key)

let history t ~key = chain_of t ~key

let keys t =
  with_lock t (fun () ->
      List.sort Int.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) t.chains []))

(* --- variants --- *)

let put_variant t ~key ~variant v =
  with_lock t (fun () ->
      let ts = tick t in
      let k = (key, variant) in
      let chain =
        Option.value ~default:[] (Hashtbl.find_opt t.variant_chains k)
      in
      Hashtbl.replace t.variant_chains k ((ts, v) :: chain);
      note_install t (List.length chain + 1);
      ts)

let latest_variant t ~key ~variant =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.variant_chains (key, variant) with
      | Some ((_, v) :: _) -> Some v
      | Some [] | None -> None)

let variants t ~key =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun (k, name) _ acc -> if Int.equal k key then name :: acc else acc)
        t.variant_chains [])
  |> List.sort_uniq String.compare

(* --- pins (snapshots and read-write transactions) --- *)

let pin_locked t =
  let id = t.next_pin in
  t.next_pin <- id + 1;
  Hashtbl.replace t.active id t.clock;
  Obs.Counter.incr m_snapshots;
  (id, t.clock)

let unpin t id = with_lock t (fun () -> Hashtbl.remove t.active id)

let active_snapshots t = with_lock t (fun () -> Hashtbl.length t.active)

type 'a snapshot = {
  s_store : 'a t;
  s_id : int;
  s_ts : int;
  mutable s_released : bool;
}

let begin_snapshot t =
  let id, ts = with_lock t (fun () -> pin_locked t) in
  { s_store = t; s_id = id; s_ts = ts; s_released = false }

let snapshot_ts s = s.s_ts

let snapshot_get s ~key =
  if s.s_released then invalid_arg "Version_store: snapshot released";
  (* One brief lock to fetch the chain head; the traversal below walks
     an immutable list and cannot observe or block a concurrent
     commit. *)
  find_as_of (chain_of s.s_store ~key) s.s_ts

let release s =
  if not s.s_released then begin
    s.s_released <- true;
    unpin s.s_store s.s_id
  end

(* --- first-committer-wins commit --- *)

type commit_result = Committed of int | Conflict of int list

let newest_ts chain = match chain with (ts, _) :: _ -> ts | [] -> 0

let commit_writes_locked t ~read_ts writes =
  let conflicts =
    List.filter_map
      (fun (key, _) ->
        let chain =
          Option.value ~default:[] (Hashtbl.find_opt t.chains key)
        in
        if newest_ts chain > read_ts then Some key else None)
      writes
  in
  if conflicts <> [] then begin
    Obs.Counter.incr m_conflicts;
    Conflict (List.sort_uniq Int.compare conflicts)
  end
  else begin
    let ts = if writes = [] then t.clock else tick t in
    List.iter
      (fun (key, v) ->
        let chain =
          Option.value ~default:[] (Hashtbl.find_opt t.chains key)
        in
        Hashtbl.replace t.chains key ((ts, v) :: chain);
        note_install t (List.length chain + 1))
      writes;
    Obs.Counter.incr m_commits;
    Committed ts
  end

let commit_keys t ~read_ts writes =
  with_lock t (fun () -> commit_writes_locked t ~read_ts writes)

type 'a txn = {
  t_store : 'a t;
  t_id : int;
  t_ts : int;
  t_writes : (int, 'a) Hashtbl.t;
  mutable t_finished : bool;
}

let begin_rw t =
  let id, ts = with_lock t (fun () -> pin_locked t) in
  { t_store = t; t_id = id; t_ts = ts; t_writes = Hashtbl.create 16;
    t_finished = false }

let txn_ts txn = txn.t_ts

let check_open txn =
  if txn.t_finished then invalid_arg "Version_store: transaction finished"

let txn_get txn ~key =
  check_open txn;
  match Hashtbl.find_opt txn.t_writes key with
  | Some v -> Some v
  | None -> find_as_of (chain_of txn.t_store ~key) txn.t_ts

let txn_put txn ~key v =
  check_open txn;
  Hashtbl.replace txn.t_writes key v

let txn_write_set txn =
  List.sort Int.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) txn.t_writes [])

let commit txn =
  check_open txn;
  let writes =
    List.map
      (fun key -> (key, Hashtbl.find txn.t_writes key))
      (txn_write_set txn)
  in
  txn.t_finished <- true;
  with_lock txn.t_store (fun () ->
      Hashtbl.remove txn.t_store.active txn.t_id;
      commit_writes_locked txn.t_store ~read_ts:txn.t_ts writes)

let abort_rw txn =
  if not txn.t_finished then begin
    txn.t_finished <- true;
    Hashtbl.reset txn.t_writes;
    unpin txn.t_store txn.t_id
  end

let total_versions t =
  with_lock t (fun () ->
      let count tbl =
        Hashtbl.fold (fun _ chain acc -> acc + List.length chain) tbl 0
      in
      count t.chains + count t.variant_chains)

module Obs = Hyper_obs.Obs
module Sync = Hyper_util.Sync

let m_occ_commits =
  Obs.Counter.make "hyper_txn_occ_commits_total"
    ~help:"OCC transactions that validated and committed"

let m_occ_aborts =
  Obs.Counter.make "hyper_txn_occ_aborts_total"
    ~help:"OCC transactions that failed validation or were aborted"

type t = {
  mutex : Sync.Mutex.t;
  versions : (int, int) Hashtbl.t; (* resource -> commit counter value *)
  mutable committed : int;
  mutable aborted : int;
}

type txn = {
  owner : t;
  reads : (int, int) Hashtbl.t; (* resource -> version observed *)
  writes : (int, unit) Hashtbl.t;
  mutable finished : bool;
}

let create () =
  { mutex = Sync.Mutex.create ~rank:20 "txn.occ"; versions = Hashtbl.create 256;
    committed = 0; aborted = 0 }

let begin_txn t =
  { owner = t; reads = Hashtbl.create 16; writes = Hashtbl.create 16;
    finished = false }

let version_of t r = Option.value ~default:0 (Hashtbl.find_opt t.versions r)

let note_read txn r =
  if txn.finished then invalid_arg "Occ: transaction already finished";
  if not (Hashtbl.mem txn.reads r) then begin
    let t = txn.owner in
    Sync.Mutex.lock t.mutex;
    let v = version_of t r in
    Sync.Mutex.unlock t.mutex;
    Hashtbl.add txn.reads r v
  end

let note_write txn r =
  note_read txn r;
  Hashtbl.replace txn.writes r ()

let commit txn =
  if txn.finished then invalid_arg "Occ: transaction already finished";
  txn.finished <- true;
  let t = txn.owner in
  Sync.Mutex.lock t.mutex;
  let valid =
    Hashtbl.fold
      (fun r v ok -> ok && version_of t r = v)
      txn.reads true
  in
  if valid then begin
    Hashtbl.iter
      (fun r () -> Hashtbl.replace t.versions r (version_of t r + 1))
      txn.writes;
    t.committed <- t.committed + 1;
    Obs.Counter.incr m_occ_commits
  end
  else begin
    t.aborted <- t.aborted + 1;
    Obs.Counter.incr m_occ_aborts
  end;
  Sync.Mutex.unlock t.mutex;
  valid

let abort txn =
  if not txn.finished then begin
    txn.finished <- true;
    let t = txn.owner in
    Sync.Mutex.lock t.mutex;
    t.aborted <- t.aborted + 1;
    Obs.Counter.incr m_occ_aborts;
    Sync.Mutex.unlock t.mutex
  end

let committed_count t = t.committed
let aborted_count t = t.aborted

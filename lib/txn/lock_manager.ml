module Obs = Hyper_obs.Obs
module Sync = Hyper_util.Sync

let m_lock_waits =
  Obs.Counter.make "hyper_txn_lock_waits_total"
    ~help:"lock acquisitions that had to wait at least one poll"

let m_lock_timeouts =
  Obs.Counter.make "hyper_txn_lock_timeouts_total"
    ~help:"lock acquisitions that gave up at the deadline"

let h_lock_wait_ns =
  Obs.Histogram.make "hyper_txn_lock_wait_ns"
    ~help:"time spent waiting for contended locks (granted waits only)"

type mode = Shared | Exclusive

exception Timeout of { txn : int; resource : int }

type entry = { mutable holders : (int * mode) list }

type t = {
  mutex : Sync.Mutex.t;
  changed : Sync.Condition.t;
  table : (int, entry) Hashtbl.t;
  timeout_s : float;
}

let create ?(timeout_ms = 200.0) () =
  { mutex = Sync.Mutex.create ~rank:20 "txn.lock_manager";
    changed = Sync.Condition.create ();
    table = Hashtbl.create 256; timeout_s = timeout_ms /. 1000.0 }

let entry_for t resource =
  match Hashtbl.find_opt t.table resource with
  | Some e -> e
  | None ->
    let e = { holders = [] } in
    Hashtbl.add t.table resource e;
    e

(* Whether [txn] may take [mode] given current holders. *)
let compatible e ~txn mode =
  match mode with
  | Shared ->
    List.for_all (fun (o, m) -> o = txn || m = Shared) e.holders
  | Exclusive -> List.for_all (fun (o, _) -> o = txn) e.holders

let grant e ~txn mode =
  let others = List.remove_assoc txn e.holders in
  let current = List.assoc_opt txn e.holders in
  let mode =
    match (current, mode) with
    | Some Exclusive, _ -> Exclusive (* never downgrade *)
    | _, m -> m
  in
  e.holders <- (txn, mode) :: others

let locked f t = Sync.Mutex.with_lock t.mutex f

let try_acquire t ~txn ~resource mode =
  locked
    (fun () ->
      let e = entry_for t resource in
      if compatible e ~txn mode then begin
        grant e ~txn mode;
        true
      end
      else false)
    t

let acquire t ~txn ~resource mode =
  Sync.Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Sync.Mutex.unlock t.mutex)
    (fun () ->
      (* Monotonic deadline: an NTP step stepping the wall clock must
         neither stretch nor cut short the lock timeout. *)
      let start = Hyper_util.Mtime_stub.now_ns () in
      let deadline =
        Int64.add start (Int64.of_float (t.timeout_s *. 1e9))
      in
      let waited = ref false in
      (* The entry must be re-fetched on every iteration: [release_all]
         drops empty entries from the table, so a cached record can be an
         orphan that a fresh acquirer no longer shares. *)
      let rec wait () =
        let e = entry_for t resource in
        if compatible e ~txn mode then begin
          grant e ~txn mode;
          if !waited then
            Obs.Histogram.observe h_lock_wait_ns
              (Int64.to_float
                 (Int64.sub (Hyper_util.Mtime_stub.now_ns ()) start))
        end
        else begin
          if not !waited then begin
            waited := true;
            Obs.Counter.incr m_lock_waits
          end;
          if Int64.compare (Hyper_util.Mtime_stub.now_ns ()) deadline >= 0
          then begin
            Obs.Counter.incr m_lock_timeouts;
            raise (Timeout { txn; resource })
          end;
          (* Condition.wait has no timeout in the stdlib; poll with short
             sleeps outside the mutex instead.  The lint waivers below
             cover the same false positive twice: [wait]'s summary says
             "blocks" because of this delay, but the delay only ever runs
             in the unlock/delay/lock window — never with the mutex
             held. *)
          Sync.Mutex.unlock t.mutex;
          Thread.delay 0.001;
          Sync.Mutex.lock t.mutex;
          (wait ()
          [@lint.allow
            "no-blocking-under-mutex: wait's delay runs in its \
             unlock/delay/lock poll window, not under the mutex"])
        end
      in
      (wait ()
      [@lint.allow
        "no-blocking-under-mutex: wait's delay runs in its \
         unlock/delay/lock poll window, not under the mutex"]))

let release_all t ~txn =
  locked
    (fun () ->
      let emptied = ref [] in
      (* Collection order is irrelevant: every entry is removed below. *)
      (Hashtbl.iter
         (fun resource e ->
           e.holders <- List.remove_assoc txn e.holders;
           if e.holders = [] then emptied := resource :: !emptied)
         t.table
       [@lint.allow "deterministic-iteration"]);
      List.iter (Hashtbl.remove t.table) !emptied;
      Sync.Condition.broadcast t.changed)
    t

let holds t ~txn ~resource =
  locked
    (fun () ->
      match Hashtbl.find_opt t.table resource with
      | None -> None
      | Some e -> List.assoc_opt txn e.holders)
    t

let locked_resources t ~txn =
  locked
    (fun () ->
      List.sort Int.compare
        (Hashtbl.fold
           (fun resource e acc ->
             if List.mem_assoc txn e.holders then resource :: acc else acc)
           t.table []))
    t

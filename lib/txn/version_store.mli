(** Multi-version object store: R5 versions/variants plus real
    snapshot-isolation MVCC.

    One store keeps a timestamped, newest-first version chain per key on
    a global commit clock.  Two client styles share the chains:

    - The paper's extension operations (R5): {!put} appends a committed
      version directly, {!previous} retrieves the version before the
      latest, {!as_of} reconstructs a value as it was at a time-point,
      and named {!put_variant} branches model parallel development.
    - MVCC transactions: {!begin_snapshot} captures a consistent read
      timestamp; snapshot reads resolve against the immutable chains
      without taking any lock-manager locks (readers never block
      writers, writers never block readers).  {!begin_rw} starts a
      read-write transaction whose writes are buffered privately and
      installed atomically at {!commit} under first-committer-wins
      conflict detection — the snapshot-isolation rule: the commit
      aborts iff some written key has a committed version newer than
      the transaction's read timestamp.

    Garbage collection prunes chain tails below the oldest-active
    read-timestamp watermark, so chains stay bounded under sustained
    updates while live snapshots keep every version they can see.
    Pruning runs automatically every [gc_every] installs and keeps at
    least [retain] newest versions per chain so the R5 history
    operations ({!previous}, recent {!as_of}) remain useful.

    Thread-safe: every structural mutation happens under one internal
    {!Hyper_util.Sync.Mutex} (rank 20); reads fetch the chain head
    under it and traverse the immutable chain outside it. *)

type 'a t

val create : ?retain:int -> ?gc_every:int -> unit -> 'a t
(** [retain] (default 8) is the minimum number of newest versions GC
    keeps per chain regardless of the watermark; [gc_every] (default
    256, [0] = never automatically) is how many version installs happen
    between automatic GC passes. *)

val now : 'a t -> int
(** Current logical commit time (advances on every install). *)

val put : 'a t -> key:int -> 'a -> int
(** Append a new committed version directly (the R5 auto-commit path);
    returns its timestamp. *)

val latest : 'a t -> key:int -> 'a option

val previous : 'a t -> key:int -> 'a option
(** The version immediately before the latest one. *)

val as_of : 'a t -> key:int -> time:int -> 'a option
(** The newest version with timestamp <= [time] — the boundary is
    inclusive, so a snapshot taken at [now t] sees exactly the puts
    that returned a timestamp <= that value. *)

val version_count : 'a t -> key:int -> int

val history : 'a t -> key:int -> (int * 'a) list
(** All versions, newest first, as (timestamp, value). *)

val keys : 'a t -> int list
(** Keys with at least one version, sorted. *)

(** {2 Variants} *)

val put_variant : 'a t -> key:int -> variant:string -> 'a -> int
(** Record a value on a named parallel branch of [key]. *)

val latest_variant : 'a t -> key:int -> variant:string -> 'a option

val variants : 'a t -> key:int -> string list
(** Names of branches that exist for [key] (sorted). *)

(** {2 Snapshot reads} *)

type 'a snapshot
(** A consistent read-only view pinned at one commit timestamp.  Until
    {!release}, GC keeps every version the snapshot can see. *)

val begin_snapshot : 'a t -> 'a snapshot

val snapshot_ts : 'a snapshot -> int

val snapshot_get : 'a snapshot -> key:int -> 'a option
(** The value of [key] as of the snapshot's read timestamp: the newest
    version with ts <= {!snapshot_ts}.  Lock-free over the immutable
    chain; never blocks on or is blocked by writers.
    @raise Invalid_argument after {!release}. *)

val release : 'a snapshot -> unit
(** Unpin the snapshot from the GC watermark.  Idempotent. *)

val active_snapshots : 'a t -> int
(** Live (unreleased) snapshots and read-write transactions. *)

(** {2 Read-write transactions (snapshot isolation)} *)

type 'a txn

type commit_result =
  | Committed of int  (** the commit timestamp all writes carry *)
  | Conflict of int list
      (** first-committer-wins: keys with a committed version newer
          than the transaction's read timestamp (sorted) *)

val begin_rw : 'a t -> 'a txn
(** Start a transaction reading at the current commit time. *)

val txn_ts : 'a txn -> int
(** The transaction's read timestamp. *)

val txn_get : 'a txn -> key:int -> 'a option
(** The transaction's own buffered write when present, otherwise the
    committed value as of the read timestamp.
    @raise Invalid_argument after {!commit}/{!abort_rw}. *)

val txn_put : 'a txn -> key:int -> 'a -> unit
(** Buffer a write; invisible to every other snapshot or transaction
    until {!commit}.
    @raise Invalid_argument after {!commit}/{!abort_rw}. *)

val txn_write_set : 'a txn -> int list
(** Keys written so far, sorted. *)

val commit : 'a txn -> commit_result
(** Validate first-committer-wins and, on success, install every
    buffered write atomically at one fresh commit timestamp.  Either
    way the transaction is finished and unpinned from GC.
    @raise Invalid_argument when already finished. *)

val abort_rw : 'a txn -> unit
(** Drop the buffered writes and unpin.  Idempotent. *)

val commit_keys : 'a t -> read_ts:int -> (int * 'a) list -> commit_result
(** The bare commit primitive behind {!commit}: first-committer-wins
    validation of the writes against [read_ts], atomic install at one
    fresh timestamp.  Used by {!Workspace} to publish an overlay
    checked out at [read_ts]. *)

(** {2 Garbage collection} *)

val watermark : 'a t -> int
(** The oldest read timestamp any live snapshot or transaction can
    demand: [min] over active pins, or {!now} when none are live. *)

val gc : 'a t -> int
(** Prune chain tails invisible below the watermark (keeping the
    newest version at-or-below it, and at least [retain] versions per
    chain).  Returns the number of versions dropped.  Also runs
    automatically every [gc_every] installs. *)

val total_versions : 'a t -> int
(** Versions across all chains (variants included) — the quantity GC
    bounds. *)

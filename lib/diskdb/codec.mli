(** Binary codec for node records in the disk backend.

    A node is stored as one heap record holding its scalar attributes,
    all relationship lists (children in sequence order, parts, partOf,
    refsTo, refsFrom), dynamically added attributes (R4) and the typed
    payload (text string or serialised bitmap).  Storing relationships
    inline with the node is the classic OODB layout the paper's systems
    used; it is what makes clustering along the 1-N hierarchy effective.

    The decoded record is mutable: read → mutate → encode → update is the
    backend's write path. *)

type node = {
  doc : int;
  unique_id : int;
  kind : Hyper_core.Schema.kind;
  mutable ten : int;
  mutable hundred : int; (** may briefly leave 1..100 via op 12 *)
  mutable million : int;
  mutable parent : int; (** 0 = none *)
  mutable children : int array;
  mutable parts : int array;
  mutable part_of : int array;
  mutable refs_to : Hyper_core.Schema.link array;
  mutable refs_from : Hyper_core.Schema.link array;
  mutable dyn : (string * int) list;
  mutable text : string; (** meaningful for Text nodes *)
  mutable form : bytes; (** serialised {!Hyper_util.Bitmap}, or empty *)
}

val of_spec : Hyper_core.Schema.node_spec -> node

val encode : node -> bytes

val decode : bytes -> node
(** @raise Invalid_argument on a corrupt record. *)

val decode_at : bytes -> off:int -> len:int -> node
(** Decode the record occupying [off, off+len) of [data] in place —
    e.g. directly from a pinned page buffer via
    {!Hyper_storage.Heap.read_with}, without extracting it first.  The
    decoded node shares nothing with [data] (strings and payloads are
    copied out), so it stays valid after the buffer is unpinned.
    @raise Invalid_argument on a corrupt record or a range outside the
    buffer. *)

val encoded_size : node -> int

val encode_oid_list : int list -> bytes
(** Closure result lists (the paper requires them to be storable). *)

val decode_oid_list : bytes -> int list

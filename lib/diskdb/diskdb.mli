(** Disk-based object database — the GemStone/Vbase analogue.

    Architecture: a page file accessed through an LRU buffer pool; node
    records in a slotted-page heap with overflow chains; a persistent
    object table mapping OIDs to relocatable records; B+tree indexes on
    uniqueId, hundred and million; a write-ahead log with before/after
    page images giving atomic commit, abort and crash recovery (R10);
    optional physical clustering along the 1-N hierarchy (§5.2); and an
    optional simulated workstation/server channel (R6) that charges
    network and server-disk latency to the virtual clock on every page
    transfer.

    Cold runs (after [clear_caches]) fault pages in from the file or the
    simulated server; warm runs hit the buffer pool — exactly the
    cold/warm structure of the paper's protocol. *)

type remote = Hyper_net.Channel.profile = {
  network : Hyper_net.Latency_model.t;
  server_disk : Hyper_net.Latency_model.t;
  server_cache_pages : int;
}

type config = {
  path : string; (** data file; the WAL lives at [path ^ ".wal"] *)
  pool_pages : int; (** client buffer-pool capacity *)
  durable_sync : bool; (** fsync the WAL at commit *)
  group_commit : Hyper_storage.Group_commit.config option;
      (** batch concurrent committers' WAL fsyncs through one
          {!Hyper_storage.Group_commit} scheduler.  Only meaningful
          together with [durable_sync]; see
          {!Hyper_storage.Engine.open_}.  Commits still fsync before
          returning — a caller that wants to overlap the wait takes the
          engine's commit ticket directly
          ({!Hyper_storage.Engine.commit_ticket}). *)
  checkpoint_wal_bytes : int; (** checkpoint threshold *)
  remote : remote option; (** workstation/server simulation *)
  object_cache : int;
      (** capacity of the decoded-object (check-out) cache; 0 disables.
          The paper's R7 cites ECKL87: interactive applications need
          100–10 000 objects/second, so "parts of the database have to
          be cached/checked-out to main memory in the workstations".
          With the cache on, warm-run attribute access skips the object
          table, the buffer pool and record decoding entirely. *)
  uid_hash_index : bool;
      (** maintain a linear-hash access path on (doc, uniqueId) alongside
          the B+tree; [lookup_unique] (op 01) then probes the hash — the
          access-method ablation of bench §T5 *)
  prefetch : bool;
      (** traversal prefetch: closure operations (via
          [prefetch_nodes]) batch-fetch the heap pages of the nodes
          they are about to visit through
          {!Hyper_storage.Buffer_pool.prefetch}.  On a remote channel a
          batch costs one round trip (group transfer) instead of one
          per page — the page-at-a-time vs. group-fetch axis of the
          paper's Vbase/GemStone discussion.  Off by default so the
          baseline measurements keep page-at-a-time behaviour. *)
  vfs : Hyper_storage.Vfs.t option;
      (** the VFS all storage I/O (data file, [.sum] checksum sidecar,
          WAL) flows through; [None] = real files.  Supplying
          [Some (Vfs.Faulty.vfs env)] runs the whole store over the
          deterministic fault-injecting VFS — crashes, torn writes,
          lying fsync, typed I/O errors — for durability testing. *)
}

val default_config : path:string -> config
(** 2048-page pool (8 MiB), no fsync (simulated durability cost instead),
    64 MiB checkpoint threshold, local disk, object cache off, traversal
    prefetch off. *)

val remote_1988 : remote
(** 10 Mbit/s LAN + late-80s server disk, 1024-page server cache. *)

include Hyper_core.Backend.S

val open_db : config -> t
(** Open or create; runs crash recovery from the WAL when needed. *)

val close : t -> unit
(** Checkpoint and close.  @raise Invalid_argument inside a transaction. *)

val checkpoint : t -> unit
(** Force all committed state into the data file and truncate the WAL. *)

val last_recovery : t -> Hyper_storage.Recovery.report option
(** The report of the recovery pass performed by [open_db], if any. *)

val read_only : t -> bool
(** Whether the store degraded to read-only because the WAL could not be
    appended (e.g. [ENOSPC]).  Committed data remains readable; mutating
    operations raise {!Hyper_storage.Storage_error.Error} [Read_only]. *)

val engine : t -> Hyper_storage.Engine.t
(** The underlying transactional engine — the attachment point for
    replication ([Hyper_repl.Cluster.create]) and other layers that
    need the WAL stream or commit hooks. *)

type io_counters = {
  pager_reads : int;
  pager_writes : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  pool_prefetches : int;
      (** pages fetched by prefetch batches (not counted as misses) *)
  round_trips : int; (** 0 when local; a batched fetch counts once *)
  batched_round_trips : int;
      (** the subset of [round_trips] that were group fetches *)
  server_hits : int;
  server_misses : int;
  wal_bytes : int;
  object_hits : int; (** decoded-object cache hits (0 when disabled) *)
  object_misses : int;
}

val io_counters : t -> io_counters

val file_bytes : t -> int
(** Current size of the data file (experiment T1). *)

val stored_result_count : t -> int

val stored_result : t -> int -> Hyper_core.Oid.t list
(** [stored_result t i]: the i-th stored closure list (0-based). *)

val collect_garbage : t -> int
(** Mark-and-sweep collection of unreachable pages (R10: "garbage
    collection of non-referenced objects").  Aborted transactions that
    extended the file leave orphan pages; this returns them to the free
    list and reports how many were reclaimed.  Runs in its own
    transaction.  @raise Invalid_argument inside a transaction. *)

open Hyper_storage
module Btree = Hyper_index.Btree
module Hash_index = Hyper_index.Hash_index
module Schema = Hyper_core.Schema
module Oid = Hyper_core.Oid
module Bitmap = Hyper_util.Bitmap

type remote = Hyper_net.Channel.profile = {
  network : Hyper_net.Latency_model.t;
  server_disk : Hyper_net.Latency_model.t;
  server_cache_pages : int;
}

type config = {
  path : string;
  pool_pages : int;
  durable_sync : bool;
  group_commit : Group_commit.config option;
      (* batch concurrent committers' fsyncs; only meaningful together
         with durable_sync (see Engine.open_) *)
  checkpoint_wal_bytes : int;
  remote : remote option;
  object_cache : int;
      (* decoded-object cache capacity; 0 disables (ECKL87 check-out
         caching — see mli) *)
  uid_hash_index : bool;
      (* maintain a linear-hash access path on (doc, uniqueId) in
         addition to the B+tree; nameLookup then probes the hash *)
  prefetch : bool;
      (* traversal prefetch: closure operations batch-fetch the heap
         pages of the nodes they are about to visit (one group transfer
         on a remote channel instead of one round trip per page) *)
  vfs : Vfs.t option;
      (* storage VFS; None = real files.  Some (Vfs.Faulty.vfs env)
         runs the whole store over the fault-injecting VFS *)
}

let default_config ~path =
  { path; pool_pages = 2048; durable_sync = false; group_commit = None;
    checkpoint_wal_bytes = 64 * 1024 * 1024; remote = None;
    object_cache = 0; uid_hash_index = false; prefetch = false; vfs = None }

let remote_1988 = Hyper_net.Channel.profile_1988

type t = {
  engine : Engine.t;
  pool : Buffer_pool.t;
  channel : Hyper_net.Channel.t option;
  prefetch_enabled : bool;
  object_cache_capacity : int;
  object_cache : (int, Codec.node) Hyper_util.Lru.t; (* capacity >= 1 always *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable freelist : Freelist.t;
  mutable heap : Heap.t;
  mutable results_heap : Heap.t;
  mutable objtab : Object_table.t;
  mutable idx_uid : Btree.t;
  mutable idx_uid_hash : Hash_index.t option;
  mutable idx_hundred : Btree.t;
  mutable idx_million : Btree.t;
  doc_counts : (int, int) Hashtbl.t;
  mutable result_seq : int;
  (* rid of every stored result list, in store order — rebuilt lazily
     ([result_len = -1]) by one cheap rid scan; appended to on store *)
  mutable result_rids : Heap.rid array;
  mutable result_len : int;
}

let name = "diskdb"

let description = "page-server OODB: buffer pool, object table, WAL, B+trees"

(* --- index key packing: doc-scoped attribute values ---
   key = doc * 2^44 + (value + 2^21); monotonic in value for a fixed doc,
   tolerant of the small negative hundred values op 12 can produce. *)

let key_shift = 1 lsl 44
let value_bias = 1 lsl 21
let pack_key ~doc v = (doc * key_shift) + v + value_bias

(* --- meta root bookkeeping --- *)

let doc_key doc = Printf.sprintf "doc_%d" doc

let save_roots t =
  let kvs =
    [ ("freelist", Int64.of_int (Freelist.head t.freelist));
      ("heap", Int64.of_int (Heap.first_page t.heap));
      ("results", Int64.of_int (Heap.first_page t.results_heap));
      ("objtab", Int64.of_int (Object_table.head t.objtab));
      ("idx_uid", Int64.of_int (Btree.root t.idx_uid));
      ( "idx_uid_hash",
        Int64.of_int
          (match t.idx_uid_hash with
          | Some h -> Hash_index.header h
          | None -> 0) );
      ("idx_hundred", Int64.of_int (Btree.root t.idx_hundred));
      ("idx_million", Int64.of_int (Btree.root t.idx_million));
      ("result_seq", Int64.of_int t.result_seq) ]
    @ List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold
           (fun doc count acc -> (doc_key doc, Int64.of_int count) :: acc)
           t.doc_counts [])
  in
  Meta.store t.pool kvs

type attached = {
  a_freelist : Freelist.t;
  a_heap : Heap.t;
  a_results : Heap.t;
  a_objtab : Object_table.t;
  a_uid : Btree.t;
  a_uid_hash : Hash_index.t option;
  a_hundred : Btree.t;
  a_million : Btree.t;
  a_result_seq : int;
  a_docs : (int * int) list;
}

let attach_all pool =
  let kvs = Meta.load pool in
  let geti key = Int64.to_int (List.assoc key kvs) in
  let freelist = Freelist.attach pool ~head:(geti "freelist") in
  { a_freelist = freelist;
    a_heap = Heap.attach pool freelist ~head:(geti "heap");
    a_results = Heap.attach pool freelist ~head:(geti "results");
    a_objtab = Object_table.attach pool freelist ~head:(geti "objtab");
    a_uid = Btree.attach pool freelist ~root:(geti "idx_uid");
    a_uid_hash =
      (match List.assoc_opt "idx_uid_hash" kvs with
      | Some h when Int64.to_int h <> 0 ->
        Some (Hash_index.attach pool freelist ~header:(Int64.to_int h))
      | Some _ | None -> None);
    a_hundred = Btree.attach pool freelist ~root:(geti "idx_hundred");
    a_million = Btree.attach pool freelist ~root:(geti "idx_million");
    a_result_seq = geti "result_seq";
    a_docs =
      List.filter_map
        (fun (k, v) ->
          if String.length k > 4 && String.sub k 0 4 = "doc_" then
            Option.map
              (fun doc -> (doc, Int64.to_int v))
              (int_of_string_opt (String.sub k 4 (String.length k - 4)))
          else None)
        kvs }

let load_roots t =
  let a = attach_all t.pool in
  t.freelist <- a.a_freelist;
  t.heap <- a.a_heap;
  t.results_heap <- a.a_results;
  t.objtab <- a.a_objtab;
  t.idx_uid <- a.a_uid;
  t.idx_uid_hash <- a.a_uid_hash;
  t.idx_hundred <- a.a_hundred;
  t.idx_million <- a.a_million;
  t.result_seq <- a.a_result_seq;
  Hashtbl.reset t.doc_counts;
  List.iter (fun (doc, n) -> Hashtbl.replace t.doc_counts doc n) a.a_docs

(* --- transactions --- *)

let begin_txn t = Engine.begin_txn t.engine
let commit t = Engine.commit t.engine
let abort t = Engine.abort t.engine
let require_txn t = Engine.require_txn t.engine

(* --- open / close --- *)

let open_db config =
  let engine =
    Engine.open_ ?vfs:config.vfs ~path:config.path
      ~pool_pages:config.pool_pages ~durable_sync:config.durable_sync
      ?group_commit:config.group_commit
      ~checkpoint_wal_bytes:config.checkpoint_wal_bytes ()
  in
  let pool = Engine.pool engine in
  let channel =
    Option.map
      (fun profile ->
        Hyper_net.Channel.attach_profile profile (Engine.pager engine))
      config.remote
  in
  let t =
    (* Fresh also covers a file left behind by a crash during a previous
       formatting attempt: formatting is not WAL-covered, so its commit
       point is the meta magic on page 0 (probed unverified — the crash
       may have torn the page or its checksum). *)
    if not (Meta.is_formatted pool) then begin
      let pager = Engine.pager engine in
      (* Scrub leftover half-formatted pages: their contents are garbage
         and their checksums may be torn; rewriting restores both. *)
      for id = 0 to Pager.page_count pager - 1 do
        Pager.write pager id (Page.alloc ())
      done;
      if Pager.page_count pager = 0 then begin
        let page0 = Buffer_pool.allocate pool in
        assert (page0 = 0)
      end;
      Meta.format pool;
      let freelist = Freelist.attach pool ~head:0 in
      let heap = Heap.fresh pool freelist in
      let results_heap = Heap.fresh pool freelist in
      let t =
        { engine; pool; channel; prefetch_enabled = config.prefetch;
          object_cache_capacity = config.object_cache;
          object_cache =
            Hyper_util.Lru.create ~capacity:(max 1 config.object_cache) ();
          cache_hits = 0;
          cache_misses = 0; freelist; heap; results_heap;
          objtab = Object_table.fresh pool freelist;
          idx_uid = Btree.create pool freelist;
          idx_uid_hash =
            (if config.uid_hash_index then
               Some (Hash_index.create pool freelist)
             else None);
          idx_hundred = Btree.create pool freelist;
          idx_million = Btree.create pool freelist;
          doc_counts = Hashtbl.create 4; result_seq = 0;
          result_rids = [||]; result_len = 0 }
      in
      save_roots t;
      (* Two-phase flush: none of this is WAL-covered, so the meta magic
         must not reach disk before every other format page is durable.
         Flush and sync the store with the magic concealed, then stamp
         it and flush page 0 alone — a crash anywhere in between leaves
         a store that [Meta.is_formatted] classifies as unformatted and
         the next open reformats from scratch. *)
      Meta.conceal_magic pool;
      Buffer_pool.flush_all pool;
      Pager.sync (Engine.pager engine);
      Meta.stamp_magic pool;
      Buffer_pool.flush_all pool;
      Pager.sync (Engine.pager engine);
      t
    end
    else begin
      let a = attach_all pool in
      let t =
        { engine; pool; channel; prefetch_enabled = config.prefetch;
          object_cache_capacity = config.object_cache;
          object_cache =
            Hyper_util.Lru.create ~capacity:(max 1 config.object_cache) ();
          cache_hits = 0;
          cache_misses = 0; freelist = a.a_freelist; heap = a.a_heap;
          results_heap = a.a_results; objtab = a.a_objtab; idx_uid = a.a_uid;
          idx_uid_hash = a.a_uid_hash; idx_hundred = a.a_hundred;
          idx_million = a.a_million; doc_counts = Hashtbl.create 4;
          result_seq = a.a_result_seq;
          result_rids = [||]; result_len = -1 }
      in
      List.iter (fun (doc, n) -> Hashtbl.replace t.doc_counts doc n) a.a_docs;
      t
    end
  in
  Engine.set_hooks engine
    ~on_save:(fun () -> save_roots t)
    ~on_reload:(fun () ->
      Hyper_util.Lru.clear t.object_cache;
      (* the aborted transaction may have stored results; rebuild lazily *)
      t.result_len <- -1;
      load_roots t);
  t

let clear_caches t =
  Engine.clear_caches t.engine;
  Hyper_util.Lru.clear t.object_cache

let checkpoint t = Engine.checkpoint t.engine

let close t =
  (match t.channel with Some c -> Hyper_net.Channel.detach c | None -> ());
  Engine.close t.engine

let last_recovery t = Engine.recovery t.engine
let read_only t = Engine.read_only t.engine
let engine t = t.engine

(* --- node access --- *)

let rid_of t oid =
  match Object_table.get t.objtab ~oid with
  | Some rid -> rid
  | None -> invalid_arg (Printf.sprintf "Diskdb: unknown oid %d" oid)

(* Decoded-object cache (check-out caching, ECKL87).  Entries share the
   mutable Codec.node with callers; every mutation path goes through
   [update_node], which refreshes the entry, and abort/cold-reset clear
   the whole cache, so it can never serve stale state.  The cache is a
   {!Hyper_util.Lru}: eviction used to be an O(n) tick fold, which made
   every miss linear in the cache size. *)

let cache_put t oid node =
  if t.object_cache_capacity > 0 then
    Hyper_util.Lru.put t.object_cache oid node

let read_node t oid =
  match
    if t.object_cache_capacity > 0 then
      Hyper_util.Lru.find t.object_cache oid
    else None
  with
  | Some node ->
    t.cache_hits <- t.cache_hits + 1;
    node
  | None ->
    if t.object_cache_capacity > 0 then t.cache_misses <- t.cache_misses + 1;
    (* Decode in place from the pinned page buffer — the per-node hot
       path of every closure traversal, so the extraction copy matters. *)
    let node =
      Heap.read_with t.heap (rid_of t oid) (fun b ~off ~len ->
          Codec.decode_at b ~off ~len)
    in
    cache_put t oid node;
    node

let update_node t oid node =
  let rid = rid_of t oid in
  let rid' = Heap.update t.heap rid (Codec.encode node) in
  if rid' <> rid then Object_table.set t.objtab ~oid ~rid:rid';
  cache_put t oid node

let create_node ?near t spec =
  require_txn t;
  let oid = spec.Schema.oid in
  if Object_table.get t.objtab ~oid <> None then
    invalid_arg (Printf.sprintf "Diskdb: oid %d already exists" oid);
  let node = Codec.of_spec spec in
  let near_rid = Option.bind near (fun o -> Object_table.get t.objtab ~oid:o) in
  let rid = Heap.insert ?near:near_rid t.heap (Codec.encode node) in
  Object_table.set t.objtab ~oid ~rid;
  let doc = spec.Schema.doc in
  Btree.insert t.idx_uid ~key:(pack_key ~doc spec.Schema.unique_id) ~value:oid;
  (match t.idx_uid_hash with
  | Some h ->
    Hash_index.insert h ~key:(pack_key ~doc spec.Schema.unique_id) ~value:oid
  | None -> ());
  Btree.insert t.idx_hundred ~key:(pack_key ~doc spec.Schema.hundred) ~value:oid;
  Btree.insert t.idx_million ~key:(pack_key ~doc spec.Schema.million) ~value:oid;
  Hashtbl.replace t.doc_counts doc
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.doc_counts doc))

(* Batch form: the parent's record is decoded, extended by the whole
   array and re-encoded once, instead of once per edge — the per-edge
   version made bulk-loading a fanout-k parent O(k²) in copying and k
   heap rewrites of an ever-growing record. *)
let add_children t ~parent children =
  require_txn t;
  if Array.length children > 0 then begin
    let p = read_node t parent in
    (* Validate every endpoint before the first write: a bad child must
       not leave a half-linked batch behind. *)
    Array.iter
      (fun child ->
        let c = read_node t child in
        if c.Codec.parent <> 0 then
          invalid_arg
            (Printf.sprintf "Diskdb: node %d already has a parent" child))
      children;
    Array.iter
      (fun child ->
        let c = read_node t child in
        if c.Codec.parent <> 0 then
          invalid_arg
            (Printf.sprintf "Diskdb: node %d already has a parent" child);
        c.Codec.parent <- parent;
        update_node t child c)
      children;
    p.Codec.children <- Array.append p.Codec.children children;
    update_node t parent p
  end

let add_child t ~parent ~child = add_children t ~parent [| child |]

let add_parts t ~whole parts =
  require_txn t;
  if Array.length parts > 0 then begin
    let w = read_node t whole in
    Array.iter (fun part -> ignore (read_node t part)) parts;
    w.Codec.parts <- Array.append w.Codec.parts parts;
    update_node t whole w;
    Array.iter
      (fun part ->
        let p = read_node t part in
        p.Codec.part_of <- Array.append p.Codec.part_of [| whole |];
        update_node t part p)
      parts
  end

let add_part t ~whole ~part = add_parts t ~whole [| part |]

let add_ref t ~src ~dst ~offset_from ~offset_to =
  require_txn t;
  let s = read_node t src in
  ignore (read_node t dst);
  s.Codec.refs_to <-
    Array.append s.Codec.refs_to
      [| { Schema.target = dst; offset_from; offset_to } |];
  update_node t src s;
  let d = read_node t dst in
  d.Codec.refs_from <-
    Array.append d.Codec.refs_from
      [| { Schema.target = src; offset_from; offset_to } |];
  update_node t dst d

(* --- structural modification --- *)

let array_remove_first ~what x a =
  (* not Array.find_index: that landed in OCaml 5.1 and we build on 4.14 *)
  let n = Array.length a in
  let rec find i = if i >= n then None else if a.(i) = x then Some i else find (i + 1) in
  match find 0 with
  | None -> invalid_arg (Printf.sprintf "Diskdb: %s does not exist" what)
  | Some i -> Array.append (Array.sub a 0 i) (Array.sub a (i + 1) (n - i - 1))

let remove_child t ~parent ~child =
  require_txn t;
  let p = read_node t parent in
  p.Codec.children <- array_remove_first ~what:"child edge" child p.Codec.children;
  update_node t parent p;
  let c = read_node t child in
  c.Codec.parent <- 0;
  update_node t child c

let remove_part t ~whole ~part =
  require_txn t;
  let w = read_node t whole in
  w.Codec.parts <- array_remove_first ~what:"part edge" part w.Codec.parts;
  update_node t whole w;
  let p = read_node t part in
  p.Codec.part_of <-
    array_remove_first ~what:"part edge inverse" whole p.Codec.part_of;
  update_node t part p

let remove_ref t ~src ~dst =
  require_txn t;
  let s = read_node t src in
  let link =
    match
      Array.find_opt
        (fun l -> Oid.equal l.Schema.target dst)
        s.Codec.refs_to
    with
    | Some l -> l
    | None ->
      invalid_arg (Printf.sprintf "Diskdb: no reference %d -> %d" src dst)
  in
  s.Codec.refs_to <- array_remove_first ~what:"reference" link s.Codec.refs_to;
  update_node t src s;
  let d = read_node t dst in
  let inverse =
    { Schema.target = src; offset_from = link.Schema.offset_from;
      offset_to = link.Schema.offset_to }
  in
  d.Codec.refs_from <-
    array_remove_first ~what:"reference inverse" inverse d.Codec.refs_from;
  update_node t dst d

let delete_node t oid =
  require_txn t;
  let n = read_node t oid in
  if n.Codec.children <> [||] then
    invalid_arg (Printf.sprintf "Diskdb: node %d still has children" oid);
  if n.Codec.parent <> 0 then remove_child t ~parent:n.Codec.parent ~child:oid;
  Array.iter (fun whole -> remove_part t ~whole ~part:oid) n.Codec.part_of;
  Array.iter (fun part -> remove_part t ~whole:oid ~part) n.Codec.parts;
  Array.iter
    (fun l -> remove_ref t ~src:oid ~dst:l.Schema.target)
    n.Codec.refs_to;
  (* Re-read: removing a self-reference above also removed its inverse. *)
  Array.iter
    (fun l -> remove_ref t ~src:l.Schema.target ~dst:oid)
    (read_node t oid).Codec.refs_from;
  let doc = n.Codec.doc in
  ignore
    (Btree.delete t.idx_uid ~key:(pack_key ~doc n.Codec.unique_id) ~value:oid
      : bool);
  (match t.idx_uid_hash with
  | Some h ->
    ignore
      (Hash_index.delete h ~key:(pack_key ~doc n.Codec.unique_id) ~value:oid
        : bool)
  | None -> ());
  let n = read_node t oid in
  ignore
    (Btree.delete t.idx_hundred ~key:(pack_key ~doc n.Codec.hundred) ~value:oid
      : bool);
  ignore
    (Btree.delete t.idx_million ~key:(pack_key ~doc n.Codec.million) ~value:oid
      : bool);
  Heap.delete t.heap (rid_of t oid);
  Object_table.remove t.objtab ~oid;
  Hyper_util.Lru.remove t.object_cache oid;
  Hashtbl.replace t.doc_counts doc
    (Option.value ~default:1 (Hashtbl.find_opt t.doc_counts doc) - 1)

(* --- attributes --- *)

let kind t oid = (read_node t oid).Codec.kind
let unique_id t oid = (read_node t oid).Codec.unique_id
let ten t oid = (read_node t oid).Codec.ten
let hundred t oid = (read_node t oid).Codec.hundred
let million t oid = (read_node t oid).Codec.million

let set_hundred t oid v =
  require_txn t;
  let n = read_node t oid in
  if n.Codec.hundred <> v then begin
    let doc = n.Codec.doc in
    ignore
      (Btree.delete t.idx_hundred ~key:(pack_key ~doc n.Codec.hundred)
         ~value:oid
        : bool);
    Btree.insert t.idx_hundred ~key:(pack_key ~doc v) ~value:oid;
    n.Codec.hundred <- v;
    update_node t oid n
  end

let set_dyn_attr t oid key v =
  require_txn t;
  let n = read_node t oid in
  n.Codec.dyn <- (key, v) :: List.remove_assoc key n.Codec.dyn;
  update_node t oid n

let dyn_attr t oid key = List.assoc_opt key (read_node t oid).Codec.dyn

(* --- associative lookup --- *)

let lookup_unique t ~doc uid =
  match t.idx_uid_hash with
  | Some h -> Hash_index.find_first h ~key:(pack_key ~doc uid)
  | None -> Btree.find_first t.idx_uid ~key:(pack_key ~doc uid)

let collect_range tree ~doc ~lo ~hi =
  List.rev
    (Btree.fold_range tree ~lo:(pack_key ~doc lo) ~hi:(pack_key ~doc hi)
       ~init:[] ~f:(fun acc ~key:_ ~value -> value :: acc))

let range_unique t ~doc ~lo ~hi = collect_range t.idx_uid ~doc ~lo ~hi
let range_hundred t ~doc ~lo ~hi = collect_range t.idx_hundred ~doc ~lo ~hi
let range_million t ~doc ~lo ~hi = collect_range t.idx_million ~doc ~lo ~hi

(* --- relationships --- *)

(* Traversal prefetch: resolve the oids through the object table, then
   batch-fetch the heap pages (and overflow chains) backing the not-yet
   -checked-out nodes.  On a remote channel the batch rides one round
   trip instead of one per page.  A pure hint — unknown oids and nodes
   already in the object cache are skipped, and the decode that follows
   goes through [read_node] unchanged. *)
let prefetch_nodes t oids =
  if t.prefetch_enabled then begin
    let resolve oids =
      List.filter_map
        (fun oid ->
          if
            t.object_cache_capacity > 0
            && Hyper_util.Lru.mem t.object_cache oid
          then None
          else Object_table.get t.objtab ~oid)
        oids
    in
    let rids = resolve oids in
    if rids <> [] then begin
      Heap.prefetch_records t.heap rids;
      (* One level of lookahead along the 1-N hierarchy: the records
         just staged are resident now, so peeking at their children
         costs no transfer, and batching the children's pages here turns
         the per-fanout prefetch the traversal issues at the next level
         into pool hits.  A group-fetch server ships the sub-hierarchy,
         not just the requested page set — the page-at-a-time vs.
         group-transfer contrast the paper draws between Vbase and
         GemStone. *)
      let lookahead =
        List.concat_map
          (fun oid ->
            match Object_table.get t.objtab ~oid with
            | None -> []
            | Some _ -> Array.to_list (read_node t oid).Codec.children)
          oids
      in
      let child_rids = resolve lookahead in
      if child_rids <> [] then Heap.prefetch_records t.heap child_rids
    end
  end

let children t oid = (read_node t oid).Codec.children

let parent t oid =
  let p = (read_node t oid).Codec.parent in
  if p = 0 then None else Some p

let parts t oid = (read_node t oid).Codec.parts
let part_of t oid = (read_node t oid).Codec.part_of
let refs_to t oid = (read_node t oid).Codec.refs_to
let refs_from t oid = (read_node t oid).Codec.refs_from

(* --- content --- *)

let text t oid =
  let n = read_node t oid in
  if n.Codec.kind <> Schema.Text then
    invalid_arg (Printf.sprintf "Diskdb: node %d is not a text node" oid);
  n.Codec.text

let set_text t oid s =
  require_txn t;
  let n = read_node t oid in
  if n.Codec.kind <> Schema.Text then
    invalid_arg (Printf.sprintf "Diskdb: node %d is not a text node" oid);
  n.Codec.text <- s;
  update_node t oid n

let form t oid =
  let n = read_node t oid in
  if n.Codec.kind <> Schema.Form then
    invalid_arg (Printf.sprintf "Diskdb: node %d is not a form node" oid);
  Bitmap.of_bytes n.Codec.form

let set_form t oid b =
  require_txn t;
  let n = read_node t oid in
  if n.Codec.kind <> Schema.Form then
    invalid_arg (Printf.sprintf "Diskdb: node %d is not a form node" oid);
  n.Codec.form <- Bitmap.to_bytes b;
  update_node t oid n

(* --- scans --- *)

let iter_doc t ~doc f =
  (* The whole key band of this doc: an index scan is the structure's
     extent (the class extent cannot be used, paper §6.4.1). *)
  Btree.iter_range t.idx_uid ~lo:(doc * key_shift)
    ~hi:(((doc + 1) * key_shift) - 1)
    (fun ~key:_ ~value -> f value)

let node_count t ~doc =
  Option.value ~default:0 (Hashtbl.find_opt t.doc_counts doc)

(* The results heap is append-only, so its page-chain order is store
   order.  [result_rids] indexes it: rebuilt by one rid-only scan (no
   record decoding) when stale, appended to on every store — so
   [stored_result] is a single record read, not a full-heap rescan and
   an O(n) [List.nth] per call. *)

let result_rids_push t rid =
  if t.result_len >= 0 then begin
    let cap = Array.length t.result_rids in
    if t.result_len >= cap then begin
      let grown = Array.make (max 8 (2 * cap)) 0 in
      Array.blit t.result_rids 0 grown 0 t.result_len;
      t.result_rids <- grown
    end;
    t.result_rids.(t.result_len) <- rid;
    t.result_len <- t.result_len + 1
  end

let result_index t =
  if t.result_len < 0 then begin
    t.result_rids <- [||];
    t.result_len <- 0;
    Heap.iter_rids t.results_heap (fun rid -> result_rids_push t rid)
  end

let store_result_list t oids =
  require_txn t;
  let rid = Heap.insert t.results_heap (Codec.encode_oid_list oids) in
  result_rids_push t rid;
  t.result_seq <- t.result_seq + 1

let stored_result_count t = t.result_seq

let stored_result t i =
  if i < 0 || i >= t.result_seq then invalid_arg "Diskdb.stored_result";
  result_index t;
  Codec.decode_oid_list (Heap.read t.results_heap t.result_rids.(i))

(* --- introspection --- *)

type io_counters = {
  pager_reads : int;
  pager_writes : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  pool_prefetches : int;
  round_trips : int;
  batched_round_trips : int;
  server_hits : int;
  server_misses : int;
  wal_bytes : int;
  object_hits : int;
  object_misses : int;
}

let io_counters t =
  let ps = Pager.stats (Engine.pager t.engine) in
  let bs = Buffer_pool.stats t.pool in
  let rt, brt, sh, sm =
    match t.channel with
    | None -> (0, 0, 0, 0)
    | Some c ->
      let k = Hyper_net.Channel.counters c in
      Hyper_net.Channel.
        (k.round_trips, k.batched_round_trips, k.server_hits, k.server_misses)
  in
  { pager_reads = ps.Pager.reads; pager_writes = ps.Pager.writes;
    pool_hits = bs.Buffer_pool.hits; pool_misses = bs.Buffer_pool.misses;
    pool_evictions = bs.Buffer_pool.evictions;
    pool_prefetches = bs.Buffer_pool.prefetches; round_trips = rt;
    batched_round_trips = brt; server_hits = sh; server_misses = sm;
    wal_bytes = Engine.wal_bytes t.engine; object_hits = t.cache_hits;
    object_misses = t.cache_misses }

(* State lives in pages behind the buffer pool and WAL; cloning would
   mean copying the whole file, not a cheap in-memory fork. *)
let snapshot _ = None

let io_description t =
  let c = io_counters t in
  Printf.sprintf
    "pager r/w %d/%d; pool hit/miss/evict %d/%d/%d (+%d prefetched); net \
     trips %d (%d batched, server %d/%d)"
    c.pager_reads c.pager_writes c.pool_hits c.pool_misses c.pool_evictions
    c.pool_prefetches c.round_trips c.batched_round_trips c.server_hits
    c.server_misses

let reset_io t =
  Pager.reset_stats (Engine.pager t.engine);
  Buffer_pool.reset_stats t.pool;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  match t.channel with
  | Some c -> Hyper_net.Channel.reset_counters c
  | None -> ()

let file_bytes t = Pager.page_count (Engine.pager t.engine) * Page.size

(* Mark-and-sweep garbage collection (R10): pages can leak when a
   transaction that extended the file aborts — the undo restores page
   contents and root pointers, but the file keeps its new length.  Mark
   every page reachable from the meta roots (heaps with their overflow
   chains, object table, B+trees, free list), sweep the rest into the
   free list.  Returns the number of pages reclaimed. *)
let collect_garbage t =
  Engine.begin_txn t.engine;
  let total = Pager.page_count (Engine.pager t.engine) in
  let marked = Array.make total false in
  marked.(0) <- true;
  let mark id = if id > 0 && id < total then marked.(id) <- true in
  Heap.iter_pages t.heap mark;
  Heap.iter_pages t.results_heap mark;
  Object_table.iter_pages t.objtab mark;
  Btree.iter_pages t.idx_uid mark;
  (match t.idx_uid_hash with
  | Some h ->
    (* Mark the hash index's header and every directory/bucket page. *)
    mark (Hash_index.header h);
    List.iter mark (Hash_index.all_pages h)
  | None -> ());
  Btree.iter_pages t.idx_hundred mark;
  Btree.iter_pages t.idx_million mark;
  Freelist.iter t.freelist mark;
  let freed = ref 0 in
  for id = 1 to total - 1 do
    if not marked.(id) then begin
      (* The page is dead — an aborted or crashed transaction may have
         left it torn.  Scrub it (bypassing the pool: reading it first
         could trip the checksum) so reuse from the free list starts
         from a clean, verifiable page. *)
      Pager.write (Engine.pager t.engine) id (Page.alloc ());
      Buffer_pool.invalidate t.pool id;
      Freelist.push t.freelist id;
      incr freed
    end
  done;
  Engine.commit t.engine;
  !freed

module Schema = Hyper_core.Schema

type node = {
  doc : int;
  unique_id : int;
  kind : Schema.kind;
  mutable ten : int;
  mutable hundred : int;
  mutable million : int;
  mutable parent : int;
  mutable children : int array;
  mutable parts : int array;
  mutable part_of : int array;
  mutable refs_to : Schema.link array;
  mutable refs_from : Schema.link array;
  mutable dyn : (string * int) list;
  mutable text : string;
  mutable form : bytes;
}

let of_spec spec =
  let text, form =
    match spec.Schema.payload with
    | Schema.P_text s -> (s, Bytes.empty)
    | Schema.P_form b -> ("", Hyper_util.Bitmap.to_bytes b)
    | Schema.P_internal | Schema.P_draw -> ("", Bytes.empty)
  in
  { doc = spec.Schema.doc; unique_id = spec.Schema.unique_id;
    kind = Schema.kind_of_payload spec.Schema.payload; ten = spec.Schema.ten;
    hundred = spec.Schema.hundred; million = spec.Schema.million; parent = 0;
    children = [||]; parts = [||]; part_of = [||]; refs_to = [||];
    refs_from = [||]; dyn = []; text; form }

let kind_tag = function
  | Schema.Internal -> 0
  | Schema.Text -> 1
  | Schema.Form -> 2
  | Schema.Draw -> 3

let kind_of_tag = function
  | 0 -> Schema.Internal
  | 1 -> Schema.Text
  | 2 -> Schema.Form
  | 3 -> Schema.Draw
  | n -> invalid_arg (Printf.sprintf "Codec: bad kind tag %d" n)

(* --- little-endian emit helpers over Buffer --- *)

let emit_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let emit_u16 buf v =
  emit_u8 buf v;
  emit_u8 buf (v lsr 8)

let emit_u32 buf v =
  emit_u16 buf v;
  emit_u16 buf (v lsr 16)

let emit_i32 buf v = emit_u32 buf (v land 0xFFFFFFFF)

let emit_oids buf a =
  emit_u16 buf (Array.length a);
  Array.iter (emit_u32 buf) a

let emit_links buf a =
  emit_u16 buf (Array.length a);
  Array.iter
    (fun l ->
      emit_u32 buf l.Schema.target;
      emit_u8 buf l.Schema.offset_from;
      emit_u8 buf l.Schema.offset_to)
    a

let encode n =
  let buf = Buffer.create 128 in
  emit_u32 buf n.doc;
  emit_u32 buf n.unique_id;
  emit_u8 buf (kind_tag n.kind);
  emit_u8 buf n.ten;
  (* hundred is signed in principle (op 12 maps 1..100 to -1..98) *)
  emit_i32 buf n.hundred;
  emit_u32 buf n.million;
  emit_u32 buf n.parent;
  emit_oids buf n.children;
  emit_oids buf n.parts;
  emit_oids buf n.part_of;
  emit_links buf n.refs_to;
  emit_links buf n.refs_from;
  emit_u8 buf (List.length n.dyn);
  List.iter
    (fun (k, v) ->
      emit_u8 buf (String.length k);
      Buffer.add_string buf k;
      emit_u32 buf (v land 0xFFFFFFFF))
    n.dyn;
  emit_u32 buf (String.length n.text);
  Buffer.add_string buf n.text;
  emit_u32 buf (Bytes.length n.form);
  Buffer.add_bytes buf n.form;
  Buffer.to_bytes buf

(* --- decode with a cursor --- *)

(* [limit] bounds the record inside [data], so a cursor can decode in
   place from a page buffer without extracting the record first. *)
type cursor = { data : bytes; mutable pos : int; limit : int }

let need c n =
  if c.pos + n > c.limit then invalid_arg "Codec.decode: truncated record"

let read_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let read_u16 c =
  let lo = read_u8 c in
  let hi = read_u8 c in
  lo lor (hi lsl 8)

let read_u32 c =
  let lo = read_u16 c in
  let hi = read_u16 c in
  lo lor (hi lsl 16)

let read_i32 c =
  let v = read_u32 c in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let read_oids c =
  let n = read_u16 c in
  Array.init n (fun _ -> read_u32 c)

let read_links c =
  let n = read_u16 c in
  Array.init n (fun _ ->
      let target = read_u32 c in
      let offset_from = read_u8 c in
      let offset_to = read_u8 c in
      { Schema.target; offset_from; offset_to })

let read_string c =
  let n = read_u32 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let read_bytes c =
  let n = read_u32 c in
  need c n;
  let b = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  b

let decode_at data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Codec.decode_at: range outside buffer";
  let c = { data; pos = off; limit = off + len } in
  let doc = read_u32 c in
  let unique_id = read_u32 c in
  let kind = kind_of_tag (read_u8 c) in
  let ten = read_u8 c in
  let hundred = read_i32 c in
  let million = read_u32 c in
  let parent = read_u32 c in
  let children = read_oids c in
  let parts = read_oids c in
  let part_of = read_oids c in
  let refs_to = read_links c in
  let refs_from = read_links c in
  let dyn_count = read_u8 c in
  let dyn =
    List.init dyn_count (fun _ ->
        let klen = read_u8 c in
        need c klen;
        let k = Bytes.sub_string c.data c.pos klen in
        c.pos <- c.pos + klen;
        let v = read_u32 c in
        (k, v))
  in
  let text = read_string c in
  let form = read_bytes c in
  { doc; unique_id; kind; ten; hundred; million; parent; children; parts;
    part_of; refs_to; refs_from; dyn; text; form }

let decode data = decode_at data ~off:0 ~len:(Bytes.length data)

let encoded_size n = Bytes.length (encode n)

let encode_oid_list oids =
  let buf = Buffer.create (4 + (4 * List.length oids)) in
  emit_u32 buf (List.length oids);
  List.iter (emit_u32 buf) oids;
  Buffer.to_bytes buf

let decode_oid_list data =
  let c = { data; pos = 0; limit = Bytes.length data } in
  let n = read_u32 c in
  List.init n (fun _ -> read_u32 c)

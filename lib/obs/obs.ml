let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

(* {2 Registry} *)

type counter_v = { mutable c : int }
type gauge_v = { mutable g : float }

(* Bucket [i] holds observations x with bound(i-1) < x <= bound(i),
   where bound(i) = 2^i; the last bucket is a catch-all. *)
let nbuckets = 48

type histogram_v = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;
}

type metric =
  | M_counter of counter_v
  | M_gauge of gauge_v
  | M_histogram of histogram_v

type entry = { name : string; help : string; m : metric }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register ~help name fresh =
  match Hashtbl.find_opt registry name with
  | Some e ->
      let want = fresh () in
      if kind_name e.m <> kind_name want then
        invalid_arg
          (Printf.sprintf "Obs: %s already registered as a %s" name
             (kind_name e.m));
      e.m
  | None ->
      let m = fresh () in
      Hashtbl.add registry name { name; help; m };
      m

let reset_metric = function
  | M_counter c -> c.c <- 0
  | M_gauge g -> g.g <- 0.0
  | M_histogram h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      Array.fill h.h_buckets 0 nbuckets 0

let format_labels = function
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) kvs)
      ^ "}"

module Counter = struct
  type t = counter_v

  let make ?(help = "") name =
    match register ~help name (fun () -> M_counter { c = 0 }) with
    | M_counter c -> c
    | _ -> assert false

  let labeled ?help name kvs = make ?help (name ^ format_labels kvs)
  let incr t = if !on then t.c <- t.c + 1
  let add t n = if !on then t.c <- t.c + n
  let value t = t.c
end

module Gauge = struct
  type t = gauge_v

  let make ?(help = "") name =
    match register ~help name (fun () -> M_gauge { g = 0.0 }) with
    | M_gauge g -> g
    | _ -> assert false

  let labeled ?help name kvs = make ?help (name ^ format_labels kvs)
  let set t v = if !on then t.g <- v
  let add t v = if !on then t.g <- t.g +. v
  let value t = t.g
end

module Histogram = struct
  type t = histogram_v

  let make ?(help = "") name =
    let fresh () =
      M_histogram { h_count = 0; h_sum = 0.0; h_buckets = Array.make nbuckets 0 }
    in
    match register ~help name fresh with
    | M_histogram h -> h
    | _ -> assert false

  let labeled ?help name kvs = make ?help (name ^ format_labels kvs)

  let bucket_of x =
    let rec go i bound =
      if i >= nbuckets - 1 || x <= bound then i else go (i + 1) (bound *. 2.0)
    in
    go 0 1.0

  let observe t x =
    if !on && not (Float.is_nan x) then begin
      let x = Float.max x 0.0 in
      t.h_count <- t.h_count + 1;
      t.h_sum <- t.h_sum +. x;
      let i = bucket_of x in
      t.h_buckets.(i) <- t.h_buckets.(i) + 1
    end

  let count t = t.h_count
  let sum t = t.h_sum

  let bound i = if i >= nbuckets - 1 then infinity else Float.pow 2.0 (float_of_int i)

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Obs.Histogram.quantile: q out of range";
    if t.h_count = 0 then 0.0
    else begin
      let target =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.h_count)))
      in
      let cum = ref 0 and found = ref (bound (nbuckets - 2)) in
      (try
         for i = 0 to nbuckets - 1 do
           cum := !cum + t.h_buckets.(i);
           if !cum >= target then begin
             found := bound i;
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end
end

(* {2 Spans} *)

module Span = struct
  type node = {
    sp_name : string;
    sp_start : float;
    mutable sp_stop : float;
    mutable rev_children : node list;
  }

  let tracing = ref false
  let stack : node list ref = ref []
  let roots_rev : node list ref = ref []

  let set_tracing b =
    tracing := b;
    if not b then begin
      stack := [];
      roots_rev := []
    end

  let now () = Hyper_util.Vclock.now_ns ()

  let with_span nm f =
    if not !tracing then f ()
    else begin
      let n =
        { sp_name = nm; sp_start = now (); sp_stop = 0.0; rev_children = [] }
      in
      stack := n :: !stack;
      Fun.protect
        ~finally:(fun () ->
          n.sp_stop <- now ();
          match !stack with
          | top :: rest when top == n -> (
              stack := rest;
              match rest with
              | parent :: _ -> parent.rev_children <- n :: parent.rev_children
              | [] -> roots_rev := n :: !roots_rev)
          | _ ->
              (* Unbalanced (tracing toggled mid-span): drop the node. *)
              ())
        f
    end

  let take_roots () =
    let r = List.rev !roots_rev in
    roots_rev := [];
    r

  let name n = n.sp_name
  let children n = List.rev n.rev_children
  let duration_ms n = Float.max 0.0 (n.sp_stop -. n.sp_start) /. 1e6

  let to_string nodes =
    let buf = Buffer.create 256 in
    let rec go indent n =
      Buffer.add_string buf
        (Printf.sprintf "%s%s  %.3f ms\n" indent n.sp_name (duration_ms n));
      List.iter (go (indent ^ "  ")) (children n)
    in
    List.iter (go "") nodes;
    Buffer.contents buf
end

let reset () =
  Hashtbl.iter (fun _ e -> reset_metric e.m) registry;
  Span.stack := [];
  Span.roots_rev := []

(* {2 Export} *)

type family =
  | F_counter of { name : string; help : string; value : int }
  | F_gauge of { name : string; help : string; value : float }
  | F_histogram of {
      name : string;
      help : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
    }

let histogram_cumulative h =
  let cum = ref 0 and acc = ref [] in
  for i = 0 to nbuckets - 1 do
    cum := !cum + h.h_buckets.(i);
    acc := (Histogram.bound i, !cum) :: !acc
  done;
  List.rev !acc

let family_of e =
  match e.m with
  | M_counter c -> F_counter { name = e.name; help = e.help; value = c.c }
  | M_gauge g -> F_gauge { name = e.name; help = e.help; value = g.g }
  | M_histogram h ->
      F_histogram
        {
          name = e.name;
          help = e.help;
          count = h.h_count;
          sum = h.h_sum;
          buckets = histogram_cumulative h;
        }

let entries_sorted () =
  List.sort
    (fun a b -> String.compare a.name b.name)
    (Hashtbl.fold (fun _ e acc -> e :: acc) registry [])

let families () = List.map family_of (entries_sorted ())

(* The family name for HELP/TYPE lines: the metric name with any
   label suffix stripped. *)
let base_name name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let le_string b = if b = infinity then "+Inf" else Printf.sprintf "%g" b

let to_prometheus () =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name help kind =
    let base = base_name name in
    if not (Hashtbl.mem seen_header base) then begin
      Hashtbl.add seen_header base ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun e ->
      match e.m with
      | M_counter c ->
          header e.name e.help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" e.name c.c)
      | M_gauge g ->
          header e.name e.help "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %.17g\n" e.name g.g)
      | M_histogram h ->
          header e.name e.help "histogram";
          (* The _bucket/_sum/_count suffixes attach to the metric name
             proper, before any label set encoded in the registered
             name: name{k="v"} renders as name_bucket{k="v",le="..."}. *)
          let base = base_name e.name in
          let labels =
            let n = String.length e.name and b = String.length base in
            if n > b then String.sub e.name (b + 1) (n - b - 2) ^ "," else ""
          in
          List.iter
            (fun (b, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{%sle=\"%s\"} %d\n" base labels
                   (le_string b) cum))
            (histogram_cumulative h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %.17g\n" base
               (if labels = "" then ""
                else "{" ^ String.sub labels 0 (String.length labels - 1) ^ "}")
               h.h_sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" base
               (if labels = "" then ""
                else "{" ^ String.sub labels 0 (String.length labels - 1) ^ "}")
               h.h_count))
    (entries_sorted ());
  Buffer.contents buf

(* {2 Lock instrumentation}

   Hyper_util.Sync fires an event per (lockdep-enabled) acquisition and
   release; exporting them as per-lock-class metrics lives here because
   util cannot depend on obs.  The hook runs on whatever thread touched
   the lock, and the registry Hashtbl is not safe against concurrent
   resize, so lookups are serialised through a guard.  The guard itself
   must be a raw stdlib mutex: an instrumented Sync lock here would
   re-enter this very hook. *)

let lock_metrics_guard =
  (Mutex.create () [@lint.allow "sync-wrapper-only"])

let () =
  Hyper_util.Sync.set_instrument_hook (fun ev ->
      if !on then begin
        Mutex.lock lock_metrics_guard;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock_metrics_guard)
          (fun () ->
            match ev with
            | Hyper_util.Sync.Ev_acquired { lock; wait_ns; contended } ->
              if contended then begin
                Counter.incr
                  (Counter.labeled "hyper_lock_contended_total"
                     ~help:"acquisitions that found the lock taken"
                     [ ("lock", lock) ]);
                Histogram.observe
                  (Histogram.labeled "hyper_lock_wait_ns"
                     ~help:"time spent blocked acquiring a contended lock"
                     [ ("lock", lock) ])
                  wait_ns
              end
            | Hyper_util.Sync.Ev_released { lock; held_ns } ->
              Histogram.observe
                (Histogram.labeled "hyper_lock_held_ns"
                   ~help:"duration of each hold segment of a lock"
                   [ ("lock", lock) ])
                held_ns
            | Hyper_util.Sync.Ev_waiting { lock; delta } ->
              Gauge.add
                (Gauge.labeled "hyper_lock_waiters"
                   ~help:"threads currently blocked on the lock"
                   [ ("lock", lock) ])
                (float_of_int delta))
      end)

(** Process-wide observability: metrics registry and span tracing.

    A single global registry of named counters, gauges and log-scale
    histograms, plus nestable spans.  Everything is built around a
    no-op fast path: instrumented hot loops pay one ref dereference
    and a conditional branch while the sink is disabled (the default),
    so instrumentation can stay compiled-in everywhere.

    Metric handles are created eagerly at module-initialisation time
    (registration itself is unconditional and idempotent); only
    {e observations} are gated on {!on}.  Names follow
    [hyper_<subsystem>_<what>_<unit>] with Prometheus conventions
    ([_total] counters, [_ns]/[_bytes] units); low-cardinality labels
    are encoded in the full name, e.g.
    [hyper_vfs_faults_total{kind="eio"}].

    The registry is process-global and unsynchronised: concurrent
    counter bumps may drop increments under threads, which is
    acceptable for benchmark telemetry.  Span tracing maintains a
    single ambient stack and must only be enabled in single-threaded
    runs. *)

val on : bool ref
(** Fast-path flag, read by every observation site.  Treat as
    read-only outside {!enable}/{!disable}. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric (handles stay valid) and drop any
    collected spans.  For tests and between benchmark runs. *)

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Create or look up the counter [name].  Idempotent: a second
      [make] with the same name returns the same counter.
      @raise Invalid_argument if [name] is registered as a different
      metric kind. *)

  val labeled : ?help:string -> string -> (string * string) list -> t
  (** [labeled name [(k, v); ...]] is [make "name{k=\"v\",...}"] —
      labels become part of the registered name.  Keep cardinality
      low; every distinct label set is a separate registry entry. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?help:string -> string -> t
  val labeled : ?help:string -> string -> (string * string) list -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  (** Log-scale histogram: bucket [i] counts observations in
      [(2^(i-1), 2^i]], with a final catch-all bucket.  Geometric
      buckets cover nanosecond-to-minutes dynamic range in ~48
      buckets at a fixed ~2x resolution. *)

  type t

  val make : ?help:string -> string -> t
  val labeled : ?help:string -> string -> (string * string) list -> t
  val observe : t -> float -> unit
  (** Record one observation.  Negative values clamp to 0 (defence in
      depth: the monotonic clock already prevents negative timing
      deltas); NaN is dropped. *)

  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in \[0,1\]: upper bound of the bucket
      holding the q-th observation — an estimate within one bucket
      (~2x).  0 on an empty histogram. *)
end

module Span : sig
  (** Nestable spans forming per-root trees.  Durations use the
      virtual benchmark clock ({!Hyper_util.Vclock}), so simulated
      network/disk latency shows up in traces exactly as it does in
      reported timings.  Tracing is gated separately from metrics by
      {!tracing}; with it off, {!with_span} is a single branch. *)

  type node

  val tracing : bool ref
  val set_tracing : bool -> unit
  (** Disabling also discards any open or collected spans. *)

  val with_span : string -> (unit -> 'a) -> 'a
  (** Run the thunk inside a span.  Exception-safe: the span closes
      (and is recorded) even if the thunk raises. *)

  val take_roots : unit -> node list
  (** Completed root spans in completion order; clears the buffer. *)

  val name : node -> string
  val children : node -> node list
  val duration_ms : node -> float
  (** Clamped to >= 0 (virtual-clock resets mid-span cannot produce a
      negative duration). *)

  val to_string : node list -> string
  (** Indented tree rendering, one line per span:
      [name  <duration> ms]. *)
end

(** {2 Export} *)

type family =
  | F_counter of { name : string; help : string; value : int }
  | F_gauge of { name : string; help : string; value : float }
  | F_histogram of {
      name : string;
      help : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
          (** Cumulative [(le, count)] pairs, last bucket [le = infinity]. *)
    }

val families : unit -> family list
(** Snapshot of every registered metric, sorted by name. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format ([# HELP] / [# TYPE] lines,
    [_bucket{le="..."}] / [_sum] / [_count] for histograms). *)

(** Typed storage failures.

    Everything that can go wrong between the storage engine and the
    physical medium is reported through this one type instead of raw
    [Unix.Unix_error]s escaping from arbitrary depths:

    - [Io] — a read, write, sync or open failed.  [transient] faults
      (e.g. [EINTR], or a fault-injection rule marked transient) are
      retried with bounded backoff by {!Vfs.retrying}; what callers see
      is therefore already post-retry.
    - [Corrupt_page] — a page read back from disk failed its checksum
      (torn write, bit rot, or an overwritten sidecar); detected at read
      time by {!Pager} so corruption never propagates silently into the
      heap or the indexes.
    - [Read_only] — the engine demoted itself to read-only because the
      WAL could no longer be appended (e.g. [ENOSPC]); committed data
      remains readable, mutations are refused. *)

type fault = Eio | Enospc | Efault of string  (** any other [Unix.error] *)

type t =
  | Io of { op : string; path : string; fault : fault; transient : bool }
  | Corrupt_page of { path : string; page : int; expected : int; actual : int }
  | Read_only

exception Error of t

val fault_to_string : fault -> string
val to_string : t -> string

val is_transient : t -> bool
(** Whether a bounded retry is worthwhile. *)

val raise_io : op:string -> path:string -> fault:fault -> transient:bool -> 'a

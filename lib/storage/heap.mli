(** Heap files: unordered record storage with stable record ids.

    A heap file is a chain of slotted pages.  Records larger than a page
    spill into a chain of overflow pages; the slot then holds a small
    stub.  Record ids ([rid]) encode (page, slot) and remain valid until
    the record is deleted; an update that no longer fits in place returns
    a fresh rid (the object table provides the stable indirection above
    this).

    Clustering: [insert ~near] tries to place the record in the same page
    as an existing record.  The HyperModel generator uses this to cluster
    children next to parents along the 1-N aggregation hierarchy — the
    ablation the paper explicitly calls for (§5.2). *)

type t

type rid = int

val rid_page : rid -> int
val rid_slot : rid -> int
val rid_make : page:int -> slot:int -> rid

val fresh : Buffer_pool.t -> Freelist.t -> t
(** Create a new heap with one empty page. *)

val attach : Buffer_pool.t -> Freelist.t -> head:int -> t
(** Re-open an existing heap given its first page id. *)

val first_page : t -> int

val insert : ?near:rid -> t -> bytes -> rid

val read : t -> rid -> bytes
(** A fresh copy of the record contents.
    @raise Invalid_argument on a dangling rid. *)

val read_with : t -> rid -> (bytes -> off:int -> len:int -> 'a) -> 'a
(** Zero-copy read: [k buf ~off ~len] receives the record as a range of
    [buf].  For an inline record [buf] is the pinned page buffer itself
    — valid only for the duration of [k], which must not retain it nor
    write to the heap.  For a record that spilled into overflow pages,
    [buf] is a freshly assembled buffer ([off = 0]).  Decoding in place
    through this avoids the per-record extraction copy of {!read}.
    @raise Invalid_argument on a dangling rid. *)

val update : t -> rid -> bytes -> rid
(** Update in place when possible; otherwise relocate and return the new
    rid (the old rid becomes invalid). *)

val delete : t -> rid -> unit

val prefetch_records : t -> rid list -> unit
(** Bring the pages backing [rids] into the buffer pool in batched
    fetches: one {!Buffer_pool.prefetch} for the slotted pages, then —
    for records that spilled into overflow chains — one batch per chain
    {e wave} (all first overflow pages across the batch, then all second
    pages, ...).  On a remote channel a batch of K scattered records
    thus costs a handful of round trips instead of one per page.  The
    rids must be live, like for {!read}; duplicate and co-located rids
    collapse into the resident set naturally. *)

val iter : t -> (rid -> bytes -> unit) -> unit
(** Visit every record in page-chain order (physical order — relevant to
    sequential-scan behaviour). *)

val iter_rids : t -> (rid -> unit) -> unit
(** Like {!iter} but yields only the rids, without decoding records or
    touching overflow chains — an O(chain pages) scan used to rebuild
    rid indexes cheaply. *)

val record_count : t -> int
val page_count : t -> int

val iter_pages : t -> (int -> unit) -> unit
(** Visit every page this heap owns: its chain pages and the overflow
    pages of large records.  Used by the garbage collector to mark
    reachable pages. *)

(** LRU buffer pool between the access methods and the {!Pager}.

    The pool holds a bounded number of page frames.  Access is scoped —
    [with_page] pins the frame for the duration of the callback so nested
    accesses cannot evict it.  Dirty frames are written back on eviction
    (a "steal" policy) and on [flush_all].

    Transactional hooks: [on_first_dirty] fires with the page's clean
    before-image the first time a page is dirtied after the last
    [take_dirty_set]; the disk backend uses it to capture undo images for
    its write-ahead log.  [on_evict_dirty] fires just before a dirty page
    is stolen so its after-image can be logged first (write-ahead rule).

    The buffer pool is the lever behind the benchmark's cold/warm
    distinction: [drop_all] empties the cache, which is what "close the
    database" means for an operation sequence (paper §6(e)). *)

type t

val create : Pager.t -> capacity:int -> t
(** @raise Invalid_argument if [capacity < 4]. *)

val capacity : t -> int
val pager : t -> Pager.t

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** Read access to a page.  The callback must not retain the buffer. *)

val with_page_w : t -> int -> (bytes -> 'a) -> 'a
(** Write access; marks the frame dirty. *)

val prefetch : t -> int list -> unit
(** [prefetch t page_ids] brings the not-yet-resident pages of
    [page_ids] into the pool with a single {!Pager.read_many} (one
    round trip on a remote channel, instead of one per page).  A pure
    hint: resident ids and duplicates are skipped, the batch is capped
    at the number of unpinned slots — a prefetch {e never} evicts a
    pinned frame — and ids beyond the cap are dropped, to be demand
    -read later.  Pages fetched this way count in the [prefetches]
    statistic rather than as misses; the demand access that follows is
    then a hit. *)

val with_pages : t -> int list -> (bytes list -> 'a) -> 'a
(** [with_pages t page_ids k] pins all of [page_ids] (missing frames
    are fetched as one {!prefetch} batch) and runs [k] on their buffers,
    in the order given.  The callback must not retain the buffers.
    Fails like {!prefetch}/[with_page] would if more distinct pages than
    the pool capacity are requested. *)

val allocate : t -> int
(** Allocate a fresh page through the pager and cache it (dirty). *)

val flush_all : t -> unit
(** Write every dirty frame back; frames stay cached. *)

val drop_all : t -> unit
(** Flush, then empty the cache entirely (cold-run reset).
    @raise Invalid_argument if any page is still pinned. *)

val discard_dirty : t -> unit
(** Drop dirty frames *without* writing them back (transaction abort in
    a no-steal window).  Clean frames stay cached. *)

val invalidate : t -> int -> unit
(** Forget any cached copy of one page (without writing it back). *)

val set_txn_hooks :
  t ->
  on_first_dirty:(int -> bytes -> unit) ->
  on_evict_dirty:(int -> bytes -> unit) ->
  unit
(** Both hooks receive {e live} page buffers: [on_first_dirty] the
    page's clean before-image (mutated by the caller as soon as the
    hook returns), [on_evict_dirty] the dirty after-image about to be
    written back.  A hook must serialize or copy what it retains before
    returning — appending to the WAL counts as serializing. *)

val clear_txn_hooks : t -> unit

val take_dirty_set : t -> (int * bytes) list
(** Current dirty pages and contents (after-images for commit), and reset
    the first-dirty tracking so subsequent writes fire [on_first_dirty]
    again. Frames remain cached and dirty until flushed.

    The buffers are the live frame contents (dirty frames always own
    their buffer), valid until the page is next mutated: serialize them
    before returning control to code that can write pages, and do not
    retain them. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable prefetches : int;
      (** pages brought in by {!prefetch} batches (not counted as
          misses; the subsequent demand access is a hit) *)
}

val stats : t -> stats
val reset_stats : t -> unit

(** Write-ahead log (R10: logging, backup and recovery).

    ARIES-lite, page-granular:

    - [Begin t] opens transaction [t];
    - [Before (t, p, img)] is logged when [p] is first dirtied inside [t]
      (undo image);
    - [After (t, p, img)] is logged at commit for every dirty page, and
      earlier if a dirty page must be stolen by the buffer pool (redo
      image, honouring the write-ahead rule);
    - [Commit t] seals the transaction;
    - [Checkpoint] states that all committed work has reached the main
      file, allowing log truncation.

    Entries carry a checksum; {!read_all} stops cleanly at a torn or
    corrupt tail, which is what makes crash-recovery tests meaningful. *)

type entry =
  | Begin of int
  | Before of int * int * bytes
  | After of int * int * bytes
  | Commit of int
  | Checkpoint

type t

val open_ : ?vfs:Vfs.t -> string -> t
(** Opens for appending (creates when absent) through [vfs] (default
    {!Vfs.real}).  A torn or garbled tail left by a crash is truncated
    away so subsequent appends extend the clean prefix.  Appends are
    buffered in memory; {!flush} issues them to the vfs, which is what
    establishes write-ahead ordering relative to page writes. *)

val append : t -> entry -> unit

val lsn : t -> int
(** Sequence number the next {!append} will be assigned.  LSNs count
    appends since [open_] — they are not byte offsets, and survive
    {!truncate} (replication keys its shipping cursor on them). *)

val set_on_append : t -> (int -> entry -> unit) option -> unit
(** Stream cursor: called synchronously on every append with the
    assigned LSN.  At most one observer; [None] detaches. *)

val encode_entry : entry -> bytes
(** Wire/on-disk image of one record: header, payload and the record
    CRC — the exact bytes {!append} buffers.  Shipped replication
    frames carry these verbatim so the per-record checksum travels. *)

val decode_entries : bytes -> entry list * bool
(** Decode a clean prefix of concatenated records; the flag is [true]
    when trailing bytes were torn or garbled. *)

type scan_result = { entries : entry list; clean_bytes : int; torn : bool }

val scan : ?vfs:Vfs.t -> string -> scan_result
(** Like {!read_all} but also reports where the clean prefix ends. *)

val flush : t -> unit
val sync : t -> unit
(** [flush] then fsync — the commit durability point. *)

val sync_file : t -> unit
(** Fsync {e without} flushing: the group-commit durability barrier.
    Every committer covered by the barrier must have {!flush}ed its own
    bytes before the call (the {!Group_commit} scheduler enforces this
    by construction).  Unlike {!sync} this never touches the append
    buffer, so the group leader may call it while other threads are
    appending their next transactions. *)

val sync_count : t -> int
(** Durability barriers ({!sync} + {!sync_file}) since [open_] — a
    plain per-log counter, counted whether or not the metrics sink is
    enabled (the benchmark reports fsyncs per committed transaction
    from this). *)

val truncate : t -> unit
(** Discard the log contents (after a checkpoint). *)

val size_bytes : t -> int
val close : t -> unit

val read_all : ?vfs:Vfs.t -> string -> entry list
(** Entire readable prefix of the log, ignoring a torn tail.  Returns []
    for a missing file. *)

val entry_to_string : entry -> string

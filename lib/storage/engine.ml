module Obs = Hyper_obs.Obs

let m_begins =
  Obs.Counter.make "hyper_txn_begins_total" ~help:"engine transactions begun"

let m_commits =
  Obs.Counter.make "hyper_txn_commits_total"
    ~help:"engine transactions committed"

let m_aborts =
  Obs.Counter.make "hyper_txn_aborts_total"
    ~help:"engine transactions rolled back (explicit abort or commit failure)"

let m_checkpoints =
  Obs.Counter.make "hyper_txn_checkpoints_total"
    ~help:"WAL-size-triggered checkpoints"

type txn = { id : int; undo : (int, bytes) Hashtbl.t }

type t = {
  pager : Pager.t;
  wal : Wal.t;
  pool : Buffer_pool.t;
  durable_sync : bool;
  group : Group_commit.t option; (* Some iff durable_sync and configured *)
  checkpoint_wal_bytes : int;
  is_fresh : bool;
  recovery_report : Recovery.report option;
  mutable on_save : unit -> unit;
  mutable on_reload : unit -> unit;
  mutable txn : txn option;
  mutable txn_counter : int;
  mutable read_only : bool;
  mutable closed : bool;
  mutable commit_hook : (int -> unit) option;
}

(* A WAL append/flush failing with ENOSPC means the log can no longer
   uphold the write-ahead contract: demote to read-only rather than risk
   committing without durability. *)
let is_wal_full = function
  | Storage_error.Error
      (Storage_error.Io { fault = Storage_error.Enospc; _ }) ->
    true
  | _ -> false

let open_ ?(vfs = Vfs.real) ~path ~pool_pages ?(durable_sync = false)
    ?group_commit ?(checkpoint_wal_bytes = 64 * 1024 * 1024) () =
  (* One retry policy for every storage path: transient faults are
     absorbed here, so Pager/Wal/Recovery only ever see hard errors.
     The observer sits outside the retry layer so each logical
     operation counts once; absorbed faults surface only as
     hyper_vfs_retries_total. *)
  let vfs = Vfs.observed (Vfs.retrying vfs) in
  let wal_path = path ^ ".wal" in
  let pager = Pager.create ~vfs path in
  let recovery_report =
    if Recovery.needs_recovery ~vfs wal_path then begin
      let report = Recovery.recover ~vfs ~wal_path pager in
      Pager.sync pager;
      Some report
    end
    else None
  in
  let wal = Wal.open_ ~vfs wal_path in
  Wal.truncate wal;
  let pool = Buffer_pool.create pager ~capacity:pool_pages in
  (* Without durable_sync there is no per-commit fsync to batch, so a
     group-commit config is inert rather than an error — callers can set
     both unconditionally and flip durability alone. *)
  let group =
    match group_commit with
    | Some cfg when durable_sync -> Some (Group_commit.create cfg wal)
    | _ -> None
  in
  { pager; wal; pool; durable_sync; group; checkpoint_wal_bytes;
    is_fresh = Pager.page_count pager = 0; recovery_report;
    on_save = (fun () -> ()); on_reload = (fun () -> ()); txn = None;
    txn_counter = 0; read_only = false; closed = false; commit_hook = None }

let fresh t = t.is_fresh
let recovery t = t.recovery_report
let read_only t = t.read_only
let wal t = t.wal
let set_commit_hook t hook = t.commit_hook <- hook

let demote_read_only t = t.read_only <- true

let set_hooks t ~on_save ~on_reload =
  t.on_save <- on_save;
  t.on_reload <- on_reload

let pool t = t.pool
let pager t = t.pager

let in_txn t = t.txn <> None

let require_txn t =
  if t.txn = None then invalid_arg "Engine: mutation outside a transaction"

let current_txn t =
  match t.txn with
  | Some txn -> txn
  | None -> invalid_arg "Engine: no active transaction"

let begin_txn t =
  if t.read_only then raise (Storage_error.Error Storage_error.Read_only);
  if t.txn <> None then invalid_arg "Engine: nested transaction";
  t.txn_counter <- t.txn_counter + 1;
  Obs.Counter.incr m_begins;
  let txn = { id = t.txn_counter; undo = Hashtbl.create 64 } in
  t.txn <- Some txn;
  Wal.append t.wal (Wal.Begin txn.id);
  Buffer_pool.set_txn_hooks t.pool
    ~on_first_dirty:(fun page img ->
      if not (Hashtbl.mem txn.undo page) then begin
        (* [img] is the live frame buffer (pool hook contract): the undo
           set outlives this call, so snapshot it.  The WAL append
           serializes the same snapshot before the caller mutates the
           page. *)
        let img = Bytes.copy img in
        Hashtbl.add txn.undo page img;
        Wal.append t.wal (Wal.Before (txn.id, page, img))
      end)
    ~on_evict_dirty:(fun page img ->
      (* Write-ahead rule: log the redo image before the steal hits disk. *)
      Wal.append t.wal (Wal.After (txn.id, page, img));
      try Wal.flush t.wal
      with e when is_wal_full e ->
        t.read_only <- true;
        raise e)

(* Roll the open transaction back in memory: discard in-pool writes,
   restore stolen pages from the undo set, re-attach the owner's roots
   from the meta page.  Shared by [abort] and by commit-failure
   degradation; needs no WAL. *)
let rollback t txn =
  Buffer_pool.clear_txn_hooks t.pool;
  Buffer_pool.discard_dirty t.pool;
  Hashtbl.iter
    (fun page img ->
      Buffer_pool.invalidate t.pool page;
      Pager.write t.pager page img)
    txn.undo;
  t.txn <- None;
  Obs.Counter.incr m_aborts;
  t.on_reload ()

let maybe_checkpoint t =
  if Wal.size_bytes t.wal > t.checkpoint_wal_bytes then begin
    Obs.Counter.incr m_checkpoints;
    Buffer_pool.flush_all t.pool;
    Pager.sync t.pager;
    Wal.truncate t.wal
  end

type ticket = { txn_id : int; wait : unit -> unit }

(* First phase of commit: log the after-images and the commit record,
   issue (and, without a group scheduler, fsync) the log, flush the pool
   and leave the engine in a clean non-transactional state.  With a
   group scheduler the durability barrier is deferred: the returned
   ticket's [wait] blocks until a group fsync covers the commit record.
   The flush-before-register ordering the scheduler relies on holds
   because both happen here, under whatever serialization the caller
   already imposes on engine calls.

   Note the pool write-back can reach the data file before the group
   fsync.  That is safe under the FIFO write-back model (DESIGN.md §15):
   the before/after images were issued to the log first, so any
   persisted prefix that includes a page write also includes the undo
   records recovery needs to roll an unacked transaction back. *)
let commit_ticket t =
  let txn = current_txn t in
  t.on_save ();
  let dirty = Buffer_pool.take_dirty_set t.pool in
  (try
     List.iter
       (fun (page, img) -> Wal.append t.wal (Wal.After (txn.id, page, img)))
       dirty;
     Wal.append t.wal (Wal.Commit txn.id);
     (match t.group with
     | Some _ -> Wal.flush t.wal
     | None -> if t.durable_sync then Wal.sync t.wal else Wal.flush t.wal)
   with e when is_wal_full e ->
     (* The commit record never reached the log, so the transaction is
        not committed: undo it in memory and degrade to read-only.  All
        previously committed state on disk is untouched and readable. *)
     t.read_only <- true;
     rollback t txn;
     raise e);
  Obs.Counter.incr m_commits;
  (* Force policy: committed pages reach the data file eagerly. *)
  Buffer_pool.flush_all t.pool;
  Buffer_pool.clear_txn_hooks t.pool;
  t.txn <- None;
  let wait =
    match t.group with
    | Some g ->
      let tk = Group_commit.register g in
      fun () -> Group_commit.await g tk
    | None -> fun () -> ()
  in
  { txn_id = txn.id; wait }

let await_durable t tk =
  try tk.wait ()
  with e ->
    (* The group's durability barrier failed after the transaction state
       was already torn down, so there is nothing left to roll back and
       the commit record may or may not survive a restart.  The caller
       must not ack; the engine stops accepting writes. *)
    demote_read_only t;
    raise e

let commit t =
  let tk = commit_ticket t in
  await_durable t tk;
  (* The transaction is locally durable by this point; the hook (e.g.
     replication shipping, which may raise to signal quorum loss) runs
     with the engine back in a clean non-transactional state. *)
  (match t.commit_hook with None -> () | Some f -> f tk.txn_id);
  maybe_checkpoint t

let group_commit_stats t = Option.map Group_commit.stats t.group
let wal_sync_count t = Wal.sync_count t.wal

let abort t = rollback t (current_txn t)

let clear_caches t =
  if t.txn <> None then invalid_arg "Engine: clear_caches inside a transaction";
  Buffer_pool.drop_all t.pool

let checkpoint t =
  if t.txn <> None then invalid_arg "Engine: checkpoint inside a transaction";
  Buffer_pool.flush_all t.pool;
  Pager.sync t.pager;
  Wal.truncate t.wal

let close t =
  if not t.closed then begin
    (* An open transaction at close has no commit record, so it was
       never durable — recovery after a crash here would discard it.
       Roll it back rather than raise: close usually runs from a
       [Fun.protect] finalizer, where raising would mask whatever
       exception abandoned the transaction in the first place. *)
    (match t.txn with Some txn -> rollback t txn | None -> ());
    (* A read-only (degraded) engine has no dirty state to save and its
       WAL is unusable — just release the handles. *)
    if not t.read_only then checkpoint t;
    Wal.close t.wal;
    Pager.close t.pager;
    t.closed <- true
  end

let wal_bytes t = Wal.size_bytes t.wal

exception Crash

type file = {
  path : string;
  pread : buf:bytes -> off:int -> unit;
  pread_multi : (bytes * int) list -> unit;
  pwrite : buf:bytes -> off:int -> unit;
  size : unit -> int;
  truncate : int -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

type t = {
  name : string;
  open_rw : string -> file;
  exists : string -> bool;
  remove : string -> unit;
}

let () =
  Printexc.register_printer (function
    | Crash -> Some "Vfs.Crash (simulated power failure)"
    | _ -> None)

(* --- real files --- *)

let classify_unix_error = function
  | Unix.EIO -> (Storage_error.Eio, false)
  | Unix.ENOSPC -> (Storage_error.Enospc, false)
  | Unix.EINTR | Unix.EAGAIN -> (Storage_error.Eio, true)
  | e -> (Storage_error.Efault (Unix.error_message e), false)

let wrap_unix op path f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    let fault, transient = classify_unix_error e in
    Storage_error.raise_io ~op ~path ~fault ~transient

let real_open path =
  let fd =
    wrap_unix "open" path (fun () ->
        Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  in
  let closed = ref false in
  let do_pread ~buf ~off =
    wrap_unix "pread" path (fun () ->
        let len = Bytes.length buf in
        let rec loop pos =
          if pos < len then begin
            let n = ExtUnix.pread fd buf (off + pos) pos (len - pos) in
            if n = 0 then
              (* Hole past EOF within an allocated region: zeroes. *)
              Bytes.fill buf pos (len - pos) '\000'
            else loop (pos + n)
          end
        in
        loop 0)
  in
  { path;
    pread = do_pread;
    pread_multi =
      (List.iter (fun (buf, off) -> do_pread ~buf ~off));
    pwrite =
      (fun ~buf ~off ->
        wrap_unix "pwrite" path (fun () ->
            let len = Bytes.length buf in
            let rec loop pos =
              if pos < len then
                loop (pos + ExtUnix.pwrite fd buf (off + pos) pos (len - pos))
            in
            loop 0));
    size = (fun () -> wrap_unix "fstat" path (fun () -> (Unix.fstat fd).Unix.st_size));
    truncate = (fun len -> wrap_unix "ftruncate" path (fun () -> Unix.ftruncate fd len));
    sync = (fun () -> wrap_unix "fsync" path (fun () -> Unix.fsync fd));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          wrap_unix "close" path (fun () -> Unix.close fd)
        end) }

let real =
  { name = "real";
    open_rw = real_open;
    exists = (fun path -> Sys.file_exists path);
    remove = (fun path -> if Sys.file_exists path then Sys.remove path) }

(* --- observability --- *)

module Obs = Hyper_obs.Obs

let m_reads =
  Obs.Counter.make "hyper_vfs_reads_total"
    ~help:"pread calls issued (a vectored read counts each sub-read)"

let m_read_bytes =
  Obs.Counter.make "hyper_vfs_read_bytes_total" ~help:"bytes read"

let m_writes =
  Obs.Counter.make "hyper_vfs_writes_total" ~help:"pwrite calls issued"

let m_write_bytes =
  Obs.Counter.make "hyper_vfs_write_bytes_total" ~help:"bytes written"

let m_fsyncs =
  Obs.Counter.make "hyper_vfs_fsyncs_total" ~help:"durability barriers issued"

let m_truncates = Obs.Counter.make "hyper_vfs_truncates_total" ~help:"truncates"
let m_opens = Obs.Counter.make "hyper_vfs_opens_total" ~help:"files opened"

let m_crashes =
  Obs.Counter.make "hyper_vfs_crashes_total"
    ~help:"simulated power failures observed at the VFS seam"

let m_retries =
  Obs.Counter.make "hyper_vfs_retries_total"
    ~help:"transient-fault retries performed by the retrying middleware"

let fault_kind = function
  | Storage_error.Eio -> "eio"
  | Storage_error.Enospc -> "enospc"
  | Storage_error.Efault _ -> "efault"

let note_exn exn =
  if !Obs.on then
    match exn with
    | Storage_error.Error (Storage_error.Io { fault; _ }) ->
        Obs.Counter.incr
          (Obs.Counter.labeled "hyper_vfs_faults_total"
             ~help:"typed I/O faults surfacing through the VFS, by kind"
             [ ("kind", fault_kind fault) ])
    | Crash -> Obs.Counter.incr m_crashes
    | _ -> ()

let observed vfs =
  let observe f = try f () with e -> note_exn e; raise e in
  let wrap_file f =
    { f with
      pread =
        (fun ~buf ~off ->
          Obs.Counter.incr m_reads;
          Obs.Counter.add m_read_bytes (Bytes.length buf);
          observe (fun () -> f.pread ~buf ~off));
      pread_multi =
        (fun reqs ->
          List.iter
            (fun (buf, _) ->
              Obs.Counter.incr m_reads;
              Obs.Counter.add m_read_bytes (Bytes.length buf))
            reqs;
          observe (fun () -> f.pread_multi reqs));
      pwrite =
        (fun ~buf ~off ->
          Obs.Counter.incr m_writes;
          Obs.Counter.add m_write_bytes (Bytes.length buf);
          observe (fun () -> f.pwrite ~buf ~off));
      truncate =
        (fun len ->
          Obs.Counter.incr m_truncates;
          observe (fun () -> f.truncate len));
      sync =
        (fun () ->
          Obs.Counter.incr m_fsyncs;
          Obs.Span.with_span "vfs.sync" (fun () ->
              observe (fun () -> f.sync ()))) }
  in
  { vfs with
    name = vfs.name ^ "+obs";
    open_rw =
      (fun path ->
        Obs.Counter.incr m_opens;
        wrap_file (observe (fun () -> vfs.open_rw path))) }

(* --- bounded retry with backoff --- *)

let retrying ?(attempts = 4) ?(backoff_s = 0.0005) vfs =
  let retry f =
    let rec go attempt delay =
      try f ()
      with Storage_error.Error e
           when Storage_error.is_transient e && attempt < attempts ->
        Obs.Counter.incr m_retries;
        if delay > 0. then (try Unix.sleepf delay with Unix.Unix_error _ -> ());
        go (attempt + 1) (delay *. 2.)
    in
    go 1 backoff_s
  in
  let wrap_file f =
    { f with
      pread = (fun ~buf ~off -> retry (fun () -> f.pread ~buf ~off));
      (* Retry each sub-read on its own so a transient fault in the
         middle of a batch does not force re-reading the whole batch. *)
      pread_multi =
        (List.iter (fun (buf, off) -> retry (fun () -> f.pread ~buf ~off)));
      pwrite = (fun ~buf ~off -> retry (fun () -> f.pwrite ~buf ~off));
      sync = (fun () -> retry f.sync) }
  in
  { vfs with
    name = vfs.name ^ "+retry";
    open_rw = (fun path -> wrap_file (retry (fun () -> vfs.open_rw path))) }

(* --- fault injection --- *)

module Faulty = struct
  type op = [ `Read | `Write | `Sync ]

  type rule = {
    suffix : string;
    rops : op list;
    fault : Storage_error.fault;
    transient : bool;
    mutable skip : int;
    mutable remaining : int;
  }

  type plan = {
    seed : int64;
    crash_after_writes : int;
    crash_after_syncs : int;
    torn_writes : bool;
    lying_fsync : bool;
    power_loss : bool;
    rules : rule list;
  }

  let quiet =
    { seed = 1L; crash_after_writes = 0; crash_after_syncs = 0;
      torn_writes = true; lying_fsync = false; power_loss = false; rules = [] }

  (* One simulated file.  [stable] is what survives power loss; [cur] is
     what reads observe; [pending] is the journal of mutations issued
     since the data was last made durable, oldest first. *)
  type pend =
    | Pwrite of { seq : int; off : int; data : bytes }
    | Ptrunc of { seq : int; len : int }

  type vfile = {
    vpath : string;
    mutable stable : bytes;
    mutable stable_len : int;
    mutable cur : bytes;
    mutable cur_len : int;
    mutable pending : pend list; (* newest first *)
  }

  type env = {
    mutable plan : plan;
    mutable rng : Hyper_util.Prng.t;
    files : (string, vfile) Hashtbl.t;
    mutable seq : int;
    mutable nwrites : int;
    mutable nsyncs : int;
    mutable crashed : bool;
  }

  let create plan =
    { plan; rng = Hyper_util.Prng.create plan.seed;
      files = Hashtbl.create 8; seq = 0; nwrites = 0; nsyncs = 0;
      crashed = false }

  let set_plan env plan =
    env.plan <- plan;
    env.rng <- Hyper_util.Prng.create plan.seed

  let write_count env = env.nwrites
  let sync_count env = env.nsyncs

  (* Crash points in the plan are absolute op counts, and [set_plan] does
     not reset the counters — arming a crash "k writes from now" after a
     setup phase therefore needs the current counts added in. *)
  let arm_crash env ?(after_writes = 0) ?(after_syncs = 0) ?power_loss () =
    let plan = env.plan in
    set_plan env
      {
        plan with
        crash_after_writes =
          (if after_writes > 0 then env.nwrites + after_writes else 0);
        crash_after_syncs =
          (if after_syncs > 0 then env.nsyncs + after_syncs else 0);
        power_loss = Option.value power_loss ~default:plan.power_loss;
      }

  let suffix_matches path suffix =
    let lp = String.length path and ls = String.length suffix in
    ls = 0 || (lp >= ls && String.sub path (lp - ls) ls = suffix)

  (* First matching live rule decides; a rule still in its [skip] window
     absorbs the op without firing (and without consulting later rules),
     which lets tests target "the Nth write to the WAL". *)
  let check_fault env ~opname ~(op : op) ~path =
    let rec scan = function
      | [] -> ()
      | r :: rest ->
        if r.remaining <> 0 && suffix_matches path r.suffix && List.mem op r.rops
        then begin
          if r.skip > 0 then r.skip <- r.skip - 1
          else begin
            if r.remaining > 0 then r.remaining <- r.remaining - 1;
            Storage_error.raise_io ~op:opname ~path ~fault:r.fault
              ~transient:r.transient
          end
        end
        else scan rest
    in
    scan env.plan.rules

  let check_crashed env = if env.crashed then raise Crash

  let grow_to vf len =
    if Bytes.length vf.cur < len then begin
      let cap = max 4096 (max len (2 * Bytes.length vf.cur)) in
      let bigger = Bytes.make cap '\000' in
      Bytes.blit vf.cur 0 bigger 0 vf.cur_len;
      vf.cur <- bigger
    end

  let apply_cur vf ~off ~data ~len =
    grow_to vf (off + len);
    if off > vf.cur_len then Bytes.fill vf.cur vf.cur_len (off - vf.cur_len) '\000';
    Bytes.blit data 0 vf.cur off len;
    vf.cur_len <- max vf.cur_len (off + len)

  let apply_stable vf = function
    | Pwrite { off; data; seq = _ } ->
      let len = Bytes.length data in
      if len > 0 then begin
        if Bytes.length vf.stable < off + len then begin
          let bigger = Bytes.make (max 4096 (max (off + len) (2 * Bytes.length vf.stable))) '\000' in
          Bytes.blit vf.stable 0 bigger 0 vf.stable_len;
          vf.stable <- bigger
        end;
        if off > vf.stable_len then
          Bytes.fill vf.stable vf.stable_len (off - vf.stable_len) '\000';
        Bytes.blit data 0 vf.stable off len;
        vf.stable_len <- max vf.stable_len (off + len)
      end
    | Ptrunc { len; seq = _ } -> vf.stable_len <- min vf.stable_len len

  let find_file env path =
    match Hashtbl.find_opt env.files path with
    | Some vf -> vf
    | None ->
      let vf =
        { vpath = path; stable = Bytes.empty; stable_len = 0;
          cur = Bytes.empty; cur_len = 0; pending = [] }
      in
      Hashtbl.add env.files path vf;
      vf

  (* A mutating op: bump the global write counter and crash here if the
     plan says so.  At the crash point only a PRNG-chosen prefix of the
     in-flight write reaches the file (a torn write). *)
  let mutating env vf mk_full mk_torn =
    check_crashed env;
    env.nwrites <- env.nwrites + 1;
    env.seq <- env.seq + 1;
    if env.plan.crash_after_writes > 0
       && env.nwrites >= env.plan.crash_after_writes
    then begin
      (match mk_torn with
       | Some torn when env.plan.torn_writes -> torn ()
       | _ -> ());
      env.crashed <- true;
      raise Crash
    end;
    let p = mk_full () in
    vf.pending <- p :: vf.pending

  let faulty_open env path =
    let vf = find_file env path in
    let do_pread ~opname ~buf ~off =
      check_crashed env;
      check_fault env ~opname ~op:`Read ~path;
      let len = Bytes.length buf in
      let avail = max 0 (min len (vf.cur_len - off)) in
      if avail > 0 then Bytes.blit vf.cur off buf 0 avail;
      if avail < len then Bytes.fill buf avail (len - avail) '\000'
    in
    { path;
      pread = (fun ~buf ~off -> do_pread ~opname:"pread" ~buf ~off);
      pread_multi =
        (* Faults are checked per sub-read, so a rule's [skip] window can
           target "the Nth page of a batch" and the crash-fuzz model sees
           batched reads exactly like a sequence of single reads. *)
        (List.iter (fun (buf, off) -> do_pread ~opname:"pread_multi" ~buf ~off));
      pwrite =
        (fun ~buf ~off ->
          check_crashed env;
          check_fault env ~opname:"pwrite" ~op:`Write ~path;
          let len = Bytes.length buf in
          mutating env vf
            (fun () ->
              apply_cur vf ~off ~data:buf ~len;
              Pwrite { seq = env.seq; off; data = Bytes.copy buf })
            (Some
               (fun () ->
                 let keep = Hyper_util.Prng.int env.rng (len + 1) in
                 apply_cur vf ~off ~data:buf ~len:keep;
                 vf.pending <-
                   Pwrite { seq = env.seq; off; data = Bytes.sub buf 0 keep }
                   :: vf.pending)));
      size =
        (fun () ->
          check_crashed env;
          vf.cur_len);
      truncate =
        (fun len ->
          check_crashed env;
          check_fault env ~opname:"ftruncate" ~op:`Write ~path;
          mutating env vf
            (fun () ->
              vf.cur_len <- min vf.cur_len len;
              Ptrunc { seq = env.seq; len })
            None);
      sync =
        (fun () ->
          check_crashed env;
          check_fault env ~opname:"fsync" ~op:`Sync ~path;
          env.nsyncs <- env.nsyncs + 1;
          if env.plan.crash_after_syncs > 0
             && env.nsyncs >= env.plan.crash_after_syncs
          then begin
            (* The barrier was requested but power failed first. *)
            env.crashed <- true;
            raise Crash
          end;
          if not env.plan.lying_fsync then begin
            vf.stable <- Bytes.sub vf.cur 0 vf.cur_len;
            vf.stable_len <- vf.cur_len;
            vf.pending <- []
          end);
      close = (fun () -> ()) }

  let vfs env =
    { name = "faulty";
      open_rw = (fun path -> faulty_open env path);
      exists =
        (fun path ->
          check_crashed env;
          Hashtbl.mem env.files path);
      remove =
        (fun path ->
          check_crashed env;
          Hashtbl.remove env.files path) }

  let pend_seq = function Pwrite { seq; _ } -> seq | Ptrunc { seq; _ } -> seq

  (* Power loss: replay the journal onto the durable images.  Without
     [power_loss] every issued op survives (the OS page cache outlives a
     process crash); with it, a PRNG-chosen global prefix of the issue
     order survives and the first dropped write may additionally be torn
     — modelling a FIFO write-back disk cache losing power. *)
  let power_fail env =
    let cutoff =
      if env.plan.power_loss then Hyper_util.Prng.int env.rng (env.seq + 1)
      else max_int
    in
    Hashtbl.iter
      (fun _ vf ->
        let ops = List.rev vf.pending in
        List.iter
          (fun p ->
            let s = pend_seq p in
            if s <= cutoff then apply_stable vf p
            else if s = cutoff + 1 && env.plan.torn_writes then
              match p with
              | Pwrite { off; data; seq } ->
                let keep = Hyper_util.Prng.int env.rng (Bytes.length data + 1) in
                apply_stable vf
                  (Pwrite { seq; off; data = Bytes.sub data 0 keep })
              | Ptrunc _ -> ())
          ops;
        vf.pending <- [];
        vf.cur <- Bytes.sub vf.stable 0 vf.stable_len;
        vf.cur_len <- vf.stable_len)
      env.files;
    env.crashed <- false;
    env.nwrites <- 0;
    env.nsyncs <- 0
end

(** Runtime switches for the storage fast paths.

    [legacy_copies] restores the pre-zero-copy behaviour everywhere it
    was optimized away: the Memory pager hands out fresh page copies,
    the buffer pool snapshots before-images and the commit dirty set,
    {!Heap} record reads materialise an intermediate payload, and
    {!Wal.append} encodes each record into a scratch buffer before
    copying it into the log's append buffer.

    The flag exists so the committed benchmark baseline
    ([BENCH_baseline.json]) stays reproducible from the current tree:
    [hyperbench bench --baseline] flips it on and measures the old
    allocation profile without needing an old checkout.  It is read at
    every call site rather than captured at open, so it must be set
    before the measured work starts and is not meant to be toggled
    mid-transaction. *)

val legacy_copies : bool ref
(** Default [false] (zero-copy read paths active). *)

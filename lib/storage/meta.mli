(** The master page (page 0): a tiny persistent string → int64 map.

    Backends keep their root pointers here — heap heads, B+tree roots, the
    object-table directory, the free-list head, and scalar counters.  The
    map must fit in one page. *)

val magic : string

val format : Buffer_pool.t -> unit
(** Initialise page 0 of a brand-new store (page 0 must already be
    allocated). *)

val is_formatted : Buffer_pool.t -> bool
(** Whether page 0 carries a valid, checksum-verified meta signature.
    Formatting is not WAL-covered, so a corrupt page 0 (a crash tore a
    formatting write) counts as unformatted — every post-format write to
    page 0 is WAL-covered, hence already repaired by recovery. *)

val conceal_magic : Buffer_pool.t -> unit
val stamp_magic : Buffer_pool.t -> unit
(** Two-phase formatting barrier: blank / restore the magic in the
    pooled page 0.  The formatter flushes and syncs the whole store with
    the magic concealed, then stamps and flushes page 0 alone, making
    the magic's arrival on disk the atomic commit point of formatting. *)

val load : Buffer_pool.t -> (string * int64) list
(** @raise Invalid_argument when page 0 has no valid meta signature. *)

val store : Buffer_pool.t -> (string * int64) list -> unit
(** Replace the whole map.  @raise Invalid_argument when it does not fit
    in one page or a key is longer than 255 bytes. *)

val get : Buffer_pool.t -> string -> int64 option
val get_exn : Buffer_pool.t -> string -> int64
val set : Buffer_pool.t -> string -> int64 -> unit
(** Read-modify-write of a single key. *)

(** Fixed-size database pages and primitive field accessors.

    Every on-disk structure (slotted heap pages, B+tree nodes, the object
    table, overflow chains) is laid out inside a {!size}-byte page.  This
    module provides the little-endian field accessors those layouts are
    built from; bounds errors raise [Invalid_argument] via the underlying
    [Bytes] primitives. *)

val size : int
(** Page size in bytes (4096). *)

val alloc : unit -> bytes
(** A zeroed page buffer. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
(** 32-bit unsigned read (as a non-negative [int]). *)

val set_u32 : bytes -> int -> int -> unit
val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

val get_sub : bytes -> pos:int -> len:int -> bytes
val set_sub : bytes -> pos:int -> bytes -> unit

val checksum : bytes -> int
(** CRC-32 (IEEE) of a buffer — the page-image checksum {!Pager} stores
    in the [.sum] sidecar and verifies on every read. *)

(** Page-type tags stored in byte 0 of structured pages.  A freshly
    allocated (zeroed) page reads as [Free]. *)
type ptype = Free | Meta | Heap | Overflow | Btree_leaf | Btree_internal | Obj_table

val get_type : bytes -> ptype
val set_type : bytes -> ptype -> unit
val type_to_string : ptype -> string

let size = 4096

let alloc () = Bytes.make size '\000'

let get_u8 b pos = Char.code (Bytes.get b pos)
let set_u8 b pos v = Bytes.set b pos (Char.chr (v land 0xFF))

let get_u16 b pos = Bytes.get_uint16_le b pos
let set_u16 b pos v = Bytes.set_uint16_le b pos v

let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF
let set_u32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)

let get_i64 b pos = Bytes.get_int64_le b pos
let set_i64 b pos v = Bytes.set_int64_le b pos v

let get_sub b ~pos ~len = Bytes.sub b pos len
let set_sub b ~pos src = Bytes.blit src 0 b pos (Bytes.length src)

(* CRC-32 (IEEE), table-driven — the page-image checksum.  Cheap enough
   to run on every physical page transfer (4 KiB), strong enough to
   catch torn writes and bit rot. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let checksum b =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  Bytes.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    b;
  !c lxor 0xFFFFFFFF

type ptype = Free | Meta | Heap | Overflow | Btree_leaf | Btree_internal | Obj_table

let of_tag = function
  | 0 -> Free
  | 1 -> Meta
  | 2 -> Heap
  | 3 -> Overflow
  | 4 -> Btree_leaf
  | 5 -> Btree_internal
  | 6 -> Obj_table
  | n -> invalid_arg (Printf.sprintf "Page.of_tag: unknown page type %d" n)

let to_tag = function
  | Free -> 0
  | Meta -> 1
  | Heap -> 2
  | Overflow -> 3
  | Btree_leaf -> 4
  | Btree_internal -> 5
  | Obj_table -> 6

let get_type b = of_tag (get_u8 b 0)
let set_type b t = set_u8 b 0 (to_tag t)

let type_to_string = function
  | Free -> "free"
  | Meta -> "meta"
  | Heap -> "heap"
  | Overflow -> "overflow"
  | Btree_leaf -> "btree-leaf"
  | Btree_internal -> "btree-internal"
  | Obj_table -> "obj-table"

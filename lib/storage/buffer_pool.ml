module Obs = Hyper_obs.Obs

(* Process-wide mirrors of the per-pool [stats] record, so a bench run
   over several pools still reports one coherent metric family. *)
let m_hits = Obs.Counter.make "hyper_pool_hits_total" ~help:"buffer-pool hits"

let m_misses =
  Obs.Counter.make "hyper_pool_misses_total" ~help:"buffer-pool demand misses"

let m_evictions =
  Obs.Counter.make "hyper_pool_evictions_total" ~help:"frames evicted"

let m_prefetches =
  Obs.Counter.make "hyper_pool_prefetches_total"
    ~help:"pages brought in by prefetch batches"

let m_pins =
  Obs.Counter.make "hyper_pool_pins_total" ~help:"pin calls (pin churn)"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable prefetches : int; (* pages brought in by [prefetch] batches *)
}

type frame = {
  page_id : int;
  mutable data : bytes;
  mutable owned : bool;
      (* false: [data] is a zero-copy view aliasing the pager's backing
         store — read-only until [unshare] copies it (copy-on-write) *)
  mutable dirty : bool;
  mutable pins : int;
  mutable tick : int; (* last-use stamp for LRU *)
}

type t = {
  pager : Pager.t;
  cap : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable on_first_dirty : int -> bytes -> unit;
  mutable on_evict_dirty : int -> bytes -> unit;
  (* pages already reported to [on_first_dirty] since the last
     [take_dirty_set] *)
  first_dirty_seen : (int, unit) Hashtbl.t;
  mutable pinned : int; (* frames with pins > 0; bounds prefetch batches *)
  stats : stats;
}

let no_hook (_ : int) (_ : bytes) = ()

let create pager ~capacity =
  if capacity < 4 then invalid_arg "Buffer_pool.create: capacity < 4";
  { pager; cap = capacity; frames = Hashtbl.create (2 * capacity); clock = 0;
    on_first_dirty = no_hook; on_evict_dirty = no_hook;
    first_dirty_seen = Hashtbl.create 64; pinned = 0;
    stats = { hits = 0; misses = 0; evictions = 0; prefetches = 0 } }

let capacity t = t.cap
let pager t = t.pager

let touch t f =
  t.clock <- t.clock + 1;
  f.tick <- t.clock

let write_back t f =
  if f.dirty then begin
    Pager.write t.pager f.page_id f.data;
    f.dirty <- false
  end

(* Evict the least-recently-used unpinned frame.  Dirty victims are
   announced through [on_evict_dirty] (WAL rule) and then written back. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ f best ->
        if f.pins > 0 then best
        else
          match best with
          | Some b when b.tick <= f.tick -> best
          | _ -> Some f)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned, cannot evict"
  | Some f ->
    if f.dirty then t.on_evict_dirty f.page_id f.data;
    write_back t f;
    Hashtbl.remove t.frames f.page_id;
    t.stats.evictions <- t.stats.evictions + 1;
    Obs.Counter.incr m_evictions

let ensure_room t =
  while Hashtbl.length t.frames >= t.cap do
    evict_one t
  done

let load t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some f ->
    t.stats.hits <- t.stats.hits + 1;
    Obs.Counter.incr m_hits;
    touch t f;
    f
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    Obs.Counter.incr m_misses;
    ensure_room t;
    let data, owned =
      Obs.Span.with_span "pool.miss" (fun () -> Pager.read_view t.pager page_id)
    in
    let f = { page_id; data; owned; dirty = false; pins = 0; tick = 0 } in
    touch t f;
    Hashtbl.add t.frames page_id f;
    f

let pin t f =
  Obs.Counter.incr m_pins;
  if f.pins = 0 then t.pinned <- t.pinned + 1;
  f.pins <- f.pins + 1

let unpin t f =
  f.pins <- f.pins - 1;
  if f.pins = 0 then t.pinned <- t.pinned - 1

let with_pinned t page_id k =
  let f = load t page_id in
  pin t f;
  Fun.protect ~finally:(fun () -> unpin t f) (fun () -> k f)

let with_page t page_id k = with_pinned t page_id (fun f -> k f.data)

(* Copy-on-write: give the frame its own buffer before the first
   mutation, so a zero-copy view never writes through to the pager's
   backing store. *)
let unshare f =
  if not f.owned then begin
    f.data <- Bytes.copy f.data;
    f.owned <- true
  end

(* The before-image is the frame content prior to the first write in the
   current txn window.  The hook receives the LIVE buffer — it must
   serialize or copy what it retains before returning, because the
   caller mutates the page next.  [legacy_copies] restores the historic
   defensive copy for baseline benchmarking. *)
let mark_dirty t f =
  if not (Hashtbl.mem t.first_dirty_seen f.page_id) then begin
    Hashtbl.add t.first_dirty_seen f.page_id ();
    if !Storage_tuning.legacy_copies then
      t.on_first_dirty f.page_id (Bytes.copy f.data)
    else t.on_first_dirty f.page_id f.data
  end;
  unshare f;
  f.dirty <- true

let with_page_w t page_id k =
  with_pinned t page_id (fun f ->
      mark_dirty t f;
      k f.data)

(* Batch prefetch: bring the missing pages of [page_ids] into the pool
   with one [Pager.read_many].  This is a hint, not a contract —
   already-resident ids are skipped, duplicates collapse, and the batch
   is capped at the number of unpinned slots so making room can never
   require evicting a pinned frame (ids past the cap are dropped; the
   later demand read pays for them one page at a time).  Fetched pages
   count as [prefetches], not [misses]. *)
let prefetch t page_ids =
  let seen = Hashtbl.create 16 in
  let missing =
    List.filter
      (fun id ->
        let fresh =
          (not (Hashtbl.mem t.frames id)) && not (Hashtbl.mem seen id)
        in
        if fresh then Hashtbl.add seen id ();
        fresh)
      page_ids
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let batch = take (t.cap - t.pinned) missing in
  if batch <> [] then begin
    let want = List.length batch in
    (* Terminates before evict_one can run out of unpinned victims:
       after (frames - pinned) evictions frames = pinned, and
       pinned + want <= cap by the cap above. *)
    while Hashtbl.length t.frames + want > t.cap do
      evict_one t
    done;
    let pages =
      Obs.Span.with_span "pool.prefetch" (fun () ->
          Pager.read_many_views t.pager batch)
    in
    Obs.Counter.add m_prefetches want;
    List.iter2
      (fun page_id (data, owned) ->
        let f = { page_id; data; owned; dirty = false; pins = 0; tick = 0 } in
        touch t f;
        Hashtbl.add t.frames page_id f;
        t.stats.prefetches <- t.stats.prefetches + 1)
      batch pages
  end

(* Pin a whole group for the duration of [k].  The prefetch fills every
   missing frame with one pager batch; the per-page [load]s below then
   hit the pool.  More distinct ids than the pool capacity cannot all be
   pinned and eventually fails in [evict_one]. *)
let with_pages t page_ids k =
  prefetch t page_ids;
  let pinned = ref [] in
  Fun.protect
    ~finally:(fun () -> List.iter (fun f -> unpin t f) !pinned)
    (fun () ->
      let frames =
        List.map
          (fun id ->
            let f = load t id in
            pin t f;
            pinned := f :: !pinned;
            f)
          page_ids
      in
      k (List.map (fun f -> f.data) frames))

(* The before-image of any freshly allocated page is all zeroes; one
   shared buffer serves every allocation (read-only by the hook
   contract — the hook copies what it retains). *)
let zero_page = lazy (Page.alloc ())

let allocate t =
  let page_id = Pager.allocate t.pager in
  ensure_room t;
  let f =
    { page_id; data = Page.alloc (); owned = true; dirty = true; pins = 0;
      tick = 0 }
  in
  touch t f;
  Hashtbl.add t.frames page_id f;
  if not (Hashtbl.mem t.first_dirty_seen page_id) then begin
    Hashtbl.add t.first_dirty_seen page_id ();
    if !Storage_tuning.legacy_copies then t.on_first_dirty page_id (Page.alloc ())
    else t.on_first_dirty page_id (Lazy.force zero_page)
  end;
  page_id

let flush_all t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let drop_all t =
  Hashtbl.iter
    (fun _ f ->
      if f.pins > 0 then invalid_arg "Buffer_pool.drop_all: page still pinned")
    t.frames;
  flush_all t;
  Hashtbl.reset t.frames;
  Hashtbl.reset t.first_dirty_seen

let discard_dirty t =
  let dirty_ids =
    Hashtbl.fold (fun id f acc -> if f.dirty then id :: acc else acc) t.frames []
  in
  List.iter (fun id -> Hashtbl.remove t.frames id) dirty_ids;
  Hashtbl.reset t.first_dirty_seen

let invalidate t page_id = Hashtbl.remove t.frames page_id

let set_txn_hooks t ~on_first_dirty ~on_evict_dirty =
  t.on_first_dirty <- on_first_dirty;
  t.on_evict_dirty <- on_evict_dirty

let clear_txn_hooks t =
  t.on_first_dirty <- no_hook;
  t.on_evict_dirty <- no_hook

(* Live buffers: a dirty frame always owns its data (COW in mark_dirty),
   so the returned bytes are the frame contents themselves, valid until
   the page is next mutated.  Callers serialize immediately (the engine
   appends After images to the WAL before returning to user code) and
   must not retain them. *)
let take_dirty_set t =
  let dirty =
    Hashtbl.fold
      (fun id f acc ->
        if f.dirty then
          (id, if !Storage_tuning.legacy_copies then Bytes.copy f.data else f.data)
          :: acc
        else acc)
      t.frames []
  in
  Hashtbl.reset t.first_dirty_seen;
  List.sort (fun (a, _) (b, _) -> compare a b) dirty

let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0;
  t.stats.prefetches <- 0

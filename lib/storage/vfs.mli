(** Virtual file system — the single seam through which every byte of
    storage I/O flows.

    {!Pager} and {!Wal} perform no direct [Unix] calls; they go through a
    [Vfs.t], of which there are three:

    - {!real} — passthrough to the operating system ([pread]/[pwrite]
      via {!ExtUnix}, [fsync], [ftruncate]);
    - {!retrying} — a middleware that retries transient
      {!Storage_error.Io} faults with bounded exponential backoff
      (installed once by {!Engine.open_}, so every storage path gets the
      same policy);
    - {!Faulty} — a deterministic, PRNG-seeded in-memory implementation
      that injects crashes, torn writes, lying fsync and typed I/O
      errors for the recovery fuzzer.

    This mirrors how {!Hyper_net.Latency_model} controls the latency
    environment: the fault plan controls the {e failure} environment of
    the system under test. *)

exception Crash
(** Simulated power failure, raised by the fault-injecting VFS at a
    planned crash point.  After it fires, every operation on the same
    environment raises [Crash] again until {!Faulty.power_fail} is
    called. *)

type file = {
  path : string;
  pread : buf:bytes -> off:int -> unit;
      (** Fill [buf] from [off]; regions past EOF read as zeroes. *)
  pread_multi : (bytes * int) list -> unit;
      (** Vectored read: fill each [(buf, off)] pair, in order, with the
          same semantics as issuing the [pread]s one by one (zero fill
          past EOF included).  One call is the unit the upper layers
          batch on — {!Pager.read_many} issues a single [pread_multi]
          per page group.  The fault-injecting VFS consults its rules
          once {e per sub-read}, so injected errors and torn tails hit
          individual pages of a batch exactly as they would hit single
          reads. *)
  pwrite : buf:bytes -> off:int -> unit;  (** Write all of [buf] at [off]. *)
  size : unit -> int;
  truncate : int -> unit;
  sync : unit -> unit;  (** Durability barrier. *)
  close : unit -> unit;
}

type t = {
  name : string;
  open_rw : string -> file;  (** Open read-write, creating if absent. *)
  exists : string -> bool;
  remove : string -> unit;
}

val real : t

val retrying : ?attempts:int -> ?backoff_s:float -> t -> t
(** [retrying vfs] retries operations that fail with a {e transient}
    {!Storage_error.Io} up to [attempts] times total, sleeping
    [backoff_s] (doubling each retry) in between.  Permanent faults and
    {!Crash} propagate immediately.  Each retry bumps
    [hyper_vfs_retries_total]. *)

val observed : t -> t
(** Observability middleware: counts reads/writes/fsyncs/truncates and
    their byte volumes into the {!Hyper_obs.Obs} registry
    ([hyper_vfs_*]), classifies surfacing faults by kind
    ([hyper_vfs_faults_total{kind="..."}] — always re-raising), and
    wraps [sync] in a ["vfs.sync"] span.  Installed once by
    {!Engine.open_} {e outside} {!retrying}, so a retried operation
    counts once and absorbed transient faults appear only as
    retries. *)

(** Deterministic fault injection over an in-memory file namespace.

    Files survive [close]/re-[open_rw] within one environment, so a
    store can be crashed and reopened entirely in process.  Each file
    keeps a durable image plus a journal of issued-but-unsynced
    mutations; a crash replays a prefix of the global issue order, which
    models a FIFO write-back disk cache. *)
module Faulty : sig
  type op = [ `Read | `Write | `Sync ]

  type rule = {
    suffix : string;  (** file-name suffix to match; [""] matches all *)
    rops : op list;
    fault : Storage_error.fault;
    transient : bool;
    mutable skip : int;  (** let this many matching ops through first *)
    mutable remaining : int;  (** times to fire; [-1] = forever *)
  }

  type plan = {
    seed : int64;
    crash_after_writes : int;
        (** raise {!Crash} during the Nth mutating op (write or
            truncate); [0] disables *)
    crash_after_syncs : int;
        (** raise {!Crash} during the Nth [sync], before it persists
            anything; [0] disables *)
    torn_writes : bool;
        (** a crashing or power-lost write may leave a partial prefix *)
    lying_fsync : bool;  (** [sync] reports success without persisting *)
    power_loss : bool;
        (** on {!power_fail}, unsynced writes past a random cutoff are
            lost (otherwise everything issued survives, as after a mere
            process kill) *)
    rules : rule list;  (** typed I/O error injection *)
  }

  val quiet : plan
  (** No crashes, no faults: [{ seed = 1L; crash_after_writes = 0;
      crash_after_syncs = 0; torn_writes = true; lying_fsync = false;
      power_loss = false; rules = [] }]. *)

  type env

  val create : plan -> env
  val vfs : env -> t

  val set_plan : env -> plan -> unit
  (** Replace the plan (and reseed the PRNG) — e.g. arm a crash point
      after setup, or disarm everything before recovery. *)

  val write_count : env -> int
  (** Mutating ops since creation or the last {!power_fail} — use a dry
      run to size the crash-point space. *)

  val sync_count : env -> int

  val arm_crash :
    env -> ?after_writes:int -> ?after_syncs:int -> ?power_loss:bool -> unit -> unit
  (** Arm a crash point {e relative to the current counters}: crash
      during the [after_writes]-th mutating op (or [after_syncs]-th
      sync) from now, counting from the next one.  [0] (the default)
      leaves that trigger disarmed.  Keeps the rest of the current plan
      ([power_loss] optionally overridden) — the convenience the
      differential crash harness uses to plant a crash mid-trace after
      an unfaulted setup phase. *)

  val power_fail : env -> unit
  (** Simulate losing power: settle every file to its durable contents (see
      [power_loss] and [torn_writes]), drop the journals, clear the
      crashed flag and reset the op counters.  The environment can then
      be reopened to exercise recovery. *)
end

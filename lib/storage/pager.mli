(** File-backed page store.

    One pager owns one database file addressed as an array of
    {!Page.size}-byte pages.  All physical I/O in a backend flows through
    here, which gives a single point for

    - counting reads and writes (the benchmark's I/O statistics),
    - simulating slower media or a remote page server: the [on_read] /
      [on_write] hooks fire once per physical page transfer, and typically
      advance {!Hyper_util.Vclock} by a modelled latency, and
    - fault injection: all physical I/O goes through a {!Vfs.t}, never
      through [Unix] directly.

    Every page carries a CRC-32 stored in a [path ^ ".sum"] sidecar
    (4 bytes per page, written on every page write).  Reads verify it and
    raise {!Storage_error.Error} ([Corrupt_page]) on mismatch, so a torn
    write or bit rot is caught at the pager instead of corrupting the
    heap or the indexes silently.  A zero slot (sidecar hole, or a file
    that predates checksums) is accepted unverified. *)

type t

type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

val create : ?vfs:Vfs.t -> string -> t
(** [create path] opens (or creates) the file at [path] (and its [.sum]
    sidecar) through [vfs] (default {!Vfs.real}).  A partial page at the
    tail of the file — a torn append left by a crash — is truncated away;
    WAL replay re-extends the file if a committed transaction mentions
    the page. *)

val in_memory : unit -> t
(** A pager backed by an expandable in-RAM array instead of a file —
    used in tests and by backends running in "diskless" mode.  Hooks and
    statistics behave identically. *)

val page_count : t -> int

val allocate : t -> int
(** Extend the store by one zeroed page and return its id. *)

val read : t -> int -> bytes
(** A fresh copy of the page contents.
    @raise Invalid_argument for an id that was never allocated. *)

val read_view : t -> int -> bytes * bool
(** Zero-copy read: the page contents plus an ownership flag.  [(buf,
    true)] — [buf] is freshly allocated and the caller may keep and
    mutate it (File backing, or any backing with
    {!Storage_tuning.legacy_copies} set).  [(buf, false)] — [buf]
    aliases the pager's in-memory backing store: treat it as read-only,
    copy before mutating, and do not retain it past the next {!write}
    or {!allocate} of the same page (the store then swaps the buffer
    out and the view goes stale).  Hooks and statistics fire exactly
    like {!read}. *)

val read_many : t -> int list -> bytes list
(** [read_many t ids] reads the pages as one vectored
    {!Vfs.file.pread_multi} (data and checksum sidecar each get a single
    call) and verifies every page's CRC.  Statistics count one read per
    page, but the batched hook — when installed via [set_hooks
    ~on_read_many] — fires {e once} with the whole id list, so a remote
    channel can charge one round trip for the group.  Without a batched
    hook, [on_read] fires per page as usual.  Duplicate ids are read
    twice; order of the result matches [ids].
    @raise Invalid_argument if any id was never allocated. *)

val read_many_views : t -> int list -> (bytes * bool) list
(** {!read_many} without the defensive copies: each page comes back as
    a {!read_view}-style [(buf, owned)] pair.  Same vectored I/O,
    verification, hook and statistics behaviour as {!read_many}. *)

val read_unverified : t -> int -> bytes
(** Like {!read} but skips checksum verification, fires no hooks and
    counts no statistics.  For probing pages whose integrity is unknown
    by design — e.g. deciding whether page 0 of a file that survived a
    crash during formatting carries the meta magic. *)

val write : t -> int -> bytes -> unit
(** @raise Invalid_argument on an unallocated id or wrong buffer size. *)

val sync : t -> unit
(** Flush to stable storage (no-op for in-memory pagers). *)

val close : t -> unit

val set_hooks :
  ?on_read_many:(int list -> unit) ->
  t -> on_read:(int -> unit) -> on_write:(int -> unit) -> unit
(** Install I/O hooks.  [on_read]/[on_write] receive the page id, once
    per physical page transfer.  [on_read_many], when supplied, replaces
    the per-page [on_read] for {!read_many} batches: it receives the
    whole id list once (the "group fetch" of the remote channel).  When
    absent, batches fall back to per-page [on_read]. *)

val clear_hooks : t -> unit
val stats : t -> stats
val reset_stats : t -> unit

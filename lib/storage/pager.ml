type stats = { mutable reads : int; mutable writes : int; mutable allocs : int }

type backing =
  | File of { data : Vfs.file; sums : Vfs.file }
  | Memory of { mutable pages : bytes array }
      (* capacity = Array.length pages; the pager's [count] is the used
         prefix, so growth is amortized doubling, not O(n) per alloc *)

type t = {
  backing : backing;
  mutable count : int;
  mutable on_read : int -> unit;
  mutable on_write : int -> unit;
  mutable on_read_many : (int list -> unit) option;
      (* batched-read hook; [None] falls back to [on_read] per page *)
  stats : stats;
  mutable closed : bool;
}

let no_hook (_ : int) = ()

let fresh_stats () = { reads = 0; writes = 0; allocs = 0 }

(* Each page's CRC lives in a 4-byte slot of the [.sum] sidecar.  Zero
   means "no checksum recorded" (a hole, or a pre-checksum file) and is
   accepted; a computed CRC of zero is stored as 1. *)
let sum_width = 4

let page_crc buf = match Page.checksum buf with 0 -> 1 | c -> c

let create ?(vfs = Vfs.real) path =
  let data = vfs.Vfs.open_rw path in
  let len = data.Vfs.size () in
  let count = len / Page.size in
  (* A partial page at the tail is a torn append from a crash: the
     allocation never committed, so drop it.  WAL replay re-extends the
     file if the page is mentioned by a committed transaction. *)
  if len mod Page.size <> 0 then data.Vfs.truncate (count * Page.size);
  let sums = vfs.Vfs.open_rw (path ^ ".sum") in
  (* Discard checksums beyond the data (stale sidecar, fresh file). *)
  if sums.Vfs.size () > count * sum_width then
    sums.Vfs.truncate (count * sum_width);
  { backing = File { data; sums }; count; on_read = no_hook;
    on_write = no_hook; on_read_many = None; stats = fresh_stats ();
    closed = false }

let in_memory () =
  { backing = Memory { pages = [||] }; count = 0; on_read = no_hook;
    on_write = no_hook; on_read_many = None; stats = fresh_stats ();
    closed = false }

let check_open t = if t.closed then invalid_arg "Pager: store is closed"

let check_id t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Pager: page %d out of range (count %d)" id t.count)

let page_count t = t.count

let write_sum sums id buf =
  let sb = Bytes.create sum_width in
  Page.set_u32 sb 0 (page_crc buf);
  sums.Vfs.pwrite ~buf:sb ~off:(id * sum_width)

let verify_sum_value ~data id buf ~expected =
  if expected <> 0 then begin
    let actual = page_crc buf in
    if actual <> expected then
      raise
        (Storage_error.Error
           (Storage_error.Corrupt_page
              { path = data.Vfs.path; page = id; expected; actual }))
  end

let verify_sum ~data ~sums id buf =
  let sb = Bytes.create sum_width in
  sums.Vfs.pread ~buf:sb ~off:(id * sum_width);
  verify_sum_value ~data id buf ~expected:(Page.get_u32 sb 0)

let allocate t =
  check_open t;
  let id = t.count in
  t.count <- t.count + 1;
  t.stats.allocs <- t.stats.allocs + 1;
  (match t.backing with
  | File { data; sums } ->
    let zero = Page.alloc () in
    data.Vfs.pwrite ~buf:zero ~off:(id * Page.size);
    write_sum sums id zero
  | Memory m ->
    let cap = Array.length m.pages in
    if id >= cap then begin
      let grown = Array.make (max 8 (2 * cap)) Bytes.empty in
      Array.blit m.pages 0 grown 0 cap;
      m.pages <- grown
    end;
    m.pages.(id) <- Page.alloc ());
  id

(* A view is the page bytes plus an ownership flag.  [true] = freshly
   allocated, the caller may keep and mutate it.  [false] = the buffer
   aliases the backing store (Memory backend) — read-only, copy before
   mutating, never retain past the next [write]/[allocate]. *)
let read_view t id =
  check_open t;
  check_id t id;
  t.stats.reads <- t.stats.reads + 1;
  t.on_read id;
  match t.backing with
  | File { data; sums } ->
    let buf = Bytes.create Page.size in
    data.Vfs.pread ~buf ~off:(id * Page.size);
    verify_sum ~data ~sums id buf;
    (buf, true)
  | Memory m ->
    if !Storage_tuning.legacy_copies then (Bytes.copy m.pages.(id), true)
    else (m.pages.(id), false)

let read t id =
  let buf, owned = read_view t id in
  if owned then buf else Bytes.copy buf

(* Vectored read: one [pread_multi] for the page contents and one for
   their checksum slots, then per-page verification.  Statistics count
   every page; the batched hook (when installed) fires once for the
   whole group — that is what lets a remote channel charge a single
   round trip for a group fetch. *)
let read_many_views t ids =
  check_open t;
  List.iter (fun id -> check_id t id) ids;
  if ids = [] then []
  else begin
    t.stats.reads <- t.stats.reads + List.length ids;
    (match t.on_read_many with
    | Some f -> f ids
    | None -> List.iter t.on_read ids);
    match t.backing with
    | File { data; sums } ->
      let bufs = List.map (fun _ -> Bytes.create Page.size) ids in
      data.Vfs.pread_multi
        (List.map2 (fun id buf -> (buf, id * Page.size)) ids bufs);
      let sum_bufs = List.map (fun _ -> Bytes.create sum_width) ids in
      sums.Vfs.pread_multi
        (List.map2 (fun id sb -> (sb, id * sum_width)) ids sum_bufs);
      let rec verify ids bufs sbs =
        match (ids, bufs, sbs) with
        | [], [], [] -> ()
        | id :: ids, buf :: bufs, sb :: sbs ->
          verify_sum_value ~data id buf ~expected:(Page.get_u32 sb 0);
          verify ids bufs sbs
        | _ -> assert false
      in
      verify ids bufs sum_bufs;
      List.map (fun buf -> (buf, true)) bufs
    | Memory m ->
      List.map
        (fun id ->
          if !Storage_tuning.legacy_copies then (Bytes.copy m.pages.(id), true)
          else (m.pages.(id), false))
        ids
  end

let read_many t ids =
  List.map
    (fun (buf, owned) -> if owned then buf else Bytes.copy buf)
    (read_many_views t ids)

let read_unverified t id =
  check_open t;
  check_id t id;
  match t.backing with
  | File { data; _ } ->
    let buf = Bytes.create Page.size in
    data.Vfs.pread ~buf ~off:(id * Page.size);
    buf
  | Memory m -> Bytes.copy m.pages.(id)

let write t id data_buf =
  check_open t;
  check_id t id;
  if Bytes.length data_buf <> Page.size then
    invalid_arg "Pager.write: buffer is not one page";
  t.stats.writes <- t.stats.writes + 1;
  t.on_write id;
  match t.backing with
  | File { data; sums } ->
    data.Vfs.pwrite ~buf:data_buf ~off:(id * Page.size);
    write_sum sums id data_buf
  (* The copy keeps the store disjoint from the caller's buffer (a pool
     frame keeps mutating its own copy after write-back).  The previous
     store buffer is replaced, not mutated — an outstanding read view
     keeps seeing the pre-write bytes, which is why views must not be
     retained across a write. *)
  | Memory m -> m.pages.(id) <- Bytes.copy data_buf

let sync t =
  check_open t;
  match t.backing with
  | File { data; sums } ->
    data.Vfs.sync ();
    sums.Vfs.sync ()
  | Memory _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backing with
    | File { data; sums } ->
      data.Vfs.close ();
      sums.Vfs.close ()
    | Memory _ -> ()
  end

let set_hooks ?on_read_many t ~on_read ~on_write =
  t.on_read <- on_read;
  t.on_write <- on_write;
  t.on_read_many <- on_read_many

let clear_hooks t =
  t.on_read <- no_hook;
  t.on_write <- no_hook;
  t.on_read_many <- None

let stats t = t.stats

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.writes <- 0;
  t.stats.allocs <- 0

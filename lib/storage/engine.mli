(** Transactional storage session shared by the disk backends.

    Bundles one pager, its buffer pool and its write-ahead log into a
    unit with ACID bracketing:

    - [begin_txn] installs buffer-pool hooks that log before-images on
      first-dirty and after-images on dirty steals (write-ahead rule);
    - [commit] calls the owner's [on_save] hook (persist roots into the
      meta page), logs after-images of all dirty pages, seals the log,
      and force-flushes the pool;
    - [abort] discards in-pool writes, restores stolen pages from the
      undo set, and calls the owner's [on_reload] hook so in-memory roots
      (B+tree roots, heap tails, counters) are re-attached from the meta
      page;
    - [open_] runs crash recovery from the log when needed.

    Owners (the object backend, the relational backend) provide the data
    structures; this module provides the transaction discipline, so the
    recovery semantics are identical across backends.

    Failure handling: all I/O flows through the supplied {!Vfs.t},
    wrapped once in {!Vfs.retrying} so transient faults are retried with
    bounded backoff.  If the WAL can no longer be appended (permanent
    [ENOSPC]), the engine rolls the open transaction back in memory and
    demotes itself to {!read_only}: committed data stays readable,
    [begin_txn] raises {!Storage_error.Error} [Read_only]. *)

type t

val open_ :
  ?vfs:Vfs.t ->
  path:string ->
  pool_pages:int ->
  ?durable_sync:bool ->
  ?group_commit:Group_commit.config ->
  ?checkpoint_wal_bytes:int ->
  unit ->
  t
(** Defaults: {!Vfs.real}, no fsync, no group commit, 64 MiB checkpoint
    threshold.  The WAL lives at [path ^ ".wal"], page checksums at
    [path ^ ".sum"].  [group_commit] batches the per-commit fsyncs of
    concurrent committers through a {!Group_commit} scheduler; it only
    takes effect together with [durable_sync] (without it there is no
    fsync to batch) and changes nothing for a single-threaded caller
    except that the fsync happens in {!await_durable} (inside {!commit}
    for most callers). *)

val fresh : t -> bool
(** Whether the store was empty at [open_] (owner must format it). *)

val recovery : t -> Recovery.report option

val read_only : t -> bool
(** Whether the engine degraded to read-only after a WAL append failure. *)

val set_hooks : t -> on_save:(unit -> unit) -> on_reload:(unit -> unit) -> unit
(** Must be called once right after [open_] (and before any
    transaction). *)

val pool : t -> Buffer_pool.t
val pager : t -> Pager.t

val wal : t -> Wal.t
(** The engine's write-ahead log — replication installs its stream
    cursor ({!Wal.set_on_append}) here. *)

val set_commit_hook : t -> (int -> unit) option -> unit
(** Called with the transaction id after each successful [commit], once
    the transaction is locally durable and the engine is back in a
    clean non-transactional state.  Replication gates the commit on its
    ack policy here; the hook may raise (e.g. quorum loss) and the
    exception propagates to the committer with local durability
    already established. *)

val demote_read_only : t -> unit
(** Degrade to read-only: committed data stays readable, [begin_txn]
    raises {!Storage_error.Error} [Read_only].  Replication uses this
    when the primary loses its quorum or is fenced by a newer epoch. *)

val begin_txn : t -> unit
val commit : t -> unit
val abort : t -> unit
val in_txn : t -> bool

type ticket
(** A committed-but-not-yet-durable transaction (group commit). *)

val commit_ticket : t -> ticket
(** First phase of {!commit}: everything up to (but not including) the
    group durability barrier — after-images and the commit record are
    logged and issued, the pool is flushed, the engine is back in a
    clean non-transactional state.  Without a group scheduler the fsync
    (or plain flush) already happened and the ticket is trivially
    durable.  The point of the split is concurrency: a caller that
    serializes engine access through a lock can take the ticket inside
    the lock and {!await_durable} outside it, which is what lets
    concurrent committers share one fsync.  A transaction must not be
    acked before its ticket is awaited. *)

val await_durable : t -> ticket -> unit
(** Block until the ticket's commit record is covered by a durability
    barrier.  On barrier failure the engine demotes itself to
    {!read_only} and re-raises: the transaction state is already torn
    down, so there is nothing to roll back, and whether the commit
    record survives a restart is unknown — the caller must not ack.
    Unlike {!commit}, the split never runs the commit hook or the
    checkpoint check; use the split only on engines without a
    replication hook (the multiuser harness, benchmarks). *)

val group_commit_stats : t -> (int * int) option
(** [(groups, members)] from the {!Group_commit} scheduler, or [None]
    when group commit is off. *)

val wal_sync_count : t -> int
(** {!Wal.sync_count} of the engine's log. *)

val require_txn : t -> unit
(** @raise Invalid_argument outside a transaction. *)

val clear_caches : t -> unit
(** Drop the buffer pool (cold-run reset).
    @raise Invalid_argument inside a transaction. *)

val checkpoint : t -> unit

val close : t -> unit
(** Checkpoint and release the file handles.  A transaction still open
    at close was never durable (its commit record does not exist), so
    it is rolled back first — close is typically called from a
    [Fun.protect] finalizer, where raising would mask the exception
    that abandoned the transaction.  Idempotent. *)

val wal_bytes : t -> int

(** Transactional storage session shared by the disk backends.

    Bundles one pager, its buffer pool and its write-ahead log into a
    unit with ACID bracketing:

    - [begin_txn] installs buffer-pool hooks that log before-images on
      first-dirty and after-images on dirty steals (write-ahead rule);
    - [commit] calls the owner's [on_save] hook (persist roots into the
      meta page), logs after-images of all dirty pages, seals the log,
      and force-flushes the pool;
    - [abort] discards in-pool writes, restores stolen pages from the
      undo set, and calls the owner's [on_reload] hook so in-memory roots
      (B+tree roots, heap tails, counters) are re-attached from the meta
      page;
    - [open_] runs crash recovery from the log when needed.

    Owners (the object backend, the relational backend) provide the data
    structures; this module provides the transaction discipline, so the
    recovery semantics are identical across backends.

    Failure handling: all I/O flows through the supplied {!Vfs.t},
    wrapped once in {!Vfs.retrying} so transient faults are retried with
    bounded backoff.  If the WAL can no longer be appended (permanent
    [ENOSPC]), the engine rolls the open transaction back in memory and
    demotes itself to {!read_only}: committed data stays readable,
    [begin_txn] raises {!Storage_error.Error} [Read_only]. *)

type t

val open_ :
  ?vfs:Vfs.t ->
  path:string ->
  pool_pages:int ->
  ?durable_sync:bool ->
  ?checkpoint_wal_bytes:int ->
  unit ->
  t
(** Defaults: {!Vfs.real}, no fsync, 64 MiB checkpoint threshold.  The
    WAL lives at [path ^ ".wal"], page checksums at [path ^ ".sum"]. *)

val fresh : t -> bool
(** Whether the store was empty at [open_] (owner must format it). *)

val recovery : t -> Recovery.report option

val read_only : t -> bool
(** Whether the engine degraded to read-only after a WAL append failure. *)

val set_hooks : t -> on_save:(unit -> unit) -> on_reload:(unit -> unit) -> unit
(** Must be called once right after [open_] (and before any
    transaction). *)

val pool : t -> Buffer_pool.t
val pager : t -> Pager.t

val wal : t -> Wal.t
(** The engine's write-ahead log — replication installs its stream
    cursor ({!Wal.set_on_append}) here. *)

val set_commit_hook : t -> (int -> unit) option -> unit
(** Called with the transaction id after each successful [commit], once
    the transaction is locally durable and the engine is back in a
    clean non-transactional state.  Replication gates the commit on its
    ack policy here; the hook may raise (e.g. quorum loss) and the
    exception propagates to the committer with local durability
    already established. *)

val demote_read_only : t -> unit
(** Degrade to read-only: committed data stays readable, [begin_txn]
    raises {!Storage_error.Error} [Read_only].  Replication uses this
    when the primary loses its quorum or is fenced by a newer epoch. *)

val begin_txn : t -> unit
val commit : t -> unit
val abort : t -> unit
val in_txn : t -> bool

val require_txn : t -> unit
(** @raise Invalid_argument outside a transaction. *)

val clear_caches : t -> unit
(** Drop the buffer pool (cold-run reset).
    @raise Invalid_argument inside a transaction. *)

val checkpoint : t -> unit

val close : t -> unit
(** Checkpoint and release the file handles.  A transaction still open
    at close was never durable (its commit record does not exist), so
    it is rolled back first — close is typically called from a
    [Fun.protect] finalizer, where raising would mask the exception
    that abandoned the transaction.  Idempotent. *)

val wal_bytes : t -> int

(** WAL group commit: one fsync for a batch of concurrent committers.

    Protocol.  A committer appends and {!Wal.flush}es its own log bytes
    (under whatever serialization the owner already imposes on the
    engine — e.g. the multiuser harness's database mutex), then
    {!register}s for a ticket and {!await}s it, typically {e outside}
    that serialization so other committers can prepare meanwhile.  The
    first waiter becomes the group leader: it holds the group open until
    [max_batch] committers are pending or [max_hold_ns] of virtual-clock
    time has passed, snapshots the pending set, issues a single
    {!Wal.sync_file}, and wakes every member.  [await] returns only once
    the caller's bytes are covered by a completed fsync — a transaction
    must not be acked before that.

    Correctness rests on two orderings, both established by the caller:
    flush-before-register (so the snapshot covers every member's bytes)
    and the write-ahead rule (before-images flushed before any page
    write-back), which is what lets a crash between the page writes and
    the group fsync roll unacked members back on recovery.

    Failure: if the group fsync raises (full disk, injected crash), the
    scheduler is poisoned — the exception propagates to every current
    and future waiter.  The engine reacts by demoting itself to
    read-only; a reopen builds a fresh scheduler.

    OCaml 4.14's [Condition] has no timed wait, so the leader's hold
    window is a yield loop against {!Hyper_util.Vclock} — cheap at the
    microsecond scales involved, and it keeps the hold time on the same
    virtual clock the benchmark measures with. *)

type config = {
  max_batch : int;  (** fsync as soon as this many committers are pending *)
  max_hold_ns : float;
      (** longest the leader holds the group open (virtual-clock ns);
          [0.] means fsync immediately for whoever is already pending *)
}

val default_config : config
(** [{ max_batch = 8; max_hold_ns = 2e6 }] (2 ms). *)

type t

val create : config -> Wal.t -> t
(** @raise Invalid_argument when [max_batch < 1] or [max_hold_ns < 0]. *)

type ticket

val register : t -> ticket
(** Join the open group.  The caller's WAL bytes must already be
    flushed. *)

val await : t -> ticket -> unit
(** Block until a group fsync covers the ticket.  Re-raises the fsync's
    exception (for every member) if the barrier failed. *)

val stats : t -> int * int
(** [(groups, members)]: fsyncs issued and committers covered since
    [create].  [members / groups] is the mean batch size; [groups <
    members] is the saving.  Counted unconditionally (not gated on the
    metrics sink); the [hyper_wal_group_size] / [hyper_wal_group_wait_ns]
    histograms carry the distributions when the sink is on. *)

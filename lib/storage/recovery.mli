(** Crash recovery from the write-ahead log.

    Redo pass: after-images of committed transactions are applied in log
    order.  Undo pass: the *first* before-image of every page touched by
    an uncommitted transaction is applied, restoring its pre-transaction
    state.  The engine runs one write transaction at a time, so at most
    one transaction is ever in the uncommitted set. *)

type report = {
  committed : int list;   (** transactions redone *)
  rolled_back : int list; (** transactions undone *)
  pages_redone : int;
  pages_undone : int;
}

val apply_log : Wal.entry list -> write:(int -> bytes -> unit) -> int * int
(** Log-order image resolution over a decoded entry list: committed
    transactions' After images and uncommitted transactions' Before
    images, later record winning per page, emitted through [write].
    Returns [(pages_redone, pages_undone)].  This is the core of
    {!recover} exposed so a replication replica can redo its received
    log without owning a WAL file. *)

val recover : ?vfs:Vfs.t -> wal_path:string -> Pager.t -> report
(** Replay [wal_path] into the pager.  Pages referenced by the log but
    beyond the current end of file are allocated first (a torn log can
    legitimately mention pages past the data file's end — recovery must
    extend the file, never crash). *)

val needs_recovery : ?vfs:Vfs.t -> string -> bool
(** True when the log contains entries after the last checkpoint. *)

(** Slotted-page record layout.

    Layout of a heap page (all offsets little-endian):

    {v
      0       page type (Page.Heap)
      1       unused
      2..3    slot count
      4..5    free_end   -- lowest byte offset used by record data
      6..9    next page id in the owning heap's chain (0 = none)
      10..15  reserved
      16..    slot directory, 4 bytes per slot: offset u16, length u16
      ...     free space
      ...4095 record data, allocated from the page end downward
    v}

    A slot with offset 0 is a tombstone (page offsets below the header are
    impossible for live records).  Record length 0 is legal.  All
    functions operate on a raw page buffer obtained from the buffer
    pool. *)

val header_size : int
val max_record : int
(** Largest record storable in a fresh page. *)

val init : bytes -> unit
(** Format a blank page as an empty heap page. *)

val slot_count : bytes -> int
val next_page : bytes -> int
val set_next_page : bytes -> int -> unit

val free_space : bytes -> int
(** Bytes available for a *new* record including its slot entry. *)

val insert : bytes -> bytes -> int option
(** [insert page record] returns the slot index, or [None] when the page
    is full (after attempting compaction). *)

val read : bytes -> int -> bytes
(** @raise Invalid_argument on a free or out-of-range slot. *)

val view : bytes -> int -> int * int
(** [(offset, length)] of the record inside the page buffer — the
    zero-copy counterpart of {!read}.  The range is only stable until
    the page is next mutated (an insert or update may compact the
    page).  @raise Invalid_argument like {!read}. *)

val delete : bytes -> int -> unit
(** Tombstone the slot.  @raise Invalid_argument on a free slot. *)

val update : bytes -> int -> bytes -> bool
(** In-place update; returns [false] when the new record does not fit
    (caller must then delete + reinsert elsewhere). *)

val iter : bytes -> (int -> bytes -> unit) -> unit
(** Visit every live slot with its record. *)

val live_records : bytes -> int

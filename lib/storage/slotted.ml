let header_size = 16
let slot_bytes = 4

let off_slot_count = 2
let off_free_end = 4
let off_next_page = 6

let max_record = Page.size - header_size - slot_bytes

let init page =
  Bytes.fill page 0 Page.size '\000';
  Page.set_type page Page.Heap;
  Page.set_u16 page off_slot_count 0;
  Page.set_u16 page off_free_end (Page.size land 0xFFFF)

(* free_end is stored mod 2^16; 4096 fits, but Page.size = 4096 exactly is
   representable, so no masking subtleties: values range 16..4096. *)
let get_free_end page =
  let v = Page.get_u16 page off_free_end in
  if v = 0 then 65536 else v

let set_free_end page v = Page.set_u16 page off_free_end (v land 0xFFFF)

let slot_count page = Page.get_u16 page off_slot_count
let next_page page = Page.get_u32 page off_next_page
let set_next_page page v = Page.set_u32 page off_next_page v

let slot_pos i = header_size + (i * slot_bytes)

let slot_offset page i = Page.get_u16 page (slot_pos i)
let slot_length page i = Page.get_u16 page (slot_pos i + 2)

let set_slot page i ~offset ~length =
  Page.set_u16 page (slot_pos i) offset;
  Page.set_u16 page (slot_pos i + 2) length

let is_free page i = slot_offset page i = 0

let check_slot page i =
  if i < 0 || i >= slot_count page then
    invalid_arg (Printf.sprintf "Slotted: slot %d out of range" i);
  if is_free page i then
    invalid_arg (Printf.sprintf "Slotted: slot %d is free" i)

let directory_end page = slot_pos (slot_count page)

let free_space page =
  let gap = get_free_end page - directory_end page in
  Stdlib.max 0 (gap - slot_bytes)

(* Reclaim holes left by deletes/updates: slide live records to the end of
   the page, preserving slot indices. *)
let compact page =
  let n = slot_count page in
  let live = ref [] in
  for i = 0 to n - 1 do
    if not (is_free page i) then
      live := (i, slot_offset page i, slot_length page i) :: !live
  done;
  (* Place records from the page end downward, highest old offset first to
     allow safe in-buffer moves via a scratch copy. *)
  let scratch = Bytes.copy page in
  let free_end = ref Page.size in
  List.iter
    (fun (i, off, len) ->
      free_end := !free_end - len;
      Bytes.blit scratch off page !free_end len;
      set_slot page i ~offset:!free_end ~length:len)
    (List.sort (fun (_, a, _) (_, b, _) -> compare a b) !live);
  set_free_end page !free_end

let find_free_slot page =
  let n = slot_count page in
  let rec scan i = if i >= n then None else if is_free page i then Some i else scan (i + 1) in
  scan 0

let insert page record =
  let len = Bytes.length record in
  if len > max_record then invalid_arg "Slotted.insert: record too large";
  let reuse = find_free_slot page in
  let need_slot = match reuse with Some _ -> 0 | None -> slot_bytes in
  let attempt () =
    let free_end = get_free_end page in
    let avail = free_end - directory_end page - need_slot in
    if avail < len then None
    else begin
      let offset = free_end - len in
      Bytes.blit record 0 page offset len;
      set_free_end page offset;
      let i =
        match reuse with
        | Some i -> i
        | None ->
          let i = slot_count page in
          Page.set_u16 page off_slot_count (i + 1);
          i
      in
      set_slot page i ~offset ~length:len;
      Some i
    end
  in
  match attempt () with
  | Some i -> Some i
  | None ->
    compact page;
    attempt ()

let read page i =
  check_slot page i;
  Bytes.sub page (slot_offset page i) (slot_length page i)

(* Zero-copy access: where the record lives inside the page buffer. *)
let view page i =
  check_slot page i;
  (slot_offset page i, slot_length page i)

let delete page i =
  check_slot page i;
  set_slot page i ~offset:0 ~length:0

let update page i record =
  check_slot page i;
  let len = Bytes.length record in
  let old_len = slot_length page i in
  if len <= old_len then begin
    let off = slot_offset page i in
    Bytes.blit record 0 page off len;
    set_slot page i ~offset:off ~length:len;
    true
  end
  else begin
    (* Tombstone slot i (record bytes stay in place), compact to gather the
       freed space, and try to place the longer record.  On failure restore
       the slot directly — compaction preserved nothing of the tombstoned
       record, so the restore must happen before compacting. *)
    let old_off = slot_offset page i in
    set_slot page i ~offset:0 ~length:0;
    let live =
      let sum = ref 0 in
      for j = 0 to slot_count page - 1 do
        if not (is_free page j) then sum := !sum + slot_length page j
      done;
      !sum
    in
    let avail = Page.size - header_size - (slot_count page * slot_bytes) - live in
    if avail < len then begin
      set_slot page i ~offset:old_off ~length:old_len;
      false
    end
    else begin
      compact page;
      let free_end = get_free_end page in
      let offset = free_end - len in
      Bytes.blit record 0 page offset len;
      set_free_end page offset;
      set_slot page i ~offset ~length:len;
      true
    end
  end

let iter page f =
  for i = 0 to slot_count page - 1 do
    if not (is_free page i) then f i (read page i)
  done

let live_records page =
  let n = ref 0 in
  for i = 0 to slot_count page - 1 do
    if not (is_free page i) then incr n
  done;
  !n

let magic = "HYPM"

let header = 16 (* type byte, padding, magic at 4..7, count u16 at 8 *)

let format pool =
  Buffer_pool.with_page_w pool 0 (fun page ->
      Bytes.fill page 0 Page.size '\000';
      Page.set_type page Page.Meta;
      Page.set_sub page ~pos:4 (Bytes.of_string magic);
      Page.set_u16 page 8 0)

let check page =
  Page.get_type page = Page.Meta
  && Bytes.to_string (Page.get_sub page ~pos:4 ~len:4) = magic

(* Two-phase formatting barrier (see Diskdb.open_db): the magic's
   presence on disk is the atomic commit point of formatting, so the
   formatter blanks it in the pooled page, flushes and syncs everything,
   then stamps it back and flushes page 0 alone. *)
let conceal_magic pool =
  Buffer_pool.with_page_w pool 0 (fun page ->
      Page.set_sub page ~pos:4 (Bytes.make 4 '\000'))

let stamp_magic pool =
  Buffer_pool.with_page_w pool 0 (fun page ->
      Page.set_sub page ~pos:4 (Bytes.of_string magic))

(* Formatting is not WAL-covered, so its commit point is a page 0 that
   carries the magic *and* verifies.  A crash during formatting can leave
   the magic written but the page or its checksum torn; every page-0
   write after formatting completes is WAL-covered, so recovery has
   already repaired any legitimate store by the time this runs and a
   corrupt page 0 here can only be a formatting crash. *)
let is_formatted pool =
  Pager.page_count (Buffer_pool.pager pool) > 0
  && (match Buffer_pool.with_page pool 0 check with
     | ok -> ok
     | exception Storage_error.Error (Storage_error.Corrupt_page _) -> false)

let load pool =
  Buffer_pool.with_page pool 0 (fun page ->
      if not (check page) then invalid_arg "Meta.load: not a formatted store";
      let count = Page.get_u16 page 8 in
      let pos = ref header in
      List.init count (fun _ ->
          let klen = Page.get_u8 page !pos in
          let key = Bytes.to_string (Page.get_sub page ~pos:(!pos + 1) ~len:klen) in
          let value = Page.get_i64 page (!pos + 1 + klen) in
          pos := !pos + 1 + klen + 8;
          (key, value)))

let store pool kvs =
  Buffer_pool.with_page_w pool 0 (fun page ->
      if not (check page) then invalid_arg "Meta.store: not a formatted store";
      let pos = ref header in
      List.iter
        (fun (key, value) ->
          let klen = String.length key in
          if klen > 255 then invalid_arg "Meta.store: key too long";
          if !pos + 1 + klen + 8 > Page.size then
            invalid_arg "Meta.store: map does not fit in the meta page";
          Page.set_u8 page !pos klen;
          Page.set_sub page ~pos:(!pos + 1) (Bytes.of_string key);
          Page.set_i64 page (!pos + 1 + klen) value;
          pos := !pos + 1 + klen + 8)
        kvs;
      Page.set_u16 page 8 (List.length kvs))

let get pool key = List.assoc_opt key (load pool)

let get_exn pool key =
  match get pool key with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Meta.get_exn: missing key %S" key)

let set pool key value =
  let kvs = load pool in
  let kvs = (key, value) :: List.remove_assoc key kvs in
  store pool kvs

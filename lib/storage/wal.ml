module Obs = Hyper_obs.Obs

let m_appends =
  Obs.Counter.make "hyper_wal_appends_total" ~help:"log entries appended"

let m_append_bytes =
  Obs.Counter.make "hyper_wal_append_bytes_total"
    ~help:"serialized entry bytes appended (header + payload + crc)"

let m_flushes =
  Obs.Counter.make "hyper_wal_flushes_total"
    ~help:"buffered batches issued to the VFS"

let m_syncs =
  Obs.Counter.make "hyper_wal_syncs_total" ~help:"WAL durability barriers"

let h_flush_bytes =
  Obs.Histogram.make "hyper_wal_flush_bytes"
    ~help:"bytes per flushed batch (fsync batching efficacy)"

let g_size =
  Obs.Gauge.make "hyper_wal_size_bytes"
    ~help:"bytes issued to the log file since the last truncate"

type entry =
  | Begin of int
  | Before of int * int * bytes
  | After of int * int * bytes
  | Commit of int
  | Checkpoint

type t = {
  path : string;
  file : Vfs.file;
  buf : Buffer.t; (* appended entries not yet issued to the vfs *)
  mutable issued : int; (* bytes already written to the file *)
  mutable next_lsn : int; (* sequence number of the next appended entry *)
  mutable syncs : int; (* durability barriers since open (not Obs-gated) *)
  mutable on_append : (int -> entry -> unit) option; (* stream cursor *)
}

let entry_magic = 0xA7

let kind_of = function
  | Begin _ -> 1
  | Before _ -> 2
  | After _ -> 3
  | Commit _ -> 4
  | Checkpoint -> 5

(* Cheap rolling checksum — only needs to catch torn/garbled tails. *)
let checksum b =
  let h = ref 5381 in
  Bytes.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land 0x3FFFFFFF) b;
  !h

let payload_of = function
  | Begin _ | Commit _ | Checkpoint -> Bytes.empty
  | Before (_, _, img) | After (_, _, img) -> img

let ids_of = function
  | Begin t -> (t, 0)
  | Commit t -> (t, 0)
  | Checkpoint -> (0, 0)
  | Before (t, p, _) -> (t, p)
  | After (t, p, _) -> (t, p)

let header_bytes = 14

let encode_header e plen =
  let txn, page = ids_of e in
  let b = Bytes.create header_bytes in
  Page.set_u8 b 0 entry_magic;
  Page.set_u8 b 1 (kind_of e);
  Page.set_u32 b 2 txn;
  Page.set_u32 b 6 page;
  Page.set_u32 b 10 plen;
  b

(* The exact on-disk (and on-wire) representation of one record:
   header, payload, record CRC.  Replication ships these bytes verbatim,
   so a shipped frame carries the same per-record checksum the log file
   does. *)
let encode_entry e =
  let payload = payload_of e in
  let plen = Bytes.length payload in
  let hdr = encode_header e plen in
  let b = Bytes.create (header_bytes + plen + 4) in
  Bytes.blit hdr 0 b 0 header_bytes;
  Bytes.blit payload 0 b header_bytes plen;
  Page.set_u32 b (header_bytes + plen) (checksum payload lxor checksum hdr);
  b

(* Decode the clean prefix of [data.(0 .. len)]: entries plus the byte
   offset where decoding stopped; [pos < len] means a torn or garbled
   tail. *)
let decode_prefix data len =
  let entries = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos + 18 <= len do
    let hdr = !pos in
    if Page.get_u8 data hdr <> entry_magic then ok := false
    else begin
      let kind = Page.get_u8 data (hdr + 1) in
      let txn = Page.get_u32 data (hdr + 2) in
      let page = Page.get_u32 data (hdr + 6) in
      let plen = Page.get_u32 data (hdr + 10) in
      if hdr + 14 + plen + 4 > len then ok := false
      else begin
        let payload = Bytes.sub data (hdr + 14) plen in
        let crc = Page.get_u32 data (hdr + 14 + plen) in
        if crc <> checksum payload lxor checksum (Bytes.sub data hdr 14) then
          ok := false
        else
          let entry =
            match kind with
            | 1 -> Some (Begin txn)
            | 2 -> Some (Before (txn, page, payload))
            | 3 -> Some (After (txn, page, payload))
            | 4 -> Some (Commit txn)
            | 5 -> Some Checkpoint
            | _ -> None
          in
          match entry with
          | Some e ->
            entries := e :: !entries;
            pos := hdr + 14 + plen + 4
          | None -> ok := false
      end
    end
  done;
  (List.rev !entries, !pos)

let decode_entries b =
  let entries, pos = decode_prefix b (Bytes.length b) in
  (entries, pos < Bytes.length b)

(* A torn final record — a crash mid-append — must be truncated away at
   open: appending past it would bury live records behind garbage that
   every subsequent read stops at.  This is load-bearing for replication
   (a replica's received log is reopened after a replica crash and then
   appended to), and harmless for the engine (which truncates the log
   right after recovery anyway). *)
let open_ ?(vfs = Vfs.real) path =
  let file = vfs.Vfs.open_rw path in
  let len = file.Vfs.size () in
  let clean =
    if len = 0 then 0
    else begin
      let data = Bytes.create len in
      file.Vfs.pread ~buf:data ~off:0;
      let _, pos = decode_prefix data len in
      pos
    end
  in
  if clean < len then file.Vfs.truncate clean;
  { path; file; buf = Buffer.create 4096; issued = clean; next_lsn = 0;
    syncs = 0; on_append = None }

let lsn t = t.next_lsn
let set_on_append t hook = t.on_append <- hook

let append t e =
  let size =
    if !Storage_tuning.legacy_copies then begin
      let b = encode_entry e in
      Buffer.add_bytes t.buf b;
      Bytes.length b
    end
    else begin
      (* Encode straight into the append buffer: one blit of the payload
         instead of encode-into-scratch plus a second whole-record copy.
         Byte-for-byte identical to [encode_entry]. *)
      let payload = payload_of e in
      let plen = Bytes.length payload in
      let hdr = encode_header e plen in
      Buffer.add_bytes t.buf hdr;
      Buffer.add_bytes t.buf payload;
      let crc = Bytes.create 4 in
      Page.set_u32 crc 0 (checksum payload lxor checksum hdr);
      Buffer.add_bytes t.buf crc;
      header_bytes + plen + 4
    end
  in
  Obs.Counter.incr m_appends;
  Obs.Counter.add m_append_bytes size;
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  match t.on_append with None -> () | Some f -> f lsn e

(* Issue the buffered suffix to the vfs.  This is the point where WAL
   bytes enter the (possibly simulated) OS — write-ahead ordering is
   established by flushing before the corresponding page writes. *)
let flush t =
  if Buffer.length t.buf > 0 then begin
    let b = Buffer.to_bytes t.buf in
    t.file.Vfs.pwrite ~buf:b ~off:t.issued;
    t.issued <- t.issued + Bytes.length b;
    Buffer.clear t.buf;
    Obs.Counter.incr m_flushes;
    Obs.Histogram.observe h_flush_bytes (float_of_int (Bytes.length b));
    Obs.Gauge.set g_size (float_of_int t.issued)
  end

let sync t =
  flush t;
  t.syncs <- t.syncs + 1;
  Obs.Counter.incr m_syncs;
  t.file.Vfs.sync ()

(* Durability barrier only, no buffer access: the group-commit leader
   fsyncs on behalf of committers that each flushed their own bytes
   before registering, so this must not touch [t.buf] (another thread
   may be appending its next transaction concurrently). *)
let sync_file t =
  t.syncs <- t.syncs + 1;
  Obs.Counter.incr m_syncs;
  t.file.Vfs.sync ()

let sync_count t = t.syncs

let truncate t =
  Buffer.clear t.buf;
  t.file.Vfs.truncate 0;
  t.issued <- 0

let size_bytes t = t.issued + Buffer.length t.buf

let close t =
  (* Try to issue what is buffered, but never let a full disk turn close
     into a crash loop; simulated power failures still propagate. *)
  (try flush t with Storage_error.Error _ -> Buffer.clear t.buf);
  t.file.Vfs.close ()

type scan_result = { entries : entry list; clean_bytes : int; torn : bool }

let scan ?(vfs = Vfs.real) path =
  if not (vfs.Vfs.exists path) then
    { entries = []; clean_bytes = 0; torn = false }
  else begin
    let file = vfs.Vfs.open_rw path in
    let len = file.Vfs.size () in
    let data = Bytes.create len in
    if len > 0 then file.Vfs.pread ~buf:data ~off:0;
    file.Vfs.close ();
    let entries, pos = decode_prefix data len in
    { entries; clean_bytes = pos; torn = pos < len }
  end

let read_all ?(vfs = Vfs.real) path = (scan ~vfs path).entries

let entry_to_string = function
  | Begin t -> Printf.sprintf "begin(%d)" t
  | Before (t, p, _) -> Printf.sprintf "before(%d, page %d)" t p
  | After (t, p, _) -> Printf.sprintf "after(%d, page %d)" t p
  | Commit t -> Printf.sprintf "commit(%d)" t
  | Checkpoint -> "checkpoint"

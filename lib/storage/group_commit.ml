module Obs = Hyper_obs.Obs
module Vclock = Hyper_util.Vclock
module Sync = Hyper_util.Sync

let h_group_size =
  Obs.Histogram.make "hyper_wal_group_size"
    ~help:"committers covered per group fsync"

let h_group_wait_ns =
  Obs.Histogram.make "hyper_wal_group_wait_ns"
    ~help:"virtual-clock ns from a group's first registration to its fsync"

type config = { max_batch : int; max_hold_ns : float }

let default_config = { max_batch = 8; max_hold_ns = 2e6 }

type t = {
  wal : Wal.t;
  cfg : config;
  m : Sync.Mutex.t;
  cv : Sync.Condition.t;
  mutable next_seq : int; (* ticket the next register hands out *)
  mutable durable_seq : int; (* highest ticket covered by an fsync *)
  mutable leader_active : bool;
  mutable window_start : float; (* registration time of the group's first member *)
  mutable poisoned : exn option;
  mutable groups : int;
  mutable members : int;
}

type ticket = int

let create cfg wal =
  if cfg.max_batch < 1 then invalid_arg "Group_commit: max_batch < 1";
  if cfg.max_hold_ns < 0.0 then invalid_arg "Group_commit: max_hold_ns < 0";
  { wal; cfg; m = Sync.Mutex.create ~rank:30 "storage.group_commit";
    cv = Sync.Condition.create (); next_seq = 1;
    durable_seq = 0; leader_active = false; window_start = 0.0;
    poisoned = None; groups = 0; members = 0 }

let register t =
  Sync.Mutex.lock t.m;
  let s = t.next_seq in
  t.next_seq <- s + 1;
  if s = t.durable_seq + 1 then t.window_start <- Vclock.now_ns ();
  Sync.Mutex.unlock t.m;
  s

let stats t = (t.groups, t.members)

let check_poison t =
  match t.poisoned with
  | Some e ->
    Sync.Mutex.unlock t.m;
    raise e
  | None -> ()

let rec await t (s : ticket) =
  Sync.Mutex.lock t.m;
  check_poison t;
  if t.durable_seq >= s then Sync.Mutex.unlock t.m
  else if t.leader_active then begin
    (* A leader is already driving a barrier; park until it broadcasts.
       Its snapshot may predate us, in which case we re-enter and the
       next round's leader (possibly us) covers our ticket. *)
    Sync.Condition.wait t.cv t.m;
    Sync.Mutex.unlock t.m;
    await t s
  end
  else
    (* The summary-level hit below is a false positive: [lead] is the
       group-commit leader protocol and *requires* [t.m] held at entry;
       it releases the lock itself before the blocking [Wal.sync_file]
       (see the comment in [lead]).  The one-level summary cannot see
       that interior unlock. *)
    (lead t s
    [@lint.allow
      "no-blocking-under-mutex: lead takes ownership of t.m and unlocks \
       it before the fsync; the barrier never sleeps under the lock"])

and lead t (_s : ticket) =
  (* Called with [t.m] held and [_s] not yet durable; the snapshot below
     always covers it ([_s <= upto]), so [lead] never needs to loop. *)
  t.leader_active <- true;
  (* Hold window: no timed [Condition] wait on 4.14, so yield against a
     virtual-clock deadline; joiners register between yields.  With a
     zero hold the barrier fires immediately for whoever is pending. *)
  let deadline = Vclock.now_ns () +. t.cfg.max_hold_ns in
  let rec hold () =
    if
      t.next_seq - 1 - t.durable_seq < t.cfg.max_batch
      && Vclock.now_ns () < deadline
    then begin
      Sync.Mutex.unlock t.m;
      Thread.yield ();
      Sync.Mutex.lock t.m;
      hold ()
    end
  in
  if t.cfg.max_hold_ns > 0.0 then hold ();
  let upto = t.next_seq - 1 in
  let started = t.window_start in
  Sync.Mutex.unlock t.m;
  (* The fsync runs outside the lock: every member <= [upto] flushed its
     bytes before registering, so the file already carries them; a
     committer registering during the fsync simply misses this barrier
     and is picked up by the next leader.  [s <= upto] always, so the
     caller's own ticket is covered. *)
  match Wal.sync_file t.wal with
  | () ->
    Sync.Mutex.lock t.m;
    let size = upto - t.durable_seq in
    t.durable_seq <- upto;
    t.groups <- t.groups + 1;
    t.members <- t.members + size;
    t.leader_active <- false;
    Sync.Condition.broadcast t.cv;
    Sync.Mutex.unlock t.m;
    Obs.Histogram.observe h_group_size (float_of_int size);
    Obs.Histogram.observe h_group_wait_ns (Vclock.now_ns () -. started)
  | exception e ->
    Sync.Mutex.lock t.m;
    t.poisoned <- Some e;
    t.leader_active <- false;
    Sync.Condition.broadcast t.cv;
    Sync.Mutex.unlock t.m;
    raise e

type fault = Eio | Enospc | Efault of string

type t =
  | Io of { op : string; path : string; fault : fault; transient : bool }
  | Corrupt_page of { path : string; page : int; expected : int; actual : int }
  | Read_only

exception Error of t

let fault_to_string = function
  | Eio -> "EIO"
  | Enospc -> "ENOSPC"
  | Efault e -> e

let to_string = function
  | Io { op; path; fault; transient } ->
    Printf.sprintf "%s(%s): %s%s" op path (fault_to_string fault)
      (if transient then " (transient)" else "")
  | Corrupt_page { path; page; expected; actual } ->
    Printf.sprintf
      "%s: page %d checksum mismatch (stored %#x, computed %#x)" path page
      expected actual
  | Read_only -> "store is in read-only mode (WAL unavailable)"

let is_transient = function Io { transient; _ } -> transient | _ -> false

let raise_io ~op ~path ~fault ~transient =
  raise (Error (Io { op; path; fault; transient }))

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Storage_error(%s)" (to_string e))
    | _ -> None)

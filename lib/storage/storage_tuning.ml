let legacy_copies = ref false

module Obs = Hyper_obs.Obs

let m_runs =
  Obs.Counter.make "hyper_recovery_runs_total" ~help:"recovery passes run"

let m_redone =
  Obs.Counter.make "hyper_recovery_pages_redone_total"
    ~help:"pages restored from committed redo images"

let m_undone =
  Obs.Counter.make "hyper_recovery_pages_undone_total"
    ~help:"pages restored from uncommitted undo images"

type report = {
  committed : int list;
  rolled_back : int list;
  pages_redone : int;
  pages_undone : int;
}

let after_last_checkpoint entries =
  let rec strip acc = function
    | [] -> List.rev acc
    | Wal.Checkpoint :: rest -> strip [] rest
    | e :: rest -> strip (e :: acc) rest
  in
  strip [] entries

(* Resolve each page to its latest image in LOG ORDER: committed
   transactions contribute their redo (After) images, transactions
   without a commit record contribute their undo (Before) images, and
   whichever record came later in the log supersedes the earlier one.
   Separate redo-then-undo passes are wrong here: a transaction that
   aborted cleanly long before the crash also has no commit record,
   and replaying its before-images *after* the redo pass would clobber
   pages that later committed transactions rewrote — its images are
   only current up to the point in the log where it ran.  Applying in
   log order makes a later committed After win over a stale Before,
   while a transaction still in flight at the crash (whose records end
   the log) is undone exactly as before.

   Shared with replication: a replica replaying its received log is
   exactly this resolution over a log whose tail may lack a commit. *)
let apply_log entries ~write =
  let committed = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Commit t -> Hashtbl.replace committed t ()
      | Wal.Begin _ | Wal.Before _ | Wal.After _ | Wal.Checkpoint -> ())
    entries;
  let final = Hashtbl.create 64 in
  List.iter
    (function
      | Wal.After (t, p, img) when Hashtbl.mem committed t ->
        Hashtbl.replace final p (`Redo img)
      | Wal.Before (t, p, img) when not (Hashtbl.mem committed t) ->
        Hashtbl.replace final p (`Undo img)
      | Wal.Begin _ | Wal.Commit _ | Wal.Checkpoint | Wal.Before _
      | Wal.After _ -> ())
    entries;
  let redone = ref 0 in
  let undone = ref 0 in
  Hashtbl.iter
    (fun p action ->
      match action with
      | `Redo img ->
        write p img;
        incr redone
      | `Undo img ->
        write p img;
        incr undone)
    final;
  (!redone, !undone)

let recover ?(vfs = Vfs.real) ~wal_path pager =
  let entries = after_last_checkpoint (Wal.read_all ~vfs wal_path) in
  let committed = Hashtbl.create 8 in
  let started = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Begin t -> Hashtbl.replace started t ()
      | Wal.Commit t -> Hashtbl.replace committed t ()
      | Wal.Before _ | Wal.After _ | Wal.Checkpoint -> ())
    entries;
  let ensure_page id =
    while Pager.page_count pager <= id do
      ignore (Pager.allocate pager)
    done
  in
  let redone, undone =
    apply_log entries ~write:(fun p img ->
        ensure_page p;
        Pager.write pager p img)
  in
  Obs.Counter.incr m_runs;
  Obs.Counter.add m_redone redone;
  Obs.Counter.add m_undone undone;
  let ids tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  let rolled_back =
    List.filter (fun t -> not (Hashtbl.mem committed t)) (ids started)
  in
  { committed = List.sort compare (ids committed);
    rolled_back = List.sort compare rolled_back;
    pages_redone = redone;
    pages_undone = undone }

let needs_recovery ?(vfs = Vfs.real) wal_path =
  after_last_checkpoint (Wal.read_all ~vfs wal_path) <> []

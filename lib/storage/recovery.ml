type report = {
  committed : int list;
  rolled_back : int list;
  pages_redone : int;
  pages_undone : int;
}

let after_last_checkpoint entries =
  let rec strip acc = function
    | [] -> List.rev acc
    | Wal.Checkpoint :: rest -> strip [] rest
    | e :: rest -> strip (e :: acc) rest
  in
  strip [] entries

let recover ?(vfs = Vfs.real) ~wal_path pager =
  let entries = after_last_checkpoint (Wal.read_all ~vfs wal_path) in
  let committed = Hashtbl.create 8 in
  let started = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Begin t -> Hashtbl.replace started t ()
      | Wal.Commit t -> Hashtbl.replace committed t ()
      | Wal.Before _ | Wal.After _ | Wal.Checkpoint -> ())
    entries;
  let ensure_page id =
    while Pager.page_count pager <= id do
      ignore (Pager.allocate pager)
    done
  in
  let redone = ref 0 in
  List.iter
    (function
      | Wal.After (t, p, img) when Hashtbl.mem committed t ->
        ensure_page p;
        Pager.write pager p img;
        incr redone
      | Wal.Begin _ | Wal.Commit _ | Wal.Checkpoint | Wal.Before _
      | Wal.After _ -> ())
    entries;
  (* Undo: first before-image per (txn, page) wins. *)
  let first_before = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Before (t, p, img)
        when (not (Hashtbl.mem committed t))
             && not (Hashtbl.mem first_before (t, p)) ->
        Hashtbl.add first_before (t, p) img
      | Wal.Begin _ | Wal.Commit _ | Wal.Checkpoint | Wal.Before _
      | Wal.After _ -> ())
    entries;
  let undone = ref 0 in
  Hashtbl.iter
    (fun (_, p) img ->
      ensure_page p;
      Pager.write pager p img;
      incr undone)
    first_before;
  let ids tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  let rolled_back =
    List.filter (fun t -> not (Hashtbl.mem committed t)) (ids started)
  in
  { committed = List.sort compare (ids committed);
    rolled_back = List.sort compare rolled_back;
    pages_redone = !redone;
    pages_undone = !undone }

let needs_recovery ?(vfs = Vfs.real) wal_path =
  after_last_checkpoint (Wal.read_all ~vfs wal_path) <> []

type t = {
  pool : Buffer_pool.t;
  freelist : Freelist.t;
  head : int;
  mutable tail : int; (* last page of the chain, preferred for appends *)
}

type rid = int

let rid_page rid = rid lsr 16
let rid_slot rid = rid land 0xFFFF
let rid_make ~page ~slot = (page lsl 16) lor slot

(* Records are prefixed with a tag byte: 0 inline, 1 overflow stub. *)
let tag_inline = '\000'
let tag_overflow = '\001'

let inline_max = Slotted.max_record - 1
let stub_size = 1 + 4 + 4 (* tag, total length, first overflow page *)

(* Overflow page layout: 0 type, 4 next page, 8 chunk length u16, 10 data *)
let ovf_data_off = 10
let ovf_capacity = Page.size - ovf_data_off

let new_heap_page t =
  let id = Freelist.alloc t.freelist in
  Buffer_pool.with_page_w t.pool id (fun page -> Slotted.init page);
  id

let fresh pool freelist =
  let t = { pool; freelist; head = -1; tail = -1 } in
  let id = new_heap_page t in
  { t with head = id; tail = id }

let attach pool freelist ~head =
  let rec find_tail id =
    let next =
      Buffer_pool.with_page pool id (fun page -> Slotted.next_page page)
    in
    if next = 0 then id else find_tail next
  in
  { pool; freelist; head; tail = find_tail head }

let first_page t = t.head

let append_page t =
  let id = new_heap_page t in
  Buffer_pool.with_page_w t.pool t.tail (fun page -> Slotted.set_next_page page id);
  t.tail <- id;
  id

(* --- overflow chains --- *)

let write_overflow t data =
  let len = Bytes.length data in
  let rec chunk pos =
    if pos >= len then 0
    else begin
      let n = Stdlib.min ovf_capacity (len - pos) in
      let next = chunk (pos + n) in
      let id = Freelist.alloc t.freelist in
      Buffer_pool.with_page_w t.pool id (fun page ->
          Bytes.fill page 0 Page.size '\000';
          Page.set_type page Page.Overflow;
          Page.set_u32 page 4 next;
          Page.set_u16 page 8 n;
          Bytes.blit data pos page ovf_data_off n);
      id
    end
  in
  chunk 0

let read_overflow t ~first ~total =
  let out = Bytes.create total in
  let rec walk id pos =
    if id <> 0 then begin
      let next, n =
        Buffer_pool.with_page t.pool id (fun page ->
            let n = Page.get_u16 page 8 in
            Bytes.blit page ovf_data_off out pos n;
            (Page.get_u32 page 4, n))
      in
      walk next (pos + n)
    end
  in
  walk first 0;
  out

let free_overflow t first =
  let rec walk id =
    if id <> 0 then begin
      let next =
        Buffer_pool.with_page t.pool id (fun page -> Page.get_u32 page 4)
      in
      Freelist.push t.freelist id;
      walk next
    end
  in
  walk first

let encode_inline data =
  let out = Bytes.create (1 + Bytes.length data) in
  Bytes.set out 0 tag_inline;
  Bytes.blit data 0 out 1 (Bytes.length data);
  out

let encode_stub ~total ~first =
  let out = Bytes.create stub_size in
  Bytes.set out 0 tag_overflow;
  Page.set_u32 out 1 total;
  Page.set_u32 out 5 first;
  out

(* --- record operations --- *)

let insert_raw ?near t payload =
  let try_page page_id =
    Buffer_pool.with_page_w t.pool page_id (fun page ->
        Slotted.insert page payload)
  in
  let near_page = Option.map rid_page near in
  let placed =
    match near_page with
    | Some p -> (match try_page p with Some s -> Some (p, s) | None -> None)
    | None -> None
  in
  let placed =
    match placed with
    | Some _ -> placed
    | None -> (
      match try_page t.tail with Some s -> Some (t.tail, s) | None -> None)
  in
  match placed with
  | Some (p, s) -> rid_make ~page:p ~slot:s
  | None ->
    let p = append_page t in
    (match try_page p with
    | Some s -> rid_make ~page:p ~slot:s
    | None -> failwith "Heap.insert: record does not fit a fresh page")

let insert ?near t data =
  if Bytes.length data <= inline_max then insert_raw ?near t (encode_inline data)
  else begin
    let first = write_overflow t data in
    insert_raw ?near t (encode_stub ~total:(Bytes.length data) ~first)
  end

let read_payload t rid =
  Buffer_pool.with_page t.pool (rid_page rid) (fun page ->
      Slotted.read page (rid_slot rid))

let decode t payload =
  match Bytes.get payload 0 with
  | c when c = tag_inline -> Bytes.sub payload 1 (Bytes.length payload - 1)
  | c when c = tag_overflow ->
    let total = Page.get_u32 payload 1 in
    let first = Page.get_u32 payload 5 in
    read_overflow t ~first ~total
  | c -> invalid_arg (Printf.sprintf "Heap: corrupt record tag %d" (Char.code c))

(* Zero-copy read: hand the record to [k] as a range of a pinned page
   buffer when it is inline (the common case — records up to a page),
   without extracting it first.  Overflow records are assembled into a
   fresh buffer outside the pin, as before.  [legacy_copies] restores
   the historic two copies (slot extraction + tag strip) for baseline
   benchmarking. *)
let read_with t rid k =
  let res =
    Buffer_pool.with_page t.pool (rid_page rid) (fun page ->
        let off, len = Slotted.view page (rid_slot rid) in
        if len = 0 then
          invalid_arg "Heap: corrupt record (empty payload)";
        match Bytes.get page off with
        | c when c = tag_inline ->
          if !Storage_tuning.legacy_copies then begin
            let payload = Bytes.sub page off len in
            let data = Bytes.sub payload 1 (len - 1) in
            `Done (k data ~off:0 ~len:(len - 1))
          end
          else `Done (k page ~off:(off + 1) ~len:(len - 1))
        | c when c = tag_overflow ->
          `Ovf (Page.get_u32 page (off + 1), Page.get_u32 page (off + 5))
        | c ->
          invalid_arg (Printf.sprintf "Heap: corrupt record tag %d" (Char.code c)))
  in
  match res with
  | `Done v -> v
  | `Ovf (total, first) ->
    let data = read_overflow t ~first ~total in
    k data ~off:0 ~len:total

let read t rid =
  read_with t rid (fun b ~off ~len ->
      if off = 0 && len = Bytes.length b then b else Bytes.sub b off len)

let release_if_overflow t payload =
  if Bytes.get payload 0 = tag_overflow then
    free_overflow t (Page.get_u32 payload 5)

let delete t rid =
  let payload = read_payload t rid in
  release_if_overflow t payload;
  Buffer_pool.with_page_w t.pool (rid_page rid) (fun page ->
      Slotted.delete page (rid_slot rid))

let update t rid data =
  let old_payload = read_payload t rid in
  let inline = Bytes.length data <= inline_max in
  if inline && Bytes.get old_payload 0 = tag_inline then begin
    let payload = encode_inline data in
    let ok =
      Buffer_pool.with_page_w t.pool (rid_page rid) (fun page ->
          Slotted.update page (rid_slot rid) payload)
    in
    if ok then rid
    else begin
      delete t rid;
      insert ~near:rid t data
    end
  end
  else begin
    delete t rid;
    insert ~near:rid t data
  end

(* --- batch prefetch --- *)

(* Overflow chains are followed breadth-first across the whole record
   batch: one [Buffer_pool.prefetch] per wave (all first overflow pages,
   then all second pages, ...), so a batch of K records whose longest
   chain has depth D costs D batched fetches instead of sum(chain
   lengths) single-page fetches. *)
let prefetch_overflow_waves t firsts =
  let rec wave pages =
    if pages <> [] then begin
      Buffer_pool.prefetch t.pool pages;
      let next =
        List.filter_map
          (fun id ->
            match
              Buffer_pool.with_page t.pool id (fun page -> Page.get_u32 page 4)
            with
            | 0 -> None
            | n -> Some n)
          pages
      in
      wave next
    end
  in
  wave firsts

let prefetch_records t rids =
  Buffer_pool.prefetch t.pool (List.map rid_page rids);
  let firsts =
    List.filter_map
      (fun rid ->
        let payload = read_payload t rid in
        if Bytes.length payload > 0 && Bytes.get payload 0 = tag_overflow then
          match Page.get_u32 payload 5 with 0 -> None | first -> Some first
        else None)
      rids
  in
  prefetch_overflow_waves t firsts

let iter t f =
  let rec walk page_id =
    if page_id <> 0 && page_id <> -1 then begin
      let next, records =
        Buffer_pool.with_page t.pool page_id (fun page ->
            let acc = ref [] in
            Slotted.iter page (fun slot payload ->
                acc := (slot, payload) :: !acc);
            (Slotted.next_page page, List.rev !acc))
      in
      List.iter
        (fun (slot, payload) ->
          f (rid_make ~page:page_id ~slot) (decode t payload))
        records;
      walk next
    end
  in
  walk t.head

let iter_rids t f =
  let rec walk page_id =
    if page_id <> 0 && page_id <> -1 then begin
      let next =
        Buffer_pool.with_page t.pool page_id (fun page ->
            Slotted.iter page (fun slot _ -> f (rid_make ~page:page_id ~slot));
            Slotted.next_page page)
      in
      walk next
    end
  in
  walk t.head

let record_count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let iter_pages t f =
  let rec walk page_id =
    if page_id <> 0 && page_id <> -1 then begin
      f page_id;
      let next, stubs =
        Buffer_pool.with_page t.pool page_id (fun page ->
            let stubs = ref [] in
            Slotted.iter page (fun _ payload ->
                if Bytes.get payload 0 = tag_overflow then
                  stubs := Page.get_u32 payload 5 :: !stubs);
            (Slotted.next_page page, !stubs))
      in
      List.iter
        (fun first ->
          let rec ovf id =
            if id <> 0 then begin
              f id;
              ovf
                (Buffer_pool.with_page t.pool id (fun page ->
                     Page.get_u32 page 4))
            end
          in
          ovf first)
        stubs;
      walk next
    end
  in
  walk t.head

let page_count t =
  let rec walk id acc =
    if id = 0 || id = -1 then acc
    else
      let next =
        Buffer_pool.with_page t.pool id (fun page -> Slotted.next_page page)
      in
      walk next (acc + 1)
  in
  walk t.head 0

open Backend_intf
module Bitmap = Hyper_util.Bitmap
module IMap = Map.Make (Int)

type node = {
  doc : int;
  unique_id : int;
  kind : Schema.kind;
  mutable ten : int;
  mutable hundred : int;
  mutable million : int;
  mutable text : string;
  mutable form : Bitmap.t option;
  mutable parent : Oid.t; (* Oid.none = root *)
  mutable children : Oid.t list; (* insertion (sequence) order *)
  mutable parts : Oid.t list;
  mutable part_of : Oid.t list;
  mutable refs_to : Schema.link list;
  mutable refs_from : Schema.link list;
  dyn : (string, int) Hashtbl.t;
}

type doc_state = {
  uid_to_oid : (int, Oid.t) Hashtbl.t;
  mutable member_order : Oid.t list; (* reverse creation order *)
  mutable member_count : int;
  hundred_index : (int, Oid.t list ref) Hashtbl.t;
  mutable million_index : Oid.t list IMap.t;
}

type t = {
  nodes : (Oid.t, node) Hashtbl.t;
  docs : (int, doc_state) Hashtbl.t;
  mutable results : Oid.t list list; (* newest first *)
  mutable result_count : int;
  mutable in_txn : bool;
  mutable undo : (unit -> unit) list;
  mutable op_count : int;
}

let name = "memdb"

let description = "in-memory object graph (Smalltalk-80 analogue)"

let create () =
  { nodes = Hashtbl.create 4096; docs = Hashtbl.create 4; results = [];
    result_count = 0; in_txn = false; undo = []; op_count = 0 }

(* --- transactions --- *)

let begin_txn t =
  if t.in_txn then invalid_arg "Memdb: nested transaction";
  t.in_txn <- true;
  t.undo <- []

let commit t =
  if not t.in_txn then invalid_arg "Memdb: commit outside a transaction";
  t.in_txn <- false;
  t.undo <- []

let abort t =
  if not t.in_txn then invalid_arg "Memdb: abort outside a transaction";
  List.iter (fun restore -> restore ()) t.undo;
  t.in_txn <- false;
  t.undo <- []

let log_undo t restore = if t.in_txn then t.undo <- restore :: t.undo

let clear_caches _t = () (* the heap is the database; nothing to drop *)

(* --- internals --- *)

let node_of t oid =
  match Hashtbl.find_opt t.nodes oid with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Memdb: unknown oid %d" oid)

let doc_state t doc =
  match Hashtbl.find_opt t.docs doc with
  | Some d -> d
  | None ->
    let d =
      { uid_to_oid = Hashtbl.create 1024; member_order = []; member_count = 0;
        hundred_index = Hashtbl.create 128; million_index = IMap.empty }
    in
    Hashtbl.add t.docs doc d;
    d

let hundred_bucket d v =
  match Hashtbl.find_opt d.hundred_index v with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add d.hundred_index v r;
    r

let hundred_index_add d v oid =
  let r = hundred_bucket d v in
  r := oid :: !r

let hundred_index_remove d v oid =
  let r = hundred_bucket d v in
  r := List.filter (fun o -> not (Oid.equal o oid)) !r

let million_index_add d v oid =
  let existing = Option.value ~default:[] (IMap.find_opt v d.million_index) in
  d.million_index <- IMap.add v (oid :: existing) d.million_index

(* --- creation --- *)

let create_node ?near:_ t spec =
  let oid = spec.Schema.oid in
  if Hashtbl.mem t.nodes oid then
    invalid_arg (Printf.sprintf "Memdb: oid %d already exists" oid);
  let text, form =
    match spec.Schema.payload with
    | Schema.P_text s -> (s, None)
    | Schema.P_form b -> ("", Some b)
    | Schema.P_internal | Schema.P_draw -> ("", None)
  in
  let n =
    { doc = spec.Schema.doc; unique_id = spec.Schema.unique_id;
      kind = Schema.kind_of_payload spec.Schema.payload;
      ten = spec.Schema.ten; hundred = spec.Schema.hundred;
      million = spec.Schema.million; text; form; parent = Oid.none;
      children = []; parts = []; part_of = []; refs_to = []; refs_from = [];
      dyn = Hashtbl.create 1 }
  in
  Hashtbl.add t.nodes oid n;
  let d = doc_state t spec.Schema.doc in
  Hashtbl.replace d.uid_to_oid spec.Schema.unique_id oid;
  d.member_order <- oid :: d.member_order;
  d.member_count <- d.member_count + 1;
  hundred_index_add d n.hundred oid;
  million_index_add d n.million oid;
  log_undo t (fun () ->
      Hashtbl.remove t.nodes oid;
      Hashtbl.remove d.uid_to_oid spec.Schema.unique_id;
      d.member_order <-
        List.filter (fun o -> not (Oid.equal o oid)) d.member_order;
      d.member_count <- d.member_count - 1;
      hundred_index_remove d n.hundred oid;
      d.million_index <-
        IMap.update n.million
          (function
            | None -> None
            | Some oids -> (
              match List.filter (fun o -> not (Oid.equal o oid)) oids with
              | [] -> None
              | rest -> Some rest))
          d.million_index)

let add_child t ~parent ~child =
  let p = node_of t parent and c = node_of t child in
  if Oid.is_valid c.parent then
    invalid_arg (Printf.sprintf "Memdb: node %d already has a parent" child);
  let old_children = p.children in
  p.children <- p.children @ [ child ];
  c.parent <- parent;
  log_undo t (fun () ->
      p.children <- old_children;
      c.parent <- Oid.none)

let add_part t ~whole ~part =
  let w = node_of t whole and p = node_of t part in
  let old_parts = w.parts and old_part_of = p.part_of in
  w.parts <- w.parts @ [ part ];
  p.part_of <- p.part_of @ [ whole ];
  log_undo t (fun () ->
      w.parts <- old_parts;
      p.part_of <- old_part_of)

let add_children t ~parent children =
  let p = node_of t parent in
  (* Validate every endpoint before the first assignment: a bad child
     must not leave a half-linked batch behind (the raise happens before
     any undo entry is logged, so abort could not repair it). *)
  Array.iter
    (fun child ->
      let c = node_of t child in
      if Oid.is_valid c.parent then
        invalid_arg
          (Printf.sprintf "Memdb: node %d already has a parent" child))
    children;
  let old_children = p.children in
  let set =
    Array.map
      (fun child ->
        let c = node_of t child in
        if Oid.is_valid c.parent then
          invalid_arg
            (Printf.sprintf "Memdb: node %d already has a parent" child);
        c.parent <- parent;
        c)
      children
  in
  p.children <- p.children @ Array.to_list children;
  log_undo t (fun () ->
      p.children <- old_children;
      Array.iter (fun c -> c.parent <- Oid.none) set)

let add_parts t ~whole parts =
  let w = node_of t whole in
  Array.iter (fun part -> ignore (node_of t part)) parts;
  let old_parts = w.parts in
  let saved =
    Array.map
      (fun part ->
        let pn = node_of t part in
        let old = pn.part_of in
        pn.part_of <- pn.part_of @ [ whole ];
        (pn, old))
      parts
  in
  w.parts <- w.parts @ Array.to_list parts;
  log_undo t (fun () ->
      w.parts <- old_parts;
      Array.iter (fun (pn, old) -> pn.part_of <- old) saved)

let prefetch_nodes _t _oids = ()

let add_ref t ~src ~dst ~offset_from ~offset_to =
  let s = node_of t src and d = node_of t dst in
  let out = { Schema.target = dst; offset_from; offset_to } in
  let inc = { Schema.target = src; offset_from; offset_to } in
  let old_out = s.refs_to and old_inc = d.refs_from in
  s.refs_to <- s.refs_to @ [ out ];
  d.refs_from <- d.refs_from @ [ inc ];
  log_undo t (fun () ->
      s.refs_to <- old_out;
      d.refs_from <- old_inc)

(* --- structural modification --- *)

let remove_first_exn ~what x xs =
  let rec go acc = function
    | [] -> invalid_arg (Printf.sprintf "Memdb: %s does not exist" what)
    | y :: rest -> if y = x then List.rev_append acc rest else go (y :: acc) rest
  in
  go [] xs

let remove_child t ~parent ~child =
  let p = node_of t parent and c = node_of t child in
  let old_children = p.children and old_parent = c.parent in
  p.children <- remove_first_exn ~what:"child edge" child p.children;
  c.parent <- Oid.none;
  log_undo t (fun () ->
      p.children <- old_children;
      c.parent <- old_parent)

let remove_part t ~whole ~part =
  let w = node_of t whole and p = node_of t part in
  let old_parts = w.parts and old_part_of = p.part_of in
  w.parts <- remove_first_exn ~what:"part edge" part w.parts;
  p.part_of <- remove_first_exn ~what:"part edge inverse" whole p.part_of;
  log_undo t (fun () ->
      w.parts <- old_parts;
      p.part_of <- old_part_of)

let remove_ref t ~src ~dst =
  let s = node_of t src and d = node_of t dst in
  let link =
    match
      List.find_opt (fun l -> Oid.equal l.Schema.target dst) s.refs_to
    with
    | Some l -> l
    | None ->
      invalid_arg (Printf.sprintf "Memdb: no reference %d -> %d" src dst)
  in
  let inverse =
    { Schema.target = src; offset_from = link.Schema.offset_from;
      offset_to = link.Schema.offset_to }
  in
  let old_out = s.refs_to and old_inc = d.refs_from in
  s.refs_to <- remove_first_exn ~what:"reference" link s.refs_to;
  d.refs_from <- remove_first_exn ~what:"reference inverse" inverse d.refs_from;
  log_undo t (fun () ->
      s.refs_to <- old_out;
      d.refs_from <- old_inc)

let delete_node t oid =
  let n = node_of t oid in
  if n.children <> [] then
    invalid_arg (Printf.sprintf "Memdb: node %d still has children" oid);
  if Oid.is_valid n.parent then remove_child t ~parent:n.parent ~child:oid;
  List.iter (fun whole -> remove_part t ~whole ~part:oid) n.part_of;
  List.iter (fun part -> remove_part t ~whole:oid ~part) n.parts;
  List.iter (fun l -> remove_ref t ~src:oid ~dst:l.Schema.target) n.refs_to;
  List.iter (fun l -> remove_ref t ~src:l.Schema.target ~dst:oid) n.refs_from;
  let d = doc_state t n.doc in
  let old_order = d.member_order in
  Hashtbl.remove t.nodes oid;
  Hashtbl.remove d.uid_to_oid n.unique_id;
  d.member_order <- List.filter (fun o -> not (Oid.equal o oid)) d.member_order;
  d.member_count <- d.member_count - 1;
  hundred_index_remove d n.hundred oid;
  d.million_index <-
    IMap.update n.million
      (function
        | None -> None
        | Some oids -> (
          match List.filter (fun o -> not (Oid.equal o oid)) oids with
          | [] -> None
          | rest -> Some rest))
      d.million_index;
  log_undo t (fun () ->
      Hashtbl.replace t.nodes oid n;
      Hashtbl.replace d.uid_to_oid n.unique_id oid;
      d.member_order <- old_order;
      d.member_count <- d.member_count + 1;
      hundred_index_add d n.hundred oid;
      million_index_add d n.million oid)

(* --- attributes --- *)

let kind t oid = (node_of t oid).kind
let unique_id t oid = (node_of t oid).unique_id
let ten t oid = (node_of t oid).ten
let hundred t oid = (node_of t oid).hundred
let million t oid = (node_of t oid).million

let set_hundred t oid v =
  let n = node_of t oid in
  let d = doc_state t n.doc in
  let old = n.hundred in
  hundred_index_remove d old oid;
  hundred_index_add d v oid;
  n.hundred <- v;
  log_undo t (fun () ->
      hundred_index_remove d v oid;
      hundred_index_add d old oid;
      n.hundred <- old)

let set_dyn_attr t oid key v =
  let n = node_of t oid in
  let old = Hashtbl.find_opt n.dyn key in
  Hashtbl.replace n.dyn key v;
  log_undo t (fun () ->
      match old with
      | Some o -> Hashtbl.replace n.dyn key o
      | None -> Hashtbl.remove n.dyn key)

let dyn_attr t oid key = Hashtbl.find_opt (node_of t oid).dyn key

(* --- associative lookup --- *)

let lookup_unique t ~doc uid = Hashtbl.find_opt (doc_state t doc).uid_to_oid uid

let range_unique t ~doc ~lo ~hi =
  let d = doc_state t doc in
  let acc = ref [] in
  for uid = hi downto lo do
    match Hashtbl.find_opt d.uid_to_oid uid with
    | Some oid -> acc := oid :: !acc
    | None -> ()
  done;
  !acc

let range_hundred t ~doc ~lo ~hi =
  let d = doc_state t doc in
  let acc = ref [] in
  for v = lo to hi do
    match Hashtbl.find_opt d.hundred_index v with
    | Some r -> acc := List.rev_append !r !acc
    | None -> ()
  done;
  !acc

let range_million t ~doc ~lo ~hi =
  let d = doc_state t doc in
  let acc = ref [] in
  let rec take s =
    match s () with
    | Seq.Nil -> ()
    | Seq.Cons ((k, oids), rest) ->
      if k <= hi then begin
        acc := List.rev_append oids !acc;
        take rest
      end
  in
  take (IMap.to_seq_from lo d.million_index);
  !acc

(* --- relationships --- *)

let children t oid = Array.of_list (node_of t oid).children

let parent t oid =
  let p = (node_of t oid).parent in
  if Oid.is_valid p then Some p else None

let parts t oid = Array.of_list (node_of t oid).parts
let part_of t oid = Array.of_list (node_of t oid).part_of
let refs_to t oid = Array.of_list (node_of t oid).refs_to
let refs_from t oid = Array.of_list (node_of t oid).refs_from

(* --- content --- *)

let text t oid =
  let n = node_of t oid in
  if n.kind <> Schema.Text then
    invalid_arg (Printf.sprintf "Memdb: node %d is not a text node" oid);
  n.text

let set_text t oid s =
  let n = node_of t oid in
  if n.kind <> Schema.Text then
    invalid_arg (Printf.sprintf "Memdb: node %d is not a text node" oid);
  let old = n.text in
  n.text <- s;
  log_undo t (fun () -> n.text <- old)

let form t oid =
  let n = node_of t oid in
  match n.form with
  | Some b -> Bitmap.copy b (* hand out a copy: mutations go through set_form *)
  | None -> invalid_arg (Printf.sprintf "Memdb: node %d is not a form node" oid)

let set_form t oid b =
  let n = node_of t oid in
  match n.form with
  | None -> invalid_arg (Printf.sprintf "Memdb: node %d is not a form node" oid)
  | Some old ->
    n.form <- Some (Bitmap.copy b);
    log_undo t (fun () -> n.form <- Some old)

(* --- scans --- *)

let iter_doc t ~doc f =
  (* Creation order, which for this backend is also "physical" order. *)
  List.iter f (List.rev (doc_state t doc).member_order)

let node_count t ~doc = (doc_state t doc).member_count

let store_result_list t oids =
  let old_results = t.results and old_count = t.result_count in
  t.results <- oids :: t.results;
  t.result_count <- t.result_count + 1;
  log_undo t (fun () ->
      t.results <- old_results;
      t.result_count <- old_count)

let stored_result_count t = t.result_count

let stored_result t i =
  if i < 0 || i >= t.result_count then invalid_arg "Memdb.stored_result";
  List.nth t.results (t.result_count - 1 - i)

(* --- snapshots --- *)

let copy_node n =
  (* Lists and strings are immutable and safe to share; the record, the
     dyn table and the bitmap are mutable and must not alias. *)
  { n with form = Option.map Bitmap.copy n.form; dyn = Hashtbl.copy n.dyn }

let copy_doc_state d =
  let hundred_index = Hashtbl.create (Hashtbl.length d.hundred_index) in
  Hashtbl.iter (fun v r -> Hashtbl.add hundred_index v (ref !r)) d.hundred_index;
  { uid_to_oid = Hashtbl.copy d.uid_to_oid;
    member_order = d.member_order;
    member_count = d.member_count;
    hundred_index;
    (* The map is immutable and its payloads are immutable oid lists. *)
    million_index = d.million_index }

let snapshot t =
  (* Deep copy of every mutable cell: the whole database is a handful
     of enumerable heap structures, which is exactly the cheap-clone
     property the MVCC server leans on for read-only snapshot
     sessions.  Undefined inside a transaction (the undo log aliases
     live nodes), so refuse rather than alias. *)
  if t.in_txn then None
  else begin
    let nodes = Hashtbl.create (Hashtbl.length t.nodes) in
    Hashtbl.iter (fun oid n -> Hashtbl.add nodes oid (copy_node n)) t.nodes;
    let docs = Hashtbl.create (Hashtbl.length t.docs) in
    Hashtbl.iter (fun doc d -> Hashtbl.add docs doc (copy_doc_state d)) t.docs;
    Some
      { nodes; docs; results = t.results; result_count = t.result_count;
        in_txn = false; undo = []; op_count = 0 }
  end

(* --- introspection --- *)

let io_description t =
  Printf.sprintf "heap-resident; %d nodes, no physical I/O"
    (Hashtbl.length t.nodes)

let reset_io t = t.op_count <- 0

(** Differential execution: one trace, one oracle, N subjects.

    The oracle is always memdb — the simplest backend, kept
    deliberately free of caching, paging and recovery machinery.  Every
    subject replays the same trace over the same generated database
    ([gen_seed]/[level]); the first step whose normalised outcome
    ({!Hyper_core.Trace.outcome}) differs from the oracle's is a
    divergence.  A final {!Hyper_core.Trace.Verify_checks} is appended
    so structural corruption that no generated read happened to observe
    still fails the run.

    Everything here is deterministic: equal inputs find equal
    divergences and shrink them to equal minimal repros. *)

open Hyper_core

(** Disk-backed subjects.  [Disk_remote] runs diskdb over the simulated
    workstation/server channel ({!Hyper_net.Channel.profile_test}) with
    traversal prefetch on, so group fetches are differentially checked
    too. *)
type kind = Disk | Disk_remote | Rel

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

type divergence = {
  step : int;  (** 0-based index into the (verify-extended) trace *)
  op : Trace.op;
  oracle : Trace.outcome;
  subject : Trace.outcome;
  backend : string;
}

val pp_divergence : Format.formatter -> divergence -> unit

(** A recipe for building fresh, identically-seeded instances of one
    backend — shrinking re-runs candidate traces from scratch, so a
    subject is a constructor, not a connection. *)
type harness = {
  h_name : string;
  h_fresh : unit -> Backend.instance * (unit -> unit);
      (** instance over a freshly generated database, plus its closer *)
}

val oracle_harness : gen_seed:int64 -> level:int -> harness * Layout.t
val subject_harness : gen_seed:int64 -> level:int -> kind -> harness

val check :
  ?final_verify:bool ->
  layout:Layout.t ->
  oracle:harness ->
  subject:harness ->
  Trace.op list ->
  divergence option
(** Replay the trace on fresh oracle and subject instances; return the
    first step that disagrees.  [final_verify] (default [true]) appends
    a trailing [Verify_checks]. *)

val shrink :
  layout:Layout.t ->
  oracle:harness ->
  subject:harness ->
  Trace.op list ->
  divergence ->
  Trace.op list * divergence
(** Minimise a diverging trace, qcheck-style, preserving the trace
    shape invariants ({!Gen}): truncate after the divergence step, then
    repeatedly drop whole transaction blocks / standalone ops, then
    single ops inside surviving blocks, to a fixpoint.  [Begin] and
    [Commit]/[Abort] are only ever removed together with their whole
    block, so mutations never escape transactions (which would manufacture
    false divergences out of memdb's leniency).  Returns the minimal
    trace and its divergence. *)

(** {2 One fuzz case end to end} *)

type case = {
  seed : int64;  (** trace seed *)
  gen_seed : int64;
  level : int;
  steps : int;
  subjects : kind list;
}

type finding = {
  f_case : case;
  f_backend : string;
  f_minimal : Trace.op list;
  f_divergence : divergence;  (** divergence of the minimal trace *)
}

val run_case : case -> finding option
(** Generate the trace for [case.seed], check every subject, and on the
    first divergence shrink it (against the diverging subject only). *)

(** {2 Crash-point interleaving}

    Oracle-checked recovery: replay the trace on a disk subject with a
    crash armed [k] mutating VFS ops past setup, power-fail at the
    crash, reopen (running WAL recovery), then compare the recovered
    state — via an exhaustive per-node probe — against the oracle
    replaying exactly the acked-commit prefix of the trace.  If the
    crash interrupted a commit, the commit record may or may not have
    reached the WAL, so either the acked or the acked+1 prefix must
    match. *)

type crash_report =
  | Crash_clean of { crash_step : int option; acked : int }
      (** recovered state matched; [crash_step = None] means [k]
          exceeded the writes the trace performs (nothing crashed, full
          run compared instead) *)
  | Crash_diverged of {
      crash_step : int;
      acked : int;
      in_flight : bool;  (** crash fired during a commit *)
      divergence : divergence;
    }

val crash_writes : gen_seed:int64 -> level:int -> Trace.op list -> int
(** Dry run on an unfaulted disk subject: how many mutating VFS ops the
    trace performs after setup — the size of the crash-point space. *)

val crash_check :
  gen_seed:int64 -> level:int -> crash_after:int -> Trace.op list -> crash_report

(** {2 Probe machinery} — exported for the failover harness
    ({!Failover}), which compares a promoted replica against an oracle
    replay of the acked prefix using the same exhaustive probes. *)

val crash_config : Hyper_storage.Vfs.t -> Hyper_diskdb.Diskdb.config
(** The crash-mode diskdb configuration ([durable_sync], local, no
    prefetch, path ["/fuzz/disk.db"]) over the given VFS. *)

val probe_trace : Layout.t -> Trace.op list -> Trace.op list
(** Exhaustive read-only probe of every OID the layout or the trace
    mentions, plus the scans, ranges and a final [Verify_checks]. *)

val prefix_through_commit : Trace.op list -> int -> Trace.op list
(** The trace prefix covering the first [n] commits (inclusive). *)

val fresh_oracle_at :
  gen_seed:int64 -> level:int -> Trace.op list -> Backend.instance * Layout.t
(** A fresh memdb oracle over the generated database with the given
    trace prefix applied. *)

val compare_probes :
  layout:Layout.t ->
  backend:string ->
  Backend.instance ->
  Backend.instance ->
  Trace.op list ->
  divergence option

(** {2 Repro files} — printed by the fuzzer, replayed by tests. *)

val save_repro :
  path:string -> gen_seed:int64 -> level:int -> Trace.op list -> unit

val load_repro : path:string -> int64 * int * Trace.op list
(** @raise Failure on a malformed file. *)

open Hyper_core
module Vfs = Hyper_storage.Vfs
module Storage_error = Hyper_storage.Storage_error
module M = Hyper_memdb.Memdb
module D = Hyper_diskdb.Diskdb
module R = Hyper_reldb.Reldb

type kind = Disk | Disk_remote | Rel

let kind_name = function
  | Disk -> "diskdb"
  | Disk_remote -> "diskdb-remote"
  | Rel -> "reldb"

let kind_of_name = function
  | "diskdb" -> Some Disk
  | "diskdb-remote" -> Some Disk_remote
  | "reldb" -> Some Rel
  | _ -> None

let all_kinds = [ Disk; Disk_remote; Rel ]

type divergence = {
  step : int;
  op : Trace.op;
  oracle : Trace.outcome;
  subject : Trace.outcome;
  backend : string;
}

let pp_divergence ppf d =
  Format.fprintf ppf "@[<v>step %d on %s: %s@,  oracle:  %s@,  subject: %s@]"
    d.step d.backend (Trace.op_to_string d.op)
    (Trace.outcome_to_string d.oracle)
    (Trace.outcome_to_string d.subject)

type harness = {
  h_name : string;
  h_fresh : unit -> Backend.instance * (unit -> unit);
}

let layout_of ~gen_seed:_ ~level =
  Layout.make ~doc:1 ~oid_base:0 ~leaf_level:level ()

let oracle_harness ~gen_seed ~level =
  let fresh () =
    let b = M.create () in
    let module G = Generator.Make (M) in
    let _layout, _ = G.generate b ~doc:1 ~leaf_level:level ~seed:gen_seed in
    (Backend.Instance ((module M : Backend.S with type t = M.t), b), fun () -> ())
  in
  ({ h_name = "memdb"; h_fresh = fresh }, layout_of ~gen_seed ~level)

(* Disk-backed subjects run entirely over the in-memory fault-injecting
   VFS (quiet plan): no real files, no cleanup, and the crash harness can
   later arm faults on the very same seam.  Small pools / caches keep the
   eviction, overflow and group-fetch paths hot at fuzzing sizes. *)
let disk_config ?(durable_sync = false) ~remote ~prefetch vfs =
  {
    (D.default_config ~path:"/fuzz/disk.db") with
    pool_pages = 96;
    object_cache = 64;
    uid_hash_index = true;
    durable_sync;
    remote;
    prefetch;
    vfs = Some vfs;
  }

let rel_config ?(durable_sync = false) vfs =
  {
    (R.default_config ~path:"/fuzz/rel.db") with
    pool_pages = 96;
    durable_sync;
    vfs = Some vfs;
  }

let generate_disk db ~gen_seed ~level =
  let module G = Generator.Make (D) in
  ignore (G.generate db ~doc:1 ~leaf_level:level ~seed:gen_seed)

let subject_harness ~gen_seed ~level kind =
  let fresh () =
    let env = Vfs.Faulty.create Vfs.Faulty.quiet in
    let vfs = Vfs.Faulty.vfs env in
    match kind with
    | Disk | Disk_remote ->
        let remote =
          if kind = Disk_remote then Some Hyper_net.Channel.profile_test
          else None
        in
        let db = D.open_db (disk_config ~remote ~prefetch:(kind = Disk_remote) vfs) in
        generate_disk db ~gen_seed ~level;
        ( Backend.Instance ((module D : Backend.S with type t = D.t), db),
          fun () -> try D.close db with Storage_error.Error _ -> () )
    | Rel ->
        let db = R.open_db (rel_config vfs) in
        let module G = Generator.Make (R) in
        ignore (G.generate db ~doc:1 ~leaf_level:level ~seed:gen_seed);
        ( Backend.Instance ((module R : Backend.S with type t = R.t), db),
          fun () -> try R.close db with Storage_error.Error _ -> () )
  in
  { h_name = kind_name kind; h_fresh = fresh }

let with_verify ops = ops @ [ Trace.Verify_checks ]

let check ?(final_verify = true) ~layout ~oracle ~subject ops =
  let ops = if final_verify then with_verify ops else ops in
  let o_inst, o_close = oracle.h_fresh () in
  let s_inst, s_close = subject.h_fresh () in
  let rec go i = function
    | [] -> None
    | op :: rest ->
        let o_out = Trace.apply ~layout o_inst op in
        let s_out = Trace.apply ~layout s_inst op in
        if Trace.outcome_equal o_out s_out then go (i + 1) rest
        else
          Some
            {
              step = i;
              op;
              oracle = o_out;
              subject = s_out;
              backend = subject.h_name;
            }
  in
  let d = go 0 ops in
  o_close ();
  s_close ();
  d

(* {2 Shrinking} *)

(* A chunk is the unit whole-removal preserves trace shape on: a full
   Begin .. Commit/Abort block, or one op outside any block. *)
let chunk_ops ops =
  let chunks = ref [] and block = ref [] and in_block = ref false in
  List.iter
    (fun op ->
      match op with
      | Trace.Begin ->
          if !block <> [] then chunks := List.rev !block :: !chunks;
          in_block := true;
          block := [ op ]
      | (Trace.Commit | Trace.Abort) when !in_block ->
          in_block := false;
          chunks := List.rev (op :: !block) :: !chunks;
          block := []
      | _ when !in_block -> block := op :: !block
      | _ -> chunks := [ op ] :: !chunks)
    ops;
  if !block <> [] then chunks := List.rev !block :: !chunks;
  List.rev !chunks

(* Keep ops 0..step; if that cuts a transaction block open, close it so
   the subject is not left mid-transaction before the final verify. *)
let truncate_after ops step =
  let rec take i in_block acc = function
    | [] -> (acc, in_block)
    | op :: rest ->
        if i > step then (acc, in_block)
        else
          let in_block =
            match op with
            | Trace.Begin -> true
            | Trace.Commit | Trace.Abort -> false
            | _ -> in_block
          in
          take (i + 1) in_block (op :: acc) rest
  in
  let acc, open_block = take 0 false [] ops in
  List.rev (if open_block then Trace.Commit :: acc else acc)

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let shrink ~layout ~oracle ~subject ops d =
  let best_d = ref d in
  let attempt candidate =
    if candidate = [] then None
    else
      match check ~layout ~oracle ~subject candidate with
      | Some d ->
          best_d := d;
          Some candidate
      | None -> None
  in
  let current = ref ops in
  (* Truncation only helps if the trace still diverges without its tail
     (it should — the divergence is at d.step — but a cautious re-check
     keeps shrink total). *)
  (match attempt (truncate_after !current d.step) with
  | Some c -> current := c
  | None -> ());
  let changed = ref true in
  while !changed do
    changed := false;
    (* Pass 1: drop whole chunks (txn blocks / standalone ops), last
       chunk first — later chunks depend on earlier state, not vice
       versa, so they fall away easier. *)
    let continue_pass = ref true in
    while !continue_pass do
      continue_pass := false;
      let cs = chunk_ops !current in
      let n = List.length cs in
      (try
         for i = n - 1 downto 0 do
           let candidate = List.concat (remove_nth cs i) in
           match attempt candidate with
           | Some c ->
               current := c;
               changed := true;
               continue_pass := true;
               raise Exit
           | None -> ()
         done
       with Exit -> ())
    done;
    (* Pass 2: drop single ops inside surviving blocks.  Begin and
       Commit/Abort stay: a block disappears only whole (pass 1). *)
    let continue_pass = ref true in
    while !continue_pass do
      continue_pass := false;
      let arr = Array.of_list !current in
      (try
         for i = Array.length arr - 1 downto 0 do
           match arr.(i) with
           | Trace.Begin | Trace.Commit | Trace.Abort -> ()
           | _ -> (
               let candidate = remove_nth !current i in
               match attempt candidate with
               | Some c ->
                   current := c;
                   changed := true;
                   continue_pass := true;
                   raise Exit
               | None -> ())
         done
       with Exit -> ())
    done
  done;
  (!current, !best_d)

(* {2 One fuzz case} *)

type case = {
  seed : int64;
  gen_seed : int64;
  level : int;
  steps : int;
  subjects : kind list;
}

type finding = {
  f_case : case;
  f_backend : string;
  f_minimal : Trace.op list;
  f_divergence : divergence;
}

let run_case case =
  let ops =
    Gen.trace ~seed:case.seed ~gen_seed:case.gen_seed ~level:case.level
      ~steps:case.steps
  in
  let oracle, layout =
    oracle_harness ~gen_seed:case.gen_seed ~level:case.level
  in
  let rec try_subjects = function
    | [] -> None
    | kind :: rest -> (
        let subject =
          subject_harness ~gen_seed:case.gen_seed ~level:case.level kind
        in
        match check ~layout ~oracle ~subject ops with
        | None -> try_subjects rest
        | Some d ->
            let minimal, min_d = shrink ~layout ~oracle ~subject ops d in
            Some
              {
                f_case = case;
                f_backend = subject.h_name;
                f_minimal = minimal;
                f_divergence = min_d;
              })
  in
  try_subjects case.subjects

(* {2 Crash-point interleaving} *)

(* Every oid the probe suite must look at: the generated structure plus
   everything the trace ever created (probing since-deleted or
   never-committed oids is fine — both sides must fail identically). *)
let probe_oids layout ops =
  let oids = ref [] in
  Layout.iter_oids layout (fun o -> oids := o :: !oids);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Trace.Create { oid; _ } when not (Hashtbl.mem seen oid) ->
          Hashtbl.add seen oid ();
          oids := oid :: !oids
      | _ -> ())
    ops;
  List.rev !oids

let probe_trace layout ops =
  let doc = layout.Layout.doc in
  let per_oid o =
    [
      Trace.Attrs o;
      Trace.Children o;
      Trace.Parent o;
      Trace.Parts o;
      Trace.Part_of o;
      Trace.Refs_to o;
      Trace.Refs_from o;
      Trace.Text o;
      Trace.Form_digest o;
      Trace.Dyn_attr { oid = o; key = "alpha" };
    ]
  in
  List.concat_map per_oid (probe_oids layout ops)
  @ [
      Trace.Scan doc;
      Trace.Node_count doc;
      Trace.Range_unique { doc; lo = 1; hi = 10_000_000 };
      Trace.Range_hundred { doc; lo = -50; hi = 200 };
      Trace.Range_million { doc; lo = 1; hi = 1_000_000 };
      Trace.Verify_checks;
    ]

(* The trace prefix covering the first [n] commits (inclusive).  With
   the generator's shape invariants this is exactly the state an oracle
   must hold after [n] transactions were made durable. *)
let prefix_through_commit ops n =
  if n = 0 then []
  else
    let rec go acc k = function
      | [] -> List.rev acc
      | op :: rest ->
          let acc = op :: acc in
          if op = Trace.Commit then
            if k + 1 = n then List.rev acc else go acc (k + 1) rest
          else go acc k rest
    in
    go [] 0 ops

let fresh_oracle_at ~gen_seed ~level prefix =
  let b = M.create () in
  let module G = Generator.Make (M) in
  let layout, _ = G.generate b ~doc:1 ~leaf_level:level ~seed:gen_seed in
  let inst = Backend.Instance ((module M : Backend.S with type t = M.t), b) in
  List.iter (fun op -> ignore (Trace.apply ~layout inst op)) prefix;
  (inst, layout)

let compare_probes ~layout ~backend oracle_inst subject_inst probes =
  let rec go i = function
    | [] -> None
    | op :: rest ->
        let o = Trace.apply ~layout oracle_inst op in
        let s = Trace.apply ~layout subject_inst op in
        if Trace.outcome_equal o s then go (i + 1) rest
        else Some { step = i; op; oracle = o; subject = s; backend }
  in
  go 0 probes

(* Crash-mode subject: local diskdb, durable_sync on (an acked commit
   must survive the power failure by its own fsync, not by luck).  Group
   commit is enabled with a zero hold window: the fuzzers are
   single-threaded, so every group has one member and the barrier fires
   immediately — same fsync-per-commit semantics, but the whole
   scheduler path (register/lead/poison) runs under crash injection. *)
let crash_cfg vfs =
  {
    (disk_config ~durable_sync:true ~remote:None ~prefetch:false vfs) with
    D.group_commit =
      Some { Hyper_storage.Group_commit.max_batch = 8; max_hold_ns = 0.0 };
  }
let crash_config = crash_cfg

let crash_writes ~gen_seed ~level ops =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let db = D.open_db (crash_cfg vfs) in
  generate_disk db ~gen_seed ~level;
  let layout = layout_of ~gen_seed ~level in
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  let before = Vfs.Faulty.write_count env in
  List.iter (fun op -> ignore (Trace.apply ~layout inst op)) ops;
  let after = Vfs.Faulty.write_count env in
  (try D.close db with Storage_error.Error _ -> ());
  after - before

type crash_report =
  | Crash_clean of { crash_step : int option; acked : int }
  | Crash_diverged of {
      crash_step : int;
      acked : int;
      in_flight : bool;
      divergence : divergence;
    }

let crash_check ~gen_seed ~level ~crash_after ops =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let db = D.open_db (crash_cfg vfs) in
  generate_disk db ~gen_seed ~level;
  let layout = layout_of ~gen_seed ~level in
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  Vfs.Faulty.arm_crash env ~after_writes:crash_after ();
  let is_crash = function Vfs.Crash -> true | _ -> false in
  let acked = ref 0 in
  let crash = ref None in
  (try
     List.iteri
       (fun i op ->
         match Trace.apply ~reraise:is_crash ~layout inst op with
         | outcome ->
             if op = Trace.Commit && outcome = Trace.Done Trace.V_unit then
               incr acked
         | exception Vfs.Crash ->
             crash := Some (i, op = Trace.Commit);
             raise Exit)
       ops
   with Exit -> ());
  (* Power-fail, disarm, reopen: recovery replays the WAL over whatever
     the simulated disk retained. *)
  Vfs.Faulty.set_plan env Vfs.Faulty.quiet;
  Vfs.Faulty.power_fail env;
  let recovered = D.open_db (crash_cfg vfs) in
  let rec_inst =
    Backend.Instance ((module D : Backend.S with type t = D.t), recovered)
  in
  let probes = probe_trace layout ops in
  let compare_at n =
    let oracle_inst, _ =
      fresh_oracle_at ~gen_seed ~level (prefix_through_commit ops n)
    in
    compare_probes ~layout ~backend:"diskdb-crash" oracle_inst rec_inst probes
  in
  let result =
    match !crash with
    | None -> (
        (* Crash point past the trace's writes: plain final-state check. *)
        match compare_at !acked with
        | None -> Crash_clean { crash_step = None; acked = !acked }
        | Some d ->
            Crash_diverged
              {
                crash_step = List.length ops;
                acked = !acked;
                in_flight = false;
                divergence = d;
              })
    | Some (step, in_flight) -> (
        match compare_at !acked with
        | None -> Crash_clean { crash_step = Some step; acked = !acked }
        | Some d ->
            if in_flight then
              match compare_at (!acked + 1) with
              | None -> Crash_clean { crash_step = Some step; acked = !acked + 1 }
              | Some _ ->
                  Crash_diverged
                    {
                      crash_step = step;
                      acked = !acked;
                      in_flight;
                      divergence = d;
                    }
            else
              Crash_diverged
                { crash_step = step; acked = !acked; in_flight; divergence = d })
  in
  (try D.close recovered with Storage_error.Error _ -> ());
  result

(* {2 Repro files} *)

let save_repro ~path ~gen_seed ~level ops =
  let oc = open_out path in
  Printf.fprintf oc "# hyperfuzz v1 gen_seed=%Ld level=%d\n" gen_seed level;
  List.iter (fun op -> output_string oc (Trace.op_to_string op ^ "\n")) ops;
  close_out oc

let load_repro ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header = input_line ic in
      let gen_seed, level =
        try Scanf.sscanf header "# hyperfuzz v1 gen_seed=%Ld level=%d" (fun g l -> (g, l))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          failwith (path ^ ": bad hyperfuzz header: " ^ header)
      in
      let ops = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             ops := Trace.op_of_string line :: !ops
         done
       with End_of_file -> ());
      (gen_seed, level, List.rev !ops))

(** MVCC snapshot-consistency fuzzing.

    Two generators, both seed-deterministic in what they schedule (the
    thread interleaving itself is the only nondeterminism — which is
    the point):

    {!store_check} hammers one {!Hyper_txn.Version_store} with writer
    threads running first-committer-wins transactions while reader
    threads pin snapshots and sweep every key.  Each sweep is validated
    {e while the snapshot is still pinned} (so GC cannot have touched
    the versions it depends on) against the store's own history: a
    snapshot at [ts] must see exactly the newest version with
    timestamp ≤ [ts], and two sweeps of one snapshot must agree even
    though commits landed in between.  Version GC runs throughout, so
    watermark violations (pruning a version a live snapshot needs)
    surface as stale or torn reads.

    {!backend_check} replays a generated trace ({!Gen}) on a live
    memdb, cloning a {!Hyper_core.Backend.S.snapshot} view at points
    between transactions.  After the full trace has run, each view is
    probed exhaustively and compared against a fresh oracle replay of
    exactly the prefix that was committed when the view was cloned
    ({!Differential.fresh_oracle_at}) — any write that leaked through
    the clone after the fact is a divergence. *)

type violation = {
  v_kind : string;  (** e.g. ["stale-read"], ["torn-snapshot"] *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val store_check :
  seed:int64 ->
  writers:int ->
  readers:int ->
  keys:int ->
  txns_per_writer:int ->
  violation option
(** First violation any thread observed, if any.  [writers]/[readers]
    are thread counts; values written encode (writer, iteration) so a
    misdirected read identifies its source. *)

val backend_check :
  seed:int64 -> gen_seed:int64 -> level:int -> steps:int -> violation option
